// hmcsim_server.cpp — standalone co-simulation server.
//
// Owns one simulated cube chain and serves client processes over the
// shared-memory protocol (src/ipc/cosim_proto.h, docs/COSIM.md):
//
//   hmcsim_server --socket /tmp/hmcsim.sock --clients 2 --quantum 64
//                 --stats-json run.json
//
// The process exits once every client has disconnected (the simulation
// is first run to quiescence so the statistics settle). With the same
// configuration and the same per-client workloads, two runs write
// byte-identical statistics JSON.
#include <csignal>
#include <cstdio>
#include <memory>
#include <string>

#include "src/backend/backend.hpp"
#include "src/common/parse.hpp"
#include "src/frontend/runner.hpp"
#include "src/ipc/cosim_server.hpp"

using namespace hmcsim;

namespace {

struct ServerOptions {
  ipc::CosimOptions cosim;
  std::string backend = "hmc";
  std::string stats_json;
  std::uint32_t links = 4;
  std::uint32_t devs = 1;
  std::uint32_t threads = 1;
  bool prof = false;
};

/// The serving CosimServer, published for the signal handlers: SIGINT /
/// SIGTERM request a clean stop so statistics still get written and the
/// sockets unlinked. request_stop only stores an atomic flag, so it is
/// async-signal-safe.
ipc::CosimServer* g_server = nullptr;

extern "C" void stop_signal_handler(int) {
  if (g_server != nullptr) {
    g_server->request_stop();
  }
}

int usage() {
  std::fputs(
      "usage: hmcsim_server --socket <path> [options]\n"
      "  --socket <path>      Unix-domain control socket (required)\n"
      "  --clients <n>        client processes to expect (default 1)\n"
      "  --quantum <n>        cycles per clock barrier (default 64)\n"
      "  --ring-slots <n>     messages per SPSC ring (default 1024)\n"
      "  --max-cycles <n>     abort guard, 0 = unbounded (default 0)\n"
      "  --client-timeout-ms <n>  evict dead clients / give up after n ms\n"
      "                       without progress, 0 = wait forever (default 0)\n"
      "  --backend <name>     memory backend (default hmc)\n"
      "  --links 4|8          host links (default 4)\n"
      "  --devs <n>           cubes in the chain, 1..8 (default 1)\n"
      "  --threads <n>        clock worker threads, 1..64 (default 1)\n"
      "  --stats-json <path>  write the statistics registry on exit\n"
      "  --telemetry <path>   Unix socket answering Prometheus/JSON\n"
      "                       scrapes between quanta (docs/TELEMETRY.md)\n"
      "  --prof               register sim.prof.* self-profiling stats\n",
      stderr);
  return 2;
}

bool flag_u64(std::string_view flag, const char* v, std::uint64_t& out,
              std::uint64_t min, std::uint64_t max) {
  if (v == nullptr) {
    std::fprintf(stderr, "hmcsim_server: %.*s needs a value\n",
                 static_cast<int>(flag.size()), flag.data());
    return false;
  }
  if (!common::parse_u64(v, out, max) || out < min) {
    std::fprintf(stderr,
                 "hmcsim_server: invalid value '%s' for %.*s (expected an "
                 "unsigned integer in [%llu, %llu])\n",
                 v, static_cast<int>(flag.size()), flag.data(),
                 static_cast<unsigned long long>(min),
                 static_cast<unsigned long long>(max));
    return false;
  }
  return true;
}

bool flag_u32(std::string_view flag, const char* v, std::uint32_t& out,
              std::uint32_t min, std::uint32_t max) {
  std::uint64_t wide = 0;
  if (!flag_u64(flag, v, wide, min, max)) {
    return false;
  }
  out = static_cast<std::uint32_t>(wide);
  return true;
}

bool parse_args(int argc, char** argv, ServerOptions& opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--socket") {
      const char* v = next();
      if (v == nullptr) {
        return false;
      }
      opts.cosim.socket_path = v;
    } else if (arg == "--clients") {
      if (!flag_u32(arg, next(), opts.cosim.expected_clients, 1, 64)) {
        return false;
      }
    } else if (arg == "--quantum") {
      if (!flag_u64(arg, next(), opts.cosim.quantum, 1,
                    std::numeric_limits<std::uint64_t>::max())) {
        return false;
      }
    } else if (arg == "--ring-slots") {
      if (!flag_u32(arg, next(), opts.cosim.ring_slots, 2, 1u << 20)) {
        return false;
      }
    } else if (arg == "--max-cycles") {
      if (!flag_u64(arg, next(), opts.cosim.max_cycles, 0,
                    std::numeric_limits<std::uint64_t>::max())) {
        return false;
      }
    } else if (arg == "--client-timeout-ms") {
      if (!flag_u32(arg, next(), opts.cosim.client_timeout_ms, 0,
                    std::numeric_limits<std::uint32_t>::max())) {
        return false;
      }
    } else if (arg == "--backend") {
      const char* v = next();
      if (v == nullptr) {
        return false;
      }
      opts.backend = v;
    } else if (arg == "--links") {
      if (!flag_u32(arg, next(), opts.links, 4, 8)) {
        return false;
      }
      if (opts.links != 4 && opts.links != 8) {
        std::fprintf(stderr, "hmcsim_server: --links must be 4 or 8\n");
        return false;
      }
    } else if (arg == "--devs") {
      if (!flag_u32(arg, next(), opts.devs, 1, 8)) {
        return false;
      }
    } else if (arg == "--threads") {
      if (!flag_u32(arg, next(), opts.threads, 1, 64)) {
        return false;
      }
    } else if (arg == "--stats-json") {
      const char* v = next();
      if (v == nullptr) {
        return false;
      }
      opts.stats_json = v;
    } else if (arg == "--telemetry") {
      const char* v = next();
      if (v == nullptr) {
        return false;
      }
      opts.cosim.telemetry_path = v;
    } else if (arg == "--prof") {
      opts.prof = true;
    } else {
      std::fprintf(stderr, "hmcsim_server: unknown option '%s'\n",
                   std::string(arg).c_str());
      return false;
    }
  }
  return !opts.cosim.socket_path.empty();
}

}  // namespace

int main(int argc, char** argv) {
  ServerOptions opts;
  if (!parse_args(argc, argv, opts)) {
    return usage();
  }

  sim::Config cfg = opts.links == 8 ? sim::Config::hmc_8link_8gb()
                                    : sim::Config::hmc_4link_4gb();
  cfg.num_devs = opts.devs;
  cfg.threads = opts.threads;

  std::unique_ptr<backend::MemoryBackend> mem;
  if (Status s = backend::BackendRegistry::instance().create(opts.backend,
                                                             cfg, mem);
      !s.ok()) {
    std::fprintf(stderr, "create: %s\n", s.to_string().c_str());
    return 1;
  }

  frontend::IoOptions io_opts;
  io_opts.stats_json = opts.stats_json;
  io_opts.prof = opts.prof;
  frontend::RunIo io;
  if (Status s = io.attach(*mem, io_opts); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.message().c_str());
    return 1;
  }

  ipc::CosimServer server(*mem, opts.cosim);
  if (Status s = server.bind(); !s.ok()) {
    std::fprintf(stderr, "bind: %s\n", s.to_string().c_str());
    return 1;
  }
  g_server = &server;
  std::signal(SIGINT, stop_signal_handler);
  std::signal(SIGTERM, stop_signal_handler);
  std::fprintf(stderr,
               "hmcsim_server: listening on %s (%u clients, quantum %llu)\n",
               opts.cosim.socket_path.c_str(), opts.cosim.expected_clients,
               static_cast<unsigned long long>(opts.cosim.quantum));
  const Status serve_status = server.serve();
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);
  g_server = nullptr;
  if (!serve_status.ok()) {
    std::fprintf(stderr, "serve: %s\n", serve_status.to_string().c_str());
    return 1;
  }
  std::fprintf(stderr,
               "hmcsim_server: done — %llu quanta, %llu requests, "
               "%llu responses, cycle %llu\n",
               static_cast<unsigned long long>(server.quanta()),
               static_cast<unsigned long long>(server.requests()),
               static_cast<unsigned long long>(server.responses()),
               static_cast<unsigned long long>(server.cycle()));
  if (Status s = io.write_stats_json(*mem); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.message().c_str());
    return 1;
  }
  return 0;
}
