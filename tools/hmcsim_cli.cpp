// hmcsim_cli.cpp — command-line driver for the simulator.
//
// Workload subcommands are resolved through FrontendRegistry: any
// registered frontend is runnable as `hmcsim_cli <name> [positional]
// [--frontend-options]`, over any backend in BackendRegistry (--backend,
// default "hmc"). Built-in informational subcommands:
//
//   commands                      print the full Gen2 command table
//   config [4|8]                  print a canonical device configuration
//   cmc-info <plugin.so>...       validate plugins and print registrations
//   list-frontends                print every registered frontend
//   list-backends                 print every registered memory backend
//
// Registered frontends (see list-frontends):
//   replay <trace>                replay a trace file
//   mutex <threads>               the Algorithm 1 contention experiment
//   rogue <rogue.so>              drive a misbehaving CMC plugin into
//                                 quarantine (fault-containment demo)
//   spinlock <cores>              CAS spinlock through the coherent cache
//   synthetic [pattern]           open-loop load generator, e.g.
//                                 `synthetic --pattern zipfian --theta 0.99
//                                  --rate 0.5`
//
// Unrecognised `--key value` pairs are handed to the frontend factory as
// options; a key the frontend does not consume is an error.
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "plugins/builtin.h"
#include "src/backend/backend.hpp"
#include "src/common/parse.hpp"
#include "src/ipc/cosim_server.hpp"
#include "src/frontend/frontend.hpp"
#include "src/frontend/runner.hpp"
#include "src/power/power_model.hpp"
#include "src/sim/sim_stats.hpp"
#include "src/sim/stats_report.hpp"

using namespace hmcsim;

namespace {

struct CliOptions {
  int links = 4;
  std::string backend = "hmc";
  std::string plugin_dir;
  bool power = false;
  std::string trace_file;
  std::uint32_t trace_level = 0;
  std::string trace_chrome;
  bool stage_stats = false;
  std::string stats_json;
  std::uint64_t stats_every = 0;
  std::uint64_t sample_every = 0;
  std::string sample_out;
  std::string sample_paths;
  std::uint64_t sample_capacity = 256;
  bool prof = false;
  bool exhaustive_clock = false;
  std::uint32_t threads = 1;
  std::uint32_t devs = 1;
  std::uint32_t error_ppm = 0;
  std::uint64_t error_seed = 0;
  bool error_seed_set = false;
  std::uint32_t retry_latency = 0;
  std::uint32_t dram_fault_ppm = 0;
  std::uint64_t dram_fault_seed = 0;
  bool dram_fault_seed_set = false;
  std::uint32_t scrub_interval = 0;
  bool scrub_interval_set = false;
  std::uint32_t stuck_faults = 0;
  std::uint32_t cmc_fail_threshold = 0;
  bool cmc_fail_threshold_set = false;
  std::uint32_t cmc_mem_budget = 0;
  bool cmc_mem_budget_set = false;
  std::uint64_t workload_seed = 0;
  bool workload_seed_set = false;
  /// Unrecognised --key value pairs, forwarded to the frontend factory.
  std::vector<std::pair<std::string, std::string>> frontend_opts;
  std::vector<std::string> positional;
};

int usage() {
  std::fputs(
      "usage: hmcsim_cli <subcommand> [args] [options]\n"
      "  commands                    print the Gen2 command table\n"
      "  config [4|8]                print a canonical configuration\n"
      "  cmc-info <plugin.so>...     validate plugins, print registrations\n"
      "  list-frontends              print every registered frontend\n"
      "  list-backends               print every registered memory backend\n"
      "  replay <trace-file>         replay a trace\n"
      "  mutex <threads>             run the mutex contention experiment\n"
      "  rogue <rogue.so>            drive a misbehaving CMC plugin into\n"
      "                              quarantine (fault-containment demo)\n"
      "  spinlock <cores>            CAS spinlock via the coherent caches\n"
      "  synthetic [pattern]         open-loop load generator (uniform,\n"
      "                              zipfian, chase, bursty)\n"
      "  serve <socket-path>         co-simulation server: client\n"
      "                              processes drive the cube over shm\n"
      "                              rings (--clients N --quantum N\n"
      "                              --ring-slots N --max-cycles N\n"
      "                              --client-timeout-ms N\n"
      "                              --telemetry <socket-path>;\n"
      "                              see docs/COSIM.md)\n"
      "  top <telemetry-socket>      refreshing terminal view of a live\n"
      "                              serve session (--interval-ms N\n"
      "                              --count N --format json|prom;\n"
      "                              see docs/TELEMETRY.md)\n"
      "options: --links 4|8  --backend <name>  --plugins <dir>  --power\n"
      "         --seed <n>           (workload RNG seed, Config::workload_seed)\n"
      "         --trace-file <path>  --trace-level <mask>\n"
      "         --trace-chrome <path> (per-packet journeys as Chrome\n"
      "                               trace-event JSON; open in Perfetto)\n"
      "         --stage-stats        (per-stage latency attribution\n"
      "                               histograms + end-of-run report)\n"
      "         --stats-json <path>  --stats-every <cycles>\n"
      "         --sample-every <cycles>  (periodic time-series sampling of\n"
      "                               the stat registry; see\n"
      "                               docs/TELEMETRY.md)\n"
      "         --sample-out <path>  (time-series export; .csv suffix\n"
      "                               selects CSV, anything else JSON)\n"
      "         --sample-paths <p,q> (comma-separated stat-path prefixes\n"
      "                               to sample; default: every\n"
      "                               deterministic stat)\n"
      "         --sample-capacity <n> (ring-buffer windows kept, default\n"
      "                               256; older windows are evicted)\n"
      "         --prof               (host self-profiling: sim.prof.*\n"
      "                               wall-time counters + a Chrome-trace\n"
      "                               counter track when --trace-chrome)\n"
      "         --exhaustive-clock   (disable active-set scheduling and\n"
      "                               quiescence fast-forward)\n"
      "         --devs <n>           (cubes in the chain, 1..8)\n"
      "         --threads <n>        (worker threads for the sharded\n"
      "                               parallel clock; 1 = sequential;\n"
      "                               output is identical for any value)\n"
      "         --error-ppm <n>      (inject link CRC errors, parts/million\n"
      "                               per FLIT; exercises the retry path)\n"
      "         --error-seed <n>     (seed for the deterministic injector)\n"
      "         --retry-latency <n>  (cycles a link spends replaying)\n"
      "         --dram-fault-ppm <n> (inject DRAM bit flips, parts/million\n"
      "                               per 64-bit word read; SEC-DED ECC\n"
      "                               corrects single-bit errors, multi-bit\n"
      "                               errors poison the response)\n"
      "         --dram-fault-seed <n> (seed for the DRAM fault injector)\n"
      "         --scrub-interval <n> (cycles between patrol-scrub passes\n"
      "                               repairing latent faults; 0 disables)\n"
      "         --stuck-faults <n>   (permanent stuck-at cells per cube,\n"
      "                               placed by the fault seed; max 4096)\n"
      "         --cmc-fail-threshold <n>  (consecutive CMC failures before\n"
      "                               a slot is quarantined; 0 disables)\n"
      "         --cmc-mem-budget <n> (64-bit words one CMC call may move\n"
      "                               through the mem services; 0 = off)\n"
      "Frontend-specific --key value options are forwarded to the frontend\n"
      "(e.g. synthetic --pattern zipfian --theta 0.99 --rate 0.5).\n",
      stderr);
  return 2;
}

/// Strict numeric flag value: complete unsigned integer in [min, max],
/// with a diagnostic naming the flag on any failure (atoi/strtoul used to
/// turn "--links foo" into 0 links silently).
bool flag_u64(std::string_view flag, const char* v, std::uint64_t& out,
              std::uint64_t min = 0,
              std::uint64_t max = std::numeric_limits<std::uint64_t>::max()) {
  if (v == nullptr) {
    std::fprintf(stderr, "hmcsim_cli: %.*s needs a value\n",
                 static_cast<int>(flag.size()), flag.data());
    return false;
  }
  if (!common::parse_u64(v, out, max) || out < min) {
    std::fprintf(stderr,
                 "hmcsim_cli: invalid value '%s' for %.*s (expected an "
                 "unsigned integer in [%llu, %llu])\n",
                 v, static_cast<int>(flag.size()), flag.data(),
                 static_cast<unsigned long long>(min),
                 static_cast<unsigned long long>(max));
    return false;
  }
  return true;
}

bool flag_u32(std::string_view flag, const char* v, std::uint32_t& out,
              std::uint32_t min = 0,
              std::uint32_t max = std::numeric_limits<std::uint32_t>::max()) {
  std::uint64_t wide = 0;
  if (!flag_u64(flag, v, wide, min, max)) {
    return false;
  }
  out = static_cast<std::uint32_t>(wide);
  return true;
}

bool parse_options(int argc, char** argv, CliOptions& opts) {
  for (int i = 2; i < argc; ++i) {
    const std::string_view arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--links") {
      std::uint32_t links = 0;
      if (!flag_u32(arg, next(), links, 4, 8)) {
        return false;
      }
      if (links != 4 && links != 8) {
        std::fprintf(stderr, "hmcsim_cli: --links must be 4 or 8\n");
        return false;
      }
      opts.links = static_cast<int>(links);
    } else if (arg == "--backend") {
      const char* v = next();
      if (v == nullptr) {
        return false;
      }
      opts.backend = v;
    } else if (arg == "--plugins") {
      const char* v = next();
      if (v == nullptr) {
        return false;
      }
      opts.plugin_dir = v;
    } else if (arg == "--power") {
      opts.power = true;
    } else if (arg == "--seed") {
      if (!flag_u64(arg, next(), opts.workload_seed)) {
        return false;
      }
      opts.workload_seed_set = true;
    } else if (arg == "--trace-file") {
      const char* v = next();
      if (v == nullptr) {
        return false;
      }
      opts.trace_file = v;
    } else if (arg == "--trace-level") {
      if (!flag_u32(arg, next(), opts.trace_level)) {
        return false;
      }
    } else if (arg == "--trace-chrome") {
      const char* v = next();
      if (v == nullptr) {
        return false;
      }
      opts.trace_chrome = v;
    } else if (arg == "--stage-stats") {
      opts.stage_stats = true;
    } else if (arg == "--stats-json") {
      const char* v = next();
      if (v == nullptr) {
        return false;
      }
      opts.stats_json = v;
    } else if (arg == "--stats-every") {
      if (!flag_u64(arg, next(), opts.stats_every)) {
        return false;
      }
    } else if (arg == "--sample-every") {
      if (!flag_u64(arg, next(), opts.sample_every)) {
        return false;
      }
    } else if (arg == "--sample-out") {
      const char* v = next();
      if (v == nullptr) {
        return false;
      }
      opts.sample_out = v;
    } else if (arg == "--sample-paths") {
      const char* v = next();
      if (v == nullptr) {
        return false;
      }
      opts.sample_paths = v;
    } else if (arg == "--sample-capacity") {
      if (!flag_u64(arg, next(), opts.sample_capacity, 1)) {
        return false;
      }
    } else if (arg == "--prof") {
      opts.prof = true;
    } else if (arg == "--exhaustive-clock") {
      opts.exhaustive_clock = true;
    } else if (arg == "--devs") {
      if (!flag_u32(arg, next(), opts.devs, 1, 8)) {
        return false;
      }
    } else if (arg == "--threads") {
      if (!flag_u32(arg, next(), opts.threads, 1, 64)) {
        return false;
      }
    } else if (arg == "--error-ppm") {
      if (!flag_u32(arg, next(), opts.error_ppm, 0, 1000000)) {
        return false;
      }
    } else if (arg == "--error-seed") {
      if (!flag_u64(arg, next(), opts.error_seed)) {
        return false;
      }
      opts.error_seed_set = true;
    } else if (arg == "--retry-latency") {
      if (!flag_u32(arg, next(), opts.retry_latency)) {
        return false;
      }
    } else if (arg == "--dram-fault-ppm") {
      if (!flag_u32(arg, next(), opts.dram_fault_ppm, 0, 1000000)) {
        return false;
      }
    } else if (arg == "--dram-fault-seed") {
      if (!flag_u64(arg, next(), opts.dram_fault_seed)) {
        return false;
      }
      opts.dram_fault_seed_set = true;
    } else if (arg == "--scrub-interval") {
      if (!flag_u32(arg, next(), opts.scrub_interval)) {
        return false;
      }
      opts.scrub_interval_set = true;
    } else if (arg == "--stuck-faults") {
      if (!flag_u32(arg, next(), opts.stuck_faults, 0, 4096)) {
        return false;
      }
    } else if (arg == "--cmc-fail-threshold") {
      if (!flag_u32(arg, next(), opts.cmc_fail_threshold)) {
        return false;
      }
      opts.cmc_fail_threshold_set = true;
    } else if (arg == "--cmc-mem-budget") {
      if (!flag_u32(arg, next(), opts.cmc_mem_budget)) {
        return false;
      }
      opts.cmc_mem_budget_set = true;
    } else if (arg.size() > 2 && arg.substr(0, 2) == "--") {
      // Unknown flag: forward to the frontend factory as key=value.
      const char* v = next();
      if (v == nullptr) {
        std::fprintf(stderr, "option %s needs a value\n",
                     std::string(arg).c_str());
        return false;
      }
      opts.frontend_opts.emplace_back(std::string(arg.substr(2)), v);
    } else {
      opts.positional.emplace_back(arg);
    }
  }
  return true;
}

sim::Config make_cfg(const CliOptions& opts) {
  sim::Config cfg = opts.links == 8 ? sim::Config::hmc_8link_8gb()
                                    : sim::Config::hmc_4link_4gb();
  cfg.exhaustive_clock = opts.exhaustive_clock;
  cfg.stage_stats = opts.stage_stats;
  if (opts.devs != 0) {
    cfg.num_devs = opts.devs;
  }
  cfg.threads = opts.threads == 0 ? 1 : opts.threads;
  cfg.link_flit_error_ppm = opts.error_ppm;
  if (opts.error_seed_set) {
    cfg.link_error_seed = opts.error_seed;
  }
  if (opts.retry_latency != 0) {
    cfg.link_retry_latency = opts.retry_latency;
  }
  cfg.dram_fault_ppm = opts.dram_fault_ppm;
  if (opts.dram_fault_seed_set) {
    cfg.dram_fault_seed = opts.dram_fault_seed;
  }
  if (opts.scrub_interval_set) {
    cfg.scrub_interval = opts.scrub_interval;
  }
  cfg.stuck_faults = opts.stuck_faults;
  if (opts.cmc_fail_threshold_set) {
    cfg.cmc_fail_threshold = opts.cmc_fail_threshold;
  }
  if (opts.cmc_mem_budget_set) {
    cfg.cmc_mem_word_budget = opts.cmc_mem_budget;
  }
  if (opts.workload_seed_set) {
    cfg.workload_seed = opts.workload_seed;
  }
  return cfg;
}

/// The observability flags shared by every subcommand that runs a
/// simulation, translated into the RunIo options block.
frontend::IoOptions make_io_opts(const CliOptions& opts) {
  frontend::IoOptions io;
  io.trace_file = opts.trace_file;
  io.trace_level = opts.trace_level;
  io.trace_chrome = opts.trace_chrome;
  io.stage_stats = opts.stage_stats;
  io.stats_json = opts.stats_json;
  io.stats_every = opts.stats_every;
  io.sample_every = opts.sample_every;
  io.sample_out = opts.sample_out;
  io.sample_paths = opts.sample_paths;
  io.sample_capacity = static_cast<std::size_t>(opts.sample_capacity);
  io.prof = opts.prof;
  return io;
}

/// The CMC provisioning hook handed to frontends: maps operation names to
/// the statically-linked builtin implementations. Frontends request
/// exactly what their workload needs, so the metric namespace (and with
/// it the stats JSON) only ever contains the operations a run used.
Status provide_builtin_cmc(sim::Simulator& sim, std::string_view op) {
  if (op == "hmc_lock") {
    return sim.register_cmc(hmcsim_builtin_lock_register,
                            hmcsim_builtin_lock_execute,
                            hmcsim_builtin_lock_str);
  }
  if (op == "hmc_trylock") {
    return sim.register_cmc(hmcsim_builtin_trylock_register,
                            hmcsim_builtin_trylock_execute,
                            hmcsim_builtin_trylock_str);
  }
  if (op == "hmc_unlock") {
    return sim.register_cmc(hmcsim_builtin_unlock_register,
                            hmcsim_builtin_unlock_execute,
                            hmcsim_builtin_unlock_str);
  }
  if (op == "hmc_satinc") {
    return sim.register_cmc(hmcsim_builtin_satinc_register,
                            hmcsim_builtin_satinc_execute,
                            hmcsim_builtin_satinc_str);
  }
  return Status::NotFound("no builtin CMC operation named '" +
                          std::string(op) + "'");
}

int cmd_commands() {
  std::printf("%-4s %-10s %-14s %-10s %-10s %-10s\n", "code", "name",
              "kind", "rqst_flit", "rsp_flit", "data_B");
  for (const auto& info : spec::all_commands()) {
    std::printf("%-4u %-10s %-14s %-10u %-10u %-10u\n", unsigned(info.cmd),
                std::string(info.name).c_str(),
                std::string(spec::to_string(info.kind)).c_str(),
                unsigned(info.rqst_flits), unsigned(info.rsp_flits),
                unsigned(info.data_bytes));
  }
  return 0;
}

int cmd_config(const CliOptions& opts) {
  const sim::Config cfg = opts.links == 8 ? sim::Config::hmc_8link_8gb()
                                          : sim::Config::hmc_4link_4gb();
  std::printf("%s\n", cfg.describe().c_str());
  std::printf("xbar forwarding bandwidth: %u flits/link/cycle (rqst), "
              "%u (rsp)\n",
              cfg.xbar_rqst_bw_flits, cfg.xbar_rsp_bw_flits);
  std::printf("bank conflict model: %s\n",
              cfg.model_bank_conflicts ? "on" : "off");
  return 0;
}

int cmd_cmc_info(const CliOptions& opts) {
  if (opts.positional.empty()) {
    return usage();
  }
  cmc::CmcRegistry registry;
  cmc::CmcLoader loader;
  int rc = 0;
  for (const std::string& path : opts.positional) {
    if (Status s = loader.load(path, registry); !s.ok()) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(), s.to_string().c_str());
      rc = 1;
      continue;
    }
  }
  std::printf("%-14s %-8s %-10s %-10s %-10s %-8s\n", "name", "code",
              "rqst_len", "rsp_len", "rsp_cmd", "rsp_code");
  for (const auto& op : registry.slots()) {
    if (!op.active) {
      continue;
    }
    std::printf("%-14s %-8u %-10u %-10u %-10s 0x%02X\n", op.name.c_str(),
                op.cmd, op.rqst_len, op.rsp_len,
                std::string(spec::to_string(op.rsp_cmd)).c_str(),
                op.rsp_cmd_code);
  }
  return rc;
}

int cmd_list_frontends() {
  std::printf("%-10s %-10s %s\n", "name", "arg", "description");
  for (const auto& info : frontend::FrontendRegistry::instance().list()) {
    std::printf("%-10s %-10s %s\n", info.name.c_str(),
                info.positional_key.empty() ? "-"
                                            : info.positional_key.c_str(),
                info.description.c_str());
  }
  return 0;
}

int cmd_list_backends() {
  std::printf("%-10s %s\n", "name", "description");
  for (const auto& info : backend::BackendRegistry::instance().list()) {
    std::printf("%-10s %s\n", info.name.c_str(), info.description.c_str());
  }
  return 0;
}

/// The serving CosimServer, published for the signal handlers so Ctrl-C
/// and SIGTERM shut the server down cleanly (stats written, sinks
/// flushed, sockets unlinked) instead of tearing the process down
/// mid-write.
ipc::CosimServer* g_serve_server = nullptr;

extern "C" void serve_signal_handler(int) {
  if (g_serve_server != nullptr) {
    // request_stop only stores an atomic flag — async-signal-safe.
    g_serve_server->request_stop();
  }
}

/// `serve`: host the co-simulation server until every client detaches.
/// Server-specific knobs arrive as forwarded --key value options.
int cmd_serve(const CliOptions& opts) {
  if (opts.positional.size() != 1) {
    std::fprintf(stderr, "serve needs exactly one socket path\n");
    return 2;
  }
  ipc::CosimOptions sopts;
  sopts.socket_path = opts.positional[0];
  for (const auto& [key, value] : opts.frontend_opts) {
    if (key == "clients") {
      if (!flag_u32("--clients", value.c_str(), sopts.expected_clients, 1,
                    64)) {
        return 2;
      }
    } else if (key == "quantum") {
      if (!flag_u64("--quantum", value.c_str(), sopts.quantum, 1)) {
        return 2;
      }
    } else if (key == "ring-slots") {
      if (!flag_u32("--ring-slots", value.c_str(), sopts.ring_slots, 2,
                    1u << 20)) {
        return 2;
      }
    } else if (key == "max-cycles") {
      if (!flag_u64("--max-cycles", value.c_str(), sopts.max_cycles)) {
        return 2;
      }
    } else if (key == "client-timeout-ms") {
      if (!flag_u32("--client-timeout-ms", value.c_str(),
                    sopts.client_timeout_ms)) {
        return 2;
      }
    } else if (key == "telemetry") {
      sopts.telemetry_path = value;
    } else {
      std::fprintf(stderr, "serve: unknown option '--%s'\n", key.c_str());
      return 2;
    }
  }

  std::unique_ptr<backend::MemoryBackend> mem;
  if (Status s = backend::BackendRegistry::instance().create(
          opts.backend, make_cfg(opts), mem);
      !s.ok()) {
    std::fprintf(stderr, "create: %s\n", s.to_string().c_str());
    return 1;
  }
  frontend::RunIo io;
  if (Status s = io.attach(*mem, make_io_opts(opts)); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.message().c_str());
    return 1;
  }

  ipc::CosimServer server(*mem, sopts);
  if (Status s = server.bind(); !s.ok()) {
    std::fprintf(stderr, "bind: %s\n", s.to_string().c_str());
    return 1;
  }
  g_serve_server = &server;
  std::signal(SIGINT, serve_signal_handler);
  std::signal(SIGTERM, serve_signal_handler);
  std::fprintf(stderr, "serve: listening on %s (%u clients, quantum %llu)\n",
               sopts.socket_path.c_str(), sopts.expected_clients,
               static_cast<unsigned long long>(sopts.quantum));
  const Status serve_status = server.serve();
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);
  g_serve_server = nullptr;
  if (!serve_status.ok()) {
    std::fprintf(stderr, "serve: %s\n", serve_status.to_string().c_str());
    return 1;
  }
  std::printf("serve: %llu quanta, %llu requests, %llu responses, "
              "cycle %llu\n",
              static_cast<unsigned long long>(server.quanta()),
              static_cast<unsigned long long>(server.requests()),
              static_cast<unsigned long long>(server.responses()),
              static_cast<unsigned long long>(server.cycle()));
  io.print_stage_report(*mem);
  if (Status s = io.write_stats_json(*mem); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.message().c_str());
    return 1;
  }
  if (Status s = io.write_sample(*mem); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.message().c_str());
    return 1;
  }
  return 0;
}

/// One telemetry scrape: connect to the Unix socket, send the request
/// keyword, read the full payload (the server writes and closes).
bool scrape(const std::string& path, const char* request,
            std::string& out) {
  out.clear();
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return false;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    ::close(fd);
    return false;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return false;
  }
  const std::string line = std::string(request) + "\n";
  if (::write(fd, line.data(), line.size()) !=
      static_cast<ssize_t>(line.size())) {
    ::close(fd);
    return false;
  }
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) {
      break;
    }
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return !out.empty();
}

/// Pull the number following `"key": ` at or after `pos` (advancing
/// `pos` past it). The snapshot JSON is machine-generated with exactly
/// this spacing, so a scan is reliable without a JSON parser.
bool scan_num(const std::string& doc, const std::string& key,
              std::size_t& pos, double& out) {
  const std::string needle = "\"" + key + "\": ";
  const std::size_t at = doc.find(needle, pos);
  if (at == std::string::npos) {
    return false;
  }
  pos = at + needle.size();
  out = std::strtod(doc.c_str() + pos, nullptr);
  return true;
}

/// `top`: refreshing terminal view over a live telemetry socket.
int cmd_top(const CliOptions& opts) {
  if (opts.positional.size() != 1) {
    std::fprintf(stderr, "top needs exactly one telemetry socket path\n");
    return 2;
  }
  const std::string& path = opts.positional[0];
  std::uint64_t interval_ms = 500;
  std::uint64_t count = 0;  // 0 = refresh until the socket goes away.
  bool prom = false;
  for (const auto& [key, value] : opts.frontend_opts) {
    if (key == "interval-ms") {
      if (!flag_u64("--interval-ms", value.c_str(), interval_ms, 1)) {
        return 2;
      }
    } else if (key == "count") {
      if (!flag_u64("--count", value.c_str(), count)) {
        return 2;
      }
    } else if (key == "format") {
      if (value == "prom") {
        prom = true;
      } else if (value != "json") {
        std::fprintf(stderr, "top: --format takes json or prom\n");
        return 2;
      }
    } else {
      std::fprintf(stderr, "top: unknown option '--%s'\n", key.c_str());
      return 2;
    }
  }

  const bool tty = ::isatty(STDOUT_FILENO) != 0;
  // Previous frame, for host-side rates: packets are cumulative in the
  // snapshot, so per-second figures need two scrapes and a wall clock.
  std::vector<double> prev_pkts;
  auto prev_t = std::chrono::steady_clock::now();
  std::string doc;
  for (std::uint64_t frame = 0; count == 0 || frame < count; ++frame) {
    if (frame != 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    }
    if (!scrape(path, prom ? "metrics" : "json", doc)) {
      if (frame == 0) {
        std::fprintf(stderr, "top: cannot scrape %s\n", path.c_str());
        return 1;
      }
      std::printf("top: %s closed\n", path.c_str());
      return 0;
    }
    const auto now = std::chrono::steady_clock::now();
    const double dt =
        std::chrono::duration<double>(now - prev_t).count();
    prev_t = now;
    if (tty && (count != 1)) {
      std::fputs("\x1b[H\x1b[2J", stdout);  // Home + clear.
    }
    if (prom) {
      std::fputs(doc.c_str(), stdout);
      std::fflush(stdout);
      continue;
    }

    std::size_t pos = 0;
    double cycle = 0.0;
    double cps = 0.0;
    if (!scan_num(doc, "cycle", pos, cycle) ||
        !scan_num(doc, "cycles_per_sec", pos, cps)) {
      std::fprintf(stderr, "top: malformed snapshot from %s\n",
                   path.c_str());
      return 1;
    }
    std::printf("hmcsim top — %s\n", path.c_str());
    std::printf("cycle %-14.0f %.3g cycles/sec\n", cycle, cps);
    double live = 0.0;
    double evicted = 0.0;
    double quanta = 0.0;
    double rqsts = 0.0;
    double rsps = 0.0;
    if (scan_num(doc, "clients_live", pos, live)) {
      scan_num(doc, "clients_evicted", pos, evicted);
      scan_num(doc, "quanta", pos, quanta);
      scan_num(doc, "requests", pos, rqsts);
      scan_num(doc, "responses", pos, rsps);
      std::printf("clients %.0f live / %.0f evicted   quanta %.0f   "
                  "rqsts %.0f   rsps %.0f\n",
                  live, evicted, quanta, rqsts, rsps);
    }
    std::printf("%-6s %12s %12s %10s %12s %10s %10s\n", "cube",
                "rqst_pkts", "rsp_pkts", "stalls", "vault_rqsts",
                "retry_buf", "pkts/sec");
    std::vector<double> pkts;
    for (std::size_t cpos = doc.find("\"cubes\"");
         cpos != std::string::npos;) {
      double dev = 0.0;
      if (!scan_num(doc, "dev", cpos, dev)) {
        break;
      }
      double rqst = 0.0;
      double rsp = 0.0;
      double stalls = 0.0;
      double vrqsts = 0.0;
      double buf = 0.0;
      scan_num(doc, "rqst_packets", cpos, rqst);
      scan_num(doc, "rsp_packets", cpos, rsp);
      scan_num(doc, "send_stalls", cpos, stalls);
      scan_num(doc, "vault_rqsts", cpos, vrqsts);
      scan_num(doc, "retry_buffered_flits", cpos, buf);
      const std::size_t d = pkts.size();
      pkts.push_back(rqst + rsp);
      char rate[32] = "-";
      if (d < prev_pkts.size() && dt > 0.0) {
        std::snprintf(rate, sizeof(rate), "%.0f",
                      (pkts[d] - prev_pkts[d]) / dt);
      }
      std::printf("%-6.0f %12.0f %12.0f %10.0f %12.0f %10.0f %10s\n", dev,
                  rqst, rsp, stalls, vrqsts, buf, rate);
    }
    prev_pkts = std::move(pkts);
    for (std::size_t wpos = doc.find("\"workers\"");
         wpos != std::string::npos;) {
      double w = 0.0;
      if (!scan_num(doc, "worker", wpos, w)) {
        break;
      }
      double exec_ns = 0.0;
      double wait_ns = 0.0;
      scan_num(doc, "exec_ns", wpos, exec_ns);
      scan_num(doc, "wait_ns", wpos, wait_ns);
      const double busy = exec_ns + wait_ns;
      std::printf("worker %.0f: %5.1f%% exec / %5.1f%% wait\n", w,
                  busy > 0.0 ? 100.0 * exec_ns / busy : 0.0,
                  busy > 0.0 ? 100.0 * wait_ns / busy : 0.0);
    }
    std::fflush(stdout);
  }
  return 0;
}

/// Run one registered frontend over one registered backend: the shared
/// path behind every workload subcommand.
int cmd_run(const std::string& name, const CliOptions& opts) {
  frontend::FrontendRegistry& frontends = frontend::FrontendRegistry::instance();
  frontend::FrontendInfo info;
  if (Status s = frontends.info(name, info); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.to_string().c_str());
    return 2;
  }

  frontend::FrontendOptions fopts;
  if (!opts.positional.empty()) {
    if (info.positional_key.empty() || opts.positional.size() > 1) {
      std::fprintf(stderr, "%s: unexpected argument '%s'\n", name.c_str(),
                   opts.positional[info.positional_key.empty() ? 0 : 1]
                       .c_str());
      return 2;
    }
    fopts.set(info.positional_key, opts.positional[0]);
  }
  for (const auto& [key, value] : opts.frontend_opts) {
    fopts.set(key, value);
  }
  if (!opts.plugin_dir.empty()) {
    fopts.set("plugins", opts.plugin_dir);
  }
  fopts.set_cmc_provider(provide_builtin_cmc);

  std::unique_ptr<backend::MemoryBackend> mem;
  if (Status s = backend::BackendRegistry::instance().create(
          opts.backend, make_cfg(opts), mem);
      !s.ok()) {
    std::fprintf(stderr, "create: %s\n", s.to_string().c_str());
    return 1;
  }

  std::unique_ptr<frontend::Frontend> fe;
  if (Status s = frontends.create(name, fopts, fe); !s.ok()) {
    std::fprintf(stderr, "%s: %s\n", name.c_str(), s.to_string().c_str());
    return 1;
  }

  frontend::RunIo io;
  if (Status s = io.attach(*mem, make_io_opts(opts)); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.message().c_str());
    return 1;
  }

  sim::SimStats before;
  if (opts.power && mem->simulator() != nullptr) {
    before = sim::collect_stats(*mem->simulator());
  }

  const Status run_status = frontend::run(*mem, *fe);
  if (!run_status.ok()) {
    std::fprintf(stderr, "%s: %s\n", name.c_str(),
                 run_status.to_string().c_str());
    return 1;
  }
  const std::string summary = fe->summary();
  if (!summary.empty()) {
    std::printf("%s", summary.c_str());
  }
  io.print_stage_report(*mem);
  if (opts.power && mem->simulator() != nullptr) {
    const power::PowerModel model;
    const power::Activity activity =
        power::delta(before, sim::collect_stats(*mem->simulator()),
                     mem->simulator()->num_devices());
    std::printf("%s", power::PowerModel::format(model.estimate(activity),
                                                model.segment_ns(activity))
                          .c_str());
  }
  if (Status s = io.write_stats_json(*mem); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.message().c_str());
    return 1;
  }
  if (Status s = io.write_sample(*mem); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.message().c_str());
    return 1;
  }
  return fe->succeeded() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return usage();
  }
  CliOptions opts;
  if (!parse_options(argc, argv, opts)) {
    return usage();
  }
  const std::string cmd = argv[1];
  if (cmd == "commands") {
    return cmd_commands();
  }
  if (cmd == "config") {
    if (!opts.positional.empty()) {
      std::uint32_t links = 0;
      if (!common::parse_u32(opts.positional[0].c_str(), links) ||
          (links != 4 && links != 8)) {
        std::fprintf(stderr, "hmcsim_cli: config takes 4 or 8, got '%s'\n",
                     opts.positional[0].c_str());
        return 2;
      }
      opts.links = static_cast<int>(links);
    }
    return cmd_config(opts);
  }
  if (cmd == "cmc-info") {
    return cmd_cmc_info(opts);
  }
  if (cmd == "list-frontends") {
    return cmd_list_frontends();
  }
  if (cmd == "list-backends") {
    return cmd_list_backends();
  }
  if (cmd == "serve") {
    return cmd_serve(opts);
  }
  if (cmd == "top") {
    return cmd_top(opts);
  }
  if (frontend::FrontendRegistry::instance().contains(cmd)) {
    return cmd_run(cmd, opts);
  }
  return usage();
}
