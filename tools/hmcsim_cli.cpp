// hmcsim_cli.cpp — command-line driver for the simulator.
//
// Subcommands:
//   commands                      print the full Gen2 command table
//   config [4|8]                  print a canonical device configuration
//   cmc-info <plugin.so>...       validate plugins and print registrations
//   replay <trace> [options]      replay a trace file
//   mutex <threads> [options]     run the Algorithm 1 contention experiment
//
// Common options: --links 4|8 (device selection), --plugins <dir> (load
// the mutex trio from shared libraries), --power (energy estimate),
// --trace-file <path> --trace-level <mask> (simulator event tracing).
#include <array>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "plugins/builtin.h"
#include "src/host/mutex_driver.hpp"
#include "src/host/trace_replay.hpp"
#include "src/power/power_model.hpp"
#include "src/sim/stats_report.hpp"
#include "src/trace/chrome_sink.hpp"

using namespace hmcsim;

namespace {

struct CliOptions {
  int links = 4;
  std::string plugin_dir;
  bool power = false;
  std::string trace_file;
  std::uint32_t trace_level = 0;
  std::string trace_chrome;
  bool stage_stats = false;
  std::string stats_json;
  std::uint64_t stats_every = 0;
  bool exhaustive_clock = false;
  std::uint32_t error_ppm = 0;
  std::uint64_t error_seed = 0;
  bool error_seed_set = false;
  std::uint32_t retry_latency = 0;
  std::uint32_t cmc_fail_threshold = 0;
  bool cmc_fail_threshold_set = false;
  std::uint32_t cmc_mem_budget = 0;
  bool cmc_mem_budget_set = false;
  std::vector<std::string> positional;
};

int usage() {
  std::fputs(
      "usage: hmcsim_cli <commands|config|cmc-info|replay|mutex> [args]\n"
      "  commands                    print the Gen2 command table\n"
      "  config [4|8]                print a canonical configuration\n"
      "  cmc-info <plugin.so>...     validate plugins, print registrations\n"
      "  replay <trace-file>         replay a trace\n"
      "  mutex <threads>             run the mutex contention experiment\n"
      "  rogue <rogue.so>            drive a misbehaving CMC plugin into\n"
      "                              quarantine (fault-containment demo)\n"
      "options: --links 4|8  --plugins <dir>  --power\n"
      "         --trace-file <path>  --trace-level <mask>\n"
      "         --trace-chrome <path> (per-packet journeys as Chrome\n"
      "                               trace-event JSON; open in Perfetto)\n"
      "         --stage-stats        (per-stage latency attribution\n"
      "                               histograms + end-of-run report)\n"
      "         --stats-json <path>  --stats-every <cycles>\n"
      "         --exhaustive-clock   (disable active-set scheduling and\n"
      "                               quiescence fast-forward)\n"
      "         --error-ppm <n>      (inject link CRC errors, parts/million\n"
      "                               per FLIT; exercises the retry path)\n"
      "         --error-seed <n>     (seed for the deterministic injector)\n"
      "         --retry-latency <n>  (cycles a link spends replaying)\n"
      "         --cmc-fail-threshold <n>  (consecutive CMC failures before\n"
      "                               a slot is quarantined; 0 disables)\n"
      "         --cmc-mem-budget <n> (64-bit words one CMC call may move\n"
      "                               through the mem services; 0 = off)\n",
      stderr);
  return 2;
}

bool parse_options(int argc, char** argv, CliOptions& opts) {
  for (int i = 2; i < argc; ++i) {
    const std::string_view arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--links") {
      const char* v = next();
      if (v == nullptr) {
        return false;
      }
      opts.links = std::atoi(v);
    } else if (arg == "--plugins") {
      const char* v = next();
      if (v == nullptr) {
        return false;
      }
      opts.plugin_dir = v;
    } else if (arg == "--power") {
      opts.power = true;
    } else if (arg == "--trace-file") {
      const char* v = next();
      if (v == nullptr) {
        return false;
      }
      opts.trace_file = v;
    } else if (arg == "--trace-level") {
      const char* v = next();
      if (v == nullptr) {
        return false;
      }
      opts.trace_level = static_cast<std::uint32_t>(std::strtoul(v, nullptr, 0));
    } else if (arg == "--trace-chrome") {
      const char* v = next();
      if (v == nullptr) {
        return false;
      }
      opts.trace_chrome = v;
    } else if (arg == "--stage-stats") {
      opts.stage_stats = true;
    } else if (arg == "--stats-json") {
      const char* v = next();
      if (v == nullptr) {
        return false;
      }
      opts.stats_json = v;
    } else if (arg == "--stats-every") {
      const char* v = next();
      if (v == nullptr) {
        return false;
      }
      opts.stats_every = std::strtoull(v, nullptr, 0);
    } else if (arg == "--exhaustive-clock") {
      opts.exhaustive_clock = true;
    } else if (arg == "--error-ppm") {
      const char* v = next();
      if (v == nullptr) {
        return false;
      }
      opts.error_ppm = static_cast<std::uint32_t>(std::strtoul(v, nullptr, 0));
    } else if (arg == "--error-seed") {
      const char* v = next();
      if (v == nullptr) {
        return false;
      }
      opts.error_seed = std::strtoull(v, nullptr, 0);
      opts.error_seed_set = true;
    } else if (arg == "--retry-latency") {
      const char* v = next();
      if (v == nullptr) {
        return false;
      }
      opts.retry_latency =
          static_cast<std::uint32_t>(std::strtoul(v, nullptr, 0));
    } else if (arg == "--cmc-fail-threshold") {
      const char* v = next();
      if (v == nullptr) {
        return false;
      }
      opts.cmc_fail_threshold =
          static_cast<std::uint32_t>(std::strtoul(v, nullptr, 0));
      opts.cmc_fail_threshold_set = true;
    } else if (arg == "--cmc-mem-budget") {
      const char* v = next();
      if (v == nullptr) {
        return false;
      }
      opts.cmc_mem_budget =
          static_cast<std::uint32_t>(std::strtoul(v, nullptr, 0));
      opts.cmc_mem_budget_set = true;
    } else {
      opts.positional.emplace_back(arg);
    }
  }
  return true;
}

std::unique_ptr<sim::Simulator> make_sim(const CliOptions& opts) {
  sim::Config cfg = opts.links == 8 ? sim::Config::hmc_8link_8gb()
                                    : sim::Config::hmc_4link_4gb();
  cfg.exhaustive_clock = opts.exhaustive_clock;
  cfg.stage_stats = opts.stage_stats;
  cfg.link_flit_error_ppm = opts.error_ppm;
  if (opts.error_seed_set) {
    cfg.link_error_seed = opts.error_seed;
  }
  if (opts.retry_latency != 0) {
    cfg.link_retry_latency = opts.retry_latency;
  }
  if (opts.cmc_fail_threshold_set) {
    cfg.cmc_fail_threshold = opts.cmc_fail_threshold;
  }
  if (opts.cmc_mem_budget_set) {
    cfg.cmc_mem_word_budget = opts.cmc_mem_budget;
  }
  std::unique_ptr<sim::Simulator> sim;
  if (Status s = sim::Simulator::create(cfg, sim); !s.ok()) {
    std::fprintf(stderr, "create: %s\n", s.to_string().c_str());
    return nullptr;
  }
  return sim;
}

bool load_mutex_ops(sim::Simulator& sim, const CliOptions& opts) {
  if (!opts.plugin_dir.empty()) {
    for (const char* so : {"hmc_lock.so", "hmc_trylock.so",
                           "hmc_unlock.so"}) {
      const std::string path = opts.plugin_dir + "/" + so;
      if (Status s = sim.load_cmc(path); !s.ok()) {
        std::fprintf(stderr, "load_cmc(%s): %s\n", path.c_str(),
                     s.to_string().c_str());
        return false;
      }
    }
    return true;
  }
  return sim.register_cmc(hmcsim_builtin_lock_register,
                          hmcsim_builtin_lock_execute,
                          hmcsim_builtin_lock_str)
             .ok() &&
         sim.register_cmc(hmcsim_builtin_trylock_register,
                          hmcsim_builtin_trylock_execute,
                          hmcsim_builtin_trylock_str)
             .ok() &&
         sim.register_cmc(hmcsim_builtin_unlock_register,
                          hmcsim_builtin_unlock_execute,
                          hmcsim_builtin_unlock_str)
             .ok();
}

int cmd_commands() {
  std::printf("%-4s %-10s %-14s %-10s %-10s %-10s\n", "code", "name",
              "kind", "rqst_flit", "rsp_flit", "data_B");
  for (const auto& info : spec::all_commands()) {
    std::printf("%-4u %-10s %-14s %-10u %-10u %-10u\n", unsigned(info.cmd),
                std::string(info.name).c_str(),
                std::string(spec::to_string(info.kind)).c_str(),
                unsigned(info.rqst_flits), unsigned(info.rsp_flits),
                unsigned(info.data_bytes));
  }
  return 0;
}

int cmd_config(const CliOptions& opts) {
  const sim::Config cfg = opts.links == 8 ? sim::Config::hmc_8link_8gb()
                                          : sim::Config::hmc_4link_4gb();
  std::printf("%s\n", cfg.describe().c_str());
  std::printf("xbar forwarding bandwidth: %u flits/link/cycle (rqst), "
              "%u (rsp)\n",
              cfg.xbar_rqst_bw_flits, cfg.xbar_rsp_bw_flits);
  std::printf("bank conflict model: %s\n",
              cfg.model_bank_conflicts ? "on" : "off");
  return 0;
}

int cmd_cmc_info(const CliOptions& opts) {
  if (opts.positional.empty()) {
    return usage();
  }
  cmc::CmcRegistry registry;
  cmc::CmcLoader loader;
  int rc = 0;
  for (const std::string& path : opts.positional) {
    if (Status s = loader.load(path, registry); !s.ok()) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(), s.to_string().c_str());
      rc = 1;
      continue;
    }
  }
  std::printf("%-14s %-8s %-10s %-10s %-10s %-8s\n", "name", "code",
              "rqst_len", "rsp_len", "rsp_cmd", "rsp_code");
  for (const auto& op : registry.slots()) {
    if (!op.active) {
      continue;
    }
    std::printf("%-14s %-8u %-10u %-10u %-10s 0x%02X\n", op.name.c_str(),
                op.cmd, op.rqst_len, op.rsp_len,
                std::string(spec::to_string(op.rsp_cmd)).c_str(),
                op.rsp_cmd_code);
  }
  return rc;
}

/// Every sink the CLI may wire up for one run. The ChromeSink is declared
/// after its stream so it is destroyed first (its destructor writes the
/// closing bracket of the JSON document).
struct TraceWiring {
  std::unique_ptr<std::ofstream> text_stream;
  std::unique_ptr<trace::TextSink> text_sink;
  std::unique_ptr<std::ofstream> chrome_stream;
  std::unique_ptr<trace::ChromeSink> chrome_sink;
  trace::LatencySink latency;  ///< Percentiles for the --stage-stats report.
};

/// Attach the requested sinks (--trace-file, --trace-chrome,
/// --stage-stats); keeps them alive via `wiring`.
bool setup_tracing(sim::Simulator& sim, const CliOptions& opts,
                   TraceWiring& wiring) {
  if (!opts.trace_file.empty()) {
    wiring.text_stream = std::make_unique<std::ofstream>(opts.trace_file);
    if (!wiring.text_stream->is_open()) {
      std::fprintf(stderr, "cannot open trace file %s\n",
                   opts.trace_file.c_str());
      return false;
    }
    wiring.text_sink = std::make_unique<trace::TextSink>(*wiring.text_stream);
    sim.tracer().attach(wiring.text_sink.get());
    sim.tracer().set_level(static_cast<trace::Level>(
        opts.trace_level != 0 ? opts.trace_level
                              : static_cast<std::uint32_t>(
                                    trace::Level::All)));
  }
  if (!opts.trace_chrome.empty()) {
    wiring.chrome_stream =
        std::make_unique<std::ofstream>(opts.trace_chrome);
    if (!wiring.chrome_stream->is_open()) {
      std::fprintf(stderr, "cannot open chrome trace file %s\n",
                   opts.trace_chrome.c_str());
      return false;
    }
    wiring.chrome_sink =
        std::make_unique<trace::ChromeSink>(*wiring.chrome_stream);
    sim.tracer().attach(wiring.chrome_sink.get());
    sim.journeys().attach(wiring.chrome_sink.get());
    sim.tracer().set_level(sim.tracer().level() | trace::Level::Journey |
                           trace::Level::Retry | trace::Level::Cmc);
  }
  if (opts.stage_stats) {
    // Config::stage_stats already enabled the Journey level; the latency
    // sink additionally needs the per-retirement Latency events.
    sim.tracer().attach(&wiring.latency);
    sim.tracer().set_level(sim.tracer().level() | trace::Level::Latency);
  }
  return true;
}

/// End-of-run --stage-stats report: where did the cycles go, and what do
/// the latency tails look like.
void maybe_stage_report(sim::Simulator& sim, const CliOptions& opts,
                        const TraceWiring& wiring) {
  if (!opts.stage_stats) {
    return;
  }
  const metrics::Histogram& total = sim.latency_histogram();
  std::printf("stage attribution (%llu retired packets):\n",
              static_cast<unsigned long long>(total.count()));
  const double total_sum =
      total.sum() == 0 ? 1.0 : static_cast<double>(total.sum());
  for (std::size_t i = 0; i < trace::kStageCount; ++i) {
    const auto stage = static_cast<trace::Stage>(i);
    const std::string path =
        "host.stage." + std::string(trace::to_string(stage));
    const metrics::Histogram* h = sim.metrics().find_histogram(path);
    if (h == nullptr) {
      continue;
    }
    std::printf("  %-12s sum=%-8llu mean=%-7.2f max=%-6llu (%5.1f%%)\n",
                std::string(trace::to_string(stage)).c_str(),
                static_cast<unsigned long long>(h->sum()), h->mean(),
                static_cast<unsigned long long>(h->max()),
                100.0 * static_cast<double>(h->sum()) / total_sum);
  }
  constexpr std::array<double, 3> kQs{0.5, 0.95, 0.99};
  const auto ps = wiring.latency.percentiles(kQs);
  std::printf("  end-to-end latency: p50=%llu p95=%llu p99=%llu\n",
              static_cast<unsigned long long>(ps[0]),
              static_cast<unsigned long long>(ps[1]),
              static_cast<unsigned long long>(ps[2]));
}

/// Install the periodic stats callback: every N cycles, print the counters
/// that moved since the previous report.
void setup_stats_interval(sim::Simulator& sim, const CliOptions& opts) {
  if (opts.stats_every == 0) {
    return;
  }
  auto last = std::make_shared<metrics::StatRegistry::Snapshot>(
      sim.metrics().snapshot_counters());
  sim.set_stats_interval(opts.stats_every, [last](sim::Simulator& s) {
    auto now = s.metrics().snapshot_counters();
    const auto diff = metrics::StatRegistry::delta(*last, now);
    std::printf("[stats] cycle=%llu\n",
                static_cast<unsigned long long>(s.cycle()));
    for (const auto& [path, d] : diff) {
      std::printf("  %s +%llu\n", path.c_str(),
                  static_cast<unsigned long long>(d));
    }
    *last = std::move(now);
  });
}

/// Write the full registry as JSON when --stats-json was given.
bool maybe_stats_json(sim::Simulator& sim, const CliOptions& opts) {
  if (opts.stats_json.empty()) {
    return true;
  }
  std::ofstream out(opts.stats_json);
  if (!out.is_open()) {
    std::fprintf(stderr, "cannot open stats file %s\n",
                 opts.stats_json.c_str());
    return false;
  }
  out << sim::format_stats_json(sim);
  return true;
}

void maybe_power_report(const sim::Simulator& sim,
                        const sim::SimStats& before, const CliOptions& opts) {
  if (!opts.power) {
    return;
  }
  const power::PowerModel model;
  const power::Activity activity =
      power::delta(before, sim.stats(), sim.num_devices());
  std::printf("%s", power::PowerModel::format(model.estimate(activity),
                                              model.segment_ns(activity))
                        .c_str());
}

int cmd_replay(const CliOptions& opts) {
  if (opts.positional.empty()) {
    return usage();
  }
  std::vector<host::TraceRecord> records;
  if (Status s = host::load_trace(opts.positional[0], records); !s.ok()) {
    std::fprintf(stderr, "load_trace: %s\n", s.to_string().c_str());
    return 1;
  }
  auto sim = make_sim(opts);
  if (!sim) {
    return 1;
  }
  // CMC records in the trace need the mutex/extras registered; register
  // the builtin set so common traces replay out of the box.
  (void)load_mutex_ops(*sim, opts);
  TraceWiring wiring;
  if (!setup_tracing(*sim, opts, wiring)) {
    return 1;
  }
  setup_stats_interval(*sim, opts);
  const auto before = sim->stats();
  host::ReplayResult result;
  if (Status s = host::replay_trace(*sim, records, result); !s.ok()) {
    std::fprintf(stderr, "replay: %s\n", s.to_string().c_str());
    return 1;
  }
  std::printf("replayed %llu requests: %llu responses, %llu errors, "
              "%llu cycles, %llu retries\n",
              static_cast<unsigned long long>(result.requests_issued),
              static_cast<unsigned long long>(result.responses_received),
              static_cast<unsigned long long>(result.error_responses),
              static_cast<unsigned long long>(result.cycles),
              static_cast<unsigned long long>(result.send_retries));
  std::printf("%s", sim::format_stats(*sim).c_str());
  maybe_stage_report(*sim, opts, wiring);
  maybe_power_report(*sim, before, opts);
  if (!maybe_stats_json(*sim, opts)) {
    return 1;
  }
  return result.error_responses == 0 ? 0 : 1;
}

int cmd_mutex(const CliOptions& opts) {
  if (opts.positional.empty()) {
    return usage();
  }
  const auto threads =
      static_cast<std::uint32_t>(std::atoi(opts.positional[0].c_str()));
  auto sim = make_sim(opts);
  if (!sim || !load_mutex_ops(*sim, opts)) {
    return 1;
  }
  TraceWiring wiring;
  if (!setup_tracing(*sim, opts, wiring)) {
    return 1;
  }
  setup_stats_interval(*sim, opts);
  const auto before = sim->stats();
  host::MutexOptions mopts;
  mopts.lock_addr = 0x4000;
  host::MutexResult result;
  if (Status s = host::run_mutex_contention(*sim, threads, mopts, result);
      !s.ok()) {
    std::fprintf(stderr, "mutex: %s\n", s.to_string().c_str());
    return 1;
  }
  std::printf("threads=%u MIN_CYCLE=%llu MAX_CYCLE=%llu AVG_CYCLE=%.2f\n",
              threads, static_cast<unsigned long long>(result.min_cycles),
              static_cast<unsigned long long>(result.max_cycles),
              result.avg_cycles);
  maybe_stage_report(*sim, opts, wiring);
  maybe_power_report(*sim, before, opts);
  if (!maybe_stats_json(*sim, opts)) {
    return 1;
  }
  return 0;
}

/// Fault-containment demo: load a rogue CMC library and drive it through
/// every misbehaviour mode until the slot quarantines, while a
/// well-behaved builtin op (hmc_satinc, CMC21) keeps executing on another
/// slot. Fully deterministic — no RNG — so repeated runs and the
/// --exhaustive-clock scheduler must produce byte-identical stats.
int cmd_rogue(const CliOptions& opts) {
  if (opts.positional.empty()) {
    return usage();
  }
  auto sim = make_sim(opts);
  if (!sim) {
    return 1;
  }
  if (Status s = sim->load_cmc(opts.positional[0]); !s.ok()) {
    std::fprintf(stderr, "load_cmc(%s): %s\n", opts.positional[0].c_str(),
                 s.to_string().c_str());
    return 1;
  }
  if (Status s = sim->register_cmc(hmcsim_builtin_satinc_register,
                                   hmcsim_builtin_satinc_execute,
                                   hmcsim_builtin_satinc_str);
      !s.ok()) {
    std::fprintf(stderr, "register satinc: %s\n", s.to_string().c_str());
    return 1;
  }
  TraceWiring wiring;
  if (!setup_tracing(*sim, opts, wiring)) {
    return 1;
  }
  setup_stats_interval(*sim, opts);

  // One request at a time: send, clock to the response, receive.
  std::uint64_t oks = 0;
  std::uint64_t errors = 0;
  std::uint64_t satinc_failures = 0;
  std::uint16_t tag = 1;
  auto transact = [&](spec::Rqst rqst, std::uint64_t addr,
                      bool& was_error) -> bool {
    spec::RqstParams params;
    params.rqst = rqst;
    params.addr = addr;
    params.tag = static_cast<std::uint16_t>(tag++ & 0x7FF);
    for (int tries = 0; tries < 64; ++tries) {
      const Status s = sim->send(params, 0);
      if (s.ok()) {
        break;
      }
      if (!s.stalled()) {
        std::fprintf(stderr, "send: %s\n", s.to_string().c_str());
        return false;
      }
      sim->clock();
    }
    sim::Response rsp;
    for (int cycles = 0; cycles < 4096; ++cycles) {
      sim->clock();
      if (sim->rsp_ready(0)) {
        if (!sim->recv(0, rsp).ok()) {
          return false;
        }
        was_error = rsp.pkt.cmd() ==
                    static_cast<std::uint8_t>(spec::ResponseType::RSP_ERROR);
        return true;
      }
    }
    std::fprintf(stderr, "no response after 4096 cycles\n");
    return false;
  };

  const std::uint64_t rogue_base = 0x10000;
  const std::uint64_t satinc_addr = 0x20000;
  const std::uint32_t threshold =
      sim->config().cmc_fail_threshold != 0 ? sim->config().cmc_fail_threshold
                                            : 8;
  bool was_error = false;
  // Phase 1 — every mode once (success at mode 0 resets the streak).
  for (std::uint64_t mode = 0; mode < 5; ++mode) {
    if (!transact(spec::Rqst::CMC70, rogue_base | (mode << 4), was_error)) {
      return 1;
    }
    (was_error ? errors : oks)++;
    if (!transact(spec::Rqst::CMC21, satinc_addr, was_error)) {
      return 1;
    }
    satinc_failures += was_error ? 1 : 0;
  }
  // Phase 2 — failures only, until the quarantine threshold trips.
  for (std::uint32_t i = 0; i < 2 * threshold; ++i) {
    const std::uint64_t mode = 1 + (i % 4);
    if (!transact(spec::Rqst::CMC70, rogue_base | (mode << 4), was_error)) {
      return 1;
    }
    (was_error ? errors : oks)++;
  }
  // Phase 3 — the quarantined slot answers errors without executing; the
  // well-behaved neighbour is unaffected.
  for (int i = 0; i < 4; ++i) {
    if (!transact(spec::Rqst::CMC70, rogue_base, was_error)) {
      return 1;
    }
    (was_error ? errors : oks)++;
    if (!transact(spec::Rqst::CMC21, satinc_addr, was_error)) {
      return 1;
    }
    satinc_failures += was_error ? 1 : 0;
  }
  (void)sim->clock_until_idle(8192);

  const metrics::Gauge* quarantined =
      sim->metrics().find_gauge("cmc.hmc_rogue.quarantined");
  const bool is_quarantined =
      quarantined != nullptr && quarantined->value() == 1.0;
  std::printf("rogue: %llu ok, %llu error responses; satinc failures: %llu; "
              "quarantined: %s\n",
              static_cast<unsigned long long>(oks),
              static_cast<unsigned long long>(errors),
              static_cast<unsigned long long>(satinc_failures),
              is_quarantined ? "yes" : "no");
  maybe_stage_report(*sim, opts, wiring);
  if (!maybe_stats_json(*sim, opts)) {
    return 1;
  }
  return (is_quarantined && satinc_failures == 0) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return usage();
  }
  CliOptions opts;
  if (!parse_options(argc, argv, opts)) {
    return usage();
  }
  const std::string_view cmd = argv[1];
  if (cmd == "commands") {
    return cmd_commands();
  }
  if (cmd == "config") {
    if (!opts.positional.empty()) {
      opts.links = std::atoi(opts.positional[0].c_str());
    }
    return cmd_config(opts);
  }
  if (cmd == "cmc-info") {
    return cmd_cmc_info(opts);
  }
  if (cmd == "replay") {
    return cmd_replay(opts);
  }
  if (cmd == "mutex") {
    return cmd_mutex(opts);
  }
  if (cmd == "rogue") {
    return cmd_rogue(opts);
  }
  return usage();
}
