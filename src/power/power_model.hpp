// power_model.hpp — energy/power estimation (the paper's §VII future work).
//
// HMC-Sim deliberately ships no vendor timing or power data; this module
// implements the estimation layer the paper proposes as future work. It is
// an *activity-based* model: counted events (link FLITs, vault operations,
// DRAM block accesses, cube-to-cube forwards) each carry an energy
// coefficient, plus a static/background power term per cycle. Default
// coefficients derive from the publicly documented HMC energy envelope
// (~10.48 pJ/bit end-to-end, of which ~3.7 pJ/bit is DRAM access — Jeddeloh
// & Keeth, VLSIT 2012); every coefficient is overridable so users can model
// arbitrary devices.
//
// The model consumes the simulator's aggregate statistics, so it can price
// any completed simulation segment:
//
//   PowerModel model;                      // default coefficients
//   auto before = sim::collect_stats(sim);
//   ... run workload ...
//   EnergyReport r = model.estimate(delta(before, sim::collect_stats(sim)));
#pragma once

#include <cstdint>
#include <string>

#include "sim/sim_stats.hpp"

namespace hmcsim::power {

/// Energy coefficients in picojoules per event (see header comment for the
/// provenance of the defaults).
struct PowerCoefficients {
  /// Link traversal: serialisation + SerDes, per FLIT (128 bits of payload
  /// at ~6.78 pJ/bit link+logic share).
  double link_flit_pj = 868.0;
  /// DRAM array access per 16-byte block touched (3.7 pJ/bit x 128 bits).
  double dram_block_pj = 474.0;
  /// Vault controller issue/retire overhead per request.
  double vault_op_pj = 120.0;
  /// Logic-layer ALU cost per atomic (AMO) executed.
  double amo_op_pj = 60.0;
  /// Logic-layer cost per CMC operation executed (custom logic blocks are
  /// typically richer than fixed-function AMOs).
  double cmc_op_pj = 90.0;
  /// Crossbar traversal per routed packet.
  double xbar_hop_pj = 35.0;
  /// Cube-to-cube forwarding per packet (chain hop SerDes).
  double chain_hop_pj = 900.0;
  /// Background/static power per device, in milliwatts (PLLs, refresh,
  /// idle SerDes). Charged per cycle via the clock period below.
  double static_mw_per_device = 650.0;
  /// Modelled clock period in nanoseconds (1.25 GHz logic layer default).
  double clock_period_ns = 0.8;
};

/// Activity deltas priced by the model (differences of two SimStats).
struct Activity {
  std::uint64_t cycles = 0;
  std::uint64_t rqst_flits = 0;
  std::uint64_t rsp_flits = 0;
  std::uint64_t rqsts_processed = 0;
  std::uint64_t amo_executed = 0;
  std::uint64_t cmc_executed = 0;
  std::uint64_t xbar_routed = 0;
  std::uint64_t chain_hops = 0;
  std::uint32_t num_devices = 1;
};

/// Difference of two stats snapshots taken around a workload.
[[nodiscard]] Activity delta(const sim::SimStats& before,
                             const sim::SimStats& after,
                             std::uint32_t num_devices = 1) noexcept;

/// Itemised energy estimate. All energies in nanojoules.
struct EnergyReport {
  double link_nj = 0;
  double dram_nj = 0;
  double vault_nj = 0;
  double amo_nj = 0;
  double cmc_nj = 0;
  double xbar_nj = 0;
  double chain_nj = 0;
  double static_nj = 0;

  [[nodiscard]] double dynamic_nj() const noexcept {
    return link_nj + dram_nj + vault_nj + amo_nj + cmc_nj + xbar_nj +
           chain_nj;
  }
  [[nodiscard]] double total_nj() const noexcept {
    return dynamic_nj() + static_nj;
  }
  /// Average power over the segment in milliwatts.
  [[nodiscard]] double avg_power_mw(double segment_ns) const noexcept {
    return segment_ns > 0 ? total_nj() / segment_ns * 1000.0 : 0.0;
  }
  /// Energy per useful byte moved (nJ/byte), the figure of merit for the
  /// PIM-vs-host comparisons.
  [[nodiscard]] double nj_per_byte(std::uint64_t payload_bytes) const {
    return payload_bytes > 0
               ? total_nj() / static_cast<double>(payload_bytes)
               : 0.0;
  }
};

class PowerModel {
 public:
  PowerModel() = default;
  explicit PowerModel(const PowerCoefficients& coeffs) : coeffs_(coeffs) {}

  [[nodiscard]] const PowerCoefficients& coefficients() const noexcept {
    return coeffs_;
  }

  /// Price an activity delta.
  [[nodiscard]] EnergyReport estimate(const Activity& activity) const;

  /// Simulated wall time of an activity segment in nanoseconds.
  [[nodiscard]] double segment_ns(const Activity& activity) const noexcept {
    return static_cast<double>(activity.cycles) * coeffs_.clock_period_ns;
  }

  /// Human-readable one-block rendering of a report.
  [[nodiscard]] static std::string format(const EnergyReport& report,
                                          double segment_ns);

 private:
  PowerCoefficients coeffs_;
};

}  // namespace hmcsim::power
