#include "power/power_model.hpp"

#include <sstream>

namespace hmcsim::power {

Activity delta(const sim::SimStats& before, const sim::SimStats& after,
               std::uint32_t num_devices) noexcept {
  Activity a;
  a.cycles = after.cycles - before.cycles;
  a.rqst_flits = after.rqst_flits - before.rqst_flits;
  a.rsp_flits = after.rsp_flits - before.rsp_flits;
  a.rqsts_processed =
      after.rqsts_processed - before.rqsts_processed;
  a.amo_executed = after.amo_executed - before.amo_executed;
  a.cmc_executed = after.cmc_executed - before.cmc_executed;
  // Routed packets approximate one request + one response crossbar hop per
  // processed request; forwarded packets add chain hops.
  a.xbar_routed = after.rqsts_processed -
                  before.rqsts_processed +
                  after.rsps_generated - before.rsps_generated;
  a.chain_hops = (after.forwarded_rqsts -
                  before.forwarded_rqsts) +
                 (after.forwarded_rsps -
                  before.forwarded_rsps);
  a.num_devices = num_devices;
  return a;
}

EnergyReport PowerModel::estimate(const Activity& activity) const {
  EnergyReport r;
  const double to_nj = 1.0 / 1000.0;  // pJ -> nJ.
  r.link_nj = static_cast<double>(activity.rqst_flits + activity.rsp_flits) *
              coeffs_.link_flit_pj * to_nj;
  // Every processed request touches one DRAM block except mode/register
  // accesses; the approximation charges all of them, which over-counts by
  // the (rare) register traffic.
  r.dram_nj = static_cast<double>(activity.rqsts_processed) *
              coeffs_.dram_block_pj * to_nj;
  r.vault_nj = static_cast<double>(activity.rqsts_processed) *
               coeffs_.vault_op_pj * to_nj;
  r.amo_nj =
      static_cast<double>(activity.amo_executed) * coeffs_.amo_op_pj * to_nj;
  r.cmc_nj =
      static_cast<double>(activity.cmc_executed) * coeffs_.cmc_op_pj * to_nj;
  r.xbar_nj = static_cast<double>(activity.xbar_routed) *
              coeffs_.xbar_hop_pj * to_nj;
  r.chain_nj = static_cast<double>(activity.chain_hops) *
               coeffs_.chain_hop_pj * to_nj;
  // Static: P[mW] * t[ns] = pJ.
  const double seg_ns =
      static_cast<double>(activity.cycles) * coeffs_.clock_period_ns;
  r.static_nj = coeffs_.static_mw_per_device *
                static_cast<double>(activity.num_devices) * seg_ns * to_nj;
  return r;
}

std::string PowerModel::format(const EnergyReport& report,
                               double segment_ns) {
  std::ostringstream oss;
  oss.setf(std::ios::fixed);
  oss.precision(2);
  oss << "energy breakdown (nJ):\n"
      << "  links   " << report.link_nj << '\n'
      << "  dram    " << report.dram_nj << '\n'
      << "  vaults  " << report.vault_nj << '\n'
      << "  amo     " << report.amo_nj << '\n'
      << "  cmc     " << report.cmc_nj << '\n'
      << "  xbar    " << report.xbar_nj << '\n'
      << "  chain   " << report.chain_nj << '\n'
      << "  static  " << report.static_nj << '\n'
      << "  total   " << report.total_nj() << " nJ over " << segment_ns
      << " ns => " << report.avg_power_mw(segment_ns) << " mW avg\n";
  return oss.str();
}

}  // namespace hmcsim::power
