// fault.hpp — deterministic DRAM fault injection, SEC-DED ECC accounting,
// and patrol scrubbing for one cube.
//
// The model works on 64-bit words. The backing store always holds the TRUE
// data; faults live in a sparse overlay of per-word flip masks, so the value
// a read observes is stored ^ overlay (plus any disagreement with permanent
// stuck-at bits). SEC-DED semantics follow from the popcount of that error
// mask: one bad bit is corrected transparently (counted), two or more make
// the read uncorrectable — the vault returns a poisoned response (zeroed
// payload, DINV errstat) and never silently corrupt data.
//
// Determinism contract (see docs/FAULTS.md): each per-read injection draw is
// keyed by (cube, vault, word address, cycle) through chained SplitMix64
// mixes feeding a private Xoshiro256 stream, so the flip schedule is a pure
// function of the Config seed and the request stream — byte-identical for
// every Config::threads value and for active vs exhaustive clocking. New
// flips are OR-deposited (never XOR) so re-reading a word within one cycle
// cannot cancel a fault.
//
// Threading: one FaultInjector per device, touched only during that
// device's stage-B execution (vault reads, the patrol scrub burst) or under
// the serialized CMC window — the same ownership discipline as the
// backing store, so PR 7's shard workers need no extra synchronization.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <set>
#include <string>

#include "metrics/stat_registry.hpp"

namespace hmcsim::sim {
struct Config;
}

namespace hmcsim::mem {

class FaultInjector {
 public:
  /// Registers the cube's `ecc.*` counters under `prefix` (e.g. "cube0")
  /// only when fault injection is configured, so stats output stays
  /// byte-identical to pre-fault builds whenever the feature is off.
  FaultInjector(const sim::Config& cfg, std::uint32_t dev_id,
                metrics::StatRegistry& reg, const std::string& prefix);

  /// True when any fault mechanism (transient or stuck-at) is configured.
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  /// Rolls the deterministic injection draw for one 64-bit word read and
  /// returns the word's accumulated error mask: latent overlay flips ORed
  /// with the bits where `stored` disagrees with a stuck-at cell. The
  /// caller applies SEC-DED: popcount 1 => corrected, >= 2 => poisoned.
  /// `addr` is the byte address of the word (8-byte aligned).
  [[nodiscard]] std::uint64_t read_error_bits(std::uint32_t vault,
                                              std::uint64_t addr,
                                              std::uint64_t stored,
                                              std::uint64_t cycle);

  /// A functional write lands TRUE data: it clears overlay flips covering
  /// the written words and re-dirties any covered stuck cell so the patrol
  /// scrubber will visit (and give up on) it exactly once.
  void note_write(std::uint64_t addr, std::size_t bytes);

  /// Backdoor (host preload) writes repair silently: overlay flips are
  /// dropped without waking the scrubber or touching any counter.
  void clear_range(std::uint64_t addr, std::size_t bytes);

  // ECC outcome accounting (call sites decide; counters are never null
  // when enabled() is true).
  void count_corrected() { corrected_->inc(); }
  void count_uncorrectable() { uncorrectable_->inc(); }
  void count_poison_returned() { poison_returned_->inc(); }

  /// Patrol scrub tick: on every scrub_interval-th cycle, visit up to
  /// kScrubWordsPerTick pending words in ascending address order. Latent
  /// single-bit overlay faults are repaired; multi-bit overlay faults are
  /// recorded as uncorrectable and parked (a later write clears them);
  /// dirtied stuck cells are visited once and left. No-op between ticks
  /// and while no work is pending, so it never wakes an idle simulation.
  void clock_scrub(std::uint64_t cycle);

  /// Next cycle > `cycle` at which clock_scrub will do work, or
  /// UINT64_MAX when no scrub work is pending — feeds next_event_cycle so
  /// O(1) quiescence fast-forward never skips a productive tick.
  [[nodiscard]] std::uint64_t next_scrub_event(
      std::uint64_t cycle) const noexcept;

  /// Words the patrol scrubber still has to visit.
  [[nodiscard]] std::size_t pending_scrub_work() const noexcept {
    return pending_;
  }

  // ---- deterministic test hooks ------------------------------------------
  /// Deposit transient flips into one word (as if injected by a read).
  void inject_transient(std::uint64_t addr, std::uint64_t mask);
  /// Install/overwrite a permanent stuck-at cell: the bits in `mask` are
  /// forced to the corresponding bits of `value` on every read.
  void inject_stuck(std::uint64_t addr, std::uint64_t mask,
                    std::uint64_t value);

  /// Forget all latent faults, re-dirty every stuck cell, and zero the
  /// ecc.* counters (mirrors Vault::reset()).
  void reset();

  /// Words visited per scrub tick. Fixed (not configurable) so golden runs
  /// cannot drift with tuning.
  static constexpr std::size_t kScrubWordsPerTick = 64;

 private:
  struct Latent {
    std::uint64_t mask = 0;  ///< Flipped bits (observed = stored ^ mask).
    bool parked = false;     ///< Scrubber saw it uncorrectable; skip it.
  };
  struct Stuck {
    std::uint64_t mask = 0;   ///< Bits hard-wired by the fault.
    std::uint64_t value = 0;  ///< Their stuck levels (subset of mask).
  };

  void deposit(std::uint64_t word, std::uint64_t mask);

  bool enabled_ = false;
  std::uint32_t dev_id_ = 0;
  std::uint64_t seed_ = 0;
  std::uint64_t threshold_ = 0;  ///< ppm scaled to the full 2^64 range.
  std::uint64_t scrub_interval_ = 0;
  std::uint64_t capacity_words_ = 0;

  std::map<std::uint64_t, Latent> overlay_;  ///< word index -> flips
  std::map<std::uint64_t, Stuck> stuck_;     ///< word index -> stuck spec
  std::set<std::uint64_t> stuck_dirty_;      ///< stuck cells awaiting patrol
  std::size_t pending_ = 0;  ///< un-parked overlay entries + stuck_dirty_

  metrics::Counter* injected_ = nullptr;
  metrics::Counter* corrected_ = nullptr;
  metrics::Counter* uncorrectable_ = nullptr;
  metrics::Counter* poison_returned_ = nullptr;
  metrics::Counter* scrub_repaired_ = nullptr;
  metrics::Counter* scrub_uncorrectable_ = nullptr;
  metrics::Counter* scrub_stuck_ = nullptr;
};

}  // namespace hmcsim::mem
