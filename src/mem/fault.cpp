// fault.cpp — see fault.hpp for the model and determinism contract.
#include "mem/fault.hpp"

#include <bit>
#include <limits>

#include "common/rng.hpp"
#include "sim/config.hpp"

namespace hmcsim::mem {

namespace {
/// Domain separator for the stuck-at placement stream, so it can never
/// collide with a per-read injection key.
constexpr std::uint64_t kStuckDomain = 0x57AC4A7B17C3115ULL;
}  // namespace

FaultInjector::FaultInjector(const sim::Config& cfg, std::uint32_t dev_id,
                             metrics::StatRegistry& reg,
                             const std::string& prefix)
    : enabled_(cfg.dram_fault_ppm != 0 || cfg.stuck_faults != 0),
      dev_id_(dev_id),
      seed_(cfg.dram_fault_seed),
      capacity_words_(cfg.capacity_bytes / 8) {
  if (!enabled_) {
    return;
  }
  threshold_ = std::uint64_t{cfg.dram_fault_ppm} *
               (std::numeric_limits<std::uint64_t>::max() / 1'000'000ULL);
  scrub_interval_ = cfg.scrub_interval;
  const std::string ecc = prefix + ".ecc.";
  injected_ = &reg.counter(ecc + "injected",
                           "transient bit flips deposited by reads");
  corrected_ = &reg.counter(ecc + "corrected",
                            "single-bit ECC corrections on reads");
  uncorrectable_ =
      &reg.counter(ecc + "uncorrectable",
                   "words read with >= 2 bad bits (beyond SEC-DED)");
  poison_returned_ =
      &reg.counter(ecc + "poison_returned",
                   "responses poisoned (zeroed payload, DINV errstat)");
  scrub_repaired_ = &reg.counter(
      ecc + "scrub_repaired",
      "latent single-bit faults repaired by the patrol scrubber");
  scrub_uncorrectable_ =
      &reg.counter(ecc + "scrub_uncorrectable",
                   "multi-bit words the scrubber found and parked");
  scrub_stuck_ =
      &reg.counter(ecc + "scrub_stuck",
                   "dirtied stuck-at cells the scrubber visited and left");

  // Place the permanent stuck-at cells. The stream is private to this
  // constructor: placement depends only on (seed, cube), never on traffic.
  SplitMix64 mix(seed_ ^ kStuckDomain);
  Xoshiro256 g(mix.next() ^ dev_id_);
  for (std::uint32_t i = 0; i < cfg.stuck_faults; ++i) {
    const std::uint64_t word = g.below(capacity_words_);
    const std::uint64_t bit = 1ULL << g.below(64);
    const bool level = (g() & 1ULL) != 0;
    Stuck& s = stuck_[word];
    s.mask |= bit;
    s.value = level ? (s.value | bit) : (s.value & ~bit);
  }
  for (const auto& [word, s] : stuck_) {
    stuck_dirty_.insert(word);
  }
  pending_ = stuck_dirty_.size();
}

std::uint64_t FaultInjector::read_error_bits(std::uint32_t vault,
                                             std::uint64_t addr,
                                             std::uint64_t stored,
                                             std::uint64_t cycle) {
  const std::uint64_t word = addr >> 3;
  if (threshold_ != 0) {
    // Chained SplitMix64 key mix: a pure function of (seed, word, cycle,
    // cube, vault) — no stream state survives between reads, so the
    // schedule cannot depend on execution order.
    SplitMix64 k1(seed_ ^ word);
    SplitMix64 k2(k1.next() ^ cycle);
    SplitMix64 k3(k2.next() ^
                  ((std::uint64_t{dev_id_} << 32) | std::uint64_t{vault}));
    Xoshiro256 g(k3.next());
    if (g() < threshold_) {
      // OR-deposit: a repeat read of this word in the same cycle draws the
      // identical flip and must not cancel it.
      injected_->inc();
      deposit(word, 1ULL << g.below(64));
    }
  }
  std::uint64_t err = 0;
  if (const auto it = overlay_.find(word); it != overlay_.end()) {
    err = it->second.mask;
  }
  if (!stuck_.empty()) {
    if (const auto it = stuck_.find(word); it != stuck_.end()) {
      err |= (stored ^ it->second.value) & it->second.mask;
    }
  }
  return err;
}

void FaultInjector::deposit(std::uint64_t word, std::uint64_t mask) {
  auto [it, inserted] = overlay_.try_emplace(word);
  if (inserted) {
    it->second.mask = mask;
    ++pending_;
    return;
  }
  const std::uint64_t merged = it->second.mask | mask;
  if (merged != it->second.mask && it->second.parked) {
    // New damage on a word the scrubber had given up on: revisit it.
    it->second.parked = false;
    ++pending_;
  }
  it->second.mask = merged;
}

void FaultInjector::note_write(std::uint64_t addr, std::size_t bytes) {
  if (!enabled_ || bytes == 0) {
    return;
  }
  const std::uint64_t first = addr >> 3;
  const std::uint64_t last = (addr + bytes - 1) >> 3;
  for (auto it = overlay_.lower_bound(first);
       it != overlay_.end() && it->first <= last;) {
    if (!it->second.parked) {
      --pending_;
    }
    it = overlay_.erase(it);
  }
  if (!stuck_.empty()) {
    for (auto it = stuck_.lower_bound(first);
         it != stuck_.end() && it->first <= last; ++it) {
      // The write re-dirtied a permanent cell; patrol visits it once.
      if (stuck_dirty_.insert(it->first).second) {
        ++pending_;
      }
    }
  }
}

void FaultInjector::clear_range(std::uint64_t addr, std::size_t bytes) {
  if (!enabled_ || bytes == 0) {
    return;
  }
  const std::uint64_t first = addr >> 3;
  const std::uint64_t last = (addr + bytes - 1) >> 3;
  for (auto it = overlay_.lower_bound(first);
       it != overlay_.end() && it->first <= last;) {
    if (!it->second.parked) {
      --pending_;
    }
    it = overlay_.erase(it);
  }
}

void FaultInjector::clock_scrub(std::uint64_t cycle) {
  if (scrub_interval_ == 0 || pending_ == 0 ||
      cycle % scrub_interval_ != 0) {
    return;
  }
  std::size_t budget = kScrubWordsPerTick;
  auto ov = overlay_.begin();
  auto st = stuck_dirty_.begin();
  while (budget != 0 && pending_ != 0) {
    while (ov != overlay_.end() && ov->second.parked) {
      ++ov;
    }
    const bool have_ov = ov != overlay_.end();
    const bool have_st = st != stuck_dirty_.end();
    if (!have_ov && !have_st) {
      break;
    }
    if (have_ov && (!have_st || ov->first <= *st)) {
      if (std::popcount(ov->second.mask) == 1) {
        ov = overlay_.erase(ov);
        scrub_repaired_->inc();
      } else {
        // Beyond SEC-DED: park it so patrol cannot spin; only a write (or
        // fresh damage) re-queues the word.
        ov->second.parked = true;
        scrub_uncorrectable_->inc();
        ++ov;
      }
    } else {
      scrub_stuck_->inc();
      st = stuck_dirty_.erase(st);
    }
    --pending_;
    --budget;
  }
}

std::uint64_t FaultInjector::next_scrub_event(
    std::uint64_t cycle) const noexcept {
  if (scrub_interval_ == 0 || pending_ == 0) {
    return std::numeric_limits<std::uint64_t>::max();
  }
  return (cycle / scrub_interval_ + 1) * scrub_interval_;
}

void FaultInjector::inject_transient(std::uint64_t addr, std::uint64_t mask) {
  if (enabled_ && mask != 0) {
    deposit(addr >> 3, mask);
  }
}

void FaultInjector::inject_stuck(std::uint64_t addr, std::uint64_t mask,
                                 std::uint64_t value) {
  if (!enabled_ || mask == 0) {
    return;
  }
  const std::uint64_t word = addr >> 3;
  Stuck& s = stuck_[word];
  s.mask |= mask;
  s.value = (s.value & ~mask) | (value & mask);
  if (stuck_dirty_.insert(word).second) {
    ++pending_;
  }
}

void FaultInjector::reset() {
  if (!enabled_) {
    return;
  }
  overlay_.clear();
  stuck_dirty_.clear();
  for (const auto& [word, s] : stuck_) {
    stuck_dirty_.insert(word);
  }
  pending_ = stuck_dirty_.size();
  for (metrics::Counter* c :
       {injected_, corrected_, uncorrectable_, poison_returned_,
        scrub_repaired_, scrub_uncorrectable_, scrub_stuck_}) {
    c->reset();
  }
}

}  // namespace hmcsim::mem
