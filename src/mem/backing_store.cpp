#include "mem/backing_store.hpp"

#include <algorithm>
#include <bit>
#include <cstring>

namespace hmcsim::mem {

BackingStore::BackingStore(std::uint64_t capacity_bytes)
    : capacity_(capacity_bytes) {}

BackingStore::Page& BackingStore::page_for_write(std::uint64_t page_index) {
  if (page_index == mru_index_) {
    return *mru_page_;
  }
  auto& slot = pages_[page_index];
  if (!slot) {
    slot = std::make_unique<Page>();
    slot->fill(0);
  }
  mru_index_ = page_index;
  mru_page_ = slot.get();
  return *slot;
}

const BackingStore::Page* BackingStore::page_for_read(
    std::uint64_t page_index) const noexcept {
  if (page_index == mru_index_) {
    return mru_page_;
  }
  const auto it = pages_.find(page_index);
  if (it == pages_.end()) {
    // Don't cache misses: the page may materialise through page_for_write
    // later, and a cached nullptr would mask it.
    return nullptr;
  }
  mru_index_ = page_index;
  mru_page_ = it->second.get();
  return it->second.get();
}

Status BackingStore::read(std::uint64_t addr,
                          std::span<std::uint8_t> out) const {
  if (!in_range(addr, out.size())) {
    return Status::InvalidArg("read beyond device capacity");
  }
  std::size_t done = 0;
  while (done < out.size()) {
    const std::uint64_t a = addr + done;
    const std::uint64_t page_index = a / kPageBytes;
    const std::size_t offset = static_cast<std::size_t>(a % kPageBytes);
    const std::size_t chunk =
        std::min(out.size() - done, kPageBytes - offset);
    if (const Page* page = page_for_read(page_index); page != nullptr) {
      std::memcpy(out.data() + done, page->data() + offset, chunk);
    } else {
      std::memset(out.data() + done, 0, chunk);
    }
    done += chunk;
  }
  return Status::Ok();
}

Status BackingStore::write(std::uint64_t addr,
                           std::span<const std::uint8_t> in) {
  if (!in_range(addr, in.size())) {
    return Status::InvalidArg("write beyond device capacity");
  }
  std::size_t done = 0;
  while (done < in.size()) {
    const std::uint64_t a = addr + done;
    const std::uint64_t page_index = a / kPageBytes;
    const std::size_t offset = static_cast<std::size_t>(a % kPageBytes);
    const std::size_t chunk = std::min(in.size() - done, kPageBytes - offset);
    Page& page = page_for_write(page_index);
    std::memcpy(page.data() + offset, in.data() + done, chunk);
    done += chunk;
  }
  return Status::Ok();
}

Status BackingStore::read_u64(std::uint64_t addr, std::uint64_t& out) const {
  // AMO-rate hot path: a page-aligned word on a little-endian host is one
  // memcpy from the resident page (or the constant 0 for untouched pages).
  if constexpr (std::endian::native == std::endian::little) {
    const std::size_t offset = static_cast<std::size_t>(addr % kPageBytes);
    if (offset <= kPageBytes - 8) {
      if (!in_range(addr, 8)) {
        return Status::InvalidArg("read beyond device capacity");
      }
      if (const Page* page = page_for_read(addr / kPageBytes);
          page != nullptr) {
        std::memcpy(&out, page->data() + offset, 8);
      } else {
        out = 0;
      }
      return Status::Ok();
    }
  }
  std::array<std::uint8_t, 8> buf{};
  if (Status s = read(addr, buf); !s.ok()) {
    return s;
  }
  std::uint64_t v = 0;
  for (unsigned i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(buf[i]) << (8 * i);
  }
  out = v;
  return Status::Ok();
}

Status BackingStore::write_u64(std::uint64_t addr, std::uint64_t value) {
  if constexpr (std::endian::native == std::endian::little) {
    const std::size_t offset = static_cast<std::size_t>(addr % kPageBytes);
    if (offset <= kPageBytes - 8) {
      if (!in_range(addr, 8)) {
        return Status::InvalidArg("write beyond device capacity");
      }
      std::memcpy(page_for_write(addr / kPageBytes).data() + offset, &value,
                  8);
      return Status::Ok();
    }
  }
  std::array<std::uint8_t, 8> buf{};
  for (unsigned i = 0; i < 8; ++i) {
    buf[i] = static_cast<std::uint8_t>((value >> (8 * i)) & 0xFFU);
  }
  return write(addr, buf);
}

Status BackingStore::read_u128(std::uint64_t addr,
                               std::array<std::uint64_t, 2>& out) const {
  if (Status s = read_u64(addr, out[0]); !s.ok()) {
    return s;
  }
  return read_u64(addr + 8, out[1]);
}

Status BackingStore::write_u128(std::uint64_t addr,
                                const std::array<std::uint64_t, 2>& in) {
  if (Status s = write_u64(addr, in[0]); !s.ok()) {
    return s;
  }
  return write_u64(addr + 8, in[1]);
}

}  // namespace hmcsim::mem
