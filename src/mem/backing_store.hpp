// backing_store.hpp — sparse memory model backing a cube's DRAM.
//
// An 8 GB cube cannot be allocated eagerly; the store materialises 4 KiB
// pages on first write. Reads of untouched memory return zero, which is the
// deterministic "initial state" the paper's mutex experiments rely on
// ("mutex values are initialized to a known state").
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>

#include "common/status.hpp"

namespace hmcsim::mem {

class BackingStore {
 public:
  static constexpr std::size_t kPageBytes = 4096;

  /// capacity_bytes must be a multiple of the page size.
  explicit BackingStore(std::uint64_t capacity_bytes);

  [[nodiscard]] std::uint64_t capacity() const noexcept { return capacity_; }

  /// Number of pages currently materialised (observability/testing).
  [[nodiscard]] std::size_t resident_pages() const noexcept {
    return pages_.size();
  }

  /// Byte-granularity access. Out-of-range accesses fail without partial
  /// effects.
  [[nodiscard]] Status read(std::uint64_t addr,
                            std::span<std::uint8_t> out) const;
  [[nodiscard]] Status write(std::uint64_t addr,
                             std::span<const std::uint8_t> in);

  /// 64-bit word access (little-endian), the granularity AMOs operate on.
  [[nodiscard]] Status read_u64(std::uint64_t addr,
                                std::uint64_t& out) const;
  [[nodiscard]] Status write_u64(std::uint64_t addr, std::uint64_t value);

  /// 128-bit (one FLIT) access as two 64-bit words [lo, hi].
  [[nodiscard]] Status read_u128(std::uint64_t addr,
                                 std::array<std::uint64_t, 2>& out) const;
  [[nodiscard]] Status write_u128(std::uint64_t addr,
                                  const std::array<std::uint64_t, 2>& in);

  /// Drop all pages (reset to all-zero state).
  void clear() noexcept {
    pages_.clear();
    mru_index_ = UINT64_MAX;
    mru_page_ = nullptr;
  }

 private:
  using Page = std::array<std::uint8_t, kPageBytes>;

  [[nodiscard]] bool in_range(std::uint64_t addr,
                              std::size_t len) const noexcept {
    return addr < capacity_ && len <= capacity_ - addr;
  }

  /// Page for writing (materialises); never null for in-range addresses.
  Page& page_for_write(std::uint64_t page_index);
  /// Page for reading; nullptr if the page was never written.
  [[nodiscard]] const Page* page_for_read(
      std::uint64_t page_index) const noexcept;

  std::uint64_t capacity_;
  std::unordered_map<std::uint64_t, std::unique_ptr<Page>> pages_;
  // Single-entry MRU page cache: vault traffic hits the same page in long
  // runs, so remembering the last resolved page skips the hash lookup.
  // Only materialised pages are cached (never a read miss), so the entry
  // stays valid until clear(); the pointees are unique_ptr-owned and
  // stable across rehash.
  mutable std::uint64_t mru_index_ = UINT64_MAX;
  mutable Page* mru_page_ = nullptr;
};

}  // namespace hmcsim::mem
