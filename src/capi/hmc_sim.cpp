#include "capi/hmc_sim.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <span>

#include <vector>

#include "metrics/exposition.hpp"
#include "metrics/sampler.hpp"
#include "sim/prof.hpp"
#include "sim/session.hpp"
#include "sim/simulator.hpp"
#include "sim/stats_report.hpp"
#include "trace/chrome_sink.hpp"

/* The opaque C handle wraps the C++ Simulator plus the trace plumbing the
 * C API owns (sink objects need a stable home). */
struct hmc_sim_t {
  std::unique_ptr<hmcsim::sim::Simulator> sim;
  /* Lazily created by the first hmcsim_send_batch; once present it owns
   * response draining (declared after `sim`: destroyed first). */
  std::unique_ptr<hmcsim::sim::Session> session;
  std::unique_ptr<hmcsim::trace::TextSink> sink;
  std::unique_ptr<std::ofstream> trace_file;
  /* Destruction order matters: the ChromeSink's destructor writes the
   * closing bracket, so it must die before its ofstream — members are
   * destroyed in reverse declaration order. */
  std::unique_ptr<std::ofstream> chrome_file;
  std::unique_ptr<hmcsim::trace::ChromeSink> chrome;
  /* Created by hmcsim_sampler_init; fed through a periodic hook owned by
   * the simulator (declared after `sim` so the hook's captured pointer
   * outlives every firing). */
  std::unique_ptr<hmcsim::metrics::Sampler> sampler;
  uint64_t sampler_hook = 0;
};

namespace {

int status_to_rc(const hmcsim::Status& s) {
  switch (s.code()) {
    case hmcsim::StatusCode::Ok:
      return HMC_OK;
    case hmcsim::StatusCode::Stall:
      return HMC_STALL;
    case hmcsim::StatusCode::NoData:
      return HMC_NO_DATA;
    default:
      return HMC_ERROR;
  }
}

/* Copy a response into the caller's output pointers under the documented
 * capacity rule: *payload_words is in/out capacity (0/NULL = the legacy
 * 32-word contract); a short buffer gets a truncated copy + HMC_ETRUNC. */
int fill_response(const hmcsim::sim::Response& rsp, uint8_t* rsp_cmd,
                  uint16_t* tag, uint64_t* payload, uint32_t* payload_words,
                  uint64_t* latency) {
  if (rsp_cmd != nullptr) {
    *rsp_cmd = rsp.pkt.cmd();
  }
  if (tag != nullptr) {
    *tag = rsp.pkt.tag();
  }
  const auto data = rsp.pkt.payload();
  int rc = HMC_OK;
  if (payload != nullptr) {
    std::size_t capacity = 32;
    if (payload_words != nullptr && *payload_words > 0) {
      capacity = *payload_words;
    }
    std::size_t n = data.size();
    if (n > capacity) {
      n = capacity;
      rc = HMC_ETRUNC;
    }
    for (std::size_t i = 0; i < n; ++i) {
      payload[i] = data[i];
    }
  }
  if (payload_words != nullptr) {
    *payload_words = static_cast<uint32_t>(data.size());
  }
  if (latency != nullptr) {
    *latency = rsp.latency;
  }
  return rc;
}

/* The shared buffer contract of the string-returning entry points: copy
 * at most buf_len-1 bytes plus a NUL, return the full document size. */
uint64_t fill_buffer(const std::string& doc, char* buf, uint64_t buf_len) {
  if (buf != nullptr && buf_len > 0) {
    const uint64_t n = std::min<uint64_t>(doc.size(), buf_len - 1);
    std::memcpy(buf, doc.data(), n);
    buf[n] = '\0';
  }
  return doc.size();
}

}  // namespace

extern "C" {

static hmc_sim_t *init_from_cfg(hmcsim::sim::Config cfg) {
  std::unique_ptr<hmcsim::sim::Simulator> sim;
  if (!hmcsim::sim::Simulator::create(cfg, sim).ok()) {
    return nullptr;
  }
  auto *handle = new hmc_sim_t{};
  handle->sim = std::move(sim);
  return handle;
}

static hmcsim::sim::Config base_cfg(uint32_t num_devs, uint32_t num_links,
                                    uint32_t capacity_gb,
                                    uint32_t block_size,
                                    uint32_t queue_depth,
                                    uint32_t xbar_depth) {
  hmcsim::sim::Config cfg;
  cfg.num_devs = num_devs;
  cfg.num_links = num_links;
  cfg.capacity_bytes =
      static_cast<uint64_t>(capacity_gb) * hmcsim::sim::kGiB;
  cfg.block_size = block_size;
  cfg.vault_rqst_depth = queue_depth;
  cfg.vault_rsp_depth = queue_depth;
  cfg.xbar_depth = xbar_depth;
  // Bank count tracks capacity as on real Gen2 parts.
  cfg.banks_per_vault = capacity_gb >= 8 ? 32 : (capacity_gb >= 4 ? 16 : 8);
  return cfg;
}

hmc_sim_t *hmcsim_init(uint32_t num_devs, uint32_t num_links,
                       uint32_t capacity_gb, uint32_t block_size,
                       uint32_t queue_depth, uint32_t xbar_depth) {
  return init_from_cfg(base_cfg(num_devs, num_links, capacity_gb,
                                block_size, queue_depth, xbar_depth));
}

hmc_sim_t *hmcsim_init_faults(uint32_t num_devs, uint32_t num_links,
                              uint32_t capacity_gb, uint32_t block_size,
                              uint32_t queue_depth, uint32_t xbar_depth,
                              uint32_t dram_fault_ppm,
                              uint64_t dram_fault_seed,
                              uint32_t scrub_interval,
                              uint32_t stuck_faults) {
  hmcsim::sim::Config cfg = base_cfg(num_devs, num_links, capacity_gb,
                                     block_size, queue_depth, xbar_depth);
  cfg.dram_fault_ppm = dram_fault_ppm;
  cfg.dram_fault_seed = dram_fault_seed;
  cfg.scrub_interval = scrub_interval;
  cfg.stuck_faults = stuck_faults;
  return init_from_cfg(cfg);
}

void hmcsim_free(hmc_sim_t *sim) { delete sim; }

int hmcsim_load_cmc(hmc_sim_t *sim, const char *path) {
  if (sim == nullptr || path == nullptr) {
    return HMC_ERROR;
  }
  return status_to_rc(sim->sim->load_cmc(path));
}

int hmcsim_cmc_rearm(hmc_sim_t *sim, hmc_rqst_t rqst) {
  if (sim == nullptr) {
    return HMC_ERROR;
  }
  return status_to_rc(
      sim->sim->rearm_cmc(static_cast<hmcsim::spec::Rqst>(rqst)));
}

int hmcsim_send(hmc_sim_t *sim, uint32_t link, hmc_rqst_t rqst, uint8_t cub,
                uint64_t addr, uint16_t tag, const uint64_t *payload,
                uint32_t payload_words) {
  if (sim == nullptr) {
    return HMC_ERROR;
  }
  hmcsim::spec::RqstParams params;
  params.rqst = static_cast<hmcsim::spec::Rqst>(rqst);
  params.addr = addr;
  params.tag = tag;
  params.cub = cub;
  if (payload != nullptr && payload_words > 0) {
    params.payload = {payload, payload_words};
  }
  return status_to_rc(sim->sim->send(params, link));
}

int hmcsim_recv(hmc_sim_t *sim, uint32_t link, uint8_t *rsp_cmd,
                uint16_t *tag, uint64_t *payload, uint32_t *payload_words,
                uint64_t *latency) {
  if (sim == nullptr) {
    return HMC_ERROR;
  }
  hmcsim::sim::Response rsp;
  if (sim->session) {
    /* The session owns draining: batch responses go to their tickets,
     * everything else lands in the per-link unmatched queues we serve
     * here with unchanged semantics. */
    sim->session->pump();
    const hmcsim::Status s = sim->session->recv_unmatched(link, rsp);
    if (!s.ok()) {
      return status_to_rc(s);
    }
  } else {
    const hmcsim::Status s = sim->sim->recv(link, rsp);
    if (!s.ok()) {
      return status_to_rc(s);
    }
  }
  return fill_response(rsp, rsp_cmd, tag, payload, payload_words, latency);
}

int hmcsim_send_batch(hmc_sim_t *sim, const hmc_batch_rqst_t *reqs,
                      uint32_t count, uint32_t link, hmc_ticket_t *ticket) {
  if (sim == nullptr || ticket == nullptr ||
      (reqs == nullptr && count > 0)) {
    return HMC_ERROR;
  }
  *ticket = hmcsim::sim::kInvalidTicket;
  if (!sim->session) {
    sim->session = std::make_unique<hmcsim::sim::Session>(*sim->sim);
  }
  std::vector<hmcsim::spec::RqstParams> params(count);
  for (uint32_t i = 0; i < count; ++i) {
    params[i].rqst = static_cast<hmcsim::spec::Rqst>(reqs[i].rqst);
    params[i].addr = reqs[i].addr;
    params[i].tag = reqs[i].tag;
    params[i].cub = reqs[i].cub;
    if (reqs[i].payload != nullptr && reqs[i].payload_words > 0) {
      params[i].payload = {reqs[i].payload, reqs[i].payload_words};
    }
  }
  hmcsim::sim::BatchTicket t = hmcsim::sim::kInvalidTicket;
  const hmcsim::Status s = sim->session->send_batch(
      params, t, link == HMC_LINK_ANY ? hmcsim::sim::kAnyLink : link);
  if (!s.ok()) {
    return status_to_rc(s);
  }
  *ticket = t;
  return HMC_OK;
}

int hmcsim_poll_batch(hmc_sim_t *sim, hmc_ticket_t ticket,
                      hmc_batch_rsp_t *rsps, uint32_t *count) {
  if (sim == nullptr || count == nullptr ||
      (rsps == nullptr && *count > 0)) {
    return HMC_ERROR;
  }
  if (!sim->session) {
    *count = 0;  // No batch was ever submitted: every ticket is unknown.
    return HMC_ERROR;
  }
  /* Convert through a small stack chunk instead of materialising one
   * hmcsim::sim::Response per caller slot — each Response carries a full
   * packet, so a caller-sized temporary would dwarf the poll itself. */
  std::array<hmcsim::sim::Response, 16> buf;
  uint32_t total = 0;
  hmcsim::Status s = hmcsim::Status::Ok();
  do {
    const std::size_t want =
        std::min<std::size_t>(buf.size(), *count - total);
    std::size_t filled = 0;
    s = sim->session->poll_batch(
        ticket, std::span<hmcsim::sim::Response>(buf.data(), want), filled);
    for (std::size_t i = 0; i < filled; ++i) {
      hmc_batch_rsp_t &out = rsps[total + i];
      out.rsp_cmd = buf[i].pkt.cmd();
      out.errstat = buf[i].pkt.errstat();
      out.tag = buf[i].pkt.tag();
      out.latency = buf[i].latency;
      const auto data = buf[i].pkt.payload();
      out.payload_words = static_cast<uint32_t>(data.size());
      for (std::size_t w = 0; w < data.size(); ++w) {
        out.payload[w] = data[w];
      }
    }
    total += static_cast<uint32_t>(filled);
    if (s.code() != hmcsim::StatusCode::Stall || filled < want) {
      break;  /* Retired, errored, or nothing more ready right now. */
    }
  } while (total < *count);
  *count = total;
  return status_to_rc(s);
}

int hmcsim_batch_done(hmc_sim_t *sim, hmc_ticket_t ticket) {
  if (sim == nullptr || !sim->session) {
    return 0;
  }
  return sim->session->batch_done(ticket) ? 1 : 0;
}

uint64_t hmcsim_batch_advance(hmc_sim_t *sim, hmc_ticket_t ticket,
                              uint64_t max_cycles) {
  if (sim == nullptr || !sim->session) {
    return 0;
  }
  const uint64_t start = sim->sim->cycle();
  (void)sim->session->wait_batch(ticket, max_cycles);
  return sim->sim->cycle() - start;
}

int hmcsim_clock(hmc_sim_t *sim) {
  if (sim == nullptr) {
    return HMC_ERROR;
  }
  sim->sim->clock();
  if (sim->session) {
    sim->session->pump();
  }
  return HMC_OK;
}

uint64_t hmcsim_cycle(const hmc_sim_t *sim) {
  return sim == nullptr ? 0 : sim->sim->cycle();
}

uint64_t hmcsim_next_event_cycle(const hmc_sim_t *sim) {
  return sim == nullptr ? UINT64_MAX : sim->sim->next_event_cycle();
}

uint64_t hmcsim_clock_until(hmc_sim_t *sim, uint64_t cycle) {
  return sim == nullptr ? 0 : sim->sim->clock_until(cycle);
}

uint64_t hmcsim_clock_until_idle(hmc_sim_t *sim, uint64_t max_cycles) {
  return sim == nullptr ? 0 : sim->sim->clock_until_idle(max_cycles);
}

int hmcsim_set_threads(hmc_sim_t *sim, uint32_t threads) {
  if (sim == nullptr) {
    return HMC_ERROR;
  }
  return status_to_rc(sim->sim->set_threads(threads));
}

int hmcsim_jtag_reg_read(hmc_sim_t *sim, uint32_t dev, uint64_t reg,
                         uint64_t *result) {
  if (sim == nullptr || result == nullptr) {
    return HMC_ERROR;
  }
  return status_to_rc(
      sim->sim->jtag_read(dev, static_cast<uint32_t>(reg), *result));
}

int hmcsim_jtag_reg_write(hmc_sim_t *sim, uint32_t dev, uint64_t reg,
                          uint64_t value) {
  if (sim == nullptr) {
    return HMC_ERROR;
  }
  return status_to_rc(
      sim->sim->jtag_write(dev, static_cast<uint32_t>(reg), value));
}

int hmcsim_util_mem_read(hmc_sim_t *sim, uint32_t dev, uint64_t addr,
                         uint64_t *value) {
  if (sim == nullptr || value == nullptr ||
      dev >= sim->sim->num_devices()) {
    return HMC_ERROR;
  }
  return status_to_rc(sim->sim->device(dev).store().read_u64(addr, *value));
}

int hmcsim_util_mem_write(hmc_sim_t *sim, uint32_t dev, uint64_t addr,
                          uint64_t value) {
  if (sim == nullptr || dev >= sim->sim->num_devices()) {
    return HMC_ERROR;
  }
  return status_to_rc(sim->sim->device(dev).store().write_u64(addr, value));
}

int hmcsim_trace_level(hmc_sim_t *sim, uint32_t level) {
  if (sim == nullptr) {
    return HMC_ERROR;
  }
  sim->sim->tracer().set_level(static_cast<hmcsim::trace::Level>(level));
  return HMC_OK;
}

int hmcsim_trace_file(hmc_sim_t *sim, const char *path) {
  if (sim == nullptr || path == nullptr) {
    return HMC_ERROR;
  }
  if (sim->sink) {
    sim->sim->tracer().detach(sim->sink.get());
    sim->sink.reset();
    sim->trace_file.reset();
  }
  if (std::string_view(path) == "-") {
    sim->sink = std::make_unique<hmcsim::trace::TextSink>(std::cout);
  } else {
    sim->trace_file = std::make_unique<std::ofstream>(path);
    if (!sim->trace_file->is_open()) {
      sim->trace_file.reset();
      return HMC_ERROR;
    }
    sim->sink =
        std::make_unique<hmcsim::trace::TextSink>(*sim->trace_file);
  }
  sim->sim->tracer().attach(sim->sink.get());
  return HMC_OK;
}

int hmcsim_trace_chrome_file(hmc_sim_t *sim, const char *path) {
  if (sim == nullptr) {
    return HMC_ERROR;
  }
  if (sim->chrome) {
    sim->sim->tracer().detach(sim->chrome.get());
    sim->sim->journeys().detach(sim->chrome.get());
    sim->chrome->finish();
    sim->chrome.reset();
    sim->chrome_file.reset();
  }
  if (path == nullptr) {
    return HMC_OK;
  }
  auto file = std::make_unique<std::ofstream>(path);
  if (!file->is_open()) {
    return HMC_ERROR;
  }
  sim->chrome_file = std::move(file);
  sim->chrome =
      std::make_unique<hmcsim::trace::ChromeSink>(*sim->chrome_file);
  sim->sim->tracer().attach(sim->chrome.get());
  sim->sim->journeys().attach(sim->chrome.get());
  sim->sim->tracer().set_level(sim->sim->tracer().level() |
                               hmcsim::trace::Level::Journey |
                               hmcsim::trace::Level::Retry |
                               hmcsim::trace::Level::Cmc);
  return HMC_OK;
}

uint64_t hmcsim_stats_json(hmc_sim_t *sim, char *buf, uint64_t buf_len) {
  if (sim == nullptr) {
    return 0;
  }
  return fill_buffer(hmcsim::sim::format_stats_json(*sim->sim), buf,
                     buf_len);
}

int hmcsim_stat_get(hmc_sim_t *sim, const char *path, uint64_t *value) {
  if (sim == nullptr || path == nullptr || value == nullptr) {
    return HMC_ERROR;
  }
  const hmcsim::metrics::StatRegistry &reg = sim->sim->metrics();
  if (const auto *c = reg.find_counter(path)) {
    *value = c->value();
    return HMC_OK;
  }
  if (const auto *h = reg.find_histogram(path)) {
    *value = h->count();
    return HMC_OK;
  }
  if (const auto *g = reg.find_gauge(path)) {
    *value = static_cast<uint64_t>(g->value());
    return HMC_OK;
  }
  return HMC_ERROR;
}

uint64_t hmcsim_stat_list(hmc_sim_t *sim, char *buf, uint64_t buf_len) {
  if (sim == nullptr) {
    return 0;
  }
  std::string out;
  sim->sim->metrics().for_each(
      [&out](std::string_view path, hmcsim::metrics::StatKind kind,
             const hmcsim::metrics::Counter*,
             const hmcsim::metrics::Gauge*,
             const hmcsim::metrics::Histogram*) {
        out += path;
        switch (kind) {
          case hmcsim::metrics::StatKind::Counter:
            out += ",counter\n";
            break;
          case hmcsim::metrics::StatKind::Gauge:
            out += ",gauge\n";
            break;
          case hmcsim::metrics::StatKind::Histogram:
            out += ",histogram\n";
            break;
        }
      });
  return fill_buffer(out, buf, buf_len);
}

int hmcsim_prof_enable(hmc_sim_t *sim) {
  if (sim == nullptr) {
    return HMC_ERROR;
  }
  return status_to_rc(sim->sim->enable_profiling());
}

int hmcsim_sampler_init(hmc_sim_t *sim, uint64_t every, uint64_t capacity,
                        const char *paths_csv) {
  if (sim == nullptr || every == 0 || capacity == 0) {
    return HMC_ERROR;
  }
  sim->sim->remove_periodic_hook(sim->sampler_hook);
  sim->sampler_hook = 0;
  hmcsim::metrics::SamplerOptions opts;
  opts.every = every;
  opts.capacity = static_cast<std::size_t>(capacity);
  if (paths_csv != nullptr) {
    const std::string_view csv = paths_csv;
    for (std::size_t pos = 0; pos < csv.size();) {
      std::size_t comma = csv.find(',', pos);
      if (comma == std::string_view::npos) {
        comma = csv.size();
      }
      if (comma > pos) {
        opts.paths.emplace_back(csv.substr(pos, comma - pos));
      }
      pos = comma + 1;
    }
  }
  sim->sampler = std::make_unique<hmcsim::metrics::Sampler>(
      sim->sim->metrics(), std::move(opts));
  hmcsim::sim::register_default_samples(*sim->sampler, *sim->sim);
  hmcsim::metrics::Sampler *sampler = sim->sampler.get();
  sim->sampler_hook = sim->sim->add_periodic_hook(
      every, [sampler](hmcsim::sim::Simulator &s) {
        sampler->sample(s.cycle());
      });
  return HMC_OK;
}

uint64_t hmcsim_sampler_collect(hmc_sim_t *sim, int csv, char *buf,
                                uint64_t buf_len) {
  if (sim == nullptr || !sim->sampler) {
    return 0;
  }
  return fill_buffer(csv != 0 ? sim->sampler->to_csv()
                              : sim->sampler->to_json(),
                     buf, buf_len);
}

uint64_t hmcsim_telemetry_snapshot(hmc_sim_t *sim, char *buf,
                                   uint64_t buf_len) {
  if (sim == nullptr) {
    return 0;
  }
  hmcsim::metrics::TelemetryInfo info;
  info.cycle = sim->sim->cycle();
  if (const hmcsim::sim::Profiler *prof = sim->sim->profiler()) {
    info.cycles_per_sec = prof->cycles_per_sec();
  }
  return fill_buffer(
      hmcsim::metrics::snapshot_json(sim->sim->metrics(), info), buf,
      buf_len);
}

} /* extern "C" */
