#include "capi/hmc_sim.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>

#include "sim/simulator.hpp"
#include "sim/stats_report.hpp"
#include "trace/chrome_sink.hpp"

/* The opaque C handle wraps the C++ Simulator plus the trace plumbing the
 * C API owns (sink objects need a stable home). */
struct hmc_sim_t {
  std::unique_ptr<hmcsim::sim::Simulator> sim;
  std::unique_ptr<hmcsim::trace::TextSink> sink;
  std::unique_ptr<std::ofstream> trace_file;
  /* Destruction order matters: the ChromeSink's destructor writes the
   * closing bracket, so it must die before its ofstream — members are
   * destroyed in reverse declaration order. */
  std::unique_ptr<std::ofstream> chrome_file;
  std::unique_ptr<hmcsim::trace::ChromeSink> chrome;
};

namespace {

int status_to_rc(const hmcsim::Status& s) {
  switch (s.code()) {
    case hmcsim::StatusCode::Ok:
      return HMC_OK;
    case hmcsim::StatusCode::Stall:
      return HMC_STALL;
    case hmcsim::StatusCode::NoData:
      return HMC_NO_DATA;
    default:
      return HMC_ERROR;
  }
}

}  // namespace

extern "C" {

hmc_sim_t *hmcsim_init(uint32_t num_devs, uint32_t num_links,
                       uint32_t capacity_gb, uint32_t block_size,
                       uint32_t queue_depth, uint32_t xbar_depth) {
  hmcsim::sim::Config cfg;
  cfg.num_devs = num_devs;
  cfg.num_links = num_links;
  cfg.capacity_bytes =
      static_cast<uint64_t>(capacity_gb) * hmcsim::sim::kGiB;
  cfg.block_size = block_size;
  cfg.vault_rqst_depth = queue_depth;
  cfg.vault_rsp_depth = queue_depth;
  cfg.xbar_depth = xbar_depth;
  // Bank count tracks capacity as on real Gen2 parts.
  cfg.banks_per_vault = capacity_gb >= 8 ? 32 : (capacity_gb >= 4 ? 16 : 8);

  std::unique_ptr<hmcsim::sim::Simulator> sim;
  if (!hmcsim::sim::Simulator::create(cfg, sim).ok()) {
    return nullptr;
  }
  auto *handle = new hmc_sim_t{};
  handle->sim = std::move(sim);
  return handle;
}

void hmcsim_free(hmc_sim_t *sim) { delete sim; }

int hmcsim_load_cmc(hmc_sim_t *sim, const char *path) {
  if (sim == nullptr || path == nullptr) {
    return HMC_ERROR;
  }
  return status_to_rc(sim->sim->load_cmc(path));
}

int hmcsim_cmc_rearm(hmc_sim_t *sim, hmc_rqst_t rqst) {
  if (sim == nullptr) {
    return HMC_ERROR;
  }
  return status_to_rc(
      sim->sim->rearm_cmc(static_cast<hmcsim::spec::Rqst>(rqst)));
}

int hmcsim_send(hmc_sim_t *sim, uint32_t link, hmc_rqst_t rqst, uint8_t cub,
                uint64_t addr, uint16_t tag, const uint64_t *payload,
                uint32_t payload_words) {
  if (sim == nullptr) {
    return HMC_ERROR;
  }
  hmcsim::spec::RqstParams params;
  params.rqst = static_cast<hmcsim::spec::Rqst>(rqst);
  params.addr = addr;
  params.tag = tag;
  params.cub = cub;
  if (payload != nullptr && payload_words > 0) {
    params.payload = {payload, payload_words};
  }
  return status_to_rc(sim->sim->send(params, link));
}

int hmcsim_recv(hmc_sim_t *sim, uint32_t link, uint8_t *rsp_cmd,
                uint16_t *tag, uint64_t *payload, uint32_t *payload_words,
                uint64_t *latency) {
  if (sim == nullptr) {
    return HMC_ERROR;
  }
  hmcsim::sim::Response rsp;
  const hmcsim::Status s = sim->sim->recv(link, rsp);
  if (!s.ok()) {
    return status_to_rc(s);
  }
  if (rsp_cmd != nullptr) {
    *rsp_cmd = rsp.pkt.cmd();
  }
  if (tag != nullptr) {
    *tag = rsp.pkt.tag();
  }
  const auto data = rsp.pkt.payload();
  if (payload != nullptr) {
    for (std::size_t i = 0; i < data.size(); ++i) {
      payload[i] = data[i];
    }
  }
  if (payload_words != nullptr) {
    *payload_words = static_cast<uint32_t>(data.size());
  }
  if (latency != nullptr) {
    *latency = rsp.latency;
  }
  return HMC_OK;
}

int hmcsim_clock(hmc_sim_t *sim) {
  if (sim == nullptr) {
    return HMC_ERROR;
  }
  sim->sim->clock();
  return HMC_OK;
}

uint64_t hmcsim_cycle(const hmc_sim_t *sim) {
  return sim == nullptr ? 0 : sim->sim->cycle();
}

uint64_t hmcsim_next_event_cycle(const hmc_sim_t *sim) {
  return sim == nullptr ? UINT64_MAX : sim->sim->next_event_cycle();
}

uint64_t hmcsim_clock_until(hmc_sim_t *sim, uint64_t cycle) {
  return sim == nullptr ? 0 : sim->sim->clock_until(cycle);
}

uint64_t hmcsim_clock_until_idle(hmc_sim_t *sim, uint64_t max_cycles) {
  return sim == nullptr ? 0 : sim->sim->clock_until_idle(max_cycles);
}

int hmcsim_set_threads(hmc_sim_t *sim, uint32_t threads) {
  if (sim == nullptr) {
    return HMC_ERROR;
  }
  return status_to_rc(sim->sim->set_threads(threads));
}

int hmcsim_jtag_reg_read(hmc_sim_t *sim, uint32_t dev, uint64_t reg,
                         uint64_t *result) {
  if (sim == nullptr || result == nullptr) {
    return HMC_ERROR;
  }
  return status_to_rc(
      sim->sim->jtag_read(dev, static_cast<uint32_t>(reg), *result));
}

int hmcsim_jtag_reg_write(hmc_sim_t *sim, uint32_t dev, uint64_t reg,
                          uint64_t value) {
  if (sim == nullptr) {
    return HMC_ERROR;
  }
  return status_to_rc(
      sim->sim->jtag_write(dev, static_cast<uint32_t>(reg), value));
}

int hmcsim_util_mem_read(hmc_sim_t *sim, uint32_t dev, uint64_t addr,
                         uint64_t *value) {
  if (sim == nullptr || value == nullptr ||
      dev >= sim->sim->num_devices()) {
    return HMC_ERROR;
  }
  return status_to_rc(sim->sim->device(dev).store().read_u64(addr, *value));
}

int hmcsim_util_mem_write(hmc_sim_t *sim, uint32_t dev, uint64_t addr,
                          uint64_t value) {
  if (sim == nullptr || dev >= sim->sim->num_devices()) {
    return HMC_ERROR;
  }
  return status_to_rc(sim->sim->device(dev).store().write_u64(addr, value));
}

int hmcsim_trace_level(hmc_sim_t *sim, uint32_t level) {
  if (sim == nullptr) {
    return HMC_ERROR;
  }
  sim->sim->tracer().set_level(static_cast<hmcsim::trace::Level>(level));
  return HMC_OK;
}

int hmcsim_trace_file(hmc_sim_t *sim, const char *path) {
  if (sim == nullptr || path == nullptr) {
    return HMC_ERROR;
  }
  if (sim->sink) {
    sim->sim->tracer().detach(sim->sink.get());
    sim->sink.reset();
    sim->trace_file.reset();
  }
  if (std::string_view(path) == "-") {
    sim->sink = std::make_unique<hmcsim::trace::TextSink>(std::cout);
  } else {
    sim->trace_file = std::make_unique<std::ofstream>(path);
    if (!sim->trace_file->is_open()) {
      sim->trace_file.reset();
      return HMC_ERROR;
    }
    sim->sink =
        std::make_unique<hmcsim::trace::TextSink>(*sim->trace_file);
  }
  sim->sim->tracer().attach(sim->sink.get());
  return HMC_OK;
}

int hmcsim_trace_chrome_file(hmc_sim_t *sim, const char *path) {
  if (sim == nullptr) {
    return HMC_ERROR;
  }
  if (sim->chrome) {
    sim->sim->tracer().detach(sim->chrome.get());
    sim->sim->journeys().detach(sim->chrome.get());
    sim->chrome->finish();
    sim->chrome.reset();
    sim->chrome_file.reset();
  }
  if (path == nullptr) {
    return HMC_OK;
  }
  auto file = std::make_unique<std::ofstream>(path);
  if (!file->is_open()) {
    return HMC_ERROR;
  }
  sim->chrome_file = std::move(file);
  sim->chrome =
      std::make_unique<hmcsim::trace::ChromeSink>(*sim->chrome_file);
  sim->sim->tracer().attach(sim->chrome.get());
  sim->sim->journeys().attach(sim->chrome.get());
  sim->sim->tracer().set_level(sim->sim->tracer().level() |
                               hmcsim::trace::Level::Journey |
                               hmcsim::trace::Level::Retry |
                               hmcsim::trace::Level::Cmc);
  return HMC_OK;
}

uint64_t hmcsim_stats_json(hmc_sim_t *sim, char *buf, uint64_t buf_len) {
  if (sim == nullptr) {
    return 0;
  }
  const std::string json = hmcsim::sim::format_stats_json(*sim->sim);
  if (buf != nullptr && buf_len > 0) {
    const uint64_t n =
        std::min<uint64_t>(json.size(), buf_len - 1);
    std::memcpy(buf, json.data(), n);
    buf[n] = '\0';
  }
  return json.size();
}

int hmcsim_stat_get(hmc_sim_t *sim, const char *path, uint64_t *value) {
  if (sim == nullptr || path == nullptr || value == nullptr) {
    return HMC_ERROR;
  }
  const hmcsim::metrics::StatRegistry &reg = sim->sim->metrics();
  if (const auto *c = reg.find_counter(path)) {
    *value = c->value();
    return HMC_OK;
  }
  if (const auto *h = reg.find_histogram(path)) {
    *value = h->count();
    return HMC_OK;
  }
  if (const auto *g = reg.find_gauge(path)) {
    *value = static_cast<uint64_t>(g->value());
    return HMC_OK;
  }
  return HMC_ERROR;
}

} /* extern "C" */
