/* hmc_sim.h — C-compatible API shim.
 *
 * HMC-Sim's historical user base consumes a C API (hmcsim_init,
 * hmcsim_load_cmc, hmcsim_send, hmcsim_recv, hmcsim_clock, ...); several
 * higher-level simulators embed it through these entry points. This header
 * exposes the C++ Simulator through the same shape so those integrations
 * port directly. All functions return 0 on success, HMC_STALL on
 * back-pressure, and negative values on errors.
 */
#ifndef HMCSIM_HMC_SIM_H
#define HMCSIM_HMC_SIM_H

#include <stdint.h>

#include "core/cmc_api.h"

#ifdef __cplusplus
extern "C" {
#endif

/* Result codes. */
#define HMC_OK 0
#define HMC_STALL 1    /* retry next cycle */
#define HMC_NO_DATA 2  /* no response ready */
#define HMC_ERROR (-1)

/* Opaque simulation context (the paper's hmc_sim_t). */
typedef struct hmc_sim_t hmc_sim_t;

/* Initialise a simulation: num_devs chained cubes, num_links host links
 * (4 or 8), capacity in GB per cube (2, 4 or 8), block_size bytes
 * (32..256), vault request queue depth and crossbar queue depth. Returns
 * NULL on invalid configuration. */
hmc_sim_t *hmcsim_init(uint32_t num_devs, uint32_t num_links,
                       uint32_t capacity_gb, uint32_t block_size,
                       uint32_t queue_depth, uint32_t xbar_depth);

/* Tear down a simulation context. NULL is a no-op. */
void hmcsim_free(hmc_sim_t *sim);

/* Load a CMC shared library (the paper's hmc_load_cmc). */
int hmcsim_load_cmc(hmc_sim_t *sim, const char *path);

/* Lift the quarantine of a CMC slot that crossed the consecutive-failure
 * threshold; it resumes executing with a clean failure streak. HMC_ERROR
 * when the command has no registration or is not quarantined. */
int hmcsim_cmc_rearm(hmc_sim_t *sim, hmc_rqst_t rqst);

/* Build and inject a request. `payload` supplies the data section
 * (2 x (rqst_flits - 1) 64-bit words, may be NULL when empty). */
int hmcsim_send(hmc_sim_t *sim, uint32_t link, hmc_rqst_t rqst, uint8_t cub,
                uint64_t addr, uint16_t tag, const uint64_t *payload,
                uint32_t payload_words);

/* Eject the next ready response on `link`. Outputs are optional (NULL to
 * skip). *payload must hold at least 32 words when provided. */
int hmcsim_recv(hmc_sim_t *sim, uint32_t link, uint8_t *rsp_cmd,
                uint16_t *tag, uint64_t *payload, uint32_t *payload_words,
                uint64_t *latency);

/* Advance the simulation one cycle. */
int hmcsim_clock(hmc_sim_t *sim);

/* Current cycle count. */
uint64_t hmcsim_cycle(const hmc_sim_t *sim);

/* Earliest future cycle at which any component can make progress, or
 * UINT64_MAX when the chain is fully quiescent (no in-flight packet and no
 * parked link retry). */
uint64_t hmcsim_next_event_cycle(const hmc_sim_t *sim);

/* Advance until the cycle counter reaches `cycle`, fast-forwarding dead
 * stretches in O(1) (observably identical to clocking each cycle).
 * Returns the number of cycles advanced; 0 when `cycle` is in the past or
 * `sim` is NULL. */
uint64_t hmcsim_clock_until(hmc_sim_t *sim, uint64_t cycle);

/* Advance until the chain is quiescent or `max_cycles` have elapsed
 * (0 = unbounded). Returns the number of cycles advanced. */
uint64_t hmcsim_clock_until_idle(hmc_sim_t *sim, uint64_t max_cycles);

/* Resize the clock's worker-thread pool (1..64; 1 restores the sequential
 * walk). Safe between clocks; the simulation stays byte-identical for any
 * thread count (see docs/PARALLEL.md). HMC_ERROR on an invalid count. */
int hmcsim_set_threads(hmc_sim_t *sim, uint32_t threads);

/* Side-band register access (the simulated JTAG interface). */
int hmcsim_jtag_reg_read(hmc_sim_t *sim, uint32_t dev, uint64_t reg,
                         uint64_t *result);
int hmcsim_jtag_reg_write(hmc_sim_t *sim, uint32_t dev, uint64_t reg,
                          uint64_t value);

/* Back-door memory access for workload setup / verification. */
int hmcsim_util_mem_read(hmc_sim_t *sim, uint32_t dev, uint64_t addr,
                         uint64_t *value);
int hmcsim_util_mem_write(hmc_sim_t *sim, uint32_t dev, uint64_t addr,
                          uint64_t value);

/* Trace control: bitmask of hmcsim trace levels (see trace/trace.hpp) and
 * an output file ("-" for stdout). Passing level 0 disables tracing. */
int hmcsim_trace_level(hmc_sim_t *sim, uint32_t level);
int hmcsim_trace_file(hmc_sim_t *sim, const char *path);

/* Stream per-packet journeys (plus link-retry and CMC fault/re-arm
 * incidents) to `path` as a Chrome trace-event JSON document, loadable in
 * Perfetto or chrome://tracing (schema in docs/TRACE_FORMAT.md). Enables
 * the JOURNEY, RETRY and CMC trace levels in addition to the current
 * mask. Passing NULL detaches the sink and finalises the document; the
 * document is also finalised by hmcsim_free(). */
int hmcsim_trace_chrome_file(hmc_sim_t *sim, const char *path);

/* Render the full statistics registry as JSON (schema documented in
 * docs/METRICS.md). Writes at most buf_len-1 bytes plus a NUL terminator
 * into `buf` and returns the number of bytes the complete document needs
 * (excluding the NUL) — call with buf_len 0 to size a buffer, then again
 * to fill it. Returns 0 on error (NULL sim). */
uint64_t hmcsim_stats_json(hmc_sim_t *sim, char *buf, uint64_t buf_len);

/* Read one statistic by its registry path (e.g.
 * "cube0.quad0.vault0.rqsts_processed" or "cube0.cmc.hmc_lock.executed").
 * Counters yield their count, histograms their sample count, gauges their
 * value truncated toward zero. Returns HMC_OK, or HMC_ERROR when the path
 * is unknown. */
int hmcsim_stat_get(hmc_sim_t *sim, const char *path, uint64_t *value);

#ifdef __cplusplus
} /* extern "C" */
#endif

#endif /* HMCSIM_HMC_SIM_H */
