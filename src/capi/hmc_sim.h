/* hmc_sim.h — C-compatible API shim.
 *
 * HMC-Sim's historical user base consumes a C API (hmcsim_init,
 * hmcsim_load_cmc, hmcsim_send, hmcsim_recv, hmcsim_clock, ...); several
 * higher-level simulators embed it through these entry points. This header
 * exposes the C++ Simulator through the same shape so those integrations
 * port directly. All functions return 0 on success, HMC_STALL on
 * back-pressure, and negative values on errors.
 */
#ifndef HMCSIM_HMC_SIM_H
#define HMCSIM_HMC_SIM_H

#include <stdint.h>

#include "core/cmc_api.h"

#ifdef __cplusplus
extern "C" {
#endif

/* Result codes. */
#define HMC_OK 0
#define HMC_STALL 1     /* retry next cycle */
#define HMC_NO_DATA 2   /* no response ready */
#define HMC_ERROR (-1)
#define HMC_ETRUNC (-2) /* caller buffer too small; payload truncated */

/* Opaque simulation context (the paper's hmc_sim_t). */
typedef struct hmc_sim_t hmc_sim_t;

/* Initialise a simulation: num_devs chained cubes, num_links host links
 * (4 or 8), capacity in GB per cube (2, 4 or 8), block_size bytes
 * (32..256), vault request queue depth and crossbar queue depth. Returns
 * NULL on invalid configuration. */
hmc_sim_t *hmcsim_init(uint32_t num_devs, uint32_t num_links,
                       uint32_t capacity_gb, uint32_t block_size,
                       uint32_t queue_depth, uint32_t xbar_depth);

/* hmcsim_init plus deterministic DRAM fault injection: dram_fault_ppm
 * transient bit flips per million 64-bit word reads (seeded by
 * dram_fault_seed), a patrol scrubber pass every scrub_interval cycles
 * (0 disables), and stuck_faults permanent stuck-at cells per cube
 * (max 4096). Single-bit errors are corrected by SEC-DED ECC; multi-bit
 * errors poison the response (zeroed payload, DINV errstat). When any
 * mechanism is enabled the per-cube counters appear in the statistics
 * registry as cube<N>.ecc.* (see docs/FAULTS.md) and are readable via
 * hmcsim_stat_get. */
hmc_sim_t *hmcsim_init_faults(uint32_t num_devs, uint32_t num_links,
                              uint32_t capacity_gb, uint32_t block_size,
                              uint32_t queue_depth, uint32_t xbar_depth,
                              uint32_t dram_fault_ppm,
                              uint64_t dram_fault_seed,
                              uint32_t scrub_interval,
                              uint32_t stuck_faults);

/* Tear down a simulation context. NULL is a no-op. */
void hmcsim_free(hmc_sim_t *sim);

/* Load a CMC shared library (the paper's hmc_load_cmc). */
int hmcsim_load_cmc(hmc_sim_t *sim, const char *path);

/* Lift the quarantine of a CMC slot that crossed the consecutive-failure
 * threshold; it resumes executing with a clean failure streak. HMC_ERROR
 * when the command has no registration or is not quarantined. */
int hmcsim_cmc_rearm(hmc_sim_t *sim, hmc_rqst_t rqst);

/* Build and inject a request. `payload` supplies the data section
 * (2 x (rqst_flits - 1) 64-bit words, may be NULL when empty). */
int hmcsim_send(hmc_sim_t *sim, uint32_t link, hmc_rqst_t rqst, uint8_t cub,
                uint64_t addr, uint16_t tag, const uint64_t *payload,
                uint32_t payload_words);

/* Eject the next ready response on `link`. Outputs are optional (NULL to
 * skip).
 *
 * `payload_words` is in/out capacity: on entry it holds the number of
 * 64-bit words `payload` can take, on return the response's full payload
 * size in words. When the response payload exceeds the capacity, the
 * first *payload_words words are copied and HMC_ETRUNC is returned — the
 * response is still consumed, so check *payload_words before retrying a
 * larger buffer on the NEXT response. Legacy behavior: a NULL
 * payload_words or an input value of 0 means "assume 32 words of
 * capacity" (the historical contract: *payload must hold at least 32
 * words when provided), which can never truncate. */
int hmcsim_recv(hmc_sim_t *sim, uint32_t link, uint8_t *rsp_cmd,
                uint16_t *tag, uint64_t *payload, uint32_t *payload_words,
                uint64_t *latency);

/* ---- batched asynchronous session API -----------------------------------
 *
 * The batch entry points amortize the per-packet C API crossing: a whole
 * span of requests is submitted in one call and admitted by an internal
 * session (deterministic per-link FIFO, links in ascending order, until
 * each link stalls), and completed responses are harvested in bulk. A
 * batch driven this way retires with byte-identical statistics to the
 * same requests pushed one at a time through hmcsim_send/hmcsim_recv in
 * the canonical admit/clock/drain loop (see docs/COSIM.md).
 *
 * Once any batch has been submitted, response draining is owned by the
 * session: keep calling hmcsim_recv for non-batch traffic (it is served
 * from the session's unmatched-response queues with identical semantics),
 * but do not expect batch responses from it. */

/* Names one submitted batch; 0 is never a valid ticket. */
typedef uint64_t hmc_ticket_t;

/* Link selector for hmcsim_send_batch: round-robin across all links. */
#define HMC_LINK_ANY UINT32_MAX

/* One request of a batch. `payload` supplies the data section exactly as
 * for hmcsim_send and is copied during hmcsim_send_batch (the caller's
 * buffer may be reused immediately). */
typedef struct {
  uint32_t rqst;           /* hmc_rqst_t command */
  uint8_t cub;             /* target cube */
  uint16_t tag;            /* host transaction tag (11 bits) */
  uint64_t addr;           /* request address */
  const uint64_t *payload; /* data words, NULL when none */
  uint32_t payload_words;  /* number of data words */
} hmc_batch_rqst_t;

/* One completed response. The payload array is always large enough for
 * the biggest response (32 words), so batch harvesting never truncates. */
typedef struct {
  uint8_t rsp_cmd;        /* response command code */
  uint8_t errstat;        /* response ERRSTAT field */
  uint16_t tag;           /* echo of the request tag */
  uint32_t payload_words; /* valid words in payload[] */
  uint64_t latency;       /* cycles from admission to ejection */
  uint64_t payload[32];
} hmc_batch_rsp_t;

/* Submit `count` requests as one batch on `link` (HMC_LINK_ANY: shard
 * round-robin across links). The batch is validated atomically — on any
 * invalid request nothing is queued and HMC_ERROR is returned. On success
 * *ticket names the batch; as much of it as the links accept is admitted
 * at the current cycle and the rest is re-attempted as the clock
 * advances (each hmcsim_clock / hmcsim_poll_batch / hmcsim_batch_advance
 * pumps admission). */
int hmcsim_send_batch(hmc_sim_t *sim, const hmc_batch_rqst_t *reqs,
                      uint32_t count, uint32_t link, hmc_ticket_t *ticket);

/* Harvest completed responses for `ticket`. `count` is in/out capacity:
 * on entry the size of the `rsps` array, on return the number written
 * (retirement order). Never truncates a response and never loses one —
 * responses beyond the capacity stay buffered for the next poll (the
 * batch mirror of the hmcsim_recv capacity rule). Returns HMC_OK exactly
 * once, when the batch is complete and its last response has been
 * delivered (the ticket is then retired); HMC_STALL while work remains;
 * HMC_ERROR for an unknown/retired ticket or when the backend rejected a
 * batch request at admission. */
int hmcsim_poll_batch(hmc_sim_t *sim, hmc_ticket_t ticket,
                      hmc_batch_rsp_t *rsps, uint32_t *count);

/* 1 when every request of `ticket` was admitted and every owed response
 * received (poll may still have responses to deliver), else 0. */
int hmcsim_batch_done(hmc_sim_t *sim, hmc_ticket_t ticket);

/* Run the clock until `ticket` completes or `max_cycles` elapse
 * (0 = unbounded), fast-forwarding quiescent stretches exactly like
 * hmcsim_clock_until. Returns the number of cycles advanced; check
 * hmcsim_batch_done to distinguish completion from budget exhaustion. */
uint64_t hmcsim_batch_advance(hmc_sim_t *sim, hmc_ticket_t ticket,
                              uint64_t max_cycles);

/* Advance the simulation one cycle. */
int hmcsim_clock(hmc_sim_t *sim);

/* Current cycle count. */
uint64_t hmcsim_cycle(const hmc_sim_t *sim);

/* Earliest future cycle at which any component can make progress, or
 * UINT64_MAX when the chain is fully quiescent (no in-flight packet and no
 * parked link retry). */
uint64_t hmcsim_next_event_cycle(const hmc_sim_t *sim);

/* Advance until the cycle counter reaches `cycle`, fast-forwarding dead
 * stretches in O(1) (observably identical to clocking each cycle).
 * Returns the number of cycles advanced; 0 when `cycle` is in the past or
 * `sim` is NULL. */
uint64_t hmcsim_clock_until(hmc_sim_t *sim, uint64_t cycle);

/* Advance until the chain is quiescent or `max_cycles` have elapsed
 * (0 = unbounded). Returns the number of cycles advanced. */
uint64_t hmcsim_clock_until_idle(hmc_sim_t *sim, uint64_t max_cycles);

/* Resize the clock's worker-thread pool (1..64; 1 restores the sequential
 * walk). Safe between clocks; the simulation stays byte-identical for any
 * thread count (see docs/PARALLEL.md). HMC_ERROR on an invalid count. */
int hmcsim_set_threads(hmc_sim_t *sim, uint32_t threads);

/* Side-band register access (the simulated JTAG interface). */
int hmcsim_jtag_reg_read(hmc_sim_t *sim, uint32_t dev, uint64_t reg,
                         uint64_t *result);
int hmcsim_jtag_reg_write(hmc_sim_t *sim, uint32_t dev, uint64_t reg,
                          uint64_t value);

/* Back-door memory access for workload setup / verification. */
int hmcsim_util_mem_read(hmc_sim_t *sim, uint32_t dev, uint64_t addr,
                         uint64_t *value);
int hmcsim_util_mem_write(hmc_sim_t *sim, uint32_t dev, uint64_t addr,
                          uint64_t value);

/* Trace control: bitmask of hmcsim trace levels (see trace/trace.hpp) and
 * an output file ("-" for stdout). Passing level 0 disables tracing. */
int hmcsim_trace_level(hmc_sim_t *sim, uint32_t level);
int hmcsim_trace_file(hmc_sim_t *sim, const char *path);

/* Stream per-packet journeys (plus link-retry and CMC fault/re-arm
 * incidents) to `path` as a Chrome trace-event JSON document, loadable in
 * Perfetto or chrome://tracing (schema in docs/TRACE_FORMAT.md). Enables
 * the JOURNEY, RETRY and CMC trace levels in addition to the current
 * mask. Passing NULL detaches the sink and finalises the document; the
 * document is also finalised by hmcsim_free(). */
int hmcsim_trace_chrome_file(hmc_sim_t *sim, const char *path);

/* Render the full statistics registry as JSON (schema documented in
 * docs/METRICS.md). Writes at most buf_len-1 bytes plus a NUL terminator
 * into `buf` and returns the number of bytes the complete document needs
 * (excluding the NUL) — call with buf_len 0 to size a buffer, then again
 * to fill it. Returns 0 on error (NULL sim). */
uint64_t hmcsim_stats_json(hmc_sim_t *sim, char *buf, uint64_t buf_len);

/* Read one statistic by its registry path (e.g.
 * "cube0.quad0.vault0.rqsts_processed" or "cube0.cmc.hmc_lock.executed").
 * Counters yield their count, histograms their sample count, gauges their
 * value truncated toward zero. Returns HMC_OK, or HMC_ERROR when the path
 * is unknown. */
int hmcsim_stat_get(hmc_sim_t *sim, const char *path, uint64_t *value);

/* Enumerate every registered statistic as newline-separated "path,kind"
 * lines (kind is "counter", "gauge" or "histogram"), in sorted path
 * order — the discovery side of hmcsim_stat_get. Same buffer contract as
 * hmcsim_stats_json: writes at most buf_len-1 bytes plus a NUL and
 * returns the size of the complete listing (0 on NULL sim). */
uint64_t hmcsim_stat_list(hmc_sim_t *sim, char *buf, uint64_t buf_len);

/* Register the gated sim.prof.* self-profiling statistics (per-worker
 * execute/wait wall time, coordinator overhead, host cycles/sec) and
 * start measuring. Until this is called no sim.prof.* stats exist, so
 * default statistics stay byte-identical run to run. Idempotent. */
int hmcsim_prof_enable(hmc_sim_t *sim);

/* Start periodic time-series sampling: every `every` cycles the sampler
 * snapshots the selected statistics into a ring of `capacity` windows
 * (older windows are evicted). `paths_csv` is a comma-separated list of
 * path prefixes to sample; NULL or "" samples every deterministic
 * statistic. Replaces any previous sampler. Sampling happens at exact
 * cycle boundaries, so the captured series is byte-identical for any
 * thread count. HMC_ERROR on NULL sim or zero every/capacity. */
int hmcsim_sampler_init(hmc_sim_t *sim, uint64_t every, uint64_t capacity,
                        const char *paths_csv);

/* Export the sampled series (docs/TELEMETRY.md schema): JSON when `csv`
 * is 0, long-format CSV otherwise. Same buffer contract as
 * hmcsim_stats_json; returns 0 when no sampler was initialised. */
uint64_t hmcsim_sampler_collect(hmc_sim_t *sim, int csv, char *buf,
                                uint64_t buf_len);

/* One compact telemetry snapshot (the "json" payload of the runtime
 * exposition socket): cycle, host cycles/sec when profiling is enabled,
 * per-cube traffic and per-worker utilisation. Same buffer contract as
 * hmcsim_stats_json. */
uint64_t hmcsim_telemetry_snapshot(hmc_sim_t *sim, char *buf,
                                   uint64_t buf_len);

#ifdef __cplusplus
} /* extern "C" */
#endif

#endif /* HMCSIM_HMC_SIM_H */
