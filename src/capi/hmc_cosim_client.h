/* hmc_cosim_client.h — C client for the co-simulation server.
 *
 * Attach a client process to a running `hmcsim_cli serve` /
 * `hmcsim_server` instance and drive the shared simulation:
 *
 *   hmc_cosim_t *c = hmc_cosim_connect("/tmp/hmcsim.sock", 0, 5000);
 *   hmc_cosim_send(c, 0, 24, 0, 0x1000, 1, NULL, 0);     // WR64
 *   hmc_cosim_clock(c, hmc_cosim_quantum(c));            // barrier
 *   while (hmc_cosim_recv(c, ...) == HMC_COSIM_NO_DATA)
 *     hmc_cosim_clock(c, hmc_cosim_quantum(c));
 *   hmc_cosim_disconnect(c);
 *
 * All calls are for single-threaded use per connection. hmc_cosim_clock
 * blocks until the server finishes the quantum barrier — i.e. until
 * every other client has also called clock — and buffers any responses
 * the server delivered along the way for hmc_cosim_recv. The protocol
 * and its determinism rules are documented in docs/COSIM.md.
 */
#ifndef HMCSIM_HMC_COSIM_CLIENT_H
#define HMCSIM_HMC_COSIM_CLIENT_H

#include <stdint.h>

#ifdef __cplusplus
extern "C" {
#endif

/* Result codes (aligned with hmc_sim.h). */
#define HMC_COSIM_OK 0
#define HMC_COSIM_STALL 1     /* ring momentarily full; retry */
#define HMC_COSIM_NO_DATA 2   /* no buffered response */
#define HMC_COSIM_ERROR (-1)
#define HMC_COSIM_ETRUNC (-2) /* caller buffer too small; truncated */

/* Opaque connection handle. */
typedef struct hmc_cosim_t hmc_cosim_t;

/* Connect to the server socket at `socket_path` as client `slot`
 * (0 .. clients-1; the launcher assigns slots so admission order is
 * reproducible). Retries until the server appears or `timeout_ms`
 * milliseconds elapse. NULL on failure. */
hmc_cosim_t *hmc_cosim_connect(const char *socket_path, uint32_t slot,
                               uint32_t timeout_ms);

/* Post BYE and release the connection. NULL is a no-op. Pending
 * responses the client never collected are dropped. */
void hmc_cosim_disconnect(hmc_cosim_t *client);

/* Geometry from the server's welcome. */
uint32_t hmc_cosim_client_id(const hmc_cosim_t *client);
uint32_t hmc_cosim_num_links(const hmc_cosim_t *client);
/* Cycles every clock call must request (identical across clients). */
uint64_t hmc_cosim_quantum(const hmc_cosim_t *client);
/* Simulation cycle as of the last acknowledged barrier. */
uint64_t hmc_cosim_cycle(const hmc_cosim_t *client);

/* Queue one request (same argument meaning as hmcsim_send). The request
 * reaches the simulator at the next clock barrier; payload is copied.
 * HMC_COSIM_STALL only if the ring stayed full for ~1s (server dead). */
int hmc_cosim_send(hmc_cosim_t *client, uint32_t link, uint32_t rqst,
                   uint8_t cub, uint64_t addr, uint16_t tag,
                   const uint64_t *payload, uint32_t payload_words);

/* Barrier: advance the shared simulation by `cycles` (must equal
 * hmc_cosim_quantum()). Blocks until the server acknowledges; responses
 * delivered during the quantum are buffered for hmc_cosim_recv. */
int hmc_cosim_clock(hmc_cosim_t *client, uint64_t cycles);

/* Pop the oldest buffered response. Outputs are optional (NULL to
 * skip). `payload_words` is in/out capacity exactly as in hmcsim_recv:
 * in = words `payload` can take (0/NULL = assume 32), out = the full
 * response size; HMC_COSIM_ETRUNC when the copy was truncated. */
int hmc_cosim_recv(hmc_cosim_t *client, uint8_t *rsp_cmd, uint16_t *tag,
                   uint64_t *payload, uint32_t *payload_words,
                   uint64_t *latency);

#ifdef __cplusplus
} /* extern "C" */
#endif

#endif /* HMCSIM_HMC_COSIM_CLIENT_H */
