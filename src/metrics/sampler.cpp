#include "metrics/sampler.hpp"

#include <cmath>
#include <cstdio>

namespace hmcsim::metrics {

namespace {

/// Deterministic number rendering: integral values (the common case —
/// counter totals and deltas) print without a decimal point, everything
/// else as %.6g. Pure function of the double, so identical samples
/// render identically on every platform we target.
std::string fmt_num(double v) {
  if (std::floor(v) == v && std::fabs(v) < 9.007199254740992e15) {
    return std::to_string(static_cast<long long>(v));
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

Sampler::Sampler(const StatRegistry& reg, SamplerOptions opts)
    : reg_(reg), opts_(std::move(opts)) {
  if (opts_.capacity == 0) {
    opts_.capacity = 1;
  }
}

const char* Sampler::col_kind_name(ColKind k) noexcept {
  switch (k) {
    case ColKind::Counter:
      return "counter";
    case ColKind::Gauge:
      return "gauge";
    case ColKind::Histogram:
      return "histogram";
    case ColKind::Rate:
      return "rate";
  }
  return "?";
}

void Sampler::add_derived(DerivedSpec spec) {
  if (frozen_) {
    return;
  }
  Column c;
  c.path = spec.name;
  c.kind = ColKind::Rate;
  c.derived = std::move(spec);
  cols_.push_back(std::move(c));
}

void Sampler::freeze_columns() {
  frozen_ = true;
  reg_.for_each([this](std::string_view path, StatKind kind,
                       const Counter* ctr, const Gauge* gauge,
                       const Histogram* hist) {
    bool selected;
    if (opts_.paths.empty()) {
      // Wall-clock self-profiling values are host-dependent; keeping
      // them out of the default column set keeps the series
      // deterministic. An explicit filter can still opt in.
      selected = !path.starts_with("sim.prof.");
    } else {
      selected = false;
      for (const std::string& prefix : opts_.paths) {
        if (path.starts_with(prefix)) {
          selected = true;
          break;
        }
      }
    }
    if (!selected) {
      return;
    }
    Column c;
    c.path = std::string(path);
    switch (kind) {
      case StatKind::Counter:
        c.kind = ColKind::Counter;
        c.counter = ctr;
        break;
      case StatKind::Gauge:
        c.kind = ColKind::Gauge;
        c.gauge = gauge;
        break;
      case StatKind::Histogram:
        c.kind = ColKind::Histogram;
        c.histogram = hist;
        break;
    }
    cols_.push_back(std::move(c));
  });
  prev_raw_.assign(cols_.size(), 0.0);
}

double Sampler::read_raw(const Column& c) const {
  switch (c.kind) {
    case ColKind::Counter:
      return static_cast<double>(c.counter->value());
    case ColKind::Gauge:
      return c.gauge->value();
    case ColKind::Histogram:
      return static_cast<double>(c.histogram->count());
    case ColKind::Rate: {
      std::uint64_t total = 0;
      for (const auto& [prefix, leaf] : c.derived.terms) {
        total += reg_.sum(prefix, leaf);
      }
      return static_cast<double>(total);
    }
  }
  return 0.0;
}

void Sampler::sample(std::uint64_t cycle) {
  if (!frozen_) {
    freeze_columns();
  }
  Window w;
  w.cycle = cycle;
  w.dcycles = cycle - prev_cycle_;
  w.values.resize(cols_.size());
  w.deltas.resize(cols_.size());
  for (std::size_t i = 0; i < cols_.size(); ++i) {
    const Column& c = cols_[i];
    const double raw = read_raw(c);
    const double delta = raw - prev_raw_[i];
    w.deltas[i] = delta;
    if (c.kind == ColKind::Rate) {
      const double denom =
          c.derived.scale * static_cast<double>(w.dcycles);
      w.values[i] = denom > 0.0 ? delta / denom : 0.0;
    } else {
      w.values[i] = raw;
    }
    prev_raw_[i] = raw;
  }
  prev_cycle_ = cycle;
  ++taken_;
  if (ring_.size() < opts_.capacity) {
    ring_.push_back(std::move(w));
  } else {
    ring_[head_] = std::move(w);
    head_ = (head_ + 1) % ring_.size();
  }
}

const Sampler::Window& Sampler::at(std::size_t i) const {
  return ring_.size() < opts_.capacity
             ? ring_[i]
             : ring_[(head_ + i) % ring_.size()];
}

std::string Sampler::to_json() const {
  std::string out = "{\n";
  out += "  \"schema_version\": 1,\n";
  out += "  \"every\": " + std::to_string(opts_.every) + ",\n";
  out += "  \"capacity\": " + std::to_string(opts_.capacity) + ",\n";
  out += "  \"windows_taken\": " + std::to_string(taken_) + ",\n";
  out += "  \"columns\": [";
  for (std::size_t i = 0; i < cols_.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"path\": \"" + json_escape(cols_[i].path) +
           "\", \"kind\": \"" + col_kind_name(cols_[i].kind) + "\"}";
  }
  out += "\n  ],\n";
  out += "  \"windows\": [";
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    const Window& w = at(i);
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"cycle\": " + std::to_string(w.cycle) +
           ", \"dcycles\": " + std::to_string(w.dcycles) +
           ", \"values\": [";
    for (std::size_t j = 0; j < w.values.size(); ++j) {
      if (j != 0) {
        out += ", ";
      }
      out += fmt_num(w.values[j]);
    }
    out += "], \"deltas\": [";
    for (std::size_t j = 0; j < w.deltas.size(); ++j) {
      if (j != 0) {
        out += ", ";
      }
      out += fmt_num(w.deltas[j]);
    }
    out += "]}";
  }
  out += "\n  ]\n";
  out += "}\n";
  return out;
}

std::string Sampler::to_csv() const {
  std::string out = "cycle,dcycles,path,kind,value,delta\n";
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    const Window& w = at(i);
    for (std::size_t j = 0; j < cols_.size(); ++j) {
      out += std::to_string(w.cycle);
      out += ',';
      out += std::to_string(w.dcycles);
      out += ',';
      out += cols_[j].path;
      out += ',';
      out += col_kind_name(cols_[j].kind);
      out += ',';
      out += fmt_num(w.values[j]);
      out += ',';
      out += fmt_num(w.deltas[j]);
      out += '\n';
    }
  }
  return out;
}

}  // namespace hmcsim::metrics
