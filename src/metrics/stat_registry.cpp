#include "metrics/stat_registry.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace hmcsim::metrics {
namespace {

/// Shortest round-trippable decimal form of a double ("%.17g" is exact
/// but ugly; try increasing precision until the value survives a parse).
std::string format_double(double v) {
  char buf[64];
  for (int precision = 6; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof buf, "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) {
      break;
    }
  }
  return buf;
}

void append_json_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20U) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  append_json_escaped(out, s);
  return out;
}

std::string_view to_string(StatKind kind) noexcept {
  switch (kind) {
    case StatKind::Counter:
      return "counter";
    case StatKind::Gauge:
      return "gauge";
    case StatKind::Histogram:
      return "histogram";
  }
  return "?";
}

std::uint64_t Histogram::percentile(double p) const noexcept {
  if (count_ == 0) {
    return 0;
  }
  const double rank = (p / 100.0) * static_cast<double>(count_);
  std::uint64_t target = static_cast<std::uint64_t>(std::ceil(rank));
  if (target < 1) {
    target = 1;
  }
  if (target > count_) {
    target = count_;
  }
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    cumulative += buckets_[i];
    if (cumulative >= target) {
      const std::uint64_t upper = bucket_upper(i);
      return upper < max_ ? upper : max_;
    }
  }
  return max_;
}

StatRegistry::Entry& StatRegistry::open(std::string_view path, StatKind kind,
                                        std::string_view desc) {
  auto it = entries_.find(path);
  if (it != entries_.end()) {
    if (it->second.kind != kind) {
      throw std::logic_error("stat path '" + std::string(path) +
                             "' re-registered as a different kind");
    }
    return it->second;
  }
  std::size_t index = 0;
  switch (kind) {
    case StatKind::Counter:
      index = counters_.size();
      counters_.emplace_back();
      break;
    case StatKind::Gauge:
      index = gauges_.size();
      gauges_.emplace_back();
      break;
    case StatKind::Histogram:
      index = histograms_.size();
      histograms_.emplace_back();
      break;
  }
  auto [pos, inserted] = entries_.emplace(
      std::string(path), Entry{kind, index, std::string(desc)});
  (void)inserted;
  return pos->second;
}

Counter& StatRegistry::counter(std::string_view path, std::string_view desc) {
  const std::lock_guard<std::mutex> lock(reg_mu_);
  return counters_[open(path, StatKind::Counter, desc).index];
}

Gauge& StatRegistry::gauge(std::string_view path, std::string_view desc) {
  const std::lock_guard<std::mutex> lock(reg_mu_);
  return gauges_[open(path, StatKind::Gauge, desc).index];
}

Histogram& StatRegistry::histogram(std::string_view path,
                                   std::string_view desc) {
  const std::lock_guard<std::mutex> lock(reg_mu_);
  return histograms_[open(path, StatKind::Histogram, desc).index];
}

const StatRegistry::Entry* StatRegistry::find(std::string_view path,
                                              StatKind kind) const {
  const auto it = entries_.find(path);
  if (it == entries_.end() || it->second.kind != kind) {
    return nullptr;
  }
  return &it->second;
}

const Counter* StatRegistry::find_counter(std::string_view path) const {
  const Entry* e = find(path, StatKind::Counter);
  return e == nullptr ? nullptr : &counters_[e->index];
}

const Gauge* StatRegistry::find_gauge(std::string_view path) const {
  const Entry* e = find(path, StatKind::Gauge);
  return e == nullptr ? nullptr : &gauges_[e->index];
}

const Histogram* StatRegistry::find_histogram(std::string_view path) const {
  const Entry* e = find(path, StatKind::Histogram);
  return e == nullptr ? nullptr : &histograms_[e->index];
}

std::uint64_t StatRegistry::counter_value(std::string_view path) const {
  const Counter* c = find_counter(path);
  return c == nullptr ? 0 : c->value();
}

std::uint64_t StatRegistry::sum(std::string_view prefix,
                                std::string_view leaf) const {
  std::uint64_t total = 0;
  for (auto it = entries_.lower_bound(prefix); it != entries_.end(); ++it) {
    const std::string_view path = it->first;
    if (path.substr(0, prefix.size()) != prefix) {
      break;  // Sorted map: once past the prefix range, we are done.
    }
    if (it->second.kind != StatKind::Counter) {
      continue;
    }
    if (path.size() <= leaf.size() + 1 || !path.ends_with(leaf) ||
        path[path.size() - leaf.size() - 1] != '.') {
      continue;
    }
    total += counters_[it->second.index].value();
  }
  return total;
}

void StatRegistry::for_each(
    const std::function<void(std::string_view, StatKind, const Counter*,
                             const Gauge*, const Histogram*)>& fn) const {
  for (const auto& [path, entry] : entries_) {
    switch (entry.kind) {
      case StatKind::Counter:
        fn(path, entry.kind, &counters_[entry.index], nullptr, nullptr);
        break;
      case StatKind::Gauge:
        fn(path, entry.kind, nullptr, &gauges_[entry.index], nullptr);
        break;
      case StatKind::Histogram:
        fn(path, entry.kind, nullptr, nullptr, &histograms_[entry.index]);
        break;
    }
  }
}

StatRegistry::Snapshot StatRegistry::snapshot_counters() const {
  Snapshot snap;
  for (const auto& [path, entry] : entries_) {
    if (entry.kind == StatKind::Counter) {
      snap.emplace(path, counters_[entry.index].value());
    }
  }
  return snap;
}

StatRegistry::Snapshot StatRegistry::delta(const Snapshot& before,
                                           const Snapshot& after) {
  Snapshot d;
  for (const auto& [path, value] : after) {
    const auto it = before.find(path);
    const std::uint64_t prev = it == before.end() ? 0 : it->second;
    if (value > prev) {
      d.emplace(path, value - prev);
    }
  }
  return d;
}

namespace {

/// Intermediate tree for nested JSON rendering. Stats are few (hundreds),
/// so building a temporary tree per export is cheap and keeps the writer
/// trivially correct.
struct JsonNode {
  std::map<std::string, JsonNode, std::less<>> children;
  const Counter* counter = nullptr;
  const Gauge* gauge = nullptr;
  const Histogram* histogram = nullptr;
};

void append_histogram_json(std::string& out, const Histogram& h,
                           const std::string& pad, const std::string& step) {
  const std::string inner = pad + step;
  out += "{\n";
  out += inner + "\"count\": " + std::to_string(h.count()) + ",\n";
  out += inner + "\"sum\": " + std::to_string(h.sum()) + ",\n";
  out += inner + "\"min\": " + std::to_string(h.min()) + ",\n";
  out += inner + "\"max\": " + std::to_string(h.max()) + ",\n";
  out += inner + "\"mean\": " + format_double(h.mean()) + ",\n";
  out += inner + "\"p50\": " + std::to_string(h.percentile(50.0)) + ",\n";
  out += inner + "\"p95\": " + std::to_string(h.percentile(95.0)) + ",\n";
  out += inner + "\"p99\": " + std::to_string(h.percentile(99.0)) + ",\n";
  out += inner + "\"buckets\": {";
  bool first = true;
  for (std::size_t i = 0; i < Histogram::kNumBuckets; ++i) {
    if (h.bucket(i) == 0) {
      continue;
    }
    if (!first) {
      out += ", ";
    }
    first = false;
    out += '"';
    out += std::to_string(Histogram::bucket_upper(i));
    out += "\": ";
    out += std::to_string(h.bucket(i));
  }
  out += "}\n" + pad + "}";
}

void append_node_json(std::string& out, const JsonNode& node,
                      const std::string& pad, const std::string& step) {
  out += "{\n";
  const std::string inner = pad + step;
  bool first = true;
  for (const auto& [key, child] : node.children) {
    if (!first) {
      out += ",\n";
    }
    first = false;
    out += inner + "\"";
    append_json_escaped(out, key);
    out += "\": ";
    if (child.counter != nullptr) {
      out += std::to_string(child.counter->value());
    } else if (child.gauge != nullptr) {
      out += format_double(child.gauge->value());
    } else if (child.histogram != nullptr) {
      append_histogram_json(out, *child.histogram, inner, step);
    } else {
      append_node_json(out, child, inner, step);
    }
  }
  out += "\n" + pad + "}";
}

}  // namespace

std::string StatRegistry::to_json(unsigned base_indent) const {
  JsonNode root;
  for_each([&root](std::string_view path, StatKind, const Counter* c,
                   const Gauge* g, const Histogram* h) {
    JsonNode* node = &root;
    std::string_view rest = path;
    while (true) {
      const std::size_t dot = rest.find('.');
      const std::string_view seg =
          dot == std::string_view::npos ? rest : rest.substr(0, dot);
      node = &node->children[std::string(seg)];
      if (dot == std::string_view::npos) {
        break;
      }
      rest = rest.substr(dot + 1);
    }
    node->counter = c;
    node->gauge = g;
    node->histogram = h;
  });
  std::string out;
  append_node_json(out, root, std::string(base_indent, ' '), "  ");
  return out;
}

std::string StatRegistry::to_csv() const {
  std::string out = "path,kind,value,count,sum,min,max,p50,p95,p99\n";
  for_each([&out](std::string_view path, StatKind kind, const Counter* c,
                  const Gauge* g, const Histogram* h) {
    out += path;
    out += ',';
    out += to_string(kind);
    out += ',';
    switch (kind) {
      case StatKind::Counter:
        out += std::to_string(c->value());
        out += ",,,,,,,";
        break;
      case StatKind::Gauge:
        out += format_double(g->value());
        out += ",,,,,,,";
        break;
      case StatKind::Histogram:
        out += ',' + std::to_string(h->count()) + ',' +
               std::to_string(h->sum()) + ',' + std::to_string(h->min()) +
               ',' + std::to_string(h->max()) + ',' +
               std::to_string(h->percentile(50.0)) + ',' +
               std::to_string(h->percentile(95.0)) + ',' +
               std::to_string(h->percentile(99.0));
        break;
    }
    out += '\n';
  });
  return out;
}

void StatRegistry::reset() {
  for (Counter& c : counters_) {
    c.reset();
  }
  for (Gauge& g : gauges_) {
    g.reset();
  }
  for (Histogram& h : histograms_) {
    h.reset();
  }
}

}  // namespace hmcsim::metrics
