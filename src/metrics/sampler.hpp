// sampler.hpp — deterministic time-series sampling of the stat registry.
//
// A Sampler turns the registry's cumulative totals into a bounded
// time-series: every sample() call (driven from an exact-cycle periodic
// hook, see Simulator::add_periodic_hook) snapshots the selected paths
// into a fixed-capacity ring of windows, each holding the cumulative
// value, the per-window delta, and — for derived series — a rate
// normalised per cycle.
//
// Determinism: sample() only *reads* the registry at cycles that are
// already exact across clocking modes, so the exported series is byte
// identical for any Config::threads value and for active vs. exhaustive
// clocking (tests/sim/golden_equivalence_test.cpp enforces this). The
// wall-clock sim.prof.* paths are excluded unless explicitly requested
// by a path filter, precisely to keep the default export deterministic.
//
// The column set is resolved once, at the first sample(): statistics
// registered later (gated paths such as ecc.* or lazily-created stage
// histograms) do not join an already-running series — the columns of a
// time-series cannot change mid-flight.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "metrics/stat_registry.hpp"

namespace hmcsim::metrics {

struct SamplerOptions {
  /// Cycles between samples (informational here; the periodic hook that
  /// drives sample() owns the actual cadence).
  std::uint64_t every = 1024;
  /// Ring capacity in windows; the oldest window is evicted when full.
  std::size_t capacity = 256;
  /// Path prefix filters; a statistic is sampled when its path starts
  /// with any entry. Empty selects everything except sim.prof.*.
  std::vector<std::string> paths;
};

class Sampler {
 public:
  Sampler(const StatRegistry& reg, SamplerOptions opts);

  /// A derived series: the per-window delta of a sum of counters (every
  /// path matching prefix+leaf, StatRegistry::sum semantics), reported
  /// as a rate normalised to `scale` units per cycle. With scale == 1
  /// the value is plain events-per-cycle; a utilisation series passes
  /// its capacity per cycle divided by 100 to read in percent.
  struct DerivedSpec {
    std::string name;
    std::vector<std::pair<std::string, std::string>> terms;
    double scale = 1.0;
  };
  /// Register a derived series. Must precede the first sample(); later
  /// calls are ignored (the column set is already frozen).
  void add_derived(DerivedSpec spec);

  /// Take one sample at `cycle`. The first call freezes the column set.
  void sample(std::uint64_t cycle);

  /// Windows currently held (<= capacity).
  [[nodiscard]] std::size_t windows() const noexcept {
    return ring_.size();
  }
  /// Total samples taken, including evicted ones.
  [[nodiscard]] std::uint64_t windows_taken() const noexcept {
    return taken_;
  }

  /// Columnar JSON export (schema in docs/TELEMETRY.md): header with the
  /// frozen column list, then one object per retained window, oldest
  /// first, with parallel `values` and `deltas` arrays.
  [[nodiscard]] std::string to_json() const;
  /// Long-format CSV: `cycle,dcycles,path,kind,value,delta`, one row per
  /// column per retained window, oldest first.
  [[nodiscard]] std::string to_csv() const;

 private:
  enum class ColKind : std::uint8_t { Counter, Gauge, Histogram, Rate };
  static const char* col_kind_name(ColKind k) noexcept;

  struct Column {
    std::string path;
    ColKind kind = ColKind::Counter;
    // Exactly one source is set, matching `kind`.
    const Counter* counter = nullptr;
    const Gauge* gauge = nullptr;
    const Histogram* histogram = nullptr;
    DerivedSpec derived;  // kind == Rate only
  };

  struct Window {
    std::uint64_t cycle = 0;
    std::uint64_t dcycles = 0;
    std::vector<double> values;
    std::vector<double> deltas;
  };

  void freeze_columns();
  [[nodiscard]] double read_raw(const Column& c) const;
  [[nodiscard]] const Window& at(std::size_t i) const;

  const StatRegistry& reg_;
  SamplerOptions opts_;
  std::vector<Column> cols_;
  bool frozen_ = false;
  std::vector<double> prev_raw_;
  std::uint64_t prev_cycle_ = 0;
  std::vector<Window> ring_;  // chronological, head_ = oldest index
  std::size_t head_ = 0;
  std::uint64_t taken_ = 0;
};

}  // namespace hmcsim::metrics
