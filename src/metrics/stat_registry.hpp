// stat_registry.hpp — the simulator-wide instrumentation layer.
//
// Every component (link, xbar, vault, bank, registers, device, host
// drivers) registers typed statistics into one StatRegistry at
// construction, addressed by a hierarchical dotted path such as
// `cube0.quad2.vault5.bank3.conflicts` or `cube0.cmc.hmc_lock.executed`.
// Registration returns a stable handle (the registry owns the objects in
// deques, so addresses never move); the hot path increments a plain
// uint64_t behind that handle — no string lookups after construction.
//
// The registry is the single source of truth for reporting: the text
// report, the CSV export, the JSON export and the snapshot/delta
// machinery all render from it.
//
// Path naming rules (see docs/METRICS.md):
//   * segments are separated by '.', lowercase, no spaces;
//   * a path must not also be a prefix of another path (a node is either
//     a leaf statistic or an interior group, never both);
//   * device-scoped stats live under `cube{id}.`, host-side stats under
//     `host.`.
#pragma once

#include <bit>
#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

namespace hmcsim::metrics {

/// Monotonic event counter. Hot-path friendly: inc() is one add on a
/// plain uint64_t reached through the handle the owner cached at
/// construction.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept { value_ += n; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }
  void reset() noexcept { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-value gauge (levels: thread counts, occupancies, ratios).
class Gauge {
 public:
  void set(double v) noexcept { value_ = v; }
  void add(double v) noexcept { value_ += v; }
  [[nodiscard]] double value() const noexcept { return value_; }
  void reset() noexcept { value_ = 0.0; }

 private:
  double value_ = 0.0;
};

/// Log2-bucketed histogram over uint64 samples (latencies, sizes).
///
/// Bucket i holds samples whose value needs i bits: bucket 0 is exactly
/// {0}, bucket i (1 <= i <= 63) covers [2^(i-1), 2^i - 1], bucket 64
/// covers [2^63, UINT64_MAX]. 65 buckets make record() branch-free
/// (std::bit_width + one increment) while keeping percentile error
/// bounded by one power of two.
class Histogram {
 public:
  static constexpr std::size_t kNumBuckets = 65;

  void record(std::uint64_t v) noexcept {
    ++buckets_[static_cast<std::size_t>(std::bit_width(v))];
    ++count_;
    sum_ += v;
    min_ = v < min_ ? v : min_;
    max_ = v > max_ ? v : max_;
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t sum() const noexcept { return sum_; }
  /// Smallest recorded sample (0 when empty).
  [[nodiscard]] std::uint64_t min() const noexcept {
    return count_ == 0 ? 0 : min_;
  }
  [[nodiscard]] std::uint64_t max() const noexcept { return max_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) /
                             static_cast<double>(count_);
  }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const noexcept {
    return buckets_[i];
  }

  /// Inclusive upper bound of bucket i.
  [[nodiscard]] static std::uint64_t bucket_upper(std::size_t i) noexcept {
    if (i == 0) {
      return 0;
    }
    if (i >= 64) {
      return std::numeric_limits<std::uint64_t>::max();
    }
    return (std::uint64_t{1} << i) - 1;
  }

  /// Approximate percentile (p in [0,100]): the upper bound of the bucket
  /// holding the p-th sample, clamped to the observed maximum. Exact when
  /// all samples in that bucket share one value.
  [[nodiscard]] std::uint64_t percentile(double p) const noexcept;

  void reset() noexcept {
    for (auto& b : buckets_) {
      b = 0;
    }
    count_ = 0;
    sum_ = 0;
    min_ = std::numeric_limits<std::uint64_t>::max();
    max_ = 0;
  }

 private:
  std::uint64_t buckets_[kNumBuckets] = {};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t max_ = 0;
};

enum class StatKind : std::uint8_t { Counter, Gauge, Histogram };

[[nodiscard]] std::string_view to_string(StatKind kind) noexcept;

/// Escape `s` for embedding inside a JSON string literal.
[[nodiscard]] std::string json_escape(std::string_view s);

/// Owns every registered statistic and renders them. Handles returned by
/// counter()/gauge()/histogram() stay valid for the registry's lifetime
/// (storage is deque-backed). Not copyable or movable: components hold
/// raw pointers into it.
///
/// Threading contract (the parallel core relies on this): registration is
/// serialized by an internal mutex, so components may (lazily) register
/// from any thread. Updates through handles are deliberately unsynchronized
/// plain stores — they are shard-partitioned by construction: every
/// `cube{id}.*` statistic is touched only by the worker that owns device
/// `id` during a span, and `host.*` statistics only by the host thread
/// between spans. One registry therefore needs no merge step and exports
/// deterministically (sorted map) for any thread count.
class StatRegistry {
 public:
  StatRegistry() = default;
  StatRegistry(const StatRegistry&) = delete;
  StatRegistry& operator=(const StatRegistry&) = delete;

  /// Register (or re-open) the statistic at `path`. Idempotent: a second
  /// call with the same path and kind returns the existing object, so
  /// re-constructed components re-attach to their counters. A kind
  /// mismatch on an existing path is a programming error and throws.
  Counter& counter(std::string_view path, std::string_view desc = {});
  Gauge& gauge(std::string_view path, std::string_view desc = {});
  Histogram& histogram(std::string_view path, std::string_view desc = {});

  /// Lookups by exact path; nullptr when absent or of another kind.
  [[nodiscard]] const Counter* find_counter(std::string_view path) const;
  [[nodiscard]] const Gauge* find_gauge(std::string_view path) const;
  [[nodiscard]] const Histogram* find_histogram(std::string_view path) const;

  /// Counter value at `path`, 0 when absent.
  [[nodiscard]] std::uint64_t counter_value(std::string_view path) const;

  /// Sum of every counter whose path starts with `prefix` and whose final
  /// segment equals `leaf` (e.g. sum("cube0.quad", "rqsts_processed")
  /// totals all 32 vaults of cube 0).
  [[nodiscard]] std::uint64_t sum(std::string_view prefix,
                                  std::string_view leaf) const;

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

  /// Visit every statistic in sorted path order.
  void for_each(
      const std::function<void(std::string_view path, StatKind kind,
                               const Counter*, const Gauge*,
                               const Histogram*)>& fn) const;

  /// Point-in-time copy of every counter value, keyed by path.
  using Snapshot = std::map<std::string, std::uint64_t, std::less<>>;
  [[nodiscard]] Snapshot snapshot_counters() const;

  /// Per-path increase from `before` to `after`; paths absent from
  /// `before` count from zero, zero deltas are omitted.
  [[nodiscard]] static Snapshot delta(const Snapshot& before,
                                      const Snapshot& after);

  /// Render the whole registry as a nested JSON object (paths split on
  /// '.'; counters as integers, gauges as numbers, histograms as objects
  /// with count/sum/min/max/mean/p50/p95/p99 and non-empty buckets).
  /// `base_indent` shifts every line right for embedding.
  [[nodiscard]] std::string to_json(unsigned base_indent = 0) const;

  /// Flat CSV: `path,kind,value,count,sum,min,max,p50,p95,p99` — value
  /// for counters/gauges, the distribution columns for histograms.
  [[nodiscard]] std::string to_csv() const;

  /// Zero every statistic (registrations survive).
  void reset();

 private:
  struct Entry {
    StatKind kind;
    std::size_t index;  ///< Into the deque matching `kind`.
    std::string desc;
  };

  Entry& open(std::string_view path, StatKind kind, std::string_view desc);
  [[nodiscard]] const Entry* find(std::string_view path,
                                  StatKind kind) const;

  /// Serializes open(): concurrent lazy registration must not tear the
  /// entry map or the storage deques. Never taken on the update hot path.
  std::mutex reg_mu_;
  // Sorted map: export order is deterministic; transparent comparator
  // lets string_view probe without allocating.
  std::map<std::string, Entry, std::less<>> entries_;
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;
};

}  // namespace hmcsim::metrics
