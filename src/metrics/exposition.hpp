// exposition.hpp — runtime telemetry rendering.
//
// Two renderers over a StatRegistry plus a small host-context struct:
//
//   to_prometheus()  Prometheus text exposition format, one
//                    hmcsim_counter/hmcsim_gauge/hmcsim_histogram_*
//                    sample per registered statistic with the registry
//                    path as a label, plus top-level run/server gauges.
//   snapshot_json()  a compact flat JSON snapshot (per-cube packet and
//                    stall totals, per-worker prof split when profiling
//                    is on) consumed by `hmcsim_cli top` and
//                    hmcsim_telemetry_snapshot().
//
// Both are pure reads: no registry mutation, no allocation beyond the
// output string. They layer on anything that holds a registry — the
// cosim server's telemetry socket, the C API, tests.
#pragma once

#include <cstdint>
#include <string>

#include "metrics/stat_registry.hpp"

namespace hmcsim::metrics {

/// Host-side context that lives outside the registry.
struct TelemetryInfo {
  std::uint64_t cycle = 0;
  /// Simulated cycles per wall second (0 = unknown/not measured).
  double cycles_per_sec = 0.0;
  /// Server-session fields; rendered only when `server` is set.
  bool server = false;
  std::uint32_t clients_live = 0;
  std::uint32_t clients_evicted = 0;
  std::uint64_t quanta = 0;
  std::uint64_t requests = 0;
  std::uint64_t responses = 0;
};

[[nodiscard]] std::string to_prometheus(const StatRegistry& reg,
                                        const TelemetryInfo& info);

[[nodiscard]] std::string snapshot_json(const StatRegistry& reg,
                                        const TelemetryInfo& info);

}  // namespace hmcsim::metrics
