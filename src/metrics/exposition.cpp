#include "metrics/exposition.hpp"

#include <cmath>
#include <cstdio>

namespace hmcsim::metrics {

namespace {

std::string fmt_double(double v) {
  if (std::floor(v) == v && std::fabs(v) < 9.007199254740992e15) {
    return std::to_string(static_cast<long long>(v));
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

/// Prometheus label-value escaping: backslash, double quote, newline.
std::string prom_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

std::string to_prometheus(const StatRegistry& reg,
                          const TelemetryInfo& info) {
  std::string out;
  out.reserve(reg.size() * 64 + 512);
  out += "# TYPE hmcsim_cycle counter\n";
  out += "hmcsim_cycle " + std::to_string(info.cycle) + "\n";
  out += "# TYPE hmcsim_cycles_per_sec gauge\n";
  out += "hmcsim_cycles_per_sec " + fmt_double(info.cycles_per_sec) + "\n";
  if (info.server) {
    out += "# TYPE hmcsim_clients_live gauge\n";
    out += "hmcsim_clients_live " + std::to_string(info.clients_live) +
           "\n";
    out += "# TYPE hmcsim_clients_evicted counter\n";
    out += "hmcsim_clients_evicted " +
           std::to_string(info.clients_evicted) + "\n";
    out += "# TYPE hmcsim_quanta counter\n";
    out += "hmcsim_quanta " + std::to_string(info.quanta) + "\n";
    out += "# TYPE hmcsim_requests counter\n";
    out += "hmcsim_requests " + std::to_string(info.requests) + "\n";
    out += "# TYPE hmcsim_responses counter\n";
    out += "hmcsim_responses " + std::to_string(info.responses) + "\n";
  }
  out += "# TYPE hmcsim_counter counter\n";
  out += "# TYPE hmcsim_gauge gauge\n";
  out += "# TYPE hmcsim_histogram summary\n";
  reg.for_each([&out](std::string_view path, StatKind kind,
                      const Counter* ctr, const Gauge* gauge,
                      const Histogram* hist) {
    const std::string label = "{path=\"" + prom_escape(path) + "\"}";
    switch (kind) {
      case StatKind::Counter:
        out += "hmcsim_counter" + label + " " +
               std::to_string(ctr->value()) + "\n";
        break;
      case StatKind::Gauge:
        out += "hmcsim_gauge" + label + " " + fmt_double(gauge->value()) +
               "\n";
        break;
      case StatKind::Histogram: {
        const std::string base = "{path=\"" + prom_escape(path) + "\"";
        out += "hmcsim_histogram_count" + base + "} " +
               std::to_string(hist->count()) + "\n";
        out += "hmcsim_histogram_sum" + base + "} " +
               std::to_string(hist->sum()) + "\n";
        out += "hmcsim_histogram" + base + ",quantile=\"0.5\"} " +
               std::to_string(hist->percentile(50.0)) + "\n";
        out += "hmcsim_histogram" + base + ",quantile=\"0.95\"} " +
               std::to_string(hist->percentile(95.0)) + "\n";
        out += "hmcsim_histogram" + base + ",quantile=\"0.99\"} " +
               std::to_string(hist->percentile(99.0)) + "\n";
        break;
      }
    }
  });
  return out;
}

std::string snapshot_json(const StatRegistry& reg,
                          const TelemetryInfo& info) {
  std::string out = "{\"cycle\": " + std::to_string(info.cycle) +
                    ", \"cycles_per_sec\": " +
                    fmt_double(info.cycles_per_sec);
  if (info.server) {
    out += ", \"clients_live\": " + std::to_string(info.clients_live);
    out +=
        ", \"clients_evicted\": " + std::to_string(info.clients_evicted);
    out += ", \"quanta\": " + std::to_string(info.quanta);
    out += ", \"requests\": " + std::to_string(info.requests);
    out += ", \"responses\": " + std::to_string(info.responses);
  }
  out += ", \"cubes\": [";
  // Probe cube0.., stopping at the first missing device: the registry
  // always carries cube{d}.xbar.rqsts_routed for a configured cube.
  for (std::uint32_t d = 0;; ++d) {
    const std::string cube = "cube" + std::to_string(d);
    if (reg.find_counter(cube + ".xbar.rqsts_routed") == nullptr) {
      break;
    }
    if (d != 0) {
      out += ", ";
    }
    out += "{\"dev\": " + std::to_string(d);
    out += ", \"rqst_packets\": " +
           std::to_string(reg.sum(cube + ".link", "rqst_packets"));
    out += ", \"rsp_packets\": " +
           std::to_string(reg.sum(cube + ".link", "rsp_packets"));
    out += ", \"send_stalls\": " +
           std::to_string(reg.sum(cube + ".link", "send_stalls"));
    out += ", \"vault_rqsts\": " +
           std::to_string(reg.sum(cube + ".quad", "rqsts_processed"));
    double buffered = 0.0;
    for (std::uint32_t l = 0;; ++l) {
      const Gauge* g = reg.find_gauge(cube + ".link" + std::to_string(l) +
                                      ".retry_buffered_flits");
      if (g == nullptr) {
        break;
      }
      buffered += g->value();
    }
    out += ", \"retry_buffered_flits\": " + fmt_double(buffered);
    out += "}";
  }
  out += "], \"workers\": [";
  // Present only when self-profiling registered its gated lanes.
  for (std::uint32_t w = 0;; ++w) {
    const std::string base = "sim.prof.worker" + std::to_string(w);
    const Counter* exec = reg.find_counter(base + ".exec_ns");
    if (exec == nullptr) {
      break;
    }
    if (w != 0) {
      out += ", ";
    }
    out += "{\"worker\": " + std::to_string(w);
    out += ", \"exec_ns\": " + std::to_string(exec->value());
    out += ", \"wait_ns\": " +
           std::to_string(reg.counter_value(base + ".wait_ns"));
    out += "}";
  }
  out += "]}\n";
  return out;
}

}  // namespace hmcsim::metrics
