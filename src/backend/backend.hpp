// backend.hpp — the memory-system side of the frontend/backend seam.
//
// MemoryBackend is the send/recv/clock/next_event_cycle surface Simulator
// already exposes, lifted behind a virtual interface so request sources
// (src/frontend) can be written once and pointed at any memory model. The
// HMC device chain (HmcBackend) is the canonical implementation;
// alternative models register themselves in BackendRegistry under a name,
// the same pattern CmcRegistry uses for plugin operations.
//
// The interface is deliberately the *host* surface only: back-door memory
// access, CMC registration, tracing and metrics are simulator-specific
// services, reachable through the simulator() escape hatch (null for
// non-HMC backends). Frontends that need them must degrade gracefully or
// report Unsupported.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"
#include "sim/config.hpp"
#include "sim/simulator.hpp"
#include "spec/packet.hpp"

namespace hmcsim::backend {

/// Sentinel from next_event_cycle(): the backend is quiescent and only a
/// new send() creates future work. Mirrors sim::Simulator::kNoEvent.
inline constexpr std::uint64_t kNoEvent = UINT64_MAX;

/// A clocked memory system as seen from the host side of the links.
class MemoryBackend {
 public:
  virtual ~MemoryBackend() = default;
  MemoryBackend() = default;
  MemoryBackend(const MemoryBackend&) = delete;
  MemoryBackend& operator=(const MemoryBackend&) = delete;

  /// One-line description for logs and bench headers.
  [[nodiscard]] virtual std::string describe() const = 0;

  /// Host links requests can be injected on (frontends shard round-robin).
  [[nodiscard]] virtual std::uint32_t num_links() const = 0;

  /// Root seed for frontend RNG streams (Config::workload_seed for the
  /// HMC backend). Exposed here so frontends stay backend-agnostic.
  [[nodiscard]] virtual std::uint64_t workload_seed() const = 0;

  // ---- traffic -----------------------------------------------------------
  /// Inject a request on host link `link`. Stall == retry next cycle.
  [[nodiscard]] virtual Status send(const spec::RqstParams& params,
                                    std::uint32_t link) = 0;
  /// Inject an already-built packet (trace replay, tests).
  [[nodiscard]] virtual Status send_packet(spec::RqstPacket pkt,
                                           std::uint32_t link) = 0;
  /// True when recv(link) would return a response.
  [[nodiscard]] virtual bool rsp_ready(std::uint32_t link) const = 0;
  /// Pop the next ready response on `link`; NoData when none.
  [[nodiscard]] virtual Status recv(std::uint32_t link,
                                    sim::Response& out) = 0;

  // ---- time --------------------------------------------------------------
  virtual void clock() = 0;
  [[nodiscard]] virtual std::uint64_t cycle() const = 0;
  /// Earliest future cycle at which the backend can make progress on its
  /// own, or kNoEvent when quiescent.
  [[nodiscard]] virtual std::uint64_t next_event_cycle() const = 0;
  /// Advance until cycle() == target; observably identical to clocking in
  /// a loop. Returns the number of cycles advanced.
  virtual std::uint64_t clock_until(std::uint64_t target) = 0;
  /// Advance until quiescent or `max_cycles` elapsed (0 = unbounded).
  virtual std::uint64_t clock_until_idle(std::uint64_t max_cycles) = 0;
  /// False when the backend is configured for exhaustive per-cycle
  /// stepping: host drivers must then clock every cycle instead of
  /// jumping dead time (Config::exhaustive_clock on the HMC backend).
  [[nodiscard]] virtual bool fast_forward_allowed() const = 0;

  // ---- escape hatch ------------------------------------------------------
  /// The underlying HMC simulator, or null for non-HMC backends.
  /// HMC-specific frontends (CMC registration, back-door memory setup,
  /// journey tracing) use this and must fail gracefully on null.
  [[nodiscard]] virtual sim::Simulator* simulator() noexcept {
    return nullptr;
  }
};

/// One registry row: the name is the lookup key.
struct BackendInfo {
  std::string name;
  std::string description;
};

/// Name-keyed factory registry for memory backends.
class BackendRegistry {
 public:
  using Factory = Status (*)(const sim::Config& cfg,
                             std::unique_ptr<MemoryBackend>& out);

  /// The process-wide registry, with the built-in backends registered.
  [[nodiscard]] static BackendRegistry& instance();

  /// Register a backend. AlreadyExists when the name is taken.
  Status add(std::string_view name, std::string_view description,
             Factory factory);

  [[nodiscard]] bool contains(std::string_view name) const;

  /// Instantiate backend `name` over `cfg`. NotFound (naming the unknown
  /// backend and the registered ones) when no such registration exists.
  [[nodiscard]] Status create(std::string_view name, const sim::Config& cfg,
                              std::unique_ptr<MemoryBackend>& out) const;

  /// All registrations, sorted by name (stable across registration order).
  [[nodiscard]] std::vector<BackendInfo> list() const;

 private:
  struct Entry {
    std::string description;
    Factory factory = nullptr;
  };
  std::vector<std::pair<std::string, Entry>> entries_;  // name-sorted
};

}  // namespace hmcsim::backend
