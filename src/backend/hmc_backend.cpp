#include "backend/hmc_backend.hpp"

namespace hmcsim::backend {

Status HmcBackend::create(const sim::Config& cfg,
                          std::unique_ptr<MemoryBackend>& out) {
  std::unique_ptr<sim::Simulator> sim;
  if (Status s = sim::Simulator::create(cfg, sim); !s.ok()) {
    return s;
  }
  out.reset(new HmcBackend(std::move(sim)));
  return Status::Ok();
}

}  // namespace hmcsim::backend
