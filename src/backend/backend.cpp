#include "backend/backend.hpp"

#include <algorithm>

#include "backend/hmc_backend.hpp"

namespace hmcsim::backend {
namespace {

/// Register the in-tree backends. Explicit calls (rather than static
/// registrar objects) so registration survives static-library linking:
/// the archive member is pulled in by instance(), not by luck.
void register_builtin_backends(BackendRegistry& reg) {
  (void)reg.add("hmc", "HMC cube chain (sim::Simulator), the canonical model",
                &HmcBackend::create);
}

}  // namespace

BackendRegistry& BackendRegistry::instance() {
  static BackendRegistry* reg = [] {
    auto* r = new BackendRegistry;
    register_builtin_backends(*r);
    return r;
  }();
  return *reg;
}

Status BackendRegistry::add(std::string_view name,
                            std::string_view description, Factory factory) {
  if (name.empty() || factory == nullptr) {
    return Status::InvalidArg("backend registration needs a name and factory");
  }
  const auto pos = std::lower_bound(
      entries_.begin(), entries_.end(), name,
      [](const auto& e, std::string_view n) { return e.first < n; });
  if (pos != entries_.end() && pos->first == name) {
    return Status::AlreadyExists("backend '" + std::string(name) +
                                 "' is already registered");
  }
  entries_.insert(pos, {std::string(name),
                        Entry{std::string(description), factory}});
  return Status::Ok();
}

bool BackendRegistry::contains(std::string_view name) const {
  const auto pos = std::lower_bound(
      entries_.begin(), entries_.end(), name,
      [](const auto& e, std::string_view n) { return e.first < n; });
  return pos != entries_.end() && pos->first == name;
}

Status BackendRegistry::create(std::string_view name, const sim::Config& cfg,
                               std::unique_ptr<MemoryBackend>& out) const {
  const auto pos = std::lower_bound(
      entries_.begin(), entries_.end(), name,
      [](const auto& e, std::string_view n) { return e.first < n; });
  if (pos == entries_.end() || pos->first != name) {
    std::string known;
    for (const auto& [n, e] : entries_) {
      known += known.empty() ? n : ", " + n;
    }
    return Status::NotFound("unknown backend '" + std::string(name) +
                            "' (registered: " + known + ")");
  }
  return pos->second.factory(cfg, out);
}

std::vector<BackendInfo> BackendRegistry::list() const {
  std::vector<BackendInfo> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    out.push_back({name, entry.description});
  }
  return out;
}

}  // namespace hmcsim::backend
