// hmc_backend.hpp — the HMC device chain as a MemoryBackend.
//
// Two construction modes:
//   - owning: create("hmc") via the BackendRegistry builds a Simulator
//     from the Config and owns it (the CLI path);
//   - borrowing: HmcBackend(sim) wraps a caller-owned Simulator so the
//     legacy host:: driver entry points can route through the virtual
//     seam without changing their signatures.
#pragma once

#include <memory>

#include "backend/backend.hpp"

namespace hmcsim::backend {

class HmcBackend final : public MemoryBackend {
 public:
  /// Borrow a caller-owned simulator (must outlive the backend).
  explicit HmcBackend(sim::Simulator& sim) : sim_(&sim) {}

  /// Registry factory: build and own a Simulator from `cfg`.
  [[nodiscard]] static Status create(const sim::Config& cfg,
                                     std::unique_ptr<MemoryBackend>& out);

  [[nodiscard]] std::string describe() const override {
    std::string desc = sim_->config().describe();
    // Report the pool the clock actually uses (capped at one worker per
    // cube), not the raw Config::threads request; sequential runs keep
    // the historical string.
    if (sim_->effective_threads() > 1) {
      desc += " threads=" + std::to_string(sim_->effective_threads());
    }
    return desc;
  }
  [[nodiscard]] std::uint32_t num_links() const override {
    return sim_->config().num_links;
  }
  [[nodiscard]] std::uint64_t workload_seed() const override {
    return sim_->config().workload_seed;
  }
  [[nodiscard]] Status send(const spec::RqstParams& params,
                            std::uint32_t link) override {
    return sim_->send(params, link);
  }
  [[nodiscard]] Status send_packet(spec::RqstPacket pkt,
                                   std::uint32_t link) override {
    return sim_->send_packet(std::move(pkt), link);
  }
  [[nodiscard]] bool rsp_ready(std::uint32_t link) const override {
    return sim_->rsp_ready(link);
  }
  [[nodiscard]] Status recv(std::uint32_t link, sim::Response& out) override {
    return sim_->recv(link, out);
  }
  void clock() override { sim_->clock(); }
  [[nodiscard]] std::uint64_t cycle() const override { return sim_->cycle(); }
  [[nodiscard]] std::uint64_t next_event_cycle() const override {
    return sim_->next_event_cycle();
  }
  std::uint64_t clock_until(std::uint64_t target) override {
    return sim_->clock_until(target);
  }
  std::uint64_t clock_until_idle(std::uint64_t max_cycles) override {
    return sim_->clock_until_idle(max_cycles);
  }
  [[nodiscard]] bool fast_forward_allowed() const override {
    return !sim_->config().exhaustive_clock;
  }
  [[nodiscard]] sim::Simulator* simulator() noexcept override { return sim_; }

 private:
  HmcBackend(std::unique_ptr<sim::Simulator> owned)
      : owned_(std::move(owned)), sim_(owned_.get()) {}

  std::unique_ptr<sim::Simulator> owned_;  ///< Null in borrowing mode.
  sim::Simulator* sim_;
};

}  // namespace hmcsim::backend
