#include "dev/xbar.hpp"

namespace hmcsim::dev {

Xbar::Xbar(std::uint32_t num_links, std::uint32_t depth,
           metrics::StatRegistry& reg, const std::string& prefix)
    : rqsts_routed_(&reg.counter(prefix + ".rqsts_routed",
                                 "requests routed to vault queues")),
      rsps_routed_(&reg.counter(prefix + ".rsps_routed",
                                "responses routed to link queues")),
      rqst_stalls_(&reg.counter(prefix + ".rqst_stalls",
                                "request heads blocked: vault queue full")),
      rsp_stalls_(&reg.counter(prefix + ".rsp_stalls",
                               "responses blocked: link queue full")),
      rqst_bw_throttles_(&reg.counter(
          prefix + ".rqst_bw_throttles",
          "request forwarding budget exhausted this cycle")),
      rsp_bw_throttles_(&reg.counter(
          prefix + ".rsp_bw_throttles",
          "response forwarding budget exhausted this cycle")) {
  rqst_qs_.reserve(num_links);
  rsp_qs_.reserve(num_links);
  for (std::uint32_t i = 0; i < num_links; ++i) {
    rqst_qs_.emplace_back(depth);
    rsp_qs_.emplace_back(depth);
  }
}

void Xbar::reset() {
  for (auto& q : rqst_qs_) {
    q.clear();
  }
  for (auto& q : rsp_qs_) {
    q.clear();
  }
  rqsts_routed_->reset();
  rsps_routed_->reset();
  rqst_stalls_->reset();
  rsp_stalls_->reset();
  rqst_bw_throttles_->reset();
  rsp_bw_throttles_->reset();
}

}  // namespace hmcsim::dev
