#include "dev/xbar.hpp"

namespace hmcsim::dev {

Xbar::Xbar(std::uint32_t num_links, std::uint32_t depth) {
  rqst_qs_.reserve(num_links);
  rsp_qs_.reserve(num_links);
  for (std::uint32_t i = 0; i < num_links; ++i) {
    rqst_qs_.emplace_back(depth);
    rsp_qs_.emplace_back(depth);
  }
}

void Xbar::reset() {
  for (auto& q : rqst_qs_) {
    q.clear();
  }
  for (auto& q : rsp_qs_) {
    q.clear();
  }
  stats_ = XbarStats{};
}

}  // namespace hmcsim::dev
