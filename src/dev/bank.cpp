// bank.cpp — intentionally header-only (see bank.hpp); this TU anchors the
// target so every dev/ component owns a translation unit.
#include "dev/bank.hpp"
