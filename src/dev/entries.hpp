// entries.hpp — packet-in-flight records moving through device queues.
#pragma once

#include <cstdint>

#include "spec/packet.hpp"
#include "trace/journey.hpp"

namespace hmcsim::dev {

/// A request packet travelling host -> link -> xbar -> vault.
struct RqstEntry {
  spec::RqstPacket pkt;
  std::uint64_t send_cycle = 0;  ///< Cycle the host injected the packet.
  std::uint8_t src_link = 0;     ///< Host link it arrived on (response route).
  std::uint8_t hops = 0;         ///< Cube-to-cube forwarding hops taken.
  /// Journey slot index (latency attribution); kNoJourney when journey
  /// tracing is off — the common case, costing one compare per stage.
  std::uint32_t journey = trace::kNoJourney;
};

/// A response packet travelling vault -> xbar -> link -> host.
struct RspEntry {
  spec::RspPacket pkt;
  std::uint64_t send_cycle = 0;  ///< Originating request's injection cycle.
  std::uint8_t dst_link = 0;     ///< Host link to eject on.
  std::uint8_t hops = 0;
  std::uint32_t journey = trace::kNoJourney;  ///< Inherited from the request.
};

}  // namespace hmcsim::dev
