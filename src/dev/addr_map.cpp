#include "dev/addr_map.hpp"

namespace hmcsim::dev {

AddrMap::AddrMap(const sim::Config& cfg) noexcept
    : block_bits_(bits::log2_exact(cfg.block_size)),
      vault_bits_(bits::log2_exact(cfg.total_vaults())),
      bank_bits_(bits::log2_exact(cfg.banks_per_vault)),
      vaults_per_quad_(cfg.vaults_per_quad) {}

DecodedAddr AddrMap::decode(std::uint64_t addr) const noexcept {
  DecodedAddr out;
  std::uint64_t rest = addr >> block_bits_;
  out.vault = static_cast<std::uint32_t>(rest & bits::mask(vault_bits_));
  rest >>= vault_bits_;
  out.bank = static_cast<std::uint32_t>(rest & bits::mask(bank_bits_));
  rest >>= bank_bits_;
  out.dram = rest;
  out.quad = out.vault / vaults_per_quad_;
  return out;
}

std::uint64_t AddrMap::encode(const DecodedAddr& loc) const noexcept {
  std::uint64_t addr = loc.dram;
  addr = (addr << bank_bits_) | loc.bank;
  addr = (addr << vault_bits_) | loc.vault;
  addr <<= block_bits_;
  return addr;
}

}  // namespace hmcsim::dev
