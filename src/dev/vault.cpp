#include "dev/vault.hpp"

#include <array>
#include <bit>
#include <cassert>
#include <cstring>

#include "amo/amo_unit.hpp"
#include "spec/flit.hpp"
#include "spec/packet.hpp"
#include "trace/journey.hpp"

namespace hmcsim::dev {
namespace {

/// ERRSTAT values the device reports (7-bit field).
enum Errstat : std::uint8_t {
  kErrNone = 0,
  kErrRange = 1,      ///< Address beyond device capacity.
  kErrCmd = 2,        ///< Command illegal at the vault (e.g. flow packet).
  kErrCmcInactive = 3,///< CMC command with no registered operation.
  kErrCmcFailed = 4,  ///< CMC plugin execute reported failure.
  kErrRegister = 5,   ///< Register access fault.
  kErrInternal = 6,   ///< Execution failed on a simulator-internal error.
  kErrDinv = 7,       ///< Data invalid: uncorrectable ECC error (poison).
};

/// Map an execution Status to the ERRSTAT code its RSP_ERROR carries.
/// Every failure used to collapse to kErrRange regardless of cause; the
/// category now follows the status taxonomy of common/status.hpp.
std::uint8_t errstat_for(const Status& s) noexcept {
  switch (s.code()) {
    case StatusCode::InvalidArg:
      return kErrRange;  // Address/payload outside the device's range.
    case StatusCode::NotFound:
      return kErrRegister;
    case StatusCode::Unsupported:
      return kErrCmd;
    case StatusCode::CmcError:
      return kErrCmcFailed;
    case StatusCode::Poisoned:
      return kErrDinv;
    default:
      return kErrInternal;
  }
}

}  // namespace

Vault::Vault(std::uint32_t quad, std::uint32_t vault_id,
             const sim::Config& cfg, metrics::StatRegistry& reg,
             const std::string& dev_prefix)
    : quad_(quad),
      vault_id_(vault_id),
      rqst_q_(cfg.vault_rqst_depth),
      rsp_q_(cfg.vault_rsp_depth),
      banks_(cfg.banks_per_vault) {
  const std::string prefix = dev_prefix + ".quad" + std::to_string(quad) +
                             ".vault" + std::to_string(vault_id);
  rqsts_processed_ =
      &reg.counter(prefix + ".rqsts_processed", "requests retired");
  rsps_generated_ =
      &reg.counter(prefix + ".rsps_generated", "responses enqueued");
  cmc_executed_ =
      &reg.counter(prefix + ".cmc_executed", "CMC operations executed");
  amo_executed_ =
      &reg.counter(prefix + ".amo_executed", "Gen2 atomics executed");
  bank_conflicts_ =
      &reg.counter(prefix + ".bank_conflicts", "requests deferred: bank busy");
  rsp_stalls_ = &reg.counter(prefix + ".rsp_stalls",
                             "requests deferred: response queue full");
  errors_ = &reg.counter(prefix + ".errors", "requests answered RSP_ERROR");
  errstat_counters_[kErrRange] =
      &reg.counter(prefix + ".errstat_range", "RSP_ERROR: address range");
  errstat_counters_[kErrCmd] =
      &reg.counter(prefix + ".errstat_cmd", "RSP_ERROR: illegal command");
  errstat_counters_[kErrCmcInactive] = &reg.counter(
      prefix + ".errstat_cmc_inactive", "RSP_ERROR: CMC slot inactive");
  errstat_counters_[kErrCmcFailed] = &reg.counter(
      prefix + ".errstat_cmc_failed", "RSP_ERROR: CMC execute failed");
  errstat_counters_[kErrRegister] = &reg.counter(
      prefix + ".errstat_register", "RSP_ERROR: register access fault");
  errstat_counters_[kErrInternal] = &reg.counter(
      prefix + ".errstat_internal", "RSP_ERROR: internal failure");
  // Registered only when DRAM fault injection is configured, so stats
  // exports stay byte-identical to pre-fault builds otherwise (the
  // record_error/reset loops are null-safe over the gated slot).
  if (cfg.dram_fault_ppm != 0 || cfg.stuck_faults != 0) {
    errstat_counters_[kErrDinv] = &reg.counter(
        prefix + ".errstat_dinv", "RSP_ERROR: uncorrectable ECC (poison)");
  }
  bank_conflict_counters_.reserve(banks_.size());
  for (std::uint32_t b = 0; b < cfg.banks_per_vault; ++b) {
    bank_conflict_counters_.push_back(
        &reg.counter(prefix + ".bank" + std::to_string(b) + ".conflicts",
                     "requests deferred: this bank busy"));
  }
  stage_pool_.reserve(cfg.vault_rqst_depth);
  stage_free_.reserve(cfg.vault_rqst_depth);
  pending_.reserve(cfg.vault_rqst_depth);
  next_pending_.reserve(cfg.vault_rqst_depth);
}

void Vault::reset() {
  rqst_q_.clear();
  rsp_q_.clear();
  pending_.clear();
  next_pending_.clear();
  stage_pool_.clear();
  stage_free_.clear();
  staged_armed_ = false;
  for (Bank& bank : banks_) {
    bank.reset();
  }
  rqsts_processed_->reset();
  rsps_generated_->reset();
  cmc_executed_->reset();
  amo_executed_->reset();
  bank_conflicts_->reset();
  rsp_stalls_->reset();
  errors_->reset();
  for (metrics::Counter* c : errstat_counters_) {
    if (c != nullptr) {
      c->reset();
    }
  }
  for (metrics::Counter* c : bank_conflict_counters_) {
    c->reset();
  }
}

bool Vault::check_ecc(const RqstEntry& entry, std::uint64_t addr,
                      std::span<const std::uint64_t> words,
                      std::uint32_t bank, std::uint64_t cycle, ExecEnv& env) {
  mem::FaultInjector& fault = *env.fault;
  const bool traced = env.tracer.enabled(trace::Level::Ecc);
  std::size_t bad_words = 0;
  for (std::size_t w = 0; w < words.size(); ++w) {
    const std::uint64_t word_addr = addr + 8 * w;
    const std::uint64_t err =
        fault.read_error_bits(vault_id_, word_addr, words[w], cycle);
    if (err == 0) {
      continue;
    }
    const bool correctable = std::popcount(err) == 1;
    if (correctable) {
      fault.count_corrected();
    } else {
      ++bad_words;
      fault.count_uncorrectable();
    }
    if (traced) {
      env.tracer.emit({.cycle = cycle,
                       .kind = trace::Level::Ecc,
                       .where = {env.dev_id, quad_, vault_id_, bank,
                                 entry.src_link},
                       .tag = entry.pkt.tag(),
                       .op = correctable ? "ECC_CORRECT" : "ECC_POISON",
                       .addr = word_addr,
                       .value = err});
    }
  }
  return bad_words == 0;
}

void Vault::process(std::uint64_t cycle, ExecEnv& env) {
  // HMC-Sim's timing-agnostic vault: every queued request is examined each
  // clock. Entries that cannot retire (full response queue, busy bank)
  // stay queued in arrival order ahead of anything routed in later this
  // cycle, preserving FIFO semantics. An entry blocked on the response
  // queue executes exactly once; its staged response replays from the
  // pool until a slot frees. The walk is in place: retired entries drop
  // off the front in O(1), mid-queue retirements compact survivors
  // forward, and a fully-blocked queue moves nothing at all — the cost of
  // a blocked cycle no longer scales with the bytes queued.
  const std::size_t n = rqst_q_.size();
  if (n == 0) {
    return;
  }
  next_pending_.clear();
  std::size_t w = 0;        // Kept entries so far (compaction cursor).
  std::size_t dropped = 0;  // Leading retirements taken via drop_front.
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t pos = i - dropped;
    RqstEntry& entry = rqst_q_.at(pos);
    std::uint32_t stage = i < pending_.size() ? pending_[i] : kNoStage;
    bool retired;
    if (stage != kNoStage) {
      // Already executed on an earlier cycle: only the push is pending.
      retired = try_retire(stage_pool_[stage], cycle, env);
    } else {
      staged_armed_ = false;
      retired = execute_entry(entry, cycle, env);
      if (!retired && staged_armed_) {
        if (!stage_free_.empty()) {
          stage = stage_free_.back();
          stage_free_.pop_back();
          stage_pool_[stage] = std::move(staged_);
        } else {
          stage = static_cast<std::uint32_t>(stage_pool_.size());
          stage_pool_.push_back(std::move(staged_));
        }
      } else if (retired && entry.journey != trace::kNoJourney &&
                 env.tracer.journeys() != nullptr) {
        // The entry retired but its journey index was not handed to a
        // response (posted command, or a response-less error path): the
        // packet's life ends at the vault. Complete the journey here.
        trace::JourneyTracker& jt = *env.tracer.journeys();
        trace::Journey& j = jt.at(entry.journey);
        j.posted = true;
        if (j.t_rsp == trace::kNoCycle) {
          j.t_rsp = cycle;
        }
        jt.complete(entry.journey);
      }
    }
    if (retired) {
      if (stage != kNoStage) {
        stage_free_.push_back(stage);
      }
      if (w == 0) {
        rqst_q_.drop_front();  // Prefix retirement: O(1), no moves.
        ++dropped;
      }
      // Otherwise the slot is a hole; later survivors compact over it.
      continue;
    }
    if (w != pos) {
      rqst_q_.at(w) = std::move(entry);
    }
    next_pending_.push_back(stage);
    ++w;
  }
  rqst_q_.shrink(w);
  pending_.swap(next_pending_);
}

void Vault::stage_begin(const RqstEntry& rqst) {
  staged_.op = spec::to_string(rqst.pkt.rqst());
  staged_.extra_op = {};
  staged_.addr = rqst.pkt.addr();
  staged_.extra_value = 0;
  staged_.cmc_op_counter = nullptr;
  staged_.rsp_flits = 0;
  staged_.bank = 0;
  staged_.tag = rqst.pkt.tag();
  staged_.extra_trace = trace::Level::None;
  staged_.src_link = rqst.src_link;
  staged_.errstat = kErrNone;
  staged_.occupy = false;
  staged_.count_amo = false;
  staged_.count_cmc = false;
  staged_.error_rsp = false;
}

bool Vault::finish_response(RqstEntry& rqst, std::uint8_t rsp_cmd_code,
                            std::uint32_t flits, bool atomic_flag,
                            std::span<const std::uint64_t> payload,
                            std::uint64_t cycle, ExecEnv& env) {
  spec::RspParams params;
  params.rsp_cmd_code = rsp_cmd_code;
  params.flits = flits;
  params.tag = rqst.pkt.tag();
  params.cub = rqst.pkt.cub();
  params.slid = rqst.src_link;
  params.atomic_flag = atomic_flag;
  params.errstat = staged_.errstat;
  params.payload = payload;

  staged_.rsp = RspEntry{};
  staged_.rsp.send_cycle = rqst.send_cycle;
  staged_.rsp.dst_link = rqst.src_link;
  if (Status s = spec::build_response(params, staged_.rsp.pkt); !s.ok()) {
    // Response construction can only fail on internal inconsistencies;
    // surface as an error-status single-FLIT response.
    params.rsp_cmd_code =
        static_cast<std::uint8_t>(spec::ResponseType::RSP_ERROR);
    params.flits = 1;
    params.errstat = kErrCmd;
    params.payload = {};
    (void)spec::build_response(params, staged_.rsp.pkt);
  }
  staged_.error_rsp = params.rsp_cmd_code ==
                      static_cast<std::uint8_t>(spec::ResponseType::RSP_ERROR);
  staged_.rsp_flits = flits;
  if (rqst.journey != trace::kNoJourney &&
      env.tracer.journeys() != nullptr) {
    staged_.rsp.journey = rqst.journey;
    rqst.journey = trace::kNoJourney;
  }
  if (!try_retire(staged_, cycle, env)) {
    staged_armed_ = true;
    return false;
  }
  return true;
}

bool Vault::try_retire(StagedRetire& staged, std::uint64_t cycle,
                       ExecEnv& env) {
  if (rsp_q_.full()) {
    rsp_stalls_->inc();
    if (env.tracer.enabled(trace::Level::Stalls)) {
      env.tracer.emit({.cycle = cycle,
                       .kind = trace::Level::Stalls,
                       .where = {env.dev_id, quad_, vault_id_, 0,
                                 staged.src_link},
                       .tag = staged.tag,
                       .op = staged.op,
                       .addr = staged.addr,
                       .value = rsp_q_.size(),
                       .note = "vault response queue full"});
    }
    return false;
  }
  if (staged.rsp.journey != trace::kNoJourney &&
      env.tracer.journeys() != nullptr) {
    trace::Journey& j = env.tracer.journeys()->at(staged.rsp.journey);
    j.t_rsp = cycle;
    j.error = staged.error_rsp;
    if (staged.errstat == kErrDinv) {
      j.note = "ecc-poison";
    }
  }
  const bool pushed = rsp_q_.push(std::move(staged.rsp));
  (void)pushed;  // Guarded by the full() check above.
  rsps_generated_->inc();
  if (env.tracer.enabled(trace::Level::Rsp)) {
    env.tracer.emit({.cycle = cycle,
                     .kind = trace::Level::Rsp,
                     .where = {env.dev_id, quad_, vault_id_, 0,
                               staged.src_link},
                     .tag = staged.tag,
                     .op = staged.op,
                     .addr = staged.addr,
                     .value = staged.rsp_flits});
  }
  // Retirement bookkeeping: on the fast path this runs in the execution
  // cycle exactly as before; for a staged response it runs in the cycle
  // the response finally left, which is when the old model's successful
  // re-execution would have run it.
  if (staged.occupy) {
    Bank& bank = banks_[staged.bank];
    if (env.cfg.model_bank_conflicts) {
      bank.occupy(cycle, env.cfg.bank_busy_cycles);
    } else {
      bank.touch();
    }
  }
  if (staged.errstat != kErrNone) {
    record_error(staged.errstat);
  }
  if (staged.count_amo) {
    amo_executed_->inc();
  }
  if (staged.extra_trace == trace::Level::Cmc &&
      env.tracer.enabled(trace::Level::Cmc)) {
    env.tracer.emit({.cycle = cycle,
                     .kind = trace::Level::Cmc,
                     .where = {env.dev_id, quad_, vault_id_, staged.bank,
                               staged.src_link},
                     .tag = staged.tag,
                     .op = staged.extra_op,
                     .addr = staged.addr,
                     .value = staged.extra_value});
  } else if (staged.extra_trace == trace::Level::Register &&
             env.tracer.enabled(trace::Level::Register)) {
    env.tracer.emit({.cycle = cycle,
                     .kind = trace::Level::Register,
                     .where = {env.dev_id, quad_, vault_id_, 0,
                               staged.src_link},
                     .tag = staged.tag,
                     .op = staged.extra_op,
                     .addr = staged.addr,
                     .value = staged.extra_value});
  }
  if (staged.count_cmc) {
    cmc_executed_->inc();
    if (staged.cmc_op_counter != nullptr) {
      staged.cmc_op_counter->inc();
    }
  }
  rqsts_processed_->inc();
  return true;
}

bool Vault::execute_entry(RqstEntry& entry, std::uint64_t cycle,
                          ExecEnv& env) {
  // The link layer reseals the CRC after every tail mutation (SLID/SEQ/
  // FRP/RRP stamps and retry replays); a stale CRC reaching the vault
  // means a mutation path forgot to call spec::reseal_crc.
  assert(spec::verify_crc(entry.pkt) &&
         "request reached the vault with a stale CRC");
  const spec::Rqst rqst = entry.pkt.rqst();
  const spec::CommandInfo& info = spec::command_info(rqst);
  const std::uint64_t addr = entry.pkt.addr();
  const DecodedAddr loc = env.amap.decode(addr);
  // First service attempt: stamp t_service and the serving location. A
  // deferral (bank conflict, full response queue) re-runs this path, but
  // only the first attempt moves the stamp — later attempts accrue to the
  // bank_service stage.
  if (entry.journey != trace::kNoJourney &&
      env.tracer.journeys() != nullptr) {
    trace::Journey& j = env.tracer.journeys()->at(entry.journey);
    if (j.t_service == trace::kNoCycle) {
      j.t_service = cycle;
      j.quad = quad_;
      j.vault = vault_id_;
      j.bank = loc.bank;
    }
  }
  const bool is_dram_access = info.kind != spec::CommandKind::Flow &&
                              info.kind != spec::CommandKind::ModeRead &&
                              info.kind != spec::CommandKind::ModeWrite;

  // Optional bank-conflict timing extension: a request whose bank is busy
  // stays queued. Disabled by default (HMC-Sim is timing-agnostic).
  if (is_dram_access && env.cfg.model_bank_conflicts) {
    Bank& bank = banks_[loc.bank];
    if (!bank.available(cycle)) {
      bank_conflicts_->inc();
      bank_conflict_counters_[loc.bank]->inc();
      if (env.tracer.enabled(trace::Level::BankConflict)) {
        env.tracer.emit({.cycle = cycle,
                         .kind = trace::Level::BankConflict,
                         .where = {env.dev_id, quad_, vault_id_, loc.bank,
                                   entry.src_link},
                         .tag = entry.pkt.tag(),
                         .op = info.name,
                         .addr = addr,
                         .value = bank.busy_until()});
      }
      return false;
    }
  }

  if (env.tracer.enabled(trace::Level::Rqst)) {
    env.tracer.emit({.cycle = cycle,
                     .kind = trace::Level::Rqst,
                     .where = {env.dev_id, quad_, vault_id_, loc.bank,
                               entry.src_link},
                     .tag = entry.pkt.tag(),
                     .op = info.name,
                     .addr = addr,
                     .value = info.rqst_flits});
  }

  auto occupy_bank = [&] {
    Bank& bank = banks_[loc.bank];
    if (env.cfg.model_bank_conflicts) {
      bank.occupy(cycle, env.cfg.bank_busy_cycles);
    } else {
      bank.touch();
    }
  };
  auto rsp_code = [&info] {
    return static_cast<std::uint8_t>(info.rsp);
  };
  constexpr auto kErrorCode =
      static_cast<std::uint8_t>(spec::ResponseType::RSP_ERROR);

  stage_begin(entry);

  switch (info.kind) {
    case spec::CommandKind::Flow:
      // Flow packets are consumed at the link layer; one reaching a vault
      // is a routing bug upstream. Retire it with an error count.
      record_error(kErrCmd);
      rqsts_processed_->inc();
      return true;

    case spec::CommandKind::Read: {
      const auto& rsp_info = info;
      const std::size_t bytes =
          (static_cast<std::size_t>(rsp_info.rsp_flits) - 1) *
          spec::kFlitBytes;
      // The payload words are little-endian byte images of memory, so on a
      // little-endian host the word array doubles as the read buffer —
      // one copy from the backing store, no per-byte assembly.
      std::array<std::uint64_t, 32> data{};
      Status rd_status = Status::Ok();
      if constexpr (std::endian::native == std::endian::little) {
        rd_status = env.store.read(
            addr, {reinterpret_cast<std::uint8_t*>(data.data()), bytes});
      } else {
        std::array<std::uint8_t, spec::kMaxDataBytes> buf{};
        rd_status = env.store.read(addr, {buf.data(), bytes});
        if (rd_status.ok()) {
          for (std::size_t w = 0; w < bytes / 8; ++w) {
            std::uint64_t v = 0;
            for (unsigned b = 0; b < 8; ++b) {
              v |= static_cast<std::uint64_t>(buf[w * 8 + b]) << (8 * b);
            }
            data[w] = v;
          }
        }
      }
      if (!rd_status.ok()) {
        staged_.errstat = errstat_for(rd_status);
        return finish_response(entry, kErrorCode, 1, false, {}, cycle, env);
      }
      if (env.fault != nullptr &&
          !check_ecc(entry, addr, {data.data(), bytes / 8}, loc.bank, cycle,
                     env)) {
        // SEC-DED gave up on at least one word: the response is poisoned —
        // RSP_ERROR with the DINV errstat and no payload, never silently
        // corrupt data.
        env.fault->count_poison_returned();
        staged_.errstat = kErrDinv;
        return finish_response(entry, kErrorCode, 1, false, {}, cycle, env);
      }
      staged_.occupy = true;
      staged_.bank = loc.bank;
      return finish_response(entry, rsp_code(), info.rsp_flits, false,
                             {data.data(), bytes / 8}, cycle, env);
    }

    case spec::CommandKind::Write:
    case spec::CommandKind::PostedWrite: {
      const std::size_t bytes = info.data_bytes;
      std::array<std::uint8_t, spec::kMaxDataBytes> buf{};
      const auto payload = entry.pkt.payload();
      if constexpr (std::endian::native == std::endian::little) {
        // buf is zero-filled, so a short payload's missing tail words
        // write zeroes, matching the portable per-word scatter below.
        const std::size_t have = std::min(bytes, payload.size() * 8);
        std::memcpy(buf.data(), payload.data(), have);
      } else {
        for (std::size_t w = 0; w < bytes / 8; ++w) {
          const std::uint64_t v = w < payload.size() ? payload[w] : 0;
          for (unsigned b = 0; b < 8; ++b) {
            buf[w * 8 + b] =
                static_cast<std::uint8_t>((v >> (8 * b)) & 0xFFU);
          }
        }
      }
      if (Status s = env.store.write(addr, {buf.data(), bytes}); !s.ok()) {
        const std::uint8_t errstat = errstat_for(s);
        if (info.kind == spec::CommandKind::Write) {
          staged_.errstat = errstat;
          return finish_response(entry, kErrorCode, 1, false, {}, cycle,
                                 env);
        }
        record_error(errstat);
        rqsts_processed_->inc();
        return true;
      }
      if (env.fault != nullptr) {
        // The write landed TRUE data: latent flips on these words are
        // gone; a covered stuck-at cell is re-dirtied for one patrol
        // visit (and only one — writes must never spin the scrubber).
        env.fault->note_write(addr, bytes);
      }
      if (info.kind == spec::CommandKind::Write) {
        staged_.occupy = true;
        staged_.bank = loc.bank;
        return finish_response(entry, rsp_code(), info.rsp_flits, false, {},
                               cycle, env);
      }
      occupy_bank();
      rqsts_processed_->inc();
      return true;
    }

    case spec::CommandKind::ModeRead: {
      std::uint64_t value = 0;
      const Status s = env.regs.read(static_cast<std::uint32_t>(addr), value);
      if (!s.ok()) {
        staged_.errstat = kErrRegister;
        return finish_response(entry, kErrorCode, 1, false, {}, cycle, env);
      }
      const std::array<std::uint64_t, 2> data{value, 0};
      staged_.extra_trace = trace::Level::Register;
      staged_.extra_op = info.name;
      staged_.extra_value = value;
      return finish_response(entry, rsp_code(), info.rsp_flits, false, data,
                             cycle, env);
    }

    case spec::CommandKind::ModeWrite: {
      const auto payload = entry.pkt.payload();
      const std::uint64_t value = payload.empty() ? 0 : payload[0];
      const Status s =
          env.regs.write(static_cast<std::uint32_t>(addr), value);
      const bool failed = !s.ok();
      if (failed) {
        staged_.errstat = kErrRegister;
      } else {
        staged_.extra_trace = trace::Level::Register;
        staged_.extra_op = info.name;
        staged_.extra_value = value;
      }
      return finish_response(entry, failed ? kErrorCode : rsp_code(),
                             failed ? 1 : info.rsp_flits, false, {}, cycle,
                             env);
    }

    case spec::CommandKind::Atomic:
    case spec::CommandKind::PostedAtomic: {
      if (env.fault != nullptr) {
        // The AMO's read-modify-write consumes the 128-bit memory operand;
        // ECC applies to that read exactly as to a DRAM read. Range errors
        // fall through to amo::execute's own diagnostics.
        std::array<std::uint64_t, 2> operand{};
        if (env.store.read_u64(addr, operand[0]).ok() &&
            env.store.read_u64(addr + 8, operand[1]).ok() &&
            !check_ecc(entry, addr, operand, loc.bank, cycle, env)) {
          if (info.kind == spec::CommandKind::Atomic) {
            env.fault->count_poison_returned();
            staged_.errstat = kErrDinv;
            return finish_response(entry, kErrorCode, 1, false, {}, cycle,
                                   env);
          }
          record_error(kErrDinv);
          rqsts_processed_->inc();
          return true;
        }
      }
      amo::AmoResult result;
      const Status s =
          amo::execute(rqst, env.store, addr, entry.pkt.payload(), result);
      if (!s.ok()) {
        const std::uint8_t errstat = errstat_for(s);
        if (info.kind == spec::CommandKind::Atomic) {
          staged_.errstat = errstat;
          return finish_response(entry, kErrorCode, 1, false, {}, cycle,
                                 env);
        }
        record_error(errstat);
        rqsts_processed_->inc();
        return true;
      }
      if (env.fault != nullptr) {
        // The RMW wrote the operand back with corrected data.
        env.fault->note_write(addr, 16);
      }
      if (info.kind == spec::CommandKind::Atomic) {
        staged_.occupy = true;
        staged_.bank = loc.bank;
        staged_.count_amo = true;
        return finish_response(entry, rsp_code(), info.rsp_flits,
                               result.atomic_flag,
                               {result.rsp_data.data(), result.rsp_words},
                               cycle, env);
      }
      occupy_bank();
      amo_executed_->inc();
      rqsts_processed_->inc();
      return true;
    }

    case spec::CommandKind::Cmc: {
      // The paper's Fig. 3 flow: active check -> cmc_execute -> trace via
      // cmc_str -> normal response construction.
      const cmc::CmcOp* op =
          env.cmc != nullptr ? env.cmc->lookup(entry.pkt.cmd()) : nullptr;
      if (op == nullptr || env.cmc_ctx == nullptr) {
        staged_.errstat = kErrCmcInactive;
        return finish_response(entry, kErrorCode, 1, false, {}, cycle, env);
      }
      cmc::CmcExecResult result;
      const Status s = env.cmc->execute(
          entry.pkt.cmd(), *env.cmc_ctx, env.dev_id, quad_, vault_id_,
          loc.bank, addr, op->rqst_len, entry.pkt.head, entry.pkt.tail,
          entry.pkt.payload(), result);
      if (!s.ok()) {
        if (s.code() == StatusCode::Poisoned) {
          // The operation consumed a word with an uncorrectable ECC error
          // through the memory service: the plugin already saw a guarded
          // EPOISON failure; the host sees DINV, never silent corruption.
          if (env.fault != nullptr) {
            env.fault->count_poison_returned();
          }
          if (env.tracer.enabled(trace::Level::Ecc)) {
            env.tracer.emit({.cycle = cycle,
                             .kind = trace::Level::Ecc,
                             .where = {env.dev_id, quad_, vault_id_,
                                       loc.bank, entry.src_link},
                             .tag = entry.pkt.tag(),
                             .op = op->name,
                             .addr = addr,
                             .note = "cmc consumed poisoned data"});
          }
          staged_.errstat = kErrDinv;
        } else {
          staged_.errstat = kErrCmcFailed;
        }
        return finish_response(entry, kErrorCode, 1, false, {}, cycle, env);
      }
      if (!op->posted()) {
        staged_.occupy = true;
        staged_.bank = loc.bank;
        staged_.count_cmc = true;
        if (env.cmc_op_counters != nullptr) {
          staged_.cmc_op_counter = env.cmc_op_counters[entry.pkt.cmd()];
        }
        staged_.extra_trace = trace::Level::Cmc;
        staged_.extra_op = op->name;
        staged_.extra_value = result.atomic_flag ? 1ULL : 0ULL;
        return finish_response(entry, op->response_code(), op->rsp_len,
                               result.atomic_flag,
                               {result.rsp_payload.data(), result.rsp_words},
                               cycle, env);
      }
      occupy_bank();
      if (env.tracer.enabled(trace::Level::Cmc)) {
        env.tracer.emit({.cycle = cycle,
                         .kind = trace::Level::Cmc,
                         .where = {env.dev_id, quad_, vault_id_, loc.bank,
                                   entry.src_link},
                         .tag = entry.pkt.tag(),
                         .op = op->name,
                         .addr = addr,
                         .value = result.atomic_flag ? 1ULL : 0ULL});
      }
      cmc_executed_->inc();
      if (env.cmc_op_counters != nullptr &&
          env.cmc_op_counters[entry.pkt.cmd()] != nullptr) {
        env.cmc_op_counters[entry.pkt.cmd()]->inc();
      }
      rqsts_processed_->inc();
      return true;
    }
  }
  return true;
}

}  // namespace hmcsim::dev
