#include "dev/vault.hpp"

#include <array>
#include <bit>
#include <cassert>
#include <cstring>

#include "amo/amo_unit.hpp"
#include "spec/flit.hpp"
#include "spec/packet.hpp"
#include "trace/journey.hpp"

namespace hmcsim::dev {
namespace {

/// ERRSTAT values the device reports (7-bit field).
enum Errstat : std::uint8_t {
  kErrNone = 0,
  kErrRange = 1,      ///< Address beyond device capacity.
  kErrCmd = 2,        ///< Command illegal at the vault (e.g. flow packet).
  kErrCmcInactive = 3,///< CMC command with no registered operation.
  kErrCmcFailed = 4,  ///< CMC plugin execute reported failure.
  kErrRegister = 5,   ///< Register access fault.
  kErrInternal = 6,   ///< Execution failed on a simulator-internal error.
};

/// Map an execution Status to the ERRSTAT code its RSP_ERROR carries.
/// Every failure used to collapse to kErrRange regardless of cause; the
/// category now follows the status taxonomy of common/status.hpp.
std::uint8_t errstat_for(const Status& s) noexcept {
  switch (s.code()) {
    case StatusCode::InvalidArg:
      return kErrRange;  // Address/payload outside the device's range.
    case StatusCode::NotFound:
      return kErrRegister;
    case StatusCode::Unsupported:
      return kErrCmd;
    case StatusCode::CmcError:
      return kErrCmcFailed;
    default:
      return kErrInternal;
  }
}

}  // namespace

Vault::Vault(std::uint32_t quad, std::uint32_t vault_id,
             const sim::Config& cfg, metrics::StatRegistry& reg,
             const std::string& dev_prefix)
    : quad_(quad),
      vault_id_(vault_id),
      rqst_q_(cfg.vault_rqst_depth),
      rsp_q_(cfg.vault_rsp_depth),
      banks_(cfg.banks_per_vault) {
  const std::string prefix = dev_prefix + ".quad" + std::to_string(quad) +
                             ".vault" + std::to_string(vault_id);
  rqsts_processed_ =
      &reg.counter(prefix + ".rqsts_processed", "requests retired");
  rsps_generated_ =
      &reg.counter(prefix + ".rsps_generated", "responses enqueued");
  cmc_executed_ =
      &reg.counter(prefix + ".cmc_executed", "CMC operations executed");
  amo_executed_ =
      &reg.counter(prefix + ".amo_executed", "Gen2 atomics executed");
  bank_conflicts_ =
      &reg.counter(prefix + ".bank_conflicts", "requests deferred: bank busy");
  rsp_stalls_ = &reg.counter(prefix + ".rsp_stalls",
                             "requests deferred: response queue full");
  errors_ = &reg.counter(prefix + ".errors", "requests answered RSP_ERROR");
  errstat_counters_[kErrRange] =
      &reg.counter(prefix + ".errstat_range", "RSP_ERROR: address range");
  errstat_counters_[kErrCmd] =
      &reg.counter(prefix + ".errstat_cmd", "RSP_ERROR: illegal command");
  errstat_counters_[kErrCmcInactive] = &reg.counter(
      prefix + ".errstat_cmc_inactive", "RSP_ERROR: CMC slot inactive");
  errstat_counters_[kErrCmcFailed] = &reg.counter(
      prefix + ".errstat_cmc_failed", "RSP_ERROR: CMC execute failed");
  errstat_counters_[kErrRegister] = &reg.counter(
      prefix + ".errstat_register", "RSP_ERROR: register access fault");
  errstat_counters_[kErrInternal] = &reg.counter(
      prefix + ".errstat_internal", "RSP_ERROR: internal failure");
  bank_conflict_counters_.reserve(banks_.size());
  for (std::uint32_t b = 0; b < cfg.banks_per_vault; ++b) {
    bank_conflict_counters_.push_back(
        &reg.counter(prefix + ".bank" + std::to_string(b) + ".conflicts",
                     "requests deferred: this bank busy"));
  }
  deferred_.reserve(cfg.vault_rqst_depth);
}

void Vault::reset() {
  rqst_q_.clear();
  rsp_q_.clear();
  for (Bank& bank : banks_) {
    bank.reset();
  }
  rqsts_processed_->reset();
  rsps_generated_->reset();
  cmc_executed_->reset();
  amo_executed_->reset();
  bank_conflicts_->reset();
  rsp_stalls_->reset();
  errors_->reset();
  for (metrics::Counter* c : errstat_counters_) {
    if (c != nullptr) {
      c->reset();
    }
  }
  for (metrics::Counter* c : bank_conflict_counters_) {
    c->reset();
  }
}

void Vault::process(std::uint64_t cycle, ExecEnv& env) {
  // HMC-Sim's timing-agnostic vault: every queued request is examined each
  // clock. Entries that cannot retire (full response queue, busy bank) are
  // re-queued in arrival order ahead of anything routed in later this
  // cycle, preserving FIFO semantics.
  const std::size_t n = rqst_q_.size();
  if (n == 0) {
    return;
  }
  deferred_.clear();
  for (std::size_t i = 0; i < n; ++i) {
    RqstEntry entry = rqst_q_.pop();
    if (!execute_entry(entry, cycle, env)) {
      deferred_.push_back(std::move(entry));
    } else if (entry.journey != trace::kNoJourney &&
               env.tracer.journeys() != nullptr) {
      // The entry retired but its journey index was not handed to a
      // response (posted command, or a response-less error path): the
      // packet's life ends at the vault. Complete the journey here.
      trace::JourneyTracker& jt = *env.tracer.journeys();
      trace::Journey& j = jt.at(entry.journey);
      j.posted = true;
      if (j.t_rsp == trace::kNoCycle) {
        j.t_rsp = cycle;
      }
      jt.complete(entry.journey);
    }
  }
  for (RqstEntry& entry : deferred_) {
    const bool ok = rqst_q_.push(std::move(entry));
    (void)ok;  // Cannot fail: we popped at least deferred_.size() entries.
  }
}

bool Vault::emit_response(RqstEntry& rqst, std::uint8_t rsp_cmd_code,
                          std::uint32_t flits, bool atomic_flag,
                          std::uint8_t errstat,
                          std::span<const std::uint64_t> payload,
                          std::uint64_t cycle, ExecEnv& env) {
  if (rsp_q_.full()) {
    rsp_stalls_->inc();
    if (env.tracer.enabled(trace::Level::Stalls)) {
      env.tracer.emit({.cycle = cycle,
                       .kind = trace::Level::Stalls,
                       .where = {env.dev_id, quad_, vault_id_, 0,
                                 rqst.src_link},
                       .tag = rqst.pkt.tag(),
                       .op = spec::to_string(rqst.pkt.rqst()),
                       .addr = rqst.pkt.addr(),
                       .value = rsp_q_.size(),
                       .note = "vault response queue full"});
    }
    return false;
  }

  spec::RspParams params;
  params.rsp_cmd_code = rsp_cmd_code;
  params.flits = flits;
  params.tag = rqst.pkt.tag();
  params.cub = rqst.pkt.cub();
  params.slid = rqst.src_link;
  params.atomic_flag = atomic_flag;
  params.errstat = errstat;
  params.payload = payload;

  RspEntry rsp;
  rsp.send_cycle = rqst.send_cycle;
  rsp.dst_link = rqst.src_link;
  if (Status s = spec::build_response(params, rsp.pkt); !s.ok()) {
    // Response construction can only fail on internal inconsistencies;
    // surface as an error-status single-FLIT response.
    params.rsp_cmd_code =
        static_cast<std::uint8_t>(spec::ResponseType::RSP_ERROR);
    params.flits = 1;
    params.errstat = kErrCmd;
    params.payload = {};
    (void)spec::build_response(params, rsp.pkt);
  }
  if (rqst.journey != trace::kNoJourney &&
      env.tracer.journeys() != nullptr) {
    trace::Journey& j = env.tracer.journeys()->at(rqst.journey);
    j.t_rsp = cycle;
    j.error = params.rsp_cmd_code ==
              static_cast<std::uint8_t>(spec::ResponseType::RSP_ERROR);
    rsp.journey = rqst.journey;
    rqst.journey = trace::kNoJourney;
  }
  const bool pushed = rsp_q_.push(std::move(rsp));
  (void)pushed;  // Guarded by the full() check above.
  rsps_generated_->inc();
  if (env.tracer.enabled(trace::Level::Rsp)) {
    env.tracer.emit({.cycle = cycle,
                     .kind = trace::Level::Rsp,
                     .where = {env.dev_id, quad_, vault_id_, 0,
                               rqst.src_link},
                     .tag = rqst.pkt.tag(),
                     .op = spec::to_string(rqst.pkt.rqst()),
                     .addr = rqst.pkt.addr(),
                     .value = flits});
  }
  return true;
}

bool Vault::execute_entry(RqstEntry& entry, std::uint64_t cycle,
                          ExecEnv& env) {
  // The link layer reseals the CRC after every tail mutation (SLID/SEQ/
  // FRP/RRP stamps and retry replays); a stale CRC reaching the vault
  // means a mutation path forgot to call spec::reseal_crc.
  assert(spec::verify_crc(entry.pkt) &&
         "request reached the vault with a stale CRC");
  const spec::Rqst rqst = entry.pkt.rqst();
  const spec::CommandInfo& info = spec::command_info(rqst);
  const std::uint64_t addr = entry.pkt.addr();
  const DecodedAddr loc = env.amap.decode(addr);
  // First service attempt: stamp t_service and the serving location. A
  // deferral (bank conflict, full response queue) re-runs this path, but
  // only the first attempt moves the stamp — later attempts accrue to the
  // bank_service stage.
  if (entry.journey != trace::kNoJourney &&
      env.tracer.journeys() != nullptr) {
    trace::Journey& j = env.tracer.journeys()->at(entry.journey);
    if (j.t_service == trace::kNoCycle) {
      j.t_service = cycle;
      j.quad = quad_;
      j.vault = vault_id_;
      j.bank = loc.bank;
    }
  }
  const bool is_dram_access = info.kind != spec::CommandKind::Flow &&
                              info.kind != spec::CommandKind::ModeRead &&
                              info.kind != spec::CommandKind::ModeWrite;

  // Optional bank-conflict timing extension: a request whose bank is busy
  // stays queued. Disabled by default (HMC-Sim is timing-agnostic).
  if (is_dram_access && env.cfg.model_bank_conflicts) {
    Bank& bank = banks_[loc.bank];
    if (!bank.available(cycle)) {
      bank_conflicts_->inc();
      bank_conflict_counters_[loc.bank]->inc();
      if (env.tracer.enabled(trace::Level::BankConflict)) {
        env.tracer.emit({.cycle = cycle,
                         .kind = trace::Level::BankConflict,
                         .where = {env.dev_id, quad_, vault_id_, loc.bank,
                                   entry.src_link},
                         .tag = entry.pkt.tag(),
                         .op = info.name,
                         .addr = addr,
                         .value = bank.busy_until()});
      }
      return false;
    }
  }

  if (env.tracer.enabled(trace::Level::Rqst)) {
    env.tracer.emit({.cycle = cycle,
                     .kind = trace::Level::Rqst,
                     .where = {env.dev_id, quad_, vault_id_, loc.bank,
                               entry.src_link},
                     .tag = entry.pkt.tag(),
                     .op = info.name,
                     .addr = addr,
                     .value = info.rqst_flits});
  }

  auto occupy_bank = [&] {
    Bank& bank = banks_[loc.bank];
    if (env.cfg.model_bank_conflicts) {
      bank.occupy(cycle, env.cfg.bank_busy_cycles);
    } else {
      bank.touch();
    }
  };
  auto rsp_code = [&info] {
    return static_cast<std::uint8_t>(info.rsp);
  };
  constexpr auto kErrorCode =
      static_cast<std::uint8_t>(spec::ResponseType::RSP_ERROR);

  switch (info.kind) {
    case spec::CommandKind::Flow:
      // Flow packets are consumed at the link layer; one reaching a vault
      // is a routing bug upstream. Retire it with an error count.
      record_error(kErrCmd);
      rqsts_processed_->inc();
      return true;

    case spec::CommandKind::Read: {
      const auto& rsp_info = info;
      const std::size_t bytes =
          (static_cast<std::size_t>(rsp_info.rsp_flits) - 1) *
          spec::kFlitBytes;
      // The payload words are little-endian byte images of memory, so on a
      // little-endian host the word array doubles as the read buffer —
      // one copy from the backing store, no per-byte assembly.
      std::array<std::uint64_t, 32> data{};
      Status rd_status = Status::Ok();
      if constexpr (std::endian::native == std::endian::little) {
        rd_status = env.store.read(
            addr, {reinterpret_cast<std::uint8_t*>(data.data()), bytes});
      } else {
        std::array<std::uint8_t, spec::kMaxDataBytes> buf{};
        rd_status = env.store.read(addr, {buf.data(), bytes});
        if (rd_status.ok()) {
          for (std::size_t w = 0; w < bytes / 8; ++w) {
            std::uint64_t v = 0;
            for (unsigned b = 0; b < 8; ++b) {
              v |= static_cast<std::uint64_t>(buf[w * 8 + b]) << (8 * b);
            }
            data[w] = v;
          }
        }
      }
      if (!rd_status.ok()) {
        const std::uint8_t errstat = errstat_for(rd_status);
        if (!emit_response(entry, kErrorCode, 1, false, errstat, {}, cycle,
                           env)) {
          return false;
        }
        record_error(errstat);
        rqsts_processed_->inc();
        return true;
      }
      if (!emit_response(entry, rsp_code(), info.rsp_flits, false, kErrNone,
                         {data.data(), bytes / 8}, cycle, env)) {
        return false;
      }
      occupy_bank();
      rqsts_processed_->inc();
      return true;
    }

    case spec::CommandKind::Write:
    case spec::CommandKind::PostedWrite: {
      const std::size_t bytes = info.data_bytes;
      std::array<std::uint8_t, spec::kMaxDataBytes> buf{};
      const auto payload = entry.pkt.payload();
      if constexpr (std::endian::native == std::endian::little) {
        // buf is zero-filled, so a short payload's missing tail words
        // write zeroes, matching the portable per-word scatter below.
        const std::size_t have = std::min(bytes, payload.size() * 8);
        std::memcpy(buf.data(), payload.data(), have);
      } else {
        for (std::size_t w = 0; w < bytes / 8; ++w) {
          const std::uint64_t v = w < payload.size() ? payload[w] : 0;
          for (unsigned b = 0; b < 8; ++b) {
            buf[w * 8 + b] =
                static_cast<std::uint8_t>((v >> (8 * b)) & 0xFFU);
          }
        }
      }
      if (Status s = env.store.write(addr, {buf.data(), bytes}); !s.ok()) {
        const std::uint8_t errstat = errstat_for(s);
        if (info.kind == spec::CommandKind::Write &&
            !emit_response(entry, kErrorCode, 1, false, errstat, {}, cycle,
                           env)) {
          return false;
        }
        record_error(errstat);
        rqsts_processed_->inc();
        return true;
      }
      if (info.kind == spec::CommandKind::Write &&
          !emit_response(entry, rsp_code(), info.rsp_flits, false, kErrNone,
                         {}, cycle, env)) {
        return false;
      }
      occupy_bank();
      rqsts_processed_->inc();
      return true;
    }

    case spec::CommandKind::ModeRead: {
      std::uint64_t value = 0;
      const Status s = env.regs.read(static_cast<std::uint32_t>(addr), value);
      if (!s.ok()) {
        if (!emit_response(entry, kErrorCode, 1, false, kErrRegister, {},
                           cycle, env)) {
          return false;
        }
        record_error(kErrRegister);
        rqsts_processed_->inc();
        return true;
      }
      const std::array<std::uint64_t, 2> data{value, 0};
      if (!emit_response(entry, rsp_code(), info.rsp_flits, false, kErrNone,
                         data, cycle, env)) {
        return false;
      }
      if (env.tracer.enabled(trace::Level::Register)) {
        env.tracer.emit({.cycle = cycle,
                         .kind = trace::Level::Register,
                         .where = {env.dev_id, quad_, vault_id_, 0,
                                   entry.src_link},
                         .tag = entry.pkt.tag(),
                         .op = info.name,
                         .addr = addr,
                         .value = value});
      }
      rqsts_processed_->inc();
      return true;
    }

    case spec::CommandKind::ModeWrite: {
      const auto payload = entry.pkt.payload();
      const std::uint64_t value = payload.empty() ? 0 : payload[0];
      const Status s =
          env.regs.write(static_cast<std::uint32_t>(addr), value);
      const bool failed = !s.ok();
      if (!emit_response(entry, failed ? kErrorCode : rsp_code(),
                         failed ? 1 : info.rsp_flits, false,
                         failed ? kErrRegister : kErrNone, {}, cycle, env)) {
        return false;
      }
      if (!failed && env.tracer.enabled(trace::Level::Register)) {
        env.tracer.emit({.cycle = cycle,
                         .kind = trace::Level::Register,
                         .where = {env.dev_id, quad_, vault_id_, 0,
                                   entry.src_link},
                         .tag = entry.pkt.tag(),
                         .op = info.name,
                         .addr = addr,
                         .value = value});
      }
      if (failed) {
        record_error(kErrRegister);
      }
      rqsts_processed_->inc();
      return true;
    }

    case spec::CommandKind::Atomic:
    case spec::CommandKind::PostedAtomic: {
      amo::AmoResult result;
      const Status s =
          amo::execute(rqst, env.store, addr, entry.pkt.payload(), result);
      if (!s.ok()) {
        const std::uint8_t errstat = errstat_for(s);
        if (info.kind == spec::CommandKind::Atomic &&
            !emit_response(entry, kErrorCode, 1, false, errstat, {}, cycle,
                           env)) {
          return false;
        }
        record_error(errstat);
        rqsts_processed_->inc();
        return true;
      }
      if (info.kind == spec::CommandKind::Atomic &&
          !emit_response(entry, rsp_code(), info.rsp_flits,
                         result.atomic_flag, kErrNone,
                         {result.rsp_data.data(), result.rsp_words}, cycle,
                         env)) {
        return false;
      }
      occupy_bank();
      amo_executed_->inc();
      rqsts_processed_->inc();
      return true;
    }

    case spec::CommandKind::Cmc: {
      // The paper's Fig. 3 flow: active check -> cmc_execute -> trace via
      // cmc_str -> normal response construction.
      const cmc::CmcOp* op =
          env.cmc != nullptr ? env.cmc->lookup(entry.pkt.cmd()) : nullptr;
      if (op == nullptr || env.cmc_ctx == nullptr) {
        if (!emit_response(entry, kErrorCode, 1, false, kErrCmcInactive, {},
                           cycle, env)) {
          return false;
        }
        record_error(kErrCmcInactive);
        rqsts_processed_->inc();
        return true;
      }
      cmc::CmcExecResult result;
      const Status s = env.cmc->execute(
          entry.pkt.cmd(), *env.cmc_ctx, env.dev_id, quad_, vault_id_,
          loc.bank, addr, op->rqst_len, entry.pkt.head, entry.pkt.tail,
          entry.pkt.payload(), result);
      if (!s.ok()) {
        if (!emit_response(entry, kErrorCode, 1, false, kErrCmcFailed, {},
                           cycle, env)) {
          return false;
        }
        record_error(kErrCmcFailed);
        rqsts_processed_->inc();
        return true;
      }
      if (!op->posted() &&
          !emit_response(entry, op->response_code(), op->rsp_len,
                         result.atomic_flag, kErrNone,
                         {result.rsp_payload.data(), result.rsp_words}, cycle,
                         env)) {
        return false;
      }
      occupy_bank();
      if (env.tracer.enabled(trace::Level::Cmc)) {
        env.tracer.emit({.cycle = cycle,
                         .kind = trace::Level::Cmc,
                         .where = {env.dev_id, quad_, vault_id_, loc.bank,
                                   entry.src_link},
                         .tag = entry.pkt.tag(),
                         .op = op->name,
                         .addr = addr,
                         .value = result.atomic_flag ? 1ULL : 0ULL});
      }
      cmc_executed_->inc();
      if (env.cmc_op_counters != nullptr &&
          env.cmc_op_counters[entry.pkt.cmd()] != nullptr) {
        env.cmc_op_counters[entry.pkt.cmd()]->inc();
      }
      rqsts_processed_->inc();
      return true;
    }
  }
  return true;
}

}  // namespace hmcsim::dev
