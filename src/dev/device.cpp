#include "dev/device.hpp"

#include <algorithm>
#include <bit>

#include "spec/flit.hpp"
#include "trace/journey.hpp"

namespace hmcsim::dev {

Device::Device(const sim::Config& cfg, std::uint32_t dev_id,
               metrics::StatRegistry& reg)
    : cfg_(cfg),
      id_(dev_id),
      metrics_(&reg),
      prefix_("cube" + std::to_string(dev_id)),
      store_(cfg.capacity_bytes),
      amap_(cfg),
      fault_(cfg, dev_id, reg, prefix_),
      xbar_(cfg.num_links, cfg.xbar_depth, reg, prefix_ + ".xbar"),
      chain_rqst_(cfg.xbar_depth),
      chain_rsp_(cfg.xbar_depth),
      retry_(cfg.num_links),
      err_rng_(cfg.link_error_seed + dev_id),
      rsp_err_rng_(cfg.link_error_seed + dev_id + 0x9E3779B9ULL),
      forwarded_rqsts_(&reg.counter(prefix_ + ".forwarded_rqsts",
                                    "requests forwarded to a neighbour")),
      forwarded_rsps_(&reg.counter(prefix_ + ".forwarded_rsps",
                                   "responses forwarded to a neighbour")) {
  regs_.init(cfg, dev_id, reg, prefix_);
  vaults_.reserve(cfg.total_vaults());
  for (std::uint32_t v = 0; v < cfg.total_vaults(); ++v) {
    vaults_.emplace_back(v / cfg.vaults_per_quad, v, cfg, reg, prefix_);
  }
  links_.reserve(cfg.num_links);
  for (std::uint32_t l = 0; l < cfg.num_links; ++l) {
    links_.emplace_back(cfg.xbar_depth, reg,
                        prefix_ + ".link" + std::to_string(l));
  }
}

void Device::attach_cmc_counter(std::uint8_t cmd, std::string_view name) {
  if (cmd >= cmc_op_counters_.size() || name.empty()) {
    return;
  }
  cmc_op_counters_[cmd] = &metrics_->counter(
      prefix_ + ".cmc." + std::string(name) + ".executed",
      "CMC operation executions");
}

Status Device::send(RqstEntry entry, std::uint32_t link, std::uint64_t cycle,
                    trace::Tracer& tracer) {
  if (link >= links_.size()) {
    return Status::InvalidArg("link index out of range");
  }
  const spec::Rqst rqst = entry.pkt.rqst();
  const std::uint32_t flits = entry.pkt.flits();

  // Flow packets terminate at the link layer — but they travel the same
  // wire, so error injection applies first. A corrupted flow packet
  // carries no sequence number and cannot be retried: hardware drops it
  // (a lost TRET's tokens come back through later response RTC fields).
  if (spec::is_flow(rqst)) {
    if (cfg_.link_flit_error_ppm != 0 && inject_error(flits)) {
      links_[link].record_flow_drop();
      if (tracer.enabled(trace::Level::Retry)) {
        tracer.emit({.cycle = cycle,
                     .kind = trace::Level::Retry,
                     .where = {.dev = id_, .link = link},
                     .tag = entry.pkt.tag(),
                     .op = spec::to_string(rqst),
                     .value = flits,
                     .note = "corrupted flow packet dropped"});
      }
      return Status::Ok();
    }
    const auto rtc = static_cast<std::uint32_t>(
        spec::RqstTail::Rtc::get(entry.pkt.tail));
    links_[link].consume_flow(rqst, rtc);
    return Status::Ok();
  }

  auto& q = xbar_.rqst_queue(link);
  if (q.full()) {
    links_[link].record_send_stall();
    if (tracer.enabled(trace::Level::Stalls)) {
      tracer.emit({.cycle = cycle,
                   .kind = trace::Level::Stalls,
                   .where = {.dev = id_, .link = link},
                   .tag = entry.pkt.tag(),
                   .op = spec::to_string(rqst),
                   .addr = entry.pkt.addr(),
                   .value = q.size(),
                   .note = "xbar request queue full"});
    }
    return Status::Stall("crossbar request queue full on link " +
                         std::to_string(link));
  }
  Link& lnk = links_[link];
  if (Status s = lnk.accept_request(flits); !s.ok()) {
    return s;
  }
  // The packet is committed to the pipeline: open its journey record.
  // Downstream stages stamp it keyed on the carried index alone, so the
  // record stays consistent even if the trace level changes mid-flight.
  if (tracer.journeys_on()) {
    entry.journey = tracer.journeys()->open(
        cycle, id_, link, entry.pkt.tag(), spec::to_string(rqst),
        entry.pkt.addr());
  }
  // Link-layer transmit stamps: source link, per-link sequence number,
  // this packet's forward retry pointer, and the RRP acknowledging the
  // last response the host saw on this link. Every stamp invalidates the
  // sealed CRC, so reseal once after the batch (tail-delta fast path: all
  // stamped fields live in the tail word).
  entry.src_link = static_cast<std::uint8_t>(link);
  const std::uint64_t sealed_tail = entry.pkt.tail;
  entry.pkt.set_slid(static_cast<std::uint8_t>(link));
  entry.pkt.set_seq(lnk.next_rqst_seq());
  entry.pkt.set_frp(lnk.next_rqst_frp());
  entry.pkt.set_rrp(lnk.last_rsp_frp());
  spec::reseal_tail(entry.pkt, sealed_tail);

  // Link-error injection: a corrupted packet fails the CRC at the link
  // layer; go-back-N means it AND everything transmitted behind it on
  // this link replay in original order after the retry exchange. From the
  // host's perspective the send succeeded (the link accepted the FLITs);
  // the latency cost shows up on the response. Packets joining an active
  // retry FIFO wait unexamined — their first real transmission is the
  // replay, which this model treats as error-free so forward progress is
  // guaranteed even at a 100% error rate. With injection off the FIFOs
  // are provably empty, so the hot path skips them entirely.
  if (cfg_.link_flit_error_ppm != 0) {
    LinkRetry& retry = retry_[link];
    const bool link_in_retry = !retry.rqst.empty();
    if (!link_in_retry && inject_error(flits)) {
      lnk.record_retry();
      if (tracer.enabled(trace::Level::Retry)) {
        tracer.emit({.cycle = cycle,
                     .kind = trace::Level::Retry,
                     .where = {.dev = id_, .link = link},
                     .tag = entry.pkt.tag(),
                     .op = spec::to_string(rqst),
                     .addr = entry.pkt.addr(),
                     .value = cfg_.link_retry_latency,
                     .note = "request corrupted; link entering retry"});
      }
      retry.rqst_ready = cycle + cfg_.link_retry_latency;
      retry.rqst.push_back(std::move(entry));
      lnk.add_retry_buffered(flits);
      rqst_retry_links_ |= 1U << link;
      retry_cache_valid_ = false;
      return Status::Ok();
    }
    if (link_in_retry) {
      // In-order guarantee: nothing overtakes the parked head.
      retry.rqst.push_back(std::move(entry));
      lnk.add_retry_buffered(flits);
      return Status::Ok();
    }
  }

  const bool pushed = q.push(std::move(entry));
  (void)pushed;  // Guarded by the full() check above.
  xbar_rqst_active_ |= 1U << link;
  return Status::Ok();
}

bool Device::inject_error(std::uint32_t flits) {
  // Independent per-FLIT trials keep the model faithful at any rate.
  for (std::uint32_t f = 0; f < flits; ++f) {
    if (err_rng_.below(1'000'000) < cfg_.link_flit_error_ppm) {
      return true;
    }
  }
  return false;
}

bool Device::inject_rsp_error(std::uint32_t flits) {
  for (std::uint32_t f = 0; f < flits; ++f) {
    if (rsp_err_rng_.below(1'000'000) < cfg_.link_flit_error_ppm) {
      return true;
    }
  }
  return false;
}

void Device::drain_retries(std::uint64_t cycle, trace::Tracer& tracer) {
  std::uint32_t m = rqst_retry_links_;
  while (m != 0) {
    const auto l = static_cast<std::uint32_t>(std::countr_zero(m));
    m &= m - 1;
    LinkRetry& retry = retry_[l];
    if (retry.rqst_ready > cycle) {
      continue;  // The retry exchange on this link is still in flight.
    }
    auto& q = xbar_.rqst_queue(l);
    while (!retry.rqst.empty()) {
      if (q.full()) {
        // Queue pressure: the head waits, and FIFO order means everything
        // behind it waits too — no bypass.
        break;
      }
      RqstEntry entry = std::move(retry.rqst.front());
      retry.rqst.pop_front();
      // The replay re-acknowledges the latest response stream position;
      // SEQ and FRP keep their original stamps.
      const std::uint64_t sealed_tail = entry.pkt.tail;
      entry.pkt.set_rrp(links_[l].last_rsp_frp());
      spec::reseal_tail(entry.pkt, sealed_tail);
      links_[l].sub_retry_buffered(entry.pkt.flits());
      if (tracer.enabled(trace::Level::Retry)) {
        tracer.emit({.cycle = cycle,
                     .kind = trace::Level::Retry,
                     .where = {.dev = id_, .link = l},
                     .tag = entry.pkt.tag(),
                     .op = spec::to_string(entry.pkt.rqst()),
                     .addr = entry.pkt.addr(),
                     .value = retry.rqst.size(),
                     .note = "request redelivered"});
      }
      const bool pushed = q.push(std::move(entry));
      (void)pushed;  // Guarded by the full() check above.
      xbar_rqst_active_ |= 1U << l;
    }
    if (retry.rqst.empty()) {
      rqst_retry_links_ &= ~(1U << l);
      retry_cache_valid_ = false;
    }
  }
}

void Device::drain_rsp_retries(std::uint64_t cycle, trace::Tracer& tracer) {
  std::uint32_t m = rsp_retry_links_;
  while (m != 0) {
    const auto l = static_cast<std::uint32_t>(std::countr_zero(m));
    m &= m - 1;
    LinkRetry& retry = retry_[l];
    if (retry.rsp_ready > cycle) {
      continue;
    }
    auto& q = xbar_.rsp_queue(l);
    while (!retry.rsp.empty()) {
      RspEntry& head = retry.rsp.front();
      const std::uint32_t flits = head.pkt.flits();
      // A replay is a real transmission: it spends link bandwidth again.
      if (flits > rsp_budget_[l]) {
        xbar_.rsp_bw_throttles().inc();
        break;
      }
      if (q.full()) {
        xbar_.rsp_stalls().inc();
        break;  // FIFO order: nothing behind the head moves.
      }
      rsp_budget_[l] -= flits;
      const std::uint64_t sealed_tail = head.pkt.tail;
      head.pkt.set_rrp(links_[l].last_rqst_frp());
      spec::reseal_tail(head.pkt, sealed_tail);
      links_[l].sub_retry_buffered(flits);
      if (tracer.enabled(trace::Level::Retry)) {
        tracer.emit({.cycle = cycle,
                     .kind = trace::Level::Retry,
                     .where = {.dev = id_, .link = l},
                     .tag = head.pkt.tag(),
                     .value = retry.rsp.size() - 1,
                     .note = "response redelivered"});
      }
      if (head.journey != trace::kNoJourney &&
          tracer.journeys() != nullptr) {
        tracer.journeys()->at(head.journey).t_eject = cycle;
      }
      const bool pushed = q.push(std::move(head));
      (void)pushed;  // Guarded by the full() check above.
      retry.rsp.pop_front();
      xbar_.rsps_routed().inc();
    }
    if (retry.rsp.empty()) {
      rsp_retry_links_ &= ~(1U << l);
      retry_cache_valid_ = false;
    }
  }
}

std::uint64_t Device::next_retry_ready() const noexcept {
  if (retry_cache_valid_) {
    return retry_ready_cache_;
  }
  std::uint64_t best = UINT64_MAX;
  for (std::uint32_t l = 0; l < retry_.size(); ++l) {
    if ((rqst_retry_links_ >> l) & 1U) {
      best = std::min(best, retry_[l].rqst_ready);
    }
    if ((rsp_retry_links_ >> l) & 1U) {
      best = std::min(best, retry_[l].rsp_ready);
    }
  }
  retry_ready_cache_ = best;
  retry_cache_valid_ = true;
  return best;
}

bool Device::rsp_ready(std::uint32_t link) const {
  return link < links_.size() && !xbar_.rsp_queue(link).empty();
}

Status Device::recv(std::uint32_t link, RspEntry& out) {
  if (link >= links_.size()) {
    return Status::InvalidArg("link index out of range");
  }
  auto& q = xbar_.rsp_queue(link);
  if (q.empty()) {
    return Status::NoData();
  }
  out = q.pop();
  links_[link].eject_response(out.pkt.flits());
  return Status::Ok();
}

void Device::clock_responses(std::uint64_t cycle, trace::Tracer& tracer,
                             Device* prev) {
  // Per-link response forwarding budget for this cycle.
  if (rsp_budget_.size() != links_.size()) {
    rsp_budget_.assign(links_.size(), 0);
  }
  const std::uint32_t rsp_bw =
      cfg_.xbar_rsp_bw_flits == 0 ? UINT32_MAX : cfg_.xbar_rsp_bw_flits;
  for (auto& b : rsp_budget_) {
    b = rsp_bw;
  }

  // (0) Replay ready response retries first: they are the oldest
  // transmissions on their links and nothing may overtake them.
  if (rsp_retry_links_ != 0) {
    drain_rsp_retries(cycle, tracer);
  }

  // (1) Forward chain responses toward the host-attached cube.
  if (prev != nullptr) {
    while (!chain_rsp_.empty()) {
      if (prev->chain_rsp_.full()) {
        xbar_.rsp_stalls().inc();
        break;
      }
      RspEntry& head = chain_rsp_.front();
      head.hops = static_cast<std::uint8_t>(head.hops + 1);
      const bool pushed = prev->chain_rsp_.push(std::move(head));
      (void)pushed;  // Guarded by the full() check above.
      chain_rsp_.drop_front();
      forwarded_rsps_->inc();
    }
  } else {
    // Host-attached cube: chain responses eject onto their origin link.
    while (!chain_rsp_.empty()) {
      RspEntry& head = chain_rsp_.front();
      if (head.pkt.flits() > rsp_budget_[head.dst_link]) {
        xbar_.rsp_bw_throttles().inc();
        break;
      }
      if (!transmit_rsp(head, head.dst_link, cycle, tracer)) {
        break;
      }
      chain_rsp_.drop_front();
    }
  }

  // (2) Vault response queues drain toward the host link (local cube) or
  // the chain (remote cube). A full target queue leaves the remainder of
  // the vault's responses queued, in order. Increasing vault order in both
  // modes: the vaults share per-link forwarding budgets, so visit order is
  // observable.
  const bool local = prev == nullptr;
  if (cfg_.exhaustive_clock) {
    for (std::uint32_t v = 0; v < vaults_.size(); ++v) {
      drain_vault_rsp(v, local, cycle, tracer);
    }
  } else {
    std::uint64_t m = vault_rsp_active_;
    while (m != 0) {
      const auto v = static_cast<std::uint32_t>(std::countr_zero(m));
      m &= m - 1;
      drain_vault_rsp(v, local, cycle, tracer);
    }
  }
}

bool Device::transmit_rsp(RspEntry& head, std::uint32_t l,
                          std::uint64_t cycle, trace::Tracer& tracer) {
  // Caller has already charged/checked the bandwidth budget headroom.
  // With injection off the retry FIFO is provably empty — skip it.
  const std::uint32_t flits = head.pkt.flits();
  const bool inject_on = cfg_.link_flit_error_ppm != 0;
  const bool link_in_retry = inject_on && !retry_[l].rsp.empty();
  auto& q = xbar_.rsp_queue(l);
  if (!link_in_retry && q.full()) {
    xbar_.rsp_stalls().inc();
    return false;
  }
  rsp_budget_[l] -= flits;
  // Link-layer transmit stamps for the response direction: sequence
  // number, forward retry pointer, the RRP acknowledging the last request
  // received on this link, and up to 7 returned credits in RTC. Reseal
  // once after the batch (all stamped fields live in the tail word).
  Link& lnk = links_[l];
  const std::uint64_t sealed_tail = head.pkt.tail;
  head.pkt.set_seq(lnk.next_rsp_seq());
  head.pkt.set_frp(lnk.next_rsp_frp());
  head.pkt.set_rrp(lnk.last_rqst_frp());
  head.pkt.set_rtc(lnk.take_rtc());
  spec::reseal_tail(head.pkt, sealed_tail);

  if (inject_on) {
    LinkRetry& retry = retry_[l];
    if (!link_in_retry && inject_rsp_error(flits)) {
      lnk.record_rsp_retry();
      if (tracer.enabled(trace::Level::Retry)) {
        tracer.emit({.cycle = cycle,
                     .kind = trace::Level::Retry,
                     .where = {.dev = id_, .link = l},
                     .tag = head.pkt.tag(),
                     .value = cfg_.link_retry_latency,
                     .note = "response corrupted; link entering retry"});
      }
      retry.rsp_ready = cycle + cfg_.link_retry_latency;
      retry.rsp.push_back(std::move(head));
      lnk.add_retry_buffered(flits);
      rsp_retry_links_ |= 1U << l;
      retry_cache_valid_ = false;
      return true;
    }
    if (link_in_retry) {
      // In-order guarantee: queue behind the parked corrupted head.
      retry.rsp.push_back(std::move(head));
      lnk.add_retry_buffered(flits);
      return true;
    }
  }
  // The response reaches its host-link ejection queue this cycle; a
  // retry-parked response is stamped at redelivery instead, so retry
  // delay accrues to the rsp_queue stage.
  if (head.journey != trace::kNoJourney && tracer.journeys() != nullptr) {
    tracer.journeys()->at(head.journey).t_eject = cycle;
  }
  const bool pushed = q.push(std::move(head));
  (void)pushed;  // Guarded by the full() check above.
  xbar_.rsps_routed().inc();
  return true;
}

void Device::drain_vault_rsp(std::uint32_t v, bool local, std::uint64_t cycle,
                             trace::Tracer& tracer) {
  Vault& vault = vaults_[v];
  auto& vq = vault.rsp_queue();
  while (!vq.empty()) {
    RspEntry& head = vq.front();
    bool moved = false;
    if (local) {
      if (head.pkt.flits() > rsp_budget_[head.dst_link]) {
        xbar_.rsp_bw_throttles().inc();
        break;  // Budget spent: the vault's queue waits a cycle.
      }
      moved = transmit_rsp(head, head.dst_link, cycle, tracer);
    } else {
      if (!chain_rsp_.full()) {
        const bool pushed = chain_rsp_.push(std::move(head));
        (void)pushed;
        moved = true;
      } else {
        xbar_.rsp_stalls().inc();
      }
    }
    if (!moved) {
      // transmit_rsp / the chain check above counted the stall.
      if (tracer.enabled(trace::Level::Stalls)) {
        tracer.emit({.cycle = cycle,
                     .kind = trace::Level::Stalls,
                     .where = {.dev = id_,
                               .quad = vault.quad(),
                               .vault = vault.id(),
                               .link = head.dst_link},
                     .tag = head.pkt.tag(),
                     .value = vq.size(),
                     .note = "xbar response queue full"});
      }
      break;
    }
    vq.drop_front();
  }
  if (vq.empty()) {
    vault_rsp_active_ &= ~(1ULL << v);
  }
}

void Device::run_vault(std::uint32_t v, std::uint64_t cycle, ExecEnv& env,
                       bool sample_depth, trace::Tracer& tracer) {
  Vault& vault = vaults_[v];
  // Occupancy samples are taken pre-execution so a trace consumer sees
  // the pressure each cycle's work starts from (non-empty queues only).
  if (sample_depth && !vault.rqst_queue().empty()) {
    tracer.emit({.cycle = cycle,
                 .kind = trace::Level::QueueDepth,
                 .where = {.dev = id_,
                           .quad = vault.quad(),
                           .vault = vault.id()},
                 .value = vault.rqst_queue().size()});
  }
  vault.process(cycle, env);
  if (vault.rqst_queue().empty()) {
    vault_rqst_active_ &= ~(1ULL << v);
  }
  if (!vault.rsp_queue().empty()) {
    vault_rsp_active_ |= 1ULL << v;
  }
}

void Device::clock_vaults(std::uint64_t cycle, cmc::CmcRegistry* cmc,
                          cmc::CmcContext* cmc_ctx, trace::Tracer& tracer) {
  ExecEnv env{store_, regs_, amap_, cmc,
              cmc_ctx, tracer, cfg_, id_,
              cmc_op_counters_.data(),
              fault_.enabled() ? &fault_ : nullptr};
  const bool sample_depth = tracer.enabled(trace::Level::QueueDepth);
  if (cfg_.exhaustive_clock) {
    for (std::uint32_t v = 0; v < vaults_.size(); ++v) {
      run_vault(v, cycle, env, sample_depth, tracer);
    }
  } else {
    std::uint64_t m = vault_rqst_active_;
    while (m != 0) {
      const auto v = static_cast<std::uint32_t>(std::countr_zero(m));
      m &= m - 1;
      run_vault(v, cycle, env, sample_depth, tracer);
    }
  }
  regs_.poke(Reg::ClockCount, cycle);
  if (cmc != nullptr) {
    regs_.poke(Reg::CmcActive, cmc->active_count());
  }
}

void Device::drain_rqst_queue(FixedQueue<RqstEntry>& q, Link* token_owner,
                              std::uint32_t budget_flits, std::uint64_t cycle,
                              trace::Tracer& tracer, const Router& route) {
  std::uint32_t budget =
      budget_flits == 0 ? UINT32_MAX : budget_flits;
  while (!q.empty()) {
    const RqstEntry& head = q.front();
    const std::uint8_t cub = head.pkt.cub();
    if (head.pkt.flits() > budget) {
      xbar_.rqst_bw_throttles().inc();
      break;  // Forwarding bandwidth for this link is spent this cycle.
    }

    if (cub == id_) {
      const DecodedAddr loc = amap_.decode(head.pkt.addr());
      auto& vq = vaults_[loc.vault].rqst_queue();
      if (vq.full()) {
        xbar_.rqst_stalls().inc();
        if (tracer.enabled(trace::Level::Stalls)) {
          tracer.emit({.cycle = cycle,
                       .kind = trace::Level::Stalls,
                       .where = {.dev = id_, .link = head.src_link},
                       .tag = head.pkt.tag(),
                       .op = spec::to_string(head.pkt.rqst()),
                       .addr = head.pkt.addr(),
                       .value = q.size(),
                       .note = "vault request queue full"});
        }
        break;  // Head-of-line blocking: nothing behind the head moves.
      }
      RqstEntry entry = q.pop();
      budget -= entry.pkt.flits();
      if (token_owner != nullptr) {
        token_owner->return_tokens(entry.pkt.flits());
      }
      if (entry.journey != trace::kNoJourney &&
          tracer.journeys() != nullptr) {
        tracer.journeys()->at(entry.journey).t_vault = cycle;
      }
      const bool pushed = vq.push(std::move(entry));
      (void)pushed;  // Guarded by the full() check above.
      vault_rqst_active_ |= 1ULL << loc.vault;
      xbar_.rqsts_routed().inc();
      continue;
    }

    Device* next = route ? route(cub) : nullptr;
    if (next == nullptr) {
      // Unroutable cube id: drop after counting. The host validated the
      // CUB range at send time, so this indicates a topology
      // misconfiguration.
      xbar_.rqst_stalls().inc();
      RqstEntry dropped = q.pop();
      if (dropped.journey != trace::kNoJourney &&
          tracer.journeys() != nullptr) {
        tracer.journeys()->drop(dropped.journey);
      }
      continue;
    }

    if (next->chain_rqst_.full()) {
      xbar_.rqst_stalls().inc();
      if (tracer.enabled(trace::Level::Stalls)) {
        tracer.emit({.cycle = cycle,
                     .kind = trace::Level::Stalls,
                     .where = {.dev = id_, .link = head.src_link},
                     .tag = head.pkt.tag(),
                     .op = spec::to_string(head.pkt.rqst()),
                     .addr = head.pkt.addr(),
                     .value = q.size(),
                     .note = "chain request queue full"});
      }
      break;
    }
    RqstEntry entry = q.pop();
    budget -= entry.pkt.flits();
    if (token_owner != nullptr) {
      token_owner->return_tokens(entry.pkt.flits());
    }
    entry.hops = static_cast<std::uint8_t>(entry.hops + 1);
    if (tracer.enabled(trace::Level::Route)) {
      tracer.emit({.cycle = cycle,
                   .kind = trace::Level::Route,
                   .where = {.dev = id_, .link = entry.src_link},
                   .tag = entry.pkt.tag(),
                   .op = spec::to_string(entry.pkt.rqst()),
                   .addr = entry.pkt.addr(),
                   .value = cub});
    }
    const bool pushed = next->chain_rqst_.push(std::move(entry));
    (void)pushed;  // Guarded by the full() check above.
    forwarded_rqsts_->inc();
  }
}

void Device::clock_requests(std::uint64_t cycle, trace::Tracer& tracer,
                            const Router& route) {
  // Redeliver retried packets first (they already waited), then host
  // links (round-robin across links is implicit: each link queue drains
  // independently toward per-vault queues), then the chain ingress from
  // the previous cube.
  if (rqst_retry_links_ != 0) {
    drain_retries(cycle, tracer);
  }
  if (cfg_.exhaustive_clock) {
    for (std::uint32_t l = 0; l < xbar_.num_links(); ++l) {
      drain_rqst_queue(xbar_.rqst_queue(l), &links_[l],
                       cfg_.xbar_rqst_bw_flits, cycle, tracer, route);
      if (xbar_.rqst_queue(l).empty()) {
        xbar_rqst_active_ &= ~(1U << l);
      }
    }
  } else {
    // Snapshot after drain_retries so a redelivered packet's link is
    // visited this cycle, exactly as the exhaustive walk would.
    std::uint32_t m = xbar_rqst_active_;
    while (m != 0) {
      const auto l = static_cast<std::uint32_t>(std::countr_zero(m));
      m &= m - 1;
      drain_rqst_queue(xbar_.rqst_queue(l), &links_[l],
                       cfg_.xbar_rqst_bw_flits, cycle, tracer, route);
      if (xbar_.rqst_queue(l).empty()) {
        xbar_rqst_active_ &= ~(1U << l);
      }
    }
  }
  if (!chain_rqst_.empty()) {
    drain_rqst_queue(chain_rqst_, nullptr, cfg_.xbar_rqst_bw_flits, cycle,
                     tracer, route);
  }
}

void Device::reset_pipeline() {
  for (Vault& vault : vaults_) {
    vault.reset();
  }
  xbar_.reset();
  for (Link& link : links_) {
    link.reset();
  }
  chain_rqst_.clear();
  chain_rsp_.clear();
  for (LinkRetry& retry : retry_) {
    retry.rqst.clear();
    retry.rsp.clear();
    retry.rqst_ready = 0;
    retry.rsp_ready = 0;
  }
  rqst_retry_links_ = 0;
  rsp_retry_links_ = 0;
  retry_ready_cache_ = UINT64_MAX;
  retry_cache_valid_ = true;
  vault_rqst_active_ = 0;
  vault_rsp_active_ = 0;
  xbar_rqst_active_ = 0;
  forwarded_rqsts_->reset();
  forwarded_rsps_->reset();
  for (metrics::Counter* c : cmc_op_counters_) {
    if (c != nullptr) {
      c->reset();
    }
  }
  fault_.reset();
}

}  // namespace hmcsim::dev
