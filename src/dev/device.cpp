#include "dev/device.hpp"

#include <algorithm>
#include <bit>

#include "spec/flit.hpp"

namespace hmcsim::dev {

Device::Device(const sim::Config& cfg, std::uint32_t dev_id,
               metrics::StatRegistry& reg)
    : cfg_(cfg),
      id_(dev_id),
      metrics_(&reg),
      prefix_("cube" + std::to_string(dev_id)),
      store_(cfg.capacity_bytes),
      amap_(cfg),
      xbar_(cfg.num_links, cfg.xbar_depth, reg, prefix_ + ".xbar"),
      chain_rqst_(cfg.xbar_depth),
      chain_rsp_(cfg.xbar_depth),
      err_rng_(cfg.link_error_seed + dev_id),
      forwarded_rqsts_(&reg.counter(prefix_ + ".forwarded_rqsts",
                                    "requests forwarded to a neighbour")),
      forwarded_rsps_(&reg.counter(prefix_ + ".forwarded_rsps",
                                   "responses forwarded to a neighbour")) {
  regs_.init(cfg, dev_id, reg, prefix_);
  vaults_.reserve(cfg.total_vaults());
  for (std::uint32_t v = 0; v < cfg.total_vaults(); ++v) {
    vaults_.emplace_back(v / cfg.vaults_per_quad, v, cfg, reg, prefix_);
  }
  links_.reserve(cfg.num_links);
  for (std::uint32_t l = 0; l < cfg.num_links; ++l) {
    links_.emplace_back(cfg.xbar_depth, reg,
                        prefix_ + ".link" + std::to_string(l));
  }
}

void Device::attach_cmc_counter(std::uint8_t cmd, std::string_view name) {
  if (cmd >= cmc_op_counters_.size() || name.empty()) {
    return;
  }
  cmc_op_counters_[cmd] = &metrics_->counter(
      prefix_ + ".cmc." + std::string(name) + ".executed",
      "CMC operation executions");
}

Status Device::send(RqstEntry entry, std::uint32_t link, std::uint64_t cycle,
                    trace::Tracer& tracer) {
  if (link >= links_.size()) {
    return Status::InvalidArg("link index out of range");
  }
  const spec::Rqst rqst = entry.pkt.rqst();

  // Flow packets terminate at the link layer.
  if (spec::is_flow(rqst)) {
    const auto rtc = static_cast<std::uint32_t>(
        spec::RqstTail::Rtc::get(entry.pkt.tail));
    links_[link].consume_flow(rqst, rtc);
    return Status::Ok();
  }

  const std::uint32_t flits = entry.pkt.flits();
  auto& q = xbar_.rqst_queue(link);
  if (q.full()) {
    links_[link].record_send_stall();
    if (tracer.enabled(trace::Level::Stalls)) {
      tracer.emit({.cycle = cycle,
                   .kind = trace::Level::Stalls,
                   .where = {.dev = id_, .link = link},
                   .tag = entry.pkt.tag(),
                   .op = spec::to_string(rqst),
                   .addr = entry.pkt.addr(),
                   .value = q.size(),
                   .note = "xbar request queue full"});
    }
    return Status::Stall("crossbar request queue full on link " +
                         std::to_string(link));
  }
  if (Status s = links_[link].accept_request(flits); !s.ok()) {
    return s;
  }
  entry.src_link = static_cast<std::uint8_t>(link);
  entry.pkt.set_slid(static_cast<std::uint8_t>(link));

  // Link-error injection: a corrupted packet fails the CRC at the link
  // layer and is redelivered after the retry exchange. From the host's
  // perspective the send succeeded (the link accepted the FLITs); the
  // latency cost shows up on the response.
  if (cfg_.link_flit_error_ppm != 0 && inject_error(flits)) {
    links_[link].record_retry();
    if (tracer.enabled(trace::Level::Retry)) {
      tracer.emit({.cycle = cycle,
                   .kind = trace::Level::Retry,
                   .where = {.dev = id_, .link = link},
                   .tag = entry.pkt.tag(),
                   .op = spec::to_string(rqst),
                   .addr = entry.pkt.addr(),
                   .value = cfg_.link_retry_latency});
    }
    retry_buffer_.push_back(RetryEntry{std::move(entry), link,
                                       cycle + cfg_.link_retry_latency});
    return Status::Ok();
  }

  const bool pushed = q.push(std::move(entry));
  (void)pushed;  // Guarded by the full() check above.
  xbar_rqst_active_ |= 1U << link;
  return Status::Ok();
}

bool Device::inject_error(std::uint32_t flits) {
  // Independent per-FLIT trials keep the model faithful at any rate.
  for (std::uint32_t f = 0; f < flits; ++f) {
    if (err_rng_.below(1'000'000) < cfg_.link_flit_error_ppm) {
      return true;
    }
  }
  return false;
}

void Device::drain_retries(std::uint64_t cycle, trace::Tracer& tracer) {
  (void)tracer;
  for (auto it = retry_buffer_.begin(); it != retry_buffer_.end();) {
    if (it->ready_cycle > cycle) {
      ++it;
      continue;
    }
    auto& q = xbar_.rqst_queue(it->link);
    if (q.full()) {
      ++it;  // Queue pressure: redeliver on a later cycle.
      continue;
    }
    const bool pushed = q.push(std::move(it->entry));
    (void)pushed;  // Guarded by the full() check above.
    xbar_rqst_active_ |= 1U << it->link;
    it = retry_buffer_.erase(it);
  }
}

std::uint64_t Device::next_retry_ready() const noexcept {
  std::uint64_t best = UINT64_MAX;
  for (const RetryEntry& r : retry_buffer_) {
    best = std::min(best, r.ready_cycle);
  }
  return best;
}

bool Device::rsp_ready(std::uint32_t link) const {
  return link < links_.size() && !xbar_.rsp_queue(link).empty();
}

Status Device::recv(std::uint32_t link, RspEntry& out) {
  if (link >= links_.size()) {
    return Status::InvalidArg("link index out of range");
  }
  auto& q = xbar_.rsp_queue(link);
  if (q.empty()) {
    return Status::NoData();
  }
  out = q.pop();
  links_[link].eject_response(out.pkt.flits());
  return Status::Ok();
}

void Device::clock_responses(std::uint64_t cycle, trace::Tracer& tracer,
                             Device* prev) {
  // Per-link response forwarding budget for this cycle.
  if (rsp_budget_.size() != links_.size()) {
    rsp_budget_.assign(links_.size(), 0);
  }
  const std::uint32_t rsp_bw =
      cfg_.xbar_rsp_bw_flits == 0 ? UINT32_MAX : cfg_.xbar_rsp_bw_flits;
  for (auto& b : rsp_budget_) {
    b = rsp_bw;
  }

  // (1) Forward chain responses toward the host-attached cube.
  if (prev != nullptr) {
    while (!chain_rsp_.empty()) {
      if (prev->chain_rsp_.full()) {
        xbar_.rsp_stalls().inc();
        break;
      }
      RspEntry& head = chain_rsp_.front();
      head.hops = static_cast<std::uint8_t>(head.hops + 1);
      const bool pushed = prev->chain_rsp_.push(std::move(head));
      (void)pushed;  // Guarded by the full() check above.
      chain_rsp_.drop_front();
      forwarded_rsps_->inc();
    }
  } else {
    // Host-attached cube: chain responses eject onto their origin link.
    while (!chain_rsp_.empty()) {
      RspEntry& head = chain_rsp_.front();
      auto& q = xbar_.rsp_queue(head.dst_link);
      if (head.pkt.flits() > rsp_budget_[head.dst_link]) {
        xbar_.rsp_bw_throttles().inc();
        break;
      }
      if (q.full()) {
        xbar_.rsp_stalls().inc();
        break;
      }
      rsp_budget_[head.dst_link] -= head.pkt.flits();
      const bool pushed = q.push(std::move(head));
      (void)pushed;
      chain_rsp_.drop_front();
      xbar_.rsps_routed().inc();
    }
  }

  // (2) Vault response queues drain toward the host link (local cube) or
  // the chain (remote cube). A full target queue leaves the remainder of
  // the vault's responses queued, in order. Increasing vault order in both
  // modes: the vaults share per-link forwarding budgets, so visit order is
  // observable.
  const bool local = prev == nullptr;
  if (cfg_.exhaustive_clock) {
    for (std::uint32_t v = 0; v < vaults_.size(); ++v) {
      drain_vault_rsp(v, local, cycle, tracer);
    }
  } else {
    std::uint64_t m = vault_rsp_active_;
    while (m != 0) {
      const auto v = static_cast<std::uint32_t>(std::countr_zero(m));
      m &= m - 1;
      drain_vault_rsp(v, local, cycle, tracer);
    }
  }
}

void Device::drain_vault_rsp(std::uint32_t v, bool local, std::uint64_t cycle,
                             trace::Tracer& tracer) {
  Vault& vault = vaults_[v];
  auto& vq = vault.rsp_queue();
  while (!vq.empty()) {
    RspEntry& head = vq.front();
    bool moved = false;
    if (local) {
      auto& q = xbar_.rsp_queue(head.dst_link);
      if (head.pkt.flits() > rsp_budget_[head.dst_link]) {
        xbar_.rsp_bw_throttles().inc();
        break;  // Budget spent: the vault's queue waits a cycle.
      }
      if (!q.full()) {
        rsp_budget_[head.dst_link] -= head.pkt.flits();
        const bool pushed = q.push(std::move(head));
        (void)pushed;
        xbar_.rsps_routed().inc();
        moved = true;
      }
    } else {
      if (!chain_rsp_.full()) {
        const bool pushed = chain_rsp_.push(std::move(head));
        (void)pushed;
        moved = true;
      }
    }
    if (!moved) {
      xbar_.rsp_stalls().inc();
      if (tracer.enabled(trace::Level::Stalls)) {
        tracer.emit({.cycle = cycle,
                     .kind = trace::Level::Stalls,
                     .where = {.dev = id_,
                               .quad = vault.quad(),
                               .vault = vault.id(),
                               .link = head.dst_link},
                     .tag = head.pkt.tag(),
                     .value = vq.size(),
                     .note = "xbar response queue full"});
      }
      break;
    }
    vq.drop_front();
  }
  if (vq.empty()) {
    vault_rsp_active_ &= ~(1ULL << v);
  }
}

void Device::run_vault(std::uint32_t v, std::uint64_t cycle, ExecEnv& env,
                       bool sample_depth, trace::Tracer& tracer) {
  Vault& vault = vaults_[v];
  // Occupancy samples are taken pre-execution so a trace consumer sees
  // the pressure each cycle's work starts from (non-empty queues only).
  if (sample_depth && !vault.rqst_queue().empty()) {
    tracer.emit({.cycle = cycle,
                 .kind = trace::Level::QueueDepth,
                 .where = {.dev = id_,
                           .quad = vault.quad(),
                           .vault = vault.id()},
                 .value = vault.rqst_queue().size()});
  }
  vault.process(cycle, env);
  if (vault.rqst_queue().empty()) {
    vault_rqst_active_ &= ~(1ULL << v);
  }
  if (!vault.rsp_queue().empty()) {
    vault_rsp_active_ |= 1ULL << v;
  }
}

void Device::clock_vaults(std::uint64_t cycle, const cmc::CmcRegistry* cmc,
                          cmc::CmcContext* cmc_ctx, trace::Tracer& tracer) {
  ExecEnv env{store_, regs_, amap_, cmc,      cmc_ctx,
              tracer, cfg_,  id_,   cmc_op_counters_.data()};
  const bool sample_depth = tracer.enabled(trace::Level::QueueDepth);
  if (cfg_.exhaustive_clock) {
    for (std::uint32_t v = 0; v < vaults_.size(); ++v) {
      run_vault(v, cycle, env, sample_depth, tracer);
    }
  } else {
    std::uint64_t m = vault_rqst_active_;
    while (m != 0) {
      const auto v = static_cast<std::uint32_t>(std::countr_zero(m));
      m &= m - 1;
      run_vault(v, cycle, env, sample_depth, tracer);
    }
  }
  regs_.poke(Reg::ClockCount, cycle);
  if (cmc != nullptr) {
    regs_.poke(Reg::CmcActive, cmc->active_count());
  }
}

void Device::drain_rqst_queue(FixedQueue<RqstEntry>& q, Link* token_owner,
                              std::uint32_t budget_flits, std::uint64_t cycle,
                              trace::Tracer& tracer, const Router& route) {
  std::uint32_t budget =
      budget_flits == 0 ? UINT32_MAX : budget_flits;
  while (!q.empty()) {
    const RqstEntry& head = q.front();
    const std::uint8_t cub = head.pkt.cub();
    if (head.pkt.flits() > budget) {
      xbar_.rqst_bw_throttles().inc();
      break;  // Forwarding bandwidth for this link is spent this cycle.
    }

    if (cub == id_) {
      const DecodedAddr loc = amap_.decode(head.pkt.addr());
      auto& vq = vaults_[loc.vault].rqst_queue();
      if (vq.full()) {
        xbar_.rqst_stalls().inc();
        if (tracer.enabled(trace::Level::Stalls)) {
          tracer.emit({.cycle = cycle,
                       .kind = trace::Level::Stalls,
                       .where = {.dev = id_, .link = head.src_link},
                       .tag = head.pkt.tag(),
                       .op = spec::to_string(head.pkt.rqst()),
                       .addr = head.pkt.addr(),
                       .value = q.size(),
                       .note = "vault request queue full"});
        }
        break;  // Head-of-line blocking: nothing behind the head moves.
      }
      RqstEntry entry = q.pop();
      budget -= entry.pkt.flits();
      if (token_owner != nullptr) {
        token_owner->return_tokens(entry.pkt.flits());
      }
      const bool pushed = vq.push(std::move(entry));
      (void)pushed;  // Guarded by the full() check above.
      vault_rqst_active_ |= 1ULL << loc.vault;
      xbar_.rqsts_routed().inc();
      continue;
    }

    Device* next = route ? route(cub) : nullptr;
    if (next == nullptr) {
      // Unroutable cube id: drop after counting. The host validated the
      // CUB range at send time, so this indicates a topology
      // misconfiguration.
      xbar_.rqst_stalls().inc();
      (void)q.pop();
      continue;
    }

    if (next->chain_rqst_.full()) {
      xbar_.rqst_stalls().inc();
      if (tracer.enabled(trace::Level::Stalls)) {
        tracer.emit({.cycle = cycle,
                     .kind = trace::Level::Stalls,
                     .where = {.dev = id_, .link = head.src_link},
                     .tag = head.pkt.tag(),
                     .op = spec::to_string(head.pkt.rqst()),
                     .addr = head.pkt.addr(),
                     .value = q.size(),
                     .note = "chain request queue full"});
      }
      break;
    }
    RqstEntry entry = q.pop();
    budget -= entry.pkt.flits();
    if (token_owner != nullptr) {
      token_owner->return_tokens(entry.pkt.flits());
    }
    entry.hops = static_cast<std::uint8_t>(entry.hops + 1);
    if (tracer.enabled(trace::Level::Route)) {
      tracer.emit({.cycle = cycle,
                   .kind = trace::Level::Route,
                   .where = {.dev = id_, .link = entry.src_link},
                   .tag = entry.pkt.tag(),
                   .op = spec::to_string(entry.pkt.rqst()),
                   .addr = entry.pkt.addr(),
                   .value = cub});
    }
    const bool pushed = next->chain_rqst_.push(std::move(entry));
    (void)pushed;  // Guarded by the full() check above.
    forwarded_rqsts_->inc();
  }
}

void Device::clock_requests(std::uint64_t cycle, trace::Tracer& tracer,
                            const Router& route) {
  // Redeliver retried packets first (they already waited), then host
  // links (round-robin across links is implicit: each link queue drains
  // independently toward per-vault queues), then the chain ingress from
  // the previous cube.
  if (!retry_buffer_.empty()) {
    drain_retries(cycle, tracer);
  }
  if (cfg_.exhaustive_clock) {
    for (std::uint32_t l = 0; l < xbar_.num_links(); ++l) {
      drain_rqst_queue(xbar_.rqst_queue(l), &links_[l],
                       cfg_.xbar_rqst_bw_flits, cycle, tracer, route);
      if (xbar_.rqst_queue(l).empty()) {
        xbar_rqst_active_ &= ~(1U << l);
      }
    }
  } else {
    // Snapshot after drain_retries so a redelivered packet's link is
    // visited this cycle, exactly as the exhaustive walk would.
    std::uint32_t m = xbar_rqst_active_;
    while (m != 0) {
      const auto l = static_cast<std::uint32_t>(std::countr_zero(m));
      m &= m - 1;
      drain_rqst_queue(xbar_.rqst_queue(l), &links_[l],
                       cfg_.xbar_rqst_bw_flits, cycle, tracer, route);
      if (xbar_.rqst_queue(l).empty()) {
        xbar_rqst_active_ &= ~(1U << l);
      }
    }
  }
  if (!chain_rqst_.empty()) {
    drain_rqst_queue(chain_rqst_, nullptr, cfg_.xbar_rqst_bw_flits, cycle,
                     tracer, route);
  }
}

void Device::reset_pipeline() {
  for (Vault& vault : vaults_) {
    vault.reset();
  }
  xbar_.reset();
  for (Link& link : links_) {
    link.reset();
  }
  chain_rqst_.clear();
  chain_rsp_.clear();
  retry_buffer_.clear();
  vault_rqst_active_ = 0;
  vault_rsp_active_ = 0;
  xbar_rqst_active_ = 0;
  forwarded_rqsts_->reset();
  forwarded_rsps_->reset();
  for (metrics::Counter* c : cmc_op_counters_) {
    if (c != nullptr) {
      c->reset();
    }
  }
}

}  // namespace hmcsim::dev
