#include "dev/registers.hpp"

namespace hmcsim::dev {

std::string_view to_string(Reg reg) noexcept {
  switch (reg) {
    case Reg::DeviceId:
      return "DEVICE_ID";
    case Reg::LinkConfig:
      return "LINK_CONFIG";
    case Reg::Capacity:
      return "CAPACITY";
    case Reg::BlockSize:
      return "BLOCK_SIZE";
    case Reg::VaultDepth:
      return "VAULT_DEPTH";
    case Reg::XbarDepth:
      return "XBAR_DEPTH";
    case Reg::Status:
      return "STATUS";
    case Reg::Error:
      return "ERROR";
    case Reg::CmcActive:
      return "CMC_ACTIVE";
    case Reg::ClockCount:
      return "CLOCK_COUNT";
    case Reg::Scratch0:
      return "SCRATCH0";
    case Reg::Scratch1:
      return "SCRATCH1";
    case Reg::Scratch2:
      return "SCRATCH2";
    case Reg::Scratch3:
      return "SCRATCH3";
    case Reg::VendorId:
      return "VENDOR_ID";
    case Reg::Revision:
      return "REVISION";
  }
  return "?";
}

void Registers::init(const sim::Config& cfg, std::uint32_t dev_id) {
  regs_.fill(0);
  poke(Reg::DeviceId, dev_id);
  poke(Reg::LinkConfig, cfg.num_links);
  poke(Reg::Capacity, cfg.capacity_bytes);
  poke(Reg::BlockSize, cfg.block_size);
  poke(Reg::VaultDepth, cfg.vault_rqst_depth);
  poke(Reg::XbarDepth, cfg.xbar_depth);
  poke(Reg::Status, 1);
  poke(Reg::VendorId, kVendorId);
  poke(Reg::Revision, kRevision);
}

void Registers::init(const sim::Config& cfg, std::uint32_t dev_id,
                     metrics::StatRegistry& reg, const std::string& prefix) {
  init(cfg, dev_id);
  reads_ = &reg.counter(prefix + ".regs.reads",
                        "host-visible register reads");
  writes_ = &reg.counter(prefix + ".regs.writes",
                         "host-visible register writes (accepted)");
}

bool Registers::writable(std::uint32_t index) noexcept {
  switch (static_cast<Reg>(index)) {
    case Reg::Error:
    case Reg::Scratch0:
    case Reg::Scratch1:
    case Reg::Scratch2:
    case Reg::Scratch3:
      return true;
    default:
      return false;
  }
}

Status Registers::read(std::uint32_t index, std::uint64_t& out) const {
  if (index >= kNumRegisters) {
    return Status::NotFound("register index " + std::to_string(index) +
                            " out of range");
  }
  out = regs_[index];
  if (reads_ != nullptr) {
    reads_->inc();
  }
  return Status::Ok();
}

Status Registers::write(std::uint32_t index, std::uint64_t value) {
  if (index >= kNumRegisters) {
    return Status::NotFound("register index " + std::to_string(index) +
                            " out of range");
  }
  if (!writable(index)) {
    return Status::InvalidArg("register " +
                              std::string(to_string(static_cast<Reg>(index))) +
                              " is read-only");
  }
  regs_[index] = value;
  if (writes_ != nullptr) {
    writes_->inc();
  }
  return Status::Ok();
}

}  // namespace hmcsim::dev
