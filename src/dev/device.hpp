// device.hpp — one Hybrid Memory Cube.
//
// A Device assembles the pieces: host links feeding per-link crossbar
// queues, 4 quads x 8 vaults of execution, a sparse backing store, the
// register file, and — for chained topologies — a cube-to-cube forwarding
// path. The Simulator drives the three clock stages in a fixed order so
// every packet spends exactly one cycle per stage unless back-pressure
// holds it:
//
//   stage A  clock_responses(): vault rsp queues -> link rsp queues
//   stage B  clock_vaults():    execute every runnable vault queue entry
//   stage C  clock_requests():  link rqst queues -> vault rqst queues
//                               (or forward to the next cube in the chain)
//
// Running A before B before C means a request needs one clock to reach its
// vault, one to execute, and one for its response to reach the link: a
// 3-cycle uncontended round trip, which puts the minimum cost of the
// paper's lock+unlock sequence at 6 cycles (Table VI).
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/fixed_queue.hpp"
#include "common/rng.hpp"
#include "common/status.hpp"
#include "core/cmc_registry.hpp"
#include "dev/addr_map.hpp"
#include "dev/link.hpp"
#include "dev/registers.hpp"
#include "dev/vault.hpp"
#include "dev/xbar.hpp"
#include "mem/backing_store.hpp"
#include "mem/fault.hpp"
#include "metrics/stat_registry.hpp"
#include "sim/config.hpp"
#include "trace/trace.hpp"

namespace hmcsim::dev {

class Device {
 public:
  /// Builds the cube and registers every component statistic in `reg`
  /// under `cube{dev_id}.`. The registry must outlive the device (the
  /// Simulator owns both, registry first).
  Device(const sim::Config& cfg, std::uint32_t dev_id,
         metrics::StatRegistry& reg);

  [[nodiscard]] std::uint32_t id() const noexcept { return id_; }

  // ---- host-facing (only meaningful on the host-attached device) --------
  /// Inject a request on `link`. Stalls when the link is out of
  /// flow-control tokens or the crossbar request queue is full.
  [[nodiscard]] Status send(RqstEntry entry, std::uint32_t link,
                            std::uint64_t cycle, trace::Tracer& tracer);

  /// True if a response is ready to eject on `link`.
  [[nodiscard]] bool rsp_ready(std::uint32_t link) const;

  /// Pop the next response on `link`; NoData when none is ready.
  [[nodiscard]] Status recv(std::uint32_t link, RspEntry& out);

  /// Topology hook: resolves the neighbour device a packet for `cub`
  /// should be forwarded to, or nullptr when unroutable from here.
  using Router = std::function<Device*(std::uint8_t cub)>;

  // ---- clock stages (driven by the Simulator) ----------------------------
  /// `prev` is the neighbour on the path toward the host (nullptr on the
  /// host-attached device).
  void clock_responses(std::uint64_t cycle, trace::Tracer& tracer,
                       Device* prev);
  void clock_vaults(std::uint64_t cycle, cmc::CmcRegistry* cmc,
                    cmc::CmcContext* cmc_ctx, trace::Tracer& tracer);
  void clock_requests(std::uint64_t cycle, trace::Tracer& tracer,
                      const Router& route);

  // ---- component access ----------------------------------------------------
  [[nodiscard]] mem::BackingStore& store() noexcept { return store_; }
  [[nodiscard]] const mem::BackingStore& store() const noexcept {
    return store_;
  }
  [[nodiscard]] Registers& regs() noexcept { return regs_; }
  [[nodiscard]] const Registers& regs() const noexcept { return regs_; }
  [[nodiscard]] const AddrMap& addr_map() const noexcept { return amap_; }
  [[nodiscard]] std::vector<Vault>& vaults() noexcept { return vaults_; }
  [[nodiscard]] const std::vector<Vault>& vaults() const noexcept {
    return vaults_;
  }
  [[nodiscard]] Xbar& xbar() noexcept { return xbar_; }
  [[nodiscard]] const Xbar& xbar() const noexcept { return xbar_; }
  [[nodiscard]] std::vector<Link>& links() noexcept { return links_; }
  [[nodiscard]] const std::vector<Link>& links() const noexcept {
    return links_;
  }
  [[nodiscard]] const sim::Config& config() const noexcept { return cfg_; }

  /// Chain ingress queues (requests/responses arriving from a neighbour).
  [[nodiscard]] FixedQueue<RqstEntry>& chain_rqst() noexcept {
    return chain_rqst_;
  }
  [[nodiscard]] FixedQueue<RspEntry>& chain_rsp() noexcept {
    return chain_rsp_;
  }

  /// Requests/responses forwarded to a neighbour cube (chain/star hops).
  [[nodiscard]] const metrics::Counter& forwarded_rqsts() const noexcept {
    return *forwarded_rqsts_;
  }
  [[nodiscard]] const metrics::Counter& forwarded_rsps() const noexcept {
    return *forwarded_rsps_;
  }

  /// Registry path prefix of this device ("cube{id}").
  [[nodiscard]] const std::string& stat_prefix() const noexcept {
    return prefix_;
  }

  // ---- DRAM fault injection / ECC / patrol scrub -------------------------
  [[nodiscard]] mem::FaultInjector& fault() noexcept { return fault_; }
  [[nodiscard]] const mem::FaultInjector& fault() const noexcept {
    return fault_;
  }
  /// Patrol scrub tick. Ordering contract: called immediately after this
  /// device's stage-B vault execution — in both the sequential core and
  /// the sharded core — so cross-device CMC reads under the serialized
  /// stage-B window observe the same overlay in every mode.
  void clock_scrub(std::uint64_t cycle) {
    if (fault_.enabled()) {
      fault_.clock_scrub(cycle);
    }
  }
  /// Next productive patrol-scrub cycle after `cycle` (UINT64_MAX when
  /// nothing is pending); feeds Simulator::next_event_cycle.
  [[nodiscard]] std::uint64_t next_fault_event(
      std::uint64_t cycle) const noexcept {
    return fault_.enabled() ? fault_.next_scrub_event(cycle) : UINT64_MAX;
  }

  // ---- active-set scheduling ---------------------------------------------
  // Every queue push registers its component on the owning per-stage
  // active set (a bitmask: 32 vaults fit a uint64, links a uint32);
  // components deregister when a stage drains them. The masks are a
  // conservative superset of the non-empty queues — a set bit with an
  // empty queue costs one wasted visit, but a clear bit guarantees the
  // queue is empty, which is what next_event_cycle() relies on.

  /// Stage A has something to move (vault responses, chain ingress, or a
  /// parked response retry awaiting redelivery).
  [[nodiscard]] bool rsp_stage_work() const noexcept {
    return vault_rsp_active_ != 0 || !chain_rsp_.empty() ||
           rsp_retry_links_ != 0;
  }
  /// Stage B has a vault with queued requests.
  [[nodiscard]] bool vault_stage_work() const noexcept {
    return vault_rqst_active_ != 0;
  }
  /// Stage C has something to route (crossbar queues, chain ingress, or a
  /// parked retry awaiting redelivery).
  [[nodiscard]] bool rqst_stage_work() const noexcept {
    return xbar_rqst_active_ != 0 || !chain_rqst_.empty() ||
           rqst_retry_links_ != 0;
  }
  /// A clock this cycle can make progress somewhere in this device.
  /// Excludes parked retries whose ready_cycle is in the future (see
  /// next_retry_ready()) and host-visible link response queues (draining
  /// them is recv()'s job, not the clock's).
  [[nodiscard]] bool has_queued_work() const noexcept {
    return vault_rqst_active_ != 0 || vault_rsp_active_ != 0 ||
           xbar_rqst_active_ != 0 || !chain_rqst_.empty() ||
           !chain_rsp_.empty();
  }
  /// Earliest ready_cycle over parked link-retry entries; UINT64_MAX when
  /// none are parked. Cached behind a dirty flag invalidated whenever
  /// retry state mutates, so the per-device horizon probe the scheduler
  /// (and the parallel core's span planner) performs every quiescent
  /// window is O(1) instead of a per-link rescan.
  [[nodiscard]] std::uint64_t next_retry_ready() const noexcept;

  /// Attach (or create) the per-operation execution counter for CMC
  /// command code `cmd` under `cube{id}.cmc.{name}.executed`. Called by
  /// the Simulator whenever a CMC operation (re)registers; idempotent.
  void attach_cmc_counter(std::uint8_t cmd, std::string_view name);

  /// Drop all in-flight packets and counters; memory contents survive.
  void reset_pipeline();

 private:
  sim::Config cfg_;
  std::uint32_t id_;
  metrics::StatRegistry* metrics_;
  std::string prefix_;
  mem::BackingStore store_;
  Registers regs_;
  AddrMap amap_;
  mem::FaultInjector fault_;
  std::vector<Vault> vaults_;
  Xbar xbar_;
  std::vector<Link> links_;
  FixedQueue<RqstEntry> chain_rqst_;
  FixedQueue<RspEntry> chain_rsp_;

  // ---- link-error injection + go-back-N retry ---------------------------
  /// Per-link, per-direction retry state. When a packet corrupts on link L
  /// the packet and *every* packet transmitted on L behind it queue here
  /// in original order (go-back-N) and replay together, still in order,
  /// once ready_cycle arrives. Depth is bounded by the link's flow-control
  /// tokens (requests) / the vault response queues (responses), so the
  /// deques never grow past the device's in-flight packet budget.
  struct LinkRetry {
    std::deque<RqstEntry> rqst;
    std::uint64_t rqst_ready = 0;
    std::deque<RspEntry> rsp;
    std::uint64_t rsp_ready = 0;
  };
  std::vector<LinkRetry> retry_;
  std::uint32_t rqst_retry_links_ = 0;  ///< Bit l: retry_[l].rqst non-empty.
  std::uint32_t rsp_retry_links_ = 0;   ///< Bit l: retry_[l].rsp non-empty.
  /// Memoized next_retry_ready(); valid while no park/drain/reset touched
  /// the retry FIFOs since the last recompute. With no retries parked the
  /// cache is UINT64_MAX and stays valid, making the common-case probe a
  /// single load.
  mutable std::uint64_t retry_ready_cache_ = UINT64_MAX;
  mutable bool retry_cache_valid_ = true;
  Xoshiro256 err_rng_;      ///< Request-direction error draws.
  Xoshiro256 rsp_err_rng_;  ///< Response-direction error draws.

  /// Deterministically decide whether a packet of `flits` FLITs suffers a
  /// transit error (per-FLIT probability from the configuration).
  [[nodiscard]] bool inject_error(std::uint32_t flits);
  [[nodiscard]] bool inject_rsp_error(std::uint32_t flits);
  /// Replay ready request-retry FIFOs into their crossbar queues, FIFO
  /// order per link (the head blocking blocks everything behind it).
  void drain_retries(std::uint64_t cycle, trace::Tracer& tracer);
  /// Replay ready response-retry FIFOs into their link response queues.
  void drain_rsp_retries(std::uint64_t cycle, trace::Tracer& tracer);
  /// Stage-A transmit of one response onto host link `l`: stamps the
  /// link-layer tail fields, reseals the CRC, rolls error injection, and
  /// routes the packet into the crossbar response queue or the link's
  /// retry FIFO. Returns false (consuming nothing) on budget or queue
  /// back-pressure.
  [[nodiscard]] bool transmit_rsp(RspEntry& head, std::uint32_t l,
                                  std::uint64_t cycle, trace::Tracer& tracer);

  /// Route one ingress queue toward vaults/neighbour cubes, spending at
  /// most `budget_flits` of forwarding bandwidth. Returns on the first
  /// head-of-line stall or on budget exhaustion (FIFO order preserved).
  void drain_rqst_queue(FixedQueue<RqstEntry>& q, Link* token_owner,
                        std::uint32_t budget_flits, std::uint64_t cycle,
                        trace::Tracer& tracer, const Router& route);

  /// Per-link response-direction forwarding budget scratch (sized once).
  std::vector<std::uint32_t> rsp_budget_;

  // ---- per-stage active sets (bit i == component i may have work) --------
  std::uint64_t vault_rqst_active_ = 0;  ///< Stage B: vault request queues.
  std::uint64_t vault_rsp_active_ = 0;   ///< Stage A: vault response queues.
  std::uint32_t xbar_rqst_active_ = 0;   ///< Stage C: crossbar link queues.

  /// Stage-A drain of one vault's response queue toward the host link
  /// (local cube) or the chain (remote cube). Clears the vault's stage-A
  /// bit when it empties.
  void drain_vault_rsp(std::uint32_t v, bool local, std::uint64_t cycle,
                       trace::Tracer& tracer);
  /// Stage-B execution of one vault, plus active-set bookkeeping.
  void run_vault(std::uint32_t v, std::uint64_t cycle, ExecEnv& env,
                 bool sample_depth, trace::Tracer& tracer);

  // Cold metrics members live past the per-cycle working set so the hot
  // clock-stage members above share as few cache lines as possible.
  metrics::Counter* forwarded_rqsts_;
  metrics::Counter* forwarded_rsps_;
  /// Per-raw-command-code CMC execution counters (null: no counter
  /// attached). Indexed by the 7-bit wire command code; handed to vaults
  /// through ExecEnv each clock.
  std::array<metrics::Counter*, 128> cmc_op_counters_{};
};

}  // namespace hmcsim::dev
