#include "dev/link.hpp"

#include <algorithm>

namespace hmcsim::dev {

Status Link::accept_request(std::uint32_t flits) {
  if (tokens_ < flits) {
    ++stats_.send_stalls;
    return Status::Stall("link out of flow-control tokens");
  }
  tokens_ -= flits;
  ++stats_.rqst_packets;
  stats_.rqst_flits += flits;
  return Status::Ok();
}

void Link::eject_response(std::uint32_t flits) {
  ++stats_.rsp_packets;
  stats_.rsp_flits += flits;
}

void Link::consume_flow(spec::Rqst rqst, std::uint32_t rtc) {
  ++stats_.flow_packets;
  if (rqst == spec::Rqst::TRET) {
    tokens_ = std::min(token_capacity_, tokens_ + rtc);
  }
}

void Link::reset() {
  tokens_ = token_capacity_;
  stats_ = LinkStats{};
}

}  // namespace hmcsim::dev
