#include "dev/link.hpp"

#include <algorithm>

namespace hmcsim::dev {

Link::Link(std::uint32_t token_capacity, metrics::StatRegistry& reg,
           const std::string& prefix)
    : tokens_(token_capacity),
      token_capacity_(token_capacity),
      rqst_packets_(&reg.counter(prefix + ".rqst_packets",
                                 "request packets accepted")),
      rqst_flits_(&reg.counter(prefix + ".rqst_flits",
                               "request FLITs accepted")),
      rsp_packets_(&reg.counter(prefix + ".rsp_packets",
                                "response packets ejected")),
      rsp_flits_(&reg.counter(prefix + ".rsp_flits",
                              "response FLITs ejected")),
      send_stalls_(&reg.counter(prefix + ".send_stalls",
                                "host sends rejected: queue full")),
      flow_packets_(&reg.counter(prefix + ".flow_packets",
                                 "NULL/PRET/TRET/IRTRY consumed")),
      flow_drops_(&reg.counter(prefix + ".flow_drops",
                               "corrupted flow packets dropped")),
      retries_(&reg.counter(prefix + ".retries",
                            "CRC-failure redeliveries")),
      rsp_retries_(&reg.counter(prefix + ".rsp_retries",
                                "response-direction CRC redeliveries")),
      retry_buffered_(&reg.gauge(prefix + ".retry_buffered_flits",
                                 "FLITs parked in retry buffers")) {}

Status Link::accept_request(std::uint32_t flits) {
  if (tokens_ < flits) {
    send_stalls_->inc();
    return Status::Stall("link out of flow-control tokens");
  }
  tokens_ -= flits;
  rqst_packets_->inc();
  rqst_flits_->inc(flits);
  return Status::Ok();
}

void Link::eject_response(std::uint32_t flits) {
  rsp_packets_->inc();
  rsp_flits_->inc(flits);
}

void Link::consume_flow(spec::Rqst rqst, std::uint32_t rtc) {
  flow_packets_->inc();
  if (rqst == spec::Rqst::TRET) {
    tokens_ = std::min(token_capacity_, tokens_ + rtc);
  }
}

void Link::reset() {
  tokens_ = token_capacity_;
  rqst_seq_ = 0;
  rsp_seq_ = 0;
  rqst_frp_ = 1;
  rsp_frp_ = 1;
  last_rqst_frp_ = 0;
  last_rsp_frp_ = 0;
  pending_rtc_ = 0;
  rqst_packets_->reset();
  rqst_flits_->reset();
  rsp_packets_->reset();
  rsp_flits_->reset();
  send_stalls_->reset();
  flow_packets_->reset();
  flow_drops_->reset();
  retries_->reset();
  rsp_retries_->reset();
  retry_buffered_->reset();
}

}  // namespace hmcsim::dev
