// link.hpp — host/cube link endpoint.
//
// The link is the ingress/egress point between host and device. HMC-Sim's
// latency model attributes queue occupancy to the crossbar, so the link
// itself carries flow-control token state (HMC's credit scheme: one token
// per crossbar queue FLIT slot) and FLIT-level traffic accounting used by
// the bandwidth benches. Counters live in the device's StatRegistry under
// `<prefix>.{rqst_packets,rqst_flits,rsp_packets,rsp_flits,send_stalls,
// flow_packets,retries}`; the link caches the handles at construction.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>

#include "common/status.hpp"
#include "metrics/stat_registry.hpp"
#include "spec/commands.hpp"

namespace hmcsim::dev {

class Link {
 public:
  Link(std::uint32_t token_capacity, metrics::StatRegistry& reg,
       const std::string& prefix);

  /// Account one request packet entering the device on this link and
  /// consume its FLIT tokens. Returns Stall when tokens are exhausted —
  /// token exhaustion and crossbar-queue fullness coincide by
  /// construction, so this models HMC's credit-based flow control.
  [[nodiscard]] Status accept_request(std::uint32_t flits);

  /// Account one response packet leaving the device; its FLIT tokens
  /// return to the host (the implicit TRET embedded in every response).
  void eject_response(std::uint32_t flits);

  /// Consume a link-layer flow packet (TRET returns tokens explicitly).
  void consume_flow(spec::Rqst rqst, std::uint32_t rtc);

  /// Return FLIT tokens to the host when a request leaves the crossbar
  /// queue (the implicit credit return of the HMC link protocol).
  void return_tokens(std::uint32_t flits) noexcept {
    tokens_ = std::min(token_capacity_, tokens_ + flits);
  }

  /// Record a rejected host send (full crossbar queue).
  void record_send_stall() noexcept { send_stalls_->inc(); }

  /// Record a link-layer CRC retry (corrupted packet redelivered).
  void record_retry() noexcept { retries_->inc(); }

  [[nodiscard]] std::uint32_t tokens() const noexcept { return tokens_; }
  [[nodiscard]] std::uint32_t token_capacity() const noexcept {
    return token_capacity_;
  }

  // ---- counters ----------------------------------------------------------
  [[nodiscard]] const metrics::Counter& rqst_packets() const noexcept {
    return *rqst_packets_;
  }
  [[nodiscard]] const metrics::Counter& rqst_flits() const noexcept {
    return *rqst_flits_;
  }
  [[nodiscard]] const metrics::Counter& rsp_packets() const noexcept {
    return *rsp_packets_;
  }
  [[nodiscard]] const metrics::Counter& rsp_flits() const noexcept {
    return *rsp_flits_;
  }
  [[nodiscard]] const metrics::Counter& send_stalls() const noexcept {
    return *send_stalls_;
  }
  [[nodiscard]] const metrics::Counter& flow_packets() const noexcept {
    return *flow_packets_;
  }
  [[nodiscard]] const metrics::Counter& retries() const noexcept {
    return *retries_;
  }

  void reset();

 private:
  std::uint32_t tokens_ = 0;
  std::uint32_t token_capacity_ = 0;
  metrics::Counter* rqst_packets_;
  metrics::Counter* rqst_flits_;
  metrics::Counter* rsp_packets_;
  metrics::Counter* rsp_flits_;
  metrics::Counter* send_stalls_;
  metrics::Counter* flow_packets_;
  metrics::Counter* retries_;
};

}  // namespace hmcsim::dev
