// link.hpp — host/cube link endpoint.
//
// The link is the ingress/egress point between host and device. HMC-Sim's
// latency model attributes queue occupancy to the crossbar, so the link
// itself carries flow-control token state (HMC's credit scheme: one token
// per crossbar queue FLIT slot) and FLIT-level traffic accounting used by
// the bandwidth benches.
#pragma once

#include <algorithm>
#include <cstdint>

#include "common/status.hpp"
#include "spec/commands.hpp"

namespace hmcsim::dev {

/// Per-link traffic statistics.
struct LinkStats {
  std::uint64_t rqst_packets = 0;
  std::uint64_t rqst_flits = 0;
  std::uint64_t rsp_packets = 0;
  std::uint64_t rsp_flits = 0;
  std::uint64_t send_stalls = 0;  ///< Host send() rejected: queue full.
  std::uint64_t flow_packets = 0; ///< NULL/PRET/TRET/IRTRY consumed.
  std::uint64_t retries = 0;      ///< CRC-failure redeliveries.
};

class Link {
 public:
  Link() = default;
  explicit Link(std::uint32_t token_capacity)
      : tokens_(token_capacity), token_capacity_(token_capacity) {}

  /// Account one request packet entering the device on this link and
  /// consume its FLIT tokens. Returns Stall when tokens are exhausted —
  /// token exhaustion and crossbar-queue fullness coincide by
  /// construction, so this models HMC's credit-based flow control.
  [[nodiscard]] Status accept_request(std::uint32_t flits);

  /// Account one response packet leaving the device; its FLIT tokens
  /// return to the host (the implicit TRET embedded in every response).
  void eject_response(std::uint32_t flits);

  /// Consume a link-layer flow packet (TRET returns tokens explicitly).
  void consume_flow(spec::Rqst rqst, std::uint32_t rtc);

  /// Return FLIT tokens to the host when a request leaves the crossbar
  /// queue (the implicit credit return of the HMC link protocol).
  void return_tokens(std::uint32_t flits) noexcept {
    tokens_ = std::min(token_capacity_, tokens_ + flits);
  }

  /// Record a rejected host send (full crossbar queue).
  void record_send_stall() noexcept { ++stats_.send_stalls; }

  /// Record a link-layer CRC retry (corrupted packet redelivered).
  void record_retry() noexcept { ++stats_.retries; }

  [[nodiscard]] std::uint32_t tokens() const noexcept { return tokens_; }
  [[nodiscard]] std::uint32_t token_capacity() const noexcept {
    return token_capacity_;
  }
  [[nodiscard]] const LinkStats& stats() const noexcept { return stats_; }

  void reset();

 private:
  std::uint32_t tokens_ = 0;
  std::uint32_t token_capacity_ = 0;
  LinkStats stats_;
};

}  // namespace hmcsim::dev
