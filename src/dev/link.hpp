// link.hpp — host/cube link endpoint.
//
// The link is the ingress/egress point between host and device. HMC-Sim's
// latency model attributes queue occupancy to the crossbar, so the link
// itself carries flow-control token state (HMC's credit scheme: one token
// per crossbar queue FLIT slot), FLIT-level traffic accounting used by the
// bandwidth benches, and the link-layer retry protocol state: per-direction
// SEQ/FRP transmit counters, the retry pointers piggybacked as RRP, and the
// pending token-return pool encoded into response RTC fields. Counters live
// in the device's StatRegistry under `<prefix>.{rqst_packets,rqst_flits,
// rsp_packets,rsp_flits,send_stalls,flow_packets,flow_drops,retries,
// rsp_retries}` plus the `<prefix>.retry_buffered_flits` gauge; the link
// caches the handles at construction.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>

#include "common/status.hpp"
#include "metrics/stat_registry.hpp"
#include "spec/commands.hpp"

namespace hmcsim::dev {

class Link {
 public:
  Link(std::uint32_t token_capacity, metrics::StatRegistry& reg,
       const std::string& prefix);

  /// Account one request packet entering the device on this link and
  /// consume its FLIT tokens. Returns Stall when tokens are exhausted —
  /// token exhaustion and crossbar-queue fullness coincide by
  /// construction, so this models HMC's credit-based flow control.
  [[nodiscard]] Status accept_request(std::uint32_t flits);

  /// Account one response packet leaving the device; its FLIT tokens
  /// return to the host (the implicit TRET embedded in every response).
  void eject_response(std::uint32_t flits);

  /// Consume a link-layer flow packet (TRET returns tokens explicitly).
  void consume_flow(spec::Rqst rqst, std::uint32_t rtc);

  /// Return FLIT tokens to the host when a request leaves the crossbar
  /// queue (the implicit credit return of the HMC link protocol). The
  /// returned credits also accrue to the pending-RTC pool drained by
  /// take_rtc() into response tails.
  void return_tokens(std::uint32_t flits) noexcept {
    tokens_ = std::min(token_capacity_, tokens_ + flits);
    pending_rtc_ += flits;
  }

  // ---- link-layer retry protocol ----------------------------------------
  // Per-direction 3-bit SEQ and 9-bit FRP counters, advanced once per
  // packet at its first transmission (replays keep their original stamps).
  // The last FRP transmitted in one direction is the RRP acknowledged in
  // the other.

  /// Next request-direction sequence number (3-bit, wraps).
  [[nodiscard]] std::uint8_t next_rqst_seq() noexcept {
    const std::uint8_t s = rqst_seq_;
    rqst_seq_ = static_cast<std::uint8_t>((rqst_seq_ + 1U) & 0x7U);
    return s;
  }
  /// Next request-direction forward retry pointer (9-bit, wraps).
  [[nodiscard]] std::uint16_t next_rqst_frp() noexcept {
    last_rqst_frp_ = rqst_frp_;
    rqst_frp_ = static_cast<std::uint16_t>((rqst_frp_ + 1U) & 0x1FFU);
    return last_rqst_frp_;
  }
  /// Next response-direction sequence number (3-bit, wraps).
  [[nodiscard]] std::uint8_t next_rsp_seq() noexcept {
    const std::uint8_t s = rsp_seq_;
    rsp_seq_ = static_cast<std::uint8_t>((rsp_seq_ + 1U) & 0x7U);
    return s;
  }
  /// Next response-direction forward retry pointer (9-bit, wraps).
  [[nodiscard]] std::uint16_t next_rsp_frp() noexcept {
    last_rsp_frp_ = rsp_frp_;
    rsp_frp_ = static_cast<std::uint16_t>((rsp_frp_ + 1U) & 0x1FFU);
    return last_rsp_frp_;
  }
  /// FRP of the last request transmitted (stamped as RRP on responses).
  [[nodiscard]] std::uint16_t last_rqst_frp() const noexcept {
    return last_rqst_frp_;
  }
  /// FRP of the last response transmitted (stamped as RRP on requests).
  [[nodiscard]] std::uint16_t last_rsp_frp() const noexcept {
    return last_rsp_frp_;
  }

  /// Drain up to 7 pending return credits (the 3-bit RTC field) for the
  /// tail of the response being transmitted.
  [[nodiscard]] std::uint8_t take_rtc() noexcept {
    const auto rtc = static_cast<std::uint8_t>(std::min<std::uint32_t>(
        pending_rtc_, 7U));
    pending_rtc_ -= rtc;
    return rtc;
  }
  [[nodiscard]] std::uint32_t pending_rtc() const noexcept {
    return pending_rtc_;
  }

  /// FLITs entering / leaving this link's retry buffers (both directions).
  void add_retry_buffered(std::uint32_t flits) noexcept {
    retry_buffered_->add(static_cast<double>(flits));
  }
  void sub_retry_buffered(std::uint32_t flits) noexcept {
    retry_buffered_->add(-static_cast<double>(flits));
  }

  /// Record a rejected host send (full crossbar queue).
  void record_send_stall() noexcept { send_stalls_->inc(); }

  /// Record a request-direction CRC retry (corrupted packet redelivered).
  void record_retry() noexcept { retries_->inc(); }

  /// Record a response-direction CRC retry.
  void record_rsp_retry() noexcept {
    retries_->inc();
    rsp_retries_->inc();
  }

  /// Record a corrupted flow packet (dropped, never retried).
  void record_flow_drop() noexcept { flow_drops_->inc(); }

  [[nodiscard]] std::uint32_t tokens() const noexcept { return tokens_; }
  [[nodiscard]] std::uint32_t token_capacity() const noexcept {
    return token_capacity_;
  }

  // ---- counters ----------------------------------------------------------
  [[nodiscard]] const metrics::Counter& rqst_packets() const noexcept {
    return *rqst_packets_;
  }
  [[nodiscard]] const metrics::Counter& rqst_flits() const noexcept {
    return *rqst_flits_;
  }
  [[nodiscard]] const metrics::Counter& rsp_packets() const noexcept {
    return *rsp_packets_;
  }
  [[nodiscard]] const metrics::Counter& rsp_flits() const noexcept {
    return *rsp_flits_;
  }
  [[nodiscard]] const metrics::Counter& send_stalls() const noexcept {
    return *send_stalls_;
  }
  [[nodiscard]] const metrics::Counter& flow_packets() const noexcept {
    return *flow_packets_;
  }
  [[nodiscard]] const metrics::Counter& flow_drops() const noexcept {
    return *flow_drops_;
  }
  [[nodiscard]] const metrics::Counter& retries() const noexcept {
    return *retries_;
  }
  [[nodiscard]] const metrics::Counter& rsp_retries() const noexcept {
    return *rsp_retries_;
  }
  [[nodiscard]] const metrics::Gauge& retry_buffered() const noexcept {
    return *retry_buffered_;
  }

  void reset();

 private:
  std::uint32_t tokens_ = 0;
  std::uint32_t token_capacity_ = 0;
  // ---- retry protocol state ---------------------------------------------
  std::uint8_t rqst_seq_ = 0;
  std::uint8_t rsp_seq_ = 0;
  std::uint16_t rqst_frp_ = 1;  ///< FRP 0 is the "nothing sent yet" RRP.
  std::uint16_t rsp_frp_ = 1;
  std::uint16_t last_rqst_frp_ = 0;
  std::uint16_t last_rsp_frp_ = 0;
  std::uint32_t pending_rtc_ = 0;
  metrics::Counter* rqst_packets_;
  metrics::Counter* rqst_flits_;
  metrics::Counter* rsp_packets_;
  metrics::Counter* rsp_flits_;
  metrics::Counter* send_stalls_;
  metrics::Counter* flow_packets_;
  metrics::Counter* flow_drops_;
  metrics::Counter* retries_;
  metrics::Counter* rsp_retries_;
  metrics::Gauge* retry_buffered_;
};

}  // namespace hmcsim::dev
