// addr_map.hpp — physical address decoding.
//
// HMC interleaves consecutive memory blocks across vaults, then banks
// ("low-interleave" default map of the 2.1 spec): the low bits address
// bytes within a block, the next 5 bits select the vault, the following
// bits select the bank, and the remainder is the DRAM (row) address. The
// map makes stride-1 streams fan out across all 32 vaults while a single
// hot address — the paper's shared mutex — always lands in one vault.
#pragma once

#include <cstdint>

#include "common/bits.hpp"
#include "sim/config.hpp"

namespace hmcsim::dev {

/// Decoded location of a physical address inside one cube.
struct DecodedAddr {
  std::uint32_t quad = 0;
  std::uint32_t vault = 0;  ///< Cube-wide vault index [0, 32).
  std::uint32_t bank = 0;
  std::uint64_t dram = 0;   ///< Block index within the bank.
};

class AddrMap {
 public:
  explicit AddrMap(const sim::Config& cfg) noexcept;

  [[nodiscard]] DecodedAddr decode(std::uint64_t addr) const noexcept;

  /// Inverse of decode: compose an address from a location (block-aligned).
  [[nodiscard]] std::uint64_t encode(const DecodedAddr& loc) const noexcept;

  [[nodiscard]] std::uint32_t block_size() const noexcept {
    return 1U << block_bits_;
  }
  [[nodiscard]] std::uint32_t num_vaults() const noexcept {
    return 1U << vault_bits_;
  }
  [[nodiscard]] std::uint32_t num_banks() const noexcept {
    return 1U << bank_bits_;
  }
  [[nodiscard]] std::uint32_t vaults_per_quad() const noexcept {
    return vaults_per_quad_;
  }

 private:
  unsigned block_bits_;
  unsigned vault_bits_;
  unsigned bank_bits_;
  std::uint32_t vaults_per_quad_;
};

}  // namespace hmcsim::dev
