// registers.hpp — per-device internal register file.
//
// HMC-Sim 1.0 exposed device internals through register read/write packets
// and a simulated JTAG API; both are carried forward here. MD_RD/MD_WR
// packets address registers by index via the packet ADRS field, and the
// Simulator's jtag_read/jtag_write methods access them directly.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.hpp"
#include "metrics/stat_registry.hpp"
#include "sim/config.hpp"

namespace hmcsim::dev {

/// Architected register indices.
enum class Reg : std::uint32_t {
  DeviceId = 0,     ///< CUB id of this device (RO).
  LinkConfig = 1,   ///< Number of host links (RO).
  Capacity = 2,     ///< Capacity in bytes (RO).
  BlockSize = 3,    ///< Interleave block size (RO).
  VaultDepth = 4,   ///< Vault request queue depth (RO).
  XbarDepth = 5,    ///< Crossbar queue depth per link (RO).
  Status = 6,       ///< Device status word (RO; 1 == operational).
  Error = 7,        ///< Sticky error word (RW; host clears by writing 0).
  CmcActive = 8,    ///< Number of active CMC operations (RO).
  ClockCount = 9,   ///< Cycles elapsed (RO).
  Scratch0 = 10,    ///< General-purpose scratch (RW).
  Scratch1 = 11,    ///< General-purpose scratch (RW).
  Scratch2 = 12,    ///< General-purpose scratch (RW).
  Scratch3 = 13,    ///< General-purpose scratch (RW).
  VendorId = 14,    ///< Constant vendor identification (RO).
  Revision = 15,    ///< Constant specification revision, BCD 0x21 (RO).
};

inline constexpr std::uint32_t kNumRegisters = 16;

/// Value reported in VendorId ("HMCS" in ASCII).
inline constexpr std::uint64_t kVendorId = 0x484D4353ULL;

/// Value reported in Revision (spec 2.1).
inline constexpr std::uint64_t kRevision = 0x21ULL;

[[nodiscard]] std::string_view to_string(Reg reg) noexcept;

class Registers {
 public:
  Registers() = default;

  /// Populate the RO identification registers from a configuration.
  void init(const sim::Config& cfg, std::uint32_t dev_id);

  /// As above, additionally registering access counters under
  /// `<prefix>.regs.{reads,writes}` (host-visible accesses only; poke/peek
  /// are side-band and not counted).
  void init(const sim::Config& cfg, std::uint32_t dev_id,
            metrics::StatRegistry& reg, const std::string& prefix);

  [[nodiscard]] Status read(std::uint32_t index, std::uint64_t& out) const;
  /// Host-visible write: rejects RO registers.
  [[nodiscard]] Status write(std::uint32_t index, std::uint64_t value);

  /// Internal (device-side) update: bypasses the RO mask.
  void poke(Reg reg, std::uint64_t value) noexcept {
    regs_[static_cast<std::uint32_t>(reg)] = value;
  }
  [[nodiscard]] std::uint64_t peek(Reg reg) const noexcept {
    return regs_[static_cast<std::uint32_t>(reg)];
  }

 private:
  [[nodiscard]] static bool writable(std::uint32_t index) noexcept;
  std::array<std::uint64_t, kNumRegisters> regs_{};
  // Null when constructed without a registry (standalone use in tests).
  metrics::Counter* reads_ = nullptr;
  metrics::Counter* writes_ = nullptr;
};

}  // namespace hmcsim::dev
