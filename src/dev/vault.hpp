// vault.hpp — vault controller: the execution stage of the cube.
//
// Each of the 32 vaults owns a bounded request queue and response queue and
// a set of DRAM banks. One simulator clock processes every request in the
// queue (HMC-Sim's timing-agnostic model: latency comes from queue hops and
// back-pressure, not per-operation service time). Execution dispatches on
// command kind: DRAM read/write, Gen2 atomic (AMO unit), mode register
// access, or a registered CMC operation — the paper's
// hmcsim_process_rqst() flow of Fig. 3.
//
// Statistics register under `<dev>.quad{q}.vault{v}.{leaf}` with per-bank
// conflict counters at `<dev>.quad{q}.vault{v}.bank{b}.conflicts`; the
// vault caches the handles at construction (no lookups on the hot path).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/fixed_queue.hpp"
#include "common/status.hpp"
#include "core/cmc_registry.hpp"
#include "dev/addr_map.hpp"
#include "dev/bank.hpp"
#include "dev/entries.hpp"
#include "dev/registers.hpp"
#include "mem/backing_store.hpp"
#include "metrics/stat_registry.hpp"
#include "sim/config.hpp"
#include "trace/trace.hpp"

namespace hmcsim::dev {

/// Everything a vault needs from its device to execute requests. Borrowed
/// for the duration of one process() call.
struct ExecEnv {
  mem::BackingStore& store;
  Registers& regs;
  const AddrMap& amap;
  /// Null when no CMC support is wired. Non-const: execute() mutates
  /// per-slot fault-containment state (failure streaks, quarantine).
  cmc::CmcRegistry* cmc;
  cmc::CmcContext* cmc_ctx;      ///< Plugin-visible context (may be null).
  trace::Tracer& tracer;
  const sim::Config& cfg;
  std::uint32_t dev_id;
  /// Per-command-code CMC execution counters indexed by raw command code
  /// (128 slots; null entries for codes with no attached counter). Null
  /// when the device has no per-op accounting wired.
  metrics::Counter* const* cmc_op_counters = nullptr;
};

class Vault {
 public:
  Vault(std::uint32_t quad, std::uint32_t vault_id, const sim::Config& cfg,
        metrics::StatRegistry& reg, const std::string& dev_prefix);

  /// Bounded queues (sized from Config: the paper's evaluation uses a
  /// request queue depth of 64).
  [[nodiscard]] FixedQueue<RqstEntry>& rqst_queue() noexcept {
    return rqst_q_;
  }
  [[nodiscard]] const FixedQueue<RqstEntry>& rqst_queue() const noexcept {
    return rqst_q_;
  }
  [[nodiscard]] FixedQueue<RspEntry>& rsp_queue() noexcept { return rsp_q_; }
  [[nodiscard]] const FixedQueue<RspEntry>& rsp_queue() const noexcept {
    return rsp_q_;
  }

  /// Execute every queued request that can make progress this cycle.
  /// Requests whose response cannot be enqueued (response queue full) or
  /// whose bank is busy (timing extension) remain queued in order.
  void process(std::uint64_t cycle, ExecEnv& env);

  // ---- counters ----------------------------------------------------------
  [[nodiscard]] const metrics::Counter& rqsts_processed() const noexcept {
    return *rqsts_processed_;
  }
  [[nodiscard]] const metrics::Counter& rsps_generated() const noexcept {
    return *rsps_generated_;
  }
  [[nodiscard]] const metrics::Counter& cmc_executed() const noexcept {
    return *cmc_executed_;
  }
  [[nodiscard]] const metrics::Counter& amo_executed() const noexcept {
    return *amo_executed_;
  }
  [[nodiscard]] const metrics::Counter& bank_conflicts() const noexcept {
    return *bank_conflicts_;
  }
  /// Requests deferred because the response queue was full.
  [[nodiscard]] const metrics::Counter& rsp_stalls() const noexcept {
    return *rsp_stalls_;
  }
  /// Requests answered with RSP_ERROR.
  [[nodiscard]] const metrics::Counter& errors() const noexcept {
    return *errors_;
  }
  /// Errors broken down by the ERRSTAT code carried in the response tail
  /// (index = 7-bit code; null for codes this device never reports).
  [[nodiscard]] const metrics::Counter* errstat_counter(
      std::uint8_t errstat) const noexcept {
    return errstat < errstat_counters_.size() ? errstat_counters_[errstat]
                                              : nullptr;
  }
  /// Conflict counter of one bank.
  [[nodiscard]] const metrics::Counter& bank_conflicts(
      std::uint32_t bank) const noexcept {
    return *bank_conflict_counters_[bank];
  }

  [[nodiscard]] std::uint32_t quad() const noexcept { return quad_; }
  [[nodiscard]] std::uint32_t id() const noexcept { return vault_id_; }
  [[nodiscard]] const std::vector<Bank>& banks() const noexcept {
    return banks_;
  }

  void reset();

 private:
  /// Execute one request; returns false when the entry must stay queued
  /// (back-pressure or bank conflict), true when it retired.
  [[nodiscard]] bool execute_entry(RqstEntry& entry, std::uint64_t cycle,
                                   ExecEnv& env);

  /// Push a response; false on full response queue. Non-const request:
  /// on success the journey slot index migrates to the response entry.
  [[nodiscard]] bool emit_response(RqstEntry& rqst,
                                   std::uint8_t rsp_cmd_code,
                                   std::uint32_t flits, bool atomic_flag,
                                   std::uint8_t errstat,
                                   std::span<const std::uint64_t> payload,
                                   std::uint64_t cycle, ExecEnv& env);

  /// Count one RSP_ERROR under the total and its per-ERRSTAT breakdown.
  void record_error(std::uint8_t errstat) noexcept {
    errors_->inc();
    if (errstat < errstat_counters_.size() &&
        errstat_counters_[errstat] != nullptr) {
      errstat_counters_[errstat]->inc();
    }
  }

  std::uint32_t quad_;
  std::uint32_t vault_id_;
  FixedQueue<RqstEntry> rqst_q_;
  FixedQueue<RspEntry> rsp_q_;
  std::vector<Bank> banks_;
  metrics::Counter* rqsts_processed_;
  metrics::Counter* rsps_generated_;
  metrics::Counter* cmc_executed_;
  metrics::Counter* amo_executed_;
  metrics::Counter* bank_conflicts_;
  metrics::Counter* rsp_stalls_;
  metrics::Counter* errors_;
  std::array<metrics::Counter*, 7> errstat_counters_{};
  std::vector<metrics::Counter*> bank_conflict_counters_;
  // Scratch retained across calls to avoid re-allocation in the hot loop.
  std::vector<RqstEntry> deferred_;
};

}  // namespace hmcsim::dev
