// vault.hpp — vault controller: the execution stage of the cube.
//
// Each of the 32 vaults owns a bounded request queue and response queue and
// a set of DRAM banks. One simulator clock processes every request in the
// queue (HMC-Sim's timing-agnostic model: latency comes from queue hops and
// back-pressure, not per-operation service time). Execution dispatches on
// command kind: DRAM read/write, Gen2 atomic (AMO unit), mode register
// access, or a registered CMC operation — the paper's
// hmcsim_process_rqst() flow of Fig. 3.
#pragma once

#include <cstdint>
#include <vector>

#include "common/fixed_queue.hpp"
#include "common/status.hpp"
#include "core/cmc_registry.hpp"
#include "dev/addr_map.hpp"
#include "dev/bank.hpp"
#include "dev/entries.hpp"
#include "dev/registers.hpp"
#include "mem/backing_store.hpp"
#include "sim/config.hpp"
#include "trace/trace.hpp"

namespace hmcsim::dev {

/// Everything a vault needs from its device to execute requests. Borrowed
/// for the duration of one process() call.
struct ExecEnv {
  mem::BackingStore& store;
  Registers& regs;
  const AddrMap& amap;
  const cmc::CmcRegistry* cmc;   ///< Null when no CMC support is wired.
  cmc::CmcContext* cmc_ctx;      ///< Plugin-visible context (may be null).
  trace::Tracer& tracer;
  const sim::Config& cfg;
  std::uint32_t dev_id;
};

/// Per-vault statistics (monotonic; reset() clears).
struct VaultStats {
  std::uint64_t rqsts_processed = 0;
  std::uint64_t rsps_generated = 0;
  std::uint64_t cmc_executed = 0;
  std::uint64_t amo_executed = 0;
  std::uint64_t bank_conflicts = 0;
  std::uint64_t rsp_stalls = 0;  ///< Requests deferred: response queue full.
  std::uint64_t errors = 0;      ///< Requests answered with RSP_ERROR.
};

class Vault {
 public:
  Vault(std::uint32_t quad, std::uint32_t vault_id, const sim::Config& cfg);

  /// Bounded queues (sized from Config: the paper's evaluation uses a
  /// request queue depth of 64).
  [[nodiscard]] FixedQueue<RqstEntry>& rqst_queue() noexcept {
    return rqst_q_;
  }
  [[nodiscard]] const FixedQueue<RqstEntry>& rqst_queue() const noexcept {
    return rqst_q_;
  }
  [[nodiscard]] FixedQueue<RspEntry>& rsp_queue() noexcept { return rsp_q_; }
  [[nodiscard]] const FixedQueue<RspEntry>& rsp_queue() const noexcept {
    return rsp_q_;
  }

  /// Execute every queued request that can make progress this cycle.
  /// Requests whose response cannot be enqueued (response queue full) or
  /// whose bank is busy (timing extension) remain queued in order.
  void process(std::uint64_t cycle, ExecEnv& env);

  [[nodiscard]] const VaultStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::uint32_t quad() const noexcept { return quad_; }
  [[nodiscard]] std::uint32_t id() const noexcept { return vault_id_; }
  [[nodiscard]] const std::vector<Bank>& banks() const noexcept {
    return banks_;
  }

  void reset();

 private:
  /// Execute one request; returns false when the entry must stay queued
  /// (back-pressure or bank conflict), true when it retired.
  [[nodiscard]] bool execute_entry(RqstEntry& entry, std::uint64_t cycle,
                                   ExecEnv& env);

  /// Push a response; false on full response queue.
  [[nodiscard]] bool emit_response(const RqstEntry& rqst,
                                   std::uint8_t rsp_cmd_code,
                                   std::uint32_t flits, bool atomic_flag,
                                   std::uint8_t errstat,
                                   std::span<const std::uint64_t> payload,
                                   std::uint64_t cycle, ExecEnv& env);

  std::uint32_t quad_;
  std::uint32_t vault_id_;
  FixedQueue<RqstEntry> rqst_q_;
  FixedQueue<RspEntry> rsp_q_;
  std::vector<Bank> banks_;
  VaultStats stats_;
  // Scratch retained across calls to avoid re-allocation in the hot loop.
  std::vector<RqstEntry> deferred_;
};

}  // namespace hmcsim::dev
