// vault.hpp — vault controller: the execution stage of the cube.
//
// Each of the 32 vaults owns a bounded request queue and response queue and
// a set of DRAM banks. One simulator clock processes every request in the
// queue (HMC-Sim's timing-agnostic model: latency comes from queue hops and
// back-pressure, not per-operation service time). Execution dispatches on
// command kind: DRAM read/write, Gen2 atomic (AMO unit), mode register
// access, or a registered CMC operation — the paper's
// hmcsim_process_rqst() flow of Fig. 3.
//
// Statistics register under `<dev>.quad{q}.vault{v}.{leaf}` with per-bank
// conflict counters at `<dev>.quad{q}.vault{v}.bank{b}.conflicts`; the
// vault caches the handles at construction (no lookups on the hot path).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/fixed_queue.hpp"
#include "common/status.hpp"
#include "core/cmc_registry.hpp"
#include "dev/addr_map.hpp"
#include "dev/bank.hpp"
#include "dev/entries.hpp"
#include "dev/registers.hpp"
#include "mem/backing_store.hpp"
#include "mem/fault.hpp"
#include "metrics/stat_registry.hpp"
#include "sim/config.hpp"
#include "trace/trace.hpp"

namespace hmcsim::dev {

/// Everything a vault needs from its device to execute requests. Borrowed
/// for the duration of one process() call.
struct ExecEnv {
  mem::BackingStore& store;
  Registers& regs;
  const AddrMap& amap;
  /// Null when no CMC support is wired. Non-const: execute() mutates
  /// per-slot fault-containment state (failure streaks, quarantine).
  cmc::CmcRegistry* cmc;
  cmc::CmcContext* cmc_ctx;      ///< Plugin-visible context (may be null).
  trace::Tracer& tracer;
  const sim::Config& cfg;
  std::uint32_t dev_id;
  /// Per-command-code CMC execution counters indexed by raw command code
  /// (128 slots; null entries for codes with no attached counter). Null
  /// when the device has no per-op accounting wired.
  metrics::Counter* const* cmc_op_counters = nullptr;
  /// DRAM fault/ECC model; null when fault injection is not configured,
  /// which keeps the read path a single branch.
  mem::FaultInjector* fault = nullptr;
};

class Vault {
 public:
  Vault(std::uint32_t quad, std::uint32_t vault_id, const sim::Config& cfg,
        metrics::StatRegistry& reg, const std::string& dev_prefix);

  /// Bounded queues (sized from Config: the paper's evaluation uses a
  /// request queue depth of 64).
  [[nodiscard]] FixedQueue<RqstEntry>& rqst_queue() noexcept {
    return rqst_q_;
  }
  [[nodiscard]] const FixedQueue<RqstEntry>& rqst_queue() const noexcept {
    return rqst_q_;
  }
  [[nodiscard]] FixedQueue<RspEntry>& rsp_queue() noexcept { return rsp_q_; }
  [[nodiscard]] const FixedQueue<RspEntry>& rsp_queue() const noexcept {
    return rsp_q_;
  }

  /// Execute every queued request that can make progress this cycle.
  /// Requests whose response cannot be enqueued (response queue full) or
  /// whose bank is busy (timing extension) remain queued in order.
  void process(std::uint64_t cycle, ExecEnv& env);

  // ---- counters ----------------------------------------------------------
  [[nodiscard]] const metrics::Counter& rqsts_processed() const noexcept {
    return *rqsts_processed_;
  }
  [[nodiscard]] const metrics::Counter& rsps_generated() const noexcept {
    return *rsps_generated_;
  }
  [[nodiscard]] const metrics::Counter& cmc_executed() const noexcept {
    return *cmc_executed_;
  }
  [[nodiscard]] const metrics::Counter& amo_executed() const noexcept {
    return *amo_executed_;
  }
  [[nodiscard]] const metrics::Counter& bank_conflicts() const noexcept {
    return *bank_conflicts_;
  }
  /// Requests deferred because the response queue was full.
  [[nodiscard]] const metrics::Counter& rsp_stalls() const noexcept {
    return *rsp_stalls_;
  }
  /// Requests answered with RSP_ERROR.
  [[nodiscard]] const metrics::Counter& errors() const noexcept {
    return *errors_;
  }
  /// Errors broken down by the ERRSTAT code carried in the response tail
  /// (index = 7-bit code; null for codes this device never reports).
  [[nodiscard]] const metrics::Counter* errstat_counter(
      std::uint8_t errstat) const noexcept {
    return errstat < errstat_counters_.size() ? errstat_counters_[errstat]
                                              : nullptr;
  }
  /// Conflict counter of one bank.
  [[nodiscard]] const metrics::Counter& bank_conflicts(
      std::uint32_t bank) const noexcept {
    return *bank_conflict_counters_[bank];
  }

  [[nodiscard]] std::uint32_t quad() const noexcept { return quad_; }
  [[nodiscard]] std::uint32_t id() const noexcept { return vault_id_; }
  [[nodiscard]] const std::vector<Bank>& banks() const noexcept {
    return banks_;
  }

  void reset();

 private:
  /// A fully-executed request whose response could not be enqueued yet
  /// (response queue full). The request's side effects happened exactly
  /// once when it executed; later cycles only retry the push and then run
  /// the retirement bookkeeping captured here. Re-executing the request
  /// each blocked cycle instead — the previous behaviour — double-applied
  /// atomics and CMC operations under response-queue pressure and made a
  /// blocked vault's clock cost scale with its queue occupancy.
  struct StagedRetire {
    RspEntry rsp;             ///< Built response, journey already migrated.
    std::string_view op;      ///< Command mnemonic (stall/Rsp trace replay).
    std::string_view extra_op;      ///< Name carried by the extra event.
    std::uint64_t addr = 0;         ///< Request address for trace replay.
    std::uint64_t extra_value = 0;  ///< Value carried by the extra event.
    metrics::Counter* cmc_op_counter = nullptr;
    std::uint32_t rsp_flits = 0;    ///< Rsp trace event value.
    std::uint32_t bank = 0;         ///< Bank to occupy/touch at retirement.
    std::uint16_t tag = 0;
    /// Trace event emitted after the response (None, Cmc or Register).
    trace::Level extra_trace = trace::Level::None;
    std::uint8_t src_link = 0;
    std::uint8_t errstat = 0;   ///< Non-zero: record_error at retirement.
    bool occupy = false;        ///< Bank access happens at retirement.
    bool count_amo = false;
    bool count_cmc = false;
    bool error_rsp = false;     ///< Journey error flag for the response.
  };

  /// Execute one request; returns false when the entry must stay queued
  /// (back-pressure or bank conflict), true when it retired. On a
  /// back-pressure false return, staged_armed_ is set and staged_ holds
  /// the built response for replay on a later cycle.
  [[nodiscard]] bool execute_entry(RqstEntry& entry, std::uint64_t cycle,
                                   ExecEnv& env);

  /// Reset staged_'s metadata for one request's execution.
  void stage_begin(const RqstEntry& rqst);

  /// Roll deterministic fault injection + SEC-DED over a read payload
  /// (env.fault must be non-null). Returns true when every word is clean
  /// or single-bit-corrected, false when any word carries an
  /// uncorrectable error — the caller must poison the response.
  [[nodiscard]] bool check_ecc(const RqstEntry& entry, std::uint64_t addr,
                               std::span<const std::uint64_t> words,
                               std::uint32_t bank, std::uint64_t cycle,
                               ExecEnv& env);

  /// Build the response into staged_ and attempt to retire it. On a full
  /// response queue the staged record stays armed for later cycles and
  /// this returns false. Non-const request: the journey slot index
  /// migrates to the staged response.
  [[nodiscard]] bool finish_response(RqstEntry& rqst,
                                     std::uint8_t rsp_cmd_code,
                                     std::uint32_t flits, bool atomic_flag,
                                     std::span<const std::uint64_t> payload,
                                     std::uint64_t cycle, ExecEnv& env);

  /// Push a staged response and run its retirement bookkeeping; false (and
  /// one rsp_stalls count, matching the per-cycle stall accounting of the
  /// re-execution model) when the response queue is full.
  [[nodiscard]] bool try_retire(StagedRetire& staged, std::uint64_t cycle,
                                ExecEnv& env);

  /// Count one RSP_ERROR under the total and its per-ERRSTAT breakdown.
  void record_error(std::uint8_t errstat) noexcept {
    errors_->inc();
    if (errstat < errstat_counters_.size() &&
        errstat_counters_[errstat] != nullptr) {
      errstat_counters_[errstat]->inc();
    }
  }

  std::uint32_t quad_;
  std::uint32_t vault_id_;
  FixedQueue<RqstEntry> rqst_q_;
  FixedQueue<RspEntry> rsp_q_;
  std::vector<Bank> banks_;
  metrics::Counter* rqsts_processed_;
  metrics::Counter* rsps_generated_;
  metrics::Counter* cmc_executed_;
  metrics::Counter* amo_executed_;
  metrics::Counter* bank_conflicts_;
  metrics::Counter* rsp_stalls_;
  metrics::Counter* errors_;
  std::array<metrics::Counter*, 8> errstat_counters_{};
  std::vector<metrics::Counter*> bank_conflict_counters_;
  /// No staged response: the entry has not executed yet (fresh arrival, or
  /// a bank-conflict deferral that must re-attempt execution).
  static constexpr std::uint32_t kNoStage = UINT32_MAX;
  // Staged retirements live in a pool and are referenced by index so that
  // a blocked cycle shuffles 4-byte handles, never the records themselves:
  // pending_[i] belongs to the i-th entry from the queue front (deferred
  // entries always stay ahead of new arrivals, so the alignment holds).
  std::vector<StagedRetire> stage_pool_;
  std::vector<std::uint32_t> stage_free_;
  std::vector<std::uint32_t> pending_;
  std::vector<std::uint32_t> next_pending_;
  StagedRetire staged_;        ///< Scratch for the request being executed.
  bool staged_armed_ = false;  ///< execute_entry staged a blocked response.
};

}  // namespace hmcsim::dev
