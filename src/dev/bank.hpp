// bank.hpp — DRAM bank occupancy model.
//
// HMC-Sim is timing-agnostic by default: banks are pure bookkeeping and a
// request never stalls on one. With Config::model_bank_conflicts enabled
// (an extension the paper lists as future work), a bank stays busy for
// bank_busy_cycles after each access and conflicting requests stall in the
// vault queue.
#pragma once

#include <cstdint>

namespace hmcsim::dev {

class Bank {
 public:
  /// True if the bank can accept an access at `cycle`.
  [[nodiscard]] bool available(std::uint64_t cycle) const noexcept {
    return cycle >= busy_until_;
  }

  /// Mark the bank busy until cycle + busy_cycles.
  void occupy(std::uint64_t cycle, std::uint32_t busy_cycles) noexcept {
    busy_until_ = cycle + busy_cycles;
    ++accesses_;
  }

  /// Record an access without occupancy (timing-agnostic mode).
  void touch() noexcept { ++accesses_; }

  [[nodiscard]] std::uint64_t accesses() const noexcept { return accesses_; }
  [[nodiscard]] std::uint64_t busy_until() const noexcept {
    return busy_until_;
  }

  void reset() noexcept {
    busy_until_ = 0;
    accesses_ = 0;
  }

 private:
  std::uint64_t busy_until_ = 0;
  std::uint64_t accesses_ = 0;
};

}  // namespace hmcsim::dev
