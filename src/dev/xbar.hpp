// xbar.hpp — the logic-layer crossbar.
//
// The crossbar owns one request queue and one response queue per host link
// (the paper's evaluation fixes their depth at 128 slots). Each simulator
// clock drains request queues toward vault queues and accepts responses
// from vault response queues; both directions stall on fullness, and a
// stalled head blocks everything behind it in the same link queue —
// head-of-line blocking is the mechanism that differentiates 4-link and
// 8-link devices once a single vault hot-spots. Counters register under
// `<prefix>.{rqsts_routed,rsps_routed,rqst_stalls,rsp_stalls,
// rqst_bw_throttles,rsp_bw_throttles}`.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/fixed_queue.hpp"
#include "dev/entries.hpp"
#include "metrics/stat_registry.hpp"
#include "sim/config.hpp"

namespace hmcsim::dev {

class Xbar {
 public:
  Xbar(std::uint32_t num_links, std::uint32_t depth,
       metrics::StatRegistry& reg, const std::string& prefix);

  [[nodiscard]] std::uint32_t num_links() const noexcept {
    return static_cast<std::uint32_t>(rqst_qs_.size());
  }

  [[nodiscard]] FixedQueue<RqstEntry>& rqst_queue(std::uint32_t link) {
    return rqst_qs_[link];
  }
  [[nodiscard]] const FixedQueue<RqstEntry>& rqst_queue(
      std::uint32_t link) const {
    return rqst_qs_[link];
  }
  [[nodiscard]] FixedQueue<RspEntry>& rsp_queue(std::uint32_t link) {
    return rsp_qs_[link];
  }
  [[nodiscard]] const FixedQueue<RspEntry>& rsp_queue(
      std::uint32_t link) const {
    return rsp_qs_[link];
  }

  // ---- counters (mutable: the owning Device increments these while
  // routing) --------------------------------------------------------------
  [[nodiscard]] metrics::Counter& rqsts_routed() noexcept {
    return *rqsts_routed_;
  }
  [[nodiscard]] metrics::Counter& rsps_routed() noexcept {
    return *rsps_routed_;
  }
  /// Head blocked on a full vault queue.
  [[nodiscard]] metrics::Counter& rqst_stalls() noexcept {
    return *rqst_stalls_;
  }
  /// Vault response blocked on a full link response queue.
  [[nodiscard]] metrics::Counter& rsp_stalls() noexcept {
    return *rsp_stalls_;
  }
  /// Forwarding budget exhausted (request direction).
  [[nodiscard]] metrics::Counter& rqst_bw_throttles() noexcept {
    return *rqst_bw_throttles_;
  }
  /// Forwarding budget exhausted (response direction).
  [[nodiscard]] metrics::Counter& rsp_bw_throttles() noexcept {
    return *rsp_bw_throttles_;
  }

  [[nodiscard]] const metrics::Counter& rqsts_routed() const noexcept {
    return *rqsts_routed_;
  }
  [[nodiscard]] const metrics::Counter& rsps_routed() const noexcept {
    return *rsps_routed_;
  }
  [[nodiscard]] const metrics::Counter& rqst_stalls() const noexcept {
    return *rqst_stalls_;
  }
  [[nodiscard]] const metrics::Counter& rsp_stalls() const noexcept {
    return *rsp_stalls_;
  }
  [[nodiscard]] const metrics::Counter& rqst_bw_throttles() const noexcept {
    return *rqst_bw_throttles_;
  }
  [[nodiscard]] const metrics::Counter& rsp_bw_throttles() const noexcept {
    return *rsp_bw_throttles_;
  }

  void reset();

 private:
  std::vector<FixedQueue<RqstEntry>> rqst_qs_;
  std::vector<FixedQueue<RspEntry>> rsp_qs_;
  metrics::Counter* rqsts_routed_;
  metrics::Counter* rsps_routed_;
  metrics::Counter* rqst_stalls_;
  metrics::Counter* rsp_stalls_;
  metrics::Counter* rqst_bw_throttles_;
  metrics::Counter* rsp_bw_throttles_;
};

}  // namespace hmcsim::dev
