// xbar.hpp — the logic-layer crossbar.
//
// The crossbar owns one request queue and one response queue per host link
// (the paper's evaluation fixes their depth at 128 slots). Each simulator
// clock drains request queues toward vault queues and accepts responses
// from vault response queues; both directions stall on fullness, and a
// stalled head blocks everything behind it in the same link queue —
// head-of-line blocking is the mechanism that differentiates 4-link and
// 8-link devices once a single vault hot-spots.
#pragma once

#include <cstdint>
#include <vector>

#include "common/fixed_queue.hpp"
#include "dev/entries.hpp"
#include "sim/config.hpp"

namespace hmcsim::dev {

/// Per-crossbar statistics.
struct XbarStats {
  std::uint64_t rqsts_routed = 0;
  std::uint64_t rsps_routed = 0;
  std::uint64_t rqst_stalls = 0;  ///< Head blocked on a full vault queue.
  std::uint64_t rsp_stalls = 0;   ///< Vault response blocked on a full
                                  ///< link response queue.
  std::uint64_t rqst_bw_throttles = 0;  ///< Forwarding budget exhausted
                                        ///< (request direction).
  std::uint64_t rsp_bw_throttles = 0;   ///< Forwarding budget exhausted
                                        ///< (response direction).
};

class Xbar {
 public:
  Xbar(std::uint32_t num_links, std::uint32_t depth);

  [[nodiscard]] std::uint32_t num_links() const noexcept {
    return static_cast<std::uint32_t>(rqst_qs_.size());
  }

  [[nodiscard]] FixedQueue<RqstEntry>& rqst_queue(std::uint32_t link) {
    return rqst_qs_[link];
  }
  [[nodiscard]] const FixedQueue<RqstEntry>& rqst_queue(
      std::uint32_t link) const {
    return rqst_qs_[link];
  }
  [[nodiscard]] FixedQueue<RspEntry>& rsp_queue(std::uint32_t link) {
    return rsp_qs_[link];
  }
  [[nodiscard]] const FixedQueue<RspEntry>& rsp_queue(
      std::uint32_t link) const {
    return rsp_qs_[link];
  }

  [[nodiscard]] XbarStats& stats() noexcept { return stats_; }
  [[nodiscard]] const XbarStats& stats() const noexcept { return stats_; }

  void reset();

 private:
  std::vector<FixedQueue<RqstEntry>> rqst_qs_;
  std::vector<FixedQueue<RspEntry>> rsp_qs_;
  XbarStats stats_;
};

}  // namespace hmcsim::dev
