#include "host/thread_sim.hpp"

namespace hmcsim::host {

ThreadSim::ThreadSim(sim::Simulator& sim, std::uint32_t num_threads)
    : sim_(sim),
      threads_(num_threads),
      tag_to_tid_(num_threads, 0),
      retries_stat_(&sim.metrics().counter(
          "host.threads.send_retries",
          "sends retried after a link stall (all ThreadSims)")) {
  // One outstanding request per thread lets tags be thread ids directly;
  // the 11-bit TAG field caps the thread count.
  if (num_threads > spec::kMaxTag) {
    threads_.resize(spec::kMaxTag);
    tag_to_tid_.resize(spec::kMaxTag);
  }
  sim.metrics()
      .gauge("host.threads.count", "threads of the latest ThreadSim")
      .set(static_cast<double>(threads_.size()));
  for (std::uint32_t t = 0; t < tag_to_tid_.size(); ++t) {
    tag_to_tid_[t] = t;
  }
}

Status ThreadSim::issue(std::uint32_t tid, const spec::RqstParams& params) {
  if (tid >= threads_.size()) {
    return Status::InvalidArg("thread id out of range");
  }
  ThreadState& t = threads_[tid];
  if (t.outstanding || t.pending) {
    return Status::InvalidState("thread " + std::to_string(tid) +
                                " already has a request in flight");
  }
  t.request = params;
  t.request.tag = static_cast<std::uint16_t>(tid);
  t.pending = true;
  try_send(tid);
  return Status::Ok();
}

void ThreadSim::try_send(std::uint32_t tid) {
  ThreadState& t = threads_[tid];
  const Status s = sim_.send(t.request, link_for(tid));
  if (s.ok()) {
    t.pending = false;
    // Posted requests never produce a response; the thread is immediately
    // free to issue again.
    bool posted;
    if (spec::is_cmc(t.request.rqst)) {
      const cmc::CmcOp* op = sim_.cmc_registry().lookup(t.request.rqst);
      posted = op == nullptr || op->posted();
    } else {
      posted = spec::command_info(t.request.rqst).rsp_flits == 0;
    }
    t.outstanding = !posted;
  } else if (s.stalled()) {
    ++send_retries_;  // Stay pending; retried next step().
    retries_stat_->inc();
  } else {
    // Hard error: drop the request so the thread does not hang forever.
    t.pending = false;
    t.outstanding = false;
  }
}

void ThreadSim::step(const std::function<void(const Completion&)>& on_rsp) {
  // Retry stalled sends in tid order before the clock so a freed queue
  // slot is claimed deterministically.
  bool any_pending = false;
  for (std::uint32_t tid = 0; tid < threads_.size(); ++tid) {
    if (threads_[tid].pending) {
      try_send(tid);
      any_pending |= threads_[tid].pending;
    }
  }

  // Quiescence fast-forward: when no send is waiting to enter the device,
  // no response is waiting to leave it, and the device itself cannot make
  // progress before some future cycle (a parked link retry), jump there
  // instead of clocking dead cycles one by one. With every thread blocked
  // in a spin-wait this is where the simulated time between retries goes.
  bool rsp_waiting = false;
  for (std::uint32_t link = 0; link < sim_.config().num_links; ++link) {
    if (sim_.rsp_ready(link)) {
      rsp_waiting = true;
      break;
    }
  }
  const std::uint64_t ne = sim_.next_event_cycle();
  if (!sim_.config().exhaustive_clock && !any_pending && !rsp_waiting &&
      ne != sim::Simulator::kNoEvent && ne > sim_.cycle() + 1) {
    sim_.clock_until(ne);
  } else {
    sim_.clock();
  }

  // Drain every ready response on every link.
  for (std::uint32_t link = 0; link < sim_.config().num_links; ++link) {
    while (sim_.rsp_ready(link)) {
      Completion c;
      if (!sim_.recv(link, c.rsp).ok()) {
        break;
      }
      const std::uint16_t tag = c.rsp.pkt.tag();
      if (tag >= threads_.size()) {
        continue;  // Response to traffic issued outside this ThreadSim.
      }
      c.tid = tag_to_tid_[tag];
      threads_[c.tid].outstanding = false;
      if (on_rsp) {
        on_rsp(c);
      }
    }
  }
}

}  // namespace hmcsim::host
