// thread_sim.hpp — cooperative simulated-host thread scheduler.
//
// The paper drives its evaluation with N logical host threads, each with at
// most one outstanding HMC request, assigned to host links round-robin
// (tid mod links). ThreadSim provides that substrate: tag allocation,
// link assignment, stall-retry bookkeeping, and a step() that advances the
// device one cycle and routes completed responses back to per-thread
// handlers. Determinism: threads are always scanned in tid order.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/status.hpp"
#include "metrics/stat_registry.hpp"
#include "sim/simulator.hpp"

namespace hmcsim::host {

/// Identifies the response delivered to a thread.
struct Completion {
  std::uint32_t tid = 0;
  sim::Response rsp;
};

class ThreadSim {
 public:
  /// `sim` must outlive the ThreadSim.
  ThreadSim(sim::Simulator& sim, std::uint32_t num_threads);

  [[nodiscard]] std::uint32_t num_threads() const noexcept {
    return static_cast<std::uint32_t>(threads_.size());
  }

  /// Host link a thread's traffic uses (round-robin by thread id).
  [[nodiscard]] std::uint32_t link_for(std::uint32_t tid) const noexcept {
    return tid % sim_.config().num_links;
  }

  /// Queue a request for `tid`. The tag field is assigned internally; at
  /// most one request may be outstanding per thread. If the link stalls,
  /// the request is retried automatically on following cycles.
  [[nodiscard]] Status issue(std::uint32_t tid,
                             const spec::RqstParams& params);

  /// True when `tid` has neither an outstanding nor a pending request.
  [[nodiscard]] bool idle(std::uint32_t tid) const noexcept {
    const ThreadState& t = threads_[tid];
    return !t.outstanding && !t.pending;
  }

  /// Advance one cycle: retry stalled sends, clock the device, then drain
  /// every link's ready responses into `on_rsp` (which may call issue()).
  /// When nothing is pending, ready, or able to progress before a known
  /// future cycle (a parked link retry), the intervening dead cycles are
  /// fast-forwarded instead of clocked — observably identical, and
  /// disabled entirely by Config::exhaustive_clock.
  void step(const std::function<void(const Completion&)>& on_rsp);

  /// Total send stalls observed (retries), for queue-pressure analysis.
  [[nodiscard]] std::uint64_t send_retries() const noexcept {
    return send_retries_;
  }

  [[nodiscard]] sim::Simulator& simulator() noexcept { return sim_; }

 private:
  struct ThreadState {
    bool outstanding = false;  ///< Request in flight (device side).
    bool pending = false;      ///< Request waiting to enter the device.
    spec::RqstParams request;  ///< Pending request parameters.
  };

  /// Try to push a thread's pending request into the device.
  void try_send(std::uint32_t tid);

  sim::Simulator& sim_;
  std::vector<ThreadState> threads_;
  std::vector<std::uint32_t> tag_to_tid_;  ///< Indexed by tag.
  std::uint64_t send_retries_ = 0;  ///< This ThreadSim only.
  /// Global (registry) retry counter: `host.threads.send_retries`.
  metrics::Counter* retries_stat_;
};

}  // namespace hmcsim::host
