#include "host/mutex_driver.hpp"

#include <algorithm>
#include <array>

namespace hmcsim::host {
namespace {

enum class Phase : std::uint8_t {
  SendLock,
  WaitLock,
  SendTrylock,
  WaitTrylock,
  Backoff,  ///< Waiting out opts.trylock_backoff before the next TRYLOCK.
  SendUnlock,
  WaitUnlock,
  Done,
};

struct ThreadFsm {
  Phase phase = Phase::SendLock;
  std::uint64_t done_cycle = 0;
  std::uint64_t wake_cycle = 0;  ///< First cycle to retry (Backoff only).
};

}  // namespace

Status run_mutex_contention(sim::Simulator& sim, std::uint32_t threads,
                            const MutexOptions& opts, MutexResult& out) {
  if (threads == 0) {
    return Status::InvalidArg("need at least one thread");
  }
  for (const spec::Rqst op :
       {spec::Rqst::CMC125, spec::Rqst::CMC126, spec::Rqst::CMC127}) {
    if (sim.cmc_registry().lookup(op) == nullptr) {
      return Status::InvalidState(
          "mutex CMC operations not registered (need CMC125/126/127)");
    }
  }
  if (opts.lock_addr % 16 != 0) {
    return Status::InvalidArg("lock structure must be 16-byte aligned");
  }
  if (opts.num_locks == 0 || opts.lock_stride % 16 != 0) {
    return Status::InvalidArg(
        "need at least one lock and a 16-byte aligned stride");
  }
  const auto lock_addr_of = [&opts](std::uint32_t tid) {
    return opts.lock_addr + opts.lock_stride * (tid % opts.num_locks);
  };

  // Known initial state: every lock free, owner undefined (zeroed).
  const std::array<std::uint8_t, 16> zero{};
  for (std::uint32_t l = 0; l < opts.num_locks; ++l) {
    if (Status s = sim.mem_write(
            opts.cub, opts.lock_addr + opts.lock_stride * l, zero);
        !s.ok()) {
      return s;
    }
  }

  out = MutexResult{};
  out.threads = threads;
  out.per_thread_cycles.assign(threads, 0);

  ThreadSim ts(sim, threads);
  std::vector<ThreadFsm> fsm(threads);
  const std::uint64_t start_cycle = sim.cycle();
  const std::uint64_t ff_start = sim.fast_forwarded_cycles();
  std::uint32_t done_count = 0;

  auto tid_token = [](std::uint32_t tid) -> std::uint64_t {
    return static_cast<std::uint64_t>(tid) + 1;  // 0 is "lock free".
  };

  // Stalled sends are retried by ThreadSim with the same RqstParams, whose
  // payload is a non-owning span — so each thread's payload lives here,
  // not on a transient stack frame.
  std::vector<std::array<std::uint64_t, 2>> payloads(threads);

  auto send = [&](std::uint32_t tid, spec::Rqst op) -> Status {
    payloads[tid] = {tid_token(tid), 0};
    spec::RqstParams params;
    params.rqst = op;
    params.addr = lock_addr_of(tid);
    params.cub = opts.cub;
    params.payload = payloads[tid];
    return ts.issue(tid, params);
  };

  // Kick off: every thread dispatches its HMC_LOCK at the start cycle.
  for (std::uint32_t tid = 0; tid < threads; ++tid) {
    if (Status s = send(tid, spec::Rqst::CMC125); !s.ok()) {
      return s;
    }
    fsm[tid].phase = Phase::WaitLock;
  }

  auto on_rsp = [&](const Completion& c) {
    const std::uint32_t tid = c.tid;
    ThreadFsm& t = fsm[tid];
    const auto payload = c.rsp.pkt.payload();
    const std::uint64_t word0 = payload.empty() ? 0 : payload[0];

    const auto retry_phase = [&]() {
      if (opts.trylock_backoff == 0) {
        return Phase::SendTrylock;
      }
      t.wake_cycle = sim.cycle() + opts.trylock_backoff;
      return Phase::Backoff;
    };

    switch (t.phase) {
      case Phase::WaitLock:
        if (word0 != 0) {
          t.phase = Phase::SendUnlock;
        } else {
          ++out.lock_failures;
          t.phase = retry_phase();
        }
        break;
      case Phase::WaitTrylock:
        // hmc_trylock returns the owner's thread token; the thread owns
        // the lock iff that token is its own.
        if (word0 == tid_token(tid)) {
          t.phase = Phase::SendUnlock;
        } else {
          t.phase = retry_phase();
        }
        break;
      case Phase::WaitUnlock:
        t.phase = Phase::Done;
        t.done_cycle = sim.cycle();
        out.per_thread_cycles[tid] = t.done_cycle - start_cycle;
        ++done_count;
        break;
      default:
        break;  // Stray response (should not happen); ignore.
    }

    // Dispatch the next operation for the new phase.
    switch (t.phase) {
      case Phase::SendTrylock:
        ++out.trylock_attempts;
        if (send(tid, spec::Rqst::CMC126).ok()) {
          t.phase = Phase::WaitTrylock;
        }
        break;
      case Phase::SendUnlock:
        if (send(tid, spec::Rqst::CMC127).ok()) {
          t.phase = Phase::WaitUnlock;
        }
        break;
      default:
        break;
    }
  };

  while (done_count < threads) {
    if (sim.cycle() - start_cycle > opts.max_cycles) {
      return Status::Internal("mutex contention watchdog expired after " +
                              std::to_string(opts.max_cycles) + " cycles");
    }
    // Re-arm threads whose backoff expired, in tid order.
    for (std::uint32_t tid = 0; tid < threads; ++tid) {
      if (fsm[tid].phase == Phase::Backoff &&
          fsm[tid].wake_cycle <= sim.cycle()) {
        ++out.trylock_attempts;
        if (send(tid, spec::Rqst::CMC126).ok()) {
          fsm[tid].phase = Phase::WaitTrylock;
        }
      }
    }
    // When every live thread is backing off, nothing is in flight and the
    // device is fully quiescent: jump to the earliest wake-up. clock_until
    // honours Config::exhaustive_clock, so the exhaustive arm walks the
    // same span cycle by cycle — identical simulation, only slower.
    std::uint64_t min_wake = UINT64_MAX;
    bool all_backing_off = true;
    for (std::uint32_t tid = 0; tid < threads; ++tid) {
      if (fsm[tid].phase == Phase::Backoff) {
        min_wake = std::min(min_wake, fsm[tid].wake_cycle);
      } else if (fsm[tid].phase != Phase::Done) {
        all_backing_off = false;
        break;
      }
    }
    if (all_backing_off && min_wake != UINT64_MAX &&
        min_wake > sim.cycle() + 1 &&
        sim.next_event_cycle() == sim::Simulator::kNoEvent) {
      (void)sim.clock_until(min_wake);
      continue;
    }
    ts.step(on_rsp);
  }

  out.total_cycles = sim.cycle() - start_cycle;
  out.send_retries = ts.send_retries();
  out.fast_forwarded = sim.fast_forwarded_cycles() - ff_start;
  metrics::StatRegistry& reg = sim.metrics();
  reg.counter("host.mutex.runs", "mutex contention runs completed").inc();
  reg.counter("host.mutex.trylock_attempts",
              "HMC_TRYLOCK packets issued across runs")
      .inc(out.trylock_attempts);
  reg.counter("host.mutex.lock_failures",
              "initial HMC_LOCK attempts that lost the race")
      .inc(out.lock_failures);
  reg.counter("host.mutex.send_retries",
              "sends retried during mutex runs")
      .inc(out.send_retries);
  out.min_cycles = *std::min_element(out.per_thread_cycles.begin(),
                                     out.per_thread_cycles.end());
  out.max_cycles = *std::max_element(out.per_thread_cycles.begin(),
                                     out.per_thread_cycles.end());
  double sum = 0.0;
  for (const std::uint64_t c : out.per_thread_cycles) {
    sum += static_cast<double>(c);
  }
  out.avg_cycles = sum / static_cast<double>(threads);
  return Status::Ok();
}

}  // namespace hmcsim::host
