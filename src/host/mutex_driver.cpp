#include "host/mutex_driver.hpp"

#include "backend/hmc_backend.hpp"
#include "frontend/mutex_frontend.hpp"
#include "frontend/runner.hpp"

namespace hmcsim::host {

Status run_mutex_contention(sim::Simulator& sim, std::uint32_t threads,
                            const MutexOptions& opts, MutexResult& out) {
  // Legacy entry point, now a thin wrapper over the frontend/backend
  // seam. The caller must have registered CMC125/126/127 already (no
  // provisioning hook), and `out` stays untouched when validation fails.
  frontend::MutexFrontend::Options fopts;
  fopts.mutex = opts;
  backend::HmcBackend mem(sim);
  frontend::MutexFrontend fe(threads, std::move(fopts));
  const Status s = frontend::run(mem, fe);
  if (fe.result_written()) {
    out = fe.result();
  }
  return s;
}

}  // namespace hmcsim::host
