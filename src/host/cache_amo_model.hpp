// cache_amo_model.hpp — the Table II baseline.
//
// The paper quantifies the bandwidth advantage of HMC atomics against the
// traditional cache-based path: a cache-resident atomic costs a full
// read-modify-write of the cache line (fetch + write-back), while the HMC
// INC8 command costs one request FLIT and one response FLIT. This module
// computes both sides analytically (exactly Table II's accounting) and can
// also *measure* them by running the two request streams through the
// simulator and counting link FLITs.
#pragma once

#include <cstdint>

#include "common/status.hpp"
#include "sim/simulator.hpp"
#include "spec/commands.hpp"

namespace hmcsim::host {

/// Byte cost of one atomic via each path.
struct AmoCost {
  std::uint64_t request_flits = 0;
  std::uint64_t response_flits = 0;
  [[nodiscard]] std::uint64_t total_flits() const noexcept {
    return request_flits + response_flits;
  }
  /// Table II counts a FLIT as 128 *bytes* of link transfer budget
  /// (16 B payload x 8 lanes of serialised framing); total bytes uses the
  /// paper's convention so the 1536-vs-256 numbers reproduce directly.
  [[nodiscard]] std::uint64_t total_bytes() const noexcept {
    return total_flits() * 128;
  }
};

/// Cache-based RMW cost for a given line size (Table II row 1: 64 B lines
/// -> (1+5) + (5+1) FLITs = 1536 bytes).
[[nodiscard]] AmoCost cache_amo_cost(std::uint32_t line_bytes);

/// HMC-native cost of an atomic command (Table II row 2: INC8 -> 1+1
/// FLITs = 256 bytes).
[[nodiscard]] AmoCost hmc_amo_cost(spec::Rqst amo);

/// Measured FLIT traffic for `count` atomic increments issued through the
/// simulator, via the cache path (RD + WR of a line) or the HMC path
/// (INC8). Uses link statistics, so it validates the analytic model.
struct MeasuredAmoTraffic {
  std::uint64_t rqst_flits = 0;
  std::uint64_t rsp_flits = 0;
  std::uint64_t cycles = 0;
};

[[nodiscard]] Status measure_cache_amo(sim::Simulator& sim,
                                       std::uint32_t count,
                                       std::uint32_t line_bytes,
                                       MeasuredAmoTraffic& out);
[[nodiscard]] Status measure_hmc_amo(sim::Simulator& sim,
                                     std::uint32_t count,
                                     MeasuredAmoTraffic& out);

}  // namespace hmcsim::host
