// trace_replay.hpp — trace-driven simulation.
//
// Lets users capture a request stream once and replay it against any
// device configuration — the standard methodology for comparing memory
// systems on identical workloads. The on-disk format is line-oriented
// text, one request per line:
//
//   # comment
//   <issue_cycle> <link> <CMD> <cub> <addr-hex> [payload-word-hex ...]
//
// CMD is the command mnemonic from spec/commands ("RD64", "INC8",
// "CMC125", ...). Tags are assigned by the replayer. Requests are issued
// no earlier than their issue_cycle, in file order per cycle, with
// stall-retry on back-pressure (retried requests slip to later cycles,
// like a real host queue).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"
#include "sim/simulator.hpp"

namespace hmcsim::host {

/// One parsed trace line.
struct TraceRecord {
  std::uint64_t issue_cycle = 0;
  std::uint32_t link = 0;
  spec::Rqst rqst = spec::Rqst::RD16;
  std::uint8_t cub = 0;
  std::uint64_t addr = 0;
  std::vector<std::uint64_t> payload;
};

/// Parse a trace from a stream. Fails with line diagnostics on malformed
/// input; blank lines and '#' comments are skipped.
[[nodiscard]] Status parse_trace(std::istream& in,
                                 std::vector<TraceRecord>& out);

/// Parse a trace file from disk.
[[nodiscard]] Status load_trace(const std::string& path,
                                std::vector<TraceRecord>& out);

/// Serialise records to the text format (inverse of parse_trace).
void write_trace(std::ostream& os, const std::vector<TraceRecord>& records);

/// Save records to disk.
[[nodiscard]] Status save_trace(const std::string& path,
                                const std::vector<TraceRecord>& records);

/// Outcome of a replay.
struct ReplayResult {
  std::uint64_t requests_issued = 0;
  std::uint64_t responses_received = 0;
  std::uint64_t error_responses = 0;  ///< RSP_ERROR packets observed.
  std::uint64_t cycles = 0;           ///< First issue to last response.
  std::uint64_t send_retries = 0;     ///< Stall-retry count.
  std::uint64_t rqst_flits = 0;
  std::uint64_t rsp_flits = 0;
  /// Idle cycles jumped instead of clocked (issue-gap dead time). Always
  /// 0 with Config::exhaustive_clock.
  std::uint64_t fast_forwarded = 0;
};

/// Replay `records` against `sim` to completion (every non-posted request
/// answered). CMC records require their operations to be registered.
[[nodiscard]] Status replay_trace(sim::Simulator& sim,
                                  const std::vector<TraceRecord>& records,
                                  ReplayResult& out);

/// Convenience: capture helper that builds records programmatically with
/// monotonically increasing issue cycles.
class TraceBuilder {
 public:
  explicit TraceBuilder(std::uint32_t num_links) : num_links_(num_links) {}

  /// Append a request `gap` cycles after the previous one, on a
  /// round-robin link.
  TraceBuilder& add(spec::Rqst rqst, std::uint64_t addr,
                    std::vector<std::uint64_t> payload = {},
                    std::uint64_t gap = 1, std::uint8_t cub = 0);

  [[nodiscard]] const std::vector<TraceRecord>& records() const noexcept {
    return records_;
  }
  [[nodiscard]] std::vector<TraceRecord> take() noexcept {
    return std::move(records_);
  }

 private:
  std::uint32_t num_links_;
  std::uint64_t cycle_ = 0;
  std::uint32_t next_link_ = 0;
  std::vector<TraceRecord> records_;
};

}  // namespace hmcsim::host
