// coherent_system.hpp — a multi-core cache-coherent host over the HMC.
//
// Models the "traditional" side of the paper's mutex comparison: N cores
// with private write-back caches kept coherent by an invalidation
// protocol. The protocol is MESI-lite with *memory-reflected* ownership
// transfer: when a core needs exclusive access to a line another core
// holds dirty, the dirty copy is written back to the cube (a real WR
// packet) and the requester re-fetches it (a real RD packet) — precisely
// the read-modify-write accounting of Table II, so a contended lock line
// ping-pongs through the memory system and burns 12 FLITs per bounce.
//
// The model is cycle-stepped and cooperative, like ThreadSim: cores have
// at most one memory operation in flight; conflicting transactions on a
// busy line are NACKed with Stall (the caller retries), which mirrors
// MSHR-conflict behaviour and keeps the data path race-free.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.hpp"
#include "host/cache/cache.hpp"
#include "host/thread_sim.hpp"
#include "sim/simulator.hpp"

namespace hmcsim::host {

/// Memory operations a core can perform.
enum class MemOp : std::uint8_t {
  Load,   ///< 8-byte load.
  Store,  ///< 8-byte store (operand).
  Cas,    ///< 8-byte compare-and-swap (expect -> operand).
};

struct CoreRequest {
  MemOp op = MemOp::Load;
  std::uint64_t addr = 0;     ///< 8-byte aligned.
  std::uint64_t operand = 0;  ///< Store value / CAS desired value.
  std::uint64_t expect = 0;   ///< CAS comparand.
};

struct CoreCompletion {
  std::uint32_t core = 0;
  std::uint64_t value = 0;  ///< Loaded value / pre-CAS value.
  bool cas_success = false;
};

struct CoherencyStats {
  std::uint64_t invalidations_sent = 0;   ///< Sharer copies dropped.
  std::uint64_t ownership_writebacks = 0; ///< Dirty handoffs via memory.
  std::uint64_t fills = 0;                ///< Lines fetched from the cube.
  std::uint64_t victim_writebacks = 0;    ///< Capacity/conflict writebacks.
  std::uint64_t nacks = 0;                ///< Busy-line retries issued.
  std::uint64_t cache_hit_ops = 0;        ///< Ops served without memory.
};

class CoherentSystem {
 public:
  /// `sim` must outlive the system. All cores share the device's links
  /// round-robin (core i -> link i mod links), like ThreadSim.
  CoherentSystem(sim::Simulator& sim, std::uint32_t num_cores,
                 const CacheConfig& cache_cfg);

  [[nodiscard]] std::uint32_t num_cores() const noexcept {
    return static_cast<std::uint32_t>(cores_.size());
  }

  /// Begin a memory operation for an idle core. Returns Stall when the
  /// target line has a transaction in flight (retry next cycle) and
  /// InvalidState when the core is already busy.
  [[nodiscard]] Status issue(std::uint32_t core, const CoreRequest& req);

  [[nodiscard]] bool idle(std::uint32_t core) const noexcept {
    return cores_[core].state == CoreState::Idle;
  }

  /// Advance one device cycle; deliver finished operations.
  void step(const std::function<void(const CoreCompletion&)>& on_complete);

  [[nodiscard]] const CoherencyStats& stats() const noexcept {
    return stats_;
  }
  [[nodiscard]] const Cache& cache(std::uint32_t core) const {
    return caches_[core];
  }
  [[nodiscard]] sim::Simulator& simulator() noexcept { return sim_; }

 private:
  enum class CoreState : std::uint8_t {
    Idle,
    Writeback,  ///< Waiting on a WR64 (ownership or victim writeback).
    Fill,       ///< Waiting on a RD64 line fetch.
    Finish,     ///< Local latency countdown before completion.
  };

  struct PendingWriteback {
    std::uint64_t line_addr = 0;
    std::vector<std::uint8_t> data;
    bool is_victim = false;  ///< Capacity/conflict victim (vs ownership).
  };

  struct Core {
    CoreState state = CoreState::Idle;
    CoreRequest req;
    std::vector<PendingWriteback> writebacks;  ///< Ordered, drained first.
    bool needs_fill = false;
    std::uint64_t finish_cycle = 0;   ///< Completion time in Finish state.
    std::uint64_t extra_cycles = 0;   ///< Coherency penalty accumulated.
    std::array<std::uint64_t, 8> wr_payload{};  ///< Outgoing WR64 data.
    CoreCompletion result;  ///< Computed at apply time, delivered later.
  };

  /// Per-line directory entry.
  struct DirEntry {
    std::unordered_set<std::uint32_t> sharers;
    bool busy = false;  ///< A transaction on this line is in flight.
  };

  /// Move the core's transaction forward: issue the next writeback, the
  /// fill, or apply the operation.
  void advance(std::uint32_t core_id);

  /// Execute the operation against the (resident, exclusive where needed)
  /// cache line. Runs as soon as residency is guaranteed so no later
  /// invalidation can race it; the completion is delivered after the
  /// modelled latency elapses.
  void apply(std::uint32_t core_id);

  sim::Simulator& sim_;
  ThreadSim mem_;  ///< One outstanding HMC op per core (tag == core id).
  std::vector<Core> cores_;
  std::vector<Cache> caches_;
  std::unordered_map<std::uint64_t, DirEntry> directory_;
  std::vector<CoreCompletion> finished_;  ///< Filled by apply()/handlers.
  CoherencyStats stats_;

  /// Fixed local latencies (cycles).
  static constexpr std::uint64_t kHitLatency = 1;
  static constexpr std::uint64_t kInvalidateLatency = 2;
};

}  // namespace hmcsim::host
