#include "host/cache/cache.hpp"

#include <algorithm>
#include <cstring>

#include "common/bits.hpp"

namespace hmcsim::host {

Status CacheConfig::validate() const {
  if (!bits::is_pow2(line_bytes) || line_bytes < 16 || line_bytes > 256) {
    return Status::InvalidArg("line_bytes must be a power of two in "
                              "[16,256]");
  }
  if (ways == 0) {
    return Status::InvalidArg("ways must be nonzero");
  }
  if (size_bytes == 0 || size_bytes % (line_bytes * ways) != 0) {
    return Status::InvalidArg(
        "size_bytes must be a multiple of line_bytes * ways");
  }
  if (!bits::is_pow2(num_sets())) {
    return Status::InvalidArg("set count must be a power of two");
  }
  return Status::Ok();
}

Cache::Cache(const CacheConfig& cfg) : cfg_(cfg) {
  lines_.resize(static_cast<std::size_t>(cfg_.num_sets()) * cfg_.ways);
  for (Line& line : lines_) {
    line.data.resize(cfg_.line_bytes);
  }
}

std::uint32_t Cache::set_index(std::uint64_t addr) const noexcept {
  return static_cast<std::uint32_t>((addr / cfg_.line_bytes) %
                                    cfg_.num_sets());
}

std::uint64_t Cache::tag_of(std::uint64_t addr) const noexcept {
  return addr / cfg_.line_bytes / cfg_.num_sets();
}

Cache::Line* Cache::find(std::uint64_t addr) noexcept {
  const std::uint32_t set = set_index(addr);
  const std::uint64_t tag = tag_of(addr);
  Line* base = &lines_[static_cast<std::size_t>(set) * cfg_.ways];
  for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
    if (base[w].valid && base[w].tag == tag) {
      return &base[w];
    }
  }
  return nullptr;
}

const Cache::Line* Cache::find(std::uint64_t addr) const noexcept {
  return const_cast<Cache*>(this)->find(addr);
}

bool Cache::contains(std::uint64_t addr) const noexcept {
  return find(addr) != nullptr;
}

bool Cache::read(std::uint64_t addr, std::span<std::uint8_t> out) {
  Line* line = find(addr);
  if (line == nullptr) {
    ++stats_.misses;
    return false;
  }
  const std::size_t offset =
      static_cast<std::size_t>(addr % cfg_.line_bytes);
  if (offset + out.size() > cfg_.line_bytes) {
    ++stats_.misses;  // Straddling access: treated as uncacheable miss.
    return false;
  }
  std::memcpy(out.data(), line->data.data() + offset, out.size());
  line->lru = ++lru_clock_;
  ++stats_.hits;
  return true;
}

bool Cache::write(std::uint64_t addr, std::span<const std::uint8_t> in) {
  Line* line = find(addr);
  if (line == nullptr) {
    ++stats_.misses;
    return false;
  }
  const std::size_t offset =
      static_cast<std::size_t>(addr % cfg_.line_bytes);
  if (offset + in.size() > cfg_.line_bytes) {
    ++stats_.misses;
    return false;
  }
  std::memcpy(line->data.data() + offset, in.data(), in.size());
  line->dirty = true;
  line->lru = ++lru_clock_;
  ++stats_.hits;
  return true;
}

std::optional<Eviction> Cache::fill(std::uint64_t line_addr,
                                    std::span<const std::uint8_t> data,
                                    bool dirty) {
  const std::uint32_t set = set_index(line_addr);
  Line* base = &lines_[static_cast<std::size_t>(set) * cfg_.ways];
  // Prefer refreshing an existing copy, then an invalid way, then LRU.
  Line* victim = find(line_addr);
  if (victim == nullptr) {
    for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
      if (!base[w].valid) {
        victim = &base[w];
        break;
      }
    }
  }
  if (victim == nullptr) {
    victim = base;
    for (std::uint32_t w = 1; w < cfg_.ways; ++w) {
      if (base[w].lru < victim->lru) {
        victim = &base[w];
      }
    }
  }

  std::optional<Eviction> evicted;
  if (victim->valid && victim->tag != tag_of(line_addr)) {
    ++stats_.evictions;
    Eviction ev;
    ev.line_addr = (victim->tag * cfg_.num_sets() + set) * cfg_.line_bytes;
    ev.dirty = victim->dirty;
    if (victim->dirty) {
      ++stats_.dirty_writebacks;
      ev.data = victim->data;
    }
    evicted = std::move(ev);
  }

  victim->valid = true;
  victim->dirty = dirty;
  victim->tag = tag_of(line_addr);
  victim->lru = ++lru_clock_;
  std::copy(data.begin(), data.end(), victim->data.begin());
  return evicted;
}

std::optional<Eviction> Cache::invalidate(std::uint64_t addr) {
  Line* line = find(addr);
  if (line == nullptr) {
    return std::nullopt;
  }
  ++stats_.invalidations;
  Eviction ev;
  ev.line_addr = line_of(addr);
  ev.dirty = line->dirty;
  if (line->dirty) {
    ev.data = line->data;
  }
  line->valid = false;
  line->dirty = false;
  return ev;
}

void Cache::clear() {
  for (Line& line : lines_) {
    line.valid = false;
    line.dirty = false;
  }
}

std::size_t Cache::resident_lines() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(lines_.begin(), lines_.end(),
                    [](const Line& l) { return l.valid; }));
}

}  // namespace hmcsim::host
