#include "host/cache/coherent_system.hpp"

#include <cstring>

namespace hmcsim::host {

CoherentSystem::CoherentSystem(sim::Simulator& sim, std::uint32_t num_cores,
                               const CacheConfig& cache_cfg)
    : sim_(sim), mem_(sim, num_cores), cores_(num_cores) {
  caches_.reserve(num_cores);
  for (std::uint32_t c = 0; c < num_cores; ++c) {
    caches_.emplace_back(cache_cfg);
  }
}

Status CoherentSystem::issue(std::uint32_t core_id, const CoreRequest& req) {
  if (core_id >= cores_.size()) {
    return Status::InvalidArg("core id out of range");
  }
  Core& core = cores_[core_id];
  if (core.state != CoreState::Idle) {
    return Status::InvalidState("core busy");
  }
  if (req.addr % 8 != 0) {
    return Status::InvalidArg("operations must be 8-byte aligned");
  }
  Cache& cache = caches_[core_id];
  const std::uint64_t line = cache.line_of(req.addr);
  DirEntry& dir = directory_[line];
  if (dir.busy) {
    ++stats_.nacks;
    return Status::Stall("line transaction in flight");
  }

  core.req = req;
  core.writebacks.clear();
  core.needs_fill = false;
  core.extra_cycles = 0;

  const bool exclusive = req.op != MemOp::Load;
  const bool resident = cache.contains(req.addr);

  // Coherency: for exclusive access every other copy must go; a dirty
  // remote copy is reflected through the cube first (memory-reflected
  // ownership transfer — the Table II accounting).
  if (exclusive) {
    for (const std::uint32_t sharer : dir.sharers) {
      if (sharer == core_id) {
        continue;
      }
      auto dropped = caches_[sharer].invalidate(req.addr);
      ++stats_.invalidations_sent;
      core.extra_cycles += kInvalidateLatency;
      if (dropped.has_value() && dropped->dirty) {
        ++stats_.ownership_writebacks;
        core.writebacks.push_back(PendingWriteback{
            dropped->line_addr, std::move(dropped->data), false});
      }
    }
    dir.sharers.clear();
    dir.sharers.insert(core_id);
  } else {
    // A load may coexist with clean sharers, but a remote *dirty* copy
    // must be downgraded through memory so the fill observes it.
    for (const std::uint32_t sharer : dir.sharers) {
      if (sharer == core_id || !caches_[sharer].contains(req.addr)) {
        continue;
      }
      auto dropped = caches_[sharer].invalidate(req.addr);
      if (dropped.has_value() && dropped->dirty) {
        ++stats_.ownership_writebacks;
        core.extra_cycles += kInvalidateLatency;
        core.writebacks.push_back(PendingWriteback{
            dropped->line_addr, std::move(dropped->data), false});
      } else if (dropped.has_value()) {
        // Clean copy: reinstall; sharing is fine for reads.
        (void)caches_[sharer].fill(line, dropped->data, false);
      }
    }
    dir.sharers.insert(core_id);
  }

  core.needs_fill = !resident;
  if (core.needs_fill || !core.writebacks.empty()) {
    dir.busy = true;
    advance(core_id);
  } else {
    ++stats_.cache_hit_ops;
    apply(core_id);
  }
  return Status::Ok();
}

void CoherentSystem::advance(std::uint32_t core_id) {
  Core& core = cores_[core_id];
  Cache& cache = caches_[core_id];

  if (!core.writebacks.empty()) {
    const PendingWriteback& wb = core.writebacks.front();
    for (std::size_t w = 0; w < 8; ++w) {
      std::memcpy(&core.wr_payload[w], wb.data.data() + w * 8, 8);
    }
    if (wb.is_victim) {
      ++stats_.victim_writebacks;
    }
    spec::RqstParams p;
    p.rqst = spec::Rqst::WR64;
    p.addr = wb.line_addr;
    p.payload = {core.wr_payload.data(), 8};
    const Status s = mem_.issue(core_id, p);
    (void)s;  // ThreadSim retries stalls internally.
    core.state = CoreState::Writeback;
    return;
  }

  if (core.needs_fill) {
    spec::RqstParams p;
    p.rqst = spec::Rqst::RD64;
    p.addr = cache.line_of(core.req.addr);
    const Status s = mem_.issue(core_id, p);
    (void)s;
    ++stats_.fills;
    core.state = CoreState::Fill;
    return;
  }

  apply(core_id);
}

void CoherentSystem::apply(std::uint32_t core_id) {
  Core& core = cores_[core_id];
  Cache& cache = caches_[core_id];
  const std::uint64_t line = cache.line_of(core.req.addr);
  directory_[line].busy = false;

  // Execute now, while residency/ownership is guaranteed; deliver later.
  std::array<std::uint8_t, 8> word{};
  const bool hit = cache.read(core.req.addr, word);
  (void)hit;  // The transaction guaranteed residency.
  std::uint64_t value = 0;
  std::memcpy(&value, word.data(), 8);

  core.result = CoreCompletion{};
  core.result.core = core_id;
  core.result.value = value;
  switch (core.req.op) {
    case MemOp::Load:
      break;
    case MemOp::Store: {
      std::array<std::uint8_t, 8> in{};
      std::memcpy(in.data(), &core.req.operand, 8);
      (void)cache.write(core.req.addr, in);
      break;
    }
    case MemOp::Cas: {
      core.result.cas_success = value == core.req.expect;
      if (core.result.cas_success) {
        std::array<std::uint8_t, 8> in{};
        std::memcpy(in.data(), &core.req.operand, 8);
        (void)cache.write(core.req.addr, in);
      }
      break;
    }
  }

  core.state = CoreState::Finish;
  core.finish_cycle = sim_.cycle() + kHitLatency + core.extra_cycles;
}

void CoherentSystem::step(
    const std::function<void(const CoreCompletion&)>& on_complete) {
  mem_.step([this](const Completion& c) {
    Core& core = cores_[c.tid];
    Cache& cache = caches_[c.tid];
    switch (core.state) {
      case CoreState::Writeback:
        core.writebacks.erase(core.writebacks.begin());
        advance(c.tid);
        break;
      case CoreState::Fill: {
        // Install the returned line; handle any victim it displaces.
        const auto payload = c.rsp.pkt.payload();
        std::vector<std::uint8_t> data(cache.config().line_bytes, 0);
        for (std::size_t w = 0; w < payload.size() && w * 8 < data.size();
             ++w) {
          std::memcpy(data.data() + w * 8, &payload[w], 8);
        }
        const auto victim =
            cache.fill(cache.line_of(core.req.addr), data, false);
        core.needs_fill = false;
        if (victim.has_value()) {
          auto& vdir = directory_[victim->line_addr];
          vdir.sharers.erase(c.tid);
          if (victim->dirty) {
            core.writebacks.push_back(
                PendingWriteback{victim->line_addr, victim->data, true});
          }
        }
        advance(c.tid);
        break;
      }
      default:
        break;  // Stray response; ignore.
    }
  });

  // Deliver elapsed completions.
  for (std::uint32_t core_id = 0; core_id < cores_.size(); ++core_id) {
    Core& core = cores_[core_id];
    if (core.state == CoreState::Finish &&
        sim_.cycle() >= core.finish_cycle) {
      core.state = CoreState::Idle;
      if (on_complete) {
        on_complete(core.result);
      }
    }
  }
}

}  // namespace hmcsim::host
