#include "host/cache/spinlock_driver.hpp"

#include "backend/hmc_backend.hpp"
#include "frontend/runner.hpp"
#include "frontend/spinlock_frontend.hpp"

namespace hmcsim::host {

Status run_spinlock_contention(sim::Simulator& sim, std::uint32_t cores,
                               const SpinlockOptions& opts,
                               SpinlockResult& out) {
  // Legacy entry point, now a thin wrapper over the frontend/backend
  // seam; `out` stays untouched when validation fails.
  backend::HmcBackend mem(sim);
  frontend::SpinlockFrontend fe(cores, opts);
  const Status s = frontend::run(mem, fe);
  if (fe.result_written()) {
    out = fe.result();
  }
  return s;
}

}  // namespace hmcsim::host
