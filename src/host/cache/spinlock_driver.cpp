#include "host/cache/spinlock_driver.hpp"

#include <algorithm>
#include <array>

namespace hmcsim::host {
namespace {

enum class Phase : std::uint8_t {
  WantLock,    ///< Needs to issue a CAS.
  WaitCas,     ///< CAS in flight.
  WantUnlock,  ///< Needs to issue the releasing store.
  WaitUnlock,  ///< Store in flight.
  Done,
};

}  // namespace

Status run_spinlock_contention(sim::Simulator& sim, std::uint32_t cores,
                               const SpinlockOptions& opts,
                               SpinlockResult& out) {
  if (cores == 0) {
    return Status::InvalidArg("need at least one core");
  }
  if (opts.lock_addr % 8 != 0) {
    return Status::InvalidArg("lock word must be 8-byte aligned");
  }
  if (Status s = opts.cache.validate(); !s.ok()) {
    return s;
  }
  // Known initial state: lock free.
  const std::array<std::uint8_t, 8> zero{};
  if (Status s = sim.mem_write(0, opts.lock_addr, zero); !s.ok()) {
    return s;
  }

  out = SpinlockResult{};
  out.cores = cores;
  out.per_core_cycles.assign(cores, 0);
  const auto stats0 = sim.stats();

  CoherentSystem system(sim, cores, opts.cache);
  std::vector<Phase> phase(cores, Phase::WantLock);
  const std::uint64_t start_cycle = sim.cycle();
  const std::uint64_t ff_start = sim.fast_forwarded_cycles();
  std::uint32_t done_count = 0;

  auto try_issue = [&](std::uint32_t core) {
    if (phase[core] == Phase::WantLock) {
      CoreRequest cas;
      cas.op = MemOp::Cas;
      cas.addr = opts.lock_addr;
      cas.expect = 0;
      cas.operand = 1;
      if (system.issue(core, cas).ok()) {
        ++out.cas_attempts;
        phase[core] = Phase::WaitCas;
      }
    } else if (phase[core] == Phase::WantUnlock) {
      CoreRequest release;
      release.op = MemOp::Store;
      release.addr = opts.lock_addr;
      release.operand = 0;
      if (system.issue(core, release).ok()) {
        phase[core] = Phase::WaitUnlock;
      }
    }
  };

  auto on_complete = [&](const CoreCompletion& c) {
    if (phase[c.core] == Phase::WaitCas) {
      phase[c.core] = c.cas_success ? Phase::WantUnlock : Phase::WantLock;
    } else if (phase[c.core] == Phase::WaitUnlock) {
      phase[c.core] = Phase::Done;
      out.per_core_cycles[c.core] = sim.cycle() - start_cycle;
      ++done_count;
    }
  };

  while (done_count < cores) {
    if (sim.cycle() - start_cycle > opts.max_cycles) {
      return Status::Internal("spinlock watchdog expired");
    }
    for (std::uint32_t core = 0; core < cores; ++core) {
      try_issue(core);
    }
    system.step(on_complete);
  }

  out.total_cycles = sim.cycle() - start_cycle;
  out.line_bounces = system.stats().ownership_writebacks;
  out.fast_forwarded = sim.fast_forwarded_cycles() - ff_start;
  const auto stats1 = sim.stats();
  out.hmc_rqst_flits =
      stats1.rqst_flits - stats0.rqst_flits;
  out.hmc_rsp_flits = stats1.rsp_flits - stats0.rsp_flits;
  out.min_cycles = *std::min_element(out.per_core_cycles.begin(),
                                     out.per_core_cycles.end());
  out.max_cycles = *std::max_element(out.per_core_cycles.begin(),
                                     out.per_core_cycles.end());
  double sum = 0.0;
  for (const std::uint64_t c : out.per_core_cycles) {
    sum += static_cast<double>(c);
  }
  out.avg_cycles = sum / static_cast<double>(cores);
  return Status::Ok();
}

}  // namespace hmcsim::host
