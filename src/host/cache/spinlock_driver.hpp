// spinlock_driver.hpp — the traditional mutex: a CAS spinlock through the
// cache hierarchy.
//
// The counterpart to host::run_mutex_contention: the same Algorithm 1
// structure, but each thread is a core of the CoherentSystem spinning with
// compare-and-swap on a cached lock word. Under contention the lock line
// ping-pongs between caches via memory-reflected ownership transfers, so
// every handoff costs real HMC read/write packets — the behaviour the
// paper's CMC mutex operations eliminate.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.hpp"
#include "host/cache/coherent_system.hpp"

namespace hmcsim::host {

struct SpinlockResult {
  std::uint32_t cores = 0;
  std::uint64_t min_cycles = 0;
  std::uint64_t max_cycles = 0;
  double avg_cycles = 0.0;
  std::uint64_t total_cycles = 0;
  std::uint64_t cas_attempts = 0;   ///< Total CAS operations issued.
  std::uint64_t line_bounces = 0;   ///< Ownership writebacks observed.
  std::uint64_t hmc_rqst_flits = 0; ///< Link traffic for the whole run.
  std::uint64_t hmc_rsp_flits = 0;
  /// Cycles of the run jumped by quiescence fast-forward (subset of
  /// total_cycles; 0 with Config::exhaustive_clock).
  std::uint64_t fast_forwarded = 0;
  std::vector<std::uint64_t> per_core_cycles;
};

struct SpinlockOptions {
  std::uint64_t lock_addr = 0x4000;  ///< 8-byte aligned lock word.
  CacheConfig cache;                 ///< Per-core private cache.
  std::uint64_t max_cycles = 10'000'000;  ///< Watchdog bound.
};

/// Run the spinlock experiment: every core acquires and releases the lock
/// once (lock; unlock — with CAS retry loops on contention).
[[nodiscard]] Status run_spinlock_contention(sim::Simulator& sim,
                                             std::uint32_t cores,
                                             const SpinlockOptions& opts,
                                             SpinlockResult& out);

}  // namespace hmcsim::host
