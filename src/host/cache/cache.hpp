// cache.hpp — set-associative cache with data storage.
//
// The building block of the cache-based host model: the baseline the
// paper's mutex experiment implicitly compares against (a traditional
// core spins on a lock through its cache hierarchy; the line ping-pongs
// between cores via coherency traffic, and every bounce costs a full
// read-modify-write against memory). Write-back, write-allocate, true-LRU
// replacement; lines carry data so the coherent system above it is a
// functional model, not just a hit/miss counter.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/status.hpp"

namespace hmcsim::host {

struct CacheConfig {
  std::uint32_t size_bytes = 32 * 1024;
  std::uint32_t line_bytes = 64;
  std::uint32_t ways = 8;

  [[nodiscard]] std::uint32_t num_sets() const noexcept {
    return size_bytes / (line_bytes * ways);
  }
  [[nodiscard]] Status validate() const;
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t dirty_writebacks = 0;
  std::uint64_t invalidations = 0;  ///< Lines dropped by coherency.

  [[nodiscard]] double hit_rate() const noexcept {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) /
                            static_cast<double>(total);
  }
};

/// Result of an eviction: the victim's address and its dirty data (only
/// meaningful when dirty).
struct Eviction {
  std::uint64_t line_addr = 0;
  bool dirty = false;
  std::vector<std::uint8_t> data;
};

class Cache {
 public:
  explicit Cache(const CacheConfig& cfg);

  [[nodiscard]] const CacheConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] const CacheStats& stats() const noexcept { return stats_; }

  /// Line-aligned base address of `addr`.
  [[nodiscard]] std::uint64_t line_of(std::uint64_t addr) const noexcept {
    return addr & ~static_cast<std::uint64_t>(cfg_.line_bytes - 1);
  }

  /// True if the line containing addr is resident (no LRU update).
  [[nodiscard]] bool contains(std::uint64_t addr) const noexcept;

  /// Read `out.size()` bytes at addr; hit only (returns false on miss).
  /// Counts a hit and refreshes LRU on success; counts a miss otherwise.
  [[nodiscard]] bool read(std::uint64_t addr, std::span<std::uint8_t> out);

  /// Write bytes at addr; hit only (marks the line dirty). Counts hit or
  /// miss like read().
  [[nodiscard]] bool write(std::uint64_t addr,
                           std::span<const std::uint8_t> in);

  /// Install a line (after a memory fill). Returns the eviction performed
  /// to make room, if any. `dirty` marks the line modified on arrival
  /// (write-allocate stores).
  std::optional<Eviction> fill(std::uint64_t line_addr,
                               std::span<const std::uint8_t> data,
                               bool dirty);

  /// Coherency: drop the line containing addr if resident; returns its
  /// dirty payload when it was modified (the caller forwards it home).
  std::optional<Eviction> invalidate(std::uint64_t addr);

  /// Drop everything (no writebacks; test/reset use).
  void clear();

  /// Number of currently valid lines.
  [[nodiscard]] std::size_t resident_lines() const noexcept;

 private:
  struct Line {
    bool valid = false;
    bool dirty = false;
    std::uint64_t tag = 0;
    std::uint64_t lru = 0;  ///< Higher == more recently used.
    std::vector<std::uint8_t> data;
  };

  [[nodiscard]] std::uint32_t set_index(std::uint64_t addr) const noexcept;
  [[nodiscard]] std::uint64_t tag_of(std::uint64_t addr) const noexcept;
  /// Locate the resident line for addr; nullptr on miss.
  [[nodiscard]] Line* find(std::uint64_t addr) noexcept;
  [[nodiscard]] const Line* find(std::uint64_t addr) const noexcept;

  CacheConfig cfg_;
  std::vector<Line> lines_;  ///< sets x ways, row-major.
  std::uint64_t lru_clock_ = 0;
  CacheStats stats_;
};

}  // namespace hmcsim::host
