// mutex_driver.hpp — Algorithm 1 of the paper.
//
// Every thread executes, against one shared 16-byte lock structure:
//
//   HMC_LOCK(addr)
//   if LOCK_SUCCESS:   HMC_UNLOCK(addr)
//   else:              do HMC_TRYLOCK(addr) while not acquired
//                      HMC_UNLOCK(addr)
//
// and the driver records the MIN/MAX/AVG number of cycles any thread needs
// to complete the sequence — the exact measurement behind Figures 5-7 and
// Table VI. Thread IDs are encoded as tid+1 so that thread 0 is
// distinguishable from the all-zero initial lock state.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.hpp"
#include "host/thread_sim.hpp"
#include "sim/simulator.hpp"

namespace hmcsim::host {

/// Measured outcome of one mutex simulation.
struct MutexResult {
  std::uint32_t threads = 0;
  std::uint64_t min_cycles = 0;  ///< The paper's MIN_CYCLE.
  std::uint64_t max_cycles = 0;  ///< The paper's MAX_CYCLE.
  double avg_cycles = 0.0;       ///< The paper's AVG_CYCLE.
  std::uint64_t total_cycles = 0;      ///< Wall-clock cycles simulated.
  std::uint64_t trylock_attempts = 0;  ///< Total TRYLOCK packets issued.
  std::uint64_t lock_failures = 0;     ///< Initial LOCKs that lost the race.
  std::uint64_t send_retries = 0;      ///< Host-side stall retries.
  /// Cycles of the run jumped by quiescence fast-forward (subset of
  /// total_cycles; 0 with Config::exhaustive_clock).
  std::uint64_t fast_forwarded = 0;
  std::vector<std::uint64_t> per_thread_cycles;
};

/// Options for a mutex contention run.
struct MutexOptions {
  std::uint64_t lock_addr = 0;   ///< 16-byte aligned lock structure address.
  std::uint8_t cub = 0;          ///< Target cube.
  std::uint64_t max_cycles = 1'000'000;  ///< Watchdog bound.

  /// Number of independent lock structures. The paper's experiment uses a
  /// single lock ("this will undoubtedly induce a memory hot spot");
  /// spreading threads over several locks (thread t uses lock t mod N) is
  /// the natural hot-spot ablation.
  std::uint32_t num_locks = 1;
  /// Byte distance between consecutive locks. The default of one
  /// interleave block (64 B) places each lock in a different vault.
  std::uint64_t lock_stride = 64;

  /// Cycles a thread backs off after a failed TRYLOCK before retrying.
  /// 0 reproduces the paper's tight spin (a new TRYLOCK the cycle the
  /// failure response arrives). With a backoff, spans where every thread
  /// is waiting out its backoff have no queued work anywhere, and the
  /// driver crosses them with Simulator::clock_until — the quiescence
  /// fast-forward skips them in O(1) instead of clocking each dead cycle.
  std::uint32_t trylock_backoff = 0;
};

/// Run Algorithm 1 with `threads` contenders. The simulator must already
/// have the three mutex CMC operations (CMC125/126/127) registered; the
/// lock structure is zero-initialised through the back door before the run.
[[nodiscard]] Status run_mutex_contention(sim::Simulator& sim,
                                          std::uint32_t threads,
                                          const MutexOptions& opts,
                                          MutexResult& out);

}  // namespace hmcsim::host
