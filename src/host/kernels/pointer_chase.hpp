// pointer_chase.hpp — dependent-load latency probe.
//
// A random cyclic permutation is planted in cube memory and the host walks
// it with fully dependent 16-byte reads: no memory-level parallelism, so
// the measured cycles-per-hop is the pure uncontended round-trip latency
// of the pipeline (3 cycles in the default model). Multiple independent
// chains can be walked concurrently to show latency/bandwidth overlap.
#pragma once

#include <cstdint>

#include "common/status.hpp"
#include "host/kernels/kernel_result.hpp"
#include "sim/simulator.hpp"

namespace hmcsim::host {

struct PointerChaseOptions {
  std::uint64_t nodes = 4096;   ///< Permutation size (16-byte nodes).
  std::uint64_t hops = 1024;    ///< Dependent loads per chain.
  std::uint32_t chains = 1;     ///< Independent concurrent walkers.
  std::uint64_t seed = 0xC0FFEE;
  std::uint8_t cub = 0;
  std::uint64_t base = 0;       ///< 16-byte aligned table base.
};

[[nodiscard]] Status run_pointer_chase(sim::Simulator& sim,
                                       const PointerChaseOptions& opts,
                                       KernelResult& out);

}  // namespace hmcsim::host
