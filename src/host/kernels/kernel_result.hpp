// kernel_result.hpp — common measurement record for workload kernels.
#pragma once

#include <cstdint>

namespace hmcsim::host {

struct KernelResult {
  std::uint64_t cycles = 0;       ///< Simulated cycles consumed.
  std::uint64_t operations = 0;   ///< Kernel-defined unit of work.
  std::uint64_t rqst_flits = 0;   ///< Link FLITs host -> device.
  std::uint64_t rsp_flits = 0;    ///< Link FLITs device -> host.
  std::uint64_t send_retries = 0; ///< Host stall retries.

  /// Payload bytes moved per cycle (16 B per FLIT).
  [[nodiscard]] double bytes_per_cycle() const noexcept {
    if (cycles == 0) {
      return 0.0;
    }
    return 16.0 * static_cast<double>(rqst_flits + rsp_flits) /
           static_cast<double>(cycles);
  }
  /// Operations retired per cycle.
  [[nodiscard]] double ops_per_cycle() const noexcept {
    if (cycles == 0) {
      return 0.0;
    }
    return static_cast<double>(operations) / static_cast<double>(cycles);
  }
};

}  // namespace hmcsim::host
