#include "sim/sim_stats.hpp"
#include "host/kernels/stream_triad.hpp"

#include <array>
#include <cmath>
#include <cstring>
#include <vector>

#include "host/thread_sim.hpp"
#include "spec/flit.hpp"

namespace hmcsim::host {
namespace {

spec::Rqst read_cmd(std::uint32_t bytes) {
  switch (bytes) {
    case 16:
      return spec::Rqst::RD16;
    case 32:
      return spec::Rqst::RD32;
    case 64:
      return spec::Rqst::RD64;
    case 128:
      return spec::Rqst::RD128;
    case 256:
      return spec::Rqst::RD256;
    default:
      return spec::Rqst::RD64;
  }
}

spec::Rqst write_cmd(std::uint32_t bytes) {
  switch (bytes) {
    case 16:
      return spec::Rqst::WR16;
    case 32:
      return spec::Rqst::WR32;
    case 64:
      return spec::Rqst::WR64;
    case 128:
      return spec::Rqst::WR128;
    case 256:
      return spec::Rqst::WR256;
    default:
      return spec::Rqst::WR64;
  }
}

std::uint64_t f2u(double v) {
  std::uint64_t out;
  std::memcpy(&out, &v, sizeof(out));
  return out;
}

double u2f(std::uint64_t v) {
  double out;
  std::memcpy(&out, &v, sizeof(out));
  return out;
}

enum class SlotPhase : std::uint8_t { ReadB, WaitB, WaitC, WaitA, Idle };

struct Slot {
  SlotPhase phase = SlotPhase::Idle;
  std::uint64_t block = 0;                 ///< Block index being processed.
  std::array<std::uint64_t, 32> b_data{};  ///< Held between B and C reads.
  std::array<std::uint64_t, 32> wr_data{}; ///< Outgoing a[] payload.
};

}  // namespace

Status run_stream_triad(sim::Simulator& sim, const StreamTriadOptions& opts,
                        KernelResult& out) {
  if (opts.block_bytes < 16 || opts.block_bytes > 256 ||
      (opts.block_bytes & (opts.block_bytes - 1)) != 0) {
    return Status::InvalidArg("block_bytes must be a power of two in "
                              "[16,256]");
  }
  if (opts.elements == 0 || opts.concurrency == 0) {
    return Status::InvalidArg("elements and concurrency must be nonzero");
  }
  const std::uint64_t words_per_block = opts.block_bytes / 8;
  const std::uint64_t num_blocks =
      (opts.elements * 8 + opts.block_bytes - 1) / opts.block_bytes;
  const std::uint64_t array_span = num_blocks * opts.block_bytes;

  std::uint64_t base_b = opts.base_b;
  std::uint64_t base_c = opts.base_c;
  std::uint64_t base_a = opts.base_a;
  if (base_a == 0 && base_b == 0 && base_c == 0) {
    base_b = 0;
    base_c = array_span;
    base_a = 2 * array_span;
  }

  // Seed b[] and c[] with recognisable values through the back door.
  {
    std::vector<std::uint8_t> buf(array_span, 0);
    auto fill = [&](std::uint64_t base, auto value_for) -> Status {
      for (std::uint64_t i = 0; i < opts.elements; ++i) {
        const std::uint64_t v = f2u(value_for(i));
        std::memcpy(buf.data() + i * 8, &v, 8);
      }
      return sim.mem_write(opts.cub, base, buf);
    };
    if (Status s =
            fill(base_b, [](std::uint64_t i) { return 1.0 + double(i); });
        !s.ok()) {
      return s;
    }
    if (Status s =
            fill(base_c, [](std::uint64_t i) { return 2.0 * double(i); });
        !s.ok()) {
      return s;
    }
  }

  out = KernelResult{};
  const auto stats0 = sim::collect_stats(sim);
  const std::uint64_t start = sim.cycle();

  const std::uint32_t slots =
      static_cast<std::uint32_t>(std::min<std::uint64_t>(
          opts.concurrency, num_blocks));
  ThreadSim ts(sim, slots);
  std::vector<Slot> slot(slots);
  std::uint64_t next_block = 0;
  std::uint64_t done_blocks = 0;

  auto send_read = [&](std::uint32_t tid, std::uint64_t base,
                       std::uint64_t block) -> Status {
    spec::RqstParams p;
    p.rqst = read_cmd(opts.block_bytes);
    p.addr = base + block * opts.block_bytes;
    p.cub = opts.cub;
    return ts.issue(tid, p);
  };
  auto send_write = [&](std::uint32_t tid, std::uint64_t block) -> Status {
    spec::RqstParams p;
    p.rqst = write_cmd(opts.block_bytes);
    p.addr = base_a + block * opts.block_bytes;
    p.cub = opts.cub;
    p.payload = {slot[tid].wr_data.data(), words_per_block};
    return ts.issue(tid, p);
  };

  auto start_next = [&](std::uint32_t tid) {
    if (next_block >= num_blocks) {
      slot[tid].phase = SlotPhase::Idle;
      return;
    }
    slot[tid].block = next_block++;
    if (send_read(tid, base_b, slot[tid].block).ok()) {
      slot[tid].phase = SlotPhase::WaitB;
    } else {
      slot[tid].phase = SlotPhase::Idle;
    }
  };

  auto on_rsp = [&](const Completion& c) {
    Slot& s = slot[c.tid];
    const auto payload = c.rsp.pkt.payload();
    switch (s.phase) {
      case SlotPhase::WaitB:
        for (std::uint64_t w = 0; w < words_per_block; ++w) {
          s.b_data[w] = w < payload.size() ? payload[w] : 0;
        }
        if (send_read(c.tid, base_c, s.block).ok()) {
          s.phase = SlotPhase::WaitC;
        }
        break;
      case SlotPhase::WaitC: {
        for (std::uint64_t w = 0; w < words_per_block; ++w) {
          const double b = u2f(s.b_data[w]);
          const double cval = u2f(w < payload.size() ? payload[w] : 0);
          s.wr_data[w] = f2u(b + opts.scalar * cval);
        }
        if (send_write(c.tid, s.block).ok()) {
          s.phase = SlotPhase::WaitA;
        }
        break;
      }
      case SlotPhase::WaitA:
        ++done_blocks;
        start_next(c.tid);
        break;
      default:
        break;
    }
  };

  for (std::uint32_t tid = 0; tid < slots; ++tid) {
    start_next(tid);
  }

  const std::uint64_t watchdog = 1000 + 200 * num_blocks;
  while (done_blocks < num_blocks) {
    if (sim.cycle() - start > watchdog) {
      return Status::Internal("stream triad watchdog expired");
    }
    ts.step(on_rsp);
  }

  out.cycles = sim.cycle() - start;
  out.operations = opts.elements;
  const auto stats1 = sim::collect_stats(sim);
  out.rqst_flits = stats1.rqst_flits - stats0.rqst_flits;
  out.rsp_flits = stats1.rsp_flits - stats0.rsp_flits;
  out.send_retries = ts.send_retries();

  if (opts.verify) {
    std::vector<std::uint8_t> buf(array_span, 0);
    if (Status s = sim.mem_read(opts.cub, base_a, buf); !s.ok()) {
      return s;
    }
    for (std::uint64_t i = 0; i < opts.elements; ++i) {
      std::uint64_t raw;
      std::memcpy(&raw, buf.data() + i * 8, 8);
      const double expect =
          (1.0 + double(i)) + opts.scalar * (2.0 * double(i));
      if (std::abs(u2f(raw) - expect) > 1e-9 * (1.0 + std::abs(expect))) {
        return Status::Internal("triad verification failed at element " +
                                std::to_string(i));
      }
    }
  }
  return Status::Ok();
}

}  // namespace hmcsim::host
