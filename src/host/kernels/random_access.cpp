#include "sim/sim_stats.hpp"
#include "host/kernels/random_access.hpp"

#include <array>
#include <cstring>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/rng.hpp"
#include "host/thread_sim.hpp"

namespace hmcsim::host {
namespace {

enum class SlotPhase : std::uint8_t { WaitRead, WaitWrite, WaitAtomic, Idle };

struct Slot {
  SlotPhase phase = SlotPhase::Idle;
  std::uint64_t value = 0;   ///< Update operand.
  std::uint64_t index = 0;   ///< Table word index.
  std::array<std::uint64_t, 2> payload{};  ///< Outgoing packet payload.
};

}  // namespace

Status run_random_access(sim::Simulator& sim,
                         const RandomAccessOptions& opts, KernelResult& out) {
  if (opts.table_words == 0 ||
      (opts.table_words & (opts.table_words - 1)) != 0) {
    return Status::InvalidArg("table_words must be a power of two");
  }
  if (opts.updates == 0 || opts.concurrency == 0) {
    return Status::InvalidArg("updates and concurrency must be nonzero");
  }
  if (opts.table_base % 16 != 0) {
    return Status::InvalidArg("table_base must be 16-byte aligned");
  }

  // Pre-generate the update stream so verification replays exactly.
  std::vector<std::uint64_t> stream(opts.updates);
  Xoshiro256 rng(opts.seed);
  for (auto& v : stream) {
    v = rng();
  }

  // Zero the table region.
  {
    const std::vector<std::uint8_t> zeros(opts.table_words * 8, 0);
    if (Status s = sim.mem_write(opts.cub, opts.table_base, zeros); !s.ok()) {
      return s;
    }
  }

  out = KernelResult{};
  const auto stats0 = sim::collect_stats(sim);
  const std::uint64_t start = sim.cycle();

  const bool atomic = opts.mode == GupsMode::Atomic;
  const std::uint32_t slots = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(opts.concurrency, opts.updates));
  ThreadSim ts(sim, slots);
  std::vector<Slot> slot(slots);
  std::uint64_t cursor = 0;
  std::uint64_t done = 0;

  // Host-side RMW loses updates when two of them hit the same 16-byte
  // block concurrently — exactly the hazard HMC atomics remove. The RMW
  // driver therefore serialises per-block, modelling the coherence
  // serialisation a real cache hierarchy would impose.
  std::unordered_set<std::uint64_t> inflight_blocks;
  std::unordered_map<std::uint64_t, std::vector<std::uint64_t>> waiting;

  auto block_of = [&](std::uint64_t index) { return index / 2; };
  auto addr_of_block = [&](std::uint64_t block) {
    return opts.table_base + block * 16;
  };

  auto send_atomic = [&](std::uint32_t tid) -> Status {
    Slot& s = slot[tid];
    const bool high = (s.index & 1) != 0;
    s.payload = {high ? 0 : s.value, high ? s.value : 0};
    spec::RqstParams p;
    p.rqst = spec::Rqst::XOR16;
    p.addr = addr_of_block(block_of(s.index));
    p.cub = opts.cub;
    p.payload = s.payload;
    return ts.issue(tid, p);
  };
  auto send_read = [&](std::uint32_t tid) -> Status {
    spec::RqstParams p;
    p.rqst = spec::Rqst::RD16;
    p.addr = addr_of_block(block_of(slot[tid].index));
    p.cub = opts.cub;
    return ts.issue(tid, p);
  };

  // Assign the next runnable update to a slot; returns false when no work
  // is currently available for it.
  auto start_update = [&](std::uint32_t tid, std::uint64_t value) {
    Slot& s = slot[tid];
    s.value = value;
    s.index = value & (opts.table_words - 1);
    if (atomic) {
      if (send_atomic(tid).ok()) {
        s.phase = SlotPhase::WaitAtomic;
        return;
      }
    } else {
      const std::uint64_t block = block_of(s.index);
      if (inflight_blocks.contains(block)) {
        waiting[block].push_back(value);
        s.phase = SlotPhase::Idle;
        return;
      }
      inflight_blocks.insert(block);
      if (send_read(tid).ok()) {
        s.phase = SlotPhase::WaitRead;
        return;
      }
      inflight_blocks.erase(block);
    }
    s.phase = SlotPhase::Idle;
  };

  auto next_for = [&](std::uint32_t tid) {
    while (cursor < stream.size()) {
      const std::uint64_t value = stream[cursor++];
      start_update(tid, value);
      if (slot[tid].phase != SlotPhase::Idle) {
        return;
      }
      // Deferred into a waiting list (block busy): pull the next update.
    }
    slot[tid].phase = SlotPhase::Idle;
  };

  auto finish_block = [&](std::uint32_t tid, std::uint64_t block) {
    inflight_blocks.erase(block);
    ++done;
    // Drain a same-block waiter first so deferred updates cannot starve.
    if (const auto it = waiting.find(block);
        it != waiting.end() && !it->second.empty()) {
      const std::uint64_t value = it->second.back();
      it->second.pop_back();
      if (it->second.empty()) {
        waiting.erase(it);
      }
      start_update(tid, value);
      return;
    }
    next_for(tid);
  };

  auto on_rsp = [&](const Completion& c) {
    Slot& s = slot[c.tid];
    switch (s.phase) {
      case SlotPhase::WaitAtomic:
        ++done;
        next_for(c.tid);
        break;
      case SlotPhase::WaitRead: {
        const auto payload = c.rsp.pkt.payload();
        const bool high = (s.index & 1) != 0;
        s.payload = {payload.size() > 0 ? payload[0] : 0,
                     payload.size() > 1 ? payload[1] : 0};
        s.payload[high ? 1 : 0] ^= s.value;
        spec::RqstParams p;
        p.rqst = spec::Rqst::WR16;
        p.addr = addr_of_block(block_of(s.index));
        p.cub = opts.cub;
        p.payload = s.payload;
        if (ts.issue(c.tid, p).ok()) {
          s.phase = SlotPhase::WaitWrite;
        }
        break;
      }
      case SlotPhase::WaitWrite:
        finish_block(c.tid, block_of(s.index));
        break;
      default:
        break;
    }
  };

  for (std::uint32_t tid = 0; tid < slots; ++tid) {
    next_for(tid);
  }

  const std::uint64_t watchdog = 1000 + 100 * opts.updates;
  while (done < opts.updates) {
    if (sim.cycle() - start > watchdog) {
      return Status::Internal("random access watchdog expired");
    }
    ts.step(on_rsp);
    // Idle slots may have runnable work again (a blocking update retired
    // through another slot's waiting list, or the cursor advanced).
    for (std::uint32_t tid = 0; tid < slots; ++tid) {
      if (slot[tid].phase == SlotPhase::Idle && ts.idle(tid) &&
          done < opts.updates) {
        next_for(tid);
      }
    }
  }

  out.cycles = sim.cycle() - start;
  out.operations = opts.updates;
  const auto stats1 = sim::collect_stats(sim);
  out.rqst_flits = stats1.rqst_flits - stats0.rqst_flits;
  out.rsp_flits = stats1.rsp_flits - stats0.rsp_flits;
  out.send_retries = ts.send_retries();

  if (opts.verify) {
    std::vector<std::uint64_t> expect(opts.table_words, 0);
    for (const std::uint64_t v : stream) {
      expect[v & (opts.table_words - 1)] ^= v;
    }
    std::vector<std::uint8_t> buf(opts.table_words * 8, 0);
    if (Status s = sim.mem_read(opts.cub, opts.table_base, buf); !s.ok()) {
      return s;
    }
    for (std::uint64_t i = 0; i < opts.table_words; ++i) {
      std::uint64_t got;
      std::memcpy(&got, buf.data() + i * 8, 8);
      if (got != expect[i]) {
        return Status::Internal("GUPS verification failed at word " +
                                std::to_string(i));
      }
    }
  }
  return Status::Ok();
}

}  // namespace hmcsim::host
