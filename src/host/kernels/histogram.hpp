// histogram.hpp — bucket-increment kernel across the atomic command classes.
//
// Histogram construction is the canonical posted-atomic workload: each
// update is a bare increment whose result nobody reads, so the posted
// P_INC8 command (1 request FLIT, *no response at all*) does the job at a
// sixth of the cache-path traffic and half the non-posted atomic's. Three
// host strategies make the whole Table I design space measurable:
//
//   ReadModifyWrite  RD16 + WR16 per update             (6 FLITs)
//   Atomic           INC8, response awaited             (2 FLITs)
//   PostedAtomic     P_INC8, fire-and-forget            (1 FLIT)
#pragma once

#include <cstdint>

#include "common/status.hpp"
#include "host/kernels/kernel_result.hpp"
#include "sim/simulator.hpp"

namespace hmcsim::host {

enum class HistogramMode : std::uint8_t {
  ReadModifyWrite,
  Atomic,
  PostedAtomic,
};

struct HistogramOptions {
  std::uint64_t updates = 8192;
  std::uint32_t buckets = 256;   ///< One 8-byte counter per 16-byte block.
  std::uint32_t concurrency = 64;
  HistogramMode mode = HistogramMode::PostedAtomic;
  std::uint64_t seed = 0xB0CCE;
  std::uint8_t cub = 0;
  std::uint64_t base = 0;  ///< 16-byte aligned bucket array base.
  bool verify = true;      ///< Compare counters to a host-side histogram.
};

[[nodiscard]] Status run_histogram(sim::Simulator& sim,
                                   const HistogramOptions& opts,
                                   KernelResult& out);

}  // namespace hmcsim::host
