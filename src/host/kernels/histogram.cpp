#include "sim/sim_stats.hpp"
#include "host/kernels/histogram.hpp"

#include <array>
#include <cstring>
#include <unordered_set>
#include <vector>

#include "common/rng.hpp"
#include "host/thread_sim.hpp"

namespace hmcsim::host {
namespace {

enum class SlotPhase : std::uint8_t { WaitInc, WaitRead, WaitWrite, Idle };

struct Slot {
  SlotPhase phase = SlotPhase::Idle;
  std::uint32_t bucket = 0;
  std::array<std::uint64_t, 2> payload{};
};

}  // namespace

Status run_histogram(sim::Simulator& sim, const HistogramOptions& opts,
                     KernelResult& out) {
  if (opts.updates == 0 || opts.buckets == 0 || opts.concurrency == 0) {
    return Status::InvalidArg(
        "updates, buckets and concurrency must be nonzero");
  }
  if (opts.base % 16 != 0) {
    return Status::InvalidArg("bucket array must be 16-byte aligned");
  }

  // Pre-generate the update stream (replayed host-side for verification).
  std::vector<std::uint32_t> stream(opts.updates);
  Xoshiro256 rng(opts.seed);
  for (auto& b : stream) {
    b = static_cast<std::uint32_t>(rng.below(opts.buckets));
  }

  // Zero the bucket array.
  {
    const std::vector<std::uint8_t> zeros(
        static_cast<std::size_t>(opts.buckets) * 16, 0);
    if (Status s = sim.mem_write(opts.cub, opts.base, zeros); !s.ok()) {
      return s;
    }
  }

  out = KernelResult{};
  const auto stats0 = sim::collect_stats(sim);
  const std::uint64_t start = sim.cycle();
  auto addr_of = [&](std::uint32_t bucket) {
    return opts.base + 16ULL * bucket;
  };

  const std::uint32_t slots = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(opts.concurrency, opts.updates));
  ThreadSim ts(sim, slots);
  std::vector<Slot> slot(slots);
  std::uint64_t cursor = 0;
  std::uint64_t completed = 0;  // Responses (non-posted) / issues (posted).

  // RMW mode loses updates on same-bucket races; serialise per bucket.
  std::unordered_set<std::uint32_t> inflight;
  std::vector<std::uint32_t> deferred;

  auto issue = [&](std::uint32_t tid, std::uint32_t bucket) -> bool {
    Slot& s = slot[tid];
    s.bucket = bucket;
    spec::RqstParams p;
    p.addr = addr_of(bucket);
    p.cub = opts.cub;
    switch (opts.mode) {
      case HistogramMode::PostedAtomic:
        p.rqst = spec::Rqst::P_INC8;
        if (ts.issue(tid, p).ok()) {
          // No response will come; the slot is immediately reusable.
          ++completed;
          s.phase = SlotPhase::Idle;
          return true;
        }
        return false;
      case HistogramMode::Atomic:
        p.rqst = spec::Rqst::INC8;
        if (ts.issue(tid, p).ok()) {
          s.phase = SlotPhase::WaitInc;
          return true;
        }
        return false;
      case HistogramMode::ReadModifyWrite:
        if (inflight.contains(bucket)) {
          deferred.push_back(bucket);
          return false;
        }
        p.rqst = spec::Rqst::RD16;
        if (ts.issue(tid, p).ok()) {
          inflight.insert(bucket);
          s.phase = SlotPhase::WaitRead;
          return true;
        }
        return false;
    }
    return false;
  };

  auto feed = [&](std::uint32_t tid) {
    while (true) {
      std::uint32_t bucket;
      if (!deferred.empty() && opts.mode == HistogramMode::ReadModifyWrite &&
          !inflight.contains(deferred.back())) {
        bucket = deferred.back();
        deferred.pop_back();
      } else if (cursor < stream.size()) {
        bucket = stream[cursor++];
      } else {
        slot[tid].phase = SlotPhase::Idle;
        return;
      }
      if (issue(tid, bucket)) {
        if (opts.mode != HistogramMode::PostedAtomic) {
          return;  // One in-flight op per slot.
        }
        // Posted: keep issuing until the link stalls the slot (pending)
        // or the stream runs dry. ThreadSim retries pending sends.
        if (!ts.idle(tid)) {
          return;
        }
      }
    }
  };

  auto on_rsp = [&](const Completion& c) {
    Slot& s = slot[c.tid];
    switch (s.phase) {
      case SlotPhase::WaitInc:
        ++completed;
        feed(c.tid);
        break;
      case SlotPhase::WaitRead: {
        const auto payload = c.rsp.pkt.payload();
        s.payload = {payload.empty() ? 1 : payload[0] + 1,
                     payload.size() > 1 ? payload[1] : 0};
        spec::RqstParams p;
        p.rqst = spec::Rqst::WR16;
        p.addr = addr_of(s.bucket);
        p.cub = opts.cub;
        p.payload = s.payload;
        if (ts.issue(c.tid, p).ok()) {
          s.phase = SlotPhase::WaitWrite;
        }
        break;
      }
      case SlotPhase::WaitWrite:
        inflight.erase(s.bucket);
        ++completed;
        feed(c.tid);
        break;
      default:
        break;
    }
  };

  for (std::uint32_t tid = 0; tid < slots; ++tid) {
    feed(tid);
  }

  const std::uint64_t watchdog = 10000 + 100 * opts.updates;
  const std::uint64_t processed0 = stats0.rqsts_processed;
  auto done = [&] {
    if (completed < opts.updates) {
      return false;
    }
    // Posted mode: "completed" counts issues; wait for the device to have
    // processed every packet so verification reads settled memory.
    return sim::collect_stats(sim).rqsts_processed - processed0 >=
           (opts.mode == HistogramMode::ReadModifyWrite ? 2 * opts.updates
                                                        : opts.updates);
  };
  while (!done()) {
    if (sim.cycle() - start > watchdog) {
      return Status::Internal("histogram watchdog expired");
    }
    ts.step(on_rsp);
    for (std::uint32_t tid = 0; tid < slots; ++tid) {
      if (slot[tid].phase == SlotPhase::Idle && ts.idle(tid) &&
          (cursor < stream.size() || !deferred.empty())) {
        feed(tid);
      }
    }
  }

  out.cycles = sim.cycle() - start;
  out.operations = opts.updates;
  const auto stats1 = sim::collect_stats(sim);
  out.rqst_flits = stats1.rqst_flits - stats0.rqst_flits;
  out.rsp_flits = stats1.rsp_flits - stats0.rsp_flits;
  out.send_retries = ts.send_retries();

  if (opts.verify) {
    std::vector<std::uint64_t> expect(opts.buckets, 0);
    for (const std::uint32_t b : stream) {
      ++expect[b];
    }
    std::vector<std::uint8_t> buf(
        static_cast<std::size_t>(opts.buckets) * 16, 0);
    if (Status s = sim.mem_read(opts.cub, opts.base, buf); !s.ok()) {
      return s;
    }
    for (std::uint32_t b = 0; b < opts.buckets; ++b) {
      std::uint64_t got = 0;
      std::memcpy(&got, buf.data() + static_cast<std::size_t>(b) * 16, 8);
      if (got != expect[b]) {
        return Status::Internal(
            "histogram mismatch at bucket " + std::to_string(b) + ": got " +
            std::to_string(got) + " expected " + std::to_string(expect[b]));
      }
    }
  }
  return Status::Ok();
}

}  // namespace hmcsim::host
