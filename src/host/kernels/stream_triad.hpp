// stream_triad.hpp — the STREAM Triad kernel (a[i] = b[i] + s*c[i]).
//
// HMC-Sim 1.0's evaluation kernel, carried forward: a stride-1 bandwidth
// probe whose accesses interleave across every vault. The simulated host
// issues block reads for b and c and a block write for a, with a
// configurable number of concurrent in-flight elements standing in for the
// host's memory-level parallelism.
#pragma once

#include <cstdint>

#include "common/status.hpp"
#include "host/kernels/kernel_result.hpp"
#include "sim/simulator.hpp"

namespace hmcsim::host {

struct StreamTriadOptions {
  std::uint64_t elements = 1024;  ///< Triad elements (8-byte doubles).
  std::uint32_t block_bytes = 64; ///< Access granularity (16..256).
  std::uint32_t concurrency = 32; ///< Simultaneously active elements.
  double scalar = 3.0;            ///< The Triad scalar s.
  std::uint8_t cub = 0;
  std::uint64_t base_a = 0;       ///< Array base addresses (auto-spaced
  std::uint64_t base_b = 0;       ///< when left zero).
  std::uint64_t base_c = 0;
  bool verify = true;             ///< Check a[] contents afterwards.
};

/// Run the kernel to completion; fails on watchdog expiry or (with
/// verify=true) an incorrect result vector.
[[nodiscard]] Status run_stream_triad(sim::Simulator& sim,
                                      const StreamTriadOptions& opts,
                                      KernelResult& out);

}  // namespace hmcsim::host
