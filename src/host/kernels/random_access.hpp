// random_access.hpp — the HPCC RandomAccess (GUPS) kernel.
//
// HMC-Sim 1.0's second evaluation kernel: random 8-byte XOR updates over a
// large table. Two host strategies are provided, making the kernel double
// as the AMO-benefit demonstrator:
//
//   * ReadModifyWrite — the classic host-side update (RD16 + WR16 per
//     update), i.e. what a cache-based host must do.
//   * Atomic          — one XOR16 HMC atomic per update (the PIM path).
//
// Updates use the HPCC LCG-style random stream, seeded explicitly.
#pragma once

#include <cstdint>

#include "common/status.hpp"
#include "host/kernels/kernel_result.hpp"
#include "sim/simulator.hpp"

namespace hmcsim::host {

enum class GupsMode : std::uint8_t {
  ReadModifyWrite,  ///< Host-side RMW: RD16 then WR16.
  Atomic,           ///< Device-side XOR16 atomic.
};

struct RandomAccessOptions {
  std::uint64_t table_words = 1 << 16;  ///< Table size in 8-byte words
                                        ///< (power of two).
  std::uint64_t updates = 4096;         ///< Number of updates.
  std::uint32_t concurrency = 64;       ///< Simultaneous updates in flight.
  GupsMode mode = GupsMode::Atomic;
  std::uint64_t seed = 0x2545F4914F6CDD1DULL;
  std::uint8_t cub = 0;
  std::uint64_t table_base = 0;
  bool verify = true;  ///< Replay updates host-side and compare tables.
};

[[nodiscard]] Status run_random_access(sim::Simulator& sim,
                                       const RandomAccessOptions& opts,
                                       KernelResult& out);

}  // namespace hmcsim::host
