// bfs.hpp — breadth-first search with in-memory compare-and-swap.
//
// Reproduces the related-work case study the paper cites (Nai & Kim,
// MEMSYS'15): accelerating graph traversal by replacing the host-side
// "check-and-update" of the visited array with the HMC 2.0 CAS commands.
// The visited/level array lives in cube memory; frontier expansion claims
// vertices either with
//   * CasAtomic       one CASEQ8 per edge (4 FLITs, one round trip), or
//   * ReadModifyWrite RD16 + conditional WR16 (6 FLITs, two round trips),
// so the kernel exposes both the bandwidth and the latency sides of the
// PIM argument on an irregular workload. The graph itself is a synthetic
// random graph generated host-side (adjacency is host state; only the
// contended visited array is in-memory, exactly the cited kernel's shape).
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.hpp"
#include "host/kernels/kernel_result.hpp"
#include "sim/simulator.hpp"

namespace hmcsim::host {

enum class BfsMode : std::uint8_t {
  CasAtomic,        ///< CASEQ8 claims vertices in-memory.
  ReadModifyWrite,  ///< Host-side check-and-update (RD16 + WR16).
};

struct BfsOptions {
  std::uint32_t vertices = 1024;
  std::uint32_t avg_degree = 8;
  std::uint64_t seed = 42;
  std::uint32_t root = 0;
  std::uint32_t concurrency = 32;  ///< Edges probed in parallel.
  BfsMode mode = BfsMode::CasAtomic;
  std::uint8_t cub = 0;
  std::uint64_t visited_base = 0;  ///< 16-byte aligned array base.
  bool verify = true;  ///< Check levels against a host-side BFS.
};

struct BfsResult {
  KernelResult kernel;
  std::uint32_t reached = 0;       ///< Vertices visited.
  std::uint32_t max_level = 0;     ///< Eccentricity from the root.
  std::uint64_t edges_probed = 0;  ///< Claim attempts issued.
};

[[nodiscard]] Status run_bfs(sim::Simulator& sim, const BfsOptions& opts,
                             BfsResult& out);

}  // namespace hmcsim::host
