#include "sim/sim_stats.hpp"
#include "host/kernels/bfs.hpp"

#include <array>
#include <cstring>
#include <deque>
#include <queue>

#include "common/rng.hpp"
#include "host/thread_sim.hpp"

namespace hmcsim::host {
namespace {

/// Synthetic undirected random graph in adjacency-list form.
std::vector<std::vector<std::uint32_t>> make_graph(std::uint32_t vertices,
                                                   std::uint32_t avg_degree,
                                                   std::uint64_t seed) {
  std::vector<std::vector<std::uint32_t>> adj(vertices);
  Xoshiro256 rng(seed);
  const std::uint64_t edges =
      static_cast<std::uint64_t>(vertices) * avg_degree / 2;
  for (std::uint64_t e = 0; e < edges; ++e) {
    const auto u = static_cast<std::uint32_t>(rng.below(vertices));
    const auto v = static_cast<std::uint32_t>(rng.below(vertices));
    if (u == v) {
      continue;
    }
    adj[u].push_back(v);
    adj[v].push_back(u);
  }
  return adj;
}

/// Reference BFS levels (level+1 encoding; 0 = unreached).
std::vector<std::uint64_t> reference_levels(
    const std::vector<std::vector<std::uint32_t>>& adj, std::uint32_t root) {
  std::vector<std::uint64_t> level(adj.size(), 0);
  std::queue<std::uint32_t> frontier;
  level[root] = 1;
  frontier.push(root);
  while (!frontier.empty()) {
    const std::uint32_t u = frontier.front();
    frontier.pop();
    for (const std::uint32_t v : adj[u]) {
      if (level[v] == 0) {
        level[v] = level[u] + 1;
        frontier.push(v);
      }
    }
  }
  return level;
}

enum class SlotPhase : std::uint8_t { WaitCas, WaitRead, WaitWrite, Idle };

struct Slot {
  SlotPhase phase = SlotPhase::Idle;
  std::uint32_t vertex = 0;
  std::array<std::uint64_t, 2> payload{};
};

}  // namespace

Status run_bfs(sim::Simulator& sim, const BfsOptions& opts, BfsResult& out) {
  if (opts.vertices == 0 || opts.root >= opts.vertices) {
    return Status::InvalidArg("root must name an existing vertex");
  }
  if (opts.concurrency == 0) {
    return Status::InvalidArg("concurrency must be nonzero");
  }
  if (opts.visited_base % 16 != 0) {
    return Status::InvalidArg("visited array must be 16-byte aligned");
  }

  const auto adj = make_graph(opts.vertices, opts.avg_degree, opts.seed);

  // Zero the visited array (one 16-byte block per vertex: CAS-friendly
  // and free of false sharing between claims).
  {
    const std::vector<std::uint8_t> zeros(
        static_cast<std::size_t>(opts.vertices) * 16, 0);
    if (Status s = sim.mem_write(opts.cub, opts.visited_base, zeros);
        !s.ok()) {
      return s;
    }
  }

  out = BfsResult{};
  const auto stats0 = sim::collect_stats(sim);
  const std::uint64_t start = sim.cycle();
  const bool cas_mode = opts.mode == BfsMode::CasAtomic;

  ThreadSim ts(sim, opts.concurrency);
  std::vector<Slot> slot(opts.concurrency);
  auto addr_of = [&](std::uint32_t v) {
    return opts.visited_base + 16ULL * v;
  };

  // Claim the root at level 1 through the same machinery (one CAS/WR).
  std::vector<std::uint32_t> frontier;
  std::vector<std::uint32_t> next_frontier;
  std::vector<bool> queued(opts.vertices, false);  // Host-side dedup.
  {
    const std::array<std::uint8_t, 8> one{1};
    if (Status s = sim.mem_write(opts.cub, addr_of(opts.root), one);
        !s.ok()) {
      return s;
    }
    frontier.push_back(opts.root);
    queued[opts.root] = true;
    out.reached = 1;
  }

  std::uint64_t level = 1;  // Encoded level of the current frontier.
  // Edge work list for the running level.
  std::deque<std::uint32_t> work;

  auto issue_claim = [&](std::uint32_t tid, std::uint32_t v) -> bool {
    Slot& s = slot[tid];
    s.vertex = v;
    ++out.edges_probed;
    if (cas_mode) {
      // CASEQ8: swap in (level+1) when the word is still 0.
      s.payload = {level + 1, 0};
      spec::RqstParams p;
      p.rqst = spec::Rqst::CASEQ8;
      p.addr = addr_of(v);
      p.cub = opts.cub;
      p.payload = s.payload;
      if (ts.issue(tid, p).ok()) {
        s.phase = SlotPhase::WaitCas;
        return true;
      }
    } else {
      spec::RqstParams p;
      p.rqst = spec::Rqst::RD16;
      p.addr = addr_of(v);
      p.cub = opts.cub;
      if (ts.issue(tid, p).ok()) {
        s.phase = SlotPhase::WaitRead;
        return true;
      }
    }
    s.phase = SlotPhase::Idle;
    return false;
  };

  auto feed = [&](std::uint32_t tid) {
    while (!work.empty()) {
      const std::uint32_t v = work.front();
      work.pop_front();
      if (queued[v]) {
        continue;  // Already claimed/claim-in-flight this search.
      }
      if (issue_claim(tid, v)) {
        return;
      }
    }
    slot[tid].phase = SlotPhase::Idle;
  };

  auto claim_success = [&](std::uint32_t v) {
    if (!queued[v]) {
      queued[v] = true;
      next_frontier.push_back(v);
      ++out.reached;
    }
  };

  auto on_rsp = [&](const Completion& c) {
    Slot& s = slot[c.tid];
    switch (s.phase) {
      case SlotPhase::WaitCas:
        if (c.rsp.pkt.atomic_flag()) {
          claim_success(s.vertex);
        }
        feed(c.tid);
        break;
      case SlotPhase::WaitRead: {
        const auto payload = c.rsp.pkt.payload();
        const std::uint64_t word0 = payload.empty() ? 0 : payload[0];
        if (word0 == 0) {
          // Unvisited: write the level (host-side check-and-update; a
          // concurrent claim writes the same value, so it is idempotent).
          s.payload = {level + 1, 0};
          spec::RqstParams p;
          p.rqst = spec::Rqst::WR16;
          p.addr = addr_of(s.vertex);
          p.cub = opts.cub;
          p.payload = s.payload;
          if (ts.issue(c.tid, p).ok()) {
            s.phase = SlotPhase::WaitWrite;
            return;
          }
        }
        feed(c.tid);
        break;
      }
      case SlotPhase::WaitWrite:
        claim_success(s.vertex);
        feed(c.tid);
        break;
      default:
        break;
    }
  };

  const std::uint64_t watchdog =
      100000 + 200ULL * opts.vertices * opts.avg_degree;
  while (!frontier.empty()) {
    // Expand the frontier into the edge work list.
    work.clear();
    for (const std::uint32_t u : frontier) {
      for (const std::uint32_t v : adj[u]) {
        work.push_back(v);
      }
    }
    next_frontier.clear();
    for (std::uint32_t tid = 0; tid < opts.concurrency; ++tid) {
      feed(tid);
    }
    auto level_busy = [&] {
      if (!work.empty()) {
        return true;
      }
      for (std::uint32_t tid = 0; tid < opts.concurrency; ++tid) {
        if (slot[tid].phase != SlotPhase::Idle || !ts.idle(tid)) {
          return true;
        }
      }
      return false;
    };
    while (level_busy()) {
      if (sim.cycle() - start > watchdog) {
        return Status::Internal("BFS watchdog expired");
      }
      ts.step(on_rsp);
      for (std::uint32_t tid = 0; tid < opts.concurrency; ++tid) {
        if (slot[tid].phase == SlotPhase::Idle && ts.idle(tid) &&
            !work.empty()) {
          feed(tid);
        }
      }
    }
    frontier.swap(next_frontier);
    out.max_level = static_cast<std::uint32_t>(level);
    ++level;
  }

  out.kernel.cycles = sim.cycle() - start;
  out.kernel.operations = out.edges_probed;
  const auto stats1 = sim::collect_stats(sim);
  out.kernel.rqst_flits =
      stats1.rqst_flits - stats0.rqst_flits;
  out.kernel.rsp_flits =
      stats1.rsp_flits - stats0.rsp_flits;
  out.kernel.send_retries = ts.send_retries();

  if (opts.verify) {
    const auto expect = reference_levels(adj, opts.root);
    std::vector<std::uint8_t> buf(
        static_cast<std::size_t>(opts.vertices) * 16, 0);
    if (Status s = sim.mem_read(opts.cub, opts.visited_base, buf); !s.ok()) {
      return s;
    }
    for (std::uint32_t v = 0; v < opts.vertices; ++v) {
      std::uint64_t got = 0;
      std::memcpy(&got, buf.data() + static_cast<std::size_t>(v) * 16, 8);
      if (got != expect[v]) {
        return Status::Internal(
            "BFS level mismatch at vertex " + std::to_string(v) + ": got " +
            std::to_string(got) + " expected " + std::to_string(expect[v]));
      }
    }
  }
  return Status::Ok();
}

}  // namespace hmcsim::host
