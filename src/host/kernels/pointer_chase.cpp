#include "sim/sim_stats.hpp"
#include "host/kernels/pointer_chase.hpp"

#include <cstring>
#include <numeric>
#include <vector>

#include "common/rng.hpp"
#include "host/thread_sim.hpp"

namespace hmcsim::host {

Status run_pointer_chase(sim::Simulator& sim, const PointerChaseOptions& opts,
                         KernelResult& out) {
  if (opts.nodes < 2) {
    return Status::InvalidArg("need at least two nodes");
  }
  if (opts.chains == 0 || opts.hops == 0) {
    return Status::InvalidArg("chains and hops must be nonzero");
  }
  if (opts.base % 16 != 0) {
    return Status::InvalidArg("table base must be 16-byte aligned");
  }

  // Build one random cyclic permutation (Sattolo's algorithm) shared by
  // every chain; chains start at different offsets.
  std::vector<std::uint64_t> next(opts.nodes);
  std::iota(next.begin(), next.end(), 0);
  Xoshiro256 rng(opts.seed);
  for (std::uint64_t i = opts.nodes - 1; i > 0; --i) {
    const std::uint64_t j = rng.below(i);
    std::swap(next[i], next[j]);
  }

  {
    std::vector<std::uint8_t> buf(opts.nodes * 16, 0);
    for (std::uint64_t i = 0; i < opts.nodes; ++i) {
      std::memcpy(buf.data() + i * 16, &next[i], 8);
    }
    if (Status s = sim.mem_write(opts.cub, opts.base, buf); !s.ok()) {
      return s;
    }
  }

  out = KernelResult{};
  const auto stats0 = sim::collect_stats(sim);
  const std::uint64_t start = sim.cycle();

  ThreadSim ts(sim, opts.chains);
  std::vector<std::uint64_t> position(opts.chains);
  std::vector<std::uint64_t> remaining(opts.chains, opts.hops);
  std::uint64_t done_chains = 0;

  auto send_hop = [&](std::uint32_t tid) -> Status {
    spec::RqstParams p;
    p.rqst = spec::Rqst::RD16;
    p.addr = opts.base + position[tid] * 16;
    p.cub = opts.cub;
    return ts.issue(tid, p);
  };

  for (std::uint32_t c = 0; c < opts.chains; ++c) {
    position[c] = c % opts.nodes;
    if (Status s = send_hop(c); !s.ok()) {
      return s;
    }
  }

  auto on_rsp = [&](const Completion& c) {
    const auto payload = c.rsp.pkt.payload();
    position[c.tid] = payload.empty() ? 0 : payload[0];
    if (--remaining[c.tid] == 0) {
      ++done_chains;
      return;
    }
    (void)send_hop(c.tid);
  };

  const std::uint64_t watchdog = 1000 + 100 * opts.hops;
  while (done_chains < opts.chains) {
    if (sim.cycle() - start > watchdog) {
      return Status::Internal("pointer chase watchdog expired");
    }
    ts.step(on_rsp);
  }

  out.cycles = sim.cycle() - start;
  out.operations = static_cast<std::uint64_t>(opts.chains) * opts.hops;
  const auto stats1 = sim::collect_stats(sim);
  out.rqst_flits = stats1.rqst_flits - stats0.rqst_flits;
  out.rsp_flits = stats1.rsp_flits - stats0.rsp_flits;
  out.send_retries = ts.send_retries();
  return Status::Ok();
}

}  // namespace hmcsim::host
