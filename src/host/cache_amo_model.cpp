#include "sim/sim_stats.hpp"
#include "host/cache_amo_model.hpp"

#include <array>

#include "spec/flit.hpp"

namespace hmcsim::host {
namespace {

/// Read/write command pair matching a cache-line size.
spec::Rqst read_for_line(std::uint32_t line_bytes) {
  switch (line_bytes) {
    case 16:
      return spec::Rqst::RD16;
    case 32:
      return spec::Rqst::RD32;
    case 64:
      return spec::Rqst::RD64;
    case 128:
      return spec::Rqst::RD128;
    default:
      return spec::Rqst::RD256;
  }
}

spec::Rqst write_for_line(std::uint32_t line_bytes) {
  switch (line_bytes) {
    case 16:
      return spec::Rqst::WR16;
    case 32:
      return spec::Rqst::WR32;
    case 64:
      return spec::Rqst::WR64;
    case 128:
      return spec::Rqst::WR128;
    default:
      return spec::Rqst::WR256;
  }
}

/// Drive `count` iterations of a two-phase (or one-phase) request pattern
/// to completion and report link FLIT deltas.
struct TrafficProbe {
  std::uint64_t rqst0 = 0;
  std::uint64_t rsp0 = 0;

  explicit TrafficProbe(const sim::Simulator& sim) {
    const auto s = sim::collect_stats(sim);
    rqst0 = s.rqst_flits;
    rsp0 = s.rsp_flits;
  }
  void finish(const sim::Simulator& sim, std::uint64_t cycles,
              MeasuredAmoTraffic& out) const {
    const auto s = sim::collect_stats(sim);
    out.rqst_flits = s.rqst_flits - rqst0;
    out.rsp_flits = s.rsp_flits - rsp0;
    out.cycles = cycles;
  }
};

/// Send one request and clock until its response arrives on link 0.
Status roundtrip(sim::Simulator& sim, const spec::RqstParams& params,
                 bool expect_rsp) {
  Status s = sim.send(params, 0);
  while (s.stalled()) {
    sim.clock();
    s = sim.send(params, 0);
  }
  if (!s.ok()) {
    return s;
  }
  if (!expect_rsp) {
    return Status::Ok();
  }
  for (int guard = 0; guard < 1000; ++guard) {
    sim.clock();
    if (sim.rsp_ready(0)) {
      sim::Response rsp;
      return sim.recv(0, rsp);
    }
  }
  return Status::Internal("no response within 1000 cycles");
}

}  // namespace

AmoCost cache_amo_cost(std::uint32_t line_bytes) {
  // Read line + write line, each a full packet: header/tail FLIT plus the
  // line's data FLITs in the direction that carries data.
  const auto data_flits =
      static_cast<std::uint64_t>(spec::data_flits(line_bytes));
  AmoCost cost;
  cost.request_flits = 1 + (1 + data_flits);   // RD rqst + WR rqst
  cost.response_flits = (1 + data_flits) + 1;  // RD rsp + WR rsp
  return cost;
}

AmoCost hmc_amo_cost(spec::Rqst amo) {
  const spec::CommandInfo& info = spec::command_info(amo);
  return AmoCost{info.rqst_flits, info.rsp_flits};
}

Status measure_cache_amo(sim::Simulator& sim, std::uint32_t count,
                         std::uint32_t line_bytes, MeasuredAmoTraffic& out) {
  out = MeasuredAmoTraffic{};
  const TrafficProbe probe(sim);
  const std::uint64_t start = sim.cycle();
  std::array<std::uint64_t, 32> line{};

  for (std::uint32_t i = 0; i < count; ++i) {
    // Fetch the line...
    spec::RqstParams rd;
    rd.rqst = read_for_line(line_bytes);
    rd.addr = 0;
    if (Status s = roundtrip(sim, rd, true); !s.ok()) {
      return s;
    }
    // ...modify (the increment happens host-side in this model)...
    line[0] += 1;
    // ...and write it back.
    spec::RqstParams wr;
    wr.rqst = write_for_line(line_bytes);
    wr.addr = 0;
    wr.payload = {line.data(), 2ULL * spec::data_flits(line_bytes)};
    if (Status s = roundtrip(sim, wr, true); !s.ok()) {
      return s;
    }
  }
  probe.finish(sim, sim.cycle() - start, out);
  return Status::Ok();
}

Status measure_hmc_amo(sim::Simulator& sim, std::uint32_t count,
                       MeasuredAmoTraffic& out) {
  out = MeasuredAmoTraffic{};
  const TrafficProbe probe(sim);
  const std::uint64_t start = sim.cycle();

  for (std::uint32_t i = 0; i < count; ++i) {
    spec::RqstParams inc;
    inc.rqst = spec::Rqst::INC8;
    inc.addr = 0;
    if (Status s = roundtrip(sim, inc, true); !s.ok()) {
      return s;
    }
  }
  probe.finish(sim, sim.cycle() - start, out);
  return Status::Ok();
}

}  // namespace hmcsim::host
