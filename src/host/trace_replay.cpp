#include "host/trace_replay.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

namespace hmcsim::host {

Status parse_trace(std::istream& in, std::vector<TraceRecord>& out) {
  out.clear();
  std::string line;
  std::size_t line_no = 0;
  std::uint64_t prev_cycle = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') {
      continue;
    }
    std::istringstream fields(line);
    TraceRecord rec;
    std::string cmd_name;
    unsigned link = 0;
    unsigned cub = 0;
    if (!(fields >> rec.issue_cycle >> link >> cmd_name >> cub >> std::hex >>
          rec.addr)) {
      return Status::InvalidArg("trace line " + std::to_string(line_no) +
                                ": expected <cycle> <link> <cmd> <cub> "
                                "<addr-hex>");
    }
    const auto rqst = spec::parse_rqst(cmd_name);
    if (!rqst.has_value()) {
      return Status::InvalidArg("trace line " + std::to_string(line_no) +
                                ": unknown command '" + cmd_name + "'");
    }
    rec.rqst = *rqst;
    rec.link = link;
    if (cub > spec::kMaxCub) {
      return Status::InvalidArg("trace line " + std::to_string(line_no) +
                                ": cub out of range");
    }
    rec.cub = static_cast<std::uint8_t>(cub);
    std::uint64_t word = 0;
    while (fields >> word) {
      rec.payload.push_back(word);
    }
    if (rec.payload.size() > 32) {
      return Status::InvalidArg("trace line " + std::to_string(line_no) +
                                ": payload exceeds 32 words");
    }
    if (rec.issue_cycle < prev_cycle) {
      return Status::InvalidArg("trace line " + std::to_string(line_no) +
                                ": issue cycles must be non-decreasing");
    }
    prev_cycle = rec.issue_cycle;
    out.push_back(std::move(rec));
  }
  return Status::Ok();
}

Status load_trace(const std::string& path, std::vector<TraceRecord>& out) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::NotFound("cannot open trace file: " + path);
  }
  return parse_trace(in, out);
}

void write_trace(std::ostream& os, const std::vector<TraceRecord>& records) {
  os << "# hmcsim trace: <cycle> <link> <cmd> <cub> <addr-hex> "
        "[payload-hex...]\n";
  for (const TraceRecord& rec : records) {
    os << std::dec << rec.issue_cycle << ' ' << rec.link << ' '
       << spec::to_string(rec.rqst) << ' ' << unsigned(rec.cub) << ' '
       << std::hex << rec.addr;
    for (const std::uint64_t w : rec.payload) {
      os << ' ' << w;
    }
    os << std::dec << '\n';
  }
}

Status save_trace(const std::string& path,
                  const std::vector<TraceRecord>& records) {
  std::ofstream os(path);
  if (!os.is_open()) {
    return Status::InvalidArg("cannot open trace file for write: " + path);
  }
  write_trace(os, records);
  return os.good() ? Status::Ok()
                   : Status::Internal("short write to " + path);
}

Status replay_trace(sim::Simulator& sim,
                    const std::vector<TraceRecord>& records,
                    ReplayResult& out) {
  out = ReplayResult{};
  const auto stats0 = sim.stats();
  const std::uint64_t base_cycle = sim.cycle();
  const std::uint64_t ff0 = sim.fast_forwarded_cycles();
  std::size_t next = 0;        // First not-yet-issued record.
  std::uint64_t expected = 0;  // Non-posted requests awaiting responses.
  std::uint16_t tag = 0;

  auto is_posted = [&sim](spec::Rqst rqst) {
    if (spec::is_cmc(rqst)) {
      const cmc::CmcOp* op = sim.cmc_registry().lookup(rqst);
      return op == nullptr ? false : op->posted();
    }
    return spec::command_info(rqst).rsp_flits == 0;
  };

  std::uint64_t first_issue = 0;
  bool issued_any = false;
  while (next < records.size() || expected > 0) {
    const std::uint64_t rel_cycle = sim.cycle() - base_cycle;
    // Issue every record due this cycle; a stalled head blocks the rest
    // (host queue semantics).
    while (next < records.size() &&
           records[next].issue_cycle <= rel_cycle) {
      const TraceRecord& rec = records[next];
      spec::RqstParams params;
      params.rqst = rec.rqst;
      params.addr = rec.addr;
      params.cub = rec.cub;
      params.tag = tag;
      params.payload = rec.payload;
      const Status s = sim.send(params, rec.link);
      if (s.stalled()) {
        ++out.send_retries;
        break;
      }
      if (!s.ok()) {
        return Status(s.code(), "replay record " + std::to_string(next) +
                                    ": " + s.message());
      }
      tag = static_cast<std::uint16_t>((tag + 1) & spec::kMaxTag);
      if (!issued_any) {
        issued_any = true;
        first_issue = sim.cycle();
      }
      ++out.requests_issued;
      if (!is_posted(rec.rqst)) {
        ++expected;
      }
      ++next;
    }

    // Fast-forward dead time between trace issue cycles: when no response
    // is waiting (recv() timestamps latency at recv time, so a ready
    // response pins us to this cycle) and the device cannot progress
    // before the next record's issue cycle, jump straight there. Capped
    // at the watchdog deadline so a quiet-but-hung replay still trips it.
    const std::uint64_t deadline = base_cycle + records.size() * 100 + 100000;
    bool rsp_waiting = false;
    for (std::uint32_t link = 0; link < sim.config().num_links; ++link) {
      if (sim.rsp_ready(link)) {
        rsp_waiting = true;
        break;
      }
    }
    std::uint64_t target = sim::Simulator::kNoEvent;
    if (!sim.config().exhaustive_clock && !rsp_waiting) {
      target = sim.next_event_cycle();
      if (next < records.size()) {
        target = std::min(target, base_cycle + records[next].issue_cycle);
      }
      target = std::min(target, deadline + 1);
    }
    if (target != sim::Simulator::kNoEvent && target > sim.cycle() + 1) {
      sim.clock_until(target);
    } else {
      sim.clock();
    }

    for (std::uint32_t link = 0; link < sim.config().num_links; ++link) {
      sim::Response rsp;
      while (sim.recv(link, rsp).ok()) {
        ++out.responses_received;
        if (rsp.pkt.cmd() ==
            static_cast<std::uint8_t>(spec::ResponseType::RSP_ERROR)) {
          ++out.error_responses;
        }
        --expected;
      }
    }

    // Watchdog: a replay that makes no forward progress for a long time
    // indicates an unregistered CMC or a deadlocked configuration.
    if (sim.cycle() - base_cycle >
        records.size() * 100 + 100000) {
      return Status::Internal("trace replay watchdog expired");
    }
  }

  out.cycles = issued_any ? sim.cycle() - first_issue : 0;
  const auto stats1 = sim.stats();
  out.rqst_flits = stats1.rqst_flits - stats0.rqst_flits;
  out.rsp_flits = stats1.rsp_flits - stats0.rsp_flits;
  out.fast_forwarded = sim.fast_forwarded_cycles() - ff0;
  return Status::Ok();
}

TraceBuilder& TraceBuilder::add(spec::Rqst rqst, std::uint64_t addr,
                                std::vector<std::uint64_t> payload,
                                std::uint64_t gap, std::uint8_t cub) {
  TraceRecord rec;
  cycle_ += gap;
  rec.issue_cycle = cycle_;
  rec.link = next_link_;
  next_link_ = (next_link_ + 1) % num_links_;
  rec.rqst = rqst;
  rec.cub = cub;
  rec.addr = addr;
  rec.payload = std::move(payload);
  records_.push_back(std::move(rec));
  return *this;
}

}  // namespace hmcsim::host
