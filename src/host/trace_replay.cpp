#include "host/trace_replay.hpp"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "backend/hmc_backend.hpp"
#include "frontend/replay_frontend.hpp"
#include "frontend/runner.hpp"

namespace hmcsim::host {

Status parse_trace(std::istream& in, std::vector<TraceRecord>& out) {
  out.clear();
  std::string line;
  std::size_t line_no = 0;
  std::uint64_t prev_cycle = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') {
      line.pop_back();  // Accept CRLF line endings.
    }
    const auto first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') {
      continue;
    }
    std::istringstream fields(line);
    TraceRecord rec;
    std::string cmd_name;
    unsigned link = 0;
    unsigned cub = 0;
    if (!(fields >> rec.issue_cycle >> link >> cmd_name >> cub >> std::hex >>
          rec.addr)) {
      return Status::InvalidArg("trace line " + std::to_string(line_no) +
                                ": expected <cycle> <link> <cmd> <cub> "
                                "<addr-hex>");
    }
    const auto rqst = spec::parse_rqst(cmd_name);
    if (!rqst.has_value()) {
      return Status::InvalidArg("trace line " + std::to_string(line_no) +
                                ": unknown command '" + cmd_name + "'");
    }
    rec.rqst = *rqst;
    rec.link = link;
    if (cub > spec::kMaxCub) {
      return Status::InvalidArg("trace line " + std::to_string(line_no) +
                                ": cub out of range");
    }
    rec.cub = static_cast<std::uint8_t>(cub);
    // Payload words (hex). Anything from a '#' on is a trailing comment;
    // a token that is not a hex number is a hard, line-numbered error —
    // silently dropping it would replay a different request than the
    // trace describes.
    std::string tok;
    while (fields >> tok) {
      if (tok[0] == '#') {
        break;
      }
      errno = 0;
      char* end = nullptr;
      const unsigned long long word = std::strtoull(tok.c_str(), &end, 16);
      if (end == tok.c_str() || *end != '\0' || errno == ERANGE) {
        return Status::InvalidArg("trace line " + std::to_string(line_no) +
                                  ": malformed payload word '" + tok + "'");
      }
      rec.payload.push_back(word);
    }
    if (rec.payload.size() > 32) {
      return Status::InvalidArg("trace line " + std::to_string(line_no) +
                                ": payload exceeds 32 words");
    }
    if (rec.issue_cycle < prev_cycle) {
      return Status::InvalidArg("trace line " + std::to_string(line_no) +
                                ": issue cycles must be non-decreasing");
    }
    prev_cycle = rec.issue_cycle;
    out.push_back(std::move(rec));
  }
  return Status::Ok();
}

Status load_trace(const std::string& path, std::vector<TraceRecord>& out) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::NotFound("cannot open trace file: " + path);
  }
  return parse_trace(in, out);
}

void write_trace(std::ostream& os, const std::vector<TraceRecord>& records) {
  os << "# hmcsim trace: <cycle> <link> <cmd> <cub> <addr-hex> "
        "[payload-hex...]\n";
  for (const TraceRecord& rec : records) {
    os << std::dec << rec.issue_cycle << ' ' << rec.link << ' '
       << spec::to_string(rec.rqst) << ' ' << unsigned(rec.cub) << ' '
       << std::hex << rec.addr;
    for (const std::uint64_t w : rec.payload) {
      os << ' ' << w;
    }
    os << std::dec << '\n';
  }
}

Status save_trace(const std::string& path,
                  const std::vector<TraceRecord>& records) {
  std::ofstream os(path);
  if (!os.is_open()) {
    return Status::InvalidArg("cannot open trace file for write: " + path);
  }
  write_trace(os, records);
  return os.good() ? Status::Ok()
                   : Status::Internal("short write to " + path);
}

Status replay_trace(sim::Simulator& sim,
                    const std::vector<TraceRecord>& records,
                    ReplayResult& out) {
  // Legacy entry point, now a thin wrapper over the frontend/backend
  // seam: same loop, one implementation, byte-identical results.
  backend::HmcBackend mem(sim);
  frontend::ReplayFrontend fe(records);
  const Status s = frontend::run(mem, fe);
  out = fe.result();
  return s;
}

TraceBuilder& TraceBuilder::add(spec::Rqst rqst, std::uint64_t addr,
                                std::vector<std::uint64_t> payload,
                                std::uint64_t gap, std::uint8_t cub) {
  TraceRecord rec;
  cycle_ += gap;
  rec.issue_cycle = cycle_;
  rec.link = next_link_;
  next_link_ = (next_link_ + 1) % num_links_;
  rec.rqst = rqst;
  rec.cub = cub;
  rec.addr = addr;
  rec.payload = std::move(payload);
  records_.push_back(std::move(rec));
  return *this;
}

}  // namespace hmcsim::host
