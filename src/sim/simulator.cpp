#include "sim/simulator.hpp"

#include <algorithm>
#include <bit>

#include "sim/parallel.hpp"
#include "sim/prof.hpp"

namespace hmcsim::sim {

namespace {

/// Cycles per parallel span between scheduler re-plans: long enough to
/// amortize the pool handshake, short enough that a quiescent stretch is
/// noticed and fast-forwarded promptly.
constexpr std::uint64_t kSpanChunk = 64;

}  // namespace

Simulator::Simulator(const Config& cfg) : cfg_(cfg) {
  devices_.reserve(cfg.num_devs);
  for (std::uint32_t d = 0; d < cfg.num_devs; ++d) {
    devices_.push_back(std::make_unique<dev::Device>(cfg, d, registry_));
  }

  // Topology wiring: `prev_[d]` is device d's neighbour toward the host
  // (stage A follows it); `routers_[d]` resolves request forwarding
  // targets (stage C follows it). Both are fixed for the simulator's
  // lifetime, so resolve them here rather than every clock.
  const bool star = cfg.topology == Topology::Star;
  prev_.resize(cfg.num_devs, nullptr);
  routers_.resize(cfg.num_devs);
  for (std::size_t d = 1; d < devices_.size(); ++d) {
    prev_[d] = star ? devices_[0].get() : devices_[d - 1].get();
  }
  for (std::size_t d = 0; d < devices_.size(); ++d) {
    if (star) {
      // Only the hub forwards; it reaches every spoke directly.
      if (d == 0) {
        routers_[d] = [this](std::uint8_t cub) -> dev::Device* {
          return cub < devices_.size() ? devices_[cub].get() : nullptr;
        };
      }
    } else if (d + 1 < devices_.size()) {
      routers_[d] = [this, d](std::uint8_t) -> dev::Device* {
        return devices_[d + 1].get();
      };
    }
  }
  latency_hist_ = &registry_.histogram(
      "host.latency", "end-to-end request latency in cycles");
  link_latency_.reserve(cfg.num_links);
  for (std::uint32_t l = 0; l < cfg.num_links; ++l) {
    link_latency_.push_back(
        &registry_.histogram("host.link" + std::to_string(l) + ".latency",
                             "end-to-end latency per host link"));
  }
  tracer_.set_journeys(&journeys_);
  if (cfg.stage_stats) {
    ensure_stage_histograms();
    tracer_.set_level(tracer_.level() | trace::Level::Journey);
  }
  cmc_ctx_.user = this;
  cmc_ctx_.mem_read = &Simulator::cmc_mem_read;
  cmc_ctx_.mem_write = &Simulator::cmc_mem_write;
  // Plugin annotations fire from vault stage B, which a parallel span
  // runs ahead of cycle_ — cmc_exec_cycle_ is the stage's true cycle in
  // both clocking modes.
  cmc_ctx_.trace = [](void* user, const char* msg) {
    auto* self = static_cast<Simulator*>(user);
    if (self->tracer_.enabled(trace::Level::Cmc)) {
      self->tracer_.emit({.cycle = self->cmc_exec_cycle_,
                          .kind = trace::Level::Cmc,
                          .op = "cmc_annotation",
                          .note = msg});
    }
  };
  cmc_ctx_.fault = [](void* user, const char* op, const char* what) {
    auto* self = static_cast<Simulator*>(user);
    if (self->tracer_.enabled(trace::Level::Cmc)) {
      // `op` points at the registry-owned slot name: stable while the
      // registration (and hence the simulator) lives.
      self->tracer_.emit({.cycle = self->cmc_exec_cycle_,
                          .kind = trace::Level::Cmc,
                          .op = "cmc_fault",
                          .note = std::string(op) + ": " + what});
    }
  };
  cmc_registry_.attach_metrics(registry_);
  cmc_registry_.set_fault_policy(
      {.fail_threshold = cfg.cmc_fail_threshold,
       .mem_word_budget = cfg.cmc_mem_word_budget});
  if (cfg.threads > 1 && cfg.num_devs > 1) {
    engine_ = std::make_unique<ParallelEngine>(
        *this, std::min(cfg.threads, cfg.num_devs));
  }
}

Simulator::~Simulator() = default;

Status Simulator::create(const Config& cfg, std::unique_ptr<Simulator>& out) {
  if (Status s = cfg.validate(); !s.ok()) {
    return s;
  }
  out.reset(new Simulator(cfg));
  return Status::Ok();
}

Status Simulator::send(const spec::RqstParams& params, std::uint32_t link) {
  spec::RqstParams p = params;
  // CMC packets take their length from the live registration, exactly as
  // the registry recorded it from the plugin's cmc_register. Quarantined
  // registrations still shape packets: the host may keep sending (each
  // request is answered with RSP_ERROR/errstat_cmc_inactive) and observe
  // recovery after a rearm without re-registering.
  if (spec::is_cmc(p.rqst) && p.flits_override == 0) {
    const cmc::CmcOp* op = cmc_registry_.lookup_registered(p.rqst);
    if (op == nullptr) {
      return Status::NotFound("CMC command " +
                              std::string(spec::to_string(p.rqst)) +
                              " has no registered operation");
    }
    p.flits_override = static_cast<std::uint8_t>(op->rqst_len);
  }
  spec::RqstPacket pkt;
  if (Status s = spec::build_request(p, pkt); !s.ok()) {
    return s;
  }
  return send_packet(pkt, link);
}

Status Simulator::send_packet(spec::RqstPacket pkt, std::uint32_t link) {
  if (pkt.cub() >= devices_.size()) {
    return Status::InvalidArg("CUB " + std::to_string(pkt.cub()) +
                              " beyond configured chain");
  }
  dev::RqstEntry entry;
  entry.pkt = pkt;
  entry.send_cycle = cycle_;
  return devices_.front()->send(std::move(entry), link, cycle_, tracer_);
}

bool Simulator::rsp_ready(std::uint32_t link) const {
  return devices_.front()->rsp_ready(link);
}

Status Simulator::recv(std::uint32_t link, Response& out) {
  dev::RspEntry entry;
  if (Status s = devices_.front()->recv(link, entry); !s.ok()) {
    return s;
  }
  out.pkt = entry.pkt;
  out.latency = cycle_ - entry.send_cycle;
  latency_hist_->record(out.latency);
  link_latency_[link]->record(out.latency);
  if (tracer_.enabled(trace::Level::Latency)) {
    tracer_.emit({.cycle = cycle_,
                  .kind = trace::Level::Latency,
                  .where = {.dev = entry.pkt.cub(), .link = link},
                  .tag = entry.pkt.tag(),
                  .value = out.latency});
  }
  if (entry.journey != trace::kNoJourney) {
    close_journey(entry.journey, link);
  }
  return Status::Ok();
}

void Simulator::ensure_stage_histograms() {
  if (stage_hists_[0] != nullptr) {
    return;
  }
  for (std::size_t i = 0; i < trace::kStageCount; ++i) {
    const auto stage = static_cast<trace::Stage>(i);
    stage_hists_[i] = &registry_.histogram(
        "host.stage." + std::string(trace::to_string(stage)),
        "cycles a retired packet spent in this pipeline stage");
  }
}

void Simulator::close_journey(std::uint32_t idx, std::uint32_t link) {
  trace::Journey& j = journeys_.at(idx);
  j.t_retire = cycle_;
  // The stage durations telescope send -> retire, so their sum equals the
  // host.latency sample recorded for this response exactly.
  const auto durations = j.stage_durations();
  ensure_stage_histograms();
  for (std::size_t i = 0; i < trace::kStageCount; ++i) {
    stage_hists_[i]->record(durations[i]);
  }
  if (tracer_.enabled(trace::Level::Journey)) {
    std::string note;
    for (std::size_t i = 0; i < trace::kStageCount; ++i) {
      if (i != 0) {
        note += ' ';
      }
      note += trace::to_string(static_cast<trace::Stage>(i));
      note += '=';
      note += std::to_string(durations[i]);
    }
    tracer_.emit({.cycle = cycle_,
                  .kind = trace::Level::Journey,
                  .where = {.dev = j.dev,
                            .quad = j.quad,
                            .vault = j.vault,
                            .bank = j.bank,
                            .link = link},
                  .tag = j.tag,
                  .op = j.op,
                  .addr = j.addr,
                  .value = j.t_retire - j.t_send,
                  .note = std::move(note)});
  }
  journeys_.complete(idx);
}

void Simulator::clock() {
  if (engine_) {
    // One-cycle span on the worker pool; periodic hooks fire here on the
    // host thread, exactly as the sequential walk fires them.
    if (prof_) {
      prof_->begin_span();
    }
    engine_->run_span(cycle_ + 1);
    prof_span_end(1);
    fire_hooks();
    return;
  }
  if (clock_observed_ && prof_) {
    prof_->begin_span();
  }
  ++cycle_;
  cmc_exec_cycle_ = cycle_;

  // Stage A: responses migrate toward the host. Increasing device order
  // makes every cube-to-cube hop cost one cycle (a response forwarded by
  // device k this cycle is seen by its neighbour next cycle).
  //
  // Stage B: every vault executes its runnable queue entries.
  //
  // Stage C: requests migrate from crossbar queues into vault queues, or
  // forward along the topology. Decreasing order gives each forward hop a
  // one-cycle cost (symmetric with stage A).
  if (cfg_.exhaustive_clock) {
    for (std::size_t d = 0; d < devices_.size(); ++d) {
      devices_[d]->clock_responses(cycle_, tracer_, prev_[d]);
    }
    for (auto& device : devices_) {
      device->clock_vaults(cycle_, &cmc_registry_, &cmc_ctx_, tracer_);
      // Patrol scrub runs per-device immediately after that device's
      // vault execution — the same interleaving the sharded core uses —
      // so cross-device CMC reads see one canonical overlay state.
      device->clock_scrub(cycle_);
    }
    for (std::size_t d = devices_.size(); d-- > 0;) {
      devices_[d]->clock_requests(cycle_, tracer_, routers_[d]);
    }
  } else {
    // Active-set scheduling: a stage whose queues are all empty cannot
    // move a packet, sample a depth, or bump a counter, so skipping it is
    // observably identical to running it. The per-stage gating is safe
    // within a cycle because stage A never creates B/C work, stage B only
    // creates stage-A work (already past), and stage C's cross-device
    // pushes land in chain queues processed next cycle either way.
    for (std::size_t d = 0; d < devices_.size(); ++d) {
      if (devices_[d]->rsp_stage_work()) {
        devices_[d]->clock_responses(cycle_, tracer_, prev_[d]);
      }
    }
    for (auto& device : devices_) {
      if (device->vault_stage_work()) {
        device->clock_vaults(cycle_, &cmc_registry_, &cmc_ctx_, tracer_);
      }
      // Not gated on vault_stage_work: a quiescent device can still owe a
      // patrol tick (clock_scrub no-ops in O(1) otherwise).
      device->clock_scrub(cycle_);
    }
    for (std::size_t d = devices_.size(); d-- > 0;) {
      if (devices_[d]->rqst_stage_work()) {
        devices_[d]->clock_requests(cycle_, tracer_, routers_[d]);
      }
    }
  }

  latch_registers();

  if (clock_observed_) {
    prof_span_end(1);
    fire_hooks();
  }
}

void Simulator::latch_registers() {
  const auto active = static_cast<std::uint64_t>(cmc_registry_.active_count());
  for (auto& device : devices_) {
    device->regs().poke(dev::Reg::ClockCount, cycle_);
    device->regs().poke(dev::Reg::CmcActive, active);
  }
}

std::uint64_t Simulator::next_event_cycle() const {
  std::uint64_t best = kNoEvent;
  for (const auto& device : devices_) {
    if (device->has_queued_work()) {
      return cycle_ + 1;
    }
    best = std::min(best, device->next_retry_ready());
    // Pending patrol-scrub work keeps its next tick on the horizon, so
    // quiescence fast-forward can never skip a productive scrub cycle.
    best = std::min(best, device->next_fault_event(cycle_));
  }
  if (best == kNoEvent) {
    return kNoEvent;
  }
  // A retry whose ready_cycle already passed still needs a clock to
  // redeliver it.
  return std::max(best, cycle_ + 1);
}

std::uint64_t Simulator::clock_until(std::uint64_t target) {
  if (engine_) {
    return clock_until_parallel(target);
  }
  const std::uint64_t start = cycle_;
  while (cycle_ < target) {
    const std::uint64_t ne = next_event_cycle();
    if (cfg_.exhaustive_clock || ne <= cycle_ + 1) {
      clock();
      continue;
    }
    // Nothing can progress before `ne`: jump to just before it (or to
    // `target` if the next event lies beyond it), then step normally.
    std::uint64_t stop = target;
    if (ne != kNoEvent) {
      stop = std::min(stop, ne - 1);
    }
    fast_forward_to(stop);
  }
  return cycle_ - start;
}

std::uint64_t Simulator::clock_until_parallel(std::uint64_t target) {
  const std::uint64_t start = cycle_;
  while (cycle_ < target) {
    const std::uint64_t ne = next_event_cycle();
    if (!cfg_.exhaustive_clock && ne > cycle_ + 1) {
      // Quiescent stretch: jump it on the host thread exactly like the
      // sequential scheduler (empty cycles are observably free, so the
      // two paths stay byte-identical).
      std::uint64_t stop = target;
      if (ne != kNoEvent) {
        stop = std::min(stop, ne - 1);
      }
      fast_forward_to(stop);
      continue;
    }
    // Run a span of lock-step cycles, trimmed so periodic hooks fire
    // between spans at their exact cycles.
    std::uint64_t stop = std::min(target, cycle_ + kSpanChunk);
    stop = std::min(stop, next_hook_cycle(cycle_));
    const std::uint64_t before = cycle_;
    if (prof_) {
      prof_->begin_span();
    }
    engine_->run_span(stop);
    prof_span_end(cycle_ - before);
    fire_hooks();
  }
  return cycle_ - start;
}

std::uint64_t Simulator::clock_until_idle(std::uint64_t max_cycles) {
  const std::uint64_t start = cycle_;
  const std::uint64_t limit =
      max_cycles == 0 ? kNoEvent : start + max_cycles;
  while (cycle_ < limit) {
    const std::uint64_t ne = next_event_cycle();
    if (ne == kNoEvent || ne > limit) {
      break;
    }
    clock_until(ne);
  }
  return cycle_ - start;
}

void Simulator::fast_forward_to(std::uint64_t target) {
  while (cycle_ < target) {
    // Land exactly on the next hook cycle so periodic reporting is
    // indistinguishable from stepped clocking.
    const std::uint64_t stop = std::min(target, next_hook_cycle(cycle_));
    fast_forwarded_ += stop - cycle_;
    cycle_ = stop;
    latch_registers();
    if (fire_hooks()) {
      // A callback may have injected traffic; if so the quiescence
      // assumption no longer holds and the caller must re-plan.
      for (const auto& device : devices_) {
        if (device->has_queued_work()) {
          return;
        }
      }
    }
  }
}

std::uint64_t Simulator::next_hook_cycle(std::uint64_t from) const {
  std::uint64_t best = kNoEvent;
  for (const PeriodicHook& h : hooks_) {
    best = std::min(best, (from / h.every + 1) * h.every);
  }
  return best;
}

bool Simulator::fire_hooks_slow() {
  bool fired = false;
  // Index-based walk: a callback may add or remove hooks.
  for (std::size_t i = 0; i < hooks_.size(); ++i) {
    if (cycle_ % hooks_[i].every == 0 && hooks_[i].cb) {
      fired = true;
      hooks_[i].cb(*this);
    }
  }
  return fired;
}

std::uint64_t Simulator::add_periodic_hook(
    std::uint64_t every, std::function<void(Simulator&)> cb) {
  if (every == 0 || !cb) {
    return 0;
  }
  const std::uint64_t id = next_hook_id_++;
  hooks_.push_back({.id = id, .every = every, .cb = std::move(cb)});
  clock_observed_ = true;
  return id;
}

void Simulator::remove_periodic_hook(std::uint64_t id) {
  if (id == 0) {
    return;
  }
  std::erase_if(hooks_, [id](const PeriodicHook& h) { return h.id == id; });
  clock_observed_ = prof_ != nullptr || !hooks_.empty();
}

Status Simulator::enable_profiling() {
  if (prof_) {
    return Status::Ok();
  }
  prof_ = std::make_unique<Profiler>(registry_, effective_threads());
  clock_observed_ = true;
  return Status::Ok();
}

void Simulator::prof_span_end_slow(std::uint64_t cycles) {
  prof_->end_span(cycles, engine_ == nullptr);
  // One wall-clock point per 64 sim cycles keeps the Perfetto counter
  // track readable on long runs.
  if ((cycle_ - prof_emit_cycle_ >= 64 || prof_emit_cycle_ == 0) &&
      tracer_.enabled(trace::Level::Prof)) {
    prof_emit_cycle_ = cycle_;
    tracer_.emit({.cycle = cycle_,
                  .kind = trace::Level::Prof,
                  .op = "prof_span",
                  .addr = prof_->wall_ns(),
                  .value = static_cast<std::uint64_t>(
                      prof_->cycles_per_sec())});
  }
}

Status Simulator::set_threads(std::uint32_t threads) {
  if (threads < 1 || threads > 64) {
    return Status::InvalidArg("threads must be in [1,64]");
  }
  if (threads == cfg_.threads) {
    return Status::Ok();
  }
  cfg_.threads = threads;
  // The engine is stateless between spans (all simulation state lives in
  // the devices), so the pool can be resized at any clock boundary
  // without perturbing the run.
  engine_.reset();
  if (threads > 1 && devices_.size() > 1) {
    engine_ = std::make_unique<ParallelEngine>(
        *this,
        std::min(threads, static_cast<std::uint32_t>(devices_.size())));
  }
  if (prof_) {
    // The pool may have grown past the lanes registered at enable time.
    prof_->ensure_workers(effective_threads());
  }
  return Status::Ok();
}

std::uint32_t Simulator::effective_threads() const noexcept {
  return engine_ ? engine_->workers() : 1;
}

void Simulator::set_stats_interval(std::uint64_t every,
                                   std::function<void(Simulator&)> cb) {
  // Replace-on-set: the legacy single-callback API owns one hook slot.
  remove_periodic_hook(stats_hook_id_);
  stats_hook_id_ = add_periodic_hook(every, std::move(cb));
}

void Simulator::sync_cmc_counters() {
  for (const cmc::CmcOp& op : cmc_registry_.slots()) {
    if (!op.active) {
      continue;
    }
    for (auto& device : devices_) {
      device->attach_cmc_counter(static_cast<std::uint8_t>(op.cmd),
                                 op.name);
    }
  }
}

Status Simulator::load_cmc(std::string_view path) {
  Status s = cmc_loader_.load(path, cmc_registry_);
  if (s.ok()) {
    sync_cmc_counters();
  }
  return s;
}

Status Simulator::register_cmc(hmcsim_cmc_register_fn reg,
                               hmcsim_cmc_execute_fn exec,
                               hmcsim_cmc_str_fn str) {
  Status s = cmc_registry_.register_op(reg, exec, str);
  if (s.ok()) {
    sync_cmc_counters();
  }
  return s;
}

Status Simulator::unregister_cmc(spec::Rqst rqst) {
  return cmc_registry_.unregister_op(rqst);
}

Status Simulator::rearm_cmc(spec::Rqst rqst) {
  Status s = cmc_registry_.rearm(rqst);
  if (s.ok() && tracer_.enabled(trace::Level::Cmc)) {
    const cmc::CmcOp* op = cmc_registry_.lookup_registered(rqst);
    tracer_.emit({.cycle = cycle_,
                  .kind = trace::Level::Cmc,
                  .op = "cmc_rearm",
                  .note = op != nullptr ? op->name : std::string()});
  }
  return s;
}

Status Simulator::jtag_read(std::uint32_t dev, std::uint32_t reg,
                            std::uint64_t& out) const {
  if (dev >= devices_.size()) {
    return Status::InvalidArg("device index out of range");
  }
  return devices_[dev]->regs().read(reg, out);
}

Status Simulator::jtag_write(std::uint32_t dev, std::uint32_t reg,
                             std::uint64_t value) {
  if (dev >= devices_.size()) {
    return Status::InvalidArg("device index out of range");
  }
  return devices_[dev]->regs().write(reg, value);
}

Status Simulator::mem_read(std::uint32_t dev, std::uint64_t addr,
                           std::span<std::uint8_t> out) const {
  if (dev >= devices_.size()) {
    return Status::InvalidArg("device index out of range");
  }
  return devices_[dev]->store().read(addr, out);
}

Status Simulator::mem_write(std::uint32_t dev, std::uint64_t addr,
                            std::span<const std::uint8_t> in) {
  if (dev >= devices_.size()) {
    return Status::InvalidArg("device index out of range");
  }
  Status s = devices_[dev]->store().write(addr, in);
  if (s.ok()) {
    // Backdoor preloads repair silently: no scrub wakeup, no counters.
    devices_[dev]->fault().clear_range(addr, in.size());
  }
  return s;
}

void Simulator::reset_pipeline() {
  for (auto& device : devices_) {
    device->reset_pipeline();
  }
  // The dropped packets' journey slots die with them (no observer
  // notification: the packets never retired).
  journeys_.clear();
}

Status Simulator::cmc_mem_read(void* user, std::uint32_t dev,
                               std::uint64_t addr, std::uint64_t* data,
                               std::uint32_t nwords) {
  auto* self = static_cast<Simulator*>(user);
  if (self == nullptr || dev >= self->devices_.size()) {
    return Status::InvalidArg("bad device in CMC memory access");
  }
  dev::Device& device = *self->devices_[dev];
  mem::BackingStore& store = device.store();
  for (std::uint32_t i = 0; i < nwords; ++i) {
    if (Status s = store.read_u64(addr + 8ULL * i, data[i]); !s.ok()) {
      return s;
    }
  }
  mem::FaultInjector& fault = device.fault();
  if (fault.enabled()) {
    // CMC memory reads pass through the same per-word ECC as vault reads,
    // keyed at the executing stage's true cycle so the flip schedule is
    // identical in every clocking mode. Runs under the serialized CMC
    // stage-B window, so cross-device counter updates cannot race.
    bool poisoned = false;
    for (std::uint32_t i = 0; i < nwords; ++i) {
      const std::uint64_t word_addr = addr + 8ULL * i;
      const std::uint32_t vault = device.addr_map().decode(word_addr).vault;
      const std::uint64_t err = fault.read_error_bits(
          vault, word_addr, data[i], self->cmc_exec_cycle_);
      if (err == 0) {
        continue;
      }
      if (std::popcount(err) == 1) {
        fault.count_corrected();
      } else {
        fault.count_uncorrectable();
        poisoned = true;
      }
    }
    if (poisoned) {
      // Never hand tainted words to a plugin: zero the whole buffer and
      // let the guarded EPOISON/DINV chain report it.
      std::fill_n(data, nwords, 0);
      return Status::Poisoned("uncorrectable ECC error in CMC read");
    }
  }
  return Status::Ok();
}

Status Simulator::cmc_mem_write(void* user, std::uint32_t dev,
                                std::uint64_t addr, const std::uint64_t* data,
                                std::uint32_t nwords) {
  auto* self = static_cast<Simulator*>(user);
  if (self == nullptr || dev >= self->devices_.size()) {
    return Status::InvalidArg("bad device in CMC memory access");
  }
  dev::Device& device = *self->devices_[dev];
  mem::BackingStore& store = device.store();
  for (std::uint32_t i = 0; i < nwords; ++i) {
    if (Status s = store.write_u64(addr + 8ULL * i, data[i]); !s.ok()) {
      return s;
    }
  }
  device.fault().note_write(addr, std::size_t{nwords} * 8);
  return Status::Ok();
}

}  // namespace hmcsim::sim
