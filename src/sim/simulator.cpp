#include "sim/simulator.hpp"

namespace hmcsim::sim {

Simulator::Simulator(const Config& cfg) : cfg_(cfg) {
  devices_.reserve(cfg.num_devs);
  for (std::uint32_t d = 0; d < cfg.num_devs; ++d) {
    devices_.push_back(std::make_unique<dev::Device>(cfg, d));
  }
  cmc_ctx_.user = this;
  cmc_ctx_.mem_read = &Simulator::cmc_mem_read;
  cmc_ctx_.mem_write = &Simulator::cmc_mem_write;
  cmc_ctx_.trace = [](void* user, const char* msg) {
    auto* self = static_cast<Simulator*>(user);
    if (self->tracer_.enabled(trace::Level::Cmc)) {
      self->tracer_.emit({.cycle = self->cycle_,
                          .kind = trace::Level::Cmc,
                          .op = "cmc_annotation",
                          .note = msg});
    }
  };
}

Status Simulator::create(const Config& cfg, std::unique_ptr<Simulator>& out) {
  if (Status s = cfg.validate(); !s.ok()) {
    return s;
  }
  out.reset(new Simulator(cfg));
  return Status::Ok();
}

Status Simulator::send(const spec::RqstParams& params, std::uint32_t link) {
  spec::RqstParams p = params;
  // CMC packets take their length from the live registration, exactly as
  // the registry recorded it from the plugin's cmc_register.
  if (spec::is_cmc(p.rqst) && p.flits_override == 0) {
    const cmc::CmcOp* op = cmc_registry_.lookup(p.rqst);
    if (op == nullptr) {
      return Status::NotFound("CMC command " +
                              std::string(spec::to_string(p.rqst)) +
                              " has no registered operation");
    }
    p.flits_override = static_cast<std::uint8_t>(op->rqst_len);
  }
  spec::RqstPacket pkt;
  if (Status s = spec::build_request(p, pkt); !s.ok()) {
    return s;
  }
  return send_packet(pkt, link);
}

Status Simulator::send_packet(spec::RqstPacket pkt, std::uint32_t link) {
  if (pkt.cub() >= devices_.size()) {
    return Status::InvalidArg("CUB " + std::to_string(pkt.cub()) +
                              " beyond configured chain");
  }
  dev::RqstEntry entry;
  entry.pkt = pkt;
  entry.send_cycle = cycle_;
  return devices_.front()->send(std::move(entry), link, cycle_, tracer_);
}

bool Simulator::rsp_ready(std::uint32_t link) const {
  return devices_.front()->rsp_ready(link);
}

Status Simulator::recv(std::uint32_t link, Response& out) {
  dev::RspEntry entry;
  if (Status s = devices_.front()->recv(link, entry); !s.ok()) {
    return s;
  }
  out.pkt = entry.pkt;
  out.latency = cycle_ - entry.send_cycle;
  if (tracer_.enabled(trace::Level::Latency)) {
    tracer_.emit({.cycle = cycle_,
                  .kind = trace::Level::Latency,
                  .where = {.dev = entry.pkt.cub(), .link = link},
                  .tag = entry.pkt.tag(),
                  .value = out.latency});
  }
  return Status::Ok();
}

void Simulator::clock() {
  ++cycle_;

  // Topology wiring: `prev` is each device's neighbour toward the host
  // (stage A follows it); the router resolves request forwarding targets
  // (stage C follows it).
  const bool star = cfg_.topology == Topology::Star;
  auto prev_of = [&](std::size_t d) -> dev::Device* {
    if (d == 0) {
      return nullptr;
    }
    return star ? devices_[0].get() : devices_[d - 1].get();
  };

  // Stage A: responses migrate toward the host. Increasing device order
  // makes every cube-to-cube hop cost one cycle (a response forwarded by
  // device k this cycle is seen by its neighbour next cycle).
  for (std::size_t d = 0; d < devices_.size(); ++d) {
    devices_[d]->clock_responses(cycle_, tracer_, prev_of(d));
  }

  // Stage B: every vault executes its runnable queue entries.
  for (auto& device : devices_) {
    device->clock_vaults(cycle_, &cmc_registry_, &cmc_ctx_, tracer_);
  }

  // Stage C: requests migrate from crossbar queues into vault queues, or
  // forward along the topology. Decreasing order gives each forward hop a
  // one-cycle cost (symmetric with stage A).
  for (std::size_t d = devices_.size(); d-- > 0;) {
    dev::Device::Router route;
    if (star) {
      // Only the hub forwards; it reaches every spoke directly.
      if (d == 0) {
        route = [this](std::uint8_t cub) -> dev::Device* {
          return cub < devices_.size() ? devices_[cub].get() : nullptr;
        };
      }
    } else if (d + 1 < devices_.size()) {
      route = [this, d](std::uint8_t) -> dev::Device* {
        return devices_[d + 1].get();
      };
    }
    devices_[d]->clock_requests(cycle_, tracer_, route);
  }
}

Status Simulator::load_cmc(std::string_view path) {
  return cmc_loader_.load(path, cmc_registry_);
}

Status Simulator::register_cmc(hmcsim_cmc_register_fn reg,
                               hmcsim_cmc_execute_fn exec,
                               hmcsim_cmc_str_fn str) {
  return cmc_registry_.register_op(reg, exec, str);
}

Status Simulator::unregister_cmc(spec::Rqst rqst) {
  return cmc_registry_.unregister_op(rqst);
}

Status Simulator::jtag_read(std::uint32_t dev, std::uint32_t reg,
                            std::uint64_t& out) const {
  if (dev >= devices_.size()) {
    return Status::InvalidArg("device index out of range");
  }
  return devices_[dev]->regs().read(reg, out);
}

Status Simulator::jtag_write(std::uint32_t dev, std::uint32_t reg,
                             std::uint64_t value) {
  if (dev >= devices_.size()) {
    return Status::InvalidArg("device index out of range");
  }
  return devices_[dev]->regs().write(reg, value);
}

Status Simulator::mem_read(std::uint32_t dev, std::uint64_t addr,
                           std::span<std::uint8_t> out) const {
  if (dev >= devices_.size()) {
    return Status::InvalidArg("device index out of range");
  }
  return devices_[dev]->store().read(addr, out);
}

Status Simulator::mem_write(std::uint32_t dev, std::uint64_t addr,
                            std::span<const std::uint8_t> in) {
  if (dev >= devices_.size()) {
    return Status::InvalidArg("device index out of range");
  }
  return devices_[dev]->store().write(addr, in);
}

SimStats Simulator::stats() const {
  SimStats s;
  s.cycles = cycle_;
  for (const auto& device : devices_) {
    const dev::DeviceStats ds = device->stats();
    s.devices.rqsts_processed += ds.rqsts_processed;
    s.devices.rsps_generated += ds.rsps_generated;
    s.devices.cmc_executed += ds.cmc_executed;
    s.devices.amo_executed += ds.amo_executed;
    s.devices.errors += ds.errors;
    s.devices.bank_conflicts += ds.bank_conflicts;
    s.devices.xbar_rqst_stalls += ds.xbar_rqst_stalls;
    s.devices.xbar_rsp_stalls += ds.xbar_rsp_stalls;
    s.devices.vault_rsp_stalls += ds.vault_rsp_stalls;
    s.devices.send_stalls += ds.send_stalls;
    s.devices.rqst_flits += ds.rqst_flits;
    s.devices.rsp_flits += ds.rsp_flits;
    s.devices.forwarded_rqsts += ds.forwarded_rqsts;
    s.devices.forwarded_rsps += ds.forwarded_rsps;
    s.devices.link_retries += ds.link_retries;
  }
  return s;
}

void Simulator::reset_pipeline() {
  for (auto& device : devices_) {
    device->reset_pipeline();
  }
}

Status Simulator::cmc_mem_read(void* user, std::uint32_t dev,
                               std::uint64_t addr, std::uint64_t* data,
                               std::uint32_t nwords) {
  auto* self = static_cast<Simulator*>(user);
  if (self == nullptr || dev >= self->devices_.size()) {
    return Status::InvalidArg("bad device in CMC memory access");
  }
  mem::BackingStore& store = self->devices_[dev]->store();
  for (std::uint32_t i = 0; i < nwords; ++i) {
    if (Status s = store.read_u64(addr + 8ULL * i, data[i]); !s.ok()) {
      return s;
    }
  }
  return Status::Ok();
}

Status Simulator::cmc_mem_write(void* user, std::uint32_t dev,
                                std::uint64_t addr, const std::uint64_t* data,
                                std::uint32_t nwords) {
  auto* self = static_cast<Simulator*>(user);
  if (self == nullptr || dev >= self->devices_.size()) {
    return Status::InvalidArg("bad device in CMC memory access");
  }
  mem::BackingStore& store = self->devices_[dev]->store();
  for (std::uint32_t i = 0; i < nwords; ++i) {
    if (Status s = store.write_u64(addr + 8ULL * i, data[i]); !s.ok()) {
      return s;
    }
  }
  return Status::Ok();
}

}  // namespace hmcsim::sim
