#include "sim/prof.hpp"

#include <chrono>
#include <string>

namespace hmcsim::sim {

std::uint64_t Profiler::now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

Profiler::Profiler(metrics::StatRegistry& reg, std::uint32_t workers)
    : reg_(reg) {
  spans_ = &reg_.counter("sim.prof.spans", "profiled clock spans");
  span_ns_ = &reg_.counter("sim.prof.span_ns",
                           "host wall nanoseconds inside clock spans");
  coord_ns_ = &reg_.counter(
      "sim.prof.coord_ns",
      "span wall time beyond worker 0 busy time (coordination overhead)");
  cycles_ctr_ =
      &reg_.counter("sim.prof.cycles", "simulated cycles profiled");
  cps_ = &reg_.gauge("sim.prof.cycles_per_sec",
                     "host throughput, simulated cycles per wall second");
  ensure_workers(workers == 0 ? 1 : workers);
}

void Profiler::register_lane(std::uint32_t w) {
  const std::string base = "sim.prof.worker" + std::to_string(w);
  exec_.push_back(&reg_.counter(
      base + ".exec_ns", "wall nanoseconds executing shard stages"));
  wait_.push_back(&reg_.counter(
      base + ".wait_ns", "wall nanoseconds in wavefront barrier waits"));
}

void Profiler::ensure_workers(std::uint32_t workers) {
  while (lanes_.size() < workers) {
    register_lane(static_cast<std::uint32_t>(lanes_.size()));
    lanes_.emplace_back();
  }
}

void Profiler::begin_span() noexcept { t0_ = now_ns(); }

void Profiler::end_span(std::uint64_t cycles, bool sequential) {
  const std::uint64_t dt = now_ns() - t0_;
  spans_->inc();
  span_ns_->inc(dt);
  cycles_ctr_->inc(cycles);
  total_ns_ += dt;
  total_cycles_ += cycles;
  if (sequential) {
    // No pool: the whole span is worker 0 doing the stage walk inline.
    lanes_[0].exec_ns = 0;
    lanes_[0].wait_ns = 0;
    exec_[0]->inc(dt);
  } else {
    std::uint64_t lane0_busy = 0;
    for (std::size_t w = 0; w < lanes_.size(); ++w) {
      Lane& l = lanes_[w];
      if (w == 0) {
        lane0_busy = l.exec_ns + l.wait_ns;
      }
      exec_[w]->inc(l.exec_ns);
      wait_[w]->inc(l.wait_ns);
      l.exec_ns = 0;
      l.wait_ns = 0;
    }
    // Worker 0 is the span coordinator: whatever the span cost beyond its
    // own busy time is handshake/teardown overhead.
    coord_ns_->inc(dt > lane0_busy ? dt - lane0_busy : 0);
  }
  cps_->set(cycles_per_sec());
}

double Profiler::cycles_per_sec() const noexcept {
  if (total_ns_ == 0) {
    return 0.0;
  }
  return static_cast<double>(total_cycles_) * 1e9 /
         static_cast<double>(total_ns_);
}

}  // namespace hmcsim::sim
