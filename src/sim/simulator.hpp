// simulator.hpp — the HMC-Sim public API.
//
// One Simulator owns a chain of 1..8 cube devices, the trace dispatcher and
// the CMC registry/loader. The host-facing surface mirrors HMC-Sim's:
//
//   send()      inject a request on a host link (Stall == retry next cycle)
//   clock()     advance the devices one cycle
//   recv()      eject a ready response from a host link
//   load_cmc()  dlopen a CMC plugin and activate its operation
//   jtag_*()    side-band register access
//
// A Simulator instance is single-owner: external synchronisation is
// required to share it across OS threads (simulated hosts in src/host are
// cooperatively scheduled instead).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string_view>
#include <vector>

#include "common/status.hpp"
#include "core/cmc_loader.hpp"
#include "core/cmc_registry.hpp"
#include "dev/device.hpp"
#include "metrics/stat_registry.hpp"
#include "sim/config.hpp"
#include "spec/packet.hpp"
#include "trace/journey.hpp"
#include "trace/trace.hpp"

namespace hmcsim::sim {

class ParallelEngine;
class Profiler;

/// A received response plus its measured end-to-end latency.
struct Response {
  spec::RspPacket pkt;
  std::uint64_t latency = 0;  ///< Cycles from send() to recv() eligibility.
};

class Simulator {
 public:
  /// Validates `cfg` and constructs the device chain. When Config::threads
  /// exceeds 1 (and more than one cube is configured) clocking runs on the
  /// sharded parallel core — observably identical to the sequential walk;
  /// see docs/PARALLEL.md.
  [[nodiscard]] static Status create(const Config& cfg,
                                     std::unique_ptr<Simulator>& out);
  ~Simulator();

  // ---- traffic -----------------------------------------------------------
  /// Build a request packet from `params` and inject it on host link
  /// `link` of the host-attached device. For CMC commands the packet
  /// length is taken from the active registration automatically.
  /// Returns Stall when the link cannot accept the packet this cycle.
  [[nodiscard]] Status send(const spec::RqstParams& params,
                            std::uint32_t link);

  /// Inject an already-built packet (trace replay, tests).
  [[nodiscard]] Status send_packet(spec::RqstPacket pkt, std::uint32_t link);

  /// True when recv(link) would return a response.
  [[nodiscard]] bool rsp_ready(std::uint32_t link) const;

  /// Pop the next ready response on `link`; NoData when none.
  [[nodiscard]] Status recv(std::uint32_t link, Response& out);

  /// Advance the chain one cycle.
  void clock();

  [[nodiscard]] std::uint64_t cycle() const noexcept { return cycle_; }

  // ---- quiescence fast-forward --------------------------------------------
  /// Sentinel from next_event_cycle(): no in-flight packet and no parked
  /// retry anywhere in the chain — only a new send() creates future work.
  static constexpr std::uint64_t kNoEvent = UINT64_MAX;

  /// Earliest future cycle at which any component can make progress:
  /// cycle()+1 when anything is queued anywhere, otherwise the earliest
  /// parked link-retry redelivery, otherwise kNoEvent. Host-visible link
  /// response queues do not count (draining them is recv()'s job).
  [[nodiscard]] std::uint64_t next_event_cycle() const;

  /// Advance until cycle() == target. Stretches where no component can
  /// make progress are jumped in O(1) instead of clocked; periodic stats
  /// callbacks still fire at their exact cycles (and may inject traffic,
  /// which resumes normal clocking). Observably identical to calling
  /// clock() in a loop. With Config::exhaustive_clock every cycle is
  /// stepped. Returns the number of cycles advanced.
  std::uint64_t clock_until(std::uint64_t target);

  /// Advance until the chain is quiescent (next_event_cycle() == kNoEvent)
  /// or `max_cycles` have elapsed (0 = unbounded). Returns the number of
  /// cycles advanced. Stops early when the only remaining events lie
  /// beyond the budget.
  std::uint64_t clock_until_idle(std::uint64_t max_cycles);

  /// Cycles skipped (not stepped) by fast-forwarding since construction;
  /// always <= cycle(). Not part of the metrics registry: it measures the
  /// scheduler, not the modelled hardware.
  [[nodiscard]] std::uint64_t fast_forwarded_cycles() const noexcept {
    return fast_forwarded_;
  }

  // ---- CMC ----------------------------------------------------------------
  /// The paper's hmc_load_cmc(): dlopen `path`, resolve the three required
  /// symbols, run the plugin's registration and activate the operation.
  [[nodiscard]] Status load_cmc(std::string_view path);

  /// Static-registration path: same validation pipeline, but the three
  /// functions are passed directly (no shared library involved).
  [[nodiscard]] Status register_cmc(hmcsim_cmc_register_fn reg,
                                    hmcsim_cmc_execute_fn exec,
                                    hmcsim_cmc_str_fn str);

  /// Deactivate a CMC slot.
  [[nodiscard]] Status unregister_cmc(spec::Rqst rqst);

  /// Lift a quarantine imposed after Config::cmc_fail_threshold
  /// consecutive plugin failures: the slot resumes executing with a clean
  /// failure streak. NotFound when the command has no registration,
  /// InvalidState when the slot is not quarantined.
  [[nodiscard]] Status rearm_cmc(spec::Rqst rqst);

  [[nodiscard]] const cmc::CmcRegistry& cmc_registry() const noexcept {
    return cmc_registry_;
  }

  // ---- JTAG / side-band -----------------------------------------------------
  [[nodiscard]] Status jtag_read(std::uint32_t dev, std::uint32_t reg,
                                 std::uint64_t& out) const;
  [[nodiscard]] Status jtag_write(std::uint32_t dev, std::uint32_t reg,
                                  std::uint64_t value);

  /// Back-door memory access for workload setup and result verification
  /// (does not traverse the pipeline or perturb statistics).
  [[nodiscard]] Status mem_read(std::uint32_t dev, std::uint64_t addr,
                                std::span<std::uint8_t> out) const;
  [[nodiscard]] Status mem_write(std::uint32_t dev, std::uint64_t addr,
                                 std::span<const std::uint8_t> in);

  // ---- observability ---------------------------------------------------------
  [[nodiscard]] trace::Tracer& tracer() noexcept { return tracer_; }

  /// The journey tracker behind per-packet latency attribution. Enable
  /// trace::Level::Journey (or Config::stage_stats) to populate it; attach
  /// a trace::JourneyObserver (ChromeSink, JourneySink) to stream
  /// completed journeys.
  [[nodiscard]] trace::JourneyTracker& journeys() noexcept {
    return journeys_;
  }
  [[nodiscard]] const trace::JourneyTracker& journeys() const noexcept {
    return journeys_;
  }
  [[nodiscard]] const Config& config() const noexcept { return cfg_; }
  [[nodiscard]] std::uint32_t num_devices() const noexcept {
    return static_cast<std::uint32_t>(devices_.size());
  }
  [[nodiscard]] dev::Device& device(std::uint32_t dev) {
    return *devices_[dev];
  }
  [[nodiscard]] const dev::Device& device(std::uint32_t dev) const {
    return *devices_[dev];
  }

  /// The hierarchical metrics registry every component reports into.
  /// Paths are documented in docs/METRICS.md.
  [[nodiscard]] metrics::StatRegistry& metrics() noexcept {
    return registry_;
  }
  [[nodiscard]] const metrics::StatRegistry& metrics() const noexcept {
    return registry_;
  }

  /// End-to-end latency distribution over every recv()'d response
  /// (`host.latency`); per-link distributions live at
  /// `host.link{l}.latency`.
  [[nodiscard]] const metrics::Histogram& latency_histogram()
      const noexcept {
    return *latency_hist_;
  }

  /// Invoke `cb` every `every` cycles from inside clock() (periodic
  /// snapshot/delta reporting; 0 disables). The callback runs after the
  /// cycle's three stages complete.
  void set_stats_interval(std::uint64_t every,
                          std::function<void(Simulator&)> cb);

  /// Register an additional periodic callback with the same exact-cycle
  /// contract as set_stats_interval: `cb` fires whenever cycle() is a
  /// multiple of `every`, after the cycle's stages, on the host thread —
  /// including across parallel spans and quiescence fast-forward, which
  /// both land exactly on callback cycles. Multiple hooks compose (the
  /// metrics::Sampler rides here next to the --stats-every delta print);
  /// they fire in registration order. Returns a handle for
  /// remove_periodic_hook, 0 when `every` is 0 or `cb` empty.
  std::uint64_t add_periodic_hook(std::uint64_t every,
                                  std::function<void(Simulator&)> cb);
  /// Unregister a hook returned by add_periodic_hook (0 is a no-op).
  void remove_periodic_hook(std::uint64_t id);

  // ---- self-profiling -------------------------------------------------------
  /// Start wall-clock self-profiling: every subsequent clocked span is
  /// timed and the gated `sim.prof.*` statistics appear in the registry
  /// (per-worker execute vs. barrier-wait nanoseconds, coordinator
  /// overhead, host-side cycles/sec — see docs/TELEMETRY.md). Until this
  /// is called no prof path is registered, so default stats exports stay
  /// byte-identical. Idempotent.
  [[nodiscard]] Status enable_profiling();
  /// The active profiler, or nullptr when profiling was never enabled.
  [[nodiscard]] Profiler* profiler() noexcept { return prof_.get(); }

  /// Drop all in-flight packets and device statistics; memory contents,
  /// CMC registrations, host-side stats and the cycle counter survive.
  void reset_pipeline();

  /// Resize the worker pool (tears down or builds the parallel engine;
  /// safe between clocks). `threads` follows Config::threads semantics:
  /// 1 restores the sequential walk. The simulation remains byte-identical
  /// across any sequence of thread counts.
  [[nodiscard]] Status set_threads(std::uint32_t threads);
  /// Worker threads the clock actually uses (1 = sequential; capped at
  /// the device count).
  [[nodiscard]] std::uint32_t effective_threads() const noexcept;

 private:
  friend class ParallelEngine;

  explicit Simulator(const Config& cfg);

  /// clock_until() on the parallel core: spans of lock-step cycles
  /// between stats-callback boundaries, with quiescent stretches still
  /// fast-forwarded exactly like the sequential scheduler.
  std::uint64_t clock_until_parallel(std::uint64_t target);

  /// Jump cycle_ straight to `target`, firing periodic stats callbacks at
  /// their exact cycles along the way. Returns early if a callback
  /// injects work. Caller guarantees no component can progress in
  /// (cycle_, target].
  void fast_forward_to(std::uint64_t target);

  /// Refresh the free-running registers (ClockCount, CmcActive) on every
  /// device. Runs each cycle so devices skipped by active-set scheduling
  /// (or jumped by fast-forward) stay current.
  void latch_registers();

  /// Attach per-operation counters for every active CMC registration to
  /// every device (idempotent; called after load/register).
  void sync_cmc_counters();

  /// Register the host.stage.* histograms (idempotent). Called lazily on
  /// the first completed journey — or eagerly when Config::stage_stats is
  /// set — so that with journey tracing off, stats exports never mention
  /// the stage paths.
  void ensure_stage_histograms();

  /// Stamp t_retire, record the five stage durations and complete the
  /// journey carried by a just-received response.
  void close_journey(std::uint32_t idx, std::uint32_t link);

  // CmcContext service callbacks (type-erased plugin -> simulator bridge).
  static Status cmc_mem_read(void* user, std::uint32_t dev,
                             std::uint64_t addr, std::uint64_t* data,
                             std::uint32_t nwords);
  static Status cmc_mem_write(void* user, std::uint32_t dev,
                              std::uint64_t addr, const std::uint64_t* data,
                              std::uint32_t nwords);

  Config cfg_;
  trace::Tracer tracer_;
  trace::JourneyTracker journeys_;
  // Declared before devices_: devices hold handles into the registry, so
  // it must be constructed first and destroyed last.
  metrics::StatRegistry registry_;
  cmc::CmcRegistry cmc_registry_;
  cmc::CmcLoader cmc_loader_;
  cmc::CmcContext cmc_ctx_;
  std::vector<std::unique_ptr<dev::Device>> devices_;
  // Topology wiring, resolved once at construction (the device list is
  // immutable after create): per-device host-ward neighbour for stage A
  // and per-device request router for stage C.
  std::vector<dev::Device*> prev_;
  std::vector<dev::Device::Router> routers_;
  std::uint64_t cycle_ = 0;
  std::uint64_t fast_forwarded_ = 0;
  metrics::Histogram* latency_hist_;
  std::vector<metrics::Histogram*> link_latency_;
  /// host.stage.* histograms, indexed by trace::Stage; null until
  /// ensure_stage_histograms() runs.
  std::array<metrics::Histogram*, trace::kStageCount> stage_hists_{};
  /// Periodic exact-cycle callbacks (stats print, metrics::Sampler, …).
  /// Fired in registration order; see fire_hooks()/next_hook_cycle().
  struct PeriodicHook {
    std::uint64_t id = 0;
    std::uint64_t every = 0;
    std::function<void(Simulator&)> cb;
  };
  std::vector<PeriodicHook> hooks_;
  std::uint64_t next_hook_id_ = 1;
  /// True iff the clock epilogue has any work: profiling enabled or at
  /// least one periodic hook registered. One load+branch per idle cycle
  /// instead of three (maintained by add/remove_periodic_hook and
  /// enable_profiling).
  bool clock_observed_ = false;
  /// Hook installed by set_stats_interval (0 = none) so the legacy
  /// single-callback API keeps replace-on-set semantics.
  std::uint64_t stats_hook_id_ = 0;

  /// Earliest cycle strictly after `from` at which any hook fires;
  /// kNoEvent when no hooks are registered.
  [[nodiscard]] std::uint64_t next_hook_cycle(std::uint64_t from) const;
  /// Fire every hook whose period divides cycle_ (registration order).
  /// Returns true when at least one fired. The empty check is inline so
  /// the hookless idle clock pays one load+branch, not a call.
  bool fire_hooks() {
    return hooks_.empty() ? false : fire_hooks_slow();
  }
  bool fire_hooks_slow();
  /// Cycle currently executing vault stage B — the cycle stamp for
  /// CMC plugin trace/fault annotations, which outrun cycle_ while a
  /// parallel span is in flight. Kept equal to cycle_ by the sequential
  /// clock.
  std::uint64_t cmc_exec_cycle_ = 0;
  /// Present iff cfg_.threads > 1 and the chain has more than one cube.
  std::unique_ptr<ParallelEngine> engine_;
  /// Present iff enable_profiling() was called; workers probe it each
  /// span, the host flushes it into the gated sim.prof.* stats.
  std::unique_ptr<Profiler> prof_;
  /// Last cycle a Level::Prof wall-clock trace event was emitted
  /// (throttles the ChromeSink counter track to one point per 64 cycles).
  std::uint64_t prof_emit_cycle_ = 0;

  /// End the profiled span (if profiling): flush worker lanes into the
  /// sim.prof.* counters and emit the wall-clock counter-track trace
  /// event. `cycles` = sim cycles covered by the span. The null check
  /// is inline so the unprofiled clock pays one load+branch, not a call.
  void prof_span_end(std::uint64_t cycles) {
    if (prof_) {
      prof_span_end_slow(cycles);
    }
  }
  void prof_span_end_slow(std::uint64_t cycles);
};

}  // namespace hmcsim::sim
