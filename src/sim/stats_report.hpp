// stats_report.hpp — human- and machine-readable statistics reports.
//
// Formats a simulator's counters into a text block (for interactive use)
// or CSV rows (for post-processing), including the per-vault occupancy
// histogram that makes hot-spotting — the central phenomenon of the
// paper's evaluation — directly visible.
#pragma once

#include <string>

#include "sim/simulator.hpp"

namespace hmcsim::sim {

/// Multi-line text report: device summary plus per-link traffic and the
/// busiest vaults.
[[nodiscard]] std::string format_stats(const Simulator& sim);

/// CSV block: one header + one row per (device, vault) with request
/// counts, plus a "link" section. Suitable for spreadsheet import.
[[nodiscard]] std::string format_stats_csv(const Simulator& sim);

/// Vault access histogram for one device: count of requests processed per
/// vault, in vault order (32 entries).
[[nodiscard]] std::vector<std::uint64_t> vault_histogram(
    const Simulator& sim, std::uint32_t dev);

/// Hot-spot factor: fraction of all vault traffic absorbed by the single
/// busiest vault of `dev` (1.0 = perfectly hot-spotted, 1/32 = uniform).
[[nodiscard]] double hotspot_factor(const Simulator& sim, std::uint32_t dev);

}  // namespace hmcsim::sim
