// stats_report.hpp — renderers over the metrics registry.
//
// The registry (Simulator::metrics()) is the source of truth; these
// functions only format it: a text block (for interactive use), CSV rows
// (for post-processing), and a JSON document (machine-readable, schema in
// docs/METRICS.md), including the per-vault occupancy histogram that makes
// hot-spotting — the central phenomenon of the paper's evaluation —
// directly visible.
#pragma once

#include <string>
#include <string_view>

#include "metrics/sampler.hpp"
#include "sim/simulator.hpp"

namespace hmcsim::sim {

/// Multi-line text report: device summary plus per-link traffic, the
/// busiest vaults, and (when responses were received) the end-to-end
/// latency distribution.
[[nodiscard]] std::string format_stats(const Simulator& sim);

/// CSV block: one header + one row per (device, vault) with request
/// counts, plus a "link" section. Suitable for spreadsheet import.
[[nodiscard]] std::string format_stats_csv(const Simulator& sim);

/// JSON document wrapping the full registry:
///   {"schema_version": 1, "cycle": N, "config": "...", "stats": {...}}
/// Validated against the schema in docs/METRICS.md. `extra_member`, when
/// non-empty, is spliced in verbatim as one additional top-level member
/// (a complete `"key": value` fragment, no indentation or trailing
/// comma); the default empty value keeps the document byte-identical to
/// the pre-existing format, which golden tests rely on.
[[nodiscard]] std::string format_stats_json(const Simulator& sim,
                                            std::string_view extra_member =
                                                {});

/// Register the standard derived time-series on a sampler for `sim`:
/// per-cube packets-per-cycle (host-link request+response packets) and,
/// when the crossbar bandwidth gate is finite, per-cube link utilisation
/// in percent of the aggregate FLIT budget. Call before the first
/// sample.
void register_default_samples(metrics::Sampler& sampler,
                              const Simulator& sim);

/// Vault access histogram for one device, read from the metrics registry:
/// count of requests processed per vault, in vault order (32 entries).
[[nodiscard]] std::vector<std::uint64_t> vault_histogram(
    const Simulator& sim, std::uint32_t dev);

/// Hot-spot factor: fraction of all vault traffic absorbed by the single
/// busiest vault of `dev` (1.0 = perfectly hot-spotted, 1/32 = uniform).
/// 0.0 on a zero-traffic device.
[[nodiscard]] double hotspot_factor(const Simulator& sim, std::uint32_t dev);

}  // namespace hmcsim::sim
