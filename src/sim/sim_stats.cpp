#include "sim/sim_stats.hpp"

#include "sim/simulator.hpp"

namespace hmcsim::sim {

SimStats collect_stats(const Simulator& sim) {
  SimStats s;
  s.cycles = sim.cycle();
  for (std::uint32_t d = 0; d < sim.num_devices(); ++d) {
    const dev::Device& device = sim.device(d);
    for (const dev::Vault& vault : device.vaults()) {
      s.rqsts_processed += vault.rqsts_processed().value();
      s.rsps_generated += vault.rsps_generated().value();
      s.cmc_executed += vault.cmc_executed().value();
      s.amo_executed += vault.amo_executed().value();
      s.errors += vault.errors().value();
      s.bank_conflicts += vault.bank_conflicts().value();
      s.vault_rsp_stalls += vault.rsp_stalls().value();
    }
    s.xbar_rqst_stalls += device.xbar().rqst_stalls().value();
    s.xbar_rsp_stalls += device.xbar().rsp_stalls().value();
    for (const dev::Link& link : device.links()) {
      s.send_stalls += link.send_stalls().value();
      s.rqst_flits += link.rqst_flits().value();
      s.rsp_flits += link.rsp_flits().value();
      s.link_retries += link.retries().value();
    }
    s.forwarded_rqsts += device.forwarded_rqsts().value();
    s.forwarded_rsps += device.forwarded_rsps().value();
  }
  return s;
}

}  // namespace hmcsim::sim
