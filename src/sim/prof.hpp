// prof.hpp — wall-clock self-profiling of the simulation host.
//
// Answers "where does the wall time of a run actually go?": per worker,
// how much of each parallel span was spent executing shard stages versus
// spinning in the wavefront barriers, how much the span cost beyond the
// workers' busy time (coordinator overhead), and how many simulated
// cycles per wall second the host sustains.
//
// Everything is gated: until Simulator::enable_profiling() runs, no
// sim.prof.* path exists in the registry and the clock paths take a
// single null-pointer branch — default stats exports stay byte-identical
// and the disabled overhead is unmeasurable (see
// bench/bench_telemetry_overhead.cpp).
//
// Thread-safety contract: each worker accumulates into its own
// cache-line-aligned lane during a span (no sharing); the host flushes
// the lanes into the registry counters from end_span(), which runs
// strictly after the span join, so no lane is ever written and read
// concurrently.
#pragma once

#include <cstdint>
#include <vector>

#include "metrics/stat_registry.hpp"

namespace hmcsim::sim {

class Profiler {
 public:
  /// Registers the gated sim.prof.* stats for `workers` lanes (>= 1).
  Profiler(metrics::StatRegistry& reg, std::uint32_t workers);

  /// Monotonic host nanoseconds (std::chrono::steady_clock).
  [[nodiscard]] static std::uint64_t now_ns() noexcept;

  /// Per-worker scratch, written only by its owner worker during a span.
  /// Alignment keeps neighbouring lanes off each other's cache line.
  struct alignas(64) Lane {
    std::uint64_t exec_ns = 0;  ///< Shard-stage execution time.
    std::uint64_t wait_ns = 0;  ///< Time inside wavefront barrier waits.
  };
  [[nodiscard]] Lane& lane(std::uint32_t w) noexcept { return lanes_[w]; }
  [[nodiscard]] std::uint32_t workers() const noexcept {
    return static_cast<std::uint32_t>(lanes_.size());
  }
  /// Grow the lane set (and its counters) after a set_threads() resize.
  /// Host-side only, never during a span.
  void ensure_workers(std::uint32_t workers);

  /// Stamp the span start. Host thread, immediately before the span runs.
  void begin_span() noexcept;

  /// Close the span opened by begin_span(): account `cycles` simulated
  /// cycles and the elapsed wall time, flush every worker lane into the
  /// registry counters, and refresh the cycles-per-second gauge. With
  /// `sequential` set (no worker pool) the whole span is attributed to
  /// worker 0's execute time and coordinator overhead stays zero.
  void end_span(std::uint64_t cycles, bool sequential);

  /// Wall nanoseconds accumulated over all profiled spans.
  [[nodiscard]] std::uint64_t wall_ns() const noexcept { return total_ns_; }
  /// Simulated cycles accumulated over all profiled spans (quiescence
  /// fast-forward jumps are excluded: they cost no span wall time).
  [[nodiscard]] std::uint64_t cycles() const noexcept {
    return total_cycles_;
  }
  /// Host throughput over all profiled spans, cycles per wall second.
  [[nodiscard]] double cycles_per_sec() const noexcept;

 private:
  metrics::StatRegistry& reg_;
  std::vector<Lane> lanes_;
  std::vector<metrics::Counter*> exec_;  // sim.prof.worker{w}.exec_ns
  std::vector<metrics::Counter*> wait_;  // sim.prof.worker{w}.wait_ns
  metrics::Counter* spans_;
  metrics::Counter* span_ns_;
  metrics::Counter* coord_ns_;
  metrics::Counter* cycles_ctr_;
  metrics::Gauge* cps_;
  std::uint64_t t0_ = 0;
  std::uint64_t total_ns_ = 0;
  std::uint64_t total_cycles_ = 0;

  void register_lane(std::uint32_t w);
};

}  // namespace hmcsim::sim
