// parallel.hpp — the conservative parallel execution core.
//
// Shards a multi-cube Simulator across a persistent pool of worker
// threads: each worker owns a contiguous block of devices and advances
// them cycle by cycle through the same three stages the sequential walk
// runs, synchronizing conservatively at the cube-to-cube link boundaries.
// The lookahead is the link forwarding latency (one cycle): a device's
// chain ingress queues are only ever written by its neighbour's stage of
// the *previous* cycle, so per-device per-stage epoch counters are enough
// to order every cross-cube access exactly as the sequential walk does.
//
// Determinism is the design constraint, not an afterthought: for any
// thread count the engine reproduces the sequential stats, trace and
// response streams byte for byte (docs/PARALLEL.md states the full
// argument; tests/sim/golden_equivalence_test.cpp enforces it).
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "trace/trace.hpp"

namespace hmcsim::sim {

class Simulator;

class ParallelEngine {
 public:
  /// `workers` must be in [2, sim.num_devices()]; the Simulator only
  /// constructs an engine when both the thread count and the device count
  /// make parallelism meaningful.
  ParallelEngine(Simulator& sim, std::uint32_t workers);
  ~ParallelEngine();
  ParallelEngine(const ParallelEngine&) = delete;
  ParallelEngine& operator=(const ParallelEngine&) = delete;

  /// Advance the simulation from sim.cycle()+1 through `stop` inclusive,
  /// running every device's stages for every cycle of the span and
  /// leaving sim.cycle() == stop. The caller (the Simulator) fires stats
  /// callbacks between spans; trace events emitted inside the span are
  /// captured per worker and replayed in sequential order on return.
  void run_span(std::uint64_t stop);

  [[nodiscard]] std::uint32_t workers() const noexcept {
    return num_workers_;
  }

 private:
  /// Completed-cycle counters, one triple per device, padded so two
  /// devices' epochs never share a cache line. a/b/c hold the last cycle
  /// whose response/vault/request stage finished on that device.
  struct alignas(64) StageEpochs {
    std::atomic<std::uint64_t> a{0};
    std::atomic<std::uint64_t> b{0};
    std::atomic<std::uint64_t> c{0};
  };

  /// Contiguous device block [first, last) owned by one worker.
  struct Shard {
    std::uint32_t first = 0;
    std::uint32_t last = 0;
  };

  static constexpr std::uint32_t kNoDevice = UINT32_MAX;

  void worker_main(std::uint32_t w);
  /// Run shard `w` through every cycle of the current span.
  void run_shard(std::uint32_t w);
  /// Block until `epoch` reaches at least `target` (spin, then yield: the
  /// waits inside a span are short and bounded by the wavefront skew).
  /// With `wait_ns` non-null (profiling), time actually spent blocked is
  /// accumulated into it; the already-satisfied fast path reads no clock.
  static void wait_for(const std::atomic<std::uint64_t>& epoch,
                       std::uint64_t target, std::uint64_t* wait_ns);

  Simulator& sim_;
  std::uint32_t num_workers_;
  std::vector<Shard> shards_;
  std::vector<StageEpochs> epochs_;
  /// Per-device producers of the chain ingress queues (kNoDevice when
  /// nothing feeds that queue). a_pusher_[d] pushes into d's chain_rsp_
  /// during its stage A; c_pusher_[d] pushes into d's chain_rqst_ during
  /// its stage C. Resolved once from the topology.
  std::vector<std::uint32_t> a_pusher_;
  std::vector<std::uint32_t> c_pusher_;
  /// Per-worker trace capture buffers, merged by Tracer::end_capture.
  std::vector<trace::CaptureBuf> bufs_;

  // ---- span handshake -----------------------------------------------------
  // The coordinator (the host thread, which doubles as the worker for
  // shard 0) publishes span parameters, bumps span_seq_ and wakes the
  // pool; each worker runs its shard and bumps done_count_. Plain members
  // below are written before the span_seq_ release and read after its
  // acquire, so they need no atomicity of their own.
  std::atomic<std::uint64_t> span_seq_{0};
  std::atomic<std::uint32_t> done_count_{0};
  std::atomic<bool> shutdown_{false};
  std::uint64_t span_from_ = 0;
  std::uint64_t span_stop_ = 0;
  /// Serialize stage B across devices for this span: active CMC
  /// registrations share registry slot state, the per-call CmcContext
  /// scratch, and (through the mem services) any cube's backing store, so
  /// vault execution must follow the sequential device order while a
  /// plugin could run. Without active CMC ops, stage B touches only
  /// device-local state and runs fully parallel.
  bool serialize_b_ = false;
  /// CmcActive register value latched for the span (cannot change while
  /// the span runs: registration is a host-side operation).
  std::uint64_t cmc_active_ = 0;

  std::vector<std::thread> threads_;
};

}  // namespace hmcsim::sim
