// sim_stats.hpp — chain-wide statistic totals.
//
// SimStats is a convenience POD for callers that want "the big numbers"
// without walking the metrics registry: collect_stats() renders it from
// the typed handles each component registered. The registry
// (Simulator::metrics(), docs/METRICS.md) is the single source of truth;
// nothing here is counted separately.
#pragma once

#include <cstdint>

namespace hmcsim::sim {

class Simulator;

/// Simulation-wide statistics: chain-wide sums rendered from the metrics
/// registry's typed handles (cheap enough to poll every simulated cycle).
/// Per-component resolution lives in Simulator::metrics().
struct SimStats {
  std::uint64_t cycles = 0;
  std::uint64_t rqsts_processed = 0;
  std::uint64_t rsps_generated = 0;
  std::uint64_t cmc_executed = 0;
  std::uint64_t amo_executed = 0;
  std::uint64_t errors = 0;
  std::uint64_t bank_conflicts = 0;
  std::uint64_t xbar_rqst_stalls = 0;
  std::uint64_t xbar_rsp_stalls = 0;
  std::uint64_t vault_rsp_stalls = 0;
  std::uint64_t send_stalls = 0;
  std::uint64_t rqst_flits = 0;
  std::uint64_t rsp_flits = 0;
  std::uint64_t forwarded_rqsts = 0;
  std::uint64_t forwarded_rsps = 0;
  std::uint64_t link_retries = 0;  ///< CRC-failure redeliveries.
};

/// Sum the per-component typed handles into one SimStats. No string
/// lookups and no allocation, so per-cycle polling (the histogram kernel
/// does this) stays cheap.
[[nodiscard]] SimStats collect_stats(const Simulator& sim);

}  // namespace hmcsim::sim
