// session.hpp — batched asynchronous submission over a MemoryBackend.
//
// Session amortizes the per-packet host interface (send one / clock /
// recv-poll every link) into whole-batch operations:
//
//   send_batch()  queue a span of requests, get a BatchTicket back;
//                 as much of the batch as the links accept is admitted
//                 immediately, the rest is retried every pump
//   poll_batch()  harvest completed responses for a ticket (bulk copy)
//   wait_batch()  run the clock until a batch completes, fast-forwarding
//                 dead stretches exactly like the sequential scheduler
//
// Determinism is the contract (docs/COSIM.md): admission is per-link FIFO,
// links walked in ascending order, head-of-line until the link stalls, and
// responses are drained in ascending link order every pump. A batch driven
// through a Session therefore retires with byte-identical statistics to
// the same requests hand-driven by the canonical packet-at-a-time loop
// (admit-until-stall per link, clock, drain) — the golden-equivalence
// suite holds this bit-for-bit.
//
// One Session per backend. The Session drains every host link it pumps:
// responses that match no in-flight batch request are parked per link and
// surfaced through recv_unmatched(), so raw send()/Session traffic can be
// mixed as long as every recv goes through the Session.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "backend/backend.hpp"
#include "common/status.hpp"
#include "spec/packet.hpp"

namespace hmcsim::sim {

/// Handle naming one submitted batch. Tickets are unique per Session and
/// stay valid until poll_batch() returns Ok (batch complete and every
/// response delivered), which retires them.
using BatchTicket = std::uint64_t;

/// Never returned by send_batch(); safe "no ticket" initializer.
inline constexpr BatchTicket kInvalidTicket = 0;

/// send_batch() link selector: shard the batch round-robin across links.
inline constexpr std::uint32_t kAnyLink = UINT32_MAX;

/// Hard per-batch request cap (keeps tickets and admission queues sane;
/// submit several batches for larger workloads — they pipeline).
inline constexpr std::size_t kMaxBatchRequests = 1u << 16;

/// Observable lifecycle counters of one batch.
struct BatchProgress {
  std::size_t total = 0;      ///< Requests submitted.
  std::size_t admitted = 0;   ///< Requests accepted by the backend so far.
  std::size_t expected = 0;   ///< Responses owed by admitted requests.
  std::size_t received = 0;   ///< Responses matched back to the batch.
  std::size_t delivered = 0;  ///< Responses handed to the caller/callback.
  /// Complete: everything admitted, every owed response received. Posted
  /// requests (rsp_flits == 0) owe no response and complete at admission.
  [[nodiscard]] bool done() const noexcept {
    return admitted == total && received == expected;
  }
};

class Session {
 public:
  /// Invoked at drain time for every completed response of a batch when
  /// installed via set_on_complete(); responses consumed by the callback
  /// are not buffered for poll_batch().
  using CompletionFn = std::function<void(BatchTicket, const Response&)>;

  /// Drive `mem` (not owned; must outlive the session).
  explicit Session(backend::MemoryBackend& mem);
  /// Convenience: drive a caller-owned Simulator through an internal
  /// borrowed HmcBackend.
  explicit Session(Simulator& sim);
  ~Session();
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  // ---- submission ---------------------------------------------------------
  /// Queue `reqs` for admission on `link` (kAnyLink: round-robin across
  /// links, one request at a time) and admit as much as the links accept
  /// this cycle. Payloads are copied; `reqs` may die after the call.
  /// The whole batch is validated up front: on any invalid request the
  /// batch is rejected atomically and no ticket is created. InvalidArg on
  /// an empty batch, a batch over kMaxBatchRequests, or a bad link.
  [[nodiscard]] Status send_batch(std::span<const spec::RqstParams> reqs,
                                  BatchTicket& ticket,
                                  std::uint32_t link = kAnyLink);

  // ---- completion ---------------------------------------------------------
  /// Pump once (drain + admit, no clocking), then copy up to out.size()
  /// completed-but-undelivered responses of `ticket` into `out`; `filled`
  /// reports how many were written. Responses arrive in retirement order.
  /// Returns Ok exactly once — when the batch is complete and its last
  /// response has been delivered — and retires the ticket; Stall while
  /// work remains (in flight, or completed responses beyond out.size());
  /// NotFound for an unknown/retired ticket; the batch's sticky error if
  /// the backend hard-rejected one of its requests at admission.
  [[nodiscard]] Status poll_batch(BatchTicket ticket, std::span<Response> out,
                                  std::size_t& filled);

  /// Lifecycle counters for a live ticket; NotFound once retired.
  [[nodiscard]] Status batch_progress(BatchTicket ticket,
                                      BatchProgress& out) const;

  /// True when every request of `ticket` is admitted and every owed
  /// response received (delivery via poll may still be pending). False
  /// for unknown/retired tickets.
  [[nodiscard]] bool batch_done(BatchTicket ticket) const;

  /// Stream completions through `fn` instead of buffering them for
  /// poll_batch (fire-and-forget / server mode). Pass nullptr to restore
  /// buffering. Applies to responses drained after the call.
  void set_on_complete(CompletionFn fn);

  // ---- time ---------------------------------------------------------------
  /// Drain ready responses (ascending links) then admit queued requests
  /// (ascending links, FIFO, until each link stalls). Never clocks.
  void pump();

  /// clock() `cycles` times, pumping before the first clock and after
  /// every clock — the batched equivalent of the canonical per-cycle
  /// admit/clock/drain loop. Returns `cycles`.
  std::uint64_t advance(std::uint64_t cycles);

  /// Run the clock until `ticket` completes or `max_cycles` elapse
  /// (0 = unbounded). Quiescent stretches are fast-forwarded in O(1) when
  /// the backend allows it — observably identical to advance() one cycle
  /// at a time. Returns Ok when done (ticket stays live for polling),
  /// Stall at budget exhaustion, InvalidState if the backend goes
  /// quiescent while responses are still owed (lost traffic).
  [[nodiscard]] Status wait_batch(BatchTicket ticket,
                                  std::uint64_t max_cycles = 0);

  // ---- unmatched traffic --------------------------------------------------
  /// Pop the oldest drained response on `link` that matched no in-flight
  /// batch request (raw send() traffic); NoData when none.
  [[nodiscard]] Status recv_unmatched(std::uint32_t link, Response& out);

  // ---- introspection ------------------------------------------------------
  [[nodiscard]] std::uint64_t cycle() const { return mem_->cycle(); }
  [[nodiscard]] backend::MemoryBackend& memory() noexcept { return *mem_; }
  /// Batch responses matched since construction (all batches).
  [[nodiscard]] std::uint64_t responses_matched() const noexcept {
    return matched_;
  }
  /// Live (unretired) tickets.
  [[nodiscard]] std::size_t open_batches() const noexcept {
    return batches_.size();
  }

 private:
  /// One queued request: params plus its copied payload words.
  struct Pending {
    spec::RqstParams params;
    std::vector<std::uint64_t> payload;
    BatchTicket ticket = kInvalidTicket;
    bool expects_rsp = true;
  };

  struct Batch {
    BatchProgress progress;
    std::deque<Response> ready;  ///< Completed, not yet delivered.
    Status error = Status::Ok(); ///< Sticky admission failure.
  };

  /// (link, tag) key for response matching: tags are 11 bits.
  static std::uint32_t match_key(std::uint32_t link,
                                 std::uint16_t tag) noexcept {
    return (link << 12) | (tag & spec::kMaxTag);
  }

  [[nodiscard]] Status validate(const spec::RqstParams& p) const;
  [[nodiscard]] bool expects_response(const spec::RqstParams& p) const;
  void drain();
  void admit();
  /// Callback mode: retire `ticket` once it is done and clean — nobody
  /// will poll it, so it would otherwise stay in batches_ forever.
  void maybe_retire(BatchTicket ticket);
  /// Hard admission failure: record the sticky error and drop the batch's
  /// still-queued requests from every link.
  void fail_batch(BatchTicket ticket, const Status& error);

  std::unique_ptr<backend::MemoryBackend> owned_;  ///< Simulator ctor only.
  backend::MemoryBackend* mem_;
  std::uint32_t links_;
  std::vector<std::deque<Pending>> admit_q_;  ///< Per-link FIFO.
  /// (link,tag) -> tickets awaiting that tag on that link, in admission
  /// order (duplicate in-flight tags resolve FIFO, matching the in-order
  /// host links).
  std::unordered_map<std::uint32_t, std::deque<BatchTicket>> inflight_;
  std::unordered_map<BatchTicket, Batch> batches_;
  std::vector<std::deque<Response>> unmatched_;  ///< Per-link orphans.
  CompletionFn on_complete_;
  BatchTicket next_ticket_ = 1;
  std::uint32_t rr_link_ = 0;
  std::uint64_t matched_ = 0;
};

}  // namespace hmcsim::sim
