#include "sim/stats_report.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "metrics/stat_registry.hpp"

namespace hmcsim::sim {

std::vector<std::uint64_t> vault_histogram(const Simulator& sim,
                                           std::uint32_t dev) {
  // Read per-vault counters back out of the registry by path — this is
  // the query-side contract the registry exists for (and what keeps the
  // histogram correct across future re-organisations of Vault).
  const metrics::StatRegistry& reg = sim.metrics();
  const std::string prefix = "cube" + std::to_string(dev) + ".quad";
  std::vector<std::uint64_t> hist;
  const auto& vaults = sim.device(dev).vaults();
  hist.reserve(vaults.size());
  for (const auto& vault : vaults) {
    hist.push_back(reg.counter_value(
        prefix + std::to_string(vault.quad()) + ".vault" +
        std::to_string(vault.id()) + ".rqsts_processed"));
  }
  return hist;
}

double hotspot_factor(const Simulator& sim, std::uint32_t dev) {
  const auto hist = vault_histogram(sim, dev);
  const std::uint64_t total =
      std::accumulate(hist.begin(), hist.end(), std::uint64_t{0});
  if (total == 0) {
    return 0.0;
  }
  const std::uint64_t peak = *std::max_element(hist.begin(), hist.end());
  return static_cast<double>(peak) / static_cast<double>(total);
}

std::string format_stats(const Simulator& sim) {
  const metrics::StatRegistry& reg = sim.metrics();
  std::ostringstream oss;
  oss << "configuration: " << sim.config().describe() << '\n';
  oss << "cycle: " << sim.cycle() << '\n';
  for (std::uint32_t d = 0; d < sim.num_devices(); ++d) {
    const std::string cube = "cube" + std::to_string(d);
    // Vault-level sums use the `<cube>.quad` prefix and link-level sums
    // the `<cube>.link` prefix: the `rsp_stalls` leaf exists under both
    // vaults and the xbar, so the prefixes must disambiguate.
    const std::string vaults = cube + ".quad";
    const std::string links = cube + ".link";
    oss << "device " << d
        << ": rqsts=" << reg.sum(vaults, "rqsts_processed")
        << " rsps=" << reg.sum(vaults, "rsps_generated")
        << " amo=" << reg.sum(vaults, "amo_executed")
        << " cmc=" << reg.sum(vaults, "cmc_executed")
        << " errors=" << reg.sum(vaults, "errors") << '\n';
    oss << "  flits: rqst=" << reg.sum(links, "rqst_flits")
        << " rsp=" << reg.sum(links, "rsp_flits")
        << " fwd_rqst=" << reg.counter_value(cube + ".forwarded_rqsts")
        << " fwd_rsp=" << reg.counter_value(cube + ".forwarded_rsps")
        << '\n';
    oss << "  stalls: send=" << reg.sum(links, "send_stalls")
        << " xbar_rqst=" << reg.counter_value(cube + ".xbar.rqst_stalls")
        << " xbar_rsp=" << reg.counter_value(cube + ".xbar.rsp_stalls")
        << " vault_rsp=" << reg.sum(vaults, "rsp_stalls")
        << " bank_conflicts=" << reg.sum(vaults, "bank_conflicts") << '\n';

    const auto hist = vault_histogram(sim, d);
    const std::uint64_t total =
        std::accumulate(hist.begin(), hist.end(), std::uint64_t{0});
    if (total > 0) {
      oss << "  hotspot factor: " << hotspot_factor(sim, d)
          << " (busiest vaults:";
      std::vector<std::uint32_t> order(hist.size());
      std::iota(order.begin(), order.end(), 0);
      std::sort(order.begin(), order.end(),
                [&hist](std::uint32_t a, std::uint32_t b) {
                  return hist[a] > hist[b];
                });
      for (std::uint32_t i = 0; i < 4 && i < order.size(); ++i) {
        if (hist[order[i]] == 0) {
          break;
        }
        oss << ' ' << order[i] << ':' << hist[order[i]];
      }
      oss << ")\n";
    }
    for (std::uint32_t l = 0; l < sim.config().num_links; ++l) {
      const std::string link = links + std::to_string(l);
      const std::uint64_t rqst_pkts =
          reg.counter_value(link + ".rqst_packets");
      const std::uint64_t rsp_pkts = reg.counter_value(link + ".rsp_packets");
      if (rqst_pkts == 0 && rsp_pkts == 0) {
        continue;
      }
      oss << "  link " << l << ": rqst=" << rqst_pkts << " ("
          << reg.counter_value(link + ".rqst_flits") << " flits) rsp="
          << rsp_pkts << " (" << reg.counter_value(link + ".rsp_flits")
          << " flits) stalls=" << reg.counter_value(link + ".send_stalls")
          << '\n';
    }
  }
  const metrics::Histogram& lat = sim.latency_histogram();
  if (lat.count() > 0) {
    oss << "latency: count=" << lat.count() << " mean=" << lat.mean()
        << " min=" << lat.min() << " max=" << lat.max()
        << " p50=" << lat.percentile(50.0)
        << " p95=" << lat.percentile(95.0)
        << " p99=" << lat.percentile(99.0) << '\n';
  }
  return oss.str();
}

std::string format_stats_csv(const Simulator& sim) {
  std::ostringstream oss;
  oss << "section,dev,index,rqsts,rsps,flits_in,flits_out,stalls\n";
  for (std::uint32_t d = 0; d < sim.num_devices(); ++d) {
    const auto& vaults = sim.device(d).vaults();
    for (std::uint32_t v = 0; v < vaults.size(); ++v) {
      oss << "vault," << d << ',' << v << ','
          << vaults[v].rqsts_processed().value() << ','
          << vaults[v].rsps_generated().value() << ",," << ','
          << vaults[v].rsp_stalls().value() << '\n';
    }
    const auto& links = sim.device(d).links();
    for (std::uint32_t l = 0; l < links.size(); ++l) {
      const dev::Link& link = links[l];
      oss << "link," << d << ',' << l << ',' << link.rqst_packets().value()
          << ',' << link.rsp_packets().value() << ','
          << link.rqst_flits().value() << ',' << link.rsp_flits().value()
          << ',' << link.send_stalls().value() << '\n';
    }
  }
  return oss.str();
}

std::string format_stats_json(const Simulator& sim,
                              std::string_view extra_member) {
  std::string out = "{\n";
  out += "  \"schema_version\": 1,\n";
  out += "  \"cycle\": " + std::to_string(sim.cycle()) + ",\n";
  out += "  \"config\": \"" + metrics::json_escape(sim.config().describe()) +
         "\",\n";
  if (!extra_member.empty()) {
    out += "  ";
    out += extra_member;
    out += ",\n";
  }
  out += "  \"stats\": " + sim.metrics().to_json(2) + "\n";
  out += "}\n";
  return out;
}

void register_default_samples(metrics::Sampler& sampler,
                              const Simulator& sim) {
  const Config& cfg = sim.config();
  for (std::uint32_t d = 0; d < sim.num_devices(); ++d) {
    const std::string links = "cube" + std::to_string(d) + ".link";
    sampler.add_derived(
        {.name = "cube" + std::to_string(d) + ".pkts_per_cycle",
         .terms = {{links, "rqst_packets"}, {links, "rsp_packets"}},
         .scale = 1.0});
    const std::uint64_t budget =
        static_cast<std::uint64_t>(cfg.xbar_rqst_bw_flits) +
        cfg.xbar_rsp_bw_flits;
    if (budget > 0) {
      // FLITs moved per cycle against the aggregate per-cube bandwidth
      // gate, scaled to read in percent.
      sampler.add_derived(
          {.name = "cube" + std::to_string(d) + ".link_util_pct",
           .terms = {{links, "rqst_flits"}, {links, "rsp_flits"}},
           .scale = static_cast<double>(cfg.num_links) *
                    static_cast<double>(budget) / 100.0});
    }
  }
}

}  // namespace hmcsim::sim
