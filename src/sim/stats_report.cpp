#include "sim/stats_report.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>

namespace hmcsim::sim {

std::vector<std::uint64_t> vault_histogram(const Simulator& sim,
                                           std::uint32_t dev) {
  std::vector<std::uint64_t> hist;
  const auto& vaults = sim.device(dev).vaults();
  hist.reserve(vaults.size());
  for (const auto& vault : vaults) {
    hist.push_back(vault.stats().rqsts_processed);
  }
  return hist;
}

double hotspot_factor(const Simulator& sim, std::uint32_t dev) {
  const auto hist = vault_histogram(sim, dev);
  const std::uint64_t total =
      std::accumulate(hist.begin(), hist.end(), std::uint64_t{0});
  if (total == 0) {
    return 0.0;
  }
  const std::uint64_t peak = *std::max_element(hist.begin(), hist.end());
  return static_cast<double>(peak) / static_cast<double>(total);
}

std::string format_stats(const Simulator& sim) {
  std::ostringstream oss;
  oss << "configuration: " << sim.config().describe() << '\n';
  oss << "cycle: " << sim.cycle() << '\n';
  for (std::uint32_t d = 0; d < sim.num_devices(); ++d) {
    const dev::DeviceStats s = sim.device(d).stats();
    oss << "device " << d << ": rqsts=" << s.rqsts_processed
        << " rsps=" << s.rsps_generated << " amo=" << s.amo_executed
        << " cmc=" << s.cmc_executed << " errors=" << s.errors << '\n';
    oss << "  flits: rqst=" << s.rqst_flits << " rsp=" << s.rsp_flits
        << " fwd_rqst=" << s.forwarded_rqsts
        << " fwd_rsp=" << s.forwarded_rsps << '\n';
    oss << "  stalls: send=" << s.send_stalls
        << " xbar_rqst=" << s.xbar_rqst_stalls
        << " xbar_rsp=" << s.xbar_rsp_stalls
        << " vault_rsp=" << s.vault_rsp_stalls
        << " bank_conflicts=" << s.bank_conflicts << '\n';

    const auto hist = vault_histogram(sim, d);
    const std::uint64_t total =
        std::accumulate(hist.begin(), hist.end(), std::uint64_t{0});
    if (total > 0) {
      oss << "  hotspot factor: " << hotspot_factor(sim, d)
          << " (busiest vaults:";
      std::vector<std::uint32_t> order(hist.size());
      std::iota(order.begin(), order.end(), 0);
      std::sort(order.begin(), order.end(),
                [&hist](std::uint32_t a, std::uint32_t b) {
                  return hist[a] > hist[b];
                });
      for (std::uint32_t i = 0; i < 4 && i < order.size(); ++i) {
        if (hist[order[i]] == 0) {
          break;
        }
        oss << ' ' << order[i] << ':' << hist[order[i]];
      }
      oss << ")\n";
    }
    const auto& links = sim.device(d).links();
    for (std::uint32_t l = 0; l < links.size(); ++l) {
      const dev::LinkStats& ls = links[l].stats();
      if (ls.rqst_packets == 0 && ls.rsp_packets == 0) {
        continue;
      }
      oss << "  link " << l << ": rqst=" << ls.rqst_packets << " ("
          << ls.rqst_flits << " flits) rsp=" << ls.rsp_packets << " ("
          << ls.rsp_flits << " flits) stalls=" << ls.send_stalls << '\n';
    }
  }
  return oss.str();
}

std::string format_stats_csv(const Simulator& sim) {
  std::ostringstream oss;
  oss << "section,dev,index,rqsts,rsps,flits_in,flits_out,stalls\n";
  for (std::uint32_t d = 0; d < sim.num_devices(); ++d) {
    const auto& vaults = sim.device(d).vaults();
    for (std::uint32_t v = 0; v < vaults.size(); ++v) {
      const dev::VaultStats& vs = vaults[v].stats();
      oss << "vault," << d << ',' << v << ',' << vs.rqsts_processed << ','
          << vs.rsps_generated << ",," << ',' << vs.rsp_stalls << '\n';
    }
    const auto& links = sim.device(d).links();
    for (std::uint32_t l = 0; l < links.size(); ++l) {
      const dev::LinkStats& ls = links[l].stats();
      oss << "link," << d << ',' << l << ',' << ls.rqst_packets << ','
          << ls.rsp_packets << ',' << ls.rqst_flits << ',' << ls.rsp_flits
          << ',' << ls.send_stalls << '\n';
    }
  }
  return oss.str();
}

}  // namespace hmcsim::sim
