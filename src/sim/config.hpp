// config.hpp — device/simulation configuration.
//
// Mirrors the knobs of HMC-Sim: device count, link count, capacity, block
// size, and the two queue depths the paper's evaluation fixes (request
// queue 64, crossbar queue 128). Timing-model extensions (bank-conflict
// modelling) are off by default to match HMC-Sim's deliberately
// timing-agnostic behaviour.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.hpp"

namespace hmcsim::sim {

/// Gigabyte in bytes.
inline constexpr std::uint64_t kGiB = 1024ULL * 1024ULL * 1024ULL;

/// Multi-cube interconnect shape (HMC-Sim 1.0's device chaining feature).
enum class Topology : std::uint8_t {
  Chain,  ///< Linear: host -> dev0 -> dev1 -> ... (hops accumulate).
  Star,   ///< Hub-and-spoke: host -> dev0 -> devN (one hop to any cube).
};

[[nodiscard]] std::string_view to_string(Topology t) noexcept;

struct Config {
  // ---- topology ---------------------------------------------------------
  std::uint32_t num_devs = 1;    ///< Cubes (1..8); host attaches to dev 0.
  Topology topology = Topology::Chain;
  std::uint32_t num_links = 4;   ///< Host links per device: 4 or 8.
  std::uint64_t capacity_bytes = 4 * kGiB;  ///< 2, 4 or 8 GiB per cube.
  std::uint32_t num_quads = 4;       ///< Logic-layer quadrants.
  std::uint32_t vaults_per_quad = 8; ///< 4x8 = 32 vaults per cube.
  std::uint32_t banks_per_vault = 16;  ///< 16 (4 GiB) or 32 (8 GiB).

  // ---- request routing --------------------------------------------------
  std::uint32_t block_size = 64;  ///< Vault interleave granularity (bytes).

  // ---- queueing ----------------------------------------------------------
  std::uint32_t xbar_depth = 128;       ///< Crossbar queue slots per link.
  std::uint32_t vault_rqst_depth = 64;  ///< Vault request queue slots.
  std::uint32_t vault_rsp_depth = 64;   ///< Vault response queue slots.

  /// Crossbar forwarding bandwidth, in FLITs per link per cycle, applied
  /// independently to the request (link -> vault) and response (vault ->
  /// link) directions. 0 = unbounded. The default (26) is calibrated so a
  /// 4-link device saturates per-link forwarding at ~52 concurrent 2-FLIT
  /// requests — reproducing the paper's observation that 4-link and 8-link
  /// devices behave identically up to ~50 threads and diverge slightly
  /// beyond (the 8-link device saturates only past ~104).
  std::uint32_t xbar_rqst_bw_flits = 26;
  std::uint32_t xbar_rsp_bw_flits = 26;

  // ---- optional timing extensions (future-work features) -----------------
  bool model_bank_conflicts = false;  ///< Stall on busy banks when true.
  std::uint32_t bank_busy_cycles = 4; ///< Bank occupancy per access.

  // ---- clock scheduling ---------------------------------------------------
  /// When true, every clock() walks all devices x vaults x links exactly as
  /// HMC-Sim does, regardless of queue occupancy, and the host-side drivers
  /// never fast-forward. The default (false) uses event-driven active-set
  /// scheduling: clock stages touch only components with queued work.
  /// Both modes are observably identical (stats, traces, response order);
  /// the exhaustive walk is retained as the golden reference for A/B
  /// equivalence testing and as a perf baseline.
  bool exhaustive_clock = false;

  // ---- parallel sharded execution -----------------------------------------
  /// Worker threads for the sharded simulation core. 1 (the default) runs
  /// the original single-threaded walk with zero new synchronization on the
  /// hot path. Values > 1 shard the devices across a persistent worker pool
  /// (at most one worker per cube is ever useful), synchronizing
  /// conservatively at the cube-to-cube link boundaries each cycle. Every
  /// thread count produces byte-identical stats, traces and response
  /// streams — see docs/PARALLEL.md.
  std::uint32_t threads = 1;

  // ---- link-error injection (retry protocol exercise) ---------------------
  /// Probability that one FLIT of an inbound request packet is corrupted
  /// in transit (detected by the packet CRC; the link-layer retry then
  /// redelivers the packet). 0 disables injection. Expressed per-million
  /// to keep the configuration integral and the model deterministic.
  std::uint32_t link_flit_error_ppm = 0;
  /// Redelivery delay of a corrupted packet, in cycles (covers the error
  /// detection + IRTRY/retry-pointer exchange of the HMC link protocol).
  std::uint32_t link_retry_latency = 8;
  /// Seed of the deterministic error-injection stream.
  std::uint64_t link_error_seed = 0xE44;

  // ---- DRAM fault injection (ECC / scrubbing exercise) ---------------------
  /// Probability, per 64-bit word read from a vault, that a transient
  /// single-bit fault is deposited into that word (parts-per-million).
  /// Faults are latent: SEC-DED ECC corrects one flipped bit per word on
  /// every read, but flips accumulate until the patrol scrubber repairs
  /// them — two flips in one word make the read uncorrectable (poisoned
  /// response with the DINV errstat). 0 disables transient injection.
  std::uint32_t dram_fault_ppm = 0;
  /// Seed of the deterministic DRAM fault stream. Per-read draws are keyed
  /// by (cube, vault, word address, cycle) so injection is byte-identical
  /// for every thread count and for active vs exhaustive clocking.
  std::uint64_t dram_fault_seed = 0xECC;
  /// Patrol scrub cadence in cycles: every scrub_interval cycles each cube
  /// repairs up to a fixed burst of latent faulty words (ascending address
  /// order). 0 disables the scrubber. The scrubber registers with
  /// next_event_cycle, so quiescence fast-forward stays exact.
  std::uint32_t scrub_interval = 1024;
  /// Number of permanent stuck-at single-bit cells seeded per cube (placed
  /// deterministically from dram_fault_seed). A read of a stuck word whose
  /// stored value disagrees with the stuck bit sees a single-bit ECC
  /// correction; the scrubber visits each dirtied stuck cell once and
  /// leaves it (permanent faults cannot be repaired). 0 disables.
  std::uint32_t stuck_faults = 0;

  // ---- latency attribution -------------------------------------------------
  /// When true, journey tracing (trace::Level::Journey) is enabled at
  /// construction and the `host.stage.*` per-stage histograms are
  /// registered eagerly, so they appear in stats exports even before the
  /// first packet retires. When false (the default) the histograms are
  /// registered lazily on the first completed journey: with journey
  /// tracing never enabled, stats output is byte-identical to a build
  /// without the feature.
  bool stage_stats = false;

  // ---- workload seeding ----------------------------------------------------
  /// Root seed for host-side workload generators (the synthetic frontend's
  /// arrival/address/op streams). Frontends derive their private streams
  /// from this value instead of taking ad-hoc constructor seeds, so one
  /// Config fully determines a run. Not part of describe(): it does not
  /// change the modelled hardware.
  std::uint64_t workload_seed = 0x5EED;

  // ---- CMC fault containment ----------------------------------------------
  /// Consecutive failed plugin executes before a CMC slot is quarantined
  /// (requests then take the fast errstat_cmc_inactive error path until
  /// the slot is re-armed). 0 disables auto-quarantine.
  std::uint32_t cmc_fail_threshold = 8;
  /// 64-bit words one plugin execute call may move through the
  /// hmcsim_cmc_mem_read/write services (reads + writes combined) before
  /// further accesses are refused and the call is failed. 0 = unlimited.
  /// The default comfortably covers every shipped operation (the largest,
  /// hmc_memfill, writes at most 512 words per call).
  std::uint32_t cmc_mem_word_budget = 65536;

  // -------------------------------------------------------------------------
  [[nodiscard]] std::uint32_t total_vaults() const noexcept {
    return num_quads * vaults_per_quad;
  }
  [[nodiscard]] std::uint32_t total_banks() const noexcept {
    return total_vaults() * banks_per_vault;
  }

  /// Sanity-check every field combination; returns the first violation.
  [[nodiscard]] Status validate() const;

  /// One-line description for logs and bench headers.
  [[nodiscard]] std::string describe() const;

  // ---- canonical configurations ------------------------------------------
  /// The paper's 4Link-4GB evaluation device (64 B block, queues 64/128).
  [[nodiscard]] static Config hmc_4link_4gb();
  /// The paper's 8Link-8GB evaluation device (64 B block, queues 64/128).
  [[nodiscard]] static Config hmc_8link_8gb();
  /// Smaller Gen1-style device retained for API compatibility tests.
  [[nodiscard]] static Config hmc_4link_2gb();
  /// 8-link 4GB mid-point configuration.
  [[nodiscard]] static Config hmc_8link_4gb();
};

}  // namespace hmcsim::sim
