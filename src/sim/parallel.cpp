#include "sim/parallel.hpp"

#include <algorithm>

#include "sim/prof.hpp"
#include "sim/simulator.hpp"

namespace hmcsim::sim {

namespace {

inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::this_thread::yield();
#endif
}

}  // namespace

ParallelEngine::ParallelEngine(Simulator& sim, std::uint32_t workers)
    : sim_(sim), num_workers_(workers) {
  const auto n = static_cast<std::uint32_t>(sim.devices_.size());
  shards_.resize(num_workers_);
  for (std::uint32_t w = 0; w < num_workers_; ++w) {
    shards_[w].first = w * n / num_workers_;
    shards_[w].last = (w + 1) * n / num_workers_;
  }
  epochs_ = std::vector<StageEpochs>(n);
  bufs_.resize(num_workers_);

  // Resolve who feeds each device's chain ingress queues. Stage A moves
  // responses host-ward: device e pushes into prev_[e], so d's response
  // producer is the (largest) e with prev_[e] == d. Stage C moves
  // requests away from the host along routers_: chain devices feed their
  // successor, the star hub feeds every spoke.
  a_pusher_.assign(n, kNoDevice);
  c_pusher_.assign(n, kNoDevice);
  const bool star = sim.cfg_.topology == Topology::Star;
  for (std::uint32_t e = 0; e < n; ++e) {
    if (sim.prev_[e] != nullptr) {
      // Ascending e: the last writer is the largest pusher, whose epoch
      // transitively covers every smaller one (stage A serializes
      // ascending within a cycle).
      a_pusher_[sim.prev_[e]->id()] = e;
    }
  }
  for (std::uint32_t d = 1; d < n; ++d) {
    c_pusher_[d] = star ? 0 : d - 1;
  }

  threads_.reserve(num_workers_ - 1);
  for (std::uint32_t w = 1; w < num_workers_; ++w) {
    threads_.emplace_back([this, w] { worker_main(w); });
  }
}

ParallelEngine::~ParallelEngine() {
  shutdown_.store(true, std::memory_order_relaxed);
  span_seq_.fetch_add(1, std::memory_order_release);
  span_seq_.notify_all();
  for (std::thread& t : threads_) {
    t.join();
  }
}

void ParallelEngine::wait_for(const std::atomic<std::uint64_t>& epoch,
                              std::uint64_t target,
                              std::uint64_t* wait_ns) {
  if (epoch.load(std::memory_order_acquire) >= target) {
    return;
  }
  const std::uint64_t t0 = wait_ns != nullptr ? Profiler::now_ns() : 0;
  std::uint32_t spins = 0;
  do {
    // Short spin first (the wavefront neighbour is typically one stage
    // away), then yield so oversubscribed hosts keep making progress.
    if (++spins < 64) {
      cpu_relax();
    } else {
      std::this_thread::yield();
    }
  } while (epoch.load(std::memory_order_acquire) < target);
  if (wait_ns != nullptr) {
    *wait_ns += Profiler::now_ns() - t0;
  }
}

void ParallelEngine::worker_main(std::uint32_t w) {
  std::uint64_t seen = 0;
  trace::Tracer::bind_capture(&bufs_[w]);
  for (;;) {
    std::uint64_t seq = span_seq_.load(std::memory_order_acquire);
    while (seq == seen) {
      span_seq_.wait(seen, std::memory_order_acquire);
      seq = span_seq_.load(std::memory_order_acquire);
    }
    seen = seq;
    if (shutdown_.load(std::memory_order_relaxed)) {
      return;
    }
    run_shard(w);
    done_count_.fetch_add(1, std::memory_order_release);
    done_count_.notify_one();
  }
}

void ParallelEngine::run_shard(std::uint32_t w) {
  const Shard& sh = shards_[w];
  const auto n = static_cast<std::uint32_t>(sim_.devices_.size());
  const bool exhaustive = sim_.cfg_.exhaustive_clock;
  trace::Tracer& tracer = sim_.tracer_;

  // Profiling taps: `wns` is null unless enabled, so the steady state
  // costs one pointer test per barrier. Wait time accumulates locally and
  // is folded into this worker's lane once at shard end; the host reads
  // the lanes only after the span join.
  Profiler* prof = sim_.prof_.get();
  std::uint64_t shard_t0 = 0;
  std::uint64_t local_wait = 0;
  std::uint64_t* wns = nullptr;
  if (prof != nullptr && w < prof->workers()) {
    shard_t0 = Profiler::now_ns();
    wns = &local_wait;
  }

  for (std::uint64_t t = span_from_; t <= span_stop_; ++t) {
    // Stage A, ascending device order. A(d) drains d's chain_rsp_ into
    // prev(d)'s — so it must follow prev's A this cycle (the sequential
    // walk checks fullness after prev drained), which the d-1 wait covers
    // for both topologies (star spokes all push into the hub; serializing
    // them ascending is exactly the sequential push order). The pusher
    // wait keeps d's own ingress queue quiet: its producer must have
    // finished cycle t-1 and not yet entered cycle t's A — the d-1 chain
    // of waits guarantees the latter, the epoch the former.
    for (std::uint32_t d = sh.first; d < sh.last; ++d) {
      if (a_pusher_[d] != kNoDevice) {
        wait_for(epochs_[a_pusher_[d]].a, t - 1, wns);
      }
      if (d > 0) {
        wait_for(epochs_[d - 1].a, t, wns);
      }
      trace::Tracer::set_capture_order(0, d);
      dev::Device& dev = *sim_.devices_[d];
      if (exhaustive || dev.rsp_stage_work()) {
        dev.clock_responses(t, tracer, sim_.prev_[d]);
      }
      epochs_[d].a.store(t, std::memory_order_release);
    }

    // Stage B: device-local unless a CMC operation could execute (shared
    // registry slots, shared CmcContext scratch, cross-cube mem services)
    // — then the sequential ascending order is enforced.
    for (std::uint32_t d = sh.first; d < sh.last; ++d) {
      if (serialize_b_) {
        if (d > 0) {
          wait_for(epochs_[d - 1].b, t, wns);
        } else if (n > 1) {
          wait_for(epochs_[n - 1].b, t - 1, wns);
        }
        sim_.cmc_exec_cycle_ = t;
      }
      trace::Tracer::set_capture_order(1, d);
      dev::Device& dev = *sim_.devices_[d];
      if (exhaustive || dev.vault_stage_work()) {
        dev.clock_vaults(t, &sim_.cmc_registry_, &sim_.cmc_ctx_, tracer);
      }
      // Patrol scrub interleaves per-device right after vault execution —
      // the identical point the sequential walk uses — so a serialized
      // cross-device CMC read observes the same fault overlay in both
      // cores. Owner-partitioned: only this shard touches dev's injector
      // outside the serialized CMC window.
      dev.clock_scrub(t);
      epochs_[d].b.store(t, std::memory_order_release);
    }

    // Stage C, descending device order (the sequential walk's order, so a
    // forward hop costs one cycle). C(d) pushes into next(d)'s chain_rqst_
    // after next drained it this cycle — the d+1 wait — and d's own
    // ingress producer must have finished cycle t-1 — the pusher wait
    // (the star hub feeds every spoke, so spokes wait on the hub
    // directly, not on their index neighbour).
    for (std::uint32_t d = sh.last; d-- > sh.first;) {
      if (d + 1 < n) {
        wait_for(epochs_[d + 1].c, t, wns);
      }
      if (c_pusher_[d] != kNoDevice) {
        wait_for(epochs_[c_pusher_[d]].c, t - 1, wns);
      }
      trace::Tracer::set_capture_order(2, n - 1 - d);
      dev::Device& dev = *sim_.devices_[d];
      if (exhaustive || dev.rqst_stage_work()) {
        dev.clock_requests(t, tracer, sim_.routers_[d]);
      }
      // Latch this device's free-running registers for cycle t (the
      // sequential walk's latch_registers, sharded; poke is silent so the
      // per-device order is unobservable).
      dev.regs().poke(dev::Reg::ClockCount, t);
      dev.regs().poke(dev::Reg::CmcActive, cmc_active_);
      epochs_[d].c.store(t, std::memory_order_release);
    }
  }

  if (wns != nullptr) {
    Profiler::Lane& lane = prof->lane(w);
    const std::uint64_t total = Profiler::now_ns() - shard_t0;
    lane.wait_ns += local_wait;
    lane.exec_ns += total > local_wait ? total - local_wait : 0;
  }
}

void ParallelEngine::run_span(std::uint64_t stop) {
  const std::uint64_t from = sim_.cycle_ + 1;
  if (stop < from) {
    return;
  }
  span_from_ = from;
  span_stop_ = stop;
  serialize_b_ = sim_.cmc_registry_.active_count() > 0;
  cmc_active_ =
      static_cast<std::uint64_t>(sim_.cmc_registry_.active_count());
  for (StageEpochs& e : epochs_) {
    e.a.store(from - 1, std::memory_order_relaxed);
    e.b.store(from - 1, std::memory_order_relaxed);
    e.c.store(from - 1, std::memory_order_relaxed);
  }
  done_count_.store(0, std::memory_order_relaxed);
  sim_.tracer_.begin_capture();

  span_seq_.fetch_add(1, std::memory_order_release);
  span_seq_.notify_all();

  // The coordinator doubles as the worker for shard 0.
  trace::Tracer::bind_capture(&bufs_[0]);
  run_shard(0);
  trace::Tracer::bind_capture(nullptr);

  const std::uint32_t need = num_workers_ - 1;
  std::uint32_t done = done_count_.load(std::memory_order_acquire);
  std::uint32_t spins = 0;
  while (done != need) {
    if (++spins < 256) {
      cpu_relax();
    } else {
      done_count_.wait(done, std::memory_order_acquire);
    }
    done = done_count_.load(std::memory_order_acquire);
  }

  sim_.cycle_ = stop;
  sim_.tracer_.end_capture(bufs_);
}

}  // namespace hmcsim::sim
