#include "sim/session.hpp"

#include <algorithm>
#include <string>

#include "backend/hmc_backend.hpp"
#include "spec/commands.hpp"

namespace hmcsim::sim {

Session::Session(backend::MemoryBackend& mem)
    : mem_(&mem), links_(mem.num_links()) {
  admit_q_.resize(links_);
  unmatched_.resize(links_);
}

Session::Session(Simulator& sim)
    : owned_(std::make_unique<backend::HmcBackend>(sim)),
      mem_(owned_.get()),
      links_(mem_->num_links()) {
  admit_q_.resize(links_);
  unmatched_.resize(links_);
}

Session::~Session() = default;

Status Session::validate(const spec::RqstParams& p) const {
  spec::RqstParams q = p;
  if (spec::is_cmc(q.rqst) && q.flits_override == 0) {
    // Mirror Simulator::send: CMC packet length comes from the live
    // registration (quarantined slots still shape packets).
    Simulator* s = mem_->simulator();
    if (s == nullptr) {
      return Status::Unsupported(
          "CMC request needs flits_override on a non-HMC backend");
    }
    const cmc::CmcOp* op = s->cmc_registry().lookup_registered(q.rqst);
    if (op == nullptr) {
      return Status::NotFound("CMC command " +
                              std::string(spec::to_string(q.rqst)) +
                              " has no registered operation");
    }
    q.flits_override = static_cast<std::uint8_t>(op->rqst_len);
  }
  return spec::validate_request(q);
}

bool Session::expects_response(const spec::RqstParams& p) const {
  if (spec::is_cmc(p.rqst)) {
    if (Simulator* s = mem_->simulator()) {
      if (const cmc::CmcOp* op = s->cmc_registry().lookup_registered(p.rqst)) {
        return op->rsp_len > 0;
      }
    }
    return true;  // Unknown shape: assume a response so none is dropped.
  }
  return spec::command_info(p.rqst).rsp_flits > 0;
}

Status Session::send_batch(std::span<const spec::RqstParams> reqs,
                           BatchTicket& ticket, std::uint32_t link) {
  ticket = kInvalidTicket;
  if (reqs.empty()) {
    return Status::InvalidArg("empty batch");
  }
  if (reqs.size() > kMaxBatchRequests) {
    return Status::InvalidArg(
        "batch of " + std::to_string(reqs.size()) + " exceeds the per-batch "
        "cap of " + std::to_string(kMaxBatchRequests) +
        " requests; split it (batches pipeline)");
  }
  if (link != kAnyLink && link >= links_) {
    return Status::InvalidArg("link " + std::to_string(link) +
                              " beyond the backend's " +
                              std::to_string(links_) + " host links");
  }
  // Atomic submit: reject the whole batch before queueing anything.
  for (const spec::RqstParams& p : reqs) {
    if (Status s = validate(p); !s.ok()) {
      return s;
    }
  }

  const BatchTicket t = next_ticket_++;
  Batch& batch = batches_[t];
  batch.progress.total = reqs.size();
  for (const spec::RqstParams& p : reqs) {
    const std::uint32_t l = link == kAnyLink ? rr_link_++ % links_ : link;
    Pending pending;
    pending.params = p;
    pending.payload.assign(p.payload.begin(), p.payload.end());
    pending.ticket = t;
    pending.expects_rsp = expects_response(p);
    admit_q_[l].push_back(std::move(pending));
  }
  ticket = t;
  // Admit what fits right now, so a batch submitted at cycle C enters the
  // links at cycle C exactly like a hand-written admission loop.
  pump();
  return Status::Ok();
}

void Session::drain() {
  Response rsp;
  for (std::uint32_t link = 0; link < links_; ++link) {
    while (mem_->rsp_ready(link)) {
      if (!mem_->recv(link, rsp).ok()) {
        break;
      }
      const auto it = inflight_.find(match_key(link, rsp.pkt.tag()));
      if (it == inflight_.end() || it->second.empty()) {
        unmatched_[link].push_back(rsp);
        continue;
      }
      const BatchTicket t = it->second.front();
      it->second.pop_front();
      if (it->second.empty()) {
        inflight_.erase(it);
      }
      Batch& batch = batches_.at(t);
      ++batch.progress.received;
      ++matched_;
      if (on_complete_) {
        ++batch.progress.delivered;
        on_complete_(t, rsp);
        maybe_retire(t);
      } else {
        batch.ready.push_back(rsp);
      }
    }
  }
}

void Session::maybe_retire(BatchTicket ticket) {
  if (!on_complete_) {
    return;
  }
  const auto it = batches_.find(ticket);
  if (it != batches_.end() && it->second.progress.done() &&
      it->second.ready.empty() && it->second.error.ok()) {
    batches_.erase(it);
  }
}

void Session::admit() {
  for (std::uint32_t link = 0; link < links_; ++link) {
    std::deque<Pending>& q = admit_q_[link];
    while (!q.empty()) {
      Pending& p = q.front();
      p.params.payload = {p.payload.data(), p.payload.size()};
      const Status s = mem_->send(p.params, link);
      if (s.stalled()) {
        break;  // Head-of-line: keep FIFO order, try again next pump.
      }
      if (!s.ok()) {
        const BatchTicket t = p.ticket;
        q.pop_front();
        fail_batch(t, s);
        continue;
      }
      Batch& batch = batches_.at(p.ticket);
      ++batch.progress.admitted;
      if (p.expects_rsp) {
        ++batch.progress.expected;
        inflight_[match_key(link, p.params.tag)].push_back(p.ticket);
      }
      const BatchTicket t = p.ticket;
      q.pop_front();
      maybe_retire(t);  // Posted-only batch may complete at admission.
    }
  }
}

void Session::fail_batch(BatchTicket ticket, const Status& error) {
  Batch& batch = batches_.at(ticket);
  if (batch.error.ok()) {
    batch.error = error;
  }
  // Drop the batch's still-queued requests everywhere; already-admitted
  // ones stay matched so their responses are not orphaned. The batch
  // counts the drops as admitted-without-response so done() converges.
  for (std::deque<Pending>& q : admit_q_) {
    for (auto it = q.begin(); it != q.end();) {
      if (it->ticket == ticket) {
        ++batch.progress.admitted;
        it = q.erase(it);
      } else {
        ++it;
      }
    }
  }
}

void Session::pump() {
  drain();
  admit();
}

std::uint64_t Session::advance(std::uint64_t cycles) {
  pump();
  for (std::uint64_t i = 0; i < cycles; ++i) {
    mem_->clock();
    pump();
  }
  return cycles;
}

Status Session::poll_batch(BatchTicket ticket, std::span<Response> out,
                           std::size_t& filled) {
  filled = 0;
  pump();
  const auto it = batches_.find(ticket);
  if (it == batches_.end()) {
    return Status::NotFound("unknown or retired batch ticket " +
                            std::to_string(ticket));
  }
  Batch& batch = it->second;
  const std::size_t n = std::min(out.size(), batch.ready.size());
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = batch.ready.front();
    batch.ready.pop_front();
    ++batch.progress.delivered;
  }
  filled = n;
  if (batch.progress.done() && batch.ready.empty()) {
    const Status err = batch.error;
    batches_.erase(it);
    return err;  // Ok unless an admission hard-failed; ticket retired.
  }
  return Status::Stall();
}

Status Session::batch_progress(BatchTicket ticket, BatchProgress& out) const {
  const auto it = batches_.find(ticket);
  if (it == batches_.end()) {
    return Status::NotFound("unknown or retired batch ticket " +
                            std::to_string(ticket));
  }
  out = it->second.progress;
  return Status::Ok();
}

bool Session::batch_done(BatchTicket ticket) const {
  const auto it = batches_.find(ticket);
  return it != batches_.end() && it->second.progress.done();
}

void Session::set_on_complete(CompletionFn fn) { on_complete_ = std::move(fn); }

Status Session::wait_batch(BatchTicket ticket, std::uint64_t max_cycles) {
  if (!batches_.contains(ticket)) {
    return Status::NotFound("unknown or retired batch ticket " +
                            std::to_string(ticket));
  }
  const std::uint64_t limit =
      max_cycles == 0 ? backend::kNoEvent : mem_->cycle() + max_cycles;
  pump();
  while (!batch_done(ticket)) {
    if (!batches_.contains(ticket)) {
      // Live at entry, gone now: the completion callback retired it
      // during a pump, which only happens once the batch is done.
      return Status::Ok();
    }
    const std::uint64_t now = mem_->cycle();
    if (now >= limit) {
      return Status::Stall("batch still in flight after " +
                           std::to_string(max_cycles) + " cycles");
    }
    std::uint64_t target = now + 1;
    if (mem_->fast_forward_allowed()) {
      const std::uint64_t next = mem_->next_event_cycle();
      if (next == backend::kNoEvent) {
        // Nothing in flight, nothing parked, batch incomplete: a response
        // was lost (e.g. drained by a recv outside this session).
        return Status::InvalidState(
            "backend quiescent with batch responses outstanding");
      }
      target = std::min(std::max(next, target), limit);
    }
    mem_->clock_until(target);
    pump();
  }
  return Status::Ok();
}

Status Session::recv_unmatched(std::uint32_t link, Response& out) {
  if (link >= links_) {
    return Status::InvalidArg("link " + std::to_string(link) +
                              " beyond the backend's " +
                              std::to_string(links_) + " host links");
  }
  if (unmatched_[link].empty()) {
    return Status::NoData();
  }
  out = unmatched_[link].front();
  unmatched_[link].pop_front();
  return Status::Ok();
}

}  // namespace hmcsim::sim
