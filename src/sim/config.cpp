#include "sim/config.hpp"

#include <sstream>

#include "common/bits.hpp"

namespace hmcsim::sim {

std::string_view to_string(Topology t) noexcept {
  switch (t) {
    case Topology::Chain:
      return "chain";
    case Topology::Star:
      return "star";
  }
  return "?";
}

Status Config::validate() const {
  if (num_devs < 1 || num_devs > 8) {
    return Status::InvalidArg("num_devs must be in [1,8] (3-bit CUB field)");
  }
  if (num_links != 4 && num_links != 8) {
    return Status::InvalidArg("num_links must be 4 or 8");
  }
  if (capacity_bytes != 2 * kGiB && capacity_bytes != 4 * kGiB &&
      capacity_bytes != 8 * kGiB) {
    return Status::InvalidArg("capacity must be 2, 4 or 8 GiB per cube");
  }
  if (num_quads != 4) {
    return Status::InvalidArg("Gen2 devices have 4 quads");
  }
  if (vaults_per_quad != 8) {
    return Status::InvalidArg("Gen2 devices have 8 vaults per quad");
  }
  if (banks_per_vault != 8 && banks_per_vault != 16 &&
      banks_per_vault != 32) {
    return Status::InvalidArg("banks_per_vault must be 8, 16 or 32");
  }
  if (block_size != 32 && block_size != 64 && block_size != 128 &&
      block_size != 256) {
    return Status::InvalidArg("block_size must be 32, 64, 128 or 256");
  }
  if (xbar_depth < 1 || xbar_depth > 1024) {
    return Status::InvalidArg("xbar_depth must be in [1,1024]");
  }
  if (vault_rqst_depth < 1 || vault_rqst_depth > 1024) {
    return Status::InvalidArg("vault_rqst_depth must be in [1,1024]");
  }
  if (vault_rsp_depth < 1 || vault_rsp_depth > 1024) {
    return Status::InvalidArg("vault_rsp_depth must be in [1,1024]");
  }
  if (xbar_rqst_bw_flits != 0 && xbar_rqst_bw_flits < 17) {
    return Status::InvalidArg(
        "xbar_rqst_bw_flits must be 0 (unbounded) or >= 17 (a maximal "
        "packet must be forwardable in one cycle)");
  }
  if (xbar_rsp_bw_flits != 0 && xbar_rsp_bw_flits < 17) {
    return Status::InvalidArg(
        "xbar_rsp_bw_flits must be 0 (unbounded) or >= 17 (a maximal "
        "packet must be forwardable in one cycle)");
  }
  if (model_bank_conflicts && bank_busy_cycles == 0) {
    return Status::InvalidArg(
        "bank_busy_cycles must be nonzero when modelling bank conflicts");
  }
  if (threads < 1 || threads > 64) {
    return Status::InvalidArg("threads must be in [1,64]");
  }
  if (link_flit_error_ppm > 1'000'000) {
    return Status::InvalidArg("link_flit_error_ppm exceeds 1e6");
  }
  if (link_flit_error_ppm != 0 && link_retry_latency == 0) {
    return Status::InvalidArg(
        "link_retry_latency must be nonzero when injecting link errors");
  }
  if (dram_fault_ppm > 1'000'000) {
    return Status::InvalidArg("dram_fault_ppm exceeds 1e6");
  }
  if (stuck_faults > 4096) {
    return Status::InvalidArg("stuck_faults must be in [0,4096]");
  }
  return Status::Ok();
}

std::string Config::describe() const {
  std::ostringstream oss;
  oss << num_links << "Link-" << (capacity_bytes / kGiB) << "GB"
      << " devs=" << num_devs << " vaults=" << total_vaults()
      << " banks/vault=" << banks_per_vault << " block=" << block_size
      << "B rqstq=" << vault_rqst_depth << " xbarq=" << xbar_depth;
  return oss.str();
}

Config Config::hmc_4link_4gb() {
  Config c;
  c.num_links = 4;
  c.capacity_bytes = 4 * kGiB;
  c.banks_per_vault = 16;
  return c;
}

Config Config::hmc_8link_8gb() {
  Config c;
  c.num_links = 8;
  c.capacity_bytes = 8 * kGiB;
  c.banks_per_vault = 32;
  return c;
}

Config Config::hmc_4link_2gb() {
  Config c;
  c.num_links = 4;
  c.capacity_bytes = 2 * kGiB;
  c.banks_per_vault = 8;
  return c;
}

Config Config::hmc_8link_4gb() {
  Config c;
  c.num_links = 8;
  c.capacity_bytes = 4 * kGiB;
  c.banks_per_vault = 16;
  return c;
}

}  // namespace hmcsim::sim
