// runner.hpp — the shared frontend run loop.
//
// Replaces the per-driver while-loops: the runner owns the
// setup -> tick -> finish sequence and a no-progress guard, and RunIo
// owns the observability plumbing the CLI used to wire by hand (trace
// sinks, Chrome journey export, periodic stats deltas, the stats JSON
// dump and the --stage-stats report). Frontends stay pure request
// sources; fast-forward policy is centralised in advance().
#pragma once

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>

#include "backend/backend.hpp"
#include "common/status.hpp"
#include "frontend/frontend.hpp"
#include "metrics/sampler.hpp"
#include "trace/chrome_sink.hpp"
#include "trace/trace.hpp"

namespace hmcsim::frontend {

/// What the frontend knows about its own future when it lets the backend
/// advance: the earliest absolute cycle it wants control back at
/// (kNoEvent = "nothing scheduled"), and whether a stalled send is
/// waiting to enter the device.
struct AdvanceHint {
  std::uint64_t next_wanted = backend::kNoEvent;
  bool host_pending = false;
};

/// Advance the backend by at least one cycle. When fast-forward is
/// allowed, nothing is pending host-side and no response is waiting
/// (recv() timestamps latency at recv time, so a ready response pins the
/// current cycle), dead time up to min(next_event_cycle, next_wanted) is
/// jumped in O(1); otherwise a single clock() is stepped. Observably
/// identical to clocking every cycle.
void advance(backend::MemoryBackend& mem, const AdvanceHint& hint);

/// Outcome of one runner invocation.
struct RunResult {
  std::uint64_t start_cycle = 0;
  std::uint64_t end_cycle = 0;
  std::uint64_t ticks = 0;  ///< Frontend tick() calls executed.
};

/// Drive `fe` over `mem` to completion: setup(), tick() until done(),
/// finish(). Fails with Internal if the frontend stops advancing the
/// backend (a stuck workload would otherwise spin forever).
[[nodiscard]] Status run(backend::MemoryBackend& mem, Frontend& fe,
                         RunResult& out);
[[nodiscard]] Status run(backend::MemoryBackend& mem, Frontend& fe);

// ---- observability wiring -------------------------------------------------

/// Everything a run may export, in one options block (the CLI's
/// --trace-file/--trace-chrome/--stage-stats/--stats-json/--stats-every,
/// plus the telemetry flags --sample-every/--sample-out/--sample-paths
/// and --prof).
struct IoOptions {
  std::string trace_file;        ///< Text event trace path; "" = off.
  std::uint32_t trace_level = 0; ///< Event mask; 0 = Level::All.
  std::string trace_chrome;      ///< Chrome trace-event JSON path; "" = off.
  bool stage_stats = false;      ///< Per-stage attribution report.
  std::string stats_json;        ///< Full registry JSON path; "" = off.
  std::uint64_t stats_every = 0; ///< Periodic delta print interval; 0 = off.
  std::uint64_t sample_every = 0;///< Sampler interval in cycles; 0 = off.
  std::string sample_out;        ///< Sampler export path (.csv ⇒ CSV,
                                 ///< anything else ⇒ JSON).
  std::string sample_paths;      ///< Comma-separated path prefixes to
                                 ///< sample; "" = all deterministic stats.
  std::size_t sample_capacity = 256;  ///< Sampler ring windows.
  bool prof = false;             ///< Enable sim.prof.* self-profiling.
};

/// Owns the sinks for one run. Attach before run() (so cycle-zero sends
/// from setup() are captured); keep alive until after the final export —
/// the ChromeSink's destructor writes the closing bracket of its JSON.
/// The destructor detaches everything it attached, so a RunIo may safely
/// die before the simulator it observed.
class RunIo {
 public:
  RunIo() = default;
  ~RunIo();
  RunIo(const RunIo&) = delete;
  RunIo& operator=(const RunIo&) = delete;

  /// Wire the requested sinks into the backend's simulator. No-op (Ok)
  /// for backends without one — there is nothing to observe.
  [[nodiscard]] Status attach(backend::MemoryBackend& mem,
                              const IoOptions& opts);

  /// End-of-run --stage-stats report: where the cycles went, and the
  /// latency tail percentiles. No-op unless stage_stats was set.
  void print_stage_report(backend::MemoryBackend& mem) const;

  /// Write the full registry JSON when stats_json was set. With
  /// stage_stats also set, the document gains a "latency_percentiles"
  /// member carrying the exact (sample-based) end-to-end p50/p95/p99 —
  /// the default document stays byte-identical.
  [[nodiscard]] Status write_stats_json(backend::MemoryBackend& mem) const;

  /// Write the sampled time-series when sample_out was set.
  [[nodiscard]] Status write_sample(backend::MemoryBackend& mem) const;

  /// The live sampler, or nullptr when sampling is off.
  [[nodiscard]] metrics::Sampler* sampler() noexcept {
    return sampler_.get();
  }

 private:
  IoOptions opts_;
  sim::Simulator* sim_ = nullptr;  ///< Set by attach; used for detach.
  std::unique_ptr<std::ofstream> text_stream_;
  std::unique_ptr<trace::TextSink> text_sink_;
  std::unique_ptr<std::ofstream> chrome_stream_;
  std::unique_ptr<trace::ChromeSink> chrome_sink_;
  trace::LatencySink latency_;  ///< --stage-stats percentile source.
  std::unique_ptr<metrics::Sampler> sampler_;
  std::uint64_t sampler_hook_ = 0;  ///< Periodic-hook handle (0 = none).
  bool latency_attached_ = false;
};

}  // namespace hmcsim::frontend
