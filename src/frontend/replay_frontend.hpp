// replay_frontend.hpp — trace replay as a Frontend.
//
// One tick = one iteration of the classic replay loop: issue every record
// due this cycle (a stalled head blocks the rest, host-queue style), let
// the backend advance (jumping issue-gap dead time when legal), then
// drain every link. Registered as "replay"; host::replay_trace() is a
// thin wrapper over this class so the legacy entry point and the CLI
// share one implementation — byte-identically.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "frontend/frontend.hpp"
#include "host/trace_replay.hpp"
#include "sim/sim_stats.hpp"

namespace hmcsim::frontend {

class ReplayFrontend final : public Frontend {
 public:
  struct Options {
    /// Trace file loaded during setup; unused when records are injected
    /// directly (the host::replay_trace wrapper path).
    std::string trace_path;
    /// Directory with hmc_lock/trylock/unlock.so; "" = use `provision`.
    std::string plugin_dir;
    /// Best-effort mutex-trio registration (CMC records in common traces
    /// need them); failures are ignored, matching the CLI's historical
    /// behaviour.
    CmcProvisionFn provision;
  };

  /// Wrapper path: replay caller-owned records, no CMC provisioning.
  explicit ReplayFrontend(const std::vector<host::TraceRecord>& records)
      : records_(&records) {}
  /// Factory path: load the trace and provision CMC ops in setup().
  explicit ReplayFrontend(Options opts) : opts_(std::move(opts)) {}

  /// FrontendRegistry factory ("replay", positional key "trace").
  static Status make(const FrontendOptions& opts,
                     std::unique_ptr<Frontend>& out);

  [[nodiscard]] std::string describe() const override {
    return "trace replay (" +
           (opts_.trace_path.empty() ? std::to_string(records().size()) +
                                           " records"
                                     : opts_.trace_path) +
           ")";
  }
  Status setup(backend::MemoryBackend& mem) override;
  Status tick(backend::MemoryBackend& mem, std::uint64_t cycle) override;
  [[nodiscard]] bool done() const override {
    return next_ >= records().size() && expected_ == 0;
  }
  Status finish(backend::MemoryBackend& mem) override;
  [[nodiscard]] std::string summary() const override { return summary_; }
  [[nodiscard]] bool succeeded() const override {
    return result_.error_responses == 0;
  }

  [[nodiscard]] const host::ReplayResult& result() const { return result_; }

 private:
  [[nodiscard]] const std::vector<host::TraceRecord>& records() const {
    return records_ != nullptr ? *records_ : loaded_;
  }
  [[nodiscard]] std::uint64_t deadline() const {
    return base_cycle_ + records().size() * 100 + 100000;
  }

  Options opts_;
  const std::vector<host::TraceRecord>* records_ = nullptr;
  std::vector<host::TraceRecord> loaded_;
  sim::Simulator* sim_ = nullptr;
  host::ReplayResult result_;
  sim::SimStats stats0_;
  std::uint64_t base_cycle_ = 0;
  std::uint64_t ff0_ = 0;
  std::size_t next_ = 0;        ///< First not-yet-issued record.
  std::uint64_t expected_ = 0;  ///< Non-posted requests awaiting responses.
  std::uint16_t tag_ = 0;
  std::uint64_t first_issue_ = 0;
  bool issued_any_ = false;
  std::string summary_;
};

}  // namespace hmcsim::frontend
