// rogue_frontend.hpp — the CMC fault-containment demo as a Frontend.
//
// Loads a rogue CMC library and drives it through every misbehaviour mode
// until the slot quarantines, while the well-behaved builtin hmc_satinc
// (CMC21) keeps executing on another slot. One tick = one transaction
// (send with bounded stall retries, clock to the response, receive).
// Fully deterministic — no RNG — so repeated runs and the
// --exhaustive-clock scheduler must produce byte-identical stats.
// Registered as "rogue".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "frontend/frontend.hpp"
#include "sim/simulator.hpp"

namespace hmcsim::frontend {

class RogueFrontend final : public Frontend {
 public:
  struct Options {
    std::string plugin_path;  ///< The rogue CMC shared object (CMC70).
    CmcProvisionFn provision;  ///< Must be able to register "hmc_satinc".
  };

  explicit RogueFrontend(Options opts) : opts_(std::move(opts)) {}

  /// FrontendRegistry factory ("rogue", positional key "plugin").
  static Status make(const FrontendOptions& opts,
                     std::unique_ptr<Frontend>& out);

  [[nodiscard]] std::string describe() const override {
    return "CMC fault containment (" + opts_.plugin_path + ")";
  }
  Status setup(backend::MemoryBackend& mem) override;
  Status tick(backend::MemoryBackend& mem, std::uint64_t cycle) override;
  [[nodiscard]] bool done() const override {
    return next_ >= schedule_.size();
  }
  Status finish(backend::MemoryBackend& mem) override;
  [[nodiscard]] std::string summary() const override { return summary_; }
  [[nodiscard]] bool succeeded() const override {
    return quarantined_ && satinc_failures_ == 0;
  }

 private:
  struct Step {
    spec::Rqst rqst = spec::Rqst::CMC70;
    std::uint64_t addr = 0;
    bool is_satinc = false;
  };

  Status transact(backend::MemoryBackend& mem, const Step& step,
                  bool& was_error);

  Options opts_;
  sim::Simulator* sim_ = nullptr;
  std::vector<Step> schedule_;
  std::size_t next_ = 0;
  std::uint16_t tag_ = 1;
  std::uint64_t oks_ = 0;
  std::uint64_t errors_ = 0;
  std::uint64_t satinc_failures_ = 0;
  bool quarantined_ = false;
  std::string summary_;
};

}  // namespace hmcsim::frontend
