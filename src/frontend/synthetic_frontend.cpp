#include "frontend/synthetic_frontend.hpp"

#include <cmath>
#include <cstdio>

#include "frontend/runner.hpp"
#include "sim/simulator.hpp"

namespace hmcsim::frontend {
namespace {

constexpr std::uint64_t kGranuleBytes = 64;

/// SplitMix64 finaliser as a stateless scrambler (rank -> granule, and the
/// pointer-chase successor function).
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

[[nodiscard]] const char* pattern_name(SyntheticFrontend::Pattern p) {
  switch (p) {
    case SyntheticFrontend::Pattern::Uniform:
      return "uniform";
    case SyntheticFrontend::Pattern::Zipfian:
      return "zipfian";
    case SyntheticFrontend::Pattern::Chase:
      return "chase";
    case SyntheticFrontend::Pattern::Bursty:
      return "bursty";
  }
  return "?";
}

}  // namespace

Status SyntheticFrontend::make(const FrontendOptions& opts,
                               std::unique_ptr<Frontend>& out) {
  Options o;
  const std::string pattern = opts.str("pattern", "uniform");
  if (pattern == "uniform") {
    o.pattern = Pattern::Uniform;
  } else if (pattern == "zipfian") {
    o.pattern = Pattern::Zipfian;
  } else if (pattern == "chase") {
    o.pattern = Pattern::Chase;
  } else if (pattern == "bursty") {
    o.pattern = Pattern::Bursty;
  } else {
    return Status::InvalidArg(
        "synthetic: unknown pattern '" + pattern +
        "' (expected uniform, zipfian, chase or bursty)");
  }
  if (Status s = opts.get_u64("count", o.count); !s.ok()) {
    return s;
  }
  if (Status s = opts.get_double("rate", o.rate); !s.ok()) {
    return s;
  }
  if (Status s = opts.get_double("theta", o.theta); !s.ok()) {
    return s;
  }
  if (Status s = opts.get_u64("footprint", o.footprint); !s.ok()) {
    return s;
  }
  if (Status s = opts.get_u64("base-addr", o.base_addr); !s.ok()) {
    return s;
  }
  if (Status s = opts.get_u32("write-pct", o.write_pct); !s.ok()) {
    return s;
  }
  if (Status s = opts.get_u32("cmc-pct", o.cmc_pct); !s.ok()) {
    return s;
  }
  if (Status s = opts.get_u32("burst-len", o.burst_len); !s.ok()) {
    return s;
  }
  if (Status s = opts.get_u32("chains", o.chains); !s.ok()) {
    return s;
  }
  if (Status s = opts.get_u32("window", o.window); !s.ok()) {
    return s;
  }
  o.provision = opts.cmc_provider();
  out = std::make_unique<SyntheticFrontend>(std::move(o));
  return Status::Ok();
}

std::string SyntheticFrontend::describe() const {
  return std::string("synthetic load (") + pattern_name(opts_.pattern) +
         ", " + std::to_string(opts_.count) + " requests)";
}

Status SyntheticFrontend::setup(backend::MemoryBackend& mem) {
  if (opts_.count == 0) {
    return Status::InvalidArg("synthetic: count must be nonzero");
  }
  if (opts_.footprint < kGranuleBytes ||
      opts_.footprint % kGranuleBytes != 0) {
    return Status::InvalidArg(
        "synthetic: footprint must be a nonzero multiple of 64 bytes");
  }
  if (opts_.base_addr % kGranuleBytes != 0) {
    return Status::InvalidArg("synthetic: base-addr must be 64-byte aligned");
  }
  if (opts_.rate <= 0.0) {
    return Status::InvalidArg("synthetic: rate must be positive");
  }
  if (opts_.write_pct + opts_.cmc_pct > 100) {
    return Status::InvalidArg(
        "synthetic: write-pct + cmc-pct must not exceed 100");
  }
  if (opts_.window == 0 || opts_.window > spec::kMaxTag) {
    return Status::InvalidArg("synthetic: window must be in [1, 2047]");
  }
  if (opts_.pattern == Pattern::Zipfian &&
      (opts_.theta <= 0.0 || opts_.theta >= 1.0)) {
    return Status::InvalidArg("synthetic: theta must be in (0, 1)");
  }
  if (opts_.pattern == Pattern::Chase &&
      (opts_.chains == 0 || opts_.chains > spec::kMaxTag ||
       opts_.chains > opts_.count)) {
    return Status::InvalidArg(
        "synthetic: chains must be in [1, min(count, 2047)]");
  }
  if (opts_.burst_len == 0) {
    return Status::InvalidArg("synthetic: burst-len must be nonzero");
  }
  sim_ = mem.simulator();
  if (opts_.cmc_pct > 0) {
    if (sim_ == nullptr) {
      return Status::Unsupported(
          "synthetic: a CMC mix requires a simulator-backed backend");
    }
    if (!opts_.provision) {
      return Status::InvalidState(
          "synthetic: cmc-pct > 0 needs a CMC provider for hmc_satinc");
    }
    if (Status s = opts_.provision(*sim_, "hmc_satinc"); !s.ok()) {
      return s;
    }
  }

  // Independent deterministic streams, all derived from the config seed.
  SplitMix64 seeder(mem.workload_seed());
  addr_rng_ = Xoshiro256(seeder.next());
  mix_rng_ = Xoshiro256(seeder.next());
  arrival_rng_ = Xoshiro256(seeder.next());

  if (opts_.pattern == Pattern::Zipfian) {
    // Gray et al. "Quickly generating billion-record synthetic databases":
    // closed-form Zipf sampler over `granules()` ranks.
    const double n = static_cast<double>(granules());
    zetan_ = 0.0;
    for (std::uint64_t i = 1; i <= granules(); ++i) {
      zetan_ += 1.0 / std::pow(static_cast<double>(i), opts_.theta);
    }
    const double zeta2 = 1.0 + std::pow(0.5, opts_.theta);
    zipf_alpha_ = 1.0 / (1.0 - opts_.theta);
    zipf_eta_ = (1.0 - std::pow(2.0 / n, 1.0 - opts_.theta)) /
                (1.0 - zeta2 / zetan_);
  }

  base_cycle_ = mem.cycle();
  if (opts_.pattern == Pattern::Chase) {
    // Closed loop: seed every chain with its first hop; successors are
    // generated as responses return.
    chain_addr_.assign(opts_.chains, 0);
    for (std::uint32_t c = 0; c < opts_.chains; ++c) {
      chain_addr_[c] = draw_addr();
      Pending p;
      p.rqst = spec::Rqst::RD64;
      p.addr = chain_addr_[c];
      p.tag = static_cast<std::uint16_t>(c);
      queue_.push_back(p);
      ++generated_;
    }
  }
  return Status::Ok();
}

std::uint64_t SyntheticFrontend::zipf_rank() {
  const double u = uniform01(addr_rng_);
  const double uz = u * zetan_;
  if (uz < 1.0) {
    return 0;
  }
  if (uz < 1.0 + std::pow(0.5, opts_.theta)) {
    return 1;
  }
  const double n = static_cast<double>(granules());
  const auto rank = static_cast<std::uint64_t>(
      n * std::pow(zipf_eta_ * u - zipf_eta_ + 1.0, zipf_alpha_));
  return rank >= granules() ? granules() - 1 : rank;
}

std::uint64_t SyntheticFrontend::draw_addr() {
  std::uint64_t granule = 0;
  switch (opts_.pattern) {
    case Pattern::Zipfian:
      // Scramble so the hottest ranks scatter across vaults instead of
      // clustering at the bottom of the footprint.
      granule = mix64(zipf_rank()) % granules();
      break;
    case Pattern::Uniform:
    case Pattern::Chase:
    case Pattern::Bursty:
      granule = addr_rng_.below(granules());
      break;
  }
  return opts_.base_addr + granule * kGranuleBytes;
}

SyntheticFrontend::Pending SyntheticFrontend::draw_request(
    std::uint64_t addr) {
  Pending p;
  p.addr = addr;
  const std::uint64_t draw = mix_rng_.below(100);
  if (draw < opts_.cmc_pct) {
    p.rqst = spec::Rqst::CMC21;  // hmc_satinc: an 8-byte saturating counter.
  } else if (draw < opts_.cmc_pct + opts_.write_pct) {
    p.rqst = spec::Rqst::WR64;
    p.payload_words = 8;
    for (std::uint8_t i = 0; i < 8; ++i) {
      p.payload[i] = mix64(addr + i);
    }
  } else {
    p.rqst = spec::Rqst::RD64;
  }
  return p;
}

void SyntheticFrontend::generate_due(std::uint64_t rel_cycle) {
  if (opts_.pattern == Pattern::Chase) {
    return;  // Closed loop: successors come from drain().
  }
  while (generated_ < opts_.count &&
         next_arrival_ <= static_cast<double>(rel_cycle)) {
    if (opts_.pattern == Pattern::Bursty) {
      // A Poisson burst process: exponential gaps between bursts whose
      // sizes are geometric with mean burst_len, so the long-run request
      // rate stays `rate`.
      const double p_stop = 1.0 / static_cast<double>(opts_.burst_len);
      std::uint64_t size = 1;
      while (uniform01(arrival_rng_) > p_stop) {
        ++size;
      }
      for (std::uint64_t i = 0; i < size && generated_ < opts_.count; ++i) {
        queue_.push_back(draw_request(draw_addr()));
        ++generated_;
      }
      const double burst_rate =
          opts_.rate / static_cast<double>(opts_.burst_len);
      const double u = uniform01(arrival_rng_);
      next_arrival_ += -std::log(1.0 - u) / burst_rate;
    } else {
      queue_.push_back(draw_request(draw_addr()));
      ++generated_;
      next_arrival_ += 1.0 / opts_.rate;
    }
  }
}

Status SyntheticFrontend::issue_ready(backend::MemoryBackend& mem) {
  while (!queue_.empty() && outstanding_ < opts_.window) {
    Pending& head = queue_.front();
    spec::RqstParams params;
    params.rqst = head.rqst;
    params.addr = head.addr;
    params.cub = opts_.cub;
    if (opts_.pattern == Pattern::Chase) {
      params.tag = head.tag;
    } else {
      // Rolling tags stay unique: at most `window` (< 2048) in flight.
      params.tag = tag_;
    }
    if (head.payload_words != 0) {
      params.payload = {head.payload.data(), head.payload_words};
    }
    const Status s = mem.send(params, link_rr_);
    if (s.stalled()) {
      ++send_retries_;  // Head-of-line: retry the same request next tick.
      break;
    }
    if (!s.ok()) {
      return s;
    }
    if (opts_.pattern != Pattern::Chase) {
      tag_ = static_cast<std::uint16_t>((tag_ + 1) & spec::kMaxTag);
    }
    link_rr_ = (link_rr_ + 1) % mem.num_links();
    switch (head.rqst) {
      case spec::Rqst::RD64:
        ++reads_;
        break;
      case spec::Rqst::WR64:
        ++writes_;
        break;
      default:
        ++cmcs_;
        break;
    }
    if (!issued_any_) {
      issued_any_ = true;
      first_issue_ = mem.cycle();
    }
    ++issued_;
    ++outstanding_;
    queue_.pop_front();
  }
  return Status::Ok();
}

void SyntheticFrontend::drain(backend::MemoryBackend& mem) {
  for (std::uint32_t link = 0; link < mem.num_links(); ++link) {
    sim::Response rsp;
    while (mem.recv(link, rsp).ok()) {
      ++responses_;
      --outstanding_;
      if (rsp.pkt.cmd() ==
          static_cast<std::uint8_t>(spec::ResponseType::RSP_ERROR)) {
        ++error_responses_;
      }
      if (opts_.pattern == Pattern::Chase && generated_ < opts_.count) {
        // The next hop depends on the previous one having completed —
        // the successor is a pure function of the chain's address, so
        // the walk is deterministic regardless of completion order.
        const auto chain = static_cast<std::uint32_t>(rsp.pkt.tag());
        chain_addr_[chain] = opts_.base_addr +
                             (mix64(chain_addr_[chain] + chain) %
                              granules()) * kGranuleBytes;
        Pending p;
        p.rqst = spec::Rqst::RD64;
        p.addr = chain_addr_[chain];
        p.tag = static_cast<std::uint16_t>(chain);
        queue_.push_back(p);
        ++generated_;
      }
    }
  }
}

Status SyntheticFrontend::tick(backend::MemoryBackend& mem,
                               std::uint64_t cycle) {
  const std::uint64_t rel_cycle = cycle - base_cycle_;
  if (rel_cycle > opts_.count * 1000 + 1'000'000) {
    return Status::Internal("synthetic load watchdog expired");
  }
  generate_due(rel_cycle);
  if (Status s = issue_ready(mem); !s.ok()) {
    return s;
  }
  AdvanceHint hint;
  hint.host_pending = !queue_.empty();
  if (queue_.empty() && generated_ < opts_.count &&
      opts_.pattern != Pattern::Chase) {
    hint.next_wanted =
        base_cycle_ + static_cast<std::uint64_t>(std::ceil(next_arrival_));
  }
  advance(mem, hint);
  drain(mem);
  return Status::Ok();
}

Status SyntheticFrontend::finish(backend::MemoryBackend& mem) {
  const std::uint64_t cycles =
      issued_any_ ? mem.cycle() - first_issue_ : 0;
  if (sim_ != nullptr) {
    metrics::StatRegistry& reg = sim_->metrics();
    reg.counter("host.synthetic.requests", "synthetic requests issued")
        .inc(issued_);
    reg.counter("host.synthetic.responses", "synthetic responses received")
        .inc(responses_);
    reg.counter("host.synthetic.reads", "synthetic RD64 requests")
        .inc(reads_);
    reg.counter("host.synthetic.writes", "synthetic WR64 requests")
        .inc(writes_);
    reg.counter("host.synthetic.cmc", "synthetic CMC requests").inc(cmcs_);
    reg.counter("host.synthetic.send_retries",
                "synthetic sends retried on link stall")
        .inc(send_retries_);
  }
  const double throughput =
      cycles == 0 ? 0.0
                  : static_cast<double>(issued_) / static_cast<double>(cycles);
  char line[200];
  std::snprintf(line, sizeof line,
                "synthetic(%s): %llu requests (%llu rd, %llu wr, %llu cmc), "
                "%llu responses, %llu errors, %llu cycles, %.3f req/cycle, "
                "%llu retries\n",
                pattern_name(opts_.pattern),
                static_cast<unsigned long long>(issued_),
                static_cast<unsigned long long>(reads_),
                static_cast<unsigned long long>(writes_),
                static_cast<unsigned long long>(cmcs_),
                static_cast<unsigned long long>(responses_),
                static_cast<unsigned long long>(error_responses_),
                static_cast<unsigned long long>(cycles), throughput,
                static_cast<unsigned long long>(send_retries_));
  summary_ = line;
  return Status::Ok();
}

}  // namespace hmcsim::frontend
