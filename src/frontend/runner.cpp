#include "frontend/runner.hpp"

#include <algorithm>
#include <array>
#include <cstdio>

#include "sim/stats_report.hpp"

namespace hmcsim::frontend {
namespace {

/// Ticks without backend progress before the runner declares the
/// frontend stuck. Every well-formed tick clocks at least once, so any
/// positive streak indicates a broken frontend, not a slow workload.
constexpr std::uint64_t kMaxStuckTicks = 4096;

}  // namespace

void advance(backend::MemoryBackend& mem, const AdvanceHint& hint) {
  bool rsp_waiting = false;
  for (std::uint32_t link = 0; link < mem.num_links(); ++link) {
    if (mem.rsp_ready(link)) {
      rsp_waiting = true;
      break;
    }
  }
  std::uint64_t target = backend::kNoEvent;
  if (mem.fast_forward_allowed() && !hint.host_pending && !rsp_waiting) {
    target = std::min(mem.next_event_cycle(), hint.next_wanted);
  }
  if (target != backend::kNoEvent && target > mem.cycle() + 1) {
    (void)mem.clock_until(target);
  } else {
    mem.clock();
  }
}

Status run(backend::MemoryBackend& mem, Frontend& fe, RunResult& out) {
  out = RunResult{};
  out.start_cycle = mem.cycle();
  if (Status s = fe.setup(mem); !s.ok()) {
    return s;
  }
  std::uint64_t stuck = 0;
  while (!fe.done()) {
    const std::uint64_t before = mem.cycle();
    if (Status s = fe.tick(mem, before); !s.ok()) {
      return s;
    }
    ++out.ticks;
    if (mem.cycle() == before) {
      if (++stuck >= kMaxStuckTicks) {
        return Status::Internal("frontend '" + fe.describe() +
                                "' made no progress");
      }
    } else {
      stuck = 0;
    }
  }
  out.end_cycle = mem.cycle();
  return fe.finish(mem);
}

Status run(backend::MemoryBackend& mem, Frontend& fe) {
  RunResult unused;
  return run(mem, fe, unused);
}

RunIo::~RunIo() {
  if (sim_ == nullptr) {
    return;
  }
  // Detach in reverse of attach so a RunIo can die before the simulator:
  // dangling sink pointers in the tracer were previously only safe
  // because every caller happened to destroy the two together.
  sim_->remove_periodic_hook(sampler_hook_);
  if (latency_attached_) {
    sim_->tracer().detach(&latency_);
  }
  if (chrome_sink_) {
    sim_->tracer().detach(chrome_sink_.get());
    sim_->journeys().detach(chrome_sink_.get());
  }
  if (text_sink_) {
    sim_->tracer().detach(text_sink_.get());
  }
}

Status RunIo::attach(backend::MemoryBackend& mem, const IoOptions& opts) {
  opts_ = opts;
  sim::Simulator* sim = mem.simulator();
  if (sim == nullptr) {
    return Status::Ok();
  }
  sim_ = sim;
  if (!opts_.trace_file.empty()) {
    text_stream_ = std::make_unique<std::ofstream>(opts_.trace_file);
    if (!text_stream_->is_open()) {
      return Status::InvalidArg("cannot open trace file " + opts_.trace_file);
    }
    text_sink_ = std::make_unique<trace::TextSink>(*text_stream_);
    sim->tracer().attach(text_sink_.get());
    sim->tracer().set_level(static_cast<trace::Level>(
        opts_.trace_level != 0
            ? opts_.trace_level
            : static_cast<std::uint32_t>(trace::Level::All)));
  }
  if (!opts_.trace_chrome.empty()) {
    chrome_stream_ = std::make_unique<std::ofstream>(opts_.trace_chrome);
    if (!chrome_stream_->is_open()) {
      return Status::InvalidArg("cannot open chrome trace file " +
                                opts_.trace_chrome);
    }
    chrome_sink_ = std::make_unique<trace::ChromeSink>(*chrome_stream_);
    sim->tracer().attach(chrome_sink_.get());
    sim->journeys().attach(chrome_sink_.get());
    sim->tracer().set_level(sim->tracer().level() | trace::Level::Journey |
                            trace::Level::Retry | trace::Level::Cmc);
  }
  if (opts_.stage_stats) {
    // Config::stage_stats already enabled the Journey level; the latency
    // sink additionally needs the per-retirement Latency events.
    sim->tracer().attach(&latency_);
    latency_attached_ = true;
    sim->tracer().set_level(sim->tracer().level() | trace::Level::Latency);
  }
  if (opts_.prof) {
    if (Status s = sim->enable_profiling(); !s.ok()) {
      return s;
    }
    if (chrome_sink_) {
      // Surface the wall-clock counter track next to the journeys.
      sim->tracer().set_level(sim->tracer().level() | trace::Level::Prof);
    }
  }
  if (opts_.sample_every != 0) {
    metrics::SamplerOptions sopts;
    sopts.every = opts_.sample_every;
    sopts.capacity = opts_.sample_capacity;
    for (std::size_t pos = 0; pos < opts_.sample_paths.size();) {
      std::size_t comma = opts_.sample_paths.find(',', pos);
      if (comma == std::string::npos) {
        comma = opts_.sample_paths.size();
      }
      if (comma > pos) {
        sopts.paths.push_back(opts_.sample_paths.substr(pos, comma - pos));
      }
      pos = comma + 1;
    }
    sampler_ = std::make_unique<metrics::Sampler>(sim->metrics(),
                                                  std::move(sopts));
    sim::register_default_samples(*sampler_, *sim);
    metrics::Sampler* sampler = sampler_.get();
    sampler_hook_ = sim->add_periodic_hook(
        opts_.sample_every,
        [sampler](sim::Simulator& s) { sampler->sample(s.cycle()); });
  }
  if (opts_.stats_every != 0) {
    auto last = std::make_shared<metrics::StatRegistry::Snapshot>(
        sim->metrics().snapshot_counters());
    sim->set_stats_interval(opts_.stats_every, [last](sim::Simulator& s) {
      auto now = s.metrics().snapshot_counters();
      const auto diff = metrics::StatRegistry::delta(*last, now);
      std::printf("[stats] cycle=%llu\n",
                  static_cast<unsigned long long>(s.cycle()));
      for (const auto& [path, d] : diff) {
        std::printf("  %s +%llu\n", path.c_str(),
                    static_cast<unsigned long long>(d));
      }
      *last = std::move(now);
    });
  }
  return Status::Ok();
}

void RunIo::print_stage_report(backend::MemoryBackend& mem) const {
  if (!opts_.stage_stats) {
    return;
  }
  sim::Simulator* simp = mem.simulator();
  if (simp == nullptr) {
    return;
  }
  sim::Simulator& sim = *simp;
  const metrics::Histogram& total = sim.latency_histogram();
  std::printf("stage attribution (%llu retired packets):\n",
              static_cast<unsigned long long>(total.count()));
  const double total_sum =
      total.sum() == 0 ? 1.0 : static_cast<double>(total.sum());
  for (std::size_t i = 0; i < trace::kStageCount; ++i) {
    const auto stage = static_cast<trace::Stage>(i);
    const std::string path =
        "host.stage." + std::string(trace::to_string(stage));
    const metrics::Histogram* h = sim.metrics().find_histogram(path);
    if (h == nullptr) {
      continue;
    }
    std::printf("  %-12s sum=%-8llu mean=%-7.2f max=%-6llu (%5.1f%%)\n",
                std::string(trace::to_string(stage)).c_str(),
                static_cast<unsigned long long>(h->sum()), h->mean(),
                static_cast<unsigned long long>(h->max()),
                100.0 * static_cast<double>(h->sum()) / total_sum);
  }
  constexpr std::array<double, 3> kQs{0.5, 0.95, 0.99};
  const auto ps = latency_.percentiles(kQs);
  std::printf("  end-to-end latency: p50=%llu p95=%llu p99=%llu\n",
              static_cast<unsigned long long>(ps[0]),
              static_cast<unsigned long long>(ps[1]),
              static_cast<unsigned long long>(ps[2]));
}

Status RunIo::write_stats_json(backend::MemoryBackend& mem) const {
  if (opts_.stats_json.empty()) {
    return Status::Ok();
  }
  sim::Simulator* sim = mem.simulator();
  if (sim == nullptr) {
    return Status::Unsupported(
        "--stats-json requires a simulator-backed backend");
  }
  std::ofstream out(opts_.stats_json);
  if (!out.is_open()) {
    return Status::InvalidArg("cannot open stats file " + opts_.stats_json);
  }
  std::string extra;
  if (opts_.stage_stats) {
    // Exact (sample-based) percentiles from the latency sink, as opposed
    // to the log2-bucket approximations inside "stats". Gated behind
    // --stage-stats so the default document stays byte-identical.
    constexpr std::array<double, 3> kQs{0.5, 0.95, 0.99};
    const auto ps = latency_.percentiles(kQs);
    extra = "\"latency_percentiles\": {\"p50\": " + std::to_string(ps[0]) +
            ", \"p95\": " + std::to_string(ps[1]) +
            ", \"p99\": " + std::to_string(ps[2]) + "}";
  }
  out << sim::format_stats_json(*sim, extra);
  return Status::Ok();
}

Status RunIo::write_sample(backend::MemoryBackend& mem) const {
  if (opts_.sample_out.empty()) {
    return Status::Ok();
  }
  if (!sampler_) {
    return Status::InvalidArg("--sample-out needs --sample-every");
  }
  sim::Simulator* sim = mem.simulator();
  if (sim == nullptr) {
    return Status::Unsupported(
        "--sample-out requires a simulator-backed backend");
  }
  std::ofstream out(opts_.sample_out);
  if (!out.is_open()) {
    return Status::InvalidArg("cannot open sample file " + opts_.sample_out);
  }
  const bool csv = opts_.sample_out.size() >= 4 &&
                   opts_.sample_out.ends_with(".csv");
  out << (csv ? sampler_->to_csv() : sampler_->to_json());
  return Status::Ok();
}

}  // namespace hmcsim::frontend
