// synthetic_frontend.hpp — an open-loop synthetic load generator.
//
// The proof piece for the frontend/backend seam: a request source that
// talks only to the MemoryBackend interface (no Simulator escape hatch
// needed unless the mix includes CMC ops). Four address/arrival patterns:
//
//   uniform  — fixed-rate arrivals, uniformly random granules
//   zipfian  — fixed-rate arrivals, Zipf(theta) hot-spot granules
//              (Gray et al. sampler with scrambled ranks)
//   chase    — closed-loop dependent chains: each chain issues its next
//              read only when the previous response returns (latency-bound)
//   bursty   — Poisson burst arrivals with geometric burst sizes
//
// over a configurable read/write/CMC mix. Open-loop: arrivals are
// generated on a clock the device cannot push back on; a backed-up
// device grows the host queue (head-of-line blocking on a stalled send),
// which is exactly the saturation behaviour the generator measures. All
// RNG streams derive from MemoryBackend::workload_seed()
// (Config::workload_seed), so a Config fully determines a run.
// Registered as "synthetic".
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "frontend/frontend.hpp"

namespace hmcsim::frontend {

class SyntheticFrontend final : public Frontend {
 public:
  enum class Pattern : std::uint8_t { Uniform, Zipfian, Chase, Bursty };

  struct Options {
    Pattern pattern = Pattern::Uniform;
    std::uint64_t count = 4096;       ///< Total requests to issue.
    double rate = 0.25;               ///< Mean arrivals per cycle (open-loop).
    double theta = 0.99;              ///< Zipf skew, in (0, 1).
    std::uint64_t footprint = 1 << 20;  ///< Working-set bytes (64 B granules).
    std::uint64_t base_addr = 0x100000; ///< Working-set base address.
    std::uint32_t write_pct = 20;     ///< % of requests that are WR64.
    std::uint32_t cmc_pct = 0;        ///< % that are CMC21 (hmc_satinc).
    std::uint32_t burst_len = 8;      ///< Mean burst size (bursty only).
    std::uint32_t chains = 8;         ///< Dependent chains (chase only).
    std::uint32_t window = 256;       ///< Max requests in flight.
    std::uint8_t cub = 0;             ///< Target cube.
    CmcProvisionFn provision;         ///< Needed only when cmc_pct > 0.
  };

  explicit SyntheticFrontend(Options opts) : opts_(std::move(opts)) {}

  /// FrontendRegistry factory ("synthetic", positional key "pattern").
  static Status make(const FrontendOptions& opts,
                     std::unique_ptr<Frontend>& out);

  [[nodiscard]] std::string describe() const override;
  Status setup(backend::MemoryBackend& mem) override;
  Status tick(backend::MemoryBackend& mem, std::uint64_t cycle) override;
  [[nodiscard]] bool done() const override {
    return generated_ >= opts_.count && queue_.empty() && outstanding_ == 0;
  }
  Status finish(backend::MemoryBackend& mem) override;
  [[nodiscard]] std::string summary() const override { return summary_; }
  [[nodiscard]] bool succeeded() const override {
    return error_responses_ == 0;
  }

 private:
  struct Pending {
    spec::Rqst rqst = spec::Rqst::RD64;
    std::uint64_t addr = 0;
    std::uint16_t tag = 0;  ///< Chain id (chase); assigned at issue otherwise.
    std::uint8_t payload_words = 0;
    std::array<std::uint64_t, 8> payload{};
  };

  [[nodiscard]] std::uint64_t granules() const {
    return opts_.footprint / 64;
  }
  [[nodiscard]] double uniform01(Xoshiro256& rng) {
    return static_cast<double>(rng() >> 11) * 0x1.0p-53;
  }
  [[nodiscard]] std::uint64_t zipf_rank();
  [[nodiscard]] std::uint64_t draw_addr();
  [[nodiscard]] Pending draw_request(std::uint64_t addr);
  void generate_due(std::uint64_t rel_cycle);
  [[nodiscard]] Status issue_ready(backend::MemoryBackend& mem);
  void drain(backend::MemoryBackend& mem);

  Options opts_;
  sim::Simulator* sim_ = nullptr;
  Xoshiro256 addr_rng_{0};
  Xoshiro256 mix_rng_{0};
  Xoshiro256 arrival_rng_{0};
  double zetan_ = 0.0;
  double zipf_eta_ = 0.0;
  double zipf_alpha_ = 0.0;
  std::deque<Pending> queue_;
  std::vector<std::uint64_t> chain_addr_;  ///< Current address per chain.
  std::uint64_t base_cycle_ = 0;
  double next_arrival_ = 0.0;  ///< Relative cycle of the next arrival/burst.
  std::uint64_t generated_ = 0;
  std::uint64_t issued_ = 0;
  std::uint64_t outstanding_ = 0;
  std::uint64_t responses_ = 0;
  std::uint64_t error_responses_ = 0;
  std::uint64_t send_retries_ = 0;
  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
  std::uint64_t cmcs_ = 0;
  std::uint64_t first_issue_ = 0;
  bool issued_any_ = false;
  std::uint16_t tag_ = 0;
  std::uint32_t link_rr_ = 0;
  std::string summary_;
};

}  // namespace hmcsim::frontend
