#include "frontend/spinlock_frontend.hpp"

#include <algorithm>
#include <array>
#include <cstdio>

namespace hmcsim::frontend {

Status SpinlockFrontend::make(const FrontendOptions& opts,
                              std::unique_ptr<Frontend>& out) {
  std::uint64_t cores = 0;
  if (Status s = opts.get_u64("cores", cores); !s.ok()) {
    return s;
  }
  if (cores == 0) {
    return Status::InvalidArg("spinlock: missing cores=<n>");
  }
  host::SpinlockOptions o;
  if (Status s = opts.get_u64("lock-addr", o.lock_addr); !s.ok()) {
    return s;
  }
  if (Status s = opts.get_u64("max-cycles", o.max_cycles); !s.ok()) {
    return s;
  }
  if (Status s = opts.get_u32("cache-size", o.cache.size_bytes); !s.ok()) {
    return s;
  }
  if (Status s = opts.get_u32("cache-line", o.cache.line_bytes); !s.ok()) {
    return s;
  }
  if (Status s = opts.get_u32("cache-ways", o.cache.ways); !s.ok()) {
    return s;
  }
  out = std::make_unique<SpinlockFrontend>(static_cast<std::uint32_t>(cores),
                                           o);
  return Status::Ok();
}

Status SpinlockFrontend::setup(backend::MemoryBackend& mem) {
  sim_ = mem.simulator();
  if (sim_ == nullptr) {
    return Status::Unsupported(
        "spinlock frontend requires a simulator-backed backend (coherent "
        "cache model and back-door lock initialisation)");
  }
  if (cores_ == 0) {
    return Status::InvalidArg("need at least one core");
  }
  if (opts_.lock_addr % 8 != 0) {
    return Status::InvalidArg("lock word must be 8-byte aligned");
  }
  if (Status s = opts_.cache.validate(); !s.ok()) {
    return s;
  }
  // Known initial state: lock free.
  const std::array<std::uint8_t, 8> zero{};
  if (Status s = sim_->mem_write(0, opts_.lock_addr, zero); !s.ok()) {
    return s;
  }

  result_ = host::SpinlockResult{};
  result_.cores = cores_;
  result_.per_core_cycles.assign(cores_, 0);
  stats0_ = sim::collect_stats(*sim_);
  setup_done_ = true;

  system_ = std::make_unique<host::CoherentSystem>(*sim_, cores_,
                                                   opts_.cache);
  phase_.assign(cores_, Phase::WantLock);
  start_cycle_ = mem.cycle();
  ff_start_ = sim_->fast_forwarded_cycles();
  done_count_ = 0;
  return Status::Ok();
}

void SpinlockFrontend::try_issue(std::uint32_t core) {
  if (phase_[core] == Phase::WantLock) {
    host::CoreRequest cas;
    cas.op = host::MemOp::Cas;
    cas.addr = opts_.lock_addr;
    cas.expect = 0;
    cas.operand = 1;
    if (system_->issue(core, cas).ok()) {
      ++result_.cas_attempts;
      phase_[core] = Phase::WaitCas;
    }
  } else if (phase_[core] == Phase::WantUnlock) {
    host::CoreRequest release;
    release.op = host::MemOp::Store;
    release.addr = opts_.lock_addr;
    release.operand = 0;
    if (system_->issue(core, release).ok()) {
      phase_[core] = Phase::WaitUnlock;
    }
  }
}

void SpinlockFrontend::on_complete(const host::CoreCompletion& c) {
  if (phase_[c.core] == Phase::WaitCas) {
    phase_[c.core] = c.cas_success ? Phase::WantUnlock : Phase::WantLock;
  } else if (phase_[c.core] == Phase::WaitUnlock) {
    phase_[c.core] = Phase::Done;
    result_.per_core_cycles[c.core] = sim_->cycle() - start_cycle_;
    ++done_count_;
  }
}

Status SpinlockFrontend::tick(backend::MemoryBackend& mem,
                              std::uint64_t cycle) {
  (void)mem;
  if (cycle - start_cycle_ > opts_.max_cycles) {
    return Status::Internal("spinlock watchdog expired");
  }
  for (std::uint32_t core = 0; core < cores_; ++core) {
    try_issue(core);
  }
  system_->step([this](const host::CoreCompletion& c) { on_complete(c); });
  return Status::Ok();
}

Status SpinlockFrontend::finish(backend::MemoryBackend& mem) {
  result_.total_cycles = mem.cycle() - start_cycle_;
  result_.line_bounces = system_->stats().ownership_writebacks;
  result_.fast_forwarded = sim_->fast_forwarded_cycles() - ff_start_;
  const auto stats1 = sim::collect_stats(*sim_);
  result_.hmc_rqst_flits = stats1.rqst_flits - stats0_.rqst_flits;
  result_.hmc_rsp_flits = stats1.rsp_flits - stats0_.rsp_flits;
  result_.min_cycles = *std::min_element(result_.per_core_cycles.begin(),
                                         result_.per_core_cycles.end());
  result_.max_cycles = *std::max_element(result_.per_core_cycles.begin(),
                                         result_.per_core_cycles.end());
  double sum = 0.0;
  for (const std::uint64_t c : result_.per_core_cycles) {
    sum += static_cast<double>(c);
  }
  result_.avg_cycles = sum / static_cast<double>(cores_);
  return Status::Ok();
}

std::string SpinlockFrontend::summary() const {
  char line[160];
  std::snprintf(line, sizeof line,
                "cores=%u MIN_CYCLE=%llu MAX_CYCLE=%llu AVG_CYCLE=%.2f "
                "cas=%llu bounces=%llu\n",
                cores_, static_cast<unsigned long long>(result_.min_cycles),
                static_cast<unsigned long long>(result_.max_cycles),
                result_.avg_cycles,
                static_cast<unsigned long long>(result_.cas_attempts),
                static_cast<unsigned long long>(result_.line_bounces));
  return line;
}

}  // namespace hmcsim::frontend
