#include "frontend/mutex_frontend.hpp"

#include <algorithm>
#include <cstdio>

namespace hmcsim::frontend {

Status MutexFrontend::make(const FrontendOptions& opts,
                           std::unique_ptr<Frontend>& out) {
  std::uint64_t threads = 0;
  if (Status s = opts.get_u64("threads", threads); !s.ok()) {
    return s;
  }
  if (threads == 0) {
    return Status::InvalidArg("mutex: missing threads=<n>");
  }
  Options o;
  // The CLI's historical default lock address (16-byte aligned, off the
  // zero page).
  o.mutex.lock_addr = 0x4000;
  if (Status s = opts.get_u64("lock-addr", o.mutex.lock_addr); !s.ok()) {
    return s;
  }
  if (Status s = opts.get_u64("max-cycles", o.mutex.max_cycles); !s.ok()) {
    return s;
  }
  if (Status s = opts.get_u32("locks", o.mutex.num_locks); !s.ok()) {
    return s;
  }
  if (Status s = opts.get_u64("lock-stride", o.mutex.lock_stride); !s.ok()) {
    return s;
  }
  if (Status s = opts.get_u32("backoff", o.mutex.trylock_backoff); !s.ok()) {
    return s;
  }
  o.plugin_dir = opts.str("plugins");
  o.provision = opts.cmc_provider();
  out = std::make_unique<MutexFrontend>(static_cast<std::uint32_t>(threads),
                                        std::move(o));
  return Status::Ok();
}

Status MutexFrontend::setup(backend::MemoryBackend& mem) {
  sim_ = mem.simulator();
  if (sim_ == nullptr) {
    return Status::Unsupported(
        "mutex frontend requires a simulator-backed backend (CMC "
        "operations and back-door lock initialisation)");
  }
  if (!opts_.plugin_dir.empty()) {
    for (const char* so :
         {"hmc_lock.so", "hmc_trylock.so", "hmc_unlock.so"}) {
      const std::string path = opts_.plugin_dir + "/" + so;
      if (Status s = sim_->load_cmc(path); !s.ok()) {
        return Status(s.code(), "load_cmc(" + path + "): " + s.message());
      }
    }
  } else if (opts_.provision) {
    for (const std::string_view op :
         {std::string_view("hmc_lock"), std::string_view("hmc_trylock"),
          std::string_view("hmc_unlock")}) {
      if (Status s = opts_.provision(*sim_, op); !s.ok()) {
        return s;
      }
    }
  }

  const host::MutexOptions& mopts = opts_.mutex;
  if (threads_ == 0) {
    return Status::InvalidArg("need at least one thread");
  }
  for (const spec::Rqst op :
       {spec::Rqst::CMC125, spec::Rqst::CMC126, spec::Rqst::CMC127}) {
    if (sim_->cmc_registry().lookup(op) == nullptr) {
      return Status::InvalidState(
          "mutex CMC operations not registered (need CMC125/126/127)");
    }
  }
  if (mopts.lock_addr % 16 != 0) {
    return Status::InvalidArg("lock structure must be 16-byte aligned");
  }
  if (mopts.num_locks == 0 || mopts.lock_stride % 16 != 0) {
    return Status::InvalidArg(
        "need at least one lock and a 16-byte aligned stride");
  }

  // Known initial state: every lock free, owner undefined (zeroed).
  const std::array<std::uint8_t, 16> zero{};
  for (std::uint32_t l = 0; l < mopts.num_locks; ++l) {
    if (Status s = sim_->mem_write(
            mopts.cub, mopts.lock_addr + mopts.lock_stride * l, zero);
        !s.ok()) {
      return s;
    }
  }

  result_ = host::MutexResult{};
  result_.threads = threads_;
  result_.per_thread_cycles.assign(threads_, 0);
  setup_done_ = true;

  ts_ = std::make_unique<host::ThreadSim>(*sim_, threads_);
  fsm_.assign(threads_, ThreadFsm{});
  payloads_.assign(threads_, {});
  start_cycle_ = mem.cycle();
  ff_start_ = sim_->fast_forwarded_cycles();
  done_count_ = 0;

  // Kick off: every thread dispatches its HMC_LOCK at the start cycle.
  for (std::uint32_t tid = 0; tid < threads_; ++tid) {
    if (Status s = send(tid, spec::Rqst::CMC125); !s.ok()) {
      return s;
    }
    fsm_[tid].phase = Phase::WaitLock;
  }
  return Status::Ok();
}

Status MutexFrontend::send(std::uint32_t tid, spec::Rqst op) {
  payloads_[tid] = {tid_token(tid), 0};
  spec::RqstParams params;
  params.rqst = op;
  params.addr = lock_addr_of(tid);
  params.cub = opts_.mutex.cub;
  params.payload = payloads_[tid];
  return ts_->issue(tid, params);
}

void MutexFrontend::on_rsp(const host::Completion& c) {
  const std::uint32_t tid = c.tid;
  ThreadFsm& t = fsm_[tid];
  const auto payload = c.rsp.pkt.payload();
  const std::uint64_t word0 = payload.empty() ? 0 : payload[0];

  const auto retry_phase = [&]() {
    if (opts_.mutex.trylock_backoff == 0) {
      return Phase::SendTrylock;
    }
    t.wake_cycle = sim_->cycle() + opts_.mutex.trylock_backoff;
    return Phase::Backoff;
  };

  switch (t.phase) {
    case Phase::WaitLock:
      if (word0 != 0) {
        t.phase = Phase::SendUnlock;
      } else {
        ++result_.lock_failures;
        t.phase = retry_phase();
      }
      break;
    case Phase::WaitTrylock:
      // hmc_trylock returns the owner's thread token; the thread owns
      // the lock iff that token is its own.
      if (word0 == tid_token(tid)) {
        t.phase = Phase::SendUnlock;
      } else {
        t.phase = retry_phase();
      }
      break;
    case Phase::WaitUnlock:
      t.phase = Phase::Done;
      t.done_cycle = sim_->cycle();
      result_.per_thread_cycles[tid] = t.done_cycle - start_cycle_;
      ++done_count_;
      break;
    default:
      break;  // Stray response (should not happen); ignore.
  }

  // Dispatch the next operation for the new phase.
  switch (t.phase) {
    case Phase::SendTrylock:
      ++result_.trylock_attempts;
      if (send(tid, spec::Rqst::CMC126).ok()) {
        t.phase = Phase::WaitTrylock;
      }
      break;
    case Phase::SendUnlock:
      if (send(tid, spec::Rqst::CMC127).ok()) {
        t.phase = Phase::WaitUnlock;
      }
      break;
    default:
      break;
  }
}

Status MutexFrontend::tick(backend::MemoryBackend& mem, std::uint64_t cycle) {
  (void)mem;
  if (cycle - start_cycle_ > opts_.mutex.max_cycles) {
    return Status::Internal("mutex contention watchdog expired after " +
                            std::to_string(opts_.mutex.max_cycles) +
                            " cycles");
  }
  // Re-arm threads whose backoff expired, in tid order.
  for (std::uint32_t tid = 0; tid < threads_; ++tid) {
    if (fsm_[tid].phase == Phase::Backoff &&
        fsm_[tid].wake_cycle <= cycle) {
      ++result_.trylock_attempts;
      if (send(tid, spec::Rqst::CMC126).ok()) {
        fsm_[tid].phase = Phase::WaitTrylock;
      }
    }
  }
  // When every live thread is backing off, nothing is in flight and the
  // device is fully quiescent: jump to the earliest wake-up. clock_until
  // honours Config::exhaustive_clock, so the exhaustive arm walks the
  // same span cycle by cycle — identical simulation, only slower.
  std::uint64_t min_wake = UINT64_MAX;
  bool all_backing_off = true;
  for (std::uint32_t tid = 0; tid < threads_; ++tid) {
    if (fsm_[tid].phase == Phase::Backoff) {
      min_wake = std::min(min_wake, fsm_[tid].wake_cycle);
    } else if (fsm_[tid].phase != Phase::Done) {
      all_backing_off = false;
      break;
    }
  }
  if (all_backing_off && min_wake != UINT64_MAX &&
      min_wake > sim_->cycle() + 1 &&
      sim_->next_event_cycle() == sim::Simulator::kNoEvent) {
    (void)sim_->clock_until(min_wake);
    return Status::Ok();
  }
  ts_->step([this](const host::Completion& c) { on_rsp(c); });
  return Status::Ok();
}

Status MutexFrontend::finish(backend::MemoryBackend& mem) {
  result_.total_cycles = mem.cycle() - start_cycle_;
  result_.send_retries = ts_->send_retries();
  result_.fast_forwarded = sim_->fast_forwarded_cycles() - ff_start_;
  metrics::StatRegistry& reg = sim_->metrics();
  reg.counter("host.mutex.runs", "mutex contention runs completed").inc();
  reg.counter("host.mutex.trylock_attempts",
              "HMC_TRYLOCK packets issued across runs")
      .inc(result_.trylock_attempts);
  reg.counter("host.mutex.lock_failures",
              "initial HMC_LOCK attempts that lost the race")
      .inc(result_.lock_failures);
  reg.counter("host.mutex.send_retries",
              "sends retried during mutex runs")
      .inc(result_.send_retries);
  result_.min_cycles = *std::min_element(result_.per_thread_cycles.begin(),
                                         result_.per_thread_cycles.end());
  result_.max_cycles = *std::max_element(result_.per_thread_cycles.begin(),
                                         result_.per_thread_cycles.end());
  double sum = 0.0;
  for (const std::uint64_t c : result_.per_thread_cycles) {
    sum += static_cast<double>(c);
  }
  result_.avg_cycles = sum / static_cast<double>(threads_);
  return Status::Ok();
}

std::string MutexFrontend::summary() const {
  char line[128];
  std::snprintf(line, sizeof line,
                "threads=%u MIN_CYCLE=%llu MAX_CYCLE=%llu AVG_CYCLE=%.2f\n",
                threads_,
                static_cast<unsigned long long>(result_.min_cycles),
                static_cast<unsigned long long>(result_.max_cycles),
                result_.avg_cycles);
  return line;
}

}  // namespace hmcsim::frontend
