// frontend.hpp — the request-source side of the frontend/backend seam.
//
// A Frontend is a tick-able workload: the runner (runner.hpp) calls
// setup() once, then tick() until done(), then finish(). Each tick must
// advance the backend by at least one cycle (directly or via the
// advance() helper), issue whatever requests are due, and drain whatever
// responses are ready — exactly one iteration of the hand-rolled driver
// loops this interface replaced.
//
// Frontends are created by name through FrontendRegistry from a string
// key/value option map, which is what the CLI's subcommands resolve to.
// Workload RNG streams must be derived from the backend's workload_seed()
// (Config::workload_seed), never from ad-hoc constructor seeds, so a
// Config fully determines a run. Stat and journey hooks: setup() may
// register host.* metrics and attach trace/journey observers through the
// simulator() escape hatch — see docs/FRONTENDS.md for the contract.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "backend/backend.hpp"
#include "common/status.hpp"

namespace hmcsim::frontend {

/// Callback the host environment (CLI, tests) installs to register one
/// named CMC operation ("hmc_lock", "hmc_satinc", ...) on a simulator.
/// Frontends request exactly the operations their workload needs; the
/// provider decides where the implementation comes from (statically
/// linked builtin, dlopen'd plugin). Keeps libhmcsim free of a link
/// dependency on the plugin library.
using CmcProvisionFn =
    std::function<Status(sim::Simulator& sim, std::string_view op)>;

/// A tick-able request source.
class Frontend {
 public:
  virtual ~Frontend() = default;
  Frontend() = default;
  Frontend(const Frontend&) = delete;
  Frontend& operator=(const Frontend&) = delete;

  /// One-line description for logs and list-frontends.
  [[nodiscard]] virtual std::string describe() const = 0;

  /// Validate options against the backend, initialise memory through the
  /// back door, register metrics, and issue any cycle-zero requests.
  [[nodiscard]] virtual Status setup(backend::MemoryBackend& mem) = 0;

  /// One driver-loop iteration at `cycle` (== mem.cycle()). Must advance
  /// the backend by at least one cycle.
  [[nodiscard]] virtual Status tick(backend::MemoryBackend& mem,
                                    std::uint64_t cycle) = 0;

  /// True when the workload has fully completed (no requests left to
  /// issue, none outstanding).
  [[nodiscard]] virtual bool done() const = 0;

  /// Called once after the last tick: compute results, flush metrics.
  [[nodiscard]] virtual Status finish(backend::MemoryBackend& mem) {
    (void)mem;
    return Status::Ok();
  }

  /// End-of-run report for the CLI; empty = nothing to print.
  [[nodiscard]] virtual std::string summary() const { return {}; }

  /// Workload-level verdict (drives the CLI exit code): true unless the
  /// run completed but the workload's own acceptance check failed.
  [[nodiscard]] virtual bool succeeded() const { return true; }
};

/// String key/value options a frontend factory is configured from (the
/// CLI's per-frontend flags). Reads mark keys as consumed so the registry
/// can reject typos: any key never consumed by the factory is an error.
class FrontendOptions {
 public:
  void set(std::string key, std::string value) {
    values_[std::move(key)] = {std::move(value), false};
  }

  [[nodiscard]] bool has(std::string_view key) const {
    return values_.find(std::string(key)) != values_.end();
  }

  /// String value of `key`, or `def` when absent.
  [[nodiscard]] std::string str(std::string_view key,
                                std::string_view def = {}) const;

  /// Parse `key` as an unsigned integer (base auto-detected: 0x.. hex).
  /// Leaves `out` untouched when the key is absent; InvalidArg on a
  /// malformed value.
  [[nodiscard]] Status get_u64(std::string_view key, std::uint64_t& out) const;
  [[nodiscard]] Status get_u32(std::string_view key, std::uint32_t& out) const;

  /// Parse `key` as a double. Same absence/error contract as get_u64.
  [[nodiscard]] Status get_double(std::string_view key, double& out) const;

  /// Keys that were set but never read by the factory.
  [[nodiscard]] std::vector<std::string> unconsumed() const;

  /// CMC provisioning callback (may be empty: frontends then rely on
  /// operations the caller registered up front, or on plugins=<dir>).
  void set_cmc_provider(CmcProvisionFn fn) { provider_ = std::move(fn); }
  [[nodiscard]] const CmcProvisionFn& cmc_provider() const {
    return provider_;
  }

 private:
  struct Value {
    std::string text;
    mutable bool consumed = false;
  };
  std::map<std::string, Value> values_;
  CmcProvisionFn provider_;
};

/// One registry row: the name is the lookup key (and CLI subcommand).
struct FrontendInfo {
  std::string name;
  std::string description;
  /// Option key the CLI maps its first positional argument to ("threads"
  /// for mutex, "trace" for replay, ...); empty = no positional.
  std::string positional_key;
};

/// Name-keyed factory registry for frontends.
class FrontendRegistry {
 public:
  using Factory = Status (*)(const FrontendOptions& opts,
                             std::unique_ptr<Frontend>& out);

  /// The process-wide registry, with the built-in frontends registered.
  [[nodiscard]] static FrontendRegistry& instance();

  /// Register a frontend. AlreadyExists when the name is taken.
  Status add(std::string_view name, std::string_view description,
             Factory factory, std::string_view positional_key = {});

  [[nodiscard]] bool contains(std::string_view name) const;

  /// Info for one registration; NotFound (with the known names) otherwise.
  [[nodiscard]] Status info(std::string_view name, FrontendInfo& out) const;

  /// Instantiate frontend `name` from `opts`. NotFound (naming the
  /// unknown frontend and the registered ones) when no registration
  /// exists; InvalidArg when `opts` contains keys the factory never read.
  [[nodiscard]] Status create(std::string_view name,
                              const FrontendOptions& opts,
                              std::unique_ptr<Frontend>& out) const;

  /// All registrations, sorted by name (stable across registration order).
  [[nodiscard]] std::vector<FrontendInfo> list() const;

 private:
  struct Entry {
    std::string description;
    std::string positional_key;
    Factory factory = nullptr;
  };
  std::vector<std::pair<std::string, Entry>> entries_;  // name-sorted
};

/// Self-registration helper for out-of-tree frontends whose object file
/// is guaranteed to be linked (the in-tree set registers explicitly in
/// frontend.cpp so static-library archive elision cannot drop it).
struct FrontendRegistrar {
  FrontendRegistrar(std::string_view name, std::string_view description,
                    FrontendRegistry::Factory factory,
                    std::string_view positional_key = {}) {
    (void)FrontendRegistry::instance().add(name, description, factory,
                                           positional_key);
  }
};

#define HMCSIM_REGISTER_FRONTEND(name, description, factory)         \
  static const ::hmcsim::frontend::FrontendRegistrar                 \
      hmcsim_frontend_registrar_##factory{(name), (description), (factory)}

}  // namespace hmcsim::frontend
