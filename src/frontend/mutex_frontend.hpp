// mutex_frontend.hpp — the paper's Algorithm 1 as a Frontend.
//
// The mutex contention experiment (HMC_LOCK, then TRYLOCK-spin, then
// HMC_UNLOCK per thread) restructured into the tick() shape: one tick is
// one iteration of the classic driver loop — watchdog, backoff re-arm,
// quiescent-backoff jump, then one ThreadSim step. Registered as "mutex";
// host::run_mutex_contention() is a thin wrapper over this class.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "frontend/frontend.hpp"
#include "host/mutex_driver.hpp"
#include "host/thread_sim.hpp"

namespace hmcsim::frontend {

class MutexFrontend final : public Frontend {
 public:
  struct Options {
    host::MutexOptions mutex;
    /// Directory with hmc_lock/trylock/unlock.so; "" = use `provision`.
    std::string plugin_dir;
    /// Registers the mutex trio in setup(); empty = the caller must have
    /// registered CMC125/126/127 already (the legacy wrapper contract).
    CmcProvisionFn provision;
  };

  MutexFrontend(std::uint32_t threads, Options opts)
      : threads_(threads), opts_(std::move(opts)) {}

  /// FrontendRegistry factory ("mutex", positional key "threads").
  static Status make(const FrontendOptions& opts,
                     std::unique_ptr<Frontend>& out);

  [[nodiscard]] std::string describe() const override {
    return "mutex contention (" + std::to_string(threads_) + " threads)";
  }
  Status setup(backend::MemoryBackend& mem) override;
  Status tick(backend::MemoryBackend& mem, std::uint64_t cycle) override;
  [[nodiscard]] bool done() const override {
    return setup_done_ && done_count_ >= threads_;
  }
  Status finish(backend::MemoryBackend& mem) override;
  [[nodiscard]] std::string summary() const override;

  [[nodiscard]] const host::MutexResult& result() const { return result_; }
  /// True once setup() has initialised result(); the wrapper only copies
  /// it back then, preserving the legacy "untouched on validation error"
  /// contract.
  [[nodiscard]] bool result_written() const { return setup_done_; }

 private:
  enum class Phase : std::uint8_t {
    SendLock,
    WaitLock,
    SendTrylock,
    WaitTrylock,
    Backoff,  ///< Waiting out trylock_backoff before the next TRYLOCK.
    SendUnlock,
    WaitUnlock,
    Done,
  };
  struct ThreadFsm {
    Phase phase = Phase::SendLock;
    std::uint64_t done_cycle = 0;
    std::uint64_t wake_cycle = 0;  ///< First cycle to retry (Backoff only).
  };

  [[nodiscard]] std::uint64_t lock_addr_of(std::uint32_t tid) const {
    return opts_.mutex.lock_addr +
           opts_.mutex.lock_stride * (tid % opts_.mutex.num_locks);
  }
  [[nodiscard]] static std::uint64_t tid_token(std::uint32_t tid) {
    return static_cast<std::uint64_t>(tid) + 1;  // 0 is "lock free".
  }
  Status send(std::uint32_t tid, spec::Rqst op);
  void on_rsp(const host::Completion& c);

  std::uint32_t threads_;
  Options opts_;
  sim::Simulator* sim_ = nullptr;
  std::unique_ptr<host::ThreadSim> ts_;
  std::vector<ThreadFsm> fsm_;
  /// Stalled sends are retried by ThreadSim with the same RqstParams,
  /// whose payload is a non-owning span — so each thread's payload lives
  /// here, not on a transient stack frame.
  std::vector<std::array<std::uint64_t, 2>> payloads_;
  host::MutexResult result_;
  std::uint64_t start_cycle_ = 0;
  std::uint64_t ff_start_ = 0;
  std::uint32_t done_count_ = 0;
  bool setup_done_ = false;
};

}  // namespace hmcsim::frontend
