#include "frontend/rogue_frontend.hpp"

#include <cstdio>

namespace hmcsim::frontend {

Status RogueFrontend::make(const FrontendOptions& opts,
                           std::unique_ptr<Frontend>& out) {
  Options o;
  o.plugin_path = opts.str("plugin");
  if (o.plugin_path.empty()) {
    return Status::InvalidArg("rogue: missing plugin=<path.so>");
  }
  o.provision = opts.cmc_provider();
  out = std::make_unique<RogueFrontend>(std::move(o));
  return Status::Ok();
}

Status RogueFrontend::setup(backend::MemoryBackend& mem) {
  sim_ = mem.simulator();
  if (sim_ == nullptr) {
    return Status::Unsupported(
        "rogue frontend requires a simulator-backed backend (CMC loading "
        "and quarantine metrics)");
  }
  if (Status s = sim_->load_cmc(opts_.plugin_path); !s.ok()) {
    return Status(s.code(),
                  "load_cmc(" + opts_.plugin_path + "): " + s.message());
  }
  if (!opts_.provision) {
    return Status::InvalidState(
        "rogue frontend needs a CMC provider for hmc_satinc");
  }
  if (Status s = opts_.provision(*sim_, "hmc_satinc"); !s.ok()) {
    return Status(s.code(), "register satinc: " + s.message());
  }

  constexpr std::uint64_t kRogueBase = 0x10000;
  constexpr std::uint64_t kSatincAddr = 0x20000;
  const std::uint32_t threshold = sim_->config().cmc_fail_threshold != 0
                                      ? sim_->config().cmc_fail_threshold
                                      : 8;
  // Phase 1 — every mode once (success at mode 0 resets the streak).
  for (std::uint64_t mode = 0; mode < 5; ++mode) {
    schedule_.push_back({spec::Rqst::CMC70, kRogueBase | (mode << 4), false});
    schedule_.push_back({spec::Rqst::CMC21, kSatincAddr, true});
  }
  // Phase 2 — failures only, until the quarantine threshold trips.
  for (std::uint32_t i = 0; i < 2 * threshold; ++i) {
    const std::uint64_t mode = 1 + (i % 4);
    schedule_.push_back({spec::Rqst::CMC70, kRogueBase | (mode << 4), false});
  }
  // Phase 3 — the quarantined slot answers errors without executing; the
  // well-behaved neighbour is unaffected.
  for (int i = 0; i < 4; ++i) {
    schedule_.push_back({spec::Rqst::CMC70, kRogueBase, false});
    schedule_.push_back({spec::Rqst::CMC21, kSatincAddr, true});
  }
  return Status::Ok();
}

Status RogueFrontend::transact(backend::MemoryBackend& mem, const Step& step,
                               bool& was_error) {
  spec::RqstParams params;
  params.rqst = step.rqst;
  params.addr = step.addr;
  params.tag = static_cast<std::uint16_t>(tag_++ & 0x7FF);
  for (int tries = 0; tries < 64; ++tries) {
    const Status s = mem.send(params, 0);
    if (s.ok()) {
      break;
    }
    if (!s.stalled()) {
      return Status(s.code(), "send: " + s.message());
    }
    mem.clock();
  }
  sim::Response rsp;
  for (int cycles = 0; cycles < 4096; ++cycles) {
    mem.clock();
    if (mem.rsp_ready(0)) {
      if (Status s = mem.recv(0, rsp); !s.ok()) {
        return s;
      }
      was_error = rsp.pkt.cmd() ==
                  static_cast<std::uint8_t>(spec::ResponseType::RSP_ERROR);
      return Status::Ok();
    }
  }
  return Status::Internal("no response after 4096 cycles");
}

Status RogueFrontend::tick(backend::MemoryBackend& mem, std::uint64_t cycle) {
  (void)cycle;
  const Step& step = schedule_[next_];
  bool was_error = false;
  if (Status s = transact(mem, step, was_error); !s.ok()) {
    return s;
  }
  if (step.is_satinc) {
    satinc_failures_ += was_error ? 1 : 0;
  } else {
    (was_error ? errors_ : oks_)++;
  }
  ++next_;
  return Status::Ok();
}

Status RogueFrontend::finish(backend::MemoryBackend& mem) {
  (void)mem.clock_until_idle(8192);
  const metrics::Gauge* quarantined =
      sim_->metrics().find_gauge("cmc.hmc_rogue.quarantined");
  quarantined_ = quarantined != nullptr && quarantined->value() == 1.0;
  char line[160];
  std::snprintf(line, sizeof line,
                "rogue: %llu ok, %llu error responses; satinc failures: "
                "%llu; quarantined: %s\n",
                static_cast<unsigned long long>(oks_),
                static_cast<unsigned long long>(errors_),
                static_cast<unsigned long long>(satinc_failures_),
                quarantined_ ? "yes" : "no");
  summary_ = line;
  return Status::Ok();
}

}  // namespace hmcsim::frontend
