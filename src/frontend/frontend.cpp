#include "frontend/frontend.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdlib>

namespace hmcsim::frontend {
namespace detail {

// Implemented in builtin_frontends.cpp; explicit registration keeps the
// archive members alive under static-library linking.
void register_builtin_frontends(FrontendRegistry& reg);

}  // namespace detail

std::string FrontendOptions::str(std::string_view key,
                                 std::string_view def) const {
  const auto it = values_.find(std::string(key));
  if (it == values_.end()) {
    return std::string(def);
  }
  it->second.consumed = true;
  return it->second.text;
}

Status FrontendOptions::get_u64(std::string_view key,
                                std::uint64_t& out) const {
  const auto it = values_.find(std::string(key));
  if (it == values_.end()) {
    return Status::Ok();
  }
  it->second.consumed = true;
  const std::string& text = it->second.text;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 0);
  if (end == text.c_str() || *end != '\0' || errno == ERANGE) {
    return Status::InvalidArg("option " + std::string(key) +
                              ": expected an unsigned integer, got '" + text +
                              "'");
  }
  out = v;
  return Status::Ok();
}

Status FrontendOptions::get_u32(std::string_view key,
                                std::uint32_t& out) const {
  std::uint64_t wide = out;
  if (Status s = get_u64(key, wide); !s.ok()) {
    return s;
  }
  if (wide > UINT32_MAX) {
    return Status::InvalidArg("option " + std::string(key) +
                              ": value out of 32-bit range");
  }
  out = static_cast<std::uint32_t>(wide);
  return Status::Ok();
}

Status FrontendOptions::get_double(std::string_view key, double& out) const {
  const auto it = values_.find(std::string(key));
  if (it == values_.end()) {
    return Status::Ok();
  }
  it->second.consumed = true;
  const std::string& text = it->second.text;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0' || errno == ERANGE) {
    return Status::InvalidArg("option " + std::string(key) +
                              ": expected a number, got '" + text + "'");
  }
  out = v;
  return Status::Ok();
}

std::vector<std::string> FrontendOptions::unconsumed() const {
  std::vector<std::string> out;
  for (const auto& [key, value] : values_) {
    if (!value.consumed) {
      out.push_back(key);
    }
  }
  return out;
}

FrontendRegistry& FrontendRegistry::instance() {
  static FrontendRegistry* reg = [] {
    auto* r = new FrontendRegistry;
    detail::register_builtin_frontends(*r);
    return r;
  }();
  return *reg;
}

Status FrontendRegistry::add(std::string_view name,
                             std::string_view description, Factory factory,
                             std::string_view positional_key) {
  if (name.empty() || factory == nullptr) {
    return Status::InvalidArg("frontend registration needs a name and factory");
  }
  const auto pos = std::lower_bound(
      entries_.begin(), entries_.end(), name,
      [](const auto& e, std::string_view n) { return e.first < n; });
  if (pos != entries_.end() && pos->first == name) {
    return Status::AlreadyExists("frontend '" + std::string(name) +
                                 "' is already registered");
  }
  entries_.insert(pos,
                  {std::string(name),
                   Entry{std::string(description),
                         std::string(positional_key), factory}});
  return Status::Ok();
}

bool FrontendRegistry::contains(std::string_view name) const {
  const auto pos = std::lower_bound(
      entries_.begin(), entries_.end(), name,
      [](const auto& e, std::string_view n) { return e.first < n; });
  return pos != entries_.end() && pos->first == name;
}

Status FrontendRegistry::info(std::string_view name, FrontendInfo& out) const {
  const auto pos = std::lower_bound(
      entries_.begin(), entries_.end(), name,
      [](const auto& e, std::string_view n) { return e.first < n; });
  if (pos == entries_.end() || pos->first != name) {
    std::string known;
    for (const auto& [n, e] : entries_) {
      known += known.empty() ? n : ", " + n;
    }
    return Status::NotFound("unknown frontend '" + std::string(name) +
                            "' (registered: " + known + ")");
  }
  out = {pos->first, pos->second.description, pos->second.positional_key};
  return Status::Ok();
}

Status FrontendRegistry::create(std::string_view name,
                                const FrontendOptions& opts,
                                std::unique_ptr<Frontend>& out) const {
  FrontendInfo unused;
  if (Status s = info(name, unused); !s.ok()) {
    return s;
  }
  const auto pos = std::lower_bound(
      entries_.begin(), entries_.end(), name,
      [](const auto& e, std::string_view n) { return e.first < n; });
  if (Status s = pos->second.factory(opts, out); !s.ok()) {
    return s;
  }
  for (const std::string& key : opts.unconsumed()) {
    // "plugins" is a CLI-global option every frontend may ignore.
    if (key == "plugins") {
      continue;
    }
    return Status::InvalidArg("unknown option '" + key + "' for frontend '" +
                              std::string(name) + "'");
  }
  return Status::Ok();
}

std::vector<FrontendInfo> FrontendRegistry::list() const {
  std::vector<FrontendInfo> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    out.push_back({name, entry.description, entry.positional_key});
  }
  return out;
}

}  // namespace hmcsim::frontend
