// builtin_frontends.cpp — the in-tree frontend registrations.
//
// Called from FrontendRegistry::instance() so the registrations survive
// static-library archive elision (a static registrar object in an
// otherwise-unreferenced archive member would be silently dropped).
#include "frontend/frontend.hpp"
#include "frontend/mutex_frontend.hpp"
#include "frontend/replay_frontend.hpp"
#include "frontend/rogue_frontend.hpp"
#include "frontend/spinlock_frontend.hpp"
#include "frontend/synthetic_frontend.hpp"

namespace hmcsim::frontend::detail {

void register_builtin_frontends(FrontendRegistry& reg) {
  (void)reg.add("replay", "replay a request trace file against the device",
                ReplayFrontend::make, "trace");
  (void)reg.add("mutex",
                "Algorithm 1 mutex contention (HMC_LOCK/TRYLOCK/UNLOCK)",
                MutexFrontend::make, "threads");
  (void)reg.add("rogue",
                "CMC fault-containment demo (rogue plugin vs hmc_satinc)",
                RogueFrontend::make, "plugin");
  (void)reg.add("spinlock",
                "CAS spinlock contention through the coherent cache model",
                SpinlockFrontend::make, "cores");
  (void)reg.add("synthetic",
                "open-loop synthetic load generator "
                "(uniform/zipfian/chase/bursty)",
                SyntheticFrontend::make, "pattern");
}

}  // namespace hmcsim::frontend::detail
