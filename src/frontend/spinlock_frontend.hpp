// spinlock_frontend.hpp — the coherent-cache CAS spinlock as a Frontend.
//
// The counterpart to MutexFrontend: the same Algorithm 1 structure, but
// each thread is a core of the CoherentSystem spinning with
// compare-and-swap on a cached lock word. One tick is one iteration of
// the classic driver loop — watchdog, issue pass over every core, one
// CoherentSystem step. Registered as "spinlock";
// host::run_spinlock_contention() is a thin wrapper over this class.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "frontend/frontend.hpp"
#include "host/cache/spinlock_driver.hpp"
#include "sim/sim_stats.hpp"

namespace hmcsim::frontend {

class SpinlockFrontend final : public Frontend {
 public:
  SpinlockFrontend(std::uint32_t cores, host::SpinlockOptions opts)
      : cores_(cores), opts_(opts) {}

  /// FrontendRegistry factory ("spinlock", positional key "cores").
  static Status make(const FrontendOptions& opts,
                     std::unique_ptr<Frontend>& out);

  [[nodiscard]] std::string describe() const override {
    return "CAS spinlock contention (" + std::to_string(cores_) + " cores)";
  }
  Status setup(backend::MemoryBackend& mem) override;
  Status tick(backend::MemoryBackend& mem, std::uint64_t cycle) override;
  [[nodiscard]] bool done() const override {
    return setup_done_ && done_count_ >= cores_;
  }
  Status finish(backend::MemoryBackend& mem) override;
  [[nodiscard]] std::string summary() const override;

  [[nodiscard]] const host::SpinlockResult& result() const { return result_; }
  /// True once setup() has initialised result(); the wrapper only copies
  /// it back then, preserving the legacy "untouched on validation error"
  /// contract.
  [[nodiscard]] bool result_written() const { return setup_done_; }

 private:
  enum class Phase : std::uint8_t {
    WantLock,    ///< Needs to issue a CAS.
    WaitCas,     ///< CAS in flight.
    WantUnlock,  ///< Needs to issue the releasing store.
    WaitUnlock,  ///< Store in flight.
    Done,
  };

  void try_issue(std::uint32_t core);
  void on_complete(const host::CoreCompletion& c);

  std::uint32_t cores_;
  host::SpinlockOptions opts_;
  sim::Simulator* sim_ = nullptr;
  std::unique_ptr<host::CoherentSystem> system_;
  std::vector<Phase> phase_;
  host::SpinlockResult result_;
  sim::SimStats stats0_;
  std::uint64_t start_cycle_ = 0;
  std::uint64_t ff_start_ = 0;
  std::uint32_t done_count_ = 0;
  bool setup_done_ = false;
};

}  // namespace hmcsim::frontend
