#include "frontend/replay_frontend.hpp"

#include <algorithm>
#include <cstdio>

#include "frontend/runner.hpp"
#include "sim/stats_report.hpp"

namespace hmcsim::frontend {
namespace {

/// Mutex-trio operation names, in registration order.
constexpr std::string_view kMutexOps[] = {"hmc_lock", "hmc_trylock",
                                          "hmc_unlock"};

}  // namespace

Status ReplayFrontend::make(const FrontendOptions& opts,
                            std::unique_ptr<Frontend>& out) {
  Options o;
  o.trace_path = opts.str("trace");
  if (o.trace_path.empty()) {
    return Status::InvalidArg("replay: missing trace=<file>");
  }
  o.plugin_dir = opts.str("plugins");
  o.provision = opts.cmc_provider();
  out = std::make_unique<ReplayFrontend>(std::move(o));
  return Status::Ok();
}

Status ReplayFrontend::setup(backend::MemoryBackend& mem) {
  sim_ = mem.simulator();
  if (sim_ == nullptr) {
    return Status::Unsupported(
        "replay frontend requires a simulator-backed backend (CMC posted "
        "lookup and FLIT accounting)");
  }
  if (records_ == nullptr) {
    if (Status s = host::load_trace(opts_.trace_path, loaded_); !s.ok()) {
      return s;
    }
  }
  // CMC records in common traces need the mutex trio; register it
  // best-effort so such traces replay out of the box (failures — e.g. ops
  // already registered by the caller — are deliberately ignored).
  if (!opts_.plugin_dir.empty()) {
    for (const char* so :
         {"hmc_lock.so", "hmc_trylock.so", "hmc_unlock.so"}) {
      (void)sim_->load_cmc(opts_.plugin_dir + "/" + so);
    }
  } else if (opts_.provision) {
    for (const std::string_view op : kMutexOps) {
      (void)opts_.provision(*sim_, op);
    }
  }
  result_ = host::ReplayResult{};
  stats0_ = sim::collect_stats(*sim_);
  base_cycle_ = mem.cycle();
  ff0_ = sim_->fast_forwarded_cycles();
  return Status::Ok();
}

Status ReplayFrontend::tick(backend::MemoryBackend& mem,
                            std::uint64_t cycle) {
  const std::vector<host::TraceRecord>& recs = records();
  const std::uint64_t rel_cycle = cycle - base_cycle_;

  auto is_posted = [this](spec::Rqst rqst) {
    if (spec::is_cmc(rqst)) {
      const cmc::CmcOp* op = sim_->cmc_registry().lookup(rqst);
      return op == nullptr ? false : op->posted();
    }
    return spec::command_info(rqst).rsp_flits == 0;
  };

  // Issue every record due this cycle; a stalled head blocks the rest
  // (host queue semantics).
  while (next_ < recs.size() && recs[next_].issue_cycle <= rel_cycle) {
    const host::TraceRecord& rec = recs[next_];
    spec::RqstParams params;
    params.rqst = rec.rqst;
    params.addr = rec.addr;
    params.cub = rec.cub;
    params.tag = tag_;
    params.payload = rec.payload;
    const Status s = mem.send(params, rec.link);
    if (s.stalled()) {
      ++result_.send_retries;
      break;
    }
    if (!s.ok()) {
      return Status(s.code(), "replay record " + std::to_string(next_) +
                                  ": " + s.message());
    }
    tag_ = static_cast<std::uint16_t>((tag_ + 1) & spec::kMaxTag);
    if (!issued_any_) {
      issued_any_ = true;
      first_issue_ = mem.cycle();
    }
    ++result_.requests_issued;
    if (!is_posted(rec.rqst)) {
      ++expected_;
    }
    ++next_;
  }

  // Fast-forward dead time between trace issue cycles, capped at the
  // watchdog deadline so a quiet-but-hung replay still trips it.
  AdvanceHint hint;
  if (next_ < recs.size()) {
    hint.next_wanted = base_cycle_ + recs[next_].issue_cycle;
  }
  hint.next_wanted = std::min(hint.next_wanted, deadline() + 1);
  advance(mem, hint);

  for (std::uint32_t link = 0; link < mem.num_links(); ++link) {
    sim::Response rsp;
    while (mem.recv(link, rsp).ok()) {
      ++result_.responses_received;
      if (rsp.pkt.cmd() ==
          static_cast<std::uint8_t>(spec::ResponseType::RSP_ERROR)) {
        ++result_.error_responses;
      }
      --expected_;
    }
  }

  // Watchdog: a replay that makes no forward progress for a long time
  // indicates an unregistered CMC or a deadlocked configuration.
  if (mem.cycle() - base_cycle_ > recs.size() * 100 + 100000) {
    return Status::Internal("trace replay watchdog expired");
  }
  return Status::Ok();
}

Status ReplayFrontend::finish(backend::MemoryBackend& mem) {
  result_.cycles = issued_any_ ? mem.cycle() - first_issue_ : 0;
  const auto stats1 = sim::collect_stats(*sim_);
  result_.rqst_flits = stats1.rqst_flits - stats0_.rqst_flits;
  result_.rsp_flits = stats1.rsp_flits - stats0_.rsp_flits;
  result_.fast_forwarded = sim_->fast_forwarded_cycles() - ff0_;
  char line[160];
  std::snprintf(line, sizeof line,
                "replayed %llu requests: %llu responses, %llu errors, "
                "%llu cycles, %llu retries\n",
                static_cast<unsigned long long>(result_.requests_issued),
                static_cast<unsigned long long>(result_.responses_received),
                static_cast<unsigned long long>(result_.error_responses),
                static_cast<unsigned long long>(result_.cycles),
                static_cast<unsigned long long>(result_.send_retries));
  summary_ = std::string(line) + sim::format_stats(*sim_);
  return Status::Ok();
}

}  // namespace hmcsim::frontend
