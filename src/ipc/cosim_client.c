/* cosim_client.c — C implementation of the co-simulation client.
 *
 * Pure C11 + POSIX: client processes embedding this need neither the
 * C++ runtime nor the simulator library, only this file and the two
 * headers. See cosim_proto.h for the protocol.
 */
#include "capi/hmc_cosim_client.h"

#include <errno.h>
#include <fcntl.h>
#include <sched.h>
#include <stdlib.h>
#include <string.h>
#include <sys/mman.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <time.h>
#include <unistd.h>

#include "ipc/cosim_proto.h"

struct hmc_cosim_t {
  int fd;
  uint32_t client_id;
  uint32_t num_links;
  uint32_t ring_slots;
  uint32_t num_clients;
  uint64_t quantum;
  uint64_t cycle;
  void *shm_base;
  size_t shm_bytes;
  hmc_cosim_ring_t *c2s; /* this client produces */
  hmc_cosim_ring_t *s2c; /* this client consumes */
  /* FIFO of responses popped from s2c but not yet given to the caller. */
  hmc_cosim_msg_t *rsp_q;
  size_t rsp_cap;
  size_t rsp_head;
  size_t rsp_len;
};

static int read_full(int fd, void *buf, size_t len) {
  char *p = (char *)buf;
  while (len > 0) {
    const ssize_t n = read(fd, p, len);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) {
        continue;
      }
      return 0;
    }
    p += n;
    len -= (size_t)n;
  }
  return 1;
}

static int write_full(int fd, const void *buf, size_t len) {
  const char *p = (const char *)buf;
  while (len > 0) {
    const ssize_t n = write(fd, p, len);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return 0;
    }
    p += n;
    len -= (size_t)n;
  }
  return 1;
}

static void sleep_ms(unsigned ms) {
  struct timespec ts;
  ts.tv_sec = ms / 1000u;
  ts.tv_nsec = (long)(ms % 1000u) * 1000000L;
  /* A signal may cut the sleep short: resume with the remainder so the
   * backoff schedule keeps its timing under EINTR storms. */
  while (nanosleep(&ts, &ts) != 0 && errno == EINTR) {
  }
}

hmc_cosim_t *hmc_cosim_connect(const char *socket_path, uint32_t slot,
                               uint32_t timeout_ms) {
  if (socket_path == NULL) {
    return NULL;
  }
  struct sockaddr_un addr;
  memset(&addr, 0, sizeof(addr));
  if (strlen(socket_path) >= sizeof(addr.sun_path)) {
    return NULL;
  }
  addr.sun_family = AF_UNIX;
  strcpy(addr.sun_path, socket_path);

  /* The server may not have bound yet: retry until the deadline with
   * exponential backoff (1, 2, 4, ... ms, capped at 100 ms) so a fast
   * server start is caught quickly without hammering a slow one. */
  int fd = -1;
  uint32_t waited = 0;
  uint32_t backoff = 1;
  for (;;) {
    fd = socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      return NULL;
    }
    int rc;
    do {
      rc = connect(fd, (const struct sockaddr *)&addr, sizeof(addr));
    } while (rc != 0 && errno == EINTR);
    if (rc == 0) {
      break;
    }
    close(fd);
    fd = -1;
    if (waited >= timeout_ms) {
      return NULL;
    }
    uint32_t nap = backoff;
    if (nap > timeout_ms - waited) {
      nap = timeout_ms - waited; /* Never sleep past the deadline. */
    }
    sleep_ms(nap);
    waited += nap;
    if (backoff < 100u) {
      backoff *= 2;
      if (backoff > 100u) {
        backoff = 100u;
      }
    }
  }

  hmc_cosim_hello_t hello;
  memset(&hello, 0, sizeof(hello));
  hello.magic = HMC_COSIM_MAGIC;
  hello.version = HMC_COSIM_VERSION;
  hello.slot = slot;
  hmc_cosim_welcome_t welcome;
  if (!write_full(fd, &hello, sizeof(hello)) ||
      !read_full(fd, &welcome, sizeof(welcome)) ||
      welcome.magic != HMC_COSIM_MAGIC ||
      welcome.version != HMC_COSIM_VERSION || welcome.ring_slots < 2) {
    close(fd);
    return NULL;
  }

  const int shm_fd = shm_open(welcome.shm_name, O_RDWR, 0);
  if (shm_fd < 0) {
    close(fd);
    return NULL;
  }
  const size_t bytes =
      hmc_cosim_shm_bytes(welcome.ring_slots, welcome.num_clients);
  void *base = mmap(NULL, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, shm_fd,
                    0);
  close(shm_fd);
  if (base == MAP_FAILED) {
    close(fd);
    return NULL;
  }

  hmc_cosim_t *c = (hmc_cosim_t *)calloc(1, sizeof(*c));
  if (c == NULL) {
    munmap(base, bytes);
    close(fd);
    return NULL;
  }
  c->fd = fd;
  c->client_id = welcome.client_id;
  c->num_links = welcome.num_links;
  c->ring_slots = welcome.ring_slots;
  c->num_clients = welcome.num_clients;
  c->quantum = welcome.quantum;
  c->cycle = 0;
  c->shm_base = base;
  c->shm_bytes = bytes;
  c->c2s = hmc_cosim_shm_c2s(base, welcome.ring_slots, welcome.client_id);
  c->s2c = hmc_cosim_shm_s2c(base, welcome.ring_slots, welcome.client_id);
  return c;
}

void hmc_cosim_disconnect(hmc_cosim_t *client) {
  if (client == NULL) {
    return;
  }
  hmc_cosim_msg_t bye;
  memset(&bye, 0, sizeof(bye));
  bye.type = HMC_COSIM_MSG_BYE;
  /* Best effort: if the ring is full the closed socket says goodbye. */
  (void)hmc_cosim_ring_push(client->c2s, client->ring_slots, &bye);
  close(client->fd);
  munmap(client->shm_base, client->shm_bytes);
  free(client->rsp_q);
  free(client);
}

uint32_t hmc_cosim_client_id(const hmc_cosim_t *client) {
  return client == NULL ? 0 : client->client_id;
}

uint32_t hmc_cosim_num_links(const hmc_cosim_t *client) {
  return client == NULL ? 0 : client->num_links;
}

uint64_t hmc_cosim_quantum(const hmc_cosim_t *client) {
  return client == NULL ? 0 : client->quantum;
}

uint64_t hmc_cosim_cycle(const hmc_cosim_t *client) {
  return client == NULL ? 0 : client->cycle;
}

/* Push with bounded patience: the server drains eagerly, so a full ring
 * only persists if the server died. */
static int push_c2s(hmc_cosim_t *c, const hmc_cosim_msg_t *msg) {
  unsigned spins = 0;
  while (hmc_cosim_ring_push(c->c2s, c->ring_slots, msg) == 0) {
    if (++spins > 100000u) {
      return HMC_COSIM_STALL;
    }
    sched_yield();
  }
  return HMC_COSIM_OK;
}

static void buffer_rsp(hmc_cosim_t *c, const hmc_cosim_msg_t *msg) {
  if (c->rsp_head + c->rsp_len == c->rsp_cap) {
    /* Compact or grow. */
    if (c->rsp_head > 0) {
      memmove(c->rsp_q, c->rsp_q + c->rsp_head,
              c->rsp_len * sizeof(*c->rsp_q));
      c->rsp_head = 0;
    }
    if (c->rsp_len == c->rsp_cap) {
      const size_t cap = c->rsp_cap == 0 ? 64 : c->rsp_cap * 2;
      hmc_cosim_msg_t *q =
          (hmc_cosim_msg_t *)realloc(c->rsp_q, cap * sizeof(*q));
      if (q == NULL) {
        return; /* OOM: drop the response. */
      }
      c->rsp_q = q;
      c->rsp_cap = cap;
    }
  }
  c->rsp_q[c->rsp_head + c->rsp_len] = *msg;
  c->rsp_len += 1;
}

int hmc_cosim_send(hmc_cosim_t *client, uint32_t link, uint32_t rqst,
                   uint8_t cub, uint64_t addr, uint16_t tag,
                   const uint64_t *payload, uint32_t payload_words) {
  if (client == NULL || link >= client->num_links ||
      payload_words > HMC_COSIM_PAYLOAD_WORDS ||
      (payload == NULL && payload_words > 0)) {
    return HMC_COSIM_ERROR;
  }
  hmc_cosim_msg_t msg;
  memset(&msg, 0, sizeof(msg));
  msg.type = HMC_COSIM_MSG_SEND;
  msg.link = link;
  msg.rqst = rqst;
  msg.cub = cub;
  msg.addr = addr;
  msg.tag = tag;
  msg.payload_words = payload_words;
  if (payload_words > 0) {
    memcpy(msg.payload, payload, (size_t)payload_words * sizeof(uint64_t));
  }
  return push_c2s(client, &msg);
}

int hmc_cosim_clock(hmc_cosim_t *client, uint64_t cycles) {
  if (client == NULL || cycles == 0) {
    return HMC_COSIM_ERROR;
  }
  hmc_cosim_msg_t msg;
  memset(&msg, 0, sizeof(msg));
  msg.type = HMC_COSIM_MSG_CLOCK;
  msg.arg = cycles;
  const int rc = push_c2s(client, &msg);
  if (rc != HMC_COSIM_OK) {
    return rc;
  }
  /* Wait for the barrier ack, banking responses along the way. */
  for (;;) {
    if (hmc_cosim_ring_pop(client->s2c, client->ring_slots, &msg) == 0) {
      sched_yield();
      continue;
    }
    if (msg.type == HMC_COSIM_MSG_RSP) {
      buffer_rsp(client, &msg);
    } else if (msg.type == HMC_COSIM_MSG_CLOCK_ACK) {
      client->cycle = msg.arg;
      return HMC_COSIM_OK;
    }
  }
}

int hmc_cosim_recv(hmc_cosim_t *client, uint8_t *rsp_cmd, uint16_t *tag,
                   uint64_t *payload, uint32_t *payload_words,
                   uint64_t *latency) {
  if (client == NULL) {
    return HMC_COSIM_ERROR;
  }
  /* Opportunistically drain responses the server pushed since the last
   * barrier (they only appear during barriers, but cost nothing). */
  hmc_cosim_msg_t pulled;
  while (hmc_cosim_ring_pop(client->s2c, client->ring_slots, &pulled) != 0) {
    if (pulled.type == HMC_COSIM_MSG_RSP) {
      buffer_rsp(client, &pulled);
    }
  }
  if (client->rsp_len == 0) {
    return HMC_COSIM_NO_DATA;
  }
  const hmc_cosim_msg_t *msg = &client->rsp_q[client->rsp_head];
  client->rsp_head += 1;
  client->rsp_len -= 1;
  if (rsp_cmd != NULL) {
    *rsp_cmd = (uint8_t)msg->rqst;
  }
  if (tag != NULL) {
    *tag = msg->tag;
  }
  int rc = HMC_COSIM_OK;
  if (payload != NULL) {
    uint32_t capacity = 32;
    if (payload_words != NULL && *payload_words > 0) {
      capacity = *payload_words;
    }
    uint32_t n = msg->payload_words;
    if (n > capacity) {
      n = capacity;
      rc = HMC_COSIM_ETRUNC;
    }
    memcpy(payload, msg->payload, (size_t)n * sizeof(uint64_t));
  }
  if (payload_words != NULL) {
    *payload_words = msg->payload_words;
  }
  if (latency != NULL) {
    *latency = msg->arg;
  }
  return rc;
}
