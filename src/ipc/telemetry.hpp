// telemetry.hpp — runtime exposition endpoint for a live server session.
//
// A TelemetrySocket is a Unix-domain listener served synchronously from
// whatever loop owns the simulation (the cosim server polls it at its
// quantum barriers). A scrape is one short-lived connection:
//
//   client connects, writes one request line ("metrics\n" for Prometheus
//   text exposition, "json\n" for the compact snapshot), the server
//   writes the full payload and closes.
//
// Serving from the barrier loop is deliberate: the renderer reads the
// stat registry only at points where no worker is mutating it, so no
// locking is added to the hot simulation paths and the scraped values
// are always a consistent quantum-boundary snapshot. The cost is that a
// scrape can only be answered between quanta — fine for a progress view.
#pragma once

#include <functional>
#include <string>
#include <string_view>

#include "common/status.hpp"

namespace hmcsim::ipc {

class TelemetrySocket {
 public:
  /// Maps a request keyword ("metrics", "json") to the response payload.
  using Renderer = std::function<std::string(std::string_view request)>;

  TelemetrySocket() = default;
  ~TelemetrySocket();
  TelemetrySocket(const TelemetrySocket&) = delete;
  TelemetrySocket& operator=(const TelemetrySocket&) = delete;

  /// Create the listener at `path` (stale sockets are unlinked first).
  [[nodiscard]] Status bind(std::string path);
  void set_renderer(Renderer r) { render_ = std::move(r); }
  [[nodiscard]] bool bound() const noexcept { return listen_fd_ >= 0; }

  /// Accept and answer every waiting scrape; returns immediately when
  /// none is pending. Call from the owning loop's idle points. A client
  /// that connects but stalls its request line is dropped after a short
  /// bounded wait so the simulation loop cannot be held hostage.
  void poll();

  /// Close the listener and unlink the socket path (idempotent).
  void close();

 private:
  void serve_one(int fd);

  std::string path_;
  int listen_fd_ = -1;
  Renderer render_;
};

}  // namespace hmcsim::ipc
