#include "ipc/cosim_server.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sched.h>
#include <sys/mman.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "sim/simulator.hpp"

namespace hmcsim::ipc {

namespace {

/// Blocking full write on a stream socket (EINTR-safe).
bool write_full(int fd, const void* buf, std::size_t len) {
  const char* p = static_cast<const char*>(buf);
  while (len > 0) {
    const ssize_t n = ::write(fd, p, len);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

/// Blocking full read on a stream socket (EINTR-safe); false on EOF.
bool read_full(int fd, void* buf, std::size_t len) {
  char* p = static_cast<char*>(buf);
  while (len > 0) {
    const ssize_t n = ::read(fd, p, len);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) {
        continue;
      }
      return false;
    }
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

/// True when a client's control socket reports the peer is gone: closed
/// (orderly EOF), reset, or invalid. A merely idle socket returns false.
bool socket_dead(int fd) {
  if (fd < 0) {
    return true;
  }
  pollfd pfd{};
  pfd.fd = fd;
  pfd.events = POLLIN;
  const int ready = ::poll(&pfd, 1, 0);
  if (ready < 0) {
    return errno != EINTR;
  }
  if (ready == 0) {
    return false;  // Quiet but connected.
  }
  if ((pfd.revents & (POLLHUP | POLLERR | POLLNVAL)) != 0) {
    return true;
  }
  // POLLIN on a control socket that should be silent: either stray bytes
  // or EOF — peek one byte to tell them apart without consuming anything.
  char b = 0;
  return ::recv(fd, &b, 1, MSG_PEEK | MSG_DONTWAIT) == 0;
}

}  // namespace

/// Server-side state of one attached client.
struct CosimServer::Client {
  int fd = -1;                 ///< Control socket (liveness only).
  hmc_cosim_ring_t* c2s = nullptr;
  hmc_cosim_ring_t* s2c = nullptr;
  std::vector<hmc_cosim_msg_t> pending;  ///< SENDs queued this quantum.
  std::uint64_t clock_request = 0;       ///< Cycles asked by CLOCK.
  std::uint32_t slot = 0;                ///< Caller-assigned ring index.
  bool at_barrier = false;               ///< CLOCK seen this quantum.
  bool live = false;                     ///< Attached and not BYE'd.

  ~Client() {
    if (fd >= 0) {
      ::close(fd);
    }
  }
};

CosimServer::CosimServer(backend::MemoryBackend& mem, CosimOptions opts)
    : mem_(&mem), opts_(std::move(opts)) {}

CosimServer::~CosimServer() {
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
  }
  if (shm_base_ != nullptr) {
    ::munmap(shm_base_, shm_bytes_);
  }
  if (!shm_name_.empty()) {
    ::shm_unlink(shm_name_.c_str());
  }
  if (!opts_.socket_path.empty()) {
    ::unlink(opts_.socket_path.c_str());
  }
}

Status CosimServer::bind() {
  if (opts_.socket_path.empty()) {
    return Status::InvalidArg("cosim server needs a socket path");
  }
  if (opts_.expected_clients < 1 || opts_.expected_clients > 64) {
    return Status::InvalidArg("expected_clients must be in [1, 64]");
  }
  if (opts_.ring_slots < 2) {
    return Status::InvalidArg("ring_slots must be at least 2");
  }
  if (opts_.quantum == 0) {
    return Status::InvalidArg("quantum must be at least 1 cycle");
  }
  sockaddr_un addr{};
  if (opts_.socket_path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArg("socket path longer than sockaddr_un allows");
  }

  // Shared-memory segment: one name per server process.
  shm_name_ = "/hmcsim-cosim-" + std::to_string(::getpid());
  ::shm_unlink(shm_name_.c_str());  // stale segment from a crashed run
  const int shm_fd =
      ::shm_open(shm_name_.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
  if (shm_fd < 0) {
    shm_name_.clear();
    return Status::Internal("shm_open: " + std::string(std::strerror(errno)));
  }
  shm_bytes_ = hmc_cosim_shm_bytes(opts_.ring_slots, opts_.expected_clients);
  if (::ftruncate(shm_fd, static_cast<off_t>(shm_bytes_)) != 0) {
    ::close(shm_fd);
    return Status::Internal("ftruncate: " + std::string(std::strerror(errno)));
  }
  shm_base_ = ::mmap(nullptr, shm_bytes_, PROT_READ | PROT_WRITE, MAP_SHARED,
                     shm_fd, 0);
  ::close(shm_fd);
  if (shm_base_ == MAP_FAILED) {
    shm_base_ = nullptr;
    return Status::Internal("mmap: " + std::string(std::strerror(errno)));
  }
  std::memset(shm_base_, 0, shm_bytes_);
  auto* hdr = static_cast<hmc_cosim_shm_hdr_t*>(shm_base_);
  hdr->magic = HMC_COSIM_MAGIC;
  hdr->version = HMC_COSIM_VERSION;
  hdr->ring_slots = opts_.ring_slots;
  hdr->num_clients = opts_.expected_clients;

  // Control socket.
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal("socket: " + std::string(std::strerror(errno)));
  }
  ::unlink(opts_.socket_path.c_str());  // stale socket from a crashed run
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, opts_.socket_path.c_str(),
              opts_.socket_path.size() + 1);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return Status::Internal("bind " + opts_.socket_path + ": " +
                            std::string(std::strerror(errno)));
  }
  if (::listen(listen_fd_, static_cast<int>(opts_.expected_clients)) != 0) {
    return Status::Internal("listen: " + std::string(std::strerror(errno)));
  }

  clients_.clear();
  evicted_.clear();
  for (std::uint32_t i = 0; i < opts_.expected_clients; ++i) {
    auto c = std::make_unique<Client>();
    c->c2s = hmc_cosim_shm_c2s(shm_base_, opts_.ring_slots, i);
    c->s2c = hmc_cosim_shm_s2c(shm_base_, opts_.ring_slots, i);
    c->slot = i;
    clients_.push_back(std::move(c));
  }
  session_ = std::make_unique<sim::Session>(*mem_);
  session_->set_on_complete(
      [this](sim::BatchTicket t, const sim::Response& r) { deliver(t, r); });

  if (!opts_.telemetry_path.empty()) {
    if (Status s = telemetry_.bind(opts_.telemetry_path); !s.ok()) {
      return s;
    }
    telemetry_.set_renderer([this](std::string_view request) {
      const metrics::TelemetryInfo info = telemetry_info();
      sim::Simulator* sim = mem_->simulator();
      const metrics::StatRegistry& reg =
          sim != nullptr ? sim->metrics() : empty_registry_;
      return request == "metrics" ? metrics::to_prometheus(reg, info)
                                  : metrics::snapshot_json(reg, info);
    });
  }
  return Status::Ok();
}

metrics::TelemetryInfo CosimServer::telemetry_info() const {
  metrics::TelemetryInfo info;
  info.cycle = mem_->cycle();
  info.server = true;
  for (const auto& cp : clients_) {
    if (cp->live) {
      ++info.clients_live;
    }
  }
  info.clients_evicted = static_cast<std::uint32_t>(evicted_.size());
  info.quanta = quanta_;
  info.requests = requests_;
  info.responses = responses_;
  const auto now_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  if (meter_t0_ns_ != 0 && now_ns > meter_t0_ns_ &&
      info.cycle > meter_cycle0_) {
    info.cycles_per_sec =
        static_cast<double>(info.cycle - meter_cycle0_) * 1e9 /
        static_cast<double>(now_ns - meter_t0_ns_);
  }
  return info;
}

void CosimServer::poll_telemetry() {
  if (telemetry_.bound()) {
    telemetry_.poll();
  }
}

Status CosimServer::accept_clients() {
  using Clock = std::chrono::steady_clock;
  const bool bounded = opts_.client_timeout_ms != 0;
  const auto timeout = std::chrono::milliseconds(opts_.client_timeout_ms);
  auto deadline = Clock::now() + timeout;
  std::uint32_t attached = 0;
  while (attached < opts_.expected_clients) {
    if (stop_.load(std::memory_order_relaxed)) {
      return Status::InvalidState("stop requested while waiting for clients");
    }
    if (bounded && Clock::now() >= deadline) {
      return Status::InvalidState(
          "timed out after " + std::to_string(opts_.client_timeout_ms) +
          " ms waiting for clients (" + std::to_string(attached) + "/" +
          std::to_string(opts_.expected_clients) + " attached)");
    }
    // Bounded poll so request_stop() can interrupt an idle accept.
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, 50);
    if (ready < 0 && errno != EINTR) {
      return Status::Internal("poll: " + std::string(std::strerror(errno)));
    }
    // Scrapes are answerable while waiting for the fleet to attach.
    poll_telemetry();
    if (ready <= 0) {
      continue;
    }
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) {
        continue;
      }
      return Status::Internal("accept: " + std::string(std::strerror(errno)));
    }
    hmc_cosim_hello_t hello{};
    if (!read_full(fd, &hello, sizeof(hello)) ||
        hello.magic != HMC_COSIM_MAGIC ||
        hello.version != HMC_COSIM_VERSION ||
        hello.slot >= opts_.expected_clients ||
        clients_[hello.slot]->live) {
      ::close(fd);
      return Status::InvalidState("rejected client handshake (bad magic, "
                                  "version, or slot)");
    }
    Client& c = *clients_[hello.slot];
    c.fd = fd;
    c.live = true;
    hmc_cosim_welcome_t welcome{};
    welcome.magic = HMC_COSIM_MAGIC;
    welcome.version = HMC_COSIM_VERSION;
    welcome.client_id = hello.slot;
    welcome.num_links = mem_->num_links();
    welcome.ring_slots = opts_.ring_slots;
    welcome.num_clients = opts_.expected_clients;
    welcome.quantum = opts_.quantum;
    std::snprintf(welcome.shm_name, sizeof(welcome.shm_name), "%s",
                  shm_name_.c_str());
    if (!write_full(fd, &welcome, sizeof(welcome))) {
      return Status::Internal("welcome write failed for slot " +
                              std::to_string(hello.slot));
    }
    ++attached;
    deadline = Clock::now() + timeout;  // Each attach is progress.
  }
  return Status::Ok();
}

bool CosimServer::poll_client(Client& c) {
  bool consumed = false;
  hmc_cosim_msg_t msg;
  while (!c.at_barrier && c.live &&
         hmc_cosim_ring_pop(c.c2s, opts_.ring_slots, &msg) != 0) {
    consumed = true;
    switch (msg.type) {
      case HMC_COSIM_MSG_SEND:
        c.pending.push_back(msg);
        break;
      case HMC_COSIM_MSG_CLOCK:
        c.clock_request = msg.arg;
        c.at_barrier = true;
        break;
      case HMC_COSIM_MSG_BYE:
        c.live = false;
        break;
      default:
        c.live = false;  // Protocol garbage: drop the client.
        break;
    }
  }
  return consumed;
}

void CosimServer::evict(Client& c) {
  c.live = false;
  c.at_barrier = false;
  c.pending.clear();  // A dead client's queued SENDs are never admitted.
  evicted_.push_back(c.slot);
}

Status CosimServer::admit_pending() {
  for (std::size_t slot = 0; slot < clients_.size(); ++slot) {
    Client& c = *clients_[slot];
    // One batch per maximal same-link run preserves the client's per-link
    // order while keeping admission independent of arrival timing.
    std::size_t i = 0;
    while (i < c.pending.size()) {
      const std::uint32_t link = c.pending[i].link;
      std::vector<spec::RqstParams> run;
      while (i < c.pending.size() && c.pending[i].link == link) {
        const hmc_cosim_msg_t& m = c.pending[i];
        spec::RqstParams p;
        p.rqst = static_cast<spec::Rqst>(m.rqst);
        p.addr = m.addr;
        p.tag = m.tag;
        p.cub = m.cub;
        const std::uint32_t words =
            m.payload_words > HMC_COSIM_PAYLOAD_WORDS ? HMC_COSIM_PAYLOAD_WORDS
                                                      : m.payload_words;
        p.payload = {m.payload, words};
        run.push_back(p);
        ++i;
      }
      sim::BatchTicket ticket = sim::kInvalidTicket;
      if (Status s = session_->send_batch(run, ticket, link); !s.ok()) {
        return Status::InvalidState(
            "client " + std::to_string(slot) + " sent an inadmissible "
            "request: " + s.to_string());
      }
      // Posted-only batches can retire inside send_batch; only live
      // tickets owe responses worth routing.
      sim::BatchProgress prog;
      if (session_->batch_progress(ticket, prog).ok()) {
        ticket_owner_[ticket] = static_cast<std::uint32_t>(slot);
      }
      requests_ += run.size();
    }
    c.pending.clear();
  }
  return Status::Ok();
}

void CosimServer::deliver(sim::BatchTicket ticket, const sim::Response& rsp) {
  const auto it = ticket_owner_.find(ticket);
  if (it == ticket_owner_.end()) {
    return;  // Owner already gone; drop the response.
  }
  Client& c = *clients_[it->second];
  if (session_->batch_done(ticket)) {
    ticket_owner_.erase(it);
  }
  if (!c.live) {
    return;
  }
  hmc_cosim_msg_t msg{};
  msg.type = HMC_COSIM_MSG_RSP;
  msg.rqst = rsp.pkt.cmd();
  msg.cub = rsp.pkt.errstat();
  msg.tag = rsp.pkt.tag();
  msg.arg = rsp.latency;
  const auto data = rsp.pkt.payload();
  msg.payload_words = static_cast<std::uint32_t>(data.size());
  for (std::size_t w = 0; w < data.size(); ++w) {
    msg.payload[w] = data[w];
  }
  push_to_client(c, msg);
  ++responses_;
}

void CosimServer::push_to_client(Client& c, const hmc_cosim_msg_t& msg) {
  using Clock = std::chrono::steady_clock;
  const bool bounded = opts_.client_timeout_ms != 0;
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(opts_.client_timeout_ms);
  while (hmc_cosim_ring_push(c.s2c, opts_.ring_slots, &msg) == 0) {
    if (stop_.load(std::memory_order_relaxed) || !c.live) {
      return;  // Ring stuck full: the client is gone, drop the message.
    }
    if (bounded && (socket_dead(c.fd) || Clock::now() >= deadline)) {
      // Stale ring head: nobody is draining s2c. Evict instead of
      // spinning the whole server on one dead consumer.
      evict(c);
      return;
    }
    ::sched_yield();
  }
}

Status CosimServer::run_barriers() {
  using Clock = std::chrono::steady_clock;
  const bool bounded = opts_.client_timeout_ms != 0;
  const auto timeout = std::chrono::milliseconds(opts_.client_timeout_ms);
  auto deadline = Clock::now() + timeout;
  while (true) {
    // Barrier: every live client has posted CLOCK (or left).
    bool all_ready = true;
    bool progress = false;
    std::uint32_t live = 0;
    for (auto& cp : clients_) {
      if (poll_client(*cp)) {
        progress = true;
      }
      if (cp->live) {
        ++live;
        if (!cp->at_barrier) {
          all_ready = false;
        }
      }
    }
    if (live == 0) {
      return Status::Ok();  // Everyone said BYE (or was evicted).
    }
    if (!all_ready) {
      if (stop_.load(std::memory_order_relaxed)) {
        return Status::InvalidState("stop requested at the barrier");
      }
      // The simulation is between quanta here, so a scrape observes a
      // consistent registry without locking the hot path.
      poll_telemetry();
      if (progress) {
        deadline = Clock::now() + timeout;  // Liveness clock: any message.
      } else if (bounded && Clock::now() >= deadline) {
        // No progress for a full timeout: probe the stragglers. Dead
        // clients (closed/reset control socket) are evicted in slot
        // order; survivors then re-evaluate the barrier.
        bool evicted_any = false;
        std::vector<std::uint32_t> stalled;
        for (auto& cp : clients_) {
          if (!cp->live || cp->at_barrier) {
            continue;
          }
          if (socket_dead(cp->fd)) {
            evict(*cp);
            evicted_any = true;
          } else {
            stalled.push_back(cp->slot);
          }
        }
        if (!evicted_any) {
          std::string who;
          for (const std::uint32_t s : stalled) {
            if (!who.empty()) {
              who += ',';
            }
            who += std::to_string(s);
          }
          return Status::InvalidState(
              "barrier stalled for " +
              std::to_string(opts_.client_timeout_ms) +
              " ms waiting on live client slot(s) " + who);
        }
        deadline = Clock::now() + timeout;
      }
      ::sched_yield();
      continue;
    }

    // All CLOCKs must agree — the quantum is part of the configuration.
    std::uint64_t cycles = 0;
    for (auto& cp : clients_) {
      if (!cp->live) {
        continue;
      }
      if (cycles == 0) {
        cycles = cp->clock_request;
      } else if (cp->clock_request != cycles) {
        return Status::InvalidState("clients disagree on the clock quantum");
      }
    }
    if (cycles == 0) {
      return Status::InvalidState("CLOCK must request at least one cycle");
    }

    if (Status s = admit_pending(); !s.ok()) {
      return s;
    }
    session_->advance(cycles);
    ++quanta_;
    poll_telemetry();

    hmc_cosim_msg_t ack{};
    ack.type = HMC_COSIM_MSG_CLOCK_ACK;
    ack.arg = mem_->cycle();
    for (auto& cp : clients_) {
      if (cp->live) {
        cp->at_barrier = false;
        push_to_client(*cp, ack);
      }
    }
    if (opts_.max_cycles != 0 && mem_->cycle() >= opts_.max_cycles) {
      return Status::InvalidState("max_cycles guard reached at cycle " +
                                  std::to_string(mem_->cycle()));
    }
    deadline = Clock::now() + timeout;  // A completed barrier is progress.
  }
}

Status CosimServer::serve() {
  if (listen_fd_ < 0) {
    return Status::InvalidState("serve() before bind()");
  }
  meter_cycle0_ = mem_->cycle();
  meter_t0_ns_ = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  if (Status s = accept_clients(); !s.ok()) {
    return s;
  }
  Status s = run_barriers();
  // Admit whatever the departed clients left queued, then run to
  // quiescence so in-flight packets retire and statistics settle.
  if (s.ok()) {
    s = admit_pending();
  }
  if (s.ok()) {
    mem_->clock_until_idle(opts_.max_cycles);
    session_->pump();
  }
  if (s.ok() && !evicted_.empty()) {
    // Statistics have settled deterministically; now surface the fault.
    std::string who;
    for (const std::uint32_t slot : evicted_) {
      if (!who.empty()) {
        who += ',';
      }
      who += std::to_string(slot);
    }
    return Status::InvalidState("evicted dead client slot(s) " + who +
                                " during the run");
  }
  return s;
}

void CosimServer::request_stop() noexcept {
  stop_.store(true, std::memory_order_relaxed);
}

}  // namespace hmcsim::ipc
