/* cosim_proto.h — wire protocol of the co-simulation server.
 *
 * A server process owns the simulation; client processes attach over a
 * Unix-domain control socket and exchange packets through per-client
 * SPSC rings in one POSIX shared-memory segment. This header is the
 * single source of truth for both sides and compiles as C11 and C++20
 * (the server includes it from C++, the client library from C).
 *
 * Handshake (control socket, fixed-size structs, host byte order — the
 * transport is same-machine by construction):
 *
 *   client -> server   hmc_cosim_hello_t   (magic, version, slot)
 *   server -> client   hmc_cosim_welcome_t (shm name, geometry, quantum)
 *
 * The client then maps the shm segment and talks exclusively through its
 * ring pair; the socket stays open only to detect peer death.
 *
 * Data plane (per client): one client->server ring and one
 * server->client ring of fixed hmc_cosim_msg_t slots.
 *
 *   client -> server   SEND*  CLOCK | BYE
 *   server -> client   RSP*   CLOCK_ACK
 *
 * Synchronization is conservative and quantum-based: a client posts any
 * number of SENDs followed by one CLOCK(n). The server waits until every
 * live client has posted its CLOCK (a barrier), admits all queued SENDs
 * in client-slot order (messages of one client in arrival order), then
 * advances the simulation n cycles — every client must request the same
 * n at a given barrier (use the quantum from the welcome) — delivering
 * RSP messages as packets retire, and finally posts CLOCK_ACK carrying
 * the new cycle count. Admission order is therefore a pure function of
 * the message sequences, never of scheduling: two runs with the same
 * per-client workloads produce byte-identical statistics (docs/COSIM.md).
 */
#ifndef HMCSIM_IPC_COSIM_PROTO_H
#define HMCSIM_IPC_COSIM_PROTO_H

#include <stddef.h>
#include <stdint.h>

#ifdef __cplusplus
#define HMC_COSIM_CAST(type, expr) (reinterpret_cast<type>(expr))
#define HMC_COSIM_ALIGN(n) alignas(n)
extern "C" {
#else
#define HMC_COSIM_CAST(type, expr) ((type)(expr))
#define HMC_COSIM_ALIGN(n) _Alignas(n)
#endif

#define HMC_COSIM_MAGIC 0x434D4348u /* "HCMC" */
#define HMC_COSIM_VERSION 1u

/* Ring message types. */
#define HMC_COSIM_MSG_SEND 1u      /* client->server: inject a request */
#define HMC_COSIM_MSG_CLOCK 2u     /* client->server: barrier, advance n */
#define HMC_COSIM_MSG_BYE 3u       /* client->server: detach */
#define HMC_COSIM_MSG_RSP 4u       /* server->client: completed response */
#define HMC_COSIM_MSG_CLOCK_ACK 5u /* server->client: barrier done */

/* Payload capacity of one message: the largest Gen2 packet moves
 * 2 x (9 - 1) = 16 data words; 32 leaves headroom for CMC shapes. */
#define HMC_COSIM_PAYLOAD_WORDS 32u

/* One fixed-size ring slot. Field use by type:
 *   SEND       link, rqst, cub, tag, addr, payload[payload_words]
 *   CLOCK      arg = cycles to advance
 *   BYE        (no fields)
 *   RSP        link, rqst = response command, cub = ERRSTAT, tag,
 *              arg = latency in cycles, payload[payload_words]
 *   CLOCK_ACK  arg = server cycle after the barrier */
typedef struct {
  uint32_t type;
  uint32_t link;
  uint64_t addr;
  uint64_t arg;
  uint32_t rqst;
  uint16_t tag;
  uint8_t cub;
  uint8_t pad0;
  uint32_t payload_words;
  uint32_t pad1;
  uint64_t payload[HMC_COSIM_PAYLOAD_WORDS];
} hmc_cosim_msg_t;

/* ---- control-socket structs --------------------------------------------- */

/* Client slots are caller-assigned (0..num_clients-1): the launcher, not
 * the accept() race, decides which client is which, so admission order —
 * and with it the statistics — is reproducible across runs. */
typedef struct {
  uint32_t magic;
  uint32_t version;
  uint32_t slot;
  uint32_t pad;
} hmc_cosim_hello_t;

#define HMC_COSIM_SHM_NAME_MAX 64u

typedef struct {
  uint32_t magic;
  uint32_t version;
  uint32_t client_id;   /* echoes the granted slot */
  uint32_t num_links;   /* host links of the simulated device */
  uint32_t ring_slots;  /* messages per ring */
  uint32_t num_clients; /* total expected clients */
  uint64_t quantum;     /* cycles every CLOCK must request */
  char shm_name[HMC_COSIM_SHM_NAME_MAX]; /* for shm_open() */
} hmc_cosim_welcome_t;

/* ---- SPSC ring ----------------------------------------------------------
 *
 * Single producer, single consumer. head is written by the producer,
 * tail by the consumer; both only ever increase (indices are taken
 * modulo the slot count). The 64-byte alignment keeps the two counters
 * on separate cache lines. Slot storage follows the header directly in
 * shared memory — see hmc_cosim_ring_slot(). */

typedef struct {
  HMC_COSIM_ALIGN(64) uint64_t head; /* next slot the producer writes */
  HMC_COSIM_ALIGN(64) uint64_t tail; /* next slot the consumer reads */
} hmc_cosim_ring_t;

#define HMC_COSIM_RING_HDR_BYTES 128u

static inline size_t hmc_cosim_ring_bytes(uint32_t ring_slots) {
  const size_t bytes = HMC_COSIM_RING_HDR_BYTES +
                       (size_t)ring_slots * sizeof(hmc_cosim_msg_t);
  /* Round up so consecutive rings keep the 64-byte counter alignment. */
  return (bytes + 63u) & ~(size_t)63u;
}

static inline hmc_cosim_msg_t *hmc_cosim_ring_slot(hmc_cosim_ring_t *ring,
                                                   uint32_t ring_slots,
                                                   uint64_t index) {
  uint8_t *base = HMC_COSIM_CAST(uint8_t *, ring) + HMC_COSIM_RING_HDR_BYTES;
  return HMC_COSIM_CAST(hmc_cosim_msg_t *, base) + index % ring_slots;
}

/* Non-blocking push; 0 when the ring is full. */
static inline int hmc_cosim_ring_push(hmc_cosim_ring_t *ring,
                                      uint32_t ring_slots,
                                      const hmc_cosim_msg_t *msg) {
  const uint64_t head = __atomic_load_n(&ring->head, __ATOMIC_RELAXED);
  const uint64_t tail = __atomic_load_n(&ring->tail, __ATOMIC_ACQUIRE);
  if (head - tail >= ring_slots) {
    return 0;
  }
  *hmc_cosim_ring_slot(ring, ring_slots, head) = *msg;
  __atomic_store_n(&ring->head, head + 1, __ATOMIC_RELEASE);
  return 1;
}

/* Non-blocking pop; 0 when the ring is empty. */
static inline int hmc_cosim_ring_pop(hmc_cosim_ring_t *ring,
                                     uint32_t ring_slots,
                                     hmc_cosim_msg_t *msg) {
  const uint64_t tail = __atomic_load_n(&ring->tail, __ATOMIC_RELAXED);
  const uint64_t head = __atomic_load_n(&ring->head, __ATOMIC_ACQUIRE);
  if (tail == head) {
    return 0;
  }
  *msg = *hmc_cosim_ring_slot(ring, ring_slots, tail);
  __atomic_store_n(&ring->tail, tail + 1, __ATOMIC_RELEASE);
  return 1;
}

/* ---- shared-memory segment layout ---------------------------------------
 *
 *   [ 64B header | client0: c2s ring, s2c ring | client1: ... ]
 *
 * Ring offsets are pure functions of (ring_slots, slot index), so both
 * sides compute them independently from the welcome geometry. */

typedef struct {
  uint32_t magic;
  uint32_t version;
  uint32_t ring_slots;
  uint32_t num_clients;
} hmc_cosim_shm_hdr_t;

#define HMC_COSIM_SHM_HDR_BYTES 64u

static inline size_t hmc_cosim_shm_bytes(uint32_t ring_slots,
                                         uint32_t num_clients) {
  return HMC_COSIM_SHM_HDR_BYTES +
         (size_t)num_clients * 2u * hmc_cosim_ring_bytes(ring_slots);
}

/* Client `slot`'s client->server ring. */
static inline hmc_cosim_ring_t *hmc_cosim_shm_c2s(void *shm_base,
                                                  uint32_t ring_slots,
                                                  uint32_t slot) {
  uint8_t *p = HMC_COSIM_CAST(uint8_t *, shm_base) + HMC_COSIM_SHM_HDR_BYTES +
               (size_t)slot * 2u * hmc_cosim_ring_bytes(ring_slots);
  return HMC_COSIM_CAST(hmc_cosim_ring_t *, p);
}

/* Client `slot`'s server->client ring. */
static inline hmc_cosim_ring_t *hmc_cosim_shm_s2c(void *shm_base,
                                                  uint32_t ring_slots,
                                                  uint32_t slot) {
  uint8_t *p = HMC_COSIM_CAST(uint8_t *, shm_base) + HMC_COSIM_SHM_HDR_BYTES +
               (size_t)slot * 2u * hmc_cosim_ring_bytes(ring_slots) +
               hmc_cosim_ring_bytes(ring_slots);
  return HMC_COSIM_CAST(hmc_cosim_ring_t *, p);
}

#ifdef __cplusplus
} /* extern "C" */
#endif

#endif /* HMCSIM_IPC_COSIM_PROTO_H */
