// cosim_server.hpp — co-simulation server: one process owns the cube,
// client processes drive it over shared-memory rings.
//
// The server accepts a fixed set of clients (no late joins — the client
// count is part of the configuration, so runs are reproducible), then
// executes quantum barriers: wait for every live client's CLOCK, admit
// all queued SENDs in client-slot order through a sim::Session, advance
// the agreed number of cycles delivering responses as they retire, ack.
// serve() returns when every client has said BYE (the simulation is then
// run to quiescence so statistics settle) or on a protocol error.
//
// Determinism contract: with the same configuration and the same
// per-client message sequences, two server runs produce byte-identical
// statistics JSON — regardless of process scheduling, because nothing
// the server does depends on *when* messages arrive, only on their
// per-client order and the slot numbering (docs/COSIM.md).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "backend/backend.hpp"
#include "common/status.hpp"
#include "ipc/cosim_proto.h"
#include "ipc/telemetry.hpp"
#include "metrics/exposition.hpp"
#include "sim/session.hpp"

namespace hmcsim::ipc {

struct CosimOptions {
  std::string socket_path;            ///< Unix-domain control socket.
  std::uint32_t expected_clients = 1; ///< Exact client count (1..64).
  std::uint64_t quantum = 64;         ///< Cycles each CLOCK must request.
  std::uint32_t ring_slots = 1024;    ///< Messages per SPSC ring (>= 2).
  std::uint64_t max_cycles = 0;       ///< Abort guard; 0 = unbounded.
  /// Liveness bound, in milliseconds of *no progress* (no client message,
  /// no barrier completed, no ring slot freed). When it expires the server
  /// probes every straggler's control socket: dead clients (closed socket
  /// or stale ring head) are evicted in slot order and the survivors
  /// continue; if every straggler is merely stalled the server gives up
  /// with a clean Status error instead of spinning forever. 0 (the
  /// default) waits indefinitely — the pre-timeout behaviour.
  std::uint32_t client_timeout_ms = 0;
  /// Unix-domain telemetry socket path (empty = no exposition). Served
  /// from the barrier loop: scrapes see consistent quantum-boundary
  /// snapshots and add zero cost to the simulation itself. Answers
  /// "metrics\n" (Prometheus text) and "json\n" (compact snapshot);
  /// `hmcsim_cli top <path>` renders the latter live.
  std::string telemetry_path;
};

class CosimServer {
 public:
  /// Serve `mem` (not owned; must outlive the server).
  CosimServer(backend::MemoryBackend& mem, CosimOptions opts);
  ~CosimServer();
  CosimServer(const CosimServer&) = delete;
  CosimServer& operator=(const CosimServer&) = delete;

  /// Create the control socket and the shared-memory segment. Fails if
  /// the socket path is taken (stale sockets are unlinked first) or the
  /// options are out of range.
  [[nodiscard]] Status bind();

  /// Accept the expected clients, run quantum barriers until all of them
  /// disconnect, then clock the backend to quiescence. Blocking; call
  /// request_stop() from another thread to abort an idle accept/barrier.
  [[nodiscard]] Status serve();

  /// Ask a blocked serve() to give up at its next poll.
  void request_stop() noexcept;

  [[nodiscard]] std::uint64_t cycle() const { return mem_->cycle(); }
  /// Barriers executed so far.
  [[nodiscard]] std::uint64_t quanta() const noexcept { return quanta_; }
  /// Requests admitted on behalf of clients so far.
  [[nodiscard]] std::uint64_t requests() const noexcept { return requests_; }
  /// Responses delivered to client rings so far.
  [[nodiscard]] std::uint64_t responses() const noexcept { return responses_; }

 private:
  struct Client;

  [[nodiscard]] Status accept_clients();
  [[nodiscard]] Status run_barriers();
  /// Answer any pending telemetry scrapes (no-op when not configured).
  void poll_telemetry();
  /// Build the renderer state shared by both exposition formats.
  [[nodiscard]] metrics::TelemetryInfo telemetry_info() const;
  /// Drain one client's c2s ring into its pending queue; true when at
  /// least one message was consumed (progress, for the liveness clock).
  bool poll_client(Client& c);
  /// Drop a client that died mid-run: discards its queued SENDs and
  /// records the slot so serve() can report the eviction.
  void evict(Client& c);
  /// Admit every pending SEND (slot order, arrival order within a slot).
  [[nodiscard]] Status admit_pending();
  void deliver(sim::BatchTicket ticket, const sim::Response& rsp);
  void push_to_client(Client& c, const hmc_cosim_msg_t& msg);

  backend::MemoryBackend* mem_;
  CosimOptions opts_;
  std::unique_ptr<sim::Session> session_;
  std::vector<std::unique_ptr<Client>> clients_;
  /// Batch ticket -> client slot owed its responses.
  std::unordered_map<sim::BatchTicket, std::uint32_t> ticket_owner_;
  std::string shm_name_;
  void* shm_base_ = nullptr;
  std::size_t shm_bytes_ = 0;
  int listen_fd_ = -1;
  std::atomic<bool> stop_{false};
  std::uint64_t quanta_ = 0;
  std::uint64_t requests_ = 0;
  std::uint64_t responses_ = 0;
  std::vector<std::uint32_t> evicted_;  ///< Slots dropped as dead mid-run.

  // ---- telemetry ----------------------------------------------------------
  TelemetrySocket telemetry_;
  /// Fallback registry for non-HMC backends with no stats of their own.
  metrics::StatRegistry empty_registry_;
  /// Throughput meter baseline, stamped when serve() starts.
  std::uint64_t meter_cycle0_ = 0;
  std::uint64_t meter_t0_ns_ = 0;
};

}  // namespace hmcsim::ipc
