#include "ipc/telemetry.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace hmcsim::ipc {

namespace {

/// Bounded wait for a scraper's request line: long enough for any local
/// client that writes immediately after connect, short enough that a
/// stalled one cannot pause the simulation loop noticeably.
constexpr int kRequestTimeoutMs = 200;

bool write_full(int fd, const char* p, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::write(fd, p, len);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

TelemetrySocket::~TelemetrySocket() { close(); }

Status TelemetrySocket::bind(std::string path) {
  close();
  if (path.empty()) {
    return Status::InvalidArg("telemetry socket needs a path");
  }
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArg("telemetry path longer than sockaddr_un allows");
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (fd < 0) {
    return Status::Internal("socket: " + std::string(std::strerror(errno)));
  }
  ::unlink(path.c_str());  // stale socket from a crashed run
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return Status::Internal("bind " + path + ": " +
                            std::string(std::strerror(errno)));
  }
  if (::listen(fd, 8) != 0) {
    ::close(fd);
    return Status::Internal("listen: " + std::string(std::strerror(errno)));
  }
  listen_fd_ = fd;
  path_ = std::move(path);
  return Status::Ok();
}

void TelemetrySocket::close() {
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (!path_.empty()) {
    ::unlink(path_.c_str());
    path_.clear();
  }
}

void TelemetrySocket::poll() {
  if (listen_fd_ < 0) {
    return;
  }
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      return;  // EAGAIN (nothing waiting), or a transient error: try later.
    }
    serve_one(fd);
    ::close(fd);
  }
}

void TelemetrySocket::serve_one(int fd) {
  // Read the request line ("metrics\n" / "json\n"), bounded in both time
  // and size; poll() gates each read so a silent peer cannot block us.
  char buf[64];
  std::size_t len = 0;
  while (len < sizeof(buf) - 1) {
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLIN;
    if (::poll(&pfd, 1, kRequestTimeoutMs) <= 0) {
      return;  // Stalled or errored scraper: drop it.
    }
    const ssize_t n = ::read(fd, buf + len, sizeof(buf) - 1 - len);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) {
        continue;
      }
      return;
    }
    len += static_cast<std::size_t>(n);
    if (std::memchr(buf, '\n', len) != nullptr) {
      break;
    }
  }
  buf[len] = '\0';
  std::string_view request(buf, len);
  if (const std::size_t nl = request.find('\n');
      nl != std::string_view::npos) {
    request = request.substr(0, nl);
  }
  while (!request.empty() &&
         (request.back() == '\r' || request.back() == ' ')) {
    request.remove_suffix(1);
  }
  if (!render_) {
    return;
  }
  const std::string payload = render_(request);
  write_full(fd, payload.data(), payload.size());
}

}  // namespace hmcsim::ipc
