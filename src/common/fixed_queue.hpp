// fixed_queue.hpp — bounded FIFO used for every hardware queue in the model.
//
// Link, crossbar and vault request/response queues are all fixed-capacity
// FIFOs whose fullness is the *only* source of back-pressure in HMC-Sim's
// deliberately timing-agnostic model. The queue is a contiguous ring buffer:
// no allocation after construction, stable iteration order (front -> back),
// and O(1) push/pop.
#pragma once

#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

namespace hmcsim {

template <typename T>
class FixedQueue {
 public:
  FixedQueue() = default;
  explicit FixedQueue(std::size_t capacity) : buf_(capacity) {}

  /// Reset capacity; drops all contents.
  void reset(std::size_t capacity) {
    buf_.assign(capacity, T{});
    head_ = 0;
    size_ = 0;
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return buf_.size(); }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] bool full() const noexcept { return size_ == buf_.size(); }
  [[nodiscard]] std::size_t free_slots() const noexcept {
    return buf_.size() - size_;
  }

  /// Push to the back. Returns false (and leaves the queue unchanged) when
  /// full — the caller translates this into a stall.
  [[nodiscard]] bool push(T value) {
    if (full()) {
      return false;
    }
    buf_[index(size_)] = std::move(value);
    ++size_;
    return true;
  }

  [[nodiscard]] T& front() {
    assert(!empty());
    return buf_[head_];
  }
  [[nodiscard]] const T& front() const {
    assert(!empty());
    return buf_[head_];
  }

  /// Indexed peek: element `i` positions behind the front (0 == front).
  [[nodiscard]] T& at(std::size_t i) {
    assert(i < size_);
    return buf_[index(i)];
  }
  [[nodiscard]] const T& at(std::size_t i) const {
    assert(i < size_);
    return buf_[index(i)];
  }

  T pop() {
    assert(!empty());
    T out = std::move(buf_[head_]);
    head_ = (head_ + 1) % buf_.size();
    --size_;
    return out;
  }

  /// Discard the front element without extracting it. Pairs with front():
  /// move out of front(), then drop — avoids the extra move a pop() into a
  /// discarded temporary would cost.
  void drop_front() {
    assert(!empty());
    head_ = (head_ + 1) % buf_.size();
    --size_;
  }

  /// Shrink to `new_size` elements by discarding from the back. Pairs with
  /// in-place compaction via at(): survivors are moved toward the front,
  /// then the tail of stale slots is cut off in O(1).
  void shrink(std::size_t new_size) noexcept {
    assert(new_size <= size_);
    size_ = new_size;
  }

  void clear() noexcept {
    head_ = 0;
    size_ = 0;
  }

 private:
  [[nodiscard]] std::size_t index(std::size_t offset) const noexcept {
    return (head_ + offset) % buf_.size();
  }

  std::vector<T> buf_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace hmcsim
