// rng.hpp — deterministic pseudo-random generators for workload synthesis.
//
// The simulator core is fully deterministic; all randomness lives in the
// host-side workload generators and is seeded explicitly so every experiment
// is reproducible bit-for-bit.
#pragma once

#include <cstdint>
#include <limits>

namespace hmcsim {

/// SplitMix64: tiny, fast seeder/stream generator (public-domain algorithm).
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: high-quality 64-bit generator (Blackman & Vigna).
/// Satisfies UniformRandomBitGenerator so it plugs into <random>.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed) noexcept : s_{} {
    SplitMix64 sm(seed);
    for (auto& w : s_) {
      w = sm.next();
    }
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be nonzero.
  constexpr std::uint64_t below(std::uint64_t bound) noexcept {
    // Bitmask-with-rejection: unbiased and branch-cheap for simulator use.
    std::uint64_t bits = bound - 1;
    bits |= bits >> 1;
    bits |= bits >> 2;
    bits |= bits >> 4;
    bits |= bits >> 8;
    bits |= bits >> 16;
    bits |= bits >> 32;
    std::uint64_t v = (*this)() & bits;
    while (v >= bound) {
      v = (*this)() & bits;
    }
    return v;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace hmcsim
