#include "common/status.hpp"

namespace hmcsim {

std::string_view to_string(StatusCode code) noexcept {
  switch (code) {
    case StatusCode::Ok:
      return "OK";
    case StatusCode::Stall:
      return "STALL";
    case StatusCode::NoData:
      return "NO_DATA";
    case StatusCode::InvalidArg:
      return "INVALID_ARG";
    case StatusCode::InvalidState:
      return "INVALID_STATE";
    case StatusCode::NotFound:
      return "NOT_FOUND";
    case StatusCode::AlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::Unsupported:
      return "UNSUPPORTED";
    case StatusCode::LoadError:
      return "LOAD_ERROR";
    case StatusCode::CmcError:
      return "CMC_ERROR";
    case StatusCode::Internal:
      return "INTERNAL";
    case StatusCode::Poisoned:
      return "POISONED";
  }
  return "UNKNOWN";
}

std::string Status::to_string() const {
  std::string out{hmcsim::to_string(code_)};
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.to_string();
}

std::ostream& operator<<(std::ostream& os, StatusCode c) {
  return os << to_string(c);
}

}  // namespace hmcsim
