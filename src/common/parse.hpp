// parse.hpp — strict numeric parsing for command-line values.
//
// atoi/strtoul silently accept trailing junk ("8x" -> 8), treat garbage
// as 0 ("--links foo" -> 0 links) and wrap negatives ("-1" -> UINT_MAX),
// which turns typos into misconfigured simulations. These helpers reject
// anything that is not a complete, in-range, non-negative integer.
#pragma once

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <limits>

namespace hmcsim::common {

/// Parse `text` as an unsigned 64-bit integer (base 10, or 0x/0 prefixed
/// via base 0). Rejects NULL, empty strings, leading whitespace or signs,
/// trailing junk, and values above `max`. Returns true and writes `out`
/// only on a complete, in-range parse.
inline bool parse_u64(const char* text, std::uint64_t& out,
                      std::uint64_t max = std::numeric_limits<std::uint64_t>::max()) {
  if (text == nullptr || *text == '\0') {
    return false;
  }
  // strtoull skips whitespace and accepts '-' (wrapping the result);
  // insist the string starts with a digit so both are rejected.
  if (!(*text >= '0' && *text <= '9')) {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 0);
  if (errno == ERANGE || end == text || *end != '\0') {
    return false;
  }
  if (v > max) {
    return false;
  }
  out = v;
  return true;
}

/// parse_u64 narrowed to 32 bits (optionally tighter via `max`).
inline bool parse_u32(const char* text, std::uint32_t& out,
                      std::uint32_t max = std::numeric_limits<std::uint32_t>::max()) {
  std::uint64_t wide = 0;
  if (!parse_u64(text, wide, max)) {
    return false;
  }
  out = static_cast<std::uint32_t>(wide);
  return true;
}

}  // namespace hmcsim::common
