// log.hpp — minimal leveled logger for simulator diagnostics.
//
// Distinct from the *trace* subsystem: traces are experiment data (packet
// movement, stalls, CMC resolution); the log is for humans debugging the
// simulator or a plugin. Off by default above Warn so benches stay quiet.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>

namespace hmcsim {

enum class LogLevel : std::uint8_t { Debug = 0, Info, Warn, Error, Off };

[[nodiscard]] std::string_view to_string(LogLevel level) noexcept;

class Logger {
 public:
  /// Process-wide logger used by the library. Not thread-safe by design:
  /// a Simulator instance is single-owner (see DESIGN.md).
  static Logger& global() noexcept;

  void set_level(LogLevel level) noexcept { level_ = level; }
  [[nodiscard]] LogLevel level() const noexcept { return level_; }
  [[nodiscard]] bool enabled(LogLevel level) const noexcept {
    return level >= level_ && level_ != LogLevel::Off;
  }

  /// Redirect output (default: stderr). Pass nullptr to restore stderr.
  void set_stream(std::ostream* os) noexcept { os_ = os; }

  void write(LogLevel level, std::string_view component,
             std::string_view message);

 private:
  LogLevel level_ = LogLevel::Warn;
  std::ostream* os_ = nullptr;
};

namespace detail {
template <typename... Args>
void log(LogLevel level, std::string_view component, Args&&... args) {
  Logger& lg = Logger::global();
  if (!lg.enabled(level)) {
    return;
  }
  std::ostringstream oss;
  (oss << ... << args);
  lg.write(level, component, oss.str());
}
}  // namespace detail

#define HMCSIM_LOG_DEBUG(component, ...) \
  ::hmcsim::detail::log(::hmcsim::LogLevel::Debug, component, __VA_ARGS__)
#define HMCSIM_LOG_INFO(component, ...) \
  ::hmcsim::detail::log(::hmcsim::LogLevel::Info, component, __VA_ARGS__)
#define HMCSIM_LOG_WARN(component, ...) \
  ::hmcsim::detail::log(::hmcsim::LogLevel::Warn, component, __VA_ARGS__)
#define HMCSIM_LOG_ERROR(component, ...) \
  ::hmcsim::detail::log(::hmcsim::LogLevel::Error, component, __VA_ARGS__)

}  // namespace hmcsim
