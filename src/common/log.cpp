#include "common/log.hpp"

#include <iostream>

namespace hmcsim {

std::string_view to_string(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::Debug:
      return "DEBUG";
    case LogLevel::Info:
      return "INFO";
    case LogLevel::Warn:
      return "WARN";
    case LogLevel::Error:
      return "ERROR";
    case LogLevel::Off:
      return "OFF";
  }
  return "?";
}

Logger& Logger::global() noexcept {
  static Logger logger;
  return logger;
}

void Logger::write(LogLevel level, std::string_view component,
                   std::string_view message) {
  std::ostream& os = os_ != nullptr ? *os_ : std::cerr;
  os << "[hmcsim:" << to_string(level) << "] " << component << ": " << message
     << '\n';
}

}  // namespace hmcsim
