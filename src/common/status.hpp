// status.hpp — error/status codes used across the simulator.
//
// The simulator distinguishes *flow-control* outcomes (Stall) from genuine
// errors: a full queue is a normal, expected condition the host must retry
// on, exactly as back-pressure behaves on a real HMC link.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace hmcsim {

/// Coarse result category for every fallible simulator operation.
enum class StatusCode : std::uint8_t {
  Ok = 0,          ///< Operation completed.
  Stall,           ///< Back-pressure: target queue full; retry next cycle.
  NoData,          ///< recv(): no response is ready on the polled link.
  InvalidArg,      ///< Caller passed an out-of-range or malformed argument.
  InvalidState,    ///< Operation illegal in the current simulator state.
  NotFound,        ///< Lookup failed (command code, register, CMC slot...).
  AlreadyExists,   ///< Registration collision (e.g. CMC slot already active).
  Unsupported,     ///< Valid request the current configuration cannot honor.
  LoadError,       ///< Dynamic library load/symbol resolution failure.
  CmcError,        ///< A CMC plugin's execute function reported failure.
  Internal,        ///< Invariant violation inside the simulator (a bug).
  Poisoned,        ///< Data carries an uncorrectable ECC error (DINV).
};

/// Human-readable name of a status code (stable, for traces and tests).
[[nodiscard]] std::string_view to_string(StatusCode code) noexcept;

/// A status code plus an optional diagnostic message.
///
/// Cheap to copy in the Ok case (no allocation); error paths may carry a
/// message describing what failed.
class [[nodiscard]] Status {
 public:
  Status() noexcept = default;
  /*implicit*/ Status(StatusCode code) noexcept : code_(code) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  [[nodiscard]] bool ok() const noexcept { return code_ == StatusCode::Ok; }
  [[nodiscard]] bool stalled() const noexcept {
    return code_ == StatusCode::Stall;
  }
  [[nodiscard]] StatusCode code() const noexcept { return code_; }
  [[nodiscard]] const std::string& message() const noexcept {
    return message_;
  }

  /// Full diagnostic string: "code: message" (or just "code").
  [[nodiscard]] std::string to_string() const;

  static Status Ok() noexcept { return Status{}; }
  static Status Stall(std::string msg = {}) {
    return {StatusCode::Stall, std::move(msg)};
  }
  static Status NoData(std::string msg = {}) {
    return {StatusCode::NoData, std::move(msg)};
  }
  static Status InvalidArg(std::string msg) {
    return {StatusCode::InvalidArg, std::move(msg)};
  }
  static Status InvalidState(std::string msg) {
    return {StatusCode::InvalidState, std::move(msg)};
  }
  static Status NotFound(std::string msg) {
    return {StatusCode::NotFound, std::move(msg)};
  }
  static Status AlreadyExists(std::string msg) {
    return {StatusCode::AlreadyExists, std::move(msg)};
  }
  static Status Unsupported(std::string msg) {
    return {StatusCode::Unsupported, std::move(msg)};
  }
  static Status LoadError(std::string msg) {
    return {StatusCode::LoadError, std::move(msg)};
  }
  static Status CmcError(std::string msg) {
    return {StatusCode::CmcError, std::move(msg)};
  }
  static Status Internal(std::string msg) {
    return {StatusCode::Internal, std::move(msg)};
  }
  static Status Poisoned(std::string msg) {
    return {StatusCode::Poisoned, std::move(msg)};
  }

  friend bool operator==(const Status& a, const Status& b) noexcept {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_ = StatusCode::Ok;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);
std::ostream& operator<<(std::ostream& os, StatusCode c);

}  // namespace hmcsim
