// bits.hpp — bit-field extraction/insertion helpers for packet codecs.
//
// HMC 2.1 packet headers and tails are 64-bit words with named sub-fields.
// These helpers keep the codec readable and make the field layout testable
// in isolation.
#pragma once

#include <cassert>
#include <cstdint>
#include <type_traits>

namespace hmcsim::bits {

/// A mask with the low `width` bits set. width must be in [0, 64].
[[nodiscard]] constexpr std::uint64_t mask(unsigned width) noexcept {
  return width >= 64 ? ~0ULL : ((1ULL << width) - 1ULL);
}

/// Extract `width` bits of `word` starting at bit `lsb`.
[[nodiscard]] constexpr std::uint64_t extract(std::uint64_t word, unsigned lsb,
                                              unsigned width) noexcept {
  return (word >> lsb) & mask(width);
}

/// Return `word` with `width` bits at `lsb` replaced by the low bits of
/// `value`. Bits of `value` above `width` are discarded.
[[nodiscard]] constexpr std::uint64_t deposit(std::uint64_t word, unsigned lsb,
                                              unsigned width,
                                              std::uint64_t value) noexcept {
  const std::uint64_t m = mask(width) << lsb;
  return (word & ~m) | ((value << lsb) & m);
}

/// Sign-extend the low `width` bits of `value` to a signed 64-bit integer.
[[nodiscard]] constexpr std::int64_t sign_extend(std::uint64_t value,
                                                 unsigned width) noexcept {
  if (width == 0 || width >= 64) {
    return static_cast<std::int64_t>(value);
  }
  const std::uint64_t sign_bit = 1ULL << (width - 1);
  const std::uint64_t v = value & mask(width);
  return static_cast<std::int64_t>((v ^ sign_bit) - sign_bit);
}

/// True if `value` fits in `width` unsigned bits.
[[nodiscard]] constexpr bool fits(std::uint64_t value,
                                  unsigned width) noexcept {
  return (value & ~mask(width)) == 0;
}

/// Integer log2 for powers of two (used by address maps).
[[nodiscard]] constexpr unsigned log2_exact(std::uint64_t v) noexcept {
  unsigned n = 0;
  while (v > 1) {
    v >>= 1U;
    ++n;
  }
  return n;
}

/// True if v is a nonzero power of two.
[[nodiscard]] constexpr bool is_pow2(std::uint64_t v) noexcept {
  return v != 0 && (v & (v - 1)) == 0;
}

/// Compile-time-friendly named bit-field descriptor: FIELD<lsb, width>.
/// Usage:  using Cmd = Field<0, 7>;  Cmd::get(word);  Cmd::set(word, v);
template <unsigned Lsb, unsigned Width>
struct Field {
  static_assert(Lsb + Width <= 64, "field exceeds 64-bit word");
  static constexpr unsigned kLsb = Lsb;
  static constexpr unsigned kWidth = Width;

  [[nodiscard]] static constexpr std::uint64_t get(
      std::uint64_t word) noexcept {
    return extract(word, Lsb, Width);
  }
  [[nodiscard]] static constexpr std::uint64_t set(
      std::uint64_t word, std::uint64_t value) noexcept {
    return deposit(word, Lsb, Width, value);
  }
  [[nodiscard]] static constexpr bool holds(std::uint64_t value) noexcept {
    return fits(value, Width);
  }
};

}  // namespace hmcsim::bits
