// chrome_sink.hpp — Chrome trace-event JSON export (Perfetto-loadable).
//
// ChromeSink renders packet journeys and link/CMC incidents into the
// Chrome trace-event JSON array format, loadable directly in Perfetto
// (ui.perfetto.dev) or chrome://tracing:
//
//   * one async span ("b"/"e" pair, id = journey serial) per packet on
//     its host-link track, covering send() to retirement;
//   * one "X" duration slice per journey stage, on the link track for
//     the link stages and the serving vault's track for the vault
//     stages;
//   * one instant ("i") event per link retry and per CMC plugin
//     fault/re-arm.
//
// Tracks: pid = cube id, tid 1..L = host links, tid 1000+v = vaults
// (named through "M" metadata records, emitted lazily on first use).
// Timestamps are simulator cycles written as trace microseconds.
//
// Attach to both the Tracer (instant events) and the JourneyTracker
// (spans): the sink implements both interfaces. The document is a JSON
// array; finish() writes the closing bracket (the destructor calls it).
#pragma once

#include <cstdint>
#include <ostream>
#include <unordered_set>

#include "trace/journey.hpp"
#include "trace/trace.hpp"

namespace hmcsim::trace {

class ChromeSink final : public Sink, public JourneyObserver {
 public:
  explicit ChromeSink(std::ostream& os);
  ChromeSink(const ChromeSink&) = delete;
  ChromeSink& operator=(const ChromeSink&) = delete;
  ~ChromeSink() override;

  /// Instant events: link retries (Level::Retry) and CMC plugin faults /
  /// re-arms (Level::Cmc). Other kinds are ignored.
  void on_event(const Event& ev) override;

  /// Async span + per-stage slices for one completed journey.
  void on_journey(const Journey& journey) override;

  /// Close the JSON array. Idempotent; called by the destructor. No
  /// events may be emitted afterwards.
  void finish();

  [[nodiscard]] std::uint64_t events_written() const noexcept {
    return events_written_;
  }

 private:
  /// tid of a host-link track / a vault track.
  [[nodiscard]] static std::uint32_t link_tid(std::uint32_t link) noexcept {
    return 1 + link;
  }
  [[nodiscard]] static std::uint32_t vault_tid(std::uint32_t vault) noexcept {
    return 1000 + vault;
  }

  /// Emit the process/thread "M" metadata records for (pid, tid) once.
  void ensure_track(std::uint32_t pid, std::uint32_t tid,
                    const std::string& name);
  /// Start one record: separator plus the shared prefix fields.
  void begin_record(const char* ph, std::uint32_t pid, std::uint32_t tid,
                    std::uint64_t ts);
  void slice(std::uint32_t pid, std::uint32_t tid, std::string_view name,
             std::uint64_t ts, std::uint64_t dur, std::uint16_t tag);

  std::ostream& os_;
  std::unordered_set<std::uint64_t> tracks_;  ///< (pid<<32)|tid seen.
  std::unordered_set<std::uint64_t> procs_;   ///< pid seen.
  std::uint64_t events_written_ = 0;
  bool first_ = true;
  bool finished_ = false;
};

}  // namespace hmcsim::trace
