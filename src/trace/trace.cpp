#include "trace/trace.hpp"

#include <algorithm>
#include <bit>

namespace hmcsim::trace {

std::string_view to_string(Level level) noexcept {
  switch (level) {
    case Level::None:
      return "NONE";
    case Level::Stalls:
      return "STALL";
    case Level::BankConflict:
      return "BANK_CONFLICT";
    case Level::QueueDepth:
      return "QUEUE_DEPTH";
    case Level::Latency:
      return "LATENCY";
    case Level::Rqst:
      return "RQST";
    case Level::Rsp:
      return "RSP";
    case Level::Cmc:
      return "CMC";
    case Level::Register:
      return "REGISTER";
    case Level::Route:
      return "ROUTE";
    case Level::Retry:
      return "RETRY";
    case Level::Journey:
      return "JOURNEY";
    case Level::All:
      return "ALL";
  }
  return "?";
}

void TextSink::on_event(const Event& ev) {
  os_ << ev.cycle << " " << to_string(ev.kind) << " dev=" << ev.where.dev
      << " quad=" << ev.where.quad << " vault=" << ev.where.vault
      << " bank=" << ev.where.bank << " link=" << ev.where.link
      << " tag=" << ev.tag << " op=" << (ev.op.empty() ? "-" : ev.op)
      << " addr=0x" << std::hex << ev.addr << std::dec
      << " value=" << ev.value;
  if (!ev.note.empty()) {
    os_ << " note=\"" << ev.note << "\"";
  }
  os_ << '\n';
}

namespace {

// RFC 4180: a field containing a comma, a double quote or a line break is
// enclosed in quotes, with embedded quotes doubled.
void write_csv_field(std::ostream& os, std::string_view field) {
  if (field.find_first_of(",\"\r\n") == std::string_view::npos) {
    os << field;
    return;
  }
  os << '"';
  for (const char c : field) {
    if (c == '"') {
      os << '"';
    }
    os << c;
  }
  os << '"';
}

}  // namespace

CsvSink::CsvSink(std::ostream& os) : os_(os) {
  os_ << "cycle,kind,dev,quad,vault,bank,link,tag,op,addr,value,note\n";
}

void CsvSink::on_event(const Event& ev) {
  os_ << ev.cycle << ',' << to_string(ev.kind) << ',' << ev.where.dev << ','
      << ev.where.quad << ',' << ev.where.vault << ',' << ev.where.bank << ','
      << ev.where.link << ',' << ev.tag << ',';
  write_csv_field(os_, ev.op.empty() ? std::string_view("-") : ev.op);
  os_ << ",0x" << std::hex << ev.addr << std::dec << ',' << ev.value << ',';
  write_csv_field(os_, ev.note);
  os_ << '\n';
}

void LatencySink::on_event(const Event& ev) {
  if (ev.kind == Level::Latency) {
    samples_.push_back(ev.value);
    sorted_ = false;
  }
}

void LatencySink::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

std::uint64_t LatencySink::min() const noexcept {
  return samples_.empty()
             ? 0
             : *std::min_element(samples_.begin(), samples_.end());
}

std::uint64_t LatencySink::max() const noexcept {
  return samples_.empty()
             ? 0
             : *std::max_element(samples_.begin(), samples_.end());
}

double LatencySink::mean() const noexcept {
  if (samples_.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (const std::uint64_t s : samples_) {
    sum += static_cast<double>(s);
  }
  return sum / static_cast<double>(samples_.size());
}

std::uint64_t LatencySink::percentile(double q) const {
  if (samples_.empty()) {
    return 0;
  }
  ensure_sorted();
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(samples_.size() - 1) + 0.5);
  return samples_[rank];
}

std::vector<std::uint64_t> LatencySink::percentiles(
    std::span<const double> qs) const {
  std::vector<std::uint64_t> out;
  out.reserve(qs.size());
  for (const double q : qs) {
    out.push_back(percentile(q));
  }
  return out;
}

void CountingSink::on_event(const Event& ev) {
  const auto bits = static_cast<std::uint32_t>(ev.kind);
  if (bits != 0) {
    counts_[std::countr_zero(bits)] += 1;
  }
  ++total_;
}

std::uint64_t CountingSink::count(Level kind) const noexcept {
  const auto bits = static_cast<std::uint32_t>(kind);
  if (bits == 0) {
    return 0;
  }
  return counts_[std::countr_zero(bits)];
}

void CountingSink::reset() noexcept {
  std::fill(std::begin(counts_), std::end(counts_), 0ULL);
  total_ = 0;
}

void Tracer::attach(Sink* sink) {
  if (sink != nullptr &&
      std::find(sinks_.begin(), sinks_.end(), sink) == sinks_.end()) {
    sinks_.push_back(sink);
  }
}

void Tracer::detach(Sink* sink) {
  sinks_.erase(std::remove(sinks_.begin(), sinks_.end(), sink), sinks_.end());
}

void Tracer::emit(const Event& ev) {
  if (!enabled(ev.kind)) {
    return;
  }
  for (Sink* sink : sinks_) {
    sink->on_event(ev);
  }
}

}  // namespace hmcsim::trace
