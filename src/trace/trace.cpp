#include "trace/trace.hpp"

#include <algorithm>
#include <bit>

namespace hmcsim::trace {

std::string_view to_string(Level level) noexcept {
  switch (level) {
    case Level::None:
      return "NONE";
    case Level::Stalls:
      return "STALL";
    case Level::BankConflict:
      return "BANK_CONFLICT";
    case Level::QueueDepth:
      return "QUEUE_DEPTH";
    case Level::Latency:
      return "LATENCY";
    case Level::Rqst:
      return "RQST";
    case Level::Rsp:
      return "RSP";
    case Level::Cmc:
      return "CMC";
    case Level::Register:
      return "REGISTER";
    case Level::Route:
      return "ROUTE";
    case Level::Retry:
      return "RETRY";
    case Level::Journey:
      return "JOURNEY";
    case Level::Ecc:
      return "ECC";
    case Level::Prof:
      return "PROF";
    case Level::All:
      return "ALL";
  }
  return "?";
}

void TextSink::on_event(const Event& ev) {
  os_ << ev.cycle << " " << to_string(ev.kind) << " dev=" << ev.where.dev
      << " quad=" << ev.where.quad << " vault=" << ev.where.vault
      << " bank=" << ev.where.bank << " link=" << ev.where.link
      << " tag=" << ev.tag << " op=" << (ev.op.empty() ? "-" : ev.op)
      << " addr=0x" << std::hex << ev.addr << std::dec
      << " value=" << ev.value;
  if (!ev.note.empty()) {
    os_ << " note=\"" << ev.note << "\"";
  }
  os_ << '\n';
}

namespace {

// RFC 4180: a field containing a comma, a double quote or a line break is
// enclosed in quotes, with embedded quotes doubled.
void write_csv_field(std::ostream& os, std::string_view field) {
  if (field.find_first_of(",\"\r\n") == std::string_view::npos) {
    os << field;
    return;
  }
  os << '"';
  for (const char c : field) {
    if (c == '"') {
      os << '"';
    }
    os << c;
  }
  os << '"';
}

}  // namespace

CsvSink::CsvSink(std::ostream& os) : os_(os) {
  os_ << "cycle,kind,dev,quad,vault,bank,link,tag,op,addr,value,note\n";
}

void CsvSink::on_event(const Event& ev) {
  os_ << ev.cycle << ',' << to_string(ev.kind) << ',' << ev.where.dev << ','
      << ev.where.quad << ',' << ev.where.vault << ',' << ev.where.bank << ','
      << ev.where.link << ',' << ev.tag << ',';
  write_csv_field(os_, ev.op.empty() ? std::string_view("-") : ev.op);
  os_ << ",0x" << std::hex << ev.addr << std::dec << ',' << ev.value << ',';
  write_csv_field(os_, ev.note);
  os_ << '\n';
}

void LatencySink::on_event(const Event& ev) {
  if (ev.kind == Level::Latency) {
    samples_.push_back(ev.value);
    sorted_ = false;
  }
}

void LatencySink::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

std::uint64_t LatencySink::min() const noexcept {
  return samples_.empty()
             ? 0
             : *std::min_element(samples_.begin(), samples_.end());
}

std::uint64_t LatencySink::max() const noexcept {
  return samples_.empty()
             ? 0
             : *std::max_element(samples_.begin(), samples_.end());
}

double LatencySink::mean() const noexcept {
  if (samples_.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (const std::uint64_t s : samples_) {
    sum += static_cast<double>(s);
  }
  return sum / static_cast<double>(samples_.size());
}

std::uint64_t LatencySink::percentile(double q) const {
  if (samples_.empty()) {
    return 0;
  }
  ensure_sorted();
  q = std::clamp(q, 0.0, 1.0);
  // Nearest-rank with rounding: q*(n-1)+0.5 can reach n for q=1 (and for
  // q just below 1 under FP rounding), so clamp to the last sample.
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(samples_.size() - 1) + 0.5);
  return samples_[std::min(rank, samples_.size() - 1)];
}

std::vector<std::uint64_t> LatencySink::percentiles(
    std::span<const double> qs) const {
  std::vector<std::uint64_t> out;
  out.reserve(qs.size());
  for (const double q : qs) {
    out.push_back(percentile(q));
  }
  return out;
}

void CountingSink::on_event(const Event& ev) {
  const auto bits = static_cast<std::uint32_t>(ev.kind);
  if (bits != 0) {
    counts_[std::countr_zero(bits)] += 1;
  }
  ++total_;
}

std::uint64_t CountingSink::count(Level kind) const noexcept {
  const auto bits = static_cast<std::uint32_t>(kind);
  if (bits == 0) {
    return 0;
  }
  return counts_[std::countr_zero(bits)];
}

void CountingSink::reset() noexcept {
  std::fill(std::begin(counts_), std::end(counts_), 0ULL);
  total_ = 0;
}

void Tracer::attach(Sink* sink) {
  if (sink != nullptr &&
      std::find(sinks_.begin(), sinks_.end(), sink) == sinks_.end()) {
    sinks_.push_back(sink);
  }
}

void Tracer::detach(Sink* sink) {
  sinks_.erase(std::remove(sinks_.begin(), sinks_.end(), sink), sinks_.end());
}

namespace {

/// Calling thread's capture binding. `order` pre-combines (stage << 8) |
/// rank so the emit path only shifts the cycle in.
struct CaptureTls {
  CaptureBuf* buf = nullptr;
  std::uint32_t order = 0;
};
thread_local CaptureTls t_capture;

}  // namespace

void Tracer::bind_capture(CaptureBuf* buf) noexcept {
  t_capture.buf = buf;
  t_capture.order = 0;
}

void Tracer::set_capture_order(std::uint32_t stage,
                               std::uint32_t rank) noexcept {
  t_capture.order = (stage << 8) | (rank & 0xFFU);
}

void Tracer::emit(const Event& ev) {
  if (!enabled(ev.kind)) {
    return;
  }
  if (capturing_) {
    CaptureBuf* buf = t_capture.buf;
    if (buf != nullptr) {
      buf->recs_.push_back({(ev.cycle << 12) | t_capture.order, ev});
      return;
    }
  }
  for (Sink* sink : sinks_) {
    sink->on_event(ev);
  }
}

void Tracer::end_capture(std::span<CaptureBuf> bufs) {
  capturing_ = false;
  std::size_t total = 0;
  for (const CaptureBuf& buf : bufs) {
    total += buf.recs_.size();
  }
  if (total == 0) {
    return;
  }
  std::vector<CaptureBuf::Rec> merged;
  merged.reserve(total);
  for (CaptureBuf& buf : bufs) {
    for (CaptureBuf::Rec& rec : buf.recs_) {
      merged.push_back(std::move(rec));
    }
    buf.clear();
  }
  // Stable: per-buffer append order breaks ties within one bucket, which
  // is exactly the sequential intra-stage emission order.
  std::stable_sort(merged.begin(), merged.end(),
                   [](const CaptureBuf::Rec& a, const CaptureBuf::Rec& b) {
                     return a.key < b.key;
                   });
  for (const CaptureBuf::Rec& rec : merged) {
    for (Sink* sink : sinks_) {
      sink->on_event(rec.ev);
    }
  }
}

}  // namespace hmcsim::trace
