#include "trace/chrome_sink.hpp"

#include <string>

#include "metrics/stat_registry.hpp"

namespace hmcsim::trace {

ChromeSink::ChromeSink(std::ostream& os) : os_(os) { os_ << "["; }

ChromeSink::~ChromeSink() { finish(); }

void ChromeSink::finish() {
  if (!finished_) {
    os_ << "\n]\n";
    os_.flush();
    finished_ = true;
  }
}

void ChromeSink::begin_record(const char* ph, std::uint32_t pid,
                              std::uint32_t tid, std::uint64_t ts) {
  os_ << (first_ ? "\n" : ",\n");
  first_ = false;
  ++events_written_;
  // Periodic flush so a run killed mid-stream still leaves every
  // complete record on disk (the destructor then closes the array, so
  // the partial trace loads in Perfetto).
  if (events_written_ % 512 == 0) {
    os_.flush();
  }
  os_ << "{\"ph\":\"" << ph << "\",\"pid\":" << pid << ",\"tid\":" << tid
      << ",\"ts\":" << ts;
}

void ChromeSink::ensure_track(std::uint32_t pid, std::uint32_t tid,
                              const std::string& name) {
  if (procs_.insert(pid).second) {
    begin_record("M", pid, 0, 0);
    os_ << ",\"name\":\"process_name\",\"args\":{\"name\":\"cube" << pid
        << "\"}}";
  }
  const std::uint64_t key = (static_cast<std::uint64_t>(pid) << 32) | tid;
  if (tracks_.insert(key).second) {
    begin_record("M", pid, tid, 0);
    os_ << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
        << metrics::json_escape(name) << "\"}}";
  }
}

void ChromeSink::slice(std::uint32_t pid, std::uint32_t tid,
                       std::string_view name, std::uint64_t ts,
                       std::uint64_t dur, std::uint16_t tag) {
  begin_record("X", pid, tid, ts);
  os_ << ",\"dur\":" << dur << ",\"name\":\""
      << metrics::json_escape(std::string(name))
      << "\",\"args\":{\"tag\":" << tag << "}}";
}

void ChromeSink::on_journey(const Journey& j) {
  if (finished_) {
    return;
  }
  const std::uint32_t ltid = link_tid(j.link);
  const std::uint32_t vtid = vault_tid(j.vault);
  ensure_track(j.dev, ltid, "link" + std::to_string(j.link));
  if (j.t_service != kNoCycle) {
    ensure_track(j.dev, vtid,
                 "quad" + std::to_string(j.quad) + ".vault" +
                     std::to_string(j.vault));
  }
  const std::uint64_t t_end =
      j.t_retire != kNoCycle
          ? j.t_retire
          : (j.t_rsp != kNoCycle ? j.t_rsp : j.t_send);
  const std::string op = metrics::json_escape(std::string(
      j.op.empty() ? std::string_view("?") : j.op));

  // Async span: the packet's whole life on its host-link track.
  begin_record("b", j.dev, ltid, j.t_send);
  os_ << ",\"cat\":\"packet\",\"id\":" << j.serial << ",\"name\":\"" << op
      << "\",\"args\":{\"addr\":\"0x" << std::hex << j.addr << std::dec
      << "\",\"tag\":" << j.tag << "}}";

  // Per-stage duration slices on the link / serving-vault tracks.
  const auto d = j.stage_durations();
  std::uint64_t t = j.t_send;
  for (std::size_t i = 0; i < kStageCount; ++i) {
    const auto stage = static_cast<Stage>(i);
    const bool vault_stage = stage == Stage::VaultQueue ||
                             stage == Stage::BankService ||
                             stage == Stage::RspQueue;
    if (vault_stage && j.t_service == kNoCycle) {
      continue;  // Never reached a vault: no track to place the slice on.
    }
    if (stage == Stage::RspQueue && j.posted) {
      t += d[i];
      continue;  // Posted: retired at the vault, no response stages.
    }
    if ((stage == Stage::RspPath || stage == Stage::RspQueue) &&
        j.t_retire == kNoCycle && !j.posted) {
      continue;
    }
    if (stage == Stage::RspPath && j.posted) {
      continue;
    }
    slice(j.dev, vault_stage ? vtid : ltid, to_string(stage), t, d[i],
          j.tag);
    t += d[i];
  }

  begin_record("e", j.dev, ltid, t_end);
  os_ << ",\"cat\":\"packet\",\"id\":" << j.serial << ",\"name\":\"" << op
      << "\",\"args\":{\"latency\":" << (t_end - j.t_send)
      << ",\"posted\":" << (j.posted ? "true" : "false")
      << ",\"error\":" << (j.error ? "true" : "false");
  if (!j.note.empty()) {
    os_ << ",\"note\":\"" << metrics::json_escape(j.note) << "\"";
  }
  for (std::size_t i = 0; i < kStageCount; ++i) {
    os_ << ",\"" << to_string(static_cast<Stage>(i)) << "\":" << d[i];
  }
  os_ << "}}";
}

void ChromeSink::on_event(const Event& ev) {
  if (finished_) {
    return;
  }
  if (ev.kind == Level::Prof) {
    // Host wall-clock counter track: sim-time on the x axis, wall time
    // and throughput as counter series, so Perfetto shows where host
    // time went next to what the cube was doing. addr carries cumulative
    // profiled wall nanoseconds, value the cycles/sec estimate.
    begin_record("C", 0, 0, ev.cycle);
    os_ << ",\"name\":\"host_wall_ms\",\"args\":{\"wall_ms\":"
        << ev.addr / 1000000 << "}}";
    begin_record("C", 0, 0, ev.cycle);
    os_ << ",\"name\":\"host_cycles_per_sec\",\"args\":{\"value\":"
        << ev.value << "}}";
    return;
  }
  const bool retry = ev.kind == Level::Retry;
  const bool cmc_incident =
      ev.kind == Level::Cmc &&
      (ev.op == "cmc_fault" || ev.op == "cmc_rearm");
  if (!retry && !cmc_incident) {
    return;
  }
  const std::uint32_t tid =
      retry ? link_tid(ev.where.link) : vault_tid(ev.where.vault);
  if (retry) {
    ensure_track(ev.where.dev, tid,
                 "link" + std::to_string(ev.where.link));
  } else {
    ensure_track(ev.where.dev, tid,
                 "quad" + std::to_string(ev.where.quad) + ".vault" +
                     std::to_string(ev.where.vault));
  }
  begin_record("i", ev.where.dev, tid, ev.cycle);
  os_ << ",\"s\":\"t\",\"name\":\""
      << metrics::json_escape(std::string(retry ? "retry" : ev.op))
      << "\",\"args\":{\"tag\":" << ev.tag;
  if (!ev.note.empty()) {
    os_ << ",\"note\":\"" << metrics::json_escape(ev.note) << "\"";
  }
  os_ << "}}";
}

}  // namespace hmcsim::trace
