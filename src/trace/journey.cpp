#include "trace/journey.hpp"

#include <algorithm>

namespace hmcsim::trace {

std::string_view to_string(Stage stage) noexcept {
  switch (stage) {
    case Stage::LinkIngress:
      return "link_ingress";
    case Stage::VaultQueue:
      return "vault_queue";
    case Stage::BankService:
      return "bank_service";
    case Stage::RspQueue:
      return "rsp_queue";
    case Stage::RspPath:
      return "rsp_path";
  }
  return "?";
}

std::array<std::uint64_t, kStageCount> Journey::stage_durations()
    const noexcept {
  // Each stage runs from the latest earlier stamp to its own stamp; a
  // missing (or out-of-order) stamp contributes zero and does not move
  // the baseline, so the total telescopes to (last stamp - t_send).
  std::array<std::uint64_t, kStageCount> out{};
  const std::array<std::uint64_t, kStageCount> stamps{
      t_vault, t_service, t_rsp, t_eject, t_retire};
  std::uint64_t prev = t_send;
  for (std::size_t i = 0; i < kStageCount; ++i) {
    if (stamps[i] != kNoCycle && stamps[i] >= prev) {
      out[i] = stamps[i] - prev;
      prev = stamps[i];
    }
  }
  return out;
}

std::uint32_t JourneyTracker::open(std::uint64_t cycle, std::uint32_t dev,
                                   std::uint32_t link, std::uint16_t tag,
                                   std::string_view op, std::uint64_t addr) {
  std::uint32_t idx;
  if (!free_.empty()) {
    idx = free_.back();
    free_.pop_back();
  } else {
    idx = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
    live_.push_back(false);
  }
  Journey& j = slots_[idx];
  j = Journey{};
  j.serial = next_serial_++;
  j.dev = dev;
  j.link = link;
  j.tag = tag;
  j.op = op;
  j.addr = addr;
  j.t_send = cycle;
  live_[idx] = true;
  ++in_flight_;
  ++opened_;
  return idx;
}

void JourneyTracker::complete(std::uint32_t idx) {
  const Journey& j = slots_[idx];
  for (JourneyObserver* observer : observers_) {
    observer->on_journey(j);
  }
  ++completed_;
  drop(idx);
}

void JourneyTracker::drop(std::uint32_t idx) noexcept {
  if (idx < live_.size() && live_[idx]) {
    live_[idx] = false;
    --in_flight_;
    free_.push_back(idx);
  }
}

void JourneyTracker::clear() noexcept {
  for (std::uint32_t idx = 0; idx < live_.size(); ++idx) {
    if (live_[idx]) {
      live_[idx] = false;
      free_.push_back(idx);
    }
  }
  in_flight_ = 0;
}

void JourneyTracker::attach(JourneyObserver* observer) {
  if (observer != nullptr &&
      std::find(observers_.begin(), observers_.end(), observer) ==
          observers_.end()) {
    observers_.push_back(observer);
  }
}

void JourneyTracker::detach(JourneyObserver* observer) {
  observers_.erase(
      std::remove(observers_.begin(), observers_.end(), observer),
      observers_.end());
}

}  // namespace hmcsim::trace
