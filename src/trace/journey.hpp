// journey.hpp — per-packet latency attribution.
//
// A Journey is the in-flight record of one request, stamped at each
// pipeline transition (link ingress, vault-queue entry, service start,
// response enqueue, link ejection, host retirement). On retirement the
// stage durations feed the host.stage.* histograms and every attached
// JourneyObserver (e.g. trace::ChromeSink, trace::JourneySink).
//
// Pay-for-what-you-use: packets carry a 32-bit slot index (kNoJourney
// when tracing is off), so with trace::Level::Journey disabled the hot
// path costs one integer compare and performs no allocation. Slots are
// pooled through a free list: steady-state tracing allocates only while
// the in-flight high-water mark is still growing.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace hmcsim::trace {

/// Sentinel slot index carried by packets that have no journey record.
inline constexpr std::uint32_t kNoJourney = UINT32_MAX;
/// Sentinel for a pipeline transition that has not happened (yet).
inline constexpr std::uint64_t kNoCycle = UINT64_MAX;

/// The five stages a retired packet's end-to-end latency decomposes into.
/// Their durations are consecutive differences of the journey stamps, so
/// they always sum to the packet's host.latency sample exactly.
enum class Stage : std::uint8_t {
  LinkIngress = 0,  ///< send() -> vault-queue entry (link + xbar + hops).
  VaultQueue,       ///< vault-queue entry -> first service attempt.
  BankService,      ///< first attempt -> response enqueued (conflicts,
                    ///< response-queue stalls and AMO/CMC execution).
  RspQueue,         ///< response enqueued -> host-link ejection queue.
  RspPath,          ///< ejection queue -> host recv().
};
inline constexpr std::size_t kStageCount = 5;

[[nodiscard]] std::string_view to_string(Stage stage) noexcept;

/// One packet's stamped trip through the pipeline.
struct Journey {
  // Identity (fixed at open).
  std::uint64_t serial = 0;  ///< Monotonic id (Chrome async-span id).
  std::uint64_t addr = 0;
  std::string_view op;  ///< Command mnemonic (static lifetime).
  std::uint32_t dev = 0;
  std::uint32_t link = 0;
  std::uint16_t tag = 0;
  // Service placement (stamped at first service attempt).
  std::uint32_t quad = 0;
  std::uint32_t vault = 0;
  std::uint32_t bank = 0;
  bool posted = false;  ///< Retired at the vault without a response.
  bool error = false;   ///< Response carried RSP_ERROR.
  /// Optional annotation stamped at retirement (static lifetime), e.g.
  /// "ecc-poison" for a response the ECC model invalidated.
  std::string_view note;
  // Pipeline transition stamps (cycles; kNoCycle until reached).
  std::uint64_t t_send = 0;
  std::uint64_t t_vault = kNoCycle;
  std::uint64_t t_service = kNoCycle;
  std::uint64_t t_rsp = kNoCycle;
  std::uint64_t t_eject = kNoCycle;
  std::uint64_t t_retire = kNoCycle;

  /// Per-stage durations. Missing stamps contribute zero cycles, and each
  /// stage is measured from the latest earlier stamp, so the array always
  /// sums to (last stamp - t_send) — for a retired packet, exactly the
  /// host.latency sample.
  [[nodiscard]] std::array<std::uint64_t, kStageCount> stage_durations()
      const noexcept;

  [[nodiscard]] bool completed() const noexcept {
    return t_retire != kNoCycle || (posted && t_rsp != kNoCycle);
  }
};

/// Receives every completed journey (retired responses and posted
/// retirements). Dropped packets (unroutable, pipeline reset) are not
/// reported.
class JourneyObserver {
 public:
  virtual ~JourneyObserver() = default;
  virtual void on_journey(const Journey& journey) = 0;
};

/// Slot store for in-flight journeys. Owned by the Simulator and shared
/// with the devices through trace::Tracer (borrowed pointer), mirroring
/// how sinks are wired.
class JourneyTracker {
 public:
  /// Open a journey for a packet accepted at a host link; returns its
  /// slot index (to be carried in the packet's queue entry).
  [[nodiscard]] std::uint32_t open(std::uint64_t cycle, std::uint32_t dev,
                                   std::uint32_t link, std::uint16_t tag,
                                   std::string_view op, std::uint64_t addr);

  /// The live record behind a slot index returned by open().
  [[nodiscard]] Journey& at(std::uint32_t idx) noexcept {
    return slots_[idx];
  }
  [[nodiscard]] const Journey& at(std::uint32_t idx) const noexcept {
    return slots_[idx];
  }

  /// Finish a journey: notify observers, then recycle the slot.
  void complete(std::uint32_t idx);

  /// Abandon a journey without notifying observers (dropped packet).
  void drop(std::uint32_t idx) noexcept;

  /// Abandon every in-flight journey (pipeline reset).
  void clear() noexcept;

  void attach(JourneyObserver* observer);
  void detach(JourneyObserver* observer);

  [[nodiscard]] std::size_t in_flight() const noexcept { return in_flight_; }
  [[nodiscard]] std::uint64_t opened() const noexcept { return opened_; }
  [[nodiscard]] std::uint64_t completed() const noexcept {
    return completed_;
  }

 private:
  std::vector<Journey> slots_;
  std::vector<std::uint32_t> free_;
  std::vector<bool> live_;  ///< Slot holds an in-flight journey.
  std::vector<JourneyObserver*> observers_;
  std::uint64_t next_serial_ = 0;
  std::uint64_t opened_ = 0;
  std::uint64_t completed_ = 0;
  std::size_t in_flight_ = 0;
};

/// In-memory observer retaining every completed journey (tests and
/// programmatic inspection).
class JourneySink final : public JourneyObserver {
 public:
  void on_journey(const Journey& journey) override {
    journeys_.push_back(journey);
  }
  [[nodiscard]] const std::vector<Journey>& journeys() const noexcept {
    return journeys_;
  }
  void clear() noexcept { journeys_.clear(); }

 private:
  std::vector<Journey> journeys_;
};

}  // namespace hmcsim::trace
