// trace.hpp — discrete event tracing.
//
// Traces are experiment data, not debug logging: packet movement, queue
// stalls, bank conflicts and CMC resolution. Per the paper's "Discrete
// Tracing" requirement, a user-defined CMC operation appears in the trace
// under the human-readable name its plugin supplies via cmc_str — never as
// an opaque code.
#pragma once

#include <cstdint>
#include <memory>
#include <ostream>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace hmcsim::trace {

/// Bitmask of trace categories (mirrors HMC-Sim's trace-level controls).
enum class Level : std::uint32_t {
  None = 0,
  Stalls = 1U << 0,        ///< Queue-full stalls anywhere in the pipeline.
  BankConflict = 1U << 1,  ///< Bank-busy conflicts (optional timing model).
  QueueDepth = 1U << 2,    ///< Periodic queue occupancy samples.
  Latency = 1U << 3,       ///< Per-packet end-to-end latency on retirement.
  Rqst = 1U << 4,          ///< Request arrival at a vault.
  Rsp = 1U << 5,           ///< Response departure from a vault.
  Cmc = 1U << 6,           ///< CMC execution (named via cmc_str).
  Register = 1U << 7,      ///< Mode/JTAG register access.
  Route = 1U << 8,         ///< Inter-cube routing hops.
  Retry = 1U << 9,         ///< Link-layer CRC retry events.
  Journey = 1U << 10,      ///< Per-packet stage-stamped journeys
                           ///< (latency attribution; see journey.hpp).
  Ecc = 1U << 11,          ///< DRAM fault corrections / poisoned reads /
                           ///< patrol-scrub repairs (see docs/FAULTS.md).
  Prof = 1U << 12,         ///< Host wall-clock self-profiling points
                           ///< (ChromeSink counter track; values are
                           ///< host-dependent, never deterministic).
  All = 0xFFFFFFFFU,
};

[[nodiscard]] constexpr Level operator|(Level a, Level b) noexcept {
  return static_cast<Level>(static_cast<std::uint32_t>(a) |
                            static_cast<std::uint32_t>(b));
}
[[nodiscard]] constexpr Level operator&(Level a, Level b) noexcept {
  return static_cast<Level>(static_cast<std::uint32_t>(a) &
                            static_cast<std::uint32_t>(b));
}
[[nodiscard]] constexpr bool any(Level l) noexcept {
  return static_cast<std::uint32_t>(l) != 0;
}

[[nodiscard]] std::string_view to_string(Level level) noexcept;

/// Physical location of an event inside the cube network.
struct Location {
  std::uint32_t dev = 0;
  std::uint32_t quad = 0;
  std::uint32_t vault = 0;
  std::uint32_t bank = 0;
  std::uint32_t link = 0;
};

/// One trace record.
struct Event {
  std::uint64_t cycle = 0;
  Level kind = Level::None;
  Location where{};
  std::uint16_t tag = 0;
  std::string_view op;   ///< Command mnemonic or CMC name (static lifetime
                         ///< or owned by the registry for the sim's life).
  std::uint64_t addr = 0;
  std::uint64_t value = 0;  ///< Kind-specific payload (latency, depth, ...).
  std::string note;         ///< Optional free-form detail.
};

/// Receives every emitted event that passes the level mask.
class Sink {
 public:
  virtual ~Sink() = default;
  virtual void on_event(const Event& ev) = 0;
};

/// Human-readable single-line text sink.
class TextSink final : public Sink {
 public:
  explicit TextSink(std::ostream& os) : os_(os) {}
  void on_event(const Event& ev) override;

 private:
  std::ostream& os_;
};

/// Machine-readable CSV sink (header written on construction).
class CsvSink final : public Sink {
 public:
  explicit CsvSink(std::ostream& os);
  void on_event(const Event& ev) override;

 private:
  std::ostream& os_;
};

/// Counts events per category; cheap enough to leave attached in benches.
class CountingSink final : public Sink {
 public:
  void on_event(const Event& ev) override;
  [[nodiscard]] std::uint64_t count(Level kind) const noexcept;
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  void reset() noexcept;

 private:
  std::uint64_t counts_[32] = {};
  std::uint64_t total_ = 0;
};

/// Aggregates Latency events into a percentile-ready distribution.
/// Attach with the Latency level enabled; query at any point.
class LatencySink final : public Sink {
 public:
  void on_event(const Event& ev) override;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return samples_.size();
  }
  [[nodiscard]] std::uint64_t min() const noexcept;
  [[nodiscard]] std::uint64_t max() const noexcept;
  [[nodiscard]] double mean() const noexcept;
  /// q in [0,1]: nearest-rank percentile (q=0.5 median, 0.99 tail).
  [[nodiscard]] std::uint64_t percentile(double q) const;
  /// Batch percentile query: one result per requested q, computed from a
  /// single sort (the p50/p95/p99 report path).
  [[nodiscard]] std::vector<std::uint64_t> percentiles(
      std::span<const double> qs) const;
  void reset() noexcept {
    samples_.clear();
    sorted_ = true;
  }

 private:
  /// Sort the sample store in place once per batch of inserts: inserts
  /// mark the cache dirty, queries re-sort only when it is.
  void ensure_sorted() const;

  mutable std::vector<std::uint64_t> samples_;
  mutable bool sorted_ = true;
};

/// In-memory sink retaining every event (tests).
class VectorSink final : public Sink {
 public:
  void on_event(const Event& ev) override { events_.push_back(ev); }
  [[nodiscard]] const std::vector<Event>& events() const noexcept {
    return events_;
  }
  void clear() noexcept { events_.clear(); }

 private:
  std::vector<Event> events_;
};

class JourneyTracker;  // journey.hpp

/// Per-worker event buffer for the parallel core's deterministic capture
/// mode. While a Tracer is capturing, each worker thread buffers its
/// events here (keyed by cycle/stage/device rank) instead of dispatching
/// to sinks; Tracer::end_capture merges every buffer and replays the
/// events in exactly the order the sequential walk would have emitted
/// them. Buffers are plain storage — one per worker, never shared.
class CaptureBuf {
 public:
  [[nodiscard]] bool empty() const noexcept { return recs_.empty(); }
  void clear() noexcept { recs_.clear(); }

 private:
  friend class Tracer;
  struct Rec {
    std::uint64_t key;  ///< (cycle << 12) | (stage << 8) | device rank.
    Event ev;
  };
  std::vector<Rec> recs_;
};

/// Dispatcher: level mask + attached sinks. Sinks are borrowed, not owned —
/// the caller controls their lifetime (they typically outlive the sim).
class Tracer {
 public:
  void set_level(Level mask) noexcept { mask_ = mask; }
  [[nodiscard]] Level level() const noexcept { return mask_; }
  [[nodiscard]] bool enabled(Level kind) const noexcept {
    return any(mask_ & kind);
  }

  void attach(Sink* sink);
  void detach(Sink* sink);

  void emit(const Event& ev);

  /// Journey stamping plumbing: the Simulator owns the JourneyTracker and
  /// lends it to the pipeline stages through the tracer they already
  /// receive. Null (the default) means no journey can ever open.
  void set_journeys(JourneyTracker* journeys) noexcept {
    journeys_ = journeys;
  }
  [[nodiscard]] JourneyTracker* journeys() const noexcept {
    return journeys_;
  }
  /// True when a packet admitted now should open a journey record.
  [[nodiscard]] bool journeys_on() const noexcept {
    return journeys_ != nullptr && enabled(Level::Journey);
  }

  // ---- deterministic parallel capture -------------------------------------
  // The parallel core brackets each execution span with begin_capture /
  // end_capture. In between, every emitting thread must have bound a
  // CaptureBuf and keeps its (stage, device-rank) ordering hint current;
  // emit() then buffers instead of dispatching. end_capture stable-sorts
  // the union of all buffers by (cycle, stage, rank) — per-buffer append
  // order is the tiebreak within one (cycle, stage, device) bucket, and a
  // bucket never spans buffers because one device's stage runs on exactly
  // one worker — and replays through the sinks, reproducing the sequential
  // emission order byte for byte. Single-threaded runs never set
  // capturing_, so the only added hot-path cost is one predictable branch.

  /// Enter capture mode (coordinator, before releasing workers).
  void begin_capture() noexcept { capturing_ = true; }
  [[nodiscard]] bool capturing() const noexcept { return capturing_; }
  /// Leave capture mode, merge `bufs` and replay to sinks (coordinator,
  /// after all workers joined). Buffers come back cleared.
  void end_capture(std::span<CaptureBuf> bufs);
  /// Bind (or unbind, with nullptr) the calling thread's capture buffer.
  static void bind_capture(CaptureBuf* buf) noexcept;
  /// Set the calling thread's ordering hint: `stage` is the intra-cycle
  /// stage index (0 = responses, 1 = vaults, 2 = requests) and `rank` the
  /// device's position in that stage's sequential visit order (ascending
  /// device id for stages A/B, descending for stage C).
  static void set_capture_order(std::uint32_t stage,
                                std::uint32_t rank) noexcept;

 private:
  Level mask_ = Level::None;
  std::vector<Sink*> sinks_;
  JourneyTracker* journeys_ = nullptr;
  bool capturing_ = false;
};

}  // namespace hmcsim::trace
