// amo_unit.hpp — execution of the Gen2 atomic memory operations.
//
// Each AMO is a logic-layer read-modify-write against the vault's backing
// store. The unit is purely functional state-wise: it owns no storage and
// performs exactly one atomic transformation per call — atomicity is
// guaranteed by construction because a vault executes its queue serially
// within a simulator clock.
//
// Operand conventions (documented here because the public HMC spec leaves
// some payload layouts implicit):
//   * 2ADD8 family   payload[0], payload[1] are two independent 8-byte
//                    signed immediates added to mem[addr], mem[addr+8].
//   * ADD16 family   payload is one 128-bit immediate (little-endian word
//                    pair) added to the 128-bit memory operand with carry.
//   * Boolean 16B    mem = mem OP payload; original value returned.
//   * CAS*8          payload[0] = swap value, payload[1] = comparand;
//                    signed comparison for GT/LT. Original 8B returned in
//                    word 0; AF set when the swap occurred.
//   * CAS*16         the 128-bit payload serves as both comparand and swap
//                    value (the 2-FLIT request cannot carry 32 B); signed
//                    128-bit comparison. CASZERO16 compares memory to zero.
//   * EQ8/EQ16       no memory modification; AF = (memory == payload).
//   * BWR family     payload[0] = data, payload[1] = bit mask:
//                    mem = (mem & ~mask) | (data & mask).
//   * SWAP16         exchange memory and payload; original returned.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "common/status.hpp"
#include "mem/backing_store.hpp"
#include "spec/commands.hpp"

namespace hmcsim::amo {

/// Outcome of one atomic operation.
struct AmoResult {
  /// Original memory contents for ops "with return" (2-FLIT responses).
  std::array<std::uint64_t, 2> rsp_data{};
  /// Number of valid response data words (0 or 2).
  std::uint8_t rsp_words = 0;
  /// Response header AF bit: CAS swap performed / EQ comparison true.
  bool atomic_flag = false;
};

/// True if the AMO unit can execute this command.
[[nodiscard]] bool is_amo(spec::Rqst rqst) noexcept;

/// Execute one atomic. `payload` is the request data section (little-endian
/// 64-bit words); AMOs use at most two words. `addr` is the target base
/// address inside the cube. Fails on non-AMO commands or out-of-range
/// addresses; memory is unmodified on failure.
[[nodiscard]] Status execute(spec::Rqst rqst, mem::BackingStore& store,
                             std::uint64_t addr,
                             std::span<const std::uint64_t> payload,
                             AmoResult& out);

}  // namespace hmcsim::amo
