#include "amo/amo_unit.hpp"

namespace hmcsim::amo {
namespace {

using spec::Rqst;

/// Signed 128-bit comparison of little-endian word pairs.
/// Returns -1, 0, +1 for a < b, a == b, a > b.
int cmp_s128(const std::array<std::uint64_t, 2>& a,
             const std::array<std::uint64_t, 2>& b) noexcept {
  const auto ah = static_cast<std::int64_t>(a[1]);
  const auto bh = static_cast<std::int64_t>(b[1]);
  if (ah != bh) {
    return ah < bh ? -1 : 1;
  }
  if (a[0] != b[0]) {
    return a[0] < b[0] ? -1 : 1;
  }
  return 0;
}

/// 128-bit add with carry between the little-endian words.
std::array<std::uint64_t, 2> add_u128(
    const std::array<std::uint64_t, 2>& a,
    const std::array<std::uint64_t, 2>& b) noexcept {
  std::array<std::uint64_t, 2> r{};
  r[0] = a[0] + b[0];
  const std::uint64_t carry = r[0] < a[0] ? 1 : 0;
  r[1] = a[1] + b[1] + carry;
  return r;
}

std::uint64_t word(std::span<const std::uint64_t> payload,
                   std::size_t i) noexcept {
  return i < payload.size() ? payload[i] : 0;
}

}  // namespace

bool is_amo(spec::Rqst rqst) noexcept {
  const auto kind = spec::command_info(rqst).kind;
  return kind == spec::CommandKind::Atomic ||
         kind == spec::CommandKind::PostedAtomic;
}

Status execute(spec::Rqst rqst, mem::BackingStore& store, std::uint64_t addr,
               std::span<const std::uint64_t> payload, AmoResult& out) {
  out = AmoResult{};
  if (!is_amo(rqst)) {
    return Status::InvalidArg("not an atomic command: " +
                              std::string(spec::to_string(rqst)));
  }

  // All AMOs operate within one 16-byte DRAM access; read it up front so a
  // range error aborts before any modification.
  std::array<std::uint64_t, 2> mem{};
  if (Status s = store.read_u128(addr, mem); !s.ok()) {
    return s;
  }
  const std::array<std::uint64_t, 2> original = mem;
  const std::array<std::uint64_t, 2> imm{word(payload, 0), word(payload, 1)};

  bool write_back = true;
  switch (rqst) {
    case Rqst::TWOADD8:
    case Rqst::P_2ADD8:
    case Rqst::TWOADDS8R:
      mem[0] += imm[0];
      mem[1] += imm[1];
      break;

    case Rqst::ADD16:
    case Rqst::P_ADD16:
    case Rqst::ADDS16R:
      mem = add_u128(mem, imm);
      break;

    case Rqst::INC8:
    case Rqst::P_INC8:
      mem[0] += 1;
      break;

    case Rqst::XOR16:
      mem[0] ^= imm[0];
      mem[1] ^= imm[1];
      break;
    case Rqst::OR16:
      mem[0] |= imm[0];
      mem[1] |= imm[1];
      break;
    case Rqst::NOR16:
      mem[0] = ~(mem[0] | imm[0]);
      mem[1] = ~(mem[1] | imm[1]);
      break;
    case Rqst::AND16:
      mem[0] &= imm[0];
      mem[1] &= imm[1];
      break;
    case Rqst::NAND16:
      mem[0] = ~(mem[0] & imm[0]);
      mem[1] = ~(mem[1] & imm[1]);
      break;

    case Rqst::CASGT8:
      out.atomic_flag = static_cast<std::int64_t>(mem[0]) >
                        static_cast<std::int64_t>(imm[1]);
      write_back = out.atomic_flag;
      if (out.atomic_flag) {
        mem[0] = imm[0];
      }
      break;
    case Rqst::CASLT8:
      out.atomic_flag = static_cast<std::int64_t>(mem[0]) <
                        static_cast<std::int64_t>(imm[1]);
      write_back = out.atomic_flag;
      if (out.atomic_flag) {
        mem[0] = imm[0];
      }
      break;
    case Rqst::CASEQ8:
      out.atomic_flag = mem[0] == imm[1];
      write_back = out.atomic_flag;
      if (out.atomic_flag) {
        mem[0] = imm[0];
      }
      break;
    case Rqst::CASGT16:
      out.atomic_flag = cmp_s128(mem, imm) > 0;
      write_back = out.atomic_flag;
      if (out.atomic_flag) {
        mem = imm;
      }
      break;
    case Rqst::CASLT16:
      out.atomic_flag = cmp_s128(mem, imm) < 0;
      write_back = out.atomic_flag;
      if (out.atomic_flag) {
        mem = imm;
      }
      break;
    case Rqst::CASZERO16:
      out.atomic_flag = mem[0] == 0 && mem[1] == 0;
      write_back = out.atomic_flag;
      if (out.atomic_flag) {
        mem = imm;
      }
      break;

    case Rqst::EQ8:
      out.atomic_flag = mem[0] == imm[0];
      write_back = false;
      break;
    case Rqst::EQ16:
      out.atomic_flag = mem[0] == imm[0] && mem[1] == imm[1];
      write_back = false;
      break;

    case Rqst::BWR:
    case Rqst::P_BWR:
    case Rqst::BWR8R:
      mem[0] = (mem[0] & ~imm[1]) | (imm[0] & imm[1]);
      break;

    case Rqst::SWAP16:
      mem = imm;
      break;

    default:
      return Status::Internal("is_amo/execute disagree on " +
                              std::string(spec::to_string(rqst)));
  }

  if (write_back && mem != original) {
    if (Status s = store.write_u128(addr, mem); !s.ok()) {
      return s;
    }
  }

  // Ops with 2-FLIT responses return the original 16-byte memory operand.
  if (spec::command_info(rqst).rsp_flits == 2) {
    out.rsp_data = original;
    out.rsp_words = 2;
  }
  return Status::Ok();
}

}  // namespace hmcsim::amo
