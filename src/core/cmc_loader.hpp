// cmc_loader.hpp — dynamic loading of CMC shared libraries.
//
// The paper's hmc_load_cmc() path: dlopen the user's shared object, resolve
// the three required symbols with dlsym, then hand them to the registry.
// Libraries stay mapped for the lifetime of the loader (function pointers
// stored in the registry point into them) and are dlclose'd on destruction.
// Linux/UNIX only, per the paper's explicit platform decision.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"
#include "core/cmc_registry.hpp"

namespace hmcsim::cmc {

// Lifetime contract with CmcRegistry: load() stores raw function pointers
// into the registry that point into the dlopen'd image, and ~CmcLoader
// dlclose's every image — after which those registry slots dangle.
// Invoking (or even reading the name of) a registered CMC after its
// loader is destroyed is a use-after-unmap. Keep the loader alive as
// long as the registry is *used*; mere destruction order is forgiving
// only because ~CmcRegistry never calls through its slots (Simulator
// relies on this: its registry member precedes its loader member, so the
// loader unmaps first, but no CMC runs during teardown). Quarantined
// slots change none of this: quarantine deactivates lookup, not the
// registration — the slot still holds pointers into the image (rearm()
// resumes calling through them), so a quarantined plugin's library must
// stay mapped exactly as long as an executing one's.
class CmcLoader {
 public:
  CmcLoader() = default;
  ~CmcLoader();

  CmcLoader(const CmcLoader&) = delete;
  CmcLoader& operator=(const CmcLoader&) = delete;
  CmcLoader(CmcLoader&&) = delete;
  CmcLoader& operator=(CmcLoader&&) = delete;

  /// Load one CMC shared library and register its operation with
  /// `registry`. Fails (without leaking the handle) if the library cannot
  /// be opened, any of the three symbols is missing, or registration is
  /// rejected.
  [[nodiscard]] Status load(std::string_view path, CmcRegistry& registry);

  /// Number of libraries currently mapped.
  [[nodiscard]] std::size_t loaded_count() const noexcept {
    return handles_.size();
  }

  /// Paths of loaded libraries, in load order.
  [[nodiscard]] const std::vector<std::string>& paths() const noexcept {
    return paths_;
  }

 private:
  std::vector<void*> handles_;
  std::vector<std::string> paths_;
};

}  // namespace hmcsim::cmc
