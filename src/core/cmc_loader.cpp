#include "core/cmc_loader.hpp"

#include <dlfcn.h>

#include "common/log.hpp"

namespace hmcsim::cmc {
namespace {

std::string dl_error() {
  const char* err = dlerror();
  return err != nullptr ? std::string(err) : std::string("unknown dl error");
}

}  // namespace

CmcLoader::~CmcLoader() {
  for (void* handle : handles_) {
    dlclose(handle);
  }
}

Status CmcLoader::load(std::string_view path, CmcRegistry& registry) {
  const std::string path_str(path);
  dlerror();  // Clear any stale error state.
  void* handle = dlopen(path_str.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (handle == nullptr) {
    return Status::LoadError("dlopen(" + path_str + "): " + dl_error());
  }

  auto resolve = [&](const char* sym, void*& out) -> Status {
    dlerror();
    out = dlsym(handle, sym);
    if (out == nullptr) {
      return Status::LoadError("dlsym(" + path_str + ", " + sym +
                               "): " + dl_error());
    }
    return Status::Ok();
  };

  void* reg_sym = nullptr;
  void* exec_sym = nullptr;
  void* str_sym = nullptr;
  for (const auto& [name, slot] :
       {std::pair{HMCSIM_CMC_SYM_REGISTER, &reg_sym},
        std::pair{HMCSIM_CMC_SYM_EXECUTE, &exec_sym},
        std::pair{HMCSIM_CMC_SYM_STR, &str_sym}}) {
    if (Status s = resolve(name, *slot); !s.ok()) {
      dlclose(handle);
      return s;
    }
  }

  // ABI handshake: the version symbol is optional (libraries predating it
  // still load, with a warning), but when present it must match exactly.
  dlerror();
  if (void* abi_sym = dlsym(handle, HMCSIM_CMC_SYM_ABI_VERSION);
      abi_sym != nullptr) {
    const auto abi_fn = reinterpret_cast<hmcsim_cmc_abi_version_fn>(abi_sym);
    const std::uint32_t got = abi_fn();
    if (got != HMCSIM_CMC_ABI_VERSION) {
      dlclose(handle);
      return Status::LoadError(
          path_str + ": plugin ABI version " + std::to_string(got) +
          " does not match simulator ABI version " +
          std::to_string(HMCSIM_CMC_ABI_VERSION) +
          " (rebuild the plugin against the current cmc_api.h)");
    }
  } else {
    HMCSIM_LOG_WARN("cmc_loader",
                    path_str, ": no ", HMCSIM_CMC_SYM_ABI_VERSION,
                    " symbol; assuming legacy ABI version ",
                    HMCSIM_CMC_ABI_VERSION,
                    " (deprecated - add HMCSIM_CMC_DEFINE_ABI_VERSION() "
                    "and rebuild)");
  }

  // Function-pointer casts through reinterpret_cast are the sanctioned way
  // to consume dlsym results on POSIX platforms.
  const auto reg = reinterpret_cast<hmcsim_cmc_register_fn>(reg_sym);
  const auto exec = reinterpret_cast<hmcsim_cmc_execute_fn>(exec_sym);
  const auto str = reinterpret_cast<hmcsim_cmc_str_fn>(str_sym);

  if (Status s = registry.register_op(reg, exec, str, handles_.size());
      !s.ok()) {
    dlclose(handle);
    return s;
  }

  handles_.push_back(handle);
  paths_.push_back(path_str);
  return Status::Ok();
}

}  // namespace hmcsim::cmc
