// cmc_registry.hpp — the in-core half of the CMC architecture.
//
// The registry is the simulator-resident hmc_cmc_t table of the paper
// (Fig. 2): one slot per unused Gen2 command code (70 slots), each holding
// the registration data and the three function pointers resolved from the
// plugin. The registry knows nothing about how an operation works — it only
// validates registrations, answers lookups from the vault pipeline, and
// invokes the plugin's execute/str functions (Fig. 3).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>

#include "common/status.hpp"
#include "core/cmc_api.h"
#include "spec/commands.hpp"

namespace hmcsim::cmc {

/// One registered CMC operation — the paper's hmc_cmc_t.
struct CmcOp {
  bool active = false;
  spec::Rqst rqst = spec::Rqst::CMC04;  ///< Enumerated request type.
  std::uint32_t cmd = 0;                ///< Decimal command code (== rqst).
  std::uint32_t rqst_len = 0;           ///< Request length in FLITs (1..17).
  std::uint32_t rsp_len = 0;            ///< Response length in FLITs (0..17).
  spec::ResponseType rsp_cmd = spec::ResponseType::None;
  std::uint8_t rsp_cmd_code = 0;        ///< Wire code when rsp_cmd==RSP_CMC.
  std::string name;                     ///< Resolved via cmc_str.

  hmcsim_cmc_register_fn cmc_register = nullptr;
  hmcsim_cmc_execute_fn cmc_execute = nullptr;
  hmcsim_cmc_str_fn cmc_str = nullptr;

  /// Index of the owning dynamic library in the loader (SIZE_MAX: static
  /// registration, no library to unload).
  std::size_t library = SIZE_MAX;

  /// Wire command code the response packet will carry.
  [[nodiscard]] std::uint8_t response_code() const noexcept {
    return rsp_cmd == spec::ResponseType::RSP_CMC
               ? rsp_cmd_code
               : static_cast<std::uint8_t>(rsp_cmd);
  }
  /// True when the operation is posted (no response packet).
  [[nodiscard]] bool posted() const noexcept {
    return rsp_len == 0 || rsp_cmd == spec::ResponseType::None;
  }
};

/// Result of executing a CMC operation in the vault pipeline.
struct CmcExecResult {
  std::array<std::uint64_t, 32> rsp_payload{};  ///< Up to 16 data FLITs.
  std::uint32_t rsp_words = 0;  ///< Valid words (2 per data FLIT).
  bool atomic_flag = false;     ///< AF bit requested via hmcsim_cmc_set_af.
};

/// The opaque `void *hmc` context handed to plugin execute functions.
///
/// Plugins cross a C ABI, so the context exposes type-erased services
/// instead of C++ types: the registry passes a pointer to this struct and
/// the C service functions (hmcsim_cmc_mem_read/write, hmcsim_cmc_set_af)
/// cast it back. `user` belongs to whoever constructed the context — the
/// simulator sets it to itself and supplies callbacks that reach its
/// devices' backing stores.
struct CmcContext {
  void* user = nullptr;
  Status (*mem_read)(void* user, std::uint32_t dev, std::uint64_t addr,
                     std::uint64_t* data, std::uint32_t nwords) = nullptr;
  Status (*mem_write)(void* user, std::uint32_t dev, std::uint64_t addr,
                      const std::uint64_t* data,
                      std::uint32_t nwords) = nullptr;
  /// Optional: receives plugin trace annotations (hmcsim_cmc_trace).
  void (*trace)(void* user, const char* msg) = nullptr;
  /// Execution-scoped: the result record for the in-flight CMC call.
  /// Managed by CmcRegistry::execute; null outside an execute call.
  CmcExecResult* current = nullptr;
};

class CmcRegistry {
 public:
  CmcRegistry();

  /// Register an operation from its three function pointers. This is the
  /// common tail of both the dlopen path (loader resolves symbols first)
  /// and the static path (caller passes compiled-in functions). Runs the
  /// plugin's cmc_register, validates every field, resolves the name via
  /// cmc_str, and activates the slot.
  [[nodiscard]] Status register_op(hmcsim_cmc_register_fn reg,
                                   hmcsim_cmc_execute_fn exec,
                                   hmcsim_cmc_str_fn str,
                                   std::size_t library = SIZE_MAX);

  /// Deactivate the slot holding `rqst`. Fails if not active.
  [[nodiscard]] Status unregister_op(spec::Rqst rqst);

  /// Look up the active operation for a raw command code; nullptr when the
  /// code is not a CMC slot or the slot is inactive.
  [[nodiscard]] const CmcOp* lookup(std::uint8_t cmd) const noexcept;

  /// Look up by enumerated command (active slots only).
  [[nodiscard]] const CmcOp* lookup(spec::Rqst rqst) const noexcept;

  /// Execute the active operation for `cmd`, wiring `ctx->current` to `out`
  /// for the duration of the plugin call. Mirrors the paper's processing
  /// flow (Fig. 3): inactive command -> error; plugin failure -> CmcError.
  [[nodiscard]] Status execute(std::uint8_t cmd, CmcContext& ctx,
                               std::uint32_t dev, std::uint32_t quad,
                               std::uint32_t vault, std::uint32_t bank,
                               std::uint64_t addr, std::uint32_t length,
                               std::uint64_t head, std::uint64_t tail,
                               std::span<std::uint64_t> rqst_payload,
                               CmcExecResult& out) const;

  /// Number of active operations. O(1): maintained on register/unregister
  /// (polled every device clock for the CmcActive register).
  [[nodiscard]] std::size_t active_count() const noexcept { return active_; }

  /// All 70 slots in ascending command-code order (introspection; the
  /// Table V bench prints from here).
  [[nodiscard]] std::span<const CmcOp> slots() const noexcept {
    return slots_;
  }

  /// Remove every registration.
  void clear();

 private:
  [[nodiscard]] std::optional<std::size_t> slot_index(
      std::uint8_t cmd) const noexcept;

  // One slot per CMC command code, dense; slot_for_code_ maps a raw 7-bit
  // code to its slot (0xFF for non-CMC codes).
  std::array<CmcOp, spec::kNumCmcCodes> slots_{};
  std::array<std::uint8_t, 128> slot_for_code_{};
  std::size_t active_ = 0;
};

}  // namespace hmcsim::cmc
