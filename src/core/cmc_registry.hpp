// cmc_registry.hpp — the in-core half of the CMC architecture.
//
// The registry is the simulator-resident hmc_cmc_t table of the paper
// (Fig. 2): one slot per unused Gen2 command code (70 slots), each holding
// the registration data and the three function pointers resolved from the
// plugin. The registry knows nothing about how an operation works — it only
// validates registrations, answers lookups from the vault pipeline, and
// invokes the plugin's execute/str functions (Fig. 3).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>

#include "common/status.hpp"
#include "core/cmc_api.h"
#include "spec/commands.hpp"

namespace hmcsim::metrics {
class Counter;
class Gauge;
class StatRegistry;
}  // namespace hmcsim::metrics

namespace hmcsim::cmc {

/// One registered CMC operation — the paper's hmc_cmc_t.
struct CmcOp {
  bool active = false;
  bool quarantined = false;  ///< Failed too often; lookups skip the slot.
  spec::Rqst rqst = spec::Rqst::CMC04;  ///< Enumerated request type.
  std::uint32_t cmd = 0;                ///< Decimal command code (== rqst).
  std::uint32_t rqst_len = 0;           ///< Request length in FLITs (1..17).
  std::uint32_t rsp_len = 0;            ///< Response length in FLITs (0..17).
  spec::ResponseType rsp_cmd = spec::ResponseType::None;
  std::uint8_t rsp_cmd_code = 0;        ///< Wire code when rsp_cmd==RSP_CMC.
  std::string name;                     ///< Resolved via cmc_str.

  hmcsim_cmc_register_fn cmc_register = nullptr;
  hmcsim_cmc_execute_fn cmc_execute = nullptr;
  hmcsim_cmc_str_fn cmc_str = nullptr;

  /// Index of the owning dynamic library in the loader (SIZE_MAX: static
  /// registration, no library to unload).
  std::size_t library = SIZE_MAX;

  /// Fault-containment state: failures since the last success. Reaching
  /// FaultPolicy::fail_threshold quarantines the slot.
  std::uint32_t consecutive_failures = 0;

  /// Per-op fault metrics (null until attach_metrics wires a registry).
  metrics::Counter* failures = nullptr;
  metrics::Counter* guard_violations = nullptr;
  metrics::Counter* mem_words_read = nullptr;
  metrics::Counter* mem_words_written = nullptr;
  metrics::Gauge* quarantined_gauge = nullptr;

  /// Wire command code the response packet will carry.
  [[nodiscard]] std::uint8_t response_code() const noexcept {
    return rsp_cmd == spec::ResponseType::RSP_CMC
               ? rsp_cmd_code
               : static_cast<std::uint8_t>(rsp_cmd);
  }
  /// True when the operation is posted (no response packet).
  [[nodiscard]] bool posted() const noexcept {
    return rsp_len == 0 || rsp_cmd == spec::ResponseType::None;
  }
};

/// Result of executing a CMC operation in the vault pipeline.
struct CmcExecResult {
  std::array<std::uint64_t, 32> rsp_payload{};  ///< Up to 16 data FLITs.
  std::uint32_t rsp_words = 0;  ///< Valid words (2 per data FLIT).
  bool atomic_flag = false;     ///< AF bit requested via hmcsim_cmc_set_af.
};

/// Guard policy applied to every plugin execute call.
struct FaultPolicy {
  /// Consecutive failures before a slot is quarantined (0: never).
  std::uint32_t fail_threshold = 8;
  /// 64-bit words one execute call may move through the mem services
  /// (reads + writes combined; 0: unlimited).
  std::uint32_t mem_word_budget = 65536;
};

/// Per-execute-call guard state, wired into the context for the duration
/// of one plugin call. The mem trampolines account and police against it;
/// the registry inspects it afterwards and forces the call to fail when a
/// violation was flagged — even if the plugin itself returned 0.
struct CmcCallState {
  std::uint64_t words_read = 0;
  std::uint64_t words_written = 0;
  std::uint64_t budget_left = 0;    ///< Remaining words; ignored if !budgeted.
  bool budgeted = false;
  /// A mem_read hit an uncorrectable ECC error: the plugin got EPOISON and
  /// a zeroed buffer; the call completes as Poisoned (DINV at the vault),
  /// not as a plugin failure — no quarantine strike.
  bool poisoned = false;
  const char* violation = nullptr;  ///< Static-lifetime description.
};

/// The opaque `void *hmc` context handed to plugin execute functions.
///
/// Plugins cross a C ABI, so the context exposes type-erased services
/// instead of C++ types: the registry passes a pointer to this struct and
/// the C service functions (hmcsim_cmc_mem_read/write, hmcsim_cmc_set_af)
/// cast it back. `user` belongs to whoever constructed the context — the
/// simulator sets it to itself and supplies callbacks that reach its
/// devices' backing stores.
struct CmcContext {
  void* user = nullptr;
  Status (*mem_read)(void* user, std::uint32_t dev, std::uint64_t addr,
                     std::uint64_t* data, std::uint32_t nwords) = nullptr;
  Status (*mem_write)(void* user, std::uint32_t dev, std::uint64_t addr,
                      const std::uint64_t* data,
                      std::uint32_t nwords) = nullptr;
  /// Optional: receives plugin trace annotations (hmcsim_cmc_trace).
  void (*trace)(void* user, const char* msg) = nullptr;
  /// Optional: receives fault-containment events (guard violations,
  /// failures crossing the quarantine threshold). `op` is the operation
  /// name (registry-owned), `what` a static or call-scoped description.
  void (*fault)(void* user, const char* op, const char* what) = nullptr;
  /// Execution-scoped: the result record for the in-flight CMC call.
  /// Managed by CmcRegistry::execute; null outside an execute call.
  CmcExecResult* current = nullptr;
  /// Execution-scoped: guard accounting for the in-flight call. Managed
  /// by CmcRegistry::execute; null outside an execute call.
  CmcCallState* call = nullptr;
};

class CmcRegistry {
 public:
  CmcRegistry();

  /// Register an operation from its three function pointers. This is the
  /// common tail of both the dlopen path (loader resolves symbols first)
  /// and the static path (caller passes compiled-in functions). Runs the
  /// plugin's cmc_register, validates every field, resolves the name via
  /// cmc_str, and activates the slot.
  [[nodiscard]] Status register_op(hmcsim_cmc_register_fn reg,
                                   hmcsim_cmc_execute_fn exec,
                                   hmcsim_cmc_str_fn str,
                                   std::size_t library = SIZE_MAX);

  /// Deactivate the slot holding `rqst`. Fails if not active.
  [[nodiscard]] Status unregister_op(spec::Rqst rqst);

  /// Look up the active operation for a raw command code; nullptr when the
  /// code is not a CMC slot, the slot is inactive, or the slot is
  /// quarantined (quarantined commands take the vault's fast
  /// errstat_cmc_inactive error path).
  [[nodiscard]] const CmcOp* lookup(std::uint8_t cmd) const noexcept;

  /// Look up by enumerated command (active, non-quarantined slots only).
  [[nodiscard]] const CmcOp* lookup(spec::Rqst rqst) const noexcept;

  /// Look up ignoring quarantine: any registered slot, quarantined or
  /// not. Hosts use this to keep building packets for a quarantined
  /// command (they are answered with RSP_ERROR/errstat_cmc_inactive).
  [[nodiscard]] const CmcOp* lookup_registered(
      std::uint8_t cmd) const noexcept;
  [[nodiscard]] const CmcOp* lookup_registered(
      spec::Rqst rqst) const noexcept;

  /// Execute the active operation for `cmd`, wiring `ctx->current` to
  /// `out` and `ctx->call` to fresh guard state for the duration of the
  /// plugin call. Mirrors the paper's processing flow (Fig. 3) behind a
  /// containment guard: inactive/quarantined command -> NotFound; a
  /// nonzero plugin return, an exception escaping the C ABI, a response
  /// payload overrun or a trampoline-flagged violation -> CmcError (and
  /// one consecutive-failure strike; FaultPolicy::fail_threshold strikes
  /// quarantine the slot). Never lets a plugin failure propagate.
  [[nodiscard]] Status execute(std::uint8_t cmd, CmcContext& ctx,
                               std::uint32_t dev, std::uint32_t quad,
                               std::uint32_t vault, std::uint32_t bank,
                               std::uint64_t addr, std::uint32_t length,
                               std::uint64_t head, std::uint64_t tail,
                               std::span<std::uint64_t> rqst_payload,
                               CmcExecResult& out);

  /// Lift a quarantine: reactivate the slot and zero its failure streak.
  /// NotFound when the command is not registered; InvalidState when it is
  /// not quarantined.
  [[nodiscard]] Status rearm(spec::Rqst rqst);

  /// Replace the guard policy (applies to subsequent execute calls).
  void set_fault_policy(const FaultPolicy& policy) noexcept {
    policy_ = policy;
  }
  [[nodiscard]] const FaultPolicy& fault_policy() const noexcept {
    return policy_;
  }

  /// Wire per-op fault metrics (cmc.<name>.failures, .guard_violations,
  /// .mem_words_read/.mem_words_written, .quarantined) into `registry`.
  /// Handles are created for already-registered ops and for every later
  /// registration; pass-before-register is therefore preferred but not
  /// required. Call at most once; the registry must outlive this object.
  void attach_metrics(metrics::StatRegistry& registry);

  /// Number of active operations. O(1): maintained on register/unregister
  /// (polled every device clock for the CmcActive register).
  [[nodiscard]] std::size_t active_count() const noexcept { return active_; }

  /// All 70 slots in ascending command-code order (introspection; the
  /// Table V bench prints from here).
  [[nodiscard]] std::span<const CmcOp> slots() const noexcept {
    return slots_;
  }

  /// Remove every registration.
  void clear();

 private:
  [[nodiscard]] std::optional<std::size_t> slot_index(
      std::uint8_t cmd) const noexcept;

  /// Create (or refresh) the fault-metric handles of one slot.
  void attach_slot_metrics(CmcOp& slot);

  /// Record one failed execute against `slot`: bump counters, advance the
  /// failure streak, quarantine at the policy threshold. `what` is a
  /// short static-lifetime description surfaced via ctx.fault.
  void note_failure(CmcOp& slot, CmcContext& ctx, const char* what,
                    bool violation);

  // One slot per CMC command code, dense; slot_for_code_ maps a raw 7-bit
  // code to its slot (0xFF for non-CMC codes).
  std::array<CmcOp, spec::kNumCmcCodes> slots_{};
  std::array<std::uint8_t, 128> slot_for_code_{};
  std::size_t active_ = 0;
  FaultPolicy policy_{};
  metrics::StatRegistry* metrics_ = nullptr;
};

}  // namespace hmcsim::cmc
