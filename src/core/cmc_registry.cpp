#include "core/cmc_registry.hpp"

#include <cctype>

#include "metrics/stat_registry.hpp"
#include "spec/flit.hpp"

namespace hmcsim::cmc {
namespace {

// Pattern written into the unused tail of rsp_payload before every plugin
// call; a changed word afterwards convicts the plugin of writing past its
// registered response length. (A plugin with rsp_len == 17 owns all 32
// words, leaving no canary slots — such overruns are caught only by the
// address sanitizer in the CI sanitize job.)
constexpr std::uint64_t kPayloadCanary = 0xC3C35AFEDEADBEEFULL;

bool valid_metric_name(const std::string& name) {
  if (name.empty()) {
    return false;
  }
  for (const char c : name) {
    const auto uc = static_cast<unsigned char>(c);
    // Printable, no whitespace, and no '.' (the metric path separator):
    // the name becomes a path segment of cmc.<name>.* and appears
    // verbatim in traces and reports.
    if (std::isprint(uc) == 0 || std::isspace(uc) != 0 || c == '.') {
      return false;
    }
  }
  return true;
}

}  // namespace

CmcRegistry::CmcRegistry() {
  slot_for_code_.fill(0xFF);
  const auto cmcs = spec::all_cmc_commands();
  for (std::size_t i = 0; i < cmcs.size(); ++i) {
    slots_[i].rqst = cmcs[i];
    slots_[i].cmd = static_cast<std::uint32_t>(cmcs[i]);
    slot_for_code_[static_cast<std::uint8_t>(cmcs[i])] =
        static_cast<std::uint8_t>(i);
  }
}

std::optional<std::size_t> CmcRegistry::slot_index(
    std::uint8_t cmd) const noexcept {
  if (cmd >= slot_for_code_.size() || slot_for_code_[cmd] == 0xFF) {
    return std::nullopt;
  }
  return slot_for_code_[cmd];
}

Status CmcRegistry::register_op(hmcsim_cmc_register_fn reg,
                                hmcsim_cmc_execute_fn exec,
                                hmcsim_cmc_str_fn str, std::size_t library) {
  if (reg == nullptr || exec == nullptr || str == nullptr) {
    return Status::InvalidArg("CMC registration requires all three symbols");
  }

  // Interrogate the plugin (the paper's "final stage of the registration
  // process resolves the data members of the respective CMC operation").
  hmc_rqst_t rqst = HMC_CMC04;
  std::uint32_t cmd = 0;
  std::uint32_t rqst_len = 0;
  std::uint32_t rsp_len = 0;
  hmc_response_t rsp_cmd = HMC_RSP_NONE;
  std::uint8_t rsp_cmd_code = 0;
  if (reg(&rqst, &cmd, &rqst_len, &rsp_len, &rsp_cmd, &rsp_cmd_code) != 0) {
    return Status::CmcError("plugin cmc_register reported failure");
  }

  if (cmd != static_cast<std::uint32_t>(rqst)) {
    return Status::InvalidArg("CMC cmd field (" + std::to_string(cmd) +
                              ") does not match rqst enum (" +
                              std::to_string(static_cast<int>(rqst)) + ")");
  }
  if (cmd > 127 || !spec::is_cmc(static_cast<spec::Rqst>(cmd))) {
    return Status::InvalidArg("command code " + std::to_string(cmd) +
                              " is not an unused Gen2 (CMC) code");
  }
  if (rqst_len < 1 || rqst_len > spec::kMaxPacketFlits) {
    return Status::InvalidArg("CMC request length out of range: " +
                              std::to_string(rqst_len));
  }
  if (rsp_len > spec::kMaxPacketFlits) {
    return Status::InvalidArg("CMC response length out of range: " +
                              std::to_string(rsp_len));
  }
  const bool posted = rsp_cmd == HMC_RSP_NONE;
  if (posted != (rsp_len == 0)) {
    return Status::InvalidArg(
        "CMC response length and response command disagree on posted-ness");
  }

  const auto idx = slot_index(static_cast<std::uint8_t>(cmd));
  CmcOp& slot = slots_[*idx];
  if (slot.active) {
    return Status::AlreadyExists("CMC slot " + std::to_string(cmd) +
                                 " already holds operation '" + slot.name +
                                 "'");
  }

  // Resolve the name defensively: the plugin sees a pre-filled,
  // fixed-size buffer and whatever it leaves there is force-terminated
  // at the last byte, so even a cmc_str that writes garbage (or nothing)
  // yields a bounded C string.
  char name_buf[HMCSIM_CMC_STR_MAX] = {};
  str(name_buf);
  name_buf[HMCSIM_CMC_STR_MAX - 1] = '\0';
  std::string name(name_buf);
  if (!valid_metric_name(name)) {
    return Status::InvalidArg(
        "CMC slot " + std::to_string(cmd) +
        ": cmc_str produced an empty or non-printable name");
  }

  slot.active = true;
  ++active_;
  slot.rqst = static_cast<spec::Rqst>(cmd);
  slot.cmd = cmd;
  slot.rqst_len = rqst_len;
  slot.rsp_len = rsp_len;
  slot.rsp_cmd = static_cast<spec::ResponseType>(rsp_cmd);
  slot.rsp_cmd_code = rsp_cmd_code;
  slot.name = std::move(name);
  slot.cmc_register = reg;
  slot.cmc_execute = exec;
  slot.cmc_str = str;
  slot.library = library;
  slot.quarantined = false;
  slot.consecutive_failures = 0;
  if (metrics_ != nullptr) {
    attach_slot_metrics(slot);
  }
  return Status::Ok();
}

Status CmcRegistry::unregister_op(spec::Rqst rqst) {
  const auto idx = slot_index(static_cast<std::uint8_t>(rqst));
  if (!idx.has_value()) {
    return Status::InvalidArg("not a CMC command code");
  }
  CmcOp& slot = slots_[*idx];
  if (!slot.active) {
    return Status::NotFound("CMC slot not active");
  }
  if (slot.quarantined_gauge != nullptr) {
    slot.quarantined_gauge->set(0.0);
  }
  const spec::Rqst keep_rqst = slot.rqst;
  const std::uint32_t keep_cmd = slot.cmd;
  slot = CmcOp{};
  slot.rqst = keep_rqst;
  slot.cmd = keep_cmd;
  --active_;
  return Status::Ok();
}

const CmcOp* CmcRegistry::lookup(std::uint8_t cmd) const noexcept {
  const auto idx = slot_index(cmd);
  if (!idx.has_value() || !slots_[*idx].active || slots_[*idx].quarantined) {
    return nullptr;
  }
  return &slots_[*idx];
}

const CmcOp* CmcRegistry::lookup(spec::Rqst rqst) const noexcept {
  return lookup(static_cast<std::uint8_t>(rqst));
}

const CmcOp* CmcRegistry::lookup_registered(std::uint8_t cmd) const noexcept {
  const auto idx = slot_index(cmd);
  if (!idx.has_value() || !slots_[*idx].active) {
    return nullptr;
  }
  return &slots_[*idx];
}

const CmcOp* CmcRegistry::lookup_registered(spec::Rqst rqst) const noexcept {
  return lookup_registered(static_cast<std::uint8_t>(rqst));
}

void CmcRegistry::attach_metrics(metrics::StatRegistry& registry) {
  metrics_ = &registry;
  for (CmcOp& slot : slots_) {
    if (slot.active) {
      attach_slot_metrics(slot);
    }
  }
}

void CmcRegistry::attach_slot_metrics(CmcOp& slot) {
  const std::string prefix = "cmc." + slot.name;
  slot.failures = &metrics_->counter(
      prefix + ".failures", "execute calls that failed (any cause)");
  slot.guard_violations = &metrics_->counter(
      prefix + ".guard_violations",
      "containment-guard trips: exception, payload overrun, bad mem call");
  slot.mem_words_read = &metrics_->counter(
      prefix + ".mem_words_read", "64-bit words read via hmcsim_cmc_mem_read");
  slot.mem_words_written =
      &metrics_->counter(prefix + ".mem_words_written",
                         "64-bit words written via hmcsim_cmc_mem_write");
  slot.quarantined_gauge = &metrics_->gauge(
      prefix + ".quarantined", "1 while the slot is quarantined");
  slot.quarantined_gauge->set(slot.quarantined ? 1.0 : 0.0);
}

void CmcRegistry::note_failure(CmcOp& slot, CmcContext& ctx, const char* what,
                               bool violation) {
  if (slot.failures != nullptr) {
    slot.failures->inc();
  }
  if (violation && slot.guard_violations != nullptr) {
    slot.guard_violations->inc();
  }
  if (violation && ctx.fault != nullptr) {
    ctx.fault(ctx.user, slot.name.c_str(), what);
  }
  ++slot.consecutive_failures;
  if (policy_.fail_threshold != 0 && !slot.quarantined &&
      slot.consecutive_failures >= policy_.fail_threshold) {
    slot.quarantined = true;
    if (slot.quarantined_gauge != nullptr) {
      slot.quarantined_gauge->set(1.0);
    }
    if (ctx.fault != nullptr) {
      ctx.fault(ctx.user, slot.name.c_str(),
                "quarantined: consecutive failure threshold reached");
    }
  }
}

Status CmcRegistry::execute(std::uint8_t cmd, CmcContext& ctx,
                            std::uint32_t dev, std::uint32_t quad,
                            std::uint32_t vault, std::uint32_t bank,
                            std::uint64_t addr, std::uint32_t length,
                            std::uint64_t head, std::uint64_t tail,
                            std::span<std::uint64_t> rqst_payload,
                            CmcExecResult& out) {
  const auto idx = slot_index(cmd);
  if (!idx.has_value() || !slots_[*idx].active || slots_[*idx].quarantined) {
    // The paper: "If the command is not marked as active, an error is
    // returned." Quarantined slots answer the same way.
    return Status::NotFound("CMC command " + std::to_string(cmd) +
                            " is not active");
  }
  CmcOp& op = slots_[*idx];

  out = CmcExecResult{};
  const std::uint32_t expect_words =
      op.rsp_len > 0 ? 2 * (op.rsp_len - 1) : 0;
  out.rsp_words = expect_words;
  for (std::size_t i = expect_words; i < out.rsp_payload.size(); ++i) {
    out.rsp_payload[i] = kPayloadCanary;
  }

  CmcCallState call{};
  call.budgeted = policy_.mem_word_budget != 0;
  call.budget_left = policy_.mem_word_budget;
  ctx.current = &out;
  ctx.call = &call;
  int rc = 0;
  bool threw = false;
  // The guard proper: a C ABI must not leak C++ exceptions, but a plugin
  // compiled as C++ can throw one anyway — catch everything and convert
  // it into an ordinary execute failure.
  try {
    rc = op.cmc_execute(&ctx, dev, quad, vault, bank, addr, length, head,
                        tail, rqst_payload.data(), out.rsp_payload.data());
  } catch (...) {
    threw = true;
  }
  ctx.current = nullptr;
  ctx.call = nullptr;

  if (op.mem_words_read != nullptr && call.words_read != 0) {
    op.mem_words_read->inc(call.words_read);
  }
  if (op.mem_words_written != nullptr && call.words_written != 0) {
    op.mem_words_written->inc(call.words_written);
  }

  // Violation checks, in guard order (DESIGN.md §8): exception first,
  // then trampoline-flagged misuse, then response-payload integrity.
  const char* violation = nullptr;
  if (threw) {
    violation = "exception escaped the plugin's C ABI";
  } else if (call.violation != nullptr) {
    violation = call.violation;
  } else if (out.rsp_words != expect_words) {
    violation = "plugin altered the response word count";
  } else {
    for (std::size_t i = expect_words; i < out.rsp_payload.size(); ++i) {
      if (out.rsp_payload[i] != kPayloadCanary) {
        violation = "plugin overran its registered rsp_payload length";
        break;
      }
    }
  }

  if (violation != nullptr) {
    note_failure(op, ctx, violation, /*violation=*/true);
    // Never hand a tainted payload to the vault.
    out = CmcExecResult{};
    return Status::CmcError("CMC '" + op.name + "': " + violation);
  }
  if (call.poisoned) {
    // ECC poison is the memory's fault, not the plugin's: no quarantine
    // strike, and the result is dropped so tainted derivations can never
    // reach the host — it sees an RSP_ERROR with the DINV errstat.
    out = CmcExecResult{};
    return Status::Poisoned("CMC '" + op.name +
                            "' consumed poisoned data");
  }
  if (rc != 0) {
    note_failure(op, ctx, "execute returned nonzero", /*violation=*/false);
    out = CmcExecResult{};
    return Status::CmcError("CMC '" + op.name + "' execute returned " +
                            std::to_string(rc));
  }
  op.consecutive_failures = 0;
  return Status::Ok();
}

Status CmcRegistry::rearm(spec::Rqst rqst) {
  const auto idx = slot_index(static_cast<std::uint8_t>(rqst));
  if (!idx.has_value()) {
    return Status::InvalidArg("not a CMC command code");
  }
  CmcOp& slot = slots_[*idx];
  if (!slot.active) {
    return Status::NotFound("CMC slot not active");
  }
  if (!slot.quarantined) {
    return Status::InvalidState("CMC slot '" + slot.name +
                                "' is not quarantined");
  }
  slot.quarantined = false;
  slot.consecutive_failures = 0;
  if (slot.quarantined_gauge != nullptr) {
    slot.quarantined_gauge->set(0.0);
  }
  return Status::Ok();
}

void CmcRegistry::clear() {
  for (CmcOp& slot : slots_) {
    if (slot.quarantined_gauge != nullptr) {
      slot.quarantined_gauge->set(0.0);
    }
    const spec::Rqst rqst = slot.rqst;
    const std::uint32_t cmd = slot.cmd;
    slot = CmcOp{};
    slot.rqst = rqst;
    slot.cmd = cmd;
  }
  active_ = 0;
}

}  // namespace hmcsim::cmc

// ---- C services callable from plugin execute functions --------------------

namespace {

/// Flag a guard violation against the in-flight call (no-op when the
/// context has no call state wired, e.g. direct trampoline unit tests).
void flag_violation(hmcsim::cmc::CmcContext* ctx, const char* what) {
  if (ctx->call != nullptr && ctx->call->violation == nullptr) {
    ctx->call->violation = what;
  }
}

/// Common argument/bounds/budget policing for both mem services. Returns
/// HMCSIM_CMC_OK when the access may proceed (and charges the budget).
int police_mem_access(hmcsim::cmc::CmcContext* ctx, const void* data,
                      std::uint32_t nwords, const char* oversized_what,
                      const char* budget_what) {
  if (data == nullptr || nwords == 0) {
    flag_violation(ctx, "mem access with null data or zero nwords");
    return HMCSIM_CMC_EINVAL;
  }
  if (nwords > HMCSIM_CMC_MEM_MAX_WORDS) {
    flag_violation(ctx, oversized_what);
    return HMCSIM_CMC_EINVAL;
  }
  if (ctx->call != nullptr && ctx->call->budgeted) {
    if (nwords > ctx->call->budget_left) {
      flag_violation(ctx, budget_what);
      return HMCSIM_CMC_EBUDGET;
    }
    ctx->call->budget_left -= nwords;
  }
  return HMCSIM_CMC_OK;
}

}  // namespace

extern "C" int hmcsim_cmc_mem_read(void* hmc, std::uint32_t dev,
                                   std::uint64_t addr, std::uint64_t* data,
                                   std::uint32_t nwords) {
  if (hmc == nullptr) {
    return HMCSIM_CMC_EINVAL;
  }
  auto* ctx = static_cast<hmcsim::cmc::CmcContext*>(hmc);
  if (const int rc = police_mem_access(
          ctx, data, nwords, "mem_read larger than HMCSIM_CMC_MEM_MAX_WORDS",
          "mem_read exceeded the per-call word budget");
      rc != HMCSIM_CMC_OK) {
    return rc;
  }
  if (ctx->mem_read == nullptr) {
    return HMCSIM_CMC_ENOSVC;
  }
  if (ctx->call != nullptr) {
    ctx->call->words_read += nwords;
  }
  const hmcsim::Status s = ctx->mem_read(ctx->user, dev, addr, data, nwords);
  if (s.ok()) {
    return HMCSIM_CMC_OK;
  }
  if (s.code() == hmcsim::StatusCode::Poisoned) {
    if (ctx->call != nullptr) {
      ctx->call->poisoned = true;
    }
    return HMCSIM_CMC_EPOISON;
  }
  return HMCSIM_CMC_EFAULT;
}

extern "C" int hmcsim_cmc_mem_write(void* hmc, std::uint32_t dev,
                                    std::uint64_t addr,
                                    const std::uint64_t* data,
                                    std::uint32_t nwords) {
  if (hmc == nullptr) {
    return HMCSIM_CMC_EINVAL;
  }
  auto* ctx = static_cast<hmcsim::cmc::CmcContext*>(hmc);
  if (const int rc = police_mem_access(
          ctx, data, nwords, "mem_write larger than HMCSIM_CMC_MEM_MAX_WORDS",
          "mem_write exceeded the per-call word budget");
      rc != HMCSIM_CMC_OK) {
    return rc;
  }
  if (ctx->mem_write == nullptr) {
    return HMCSIM_CMC_ENOSVC;
  }
  if (ctx->call != nullptr) {
    ctx->call->words_written += nwords;
  }
  return ctx->mem_write(ctx->user, dev, addr, data, nwords).ok()
             ? HMCSIM_CMC_OK
             : HMCSIM_CMC_EFAULT;
}

extern "C" int hmcsim_cmc_set_af(void* hmc, int af) {
  if (hmc == nullptr) {
    return HMCSIM_CMC_EINVAL;
  }
  auto* ctx = static_cast<hmcsim::cmc::CmcContext*>(hmc);
  if (ctx->current == nullptr) {
    return HMCSIM_CMC_ENOCALL;
  }
  ctx->current->atomic_flag = af != 0;
  return HMCSIM_CMC_OK;
}

extern "C" int hmcsim_cmc_trace(void* hmc, const char* msg) {
  if (hmc == nullptr || msg == nullptr) {
    return HMCSIM_CMC_EINVAL;
  }
  auto* ctx = static_cast<hmcsim::cmc::CmcContext*>(hmc);
  if (ctx->trace == nullptr) {
    return HMCSIM_CMC_OK;  // Tracing not wired: annotations are droppable.
  }
  ctx->trace(ctx->user, msg);
  return HMCSIM_CMC_OK;
}
