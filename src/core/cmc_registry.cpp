#include "core/cmc_registry.hpp"

#include "spec/flit.hpp"

namespace hmcsim::cmc {

CmcRegistry::CmcRegistry() {
  slot_for_code_.fill(0xFF);
  const auto cmcs = spec::all_cmc_commands();
  for (std::size_t i = 0; i < cmcs.size(); ++i) {
    slots_[i].rqst = cmcs[i];
    slots_[i].cmd = static_cast<std::uint32_t>(cmcs[i]);
    slot_for_code_[static_cast<std::uint8_t>(cmcs[i])] =
        static_cast<std::uint8_t>(i);
  }
}

std::optional<std::size_t> CmcRegistry::slot_index(
    std::uint8_t cmd) const noexcept {
  if (cmd >= slot_for_code_.size() || slot_for_code_[cmd] == 0xFF) {
    return std::nullopt;
  }
  return slot_for_code_[cmd];
}

Status CmcRegistry::register_op(hmcsim_cmc_register_fn reg,
                                hmcsim_cmc_execute_fn exec,
                                hmcsim_cmc_str_fn str, std::size_t library) {
  if (reg == nullptr || exec == nullptr || str == nullptr) {
    return Status::InvalidArg("CMC registration requires all three symbols");
  }

  // Interrogate the plugin (the paper's "final stage of the registration
  // process resolves the data members of the respective CMC operation").
  hmc_rqst_t rqst = HMC_CMC04;
  std::uint32_t cmd = 0;
  std::uint32_t rqst_len = 0;
  std::uint32_t rsp_len = 0;
  hmc_response_t rsp_cmd = HMC_RSP_NONE;
  std::uint8_t rsp_cmd_code = 0;
  if (reg(&rqst, &cmd, &rqst_len, &rsp_len, &rsp_cmd, &rsp_cmd_code) != 0) {
    return Status::CmcError("plugin cmc_register reported failure");
  }

  if (cmd != static_cast<std::uint32_t>(rqst)) {
    return Status::InvalidArg("CMC cmd field (" + std::to_string(cmd) +
                              ") does not match rqst enum (" +
                              std::to_string(static_cast<int>(rqst)) + ")");
  }
  if (cmd > 127 || !spec::is_cmc(static_cast<spec::Rqst>(cmd))) {
    return Status::InvalidArg("command code " + std::to_string(cmd) +
                              " is not an unused Gen2 (CMC) code");
  }
  if (rqst_len < 1 || rqst_len > spec::kMaxPacketFlits) {
    return Status::InvalidArg("CMC request length out of range: " +
                              std::to_string(rqst_len));
  }
  if (rsp_len > spec::kMaxPacketFlits) {
    return Status::InvalidArg("CMC response length out of range: " +
                              std::to_string(rsp_len));
  }
  const bool posted = rsp_cmd == HMC_RSP_NONE;
  if (posted != (rsp_len == 0)) {
    return Status::InvalidArg(
        "CMC response length and response command disagree on posted-ness");
  }

  const auto idx = slot_index(static_cast<std::uint8_t>(cmd));
  CmcOp& slot = slots_[*idx];
  if (slot.active) {
    return Status::AlreadyExists("CMC slot " + std::to_string(cmd) +
                                 " already holds operation '" + slot.name +
                                 "'");
  }

  char name_buf[HMCSIM_CMC_STR_MAX] = {};
  str(name_buf);
  name_buf[HMCSIM_CMC_STR_MAX - 1] = '\0';

  slot.active = true;
  ++active_;
  slot.rqst = static_cast<spec::Rqst>(cmd);
  slot.cmd = cmd;
  slot.rqst_len = rqst_len;
  slot.rsp_len = rsp_len;
  slot.rsp_cmd = static_cast<spec::ResponseType>(rsp_cmd);
  slot.rsp_cmd_code = rsp_cmd_code;
  slot.name = name_buf;
  slot.cmc_register = reg;
  slot.cmc_execute = exec;
  slot.cmc_str = str;
  slot.library = library;
  return Status::Ok();
}

Status CmcRegistry::unregister_op(spec::Rqst rqst) {
  const auto idx = slot_index(static_cast<std::uint8_t>(rqst));
  if (!idx.has_value()) {
    return Status::InvalidArg("not a CMC command code");
  }
  CmcOp& slot = slots_[*idx];
  if (!slot.active) {
    return Status::NotFound("CMC slot not active");
  }
  const spec::Rqst keep_rqst = slot.rqst;
  const std::uint32_t keep_cmd = slot.cmd;
  slot = CmcOp{};
  slot.rqst = keep_rqst;
  slot.cmd = keep_cmd;
  --active_;
  return Status::Ok();
}

const CmcOp* CmcRegistry::lookup(std::uint8_t cmd) const noexcept {
  const auto idx = slot_index(cmd);
  if (!idx.has_value() || !slots_[*idx].active) {
    return nullptr;
  }
  return &slots_[*idx];
}

const CmcOp* CmcRegistry::lookup(spec::Rqst rqst) const noexcept {
  return lookup(static_cast<std::uint8_t>(rqst));
}

Status CmcRegistry::execute(std::uint8_t cmd, CmcContext& ctx,
                            std::uint32_t dev, std::uint32_t quad,
                            std::uint32_t vault, std::uint32_t bank,
                            std::uint64_t addr, std::uint32_t length,
                            std::uint64_t head, std::uint64_t tail,
                            std::span<std::uint64_t> rqst_payload,
                            CmcExecResult& out) const {
  const CmcOp* op = lookup(cmd);
  if (op == nullptr) {
    // The paper: "If the command is not marked as active, an error is
    // returned."
    return Status::NotFound("CMC command " + std::to_string(cmd) +
                            " is not active");
  }

  out = CmcExecResult{};
  out.rsp_words = op->rsp_len > 0 ? 2 * (op->rsp_len - 1) : 0;

  ctx.current = &out;
  const int rc = op->cmc_execute(&ctx, dev, quad, vault, bank, addr, length,
                                 head, tail, rqst_payload.data(),
                                 out.rsp_payload.data());
  ctx.current = nullptr;

  if (rc != 0) {
    return Status::CmcError("CMC '" + op->name + "' execute returned " +
                            std::to_string(rc));
  }
  return Status::Ok();
}

void CmcRegistry::clear() {
  for (CmcOp& slot : slots_) {
    const spec::Rqst rqst = slot.rqst;
    const std::uint32_t cmd = slot.cmd;
    slot = CmcOp{};
    slot.rqst = rqst;
    slot.cmd = cmd;
  }
  active_ = 0;
}

}  // namespace hmcsim::cmc

// ---- C services callable from plugin execute functions --------------------

extern "C" int hmcsim_cmc_mem_read(void* hmc, std::uint32_t dev,
                                   std::uint64_t addr, std::uint64_t* data,
                                   std::uint32_t nwords) {
  if (hmc == nullptr || data == nullptr) {
    return -1;
  }
  auto* ctx = static_cast<hmcsim::cmc::CmcContext*>(hmc);
  if (ctx->mem_read == nullptr) {
    return -1;
  }
  return ctx->mem_read(ctx->user, dev, addr, data, nwords).ok() ? 0 : -1;
}

extern "C" int hmcsim_cmc_mem_write(void* hmc, std::uint32_t dev,
                                    std::uint64_t addr,
                                    const std::uint64_t* data,
                                    std::uint32_t nwords) {
  if (hmc == nullptr || data == nullptr) {
    return -1;
  }
  auto* ctx = static_cast<hmcsim::cmc::CmcContext*>(hmc);
  if (ctx->mem_write == nullptr) {
    return -1;
  }
  return ctx->mem_write(ctx->user, dev, addr, data, nwords).ok() ? 0 : -1;
}

extern "C" int hmcsim_cmc_set_af(void* hmc, int af) {
  if (hmc == nullptr) {
    return -1;
  }
  auto* ctx = static_cast<hmcsim::cmc::CmcContext*>(hmc);
  if (ctx->current == nullptr) {
    return -1;
  }
  ctx->current->atomic_flag = af != 0;
  return 0;
}

extern "C" int hmcsim_cmc_trace(void* hmc, const char* msg) {
  if (hmc == nullptr || msg == nullptr) {
    return -1;
  }
  auto* ctx = static_cast<hmcsim::cmc::CmcContext*>(hmc);
  if (ctx->trace == nullptr) {
    return 0;  // Tracing not wired: annotations are droppable.
  }
  ctx->trace(ctx->user, msg);
  return 0;
}
