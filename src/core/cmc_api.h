/* cmc_api.h — the C ABI between HMC-Sim and Custom Memory Cube plugins.
 *
 * A CMC operation is implemented in an externally compiled shared library
 * that exports exactly three symbols (paper, Section IV-D):
 *
 *   int  hmcsim_register_cmc(hmc_rqst_t *rqst, uint32_t *cmd,
 *                            uint32_t *rqst_len, uint32_t *rsp_len,
 *                            hmc_response_t *rsp_cmd,
 *                            uint8_t *rsp_cmd_code);
 *   int  hmcsim_execute_cmc(void *hmc,
 *                           uint32_t dev, uint32_t quad, uint32_t vault,
 *                           uint32_t bank, uint64_t addr, uint32_t length,
 *                           uint64_t head, uint64_t tail,
 *                           uint64_t *rqst_payload, uint64_t *rsp_payload);
 *   void hmcsim_cmc_str(char *out);
 *
 * hmcsim resolves these by name with dlsym(3) when the user calls
 * hmcsim_load_cmc(). The execute arguments are exactly those of Table IV of
 * the paper. All functions return 0 on success, nonzero on failure.
 *
 * Plugins access *simulated* memory through the two helper functions at the
 * bottom of this header; all mutable operation state must live in simulated
 * memory (or be managed thread-safely by the plugin itself).
 */
#ifndef HMCSIM_CMC_API_H
#define HMCSIM_CMC_API_H

#include <stdint.h>

#ifdef __cplusplus
extern "C" {
#endif

/* Request command enumeration. Enumerator values are the 7-bit wire codes
 * of the HMC 2.1 transaction layer; CMCnn names cover the 70 codes the
 * Gen2 specification leaves unused. */
typedef enum {
  HMC_FLOW_NULL = 0,
  HMC_PRET = 1,
  HMC_TRET = 2,
  HMC_IRTRY = 3,
  HMC_CMC04 = 4, HMC_CMC05 = 5, HMC_CMC06 = 6, HMC_CMC07 = 7,
  HMC_WR16 = 8, HMC_WR32 = 9, HMC_WR48 = 10, HMC_WR64 = 11,
  HMC_WR80 = 12, HMC_WR96 = 13, HMC_WR112 = 14, HMC_WR128 = 15,
  HMC_MD_WR = 16, HMC_BWR = 17, HMC_TWOADD8 = 18, HMC_ADD16 = 19,
  HMC_CMC20 = 20, HMC_CMC21 = 21, HMC_CMC22 = 22, HMC_CMC23 = 23,
  HMC_P_WR16 = 24, HMC_P_WR32 = 25, HMC_P_WR48 = 26, HMC_P_WR64 = 27,
  HMC_P_WR80 = 28, HMC_P_WR96 = 29, HMC_P_WR112 = 30, HMC_P_WR128 = 31,
  HMC_CMC32 = 32,
  HMC_P_BWR = 33, HMC_P_2ADD8 = 34, HMC_P_ADD16 = 35,
  HMC_CMC36 = 36, HMC_CMC37 = 37, HMC_CMC38 = 38, HMC_CMC39 = 39,
  HMC_MD_RD = 40,
  HMC_CMC41 = 41, HMC_CMC42 = 42, HMC_CMC43 = 43, HMC_CMC44 = 44,
  HMC_CMC45 = 45, HMC_CMC46 = 46, HMC_CMC47 = 47,
  HMC_RD16 = 48, HMC_RD32 = 49, HMC_RD48 = 50, HMC_RD64 = 51,
  HMC_RD80 = 52, HMC_RD96 = 53, HMC_RD112 = 54, HMC_RD128 = 55,
  HMC_CMC56 = 56, HMC_CMC57 = 57, HMC_CMC58 = 58, HMC_CMC59 = 59,
  HMC_CMC60 = 60, HMC_CMC61 = 61, HMC_CMC62 = 62, HMC_CMC63 = 63,
  HMC_XOR16 = 64, HMC_OR16 = 65, HMC_NOR16 = 66, HMC_AND16 = 67,
  HMC_NAND16 = 68,
  HMC_CMC69 = 69, HMC_CMC70 = 70, HMC_CMC71 = 71, HMC_CMC72 = 72,
  HMC_CMC73 = 73, HMC_CMC74 = 74, HMC_CMC75 = 75, HMC_CMC76 = 76,
  HMC_CMC77 = 77, HMC_CMC78 = 78,
  HMC_WR256 = 79,
  HMC_INC8 = 80, HMC_BWR8R = 81, HMC_TWOADDS8R = 82, HMC_ADDS16R = 83,
  HMC_P_INC8 = 84,
  HMC_CMC85 = 85, HMC_CMC86 = 86, HMC_CMC87 = 87, HMC_CMC88 = 88,
  HMC_CMC89 = 89, HMC_CMC90 = 90, HMC_CMC91 = 91, HMC_CMC92 = 92,
  HMC_CMC93 = 93, HMC_CMC94 = 94,
  HMC_P_WR256 = 95,
  HMC_CASGT8 = 96, HMC_CASLT8 = 97, HMC_CASGT16 = 98, HMC_CASLT16 = 99,
  HMC_CASEQ8 = 100, HMC_CASZERO16 = 101,
  HMC_CMC102 = 102, HMC_CMC103 = 103,
  HMC_EQ16 = 104, HMC_EQ8 = 105, HMC_SWAP16 = 106,
  HMC_CMC107 = 107, HMC_CMC108 = 108, HMC_CMC109 = 109, HMC_CMC110 = 110,
  HMC_CMC111 = 111, HMC_CMC112 = 112, HMC_CMC113 = 113, HMC_CMC114 = 114,
  HMC_CMC115 = 115, HMC_CMC116 = 116, HMC_CMC117 = 117, HMC_CMC118 = 118,
  HMC_RD256 = 119,
  HMC_CMC120 = 120, HMC_CMC121 = 121, HMC_CMC122 = 122, HMC_CMC123 = 123,
  HMC_CMC124 = 124, HMC_CMC125 = 125, HMC_CMC126 = 126, HMC_CMC127 = 127
} hmc_rqst_t;

/* Response command enumeration (subset visible to plugins). */
typedef enum {
  HMC_RSP_NONE = 0,       /* posted: no response packet               */
  HMC_RD_RS = 0x38,       /* read response (carries data FLITs)       */
  HMC_WR_RS = 0x39,       /* write response (header/tail only)        */
  HMC_MD_RD_RS = 0x3A,
  HMC_MD_WR_RS = 0x3B,
  HMC_RSP_ERROR = 0x3E,
  HMC_RSP_CMC = 0xFF      /* custom code: set *rsp_cmd_code as well   */
} hmc_response_t;

/* Longest operation name (including NUL) hmcsim_cmc_str may write. */
#define HMCSIM_CMC_STR_MAX 64

/* ---- ABI handshake ----------------------------------------------------
 *
 * The version of the plugin ABI this header describes. A plugin should
 * export a fourth symbol reporting the version it was compiled against:
 *
 *   uint32_t hmcsim_cmc_abi_version(void);   // return HMCSIM_CMC_ABI_VERSION
 *
 * (or just place HMCSIM_CMC_DEFINE_ABI_VERSION(); at file scope). The
 * loader rejects libraries whose reported version differs from its own;
 * libraries that omit the symbol still load, with a deprecation warning,
 * under the assumption they predate the handshake. Bump the constant on
 * any change to the function signatures, enumerations or service-function
 * contracts in this header.
 */
#define HMCSIM_CMC_ABI_VERSION 1u

typedef uint32_t (*hmcsim_cmc_abi_version_fn)(void);

#define HMCSIM_CMC_DEFINE_ABI_VERSION()                                   \
  uint32_t hmcsim_cmc_abi_version(void) { return HMCSIM_CMC_ABI_VERSION; }

/* Function-pointer types matching the three required plugin symbols. */
typedef int (*hmcsim_cmc_register_fn)(hmc_rqst_t *rqst, uint32_t *cmd,
                                      uint32_t *rqst_len, uint32_t *rsp_len,
                                      hmc_response_t *rsp_cmd,
                                      uint8_t *rsp_cmd_code);
typedef int (*hmcsim_cmc_execute_fn)(void *hmc, uint32_t dev, uint32_t quad,
                                     uint32_t vault, uint32_t bank,
                                     uint64_t addr, uint32_t length,
                                     uint64_t head, uint64_t tail,
                                     uint64_t *rqst_payload,
                                     uint64_t *rsp_payload);
typedef void (*hmcsim_cmc_str_fn)(char *out);

/* Required exported symbol names, for dlsym(3). */
#define HMCSIM_CMC_SYM_REGISTER "hmcsim_register_cmc"
#define HMCSIM_CMC_SYM_EXECUTE "hmcsim_execute_cmc"
#define HMCSIM_CMC_SYM_STR "hmcsim_cmc_str"
/* Optional ABI-handshake symbol (see HMCSIM_CMC_ABI_VERSION above). */
#define HMCSIM_CMC_SYM_ABI_VERSION "hmcsim_cmc_abi_version"

/* ---- services callable from inside hmcsim_execute_cmc ----------------
 *
 * `hmc` is the opaque context pointer passed to the execute function. The
 * address is a cube-local physical address on device `dev` (the same device
 * the execute call named). nwords counts 64-bit words.
 *
 * Return-value contract: every service returns HMCSIM_CMC_OK (0) on
 * success and one of the negative codes below on failure; no service ever
 * dereferences a null argument. EINVAL and EBUDGET are *guard violations*:
 * the simulator records them against the calling operation and forces the
 * in-flight execute to fail even if the plugin then returns 0.
 */
#define HMCSIM_CMC_OK 0
#define HMCSIM_CMC_EINVAL (-1)  /* null hmc/data, nwords == 0 or oversized */
#define HMCSIM_CMC_ENOSVC (-2)  /* service not wired in this context      */
#define HMCSIM_CMC_EBUDGET (-3) /* per-call memory word budget exhausted;
                                 * the access was not performed           */
#define HMCSIM_CMC_EFAULT (-4)  /* simulated memory access failed         */
#define HMCSIM_CMC_ENOCALL (-5) /* no CMC execute call in flight          */
#define HMCSIM_CMC_EPOISON (-6) /* read hit an uncorrectable ECC error;
                                 * the buffer is zero-filled and the
                                 * in-flight execute will complete with a
                                 * poisoned (DINV) response, not a guard
                                 * violation                              */

/* Hard per-access cap on nwords, independent of the configurable budget:
 * a single read/write of more than this many 64-bit words is rejected as
 * EINVAL (and flagged as a guard violation) before touching memory. */
#define HMCSIM_CMC_MEM_MAX_WORDS (1u << 20)

/* Read/write simulated memory. EINVAL on null/zero/oversized arguments,
 * ENOSVC when the context has no memory service, EBUDGET once the
 * configured per-call word budget is spent, EFAULT when the backing
 * store rejects the access (e.g. address out of range). */
int hmcsim_cmc_mem_read(void *hmc, uint32_t dev, uint64_t addr,
                        uint64_t *data, uint32_t nwords);
int hmcsim_cmc_mem_write(void *hmc, uint32_t dev, uint64_t addr,
                         const uint64_t *data, uint32_t nwords);

/* Set the response header AF (atomic flag) bit for the response to the
 * request currently being executed. EINVAL on null hmc, ENOCALL when no
 * execute call is in flight. */
int hmcsim_cmc_set_af(void *hmc, int af);

/* Emit a free-form CMC trace annotation (shows up as a CMC-level trace
 * event alongside the automatic per-operation records). `msg` is copied;
 * keep it short. EINVAL on null arguments; OK (annotations are droppable)
 * when tracing is not wired. */
int hmcsim_cmc_trace(void *hmc, const char *msg);

#ifdef __cplusplus
} /* extern "C" */
#endif

#endif /* HMCSIM_CMC_API_H */
