#include "spec/crc32.hpp"

#include <array>

namespace hmcsim::spec {
namespace {

constexpr std::array<std::uint32_t, 256> build_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i << 24;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 0x80000000U) != 0 ? (crc << 1) ^ kCrcPolynomial
                                     : (crc << 1);
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kTable = build_table();

}  // namespace

std::uint32_t crc32k(std::span<const std::uint8_t> bytes,
                     std::uint32_t seed) noexcept {
  std::uint32_t crc = seed;
  for (const std::uint8_t b : bytes) {
    crc = (crc << 8) ^ kTable[((crc >> 24) ^ b) & 0xFFU];
  }
  return crc;
}

std::uint32_t crc32k_words(std::span<const std::uint64_t> words,
                           std::uint32_t seed) noexcept {
  // Slicing-by-8 over the same tables the tail-delta path uses: each word
  // costs 8 independent lookups instead of a serial 8-step byte chain.
  // Byte order matches the serial form: little-endian within each word.
  const auto& s = detail::kCrc32kSlices;
  std::uint32_t crc = seed;
  for (const std::uint64_t w : words) {
    const auto lo = static_cast<std::uint32_t>(w);
    const auto hi = static_cast<std::uint32_t>(w >> 32);
    // First four stream bytes fold into the running CRC (stream byte 0 is
    // the register's most-significant byte).
    const std::uint32_t x =
        crc ^ (((lo & 0xFFU) << 24) | (((lo >> 8) & 0xFFU) << 16) |
               (((lo >> 16) & 0xFFU) << 8) | (lo >> 24));
    crc = s[7][x >> 24] ^ s[6][(x >> 16) & 0xFFU] ^ s[5][(x >> 8) & 0xFFU] ^
          s[4][x & 0xFFU] ^ s[3][hi & 0xFFU] ^ s[2][(hi >> 8) & 0xFFU] ^
          s[1][(hi >> 16) & 0xFFU] ^ s[0][hi >> 24];
  }
  return crc;
}

}  // namespace hmcsim::spec
