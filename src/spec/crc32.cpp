#include "spec/crc32.hpp"

#include <array>

namespace hmcsim::spec {
namespace {

constexpr std::array<std::uint32_t, 256> build_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i << 24;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 0x80000000U) != 0 ? (crc << 1) ^ kCrcPolynomial
                                     : (crc << 1);
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kTable = build_table();

}  // namespace

std::uint32_t crc32k(std::span<const std::uint8_t> bytes,
                     std::uint32_t seed) noexcept {
  std::uint32_t crc = seed;
  for (const std::uint8_t b : bytes) {
    crc = (crc << 8) ^ kTable[((crc >> 24) ^ b) & 0xFFU];
  }
  return crc;
}

std::uint32_t crc32k_words(std::span<const std::uint64_t> words,
                           std::uint32_t seed) noexcept {
  std::uint32_t crc = seed;
  for (const std::uint64_t w : words) {
    for (unsigned byte = 0; byte < 8; ++byte) {
      const auto b = static_cast<std::uint8_t>((w >> (8 * byte)) & 0xFFU);
      crc = (crc << 8) ^ kTable[((crc >> 24) ^ b) & 0xFFU];
    }
  }
  return crc;
}

}  // namespace hmcsim::spec
