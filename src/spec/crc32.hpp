// crc32.hpp — packet CRC as specified by HMC 2.1.
//
// The HMC link layer protects every packet with a 32-bit CRC placed in the
// most-significant bits of the tail. The specification uses the Koopman
// polynomial 0x741B8CD7. The CRC is computed over the entire packet with
// the CRC field itself zeroed.
#pragma once

#include <cstdint>
#include <span>

namespace hmcsim::spec {

/// Koopman CRC-32 polynomial used by the HMC specification.
inline constexpr std::uint32_t kCrcPolynomial = 0x741B8CD7U;

/// CRC-32K over a byte stream (init 0, no reflection, no final xor — the
/// simple framing the HMC spec describes for packet coverage).
[[nodiscard]] std::uint32_t crc32k(std::span<const std::uint8_t> bytes,
                                   std::uint32_t seed = 0) noexcept;

/// CRC-32K over 64-bit words in little-endian byte order (packets are
/// stored as uint64 words host-side).
[[nodiscard]] std::uint32_t crc32k_words(std::span<const std::uint64_t> words,
                                         std::uint32_t seed = 0) noexcept;

}  // namespace hmcsim::spec
