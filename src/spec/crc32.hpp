// crc32.hpp — packet CRC as specified by HMC 2.1.
//
// The HMC link layer protects every packet with a 32-bit CRC placed in the
// most-significant bits of the tail. The specification uses the Koopman
// polynomial 0x741B8CD7. The CRC is computed over the entire packet with
// the CRC field itself zeroed.
#pragma once

#include <cstdint>
#include <span>

namespace hmcsim::spec {

/// Koopman CRC-32 polynomial used by the HMC specification.
inline constexpr std::uint32_t kCrcPolynomial = 0x741B8CD7U;

/// CRC-32K over a byte stream (init 0, no reflection, no final xor — the
/// simple framing the HMC spec describes for packet coverage).
[[nodiscard]] std::uint32_t crc32k(std::span<const std::uint8_t> bytes,
                                   std::uint32_t seed = 0) noexcept;

/// CRC-32K over 64-bit words in little-endian byte order (packets are
/// stored as uint64 words host-side).
[[nodiscard]] std::uint32_t crc32k_words(std::span<const std::uint64_t> words,
                                         std::uint32_t seed = 0) noexcept;

namespace detail {

/// Slicing-by-8 tables for the one-word CRC below: kSlice[k][b] is the
/// CRC-32K of byte `b` followed by `k` zero bytes. With a zero seed the
/// CRC is GF(2)-linear, so an 8-byte message is the xor of one lookup per
/// byte — no serial dependency chain between bytes.
[[nodiscard]] constexpr std::array<std::array<std::uint32_t, 256>, 8>
build_crc32k_slices() {
  std::array<std::array<std::uint32_t, 256>, 8> slices{};
  for (std::uint32_t b = 0; b < 256; ++b) {
    std::uint32_t crc = b << 24;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 0x80000000U) != 0 ? (crc << 1) ^ kCrcPolynomial
                                     : (crc << 1);
    }
    slices[0][b] = crc;
  }
  for (std::size_t k = 1; k < 8; ++k) {
    for (std::uint32_t b = 0; b < 256; ++b) {
      const std::uint32_t prev = slices[k - 1][b];
      slices[k][b] = (prev << 8) ^ slices[0][(prev >> 24) & 0xFFU];
    }
  }
  return slices;
}

inline constexpr auto kCrc32kSlices = build_crc32k_slices();

}  // namespace detail

/// CRC-32K of a single little-endian 64-bit word (an 8-byte message with a
/// zero seed). Agrees with crc32k_words({&w, 1}) but runs as 8 independent
/// table lookups — used on the link hot path for tail-delta CRC patching.
[[nodiscard]] inline std::uint32_t crc32k_word(std::uint64_t w) noexcept {
  std::uint32_t crc = 0;
  for (unsigned i = 0; i < 8; ++i) {
    crc ^= detail::kCrc32kSlices[7 - i][(w >> (8 * i)) & 0xFFU];
  }
  return crc;
}

/// crc32k_word() specialised for a word whose upper 32 bits are zero (the
/// zero bytes hit table entry 0, which is 0 in every slice). Tail deltas
/// always have this shape: the CRC field occupies bits [63:32] and is
/// zeroed on both sides of the delta.
[[nodiscard]] inline std::uint32_t crc32k_low_word(std::uint32_t w) noexcept {
  std::uint32_t crc = 0;
  for (unsigned i = 0; i < 4; ++i) {
    crc ^= detail::kCrc32kSlices[7 - i][(w >> (8 * i)) & 0xFFU];
  }
  return crc;
}

}  // namespace hmcsim::spec
