// packet.hpp — HMC 2.1 request/response packet formats.
//
// A packet is 1..17 FLITs. The first 64 bits of the first FLIT are the
// *header*; the last 64 bits of the last FLIT are the *tail*; everything in
// between is data payload. Field positions follow the HMC 2.1 transaction
// layer:
//
//   Request header   CMD[6:0] LNG[11:7] TAG[22:12] ADRS[57:24] CUB[63:61]
//   Request tail     RRP[8:0] FRP[17:9] SEQ[20:18] Pb[21] SLID[28:26]
//                    RTC[31:29] CRC[63:32]
//   Response header  CMD[6:0] LNG[11:7] TAG[22:12] AF[33] SLID[36:34]
//                    CUB[63:61]
//   Response tail    RRP[8:0] FRP[17:9] SEQ[20:18] DINV[21] ERRSTAT[28:22]
//                    RTC[31:29] CRC[63:32]
//
// The CRC (32-bit, Koopman polynomial) covers the whole packet with the CRC
// field zeroed.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>

#include "common/bits.hpp"
#include "common/status.hpp"
#include "spec/commands.hpp"
#include "spec/crc32.hpp"
#include "spec/flit.hpp"

namespace hmcsim::spec {

/// Named bit fields of the request packet header.
struct RqstHead {
  using Cmd = bits::Field<0, 7>;
  using Lng = bits::Field<7, 5>;
  using Tag = bits::Field<12, 11>;
  using Adrs = bits::Field<24, 34>;
  using Cub = bits::Field<61, 3>;
};

/// Named bit fields of the request packet tail.
struct RqstTail {
  using Rrp = bits::Field<0, 9>;
  using Frp = bits::Field<9, 9>;
  using Seq = bits::Field<18, 3>;
  using Pb = bits::Field<21, 1>;
  using Slid = bits::Field<26, 3>;
  using Rtc = bits::Field<29, 3>;
  using Crc = bits::Field<32, 32>;
};

/// Named bit fields of the response packet header.
struct RspHead {
  using Cmd = bits::Field<0, 7>;
  using Lng = bits::Field<7, 5>;
  using Tag = bits::Field<12, 11>;
  using Af = bits::Field<33, 1>;
  using Slid = bits::Field<34, 3>;
  using Cub = bits::Field<61, 3>;
};

/// Named bit fields of the response packet tail.
struct RspTail {
  using Rrp = bits::Field<0, 9>;
  using Frp = bits::Field<9, 9>;
  using Seq = bits::Field<18, 3>;
  using Dinv = bits::Field<21, 1>;
  using Errstat = bits::Field<22, 7>;
  using Rtc = bits::Field<29, 3>;
  using Crc = bits::Field<32, 32>;
};

/// Widest representable tag (11-bit field).
inline constexpr std::uint16_t kMaxTag = (1U << 11) - 1;

/// Widest representable CUB id (3-bit field): up to 8 chained devices.
inline constexpr std::uint8_t kMaxCub = 7;

/// Vault-visible address width (34-bit ADRS field).
inline constexpr unsigned kAdrsBits = 34;

/// A request packet in unpacked word form.
///
/// `data` holds the payload words between header and tail: a packet of N
/// FLITs has 2*(N-1) data words. Maximum payload: 32 words (256 bytes).
struct RqstPacket {
  std::uint64_t head = 0;
  std::uint64_t tail = 0;
  std::array<std::uint64_t, 32> data{};

  [[nodiscard]] Rqst rqst() const noexcept {
    return static_cast<Rqst>(RqstHead::Cmd::get(head));
  }
  [[nodiscard]] std::uint8_t cmd() const noexcept {
    return static_cast<std::uint8_t>(RqstHead::Cmd::get(head));
  }
  [[nodiscard]] std::uint32_t flits() const noexcept {
    return static_cast<std::uint32_t>(RqstHead::Lng::get(head));
  }
  [[nodiscard]] std::uint16_t tag() const noexcept {
    return static_cast<std::uint16_t>(RqstHead::Tag::get(head));
  }
  [[nodiscard]] std::uint64_t addr() const noexcept {
    return RqstHead::Adrs::get(head);
  }
  [[nodiscard]] std::uint8_t cub() const noexcept {
    return static_cast<std::uint8_t>(RqstHead::Cub::get(head));
  }
  [[nodiscard]] std::uint8_t slid() const noexcept {
    return static_cast<std::uint8_t>(RqstTail::Slid::get(tail));
  }
  void set_slid(std::uint8_t slid) noexcept {
    tail = RqstTail::Slid::set(tail, slid);
  }

  // Link-layer retry fields (stamped by the link model on transmit; any
  // mutation of a sealed packet must be followed by reseal_crc()).
  [[nodiscard]] std::uint8_t seq() const noexcept {
    return static_cast<std::uint8_t>(RqstTail::Seq::get(tail));
  }
  void set_seq(std::uint8_t seq) noexcept {
    tail = RqstTail::Seq::set(tail, seq);
  }
  [[nodiscard]] std::uint16_t frp() const noexcept {
    return static_cast<std::uint16_t>(RqstTail::Frp::get(tail));
  }
  void set_frp(std::uint16_t frp) noexcept {
    tail = RqstTail::Frp::set(tail, frp);
  }
  [[nodiscard]] std::uint16_t rrp() const noexcept {
    return static_cast<std::uint16_t>(RqstTail::Rrp::get(tail));
  }
  void set_rrp(std::uint16_t rrp) noexcept {
    tail = RqstTail::Rrp::set(tail, rrp);
  }

  /// Payload words actually carried (2 per data FLIT).
  [[nodiscard]] std::span<const std::uint64_t> payload() const noexcept {
    const std::uint32_t n = flits();
    return {data.data(), n > 0 ? 2 * (static_cast<std::size_t>(n) - 1) : 0};
  }
  [[nodiscard]] std::span<std::uint64_t> payload() noexcept {
    const std::uint32_t n = flits();
    return {data.data(), n > 0 ? 2 * (static_cast<std::size_t>(n) - 1) : 0};
  }
};

/// A response packet in unpacked word form.
struct RspPacket {
  std::uint64_t head = 0;
  std::uint64_t tail = 0;
  std::array<std::uint64_t, 32> data{};

  [[nodiscard]] std::uint8_t cmd() const noexcept {
    return static_cast<std::uint8_t>(RspHead::Cmd::get(head));
  }
  [[nodiscard]] std::uint32_t flits() const noexcept {
    return static_cast<std::uint32_t>(RspHead::Lng::get(head));
  }
  [[nodiscard]] std::uint16_t tag() const noexcept {
    return static_cast<std::uint16_t>(RspHead::Tag::get(head));
  }
  [[nodiscard]] bool atomic_flag() const noexcept {
    return RspHead::Af::get(head) != 0;
  }
  [[nodiscard]] std::uint8_t slid() const noexcept {
    return static_cast<std::uint8_t>(RspHead::Slid::get(head));
  }
  [[nodiscard]] std::uint8_t cub() const noexcept {
    return static_cast<std::uint8_t>(RspHead::Cub::get(head));
  }
  [[nodiscard]] std::uint8_t errstat() const noexcept {
    return static_cast<std::uint8_t>(RspTail::Errstat::get(tail));
  }
  [[nodiscard]] bool data_invalid() const noexcept {
    return RspTail::Dinv::get(tail) != 0;
  }

  // Link-layer retry fields (stamped by the link model on transmit; any
  // mutation of a sealed packet must be followed by reseal_crc()).
  [[nodiscard]] std::uint8_t seq() const noexcept {
    return static_cast<std::uint8_t>(RspTail::Seq::get(tail));
  }
  void set_seq(std::uint8_t seq) noexcept {
    tail = RspTail::Seq::set(tail, seq);
  }
  [[nodiscard]] std::uint16_t frp() const noexcept {
    return static_cast<std::uint16_t>(RspTail::Frp::get(tail));
  }
  void set_frp(std::uint16_t frp) noexcept {
    tail = RspTail::Frp::set(tail, frp);
  }
  [[nodiscard]] std::uint16_t rrp() const noexcept {
    return static_cast<std::uint16_t>(RspTail::Rrp::get(tail));
  }
  void set_rrp(std::uint16_t rrp) noexcept {
    tail = RspTail::Rrp::set(tail, rrp);
  }
  [[nodiscard]] std::uint8_t rtc() const noexcept {
    return static_cast<std::uint8_t>(RspTail::Rtc::get(tail));
  }
  void set_rtc(std::uint8_t rtc) noexcept {
    tail = RspTail::Rtc::set(tail, rtc);
  }

  [[nodiscard]] std::span<const std::uint64_t> payload() const noexcept {
    const std::uint32_t n = flits();
    return {data.data(), n > 0 ? 2 * (static_cast<std::size_t>(n) - 1) : 0};
  }
  [[nodiscard]] std::span<std::uint64_t> payload() noexcept {
    const std::uint32_t n = flits();
    return {data.data(), n > 0 ? 2 * (static_cast<std::size_t>(n) - 1) : 0};
  }
};

/// Parameters for building a request packet.
struct RqstParams {
  Rqst rqst = Rqst::RD16;
  std::uint64_t addr = 0;        ///< Vault-visible address (34 bits used).
  std::uint16_t tag = 0;         ///< Host transaction tag (11 bits).
  std::uint8_t cub = 0;          ///< Target cube id (3 bits).
  std::span<const std::uint64_t> payload{};  ///< Data words (2 per FLIT).
  /// FLIT count override for CMC commands whose length is defined at
  /// registration time; 0 = use the static command table.
  std::uint8_t flits_override = 0;
};

/// Build a request packet: fills header/tail fields, copies the payload and
/// computes the CRC. Fails on out-of-range fields or payload/LNG mismatch.
[[nodiscard]] Status build_request(const RqstParams& params, RqstPacket& out);

/// The validation half of build_request: accepts exactly the parameter sets
/// build_request would build, without serialising or sealing a CRC. For
/// callers that pre-screen batches and build later.
[[nodiscard]] Status validate_request(const RqstParams& params);

/// Parameters for building a response packet.
struct RspParams {
  std::uint8_t rsp_cmd_code = 0;  ///< Raw 7-bit response command code.
  std::uint32_t flits = 1;        ///< Total packet length.
  std::uint16_t tag = 0;          ///< Echo of the request tag.
  std::uint8_t cub = 0;           ///< Origin cube.
  std::uint8_t slid = 0;          ///< Host link to return on.
  bool atomic_flag = false;       ///< AF header bit.
  std::uint8_t errstat = 0;       ///< Tail error status (7 bits).
  std::span<const std::uint64_t> payload{};
};

/// Build a response packet: fills header/tail fields, copies the payload
/// and computes the CRC.
[[nodiscard]] Status build_response(const RspParams& params, RspPacket& out);

/// Serialise a request to its wire word stream: [head, data..., tail].
/// Returns the number of words written (2 * LNG). `out` must hold at least
/// kMaxPacketWords entries.
[[nodiscard]] std::size_t serialize(const RqstPacket& pkt,
                                    std::span<std::uint64_t> out) noexcept;
[[nodiscard]] std::size_t serialize(const RspPacket& pkt,
                                    std::span<std::uint64_t> out) noexcept;

/// Parse a request from its wire word stream; validates LNG against the
/// stream size and verifies the CRC.
[[nodiscard]] Status parse_request(std::span<const std::uint64_t> words,
                                   RqstPacket& out);
[[nodiscard]] Status parse_response(std::span<const std::uint64_t> words,
                                    RspPacket& out);

/// Compute the CRC a request/response packet should carry.
[[nodiscard]] std::uint32_t packet_crc(const RqstPacket& pkt) noexcept;
[[nodiscard]] std::uint32_t packet_crc(const RspPacket& pkt) noexcept;

/// Recompute + verify the CRC carried in the packet tail.
[[nodiscard]] bool verify_crc(const RqstPacket& pkt) noexcept;
[[nodiscard]] bool verify_crc(const RspPacket& pkt) noexcept;

/// Recompute and store the tail CRC. The link layer calls this after every
/// mutation of a sealed packet (SLID/SEQ/FRP/RRP/RTC stamps) so in-flight
/// packets always round-trip through serialize/parse.
void reseal_crc(RqstPacket& pkt) noexcept;
void reseal_crc(RspPacket& pkt) noexcept;

/// Fast reseal for a mutation confined to the tail word. `sealed_tail` is
/// the tail as it was when the packet was last sealed. CRC-32K with a zero
/// seed and no final xor is GF(2)-linear, so the new CRC is the old CRC
/// xor the CRC of the one-word delta (leading zero bytes of the delta
/// message contribute nothing) — no full-packet pass. Equivalent to
/// reseal_crc() whenever head and data are untouched. Inline: this runs
/// once per packet per link transmit.
inline void reseal_tail(RqstPacket& pkt, std::uint64_t sealed_tail) noexcept {
  // The delta's upper 32 bits vanish: that's the CRC field, zeroed on
  // both sides, so the low-word CRC specialisation applies.
  const std::uint32_t crc =
      static_cast<std::uint32_t>(RqstTail::Crc::get(sealed_tail)) ^
      crc32k_low_word(static_cast<std::uint32_t>(sealed_tail ^ pkt.tail));
  pkt.tail = RqstTail::Crc::set(pkt.tail, crc);
}
inline void reseal_tail(RspPacket& pkt, std::uint64_t sealed_tail) noexcept {
  const std::uint32_t crc =
      static_cast<std::uint32_t>(RspTail::Crc::get(sealed_tail)) ^
      crc32k_low_word(static_cast<std::uint32_t>(sealed_tail ^ pkt.tail));
  pkt.tail = RspTail::Crc::set(pkt.tail, crc);
}

/// One-line human-readable rendering for traces and debugging.
[[nodiscard]] std::string to_string(const RqstPacket& pkt);
[[nodiscard]] std::string to_string(const RspPacket& pkt);

}  // namespace hmcsim::spec
