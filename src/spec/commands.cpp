#include "spec/commands.hpp"

#include <algorithm>
#include <array>
#include <cassert>

namespace hmcsim::spec {
namespace {

// Mnemonic strings for the CMC slots, indexed by command code. Generated
// once so CommandInfo::name string_views have static storage duration.
constexpr const char* kCmcNames[128] = {
    nullptr,  nullptr,  nullptr,  nullptr,  "CMC04",  "CMC05",  "CMC06",
    "CMC07",  nullptr,  nullptr,  nullptr,  nullptr,  nullptr,  nullptr,
    nullptr,  nullptr,  nullptr,  nullptr,  nullptr,  nullptr,  "CMC20",
    "CMC21",  "CMC22",  "CMC23",  nullptr,  nullptr,  nullptr,  nullptr,
    nullptr,  nullptr,  nullptr,  nullptr,  "CMC32",  nullptr,  nullptr,
    nullptr,  "CMC36",  "CMC37",  "CMC38",  "CMC39",  nullptr,  "CMC41",
    "CMC42",  "CMC43",  "CMC44",  "CMC45",  "CMC46",  "CMC47",  nullptr,
    nullptr,  nullptr,  nullptr,  nullptr,  nullptr,  nullptr,  nullptr,
    "CMC56",  "CMC57",  "CMC58",  "CMC59",  "CMC60",  "CMC61",  "CMC62",
    "CMC63",  nullptr,  nullptr,  nullptr,  nullptr,  nullptr,  "CMC69",
    "CMC70",  "CMC71",  "CMC72",  "CMC73",  "CMC74",  "CMC75",  "CMC76",
    "CMC77",  "CMC78",  nullptr,  nullptr,  nullptr,  nullptr,  nullptr,
    nullptr,  "CMC85",  "CMC86",  "CMC87",  "CMC88",  "CMC89",  "CMC90",
    "CMC91",  "CMC92",  "CMC93",  "CMC94",  nullptr,  nullptr,  nullptr,
    nullptr,  nullptr,  nullptr,  nullptr,  "CMC102", "CMC103", nullptr,
    nullptr,  nullptr,  "CMC107", "CMC108", "CMC109", "CMC110", "CMC111",
    "CMC112", "CMC113", "CMC114", "CMC115", "CMC116", "CMC117", "CMC118",
    nullptr,  "CMC120", "CMC121", "CMC122", "CMC123", "CMC124", "CMC125",
    "CMC126", "CMC127"};

constexpr CommandInfo make(Rqst rqst, std::string_view name,
                           std::uint8_t rqst_flits, std::uint8_t rsp_flits,
                           ResponseType rsp, CommandKind kind,
                           std::uint16_t data_bytes) {
  return CommandInfo{rqst,
                     name,
                     static_cast<std::uint8_t>(rqst),
                     rqst_flits,
                     rsp_flits,
                     rsp,
                     kind,
                     data_bytes};
}

constexpr std::array<CommandInfo, 128> build_table() {
  std::array<CommandInfo, 128> t{};

  // Default every slot to an (initially inactive) CMC entry; the named
  // commands below overwrite the used codes. CMC request/response lengths
  // are registration-time properties; the static defaults are 1/1.
  for (std::size_t code = 0; code < t.size(); ++code) {
    const auto rqst = static_cast<Rqst>(code);
    const char* name = kCmcNames[code];
    t[code] = make(rqst, name != nullptr ? name : "?", 1, 1,
                   ResponseType::RSP_CMC, CommandKind::Cmc, 0);
  }

  auto set = [&t](CommandInfo info) {
    t[info.cmd] = info;
  };

  // Flow commands: single FLIT, consumed at the link layer.
  set(make(Rqst::FLOW_NULL, "NULL", 1, 0, ResponseType::None,
           CommandKind::Flow, 0));
  set(make(Rqst::PRET, "PRET", 1, 0, ResponseType::None, CommandKind::Flow,
           0));
  set(make(Rqst::TRET, "TRET", 1, 0, ResponseType::None, CommandKind::Flow,
           0));
  set(make(Rqst::IRTRY, "IRTRY", 1, 0, ResponseType::None, CommandKind::Flow,
           0));

  // Reads: 1-FLIT request; response = header/tail FLIT + data FLITs.
  struct RdDef {
    Rqst r;
    std::string_view n;
    std::uint16_t bytes;
  };
  constexpr RdDef rds[] = {
      {Rqst::RD16, "RD16", 16},   {Rqst::RD32, "RD32", 32},
      {Rqst::RD48, "RD48", 48},   {Rqst::RD64, "RD64", 64},
      {Rqst::RD80, "RD80", 80},   {Rqst::RD96, "RD96", 96},
      {Rqst::RD112, "RD112", 112}, {Rqst::RD128, "RD128", 128},
      {Rqst::RD256, "RD256", 256},
  };
  for (const auto& d : rds) {
    set(make(d.r, d.n, 1, static_cast<std::uint8_t>(packet_flits(d.bytes)),
             ResponseType::RD_RS, CommandKind::Read, 0));
  }

  // Writes: request = header/tail FLIT + data FLITs; 1-FLIT write response.
  struct WrDef {
    Rqst r;
    std::string_view n;
    std::uint16_t bytes;
    bool posted;
  };
  constexpr WrDef wrs[] = {
      {Rqst::WR16, "WR16", 16, false},     {Rqst::WR32, "WR32", 32, false},
      {Rqst::WR48, "WR48", 48, false},     {Rqst::WR64, "WR64", 64, false},
      {Rqst::WR80, "WR80", 80, false},     {Rqst::WR96, "WR96", 96, false},
      {Rqst::WR112, "WR112", 112, false},  {Rqst::WR128, "WR128", 128, false},
      {Rqst::WR256, "WR256", 256, false},  {Rqst::P_WR16, "P_WR16", 16, true},
      {Rqst::P_WR32, "P_WR32", 32, true},  {Rqst::P_WR48, "P_WR48", 48, true},
      {Rqst::P_WR64, "P_WR64", 64, true},  {Rqst::P_WR80, "P_WR80", 80, true},
      {Rqst::P_WR96, "P_WR96", 96, true},
      {Rqst::P_WR112, "P_WR112", 112, true},
      {Rqst::P_WR128, "P_WR128", 128, true},
      {Rqst::P_WR256, "P_WR256", 256, true},
  };
  for (const auto& d : wrs) {
    set(make(d.r, d.n, static_cast<std::uint8_t>(packet_flits(d.bytes)),
             d.posted ? 0 : 1,
             d.posted ? ResponseType::None : ResponseType::WR_RS,
             d.posted ? CommandKind::PostedWrite : CommandKind::Write,
             d.bytes));
  }

  // Mode (register) access. The written/read register value travels in the
  // packet data section: MD_WR carries one data FLIT out, MD_RD_RS carries
  // one data FLIT back.
  set(make(Rqst::MD_WR, "MD_WR", 2, 1, ResponseType::MD_WR_RS,
           CommandKind::ModeWrite, 16));
  set(make(Rqst::MD_RD, "MD_RD", 1, 2, ResponseType::MD_RD_RS,
           CommandKind::ModeRead, 0));

  // Atomics — request/response FLIT counts exactly as Table I.
  struct AmoDef {
    Rqst r;
    std::string_view n;
    std::uint8_t rq;
    std::uint8_t rs;
    ResponseType rsp;
    CommandKind k;
    std::uint16_t bytes;
  };
  constexpr AmoDef amos[] = {
      // Gen1 atomics carried forward.
      {Rqst::BWR, "BWR", 2, 1, ResponseType::WR_RS, CommandKind::Atomic, 16},
      {Rqst::P_BWR, "P_BWR", 2, 0, ResponseType::None,
       CommandKind::PostedAtomic, 16},
      {Rqst::TWOADD8, "2ADD8", 2, 1, ResponseType::WR_RS, CommandKind::Atomic,
       16},
      {Rqst::P_2ADD8, "P_2ADD8", 2, 0, ResponseType::None,
       CommandKind::PostedAtomic, 16},
      {Rqst::ADD16, "ADD16", 2, 1, ResponseType::WR_RS, CommandKind::Atomic,
       16},
      {Rqst::P_ADD16, "P_ADD16", 2, 0, ResponseType::None,
       CommandKind::PostedAtomic, 16},
      // Gen2 additions (Table I).
      {Rqst::TWOADDS8R, "2ADDS8R", 2, 2, ResponseType::RD_RS,
       CommandKind::Atomic, 16},
      {Rqst::ADDS16R, "ADDS16R", 2, 2, ResponseType::RD_RS,
       CommandKind::Atomic, 16},
      {Rqst::INC8, "INC8", 1, 1, ResponseType::WR_RS, CommandKind::Atomic, 0},
      {Rqst::P_INC8, "P_INC8", 1, 0, ResponseType::None,
       CommandKind::PostedAtomic, 0},
      {Rqst::XOR16, "XOR16", 2, 2, ResponseType::RD_RS, CommandKind::Atomic,
       16},
      {Rqst::OR16, "OR16", 2, 2, ResponseType::RD_RS, CommandKind::Atomic,
       16},
      {Rqst::NOR16, "NOR16", 2, 2, ResponseType::RD_RS, CommandKind::Atomic,
       16},
      {Rqst::AND16, "AND16", 2, 2, ResponseType::RD_RS, CommandKind::Atomic,
       16},
      {Rqst::NAND16, "NAND16", 2, 2, ResponseType::RD_RS, CommandKind::Atomic,
       16},
      {Rqst::CASGT8, "CASGT8", 2, 2, ResponseType::RD_RS, CommandKind::Atomic,
       16},
      {Rqst::CASGT16, "CASGT16", 2, 2, ResponseType::RD_RS,
       CommandKind::Atomic, 16},
      {Rqst::CASLT8, "CASLT8", 2, 2, ResponseType::RD_RS, CommandKind::Atomic,
       16},
      {Rqst::CASLT16, "CASLT16", 2, 2, ResponseType::RD_RS,
       CommandKind::Atomic, 16},
      {Rqst::CASEQ8, "CASEQ8", 2, 2, ResponseType::RD_RS, CommandKind::Atomic,
       16},
      {Rqst::CASZERO16, "CASZERO16", 2, 2, ResponseType::RD_RS,
       CommandKind::Atomic, 16},
      {Rqst::EQ8, "EQ8", 2, 1, ResponseType::WR_RS, CommandKind::Atomic, 16},
      {Rqst::EQ16, "EQ16", 2, 1, ResponseType::WR_RS, CommandKind::Atomic,
       16},
      {Rqst::BWR8R, "BWR8R", 2, 2, ResponseType::RD_RS, CommandKind::Atomic,
       16},
      {Rqst::SWAP16, "SWAP16", 2, 2, ResponseType::RD_RS, CommandKind::Atomic,
       16},
  };
  for (const auto& d : amos) {
    set(make(d.r, d.n, d.rq, d.rs, d.rsp, d.k, d.bytes));
  }

  return t;
}

constexpr std::array<CommandInfo, 128> kTable = build_table();

constexpr std::array<Rqst, kNumCmcCodes> build_cmc_list() {
  std::array<Rqst, kNumCmcCodes> out{};
  std::size_t n = 0;
  for (std::size_t code = 0; code < 128; ++code) {
    if (is_cmc(static_cast<Rqst>(code))) {
      out[n++] = static_cast<Rqst>(code);
    }
  }
  return out;
}

constexpr std::array<Rqst, kNumCmcCodes> kCmcList = build_cmc_list();

// Compile-time sanity: exactly 70 CMC codes exist (the paper's claim).
static_assert([] {
  std::size_t n = 0;
  for (std::size_t code = 0; code < 128; ++code) {
    if (is_cmc(static_cast<Rqst>(code))) {
      ++n;
    }
  }
  return n == kNumCmcCodes;
}());

}  // namespace

std::span<const CommandInfo> all_commands() noexcept { return kTable; }

const CommandInfo& command_info(Rqst rqst) noexcept {
  return kTable[static_cast<std::uint8_t>(rqst)];
}

std::optional<CommandInfo> command_info(std::uint8_t cmd) noexcept {
  if (cmd >= kTable.size()) {
    return std::nullopt;
  }
  return kTable[cmd];
}

std::optional<Rqst> parse_rqst(std::string_view name) noexcept {
  const auto it =
      std::find_if(kTable.begin(), kTable.end(),
                   [name](const CommandInfo& c) { return c.name == name; });
  if (it == kTable.end() || it->name == "?") {
    return std::nullopt;
  }
  return it->rqst;
}

std::string_view to_string(Rqst rqst) noexcept {
  return command_info(rqst).name;
}

std::string_view to_string(ResponseType rsp) noexcept {
  switch (rsp) {
    case ResponseType::None:
      return "NONE";
    case ResponseType::RD_RS:
      return "RD_RS";
    case ResponseType::WR_RS:
      return "WR_RS";
    case ResponseType::MD_RD_RS:
      return "MD_RD_RS";
    case ResponseType::MD_WR_RS:
      return "MD_WR_RS";
    case ResponseType::RSP_ERROR:
      return "RSP_ERROR";
    case ResponseType::RSP_CMC:
      return "RSP_CMC";
  }
  return "?";
}

std::string_view to_string(CommandKind kind) noexcept {
  switch (kind) {
    case CommandKind::Flow:
      return "FLOW";
    case CommandKind::Read:
      return "READ";
    case CommandKind::Write:
      return "WRITE";
    case CommandKind::PostedWrite:
      return "POSTED_WRITE";
    case CommandKind::ModeRead:
      return "MODE_READ";
    case CommandKind::ModeWrite:
      return "MODE_WRITE";
    case CommandKind::Atomic:
      return "ATOMIC";
    case CommandKind::PostedAtomic:
      return "POSTED_ATOMIC";
    case CommandKind::Cmc:
      return "CMC";
  }
  return "?";
}

std::optional<Rqst> cmc_for_code(std::uint8_t cmd) noexcept {
  if (cmd >= 128 || !is_cmc(static_cast<Rqst>(cmd))) {
    return std::nullopt;
  }
  return static_cast<Rqst>(cmd);
}

std::span<const Rqst> all_cmc_commands() noexcept { return kCmcList; }

}  // namespace hmcsim::spec
