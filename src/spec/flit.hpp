// flit.hpp — FLIT-level constants of the HMC 2.1 packet protocol.
//
// All HMC traffic is carved into FLITs of 128 bits (16 bytes). A packet is
// 1..17 FLITs: one header/tail FLIT (64-bit header + 64-bit tail) plus up to
// 16 data FLITs (256 bytes).
#pragma once

#include <cstddef>
#include <cstdint>

namespace hmcsim::spec {

/// Size of one FLIT in bytes (128 bits).
inline constexpr std::size_t kFlitBytes = 16;

/// Size of one FLIT in bits.
inline constexpr std::size_t kFlitBits = 128;

/// A packet never exceeds 17 FLITs (256-byte write: 1 header/tail + 16 data).
inline constexpr std::size_t kMaxPacketFlits = 17;

/// Maximum data payload in bytes (16 data FLITs).
inline constexpr std::size_t kMaxDataBytes = 256;

/// Minimum DRAM access granularity in bytes (one FLIT).
inline constexpr std::size_t kMinAccessBytes = 16;

/// Number of 64-bit words in a maximal packet (2 per FLIT).
inline constexpr std::size_t kMaxPacketWords = kMaxPacketFlits * 2;

/// Convert a data payload size in bytes to the number of data FLITs.
[[nodiscard]] constexpr std::size_t data_flits(std::size_t bytes) noexcept {
  return (bytes + kFlitBytes - 1) / kFlitBytes;
}

/// Total packet FLITs for a given data payload (header/tail FLIT + data).
[[nodiscard]] constexpr std::size_t packet_flits(
    std::size_t data_bytes) noexcept {
  return 1 + data_flits(data_bytes);
}

}  // namespace hmcsim::spec
