// commands.hpp — the complete HMC 2.0/2.1 request command set.
//
// Every request command of the Gen2 specification is enumerated here with
// its 7-bit transaction-layer command code, and — reproducing Table I of the
// paper — its request and response FLIT counts. The 70 command codes the
// Gen2 spec leaves unused are enumerated as CMCnn (nn = decimal code), the
// exact scheme HMC-Sim 2.0 uses to host Custom Memory Cube operations while
// staying wire-compatible with the Gen2 packet format.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>

#include "spec/flit.hpp"

namespace hmcsim::spec {

/// 7-bit request command codes (HMC 2.1 transaction layer).
///
/// Enumerator values ARE the wire encoding, so conversion between the enum
/// and the packet CMD field is a cast. CMCnn enumerators cover every unused
/// code; there are exactly 70 of them.
enum class Rqst : std::uint8_t {
  // --- Flow commands (link-layer; never routed to a vault) -------------
  FLOW_NULL = 0,  ///< Null FLIT filler.
  PRET = 1,       ///< Packet retry pointer return.
  TRET = 2,       ///< Token return.
  IRTRY = 3,      ///< Init retry.

  // --- Write requests ---------------------------------------------------
  WR16 = 8,
  WR32 = 9,
  WR48 = 10,
  WR64 = 11,
  WR80 = 12,
  WR96 = 13,
  WR112 = 14,
  WR128 = 15,
  WR256 = 79,  ///< Gen2 addition (Table I).

  // --- Mode (register) access -------------------------------------------
  MD_WR = 16,  ///< Mode write: internal register write.
  MD_RD = 40,  ///< Mode read: internal register read.

  // --- Gen1 atomics carried forward --------------------------------------
  BWR = 17,      ///< 8-byte bit write (data+mask).
  TWOADD8 = 18,  ///< Dual 8-byte signed add immediate.
  ADD16 = 19,    ///< Single 16-byte signed add immediate.

  // --- Posted writes ------------------------------------------------------
  P_WR16 = 24,
  P_WR32 = 25,
  P_WR48 = 26,
  P_WR64 = 27,
  P_WR80 = 28,
  P_WR96 = 29,
  P_WR112 = 30,
  P_WR128 = 31,
  P_WR256 = 95,  ///< Gen2 addition (Table I).

  // --- Posted atomics (Gen1) ----------------------------------------------
  P_BWR = 33,
  P_2ADD8 = 34,
  P_ADD16 = 35,

  // --- Read requests --------------------------------------------------------
  RD16 = 48,
  RD32 = 49,
  RD48 = 50,
  RD64 = 51,
  RD80 = 52,
  RD96 = 53,
  RD112 = 54,
  RD128 = 55,
  RD256 = 119,  ///< Gen2 addition (Table I).

  // --- Gen2 boolean atomics (Table I) ---------------------------------------
  XOR16 = 64,
  OR16 = 65,
  NOR16 = 66,
  AND16 = 67,
  NAND16 = 68,

  // --- Gen2 arithmetic atomics (Table I) -------------------------------------
  INC8 = 80,       ///< 8-byte increment.
  BWR8R = 81,      ///< Bit write with return.
  TWOADDS8R = 82,  ///< Dual 8-byte signed add immediate with return.
  ADDS16R = 83,    ///< Single 16-byte signed add immediate with return.
  P_INC8 = 84,     ///< Posted 8-byte increment.

  // --- Gen2 compare atomics (Table I) ------------------------------------------
  CASGT8 = 96,      ///< 8-byte CAS if greater-than.
  CASLT8 = 97,      ///< 8-byte CAS if less-than.
  CASGT16 = 98,     ///< 16-byte CAS if greater-than.
  CASLT16 = 99,     ///< 16-byte CAS if less-than.
  CASEQ8 = 100,     ///< 8-byte CAS if equal.
  CASZERO16 = 101,  ///< 16-byte CAS if zero.
  EQ16 = 104,       ///< 16-byte equality test.
  EQ8 = 105,        ///< 8-byte equality test.
  SWAP16 = 106,     ///< 16-byte swap/exchange.

  // --- Custom Memory Cube commands ----------------------------------------------
  // The 70 codes unused by the Gen2 spec, enumerated as the paper describes
  // (Section IV-C1): "Each of the seventy unused command codes was added to
  // the hmc_rqst_t enumerated type table as CMCnn".
  CMC04 = 4,
  CMC05 = 5,
  CMC06 = 6,
  CMC07 = 7,
  CMC20 = 20,
  CMC21 = 21,
  CMC22 = 22,
  CMC23 = 23,
  CMC32 = 32,
  CMC36 = 36,
  CMC37 = 37,
  CMC38 = 38,
  CMC39 = 39,
  CMC41 = 41,
  CMC42 = 42,
  CMC43 = 43,
  CMC44 = 44,
  CMC45 = 45,
  CMC46 = 46,
  CMC47 = 47,
  CMC56 = 56,
  CMC57 = 57,
  CMC58 = 58,
  CMC59 = 59,
  CMC60 = 60,
  CMC61 = 61,
  CMC62 = 62,
  CMC63 = 63,
  CMC69 = 69,
  CMC70 = 70,
  CMC71 = 71,
  CMC72 = 72,
  CMC73 = 73,
  CMC74 = 74,
  CMC75 = 75,
  CMC76 = 76,
  CMC77 = 77,
  CMC78 = 78,
  CMC85 = 85,
  CMC86 = 86,
  CMC87 = 87,
  CMC88 = 88,
  CMC89 = 89,
  CMC90 = 90,
  CMC91 = 91,
  CMC92 = 92,
  CMC93 = 93,
  CMC94 = 94,
  CMC102 = 102,
  CMC103 = 103,
  CMC107 = 107,
  CMC108 = 108,
  CMC109 = 109,
  CMC110 = 110,
  CMC111 = 111,
  CMC112 = 112,
  CMC113 = 113,
  CMC114 = 114,
  CMC115 = 115,
  CMC116 = 116,
  CMC117 = 117,
  CMC118 = 118,
  CMC120 = 120,
  CMC121 = 121,
  CMC122 = 122,
  CMC123 = 123,
  CMC124 = 124,
  CMC125 = 125,
  CMC126 = 126,
  CMC127 = 127,
};

/// Number of CMC (unused Gen2) command codes — the paper's "seventy".
inline constexpr std::size_t kNumCmcCodes = 70;

/// Response packet command types (hmc_response_t in the paper).
enum class ResponseType : std::uint8_t {
  None = 0,      ///< Posted request: no response packet is generated.
  RD_RS = 0x38,  ///< Read response (carries data FLITs).
  WR_RS = 0x39,  ///< Write response (header/tail only).
  MD_RD_RS = 0x3A,
  MD_WR_RS = 0x3B,
  RSP_ERROR = 0x3E,
  /// Custom response command: the paper's RSP_CMC. The actual 8-bit wire
  /// code is supplied by the CMC plugin at registration time.
  RSP_CMC = 0xFF,
};

/// Broad behavioural class of a request command.
enum class CommandKind : std::uint8_t {
  Flow,         ///< Link-layer flow control; consumed at the link.
  Read,         ///< DRAM read.
  Write,        ///< DRAM write with response.
  PostedWrite,  ///< DRAM write without response.
  ModeRead,     ///< Internal register read (JTAG-visible register file).
  ModeWrite,    ///< Internal register write.
  Atomic,       ///< Logic-layer read-modify-write with response.
  PostedAtomic, ///< Logic-layer read-modify-write without response.
  Cmc,          ///< Custom Memory Cube slot (behaviour defined by plugin).
};

/// Static description of one request command — one row of Table I.
struct CommandInfo {
  Rqst rqst;               ///< Enumerated command.
  std::string_view name;   ///< Stable mnemonic ("RD256", "CMC125", ...).
  std::uint8_t cmd;        ///< 7-bit wire command code.
  std::uint8_t rqst_flits; ///< Total request packet length in FLITs.
  std::uint8_t rsp_flits;  ///< Total response packet length (0 == posted).
  ResponseType rsp;        ///< Response command type.
  CommandKind kind;        ///< Behavioural class.
  std::uint16_t data_bytes; ///< Request data payload size in bytes.
};

/// Full command database in ascending command-code order (128 entries).
[[nodiscard]] std::span<const CommandInfo> all_commands() noexcept;

/// Look up by enumerated command. Every Rqst value has an entry.
[[nodiscard]] const CommandInfo& command_info(Rqst rqst) noexcept;

/// Look up by 7-bit wire code; nullopt if code > 127.
[[nodiscard]] std::optional<CommandInfo> command_info(
    std::uint8_t cmd) noexcept;

/// Parse a mnemonic ("INC8", "CMC125"); nullopt if unknown.
[[nodiscard]] std::optional<Rqst> parse_rqst(std::string_view name) noexcept;

/// Stable mnemonic for a command.
[[nodiscard]] std::string_view to_string(Rqst rqst) noexcept;

/// Stable mnemonic for a response type.
[[nodiscard]] std::string_view to_string(ResponseType rsp) noexcept;

/// Stable mnemonic for a command kind.
[[nodiscard]] std::string_view to_string(CommandKind kind) noexcept;

/// True if the command occupies one of the 70 CMC slots.
[[nodiscard]] constexpr bool is_cmc(Rqst rqst) noexcept {
  switch (static_cast<std::uint8_t>(rqst)) {
    case 4: case 5: case 6: case 7:
    case 20: case 21: case 22: case 23:
    case 32:
    case 36: case 37: case 38: case 39:
    case 41: case 42: case 43: case 44: case 45: case 46: case 47:
    case 56: case 57: case 58: case 59: case 60: case 61: case 62: case 63:
    case 69: case 70: case 71: case 72: case 73: case 74: case 75: case 76:
    case 77: case 78:
    case 85: case 86: case 87: case 88: case 89: case 90: case 91: case 92:
    case 93: case 94:
    case 102: case 103:
    case 107: case 108: case 109: case 110: case 111: case 112: case 113:
    case 114: case 115: case 116: case 117: case 118:
    case 120: case 121: case 122: case 123: case 124: case 125: case 126:
    case 127:
      return true;
    default:
      return false;
  }
}

/// True if the command is link-layer flow control.
[[nodiscard]] constexpr bool is_flow(Rqst rqst) noexcept {
  return static_cast<std::uint8_t>(rqst) <= 3;
}

/// The CMC command for a raw code in [0,127] that is a CMC slot; nullopt
/// otherwise.
[[nodiscard]] std::optional<Rqst> cmc_for_code(std::uint8_t cmd) noexcept;

/// All 70 CMC commands in ascending code order.
[[nodiscard]] std::span<const Rqst> all_cmc_commands() noexcept;

}  // namespace hmcsim::spec
