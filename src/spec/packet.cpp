#include "spec/packet.hpp"

#include <algorithm>
#include <sstream>

#include "spec/crc32.hpp"

namespace hmcsim::spec {
namespace {

/// Serialise head/data/tail into a word buffer with the CRC field zeroed,
/// for CRC computation. Returns word count.
template <typename Packet>
std::size_t words_for_crc(const Packet& pkt,
                          std::span<std::uint64_t> scratch) noexcept {
  const std::size_t n = serialize(pkt, scratch);
  if (n == 0) {
    return 0;
  }
  // Tail is the last word; its CRC field is [63:32] for both formats.
  scratch[n - 1] &= 0x00000000FFFFFFFFULL;
  return n;
}

}  // namespace

Status validate_request(const RqstParams& params) {
  const CommandInfo& info = command_info(params.rqst);
  std::uint32_t flits = info.rqst_flits;
  if (params.flits_override != 0) {
    if (info.kind != CommandKind::Cmc) {
      return Status::InvalidArg(
          "flits_override is only valid for CMC commands");
    }
    flits = params.flits_override;
  }
  if (flits == 0 || flits > kMaxPacketFlits) {
    return Status::InvalidArg("request length out of range: " +
                              std::to_string(flits) + " FLITs");
  }
  if (!RqstHead::Adrs::holds(params.addr)) {
    return Status::InvalidArg("address exceeds 34-bit ADRS field");
  }
  if (!RqstHead::Tag::holds(params.tag)) {
    return Status::InvalidArg("tag exceeds 11-bit TAG field");
  }
  if (!RqstHead::Cub::holds(params.cub)) {
    return Status::InvalidArg("cub exceeds 3-bit CUB field");
  }
  const std::size_t payload_words = 2 * (static_cast<std::size_t>(flits) - 1);
  if (params.payload.size() > payload_words) {
    return Status::InvalidArg("payload larger than packet data section");
  }
  return Status::Ok();
}

Status build_request(const RqstParams& params, RqstPacket& out) {
  if (Status s = validate_request(params); !s.ok()) {
    return s;
  }
  const CommandInfo& info = command_info(params.rqst);
  const std::uint32_t flits =
      params.flits_override != 0 ? params.flits_override : info.rqst_flits;

  out = RqstPacket{};
  std::uint64_t head = 0;
  head = RqstHead::Cmd::set(head, static_cast<std::uint64_t>(params.rqst));
  head = RqstHead::Lng::set(head, flits);
  head = RqstHead::Tag::set(head, params.tag);
  head = RqstHead::Adrs::set(head, params.addr);
  head = RqstHead::Cub::set(head, params.cub);
  out.head = head;

  std::copy(params.payload.begin(), params.payload.end(), out.data.begin());

  // Sequence/retry-pointer fields are link-layer concerns filled by the
  // link model; the builder leaves them zero and seals the CRC.
  out.tail = RqstTail::Crc::set(0, packet_crc(out));
  return Status::Ok();
}

Status build_response(const RspParams& params, RspPacket& out) {
  if (params.flits == 0 || params.flits > kMaxPacketFlits) {
    return Status::InvalidArg("response length out of range: " +
                              std::to_string(params.flits) + " FLITs");
  }
  if (!RspHead::Cmd::holds(params.rsp_cmd_code)) {
    return Status::InvalidArg("response command exceeds 7-bit CMD field");
  }
  if (!RspHead::Tag::holds(params.tag)) {
    return Status::InvalidArg("tag exceeds 11-bit TAG field");
  }
  if (!RspTail::Errstat::holds(params.errstat)) {
    return Status::InvalidArg("errstat exceeds 7-bit ERRSTAT field");
  }
  const std::size_t payload_words =
      2 * (static_cast<std::size_t>(params.flits) - 1);
  if (params.payload.size() > payload_words) {
    return Status::InvalidArg("payload larger than packet data section");
  }

  out = RspPacket{};
  std::uint64_t head = 0;
  head = RspHead::Cmd::set(head, params.rsp_cmd_code);
  head = RspHead::Lng::set(head, params.flits);
  head = RspHead::Tag::set(head, params.tag);
  head = RspHead::Af::set(head, params.atomic_flag ? 1 : 0);
  head = RspHead::Slid::set(head, params.slid);
  head = RspHead::Cub::set(head, params.cub);
  out.head = head;

  std::copy(params.payload.begin(), params.payload.end(), out.data.begin());
  std::uint64_t tail = 0;
  tail = RspTail::Errstat::set(tail, params.errstat);
  out.tail = tail;
  out.tail = RspTail::Crc::set(out.tail, packet_crc(out));
  return Status::Ok();
}

std::size_t serialize(const RqstPacket& pkt,
                      std::span<std::uint64_t> out) noexcept {
  const std::uint32_t flits = pkt.flits();
  if (flits == 0 || flits > kMaxPacketFlits || out.size() < 2 * flits) {
    return 0;
  }
  const std::size_t payload_words = 2 * (static_cast<std::size_t>(flits) - 1);
  out[0] = pkt.head;
  std::copy_n(pkt.data.begin(), payload_words, out.begin() + 1);
  out[payload_words + 1] = pkt.tail;
  return payload_words + 2;
}

std::size_t serialize(const RspPacket& pkt,
                      std::span<std::uint64_t> out) noexcept {
  const std::uint32_t flits = pkt.flits();
  if (flits == 0 || flits > kMaxPacketFlits || out.size() < 2 * flits) {
    return 0;
  }
  const std::size_t payload_words = 2 * (static_cast<std::size_t>(flits) - 1);
  out[0] = pkt.head;
  std::copy_n(pkt.data.begin(), payload_words, out.begin() + 1);
  out[payload_words + 1] = pkt.tail;
  return payload_words + 2;
}

Status parse_request(std::span<const std::uint64_t> words, RqstPacket& out) {
  if (words.size() < 2) {
    return Status::InvalidArg("packet stream shorter than head+tail");
  }
  const auto flits =
      static_cast<std::uint32_t>(RqstHead::Lng::get(words.front()));
  if (flits == 0 || flits > kMaxPacketFlits) {
    return Status::InvalidArg("LNG field out of range");
  }
  if (words.size() != 2 * flits) {
    return Status::InvalidArg("stream size does not match LNG field");
  }
  out = RqstPacket{};
  out.head = words.front();
  out.tail = words.back();
  std::copy(words.begin() + 1, words.end() - 1, out.data.begin());
  if (!verify_crc(out)) {
    return Status::InvalidArg("request CRC mismatch");
  }
  return Status::Ok();
}

Status parse_response(std::span<const std::uint64_t> words, RspPacket& out) {
  if (words.size() < 2) {
    return Status::InvalidArg("packet stream shorter than head+tail");
  }
  const auto flits =
      static_cast<std::uint32_t>(RspHead::Lng::get(words.front()));
  if (flits == 0 || flits > kMaxPacketFlits) {
    return Status::InvalidArg("LNG field out of range");
  }
  if (words.size() != 2 * flits) {
    return Status::InvalidArg("stream size does not match LNG field");
  }
  out = RspPacket{};
  out.head = words.front();
  out.tail = words.back();
  std::copy(words.begin() + 1, words.end() - 1, out.data.begin());
  if (!verify_crc(out)) {
    return Status::InvalidArg("response CRC mismatch");
  }
  return Status::Ok();
}

std::uint32_t packet_crc(const RqstPacket& pkt) noexcept {
  std::array<std::uint64_t, kMaxPacketWords> scratch{};
  const std::size_t n = words_for_crc(pkt, scratch);
  return crc32k_words({scratch.data(), n});
}

std::uint32_t packet_crc(const RspPacket& pkt) noexcept {
  std::array<std::uint64_t, kMaxPacketWords> scratch{};
  const std::size_t n = words_for_crc(pkt, scratch);
  return crc32k_words({scratch.data(), n});
}

bool verify_crc(const RqstPacket& pkt) noexcept {
  return RqstTail::Crc::get(pkt.tail) == packet_crc(pkt);
}

bool verify_crc(const RspPacket& pkt) noexcept {
  return RspTail::Crc::get(pkt.tail) == packet_crc(pkt);
}

void reseal_crc(RqstPacket& pkt) noexcept {
  pkt.tail = RqstTail::Crc::set(pkt.tail, packet_crc(pkt));
}

void reseal_crc(RspPacket& pkt) noexcept {
  pkt.tail = RspTail::Crc::set(pkt.tail, packet_crc(pkt));
}

std::string to_string(const RqstPacket& pkt) {
  std::ostringstream oss;
  const auto info = command_info(pkt.cmd());
  oss << "RQST{cmd=" << (info ? info->name : "?")
      << " code=" << static_cast<unsigned>(pkt.cmd())
      << " lng=" << pkt.flits() << " tag=" << pkt.tag() << " addr=0x"
      << std::hex << pkt.addr() << std::dec
      << " cub=" << static_cast<unsigned>(pkt.cub())
      << " slid=" << static_cast<unsigned>(pkt.slid()) << "}";
  return oss.str();
}

std::string to_string(const RspPacket& pkt) {
  std::ostringstream oss;
  oss << "RSP{code=" << static_cast<unsigned>(pkt.cmd())
      << " lng=" << pkt.flits() << " tag=" << pkt.tag()
      << " af=" << (pkt.atomic_flag() ? 1 : 0)
      << " errstat=" << static_cast<unsigned>(pkt.errstat())
      << " slid=" << static_cast<unsigned>(pkt.slid()) << "}";
  return oss.str();
}

}  // namespace hmcsim::spec
