# cli_error_injection.cmake — deterministic error-injection run via the CLI.
#
# Drives the mutex workload with a fixed injector seed and a nonzero FLIT
# error rate, three times:
#   1. active-set scheduling        -> cli_error_active.json
#   2. active-set again (same seed) -> cli_error_repeat.json  (reproducibility)
#   3. --exhaustive-clock           -> cli_error_golden.json  (equivalence)
# All three stats documents must be byte-identical, and the retry machinery
# must actually have fired (a zero-retry run would validate nothing).
# CI copies cli_error_active.json next to the benchmark artifacts as
# BENCH_error_injection.json. Invoked as:
#   cmake -DCLI=<hmcsim_cli> -DOUT_DIR=<dir> -P cli_error_injection.cmake
if(NOT DEFINED CLI OR NOT DEFINED OUT_DIR)
  message(FATAL_ERROR "usage: cmake -DCLI=<exe> -DOUT_DIR=<dir> -P ${CMAKE_SCRIPT_MODE_FILE}")
endif()

set(inject_args mutex 16 --error-ppm 200000 --error-seed 0xD1CE
    --retry-latency 6)

function(run_injected json_path extra_flags)
  execute_process(
    COMMAND "${CLI}" ${inject_args} ${extra_flags}
            --stats-json "${json_path}"
    OUTPUT_VARIABLE run_stdout
    ERROR_VARIABLE run_stderr
    RESULT_VARIABLE run_rc)
  if(NOT run_rc EQUAL 0)
    message(FATAL_ERROR "hmcsim_cli exited with ${run_rc}\n${run_stdout}\n${run_stderr}")
  endif()
  if(NOT EXISTS "${json_path}")
    message(FATAL_ERROR "--stats-json wrote no file at ${json_path}")
  endif()
endfunction()

set(active_json "${OUT_DIR}/cli_error_active.json")
set(repeat_json "${OUT_DIR}/cli_error_repeat.json")
set(golden_json "${OUT_DIR}/cli_error_golden.json")
run_injected("${active_json}" "")
run_injected("${repeat_json}" "")
run_injected("${golden_json}" "--exhaustive-clock")

file(READ "${active_json}" active)
file(READ "${repeat_json}" repeat)
file(READ "${golden_json}" golden)
if(NOT active STREQUAL repeat)
  message(FATAL_ERROR "same seed, different stats: error injection is not deterministic")
endif()
if(NOT active STREQUAL golden)
  message(FATAL_ERROR "active-set and exhaustive schedulers diverge under error injection")
endif()

# The run must have exercised the retry path: some link's `retries`
# counter (and the parked-FLIT gauge, drained back to zero) must appear.
if(NOT active MATCHES "\"retries\": [1-9]")
  message(FATAL_ERROR "no link retries recorded; injection rate too low?\n${active}")
endif()
if(NOT active MATCHES "\"retry_buffered_flits\": 0[,\n]")
  message(FATAL_ERROR "retry buffers did not drain to zero:\n${active}")
endif()
