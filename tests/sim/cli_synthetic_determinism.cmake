# cli_synthetic_determinism.cmake — the synthetic load generator is a pure
# function of its seed.
#
# Runs the same fixed-seed invocation twice and demands byte-identical
# stats JSON, then flips the seed and demands a different one. A frontend
# whose randomness leaks in from anywhere but Config::workload_seed (time,
# ASLR, global state) fails the first check; a frontend that ignores the
# seed fails the second.
# Invoked as:
#   cmake -DCLI=<hmcsim_cli> -DPATTERN=<pattern> -DOUT_DIR=<dir>
#         -P cli_synthetic_determinism.cmake
if(NOT DEFINED CLI OR NOT DEFINED PATTERN OR NOT DEFINED OUT_DIR)
  message(FATAL_ERROR "usage: cmake -DCLI=<exe> -DPATTERN=<pattern> -DOUT_DIR=<dir> -P ${CMAKE_SCRIPT_MODE_FILE}")
endif()

function(run_synthetic seed json_path)
  execute_process(
    COMMAND "${CLI}" synthetic --pattern "${PATTERN}" --count 512
            --rate 0.5 --seed "${seed}" --stats-json "${json_path}"
    OUTPUT_VARIABLE run_stdout
    ERROR_VARIABLE run_stderr
    RESULT_VARIABLE run_rc)
  if(NOT run_rc EQUAL 0)
    message(FATAL_ERROR "hmcsim_cli exited with ${run_rc}\n${run_stdout}\n${run_stderr}")
  endif()
  if(NOT run_stdout MATCHES "synthetic\\(${PATTERN}\\): 512 requests")
    message(FATAL_ERROR "unexpected summary:\n${run_stdout}")
  endif()
endfunction()

set(a "${OUT_DIR}/cli_synthetic_${PATTERN}_a.json")
set(b "${OUT_DIR}/cli_synthetic_${PATTERN}_b.json")
set(c "${OUT_DIR}/cli_synthetic_${PATTERN}_c.json")
run_synthetic(12345 "${a}")
run_synthetic(12345 "${b}")
run_synthetic(54321 "${c}")

file(READ "${a}" run_a)
file(READ "${b}" run_b)
file(READ "${c}" run_c)
if(NOT run_a STREQUAL run_b)
  message(FATAL_ERROR "same seed produced different stats for pattern ${PATTERN}: the generator is not seed-deterministic")
endif()
if(run_a STREQUAL run_c)
  message(FATAL_ERROR "different seeds produced identical stats for pattern ${PATTERN}: the generator ignores --seed")
endif()
# The stats JSON nests paths, so match the group and leaf keys.
if(NOT run_a MATCHES "\"synthetic\"" OR NOT run_a MATCHES "\"requests\"")
  message(FATAL_ERROR "stats JSON lacks host.synthetic.* counters:\n${run_a}")
endif()
