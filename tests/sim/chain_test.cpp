// chain_test.cpp — multi-device (chained cube) routing tests, the HMC-Sim
// 1.0 chaining feature carried forward into 2.0.
#include <gtest/gtest.h>

#include <array>

#include "src/sim/simulator.hpp"

namespace hmcsim::sim {
namespace {

class ChainTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Config cfg = Config::hmc_4link_4gb();
    cfg.num_devs = 4;
    ASSERT_TRUE(Simulator::create(cfg, sim_).ok());
  }

  Response roundtrip(const spec::RqstParams& params, std::uint32_t link = 0) {
    Status s = sim_->send(params, link);
    int guard = 0;
    while (s.stalled() && guard++ < 10000) {
      sim_->clock();
      s = sim_->send(params, link);
    }
    EXPECT_TRUE(s.ok()) << s.to_string();
    Response rsp;
    guard = 0;
    while (!sim_->rsp_ready(link) && guard++ < 10000) {
      sim_->clock();
    }
    EXPECT_TRUE(sim_->recv(link, rsp).ok());
    return rsp;
  }

  std::unique_ptr<Simulator> sim_;
};

TEST_F(ChainTest, CreatesRequestedDevices) {
  EXPECT_EQ(sim_->num_devices(), 4U);
  for (std::uint32_t d = 0; d < 4; ++d) {
    EXPECT_EQ(sim_->device(d).id(), d);
    std::uint64_t id = 0;
    ASSERT_TRUE(sim_->jtag_read(
        d, static_cast<std::uint32_t>(dev::Reg::DeviceId), id).ok());
    EXPECT_EQ(id, d);
  }
}

TEST_F(ChainTest, WriteReadOnRemoteCube) {
  const std::array<std::uint64_t, 2> data{0x1234, 0x5678};
  spec::RqstParams wr;
  wr.rqst = spec::Rqst::WR16;
  wr.addr = 0x1000;
  wr.cub = 3;
  wr.payload = data;
  Response rsp = roundtrip(wr);
  EXPECT_EQ(rsp.pkt.cmd(), 0x39);
  EXPECT_EQ(rsp.pkt.cub(), 3);

  // The data lives on device 3, not device 0.
  std::uint64_t v = 0;
  ASSERT_TRUE(sim_->device(3).store().read_u64(0x1000, v).ok());
  EXPECT_EQ(v, 0x1234ULL);
  ASSERT_TRUE(sim_->device(0).store().read_u64(0x1000, v).ok());
  EXPECT_EQ(v, 0ULL);

  spec::RqstParams rd;
  rd.rqst = spec::Rqst::RD16;
  rd.addr = 0x1000;
  rd.cub = 3;
  rsp = roundtrip(rd);
  EXPECT_EQ(rsp.pkt.payload()[0], 0x1234ULL);
}

TEST_F(ChainTest, LatencyGrowsWithHopDistance) {
  std::array<std::uint64_t, 4> latency{};
  for (std::uint8_t cub = 0; cub < 4; ++cub) {
    spec::RqstParams rd;
    rd.rqst = spec::Rqst::RD16;
    rd.addr = 0x40;
    rd.cub = cub;
    rd.tag = cub;
    latency[cub] = roundtrip(rd).latency;
  }
  // Local access: the 3-cycle round trip. The first chain step costs +3
  // (request hop, response hop, and the remote cube's chain-egress staging
  // cycle); each further step adds one request hop + one response hop.
  EXPECT_EQ(latency[0], 3U);
  EXPECT_EQ(latency[1], 6U);
  for (int cub = 2; cub < 4; ++cub) {
    EXPECT_EQ(latency[cub], latency[cub - 1] + 2)
        << "one request hop + one response hop per additional chain step";
  }
}

TEST_F(ChainTest, ForwardingCountersTrack) {
  spec::RqstParams rd;
  rd.rqst = spec::Rqst::RD16;
  rd.cub = 2;
  (void)roundtrip(rd);
  EXPECT_EQ(sim_->device(0).forwarded_rqsts().value(), 1U);
  EXPECT_EQ(sim_->device(1).forwarded_rqsts().value(), 1U);
  EXPECT_EQ(sim_->device(2).forwarded_rqsts().value(), 0U);
  EXPECT_EQ(sim_->device(1).forwarded_rsps().value(), 1U);
  EXPECT_EQ(sim_->device(2).forwarded_rsps().value(), 1U);
}

TEST_F(ChainTest, AtomicOnRemoteCube) {
  ASSERT_TRUE(sim_->device(2).store().write_u64(0x80, 9).ok());
  spec::RqstParams inc;
  inc.rqst = spec::Rqst::INC8;
  inc.addr = 0x80;
  inc.cub = 2;
  (void)roundtrip(inc);
  std::uint64_t v = 0;
  ASSERT_TRUE(sim_->device(2).store().read_u64(0x80, v).ok());
  EXPECT_EQ(v, 10ULL);
}

TEST_F(ChainTest, RouteTraceEmitsHops) {
  trace::CountingSink sink;
  sim_->tracer().attach(&sink);
  sim_->tracer().set_level(trace::Level::Route);
  spec::RqstParams rd;
  rd.rqst = spec::Rqst::RD16;
  rd.cub = 3;
  (void)roundtrip(rd);
  sim_->tracer().detach(&sink);
  EXPECT_EQ(sink.count(trace::Level::Route), 3U);  // dev0->1->2->3.
}

TEST_F(ChainTest, InterleavedTrafficToAllCubes) {
  // Four tags in flight, one per cube, all on link 0.
  for (std::uint8_t cub = 0; cub < 4; ++cub) {
    spec::RqstParams rd;
    rd.rqst = spec::Rqst::RD16;
    rd.addr = 0x40;
    rd.cub = cub;
    rd.tag = cub;
    ASSERT_TRUE(sim_->send(rd, 0).ok());
  }
  int received = 0;
  std::array<bool, 4> seen{};
  for (int i = 0; i < 40 && received < 4; ++i) {
    sim_->clock();
    while (sim_->rsp_ready(0)) {
      Response rsp;
      ASSERT_TRUE(sim_->recv(0, rsp).ok());
      seen[rsp.pkt.tag()] = true;
      ++received;
    }
  }
  EXPECT_EQ(received, 4);
  for (const bool s : seen) {
    EXPECT_TRUE(s);
  }
}

TEST(ChainConfig, MaxEightCubes) {
  Config cfg = Config::hmc_4link_4gb();
  cfg.num_devs = 8;
  std::unique_ptr<Simulator> sim;
  ASSERT_TRUE(Simulator::create(cfg, sim).ok());
  EXPECT_EQ(sim->num_devices(), 8U);
  cfg.num_devs = 9;
  EXPECT_FALSE(Simulator::create(cfg, sim).ok());
}

}  // namespace
}  // namespace hmcsim::sim
