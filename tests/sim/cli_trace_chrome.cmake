# cli_trace_chrome.cmake — --trace-chrome emits a well-formed document.
#
# Replays the committed golden workload with --trace-chrome and checks the
# structural invariants of the Chrome trace-event array (the full schema
# check lives in tests/trace/chrome_trace_test.cpp; this guards the CLI
# wiring: the sink is attached, flushed and finalised on exit):
#   * the document is a JSON array (opens with '[', closes with ']');
#   * process/thread metadata ("M"), async spans ("b"/"e") and stage
#     slices ("X") are all present;
#   * every "b" has a matching "e" (counted over the whole document).
# Invoked as:
#   cmake -DCLI=<hmcsim_cli> -DTRACE=<journey_off.trace> -DOUT_DIR=<dir>
#         -P cli_trace_chrome.cmake
if(NOT DEFINED CLI OR NOT DEFINED TRACE OR NOT DEFINED OUT_DIR)
  message(FATAL_ERROR "usage: cmake -DCLI=<exe> -DTRACE=<trace> -DOUT_DIR=<dir> -P ${CMAKE_SCRIPT_MODE_FILE}")
endif()

set(chrome_json "${OUT_DIR}/cli_journey_chrome.json")
execute_process(
  COMMAND "${CLI}" replay "${TRACE}" --trace-chrome "${chrome_json}"
  OUTPUT_VARIABLE run_stdout
  ERROR_VARIABLE run_stderr
  RESULT_VARIABLE run_rc)
if(NOT run_rc EQUAL 0)
  message(FATAL_ERROR "hmcsim_cli exited with ${run_rc}\n${run_stdout}\n${run_stderr}")
endif()
if(NOT EXISTS "${chrome_json}")
  message(FATAL_ERROR "--trace-chrome wrote no file at ${chrome_json}")
endif()

file(READ "${chrome_json}" doc)
if(NOT doc MATCHES "^\\[")
  message(FATAL_ERROR "document does not open a JSON array:\n${doc}")
endif()
if(NOT doc MATCHES "\\]\n$")
  message(FATAL_ERROR "document was not finalised with a closing bracket")
endif()
foreach(needle "\"ph\":\"M\"" "\"ph\":\"X\"" "process_name" "thread_name"
        "\"cat\":\"packet\"")
  if(NOT doc MATCHES "${needle}")
    message(FATAL_ERROR "document lacks ${needle}:\n${doc}")
  endif()
endforeach()

string(REGEX MATCHALL "\"ph\":\"b\"" begins "${doc}")
string(REGEX MATCHALL "\"ph\":\"e\"" ends "${doc}")
list(LENGTH begins n_begin)
list(LENGTH ends n_end)
if(n_begin EQUAL 0)
  message(FATAL_ERROR "no async spans in the document:\n${doc}")
endif()
if(NOT n_begin EQUAL n_end)
  message(FATAL_ERROR "unbalanced async spans: ${n_begin} begins, ${n_end} ends")
endif()
