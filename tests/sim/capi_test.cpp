// capi_test.cpp — the C-compatible API shim (paper-style hmcsim_* calls).
#include "src/capi/hmc_sim.h"

#include <gtest/gtest.h>

#include <fstream>
#include <string>

namespace {

class CApiTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sim_ = hmcsim_init(/*num_devs=*/1, /*num_links=*/4, /*capacity_gb=*/4,
                       /*block_size=*/64, /*queue_depth=*/64,
                       /*xbar_depth=*/128);
    ASSERT_NE(sim_, nullptr);
  }
  void TearDown() override { hmcsim_free(sim_); }

  /// Clock until a response arrives on `link`; returns its payload word 0.
  int wait_recv(uint32_t link, uint8_t* cmd = nullptr,
                uint64_t* word0 = nullptr, uint64_t* latency = nullptr) {
    uint64_t payload[32] = {};
    uint32_t words = 0;
    for (int i = 0; i < 1000; ++i) {
      hmcsim_clock(sim_);
      const int rc = hmcsim_recv(sim_, link, cmd, nullptr, payload, &words,
                                 latency);
      if (rc == HMC_OK) {
        if (word0 != nullptr) {
          *word0 = payload[0];
        }
        return HMC_OK;
      }
      if (rc != HMC_NO_DATA) {
        return rc;
      }
    }
    return HMC_ERROR;
  }

  hmc_sim_t* sim_ = nullptr;
};

TEST_F(CApiTest, InitRejectsBadConfig) {
  EXPECT_EQ(hmcsim_init(1, 5, 4, 64, 64, 128), nullptr);
  EXPECT_EQ(hmcsim_init(1, 4, 3, 64, 64, 128), nullptr);
  EXPECT_EQ(hmcsim_init(0, 4, 4, 64, 64, 128), nullptr);
}

TEST_F(CApiTest, FreeNullIsNoop) { hmcsim_free(nullptr); }

TEST_F(CApiTest, WriteReadRoundTrip) {
  const uint64_t data[2] = {0xABCD, 0x1234};
  ASSERT_EQ(hmcsim_send(sim_, 0, HMC_WR16, 0, 0x1000, 1, data, 2), HMC_OK);
  uint8_t cmd = 0;
  ASSERT_EQ(wait_recv(0, &cmd), HMC_OK);
  EXPECT_EQ(cmd, 0x39);

  ASSERT_EQ(hmcsim_send(sim_, 0, HMC_RD16, 0, 0x1000, 2, nullptr, 0),
            HMC_OK);
  uint64_t word0 = 0;
  uint64_t latency = 0;
  ASSERT_EQ(wait_recv(0, &cmd, &word0, &latency), HMC_OK);
  EXPECT_EQ(cmd, 0x38);
  EXPECT_EQ(word0, 0xABCDULL);
  EXPECT_EQ(latency, 3ULL);
}

TEST_F(CApiTest, AtomicInc) {
  ASSERT_EQ(hmcsim_util_mem_write(sim_, 0, 0x40, 9), HMC_OK);
  ASSERT_EQ(hmcsim_send(sim_, 0, HMC_INC8, 0, 0x40, 3, nullptr, 0), HMC_OK);
  ASSERT_EQ(wait_recv(0), HMC_OK);
  uint64_t value = 0;
  ASSERT_EQ(hmcsim_util_mem_read(sim_, 0, 0x40, &value), HMC_OK);
  EXPECT_EQ(value, 10ULL);
}

TEST_F(CApiTest, ClockAndCycleCount) {
  EXPECT_EQ(hmcsim_cycle(sim_), 0ULL);
  hmcsim_clock(sim_);
  hmcsim_clock(sim_);
  EXPECT_EQ(hmcsim_cycle(sim_), 2ULL);
}

TEST_F(CApiTest, ClockUntilAndNextEvent) {
  // Idle device: no event, and clock_until jumps straight to the target.
  EXPECT_EQ(hmcsim_next_event_cycle(sim_), UINT64_MAX);
  EXPECT_EQ(hmcsim_clock_until(sim_, 500), 500ULL);
  EXPECT_EQ(hmcsim_cycle(sim_), 500ULL);
  EXPECT_EQ(hmcsim_clock_until(sim_, 100), 0ULL);  // Past target: no-op.

  // In-flight work: the next event is the next cycle, and
  // clock_until_idle runs the request to completion.
  ASSERT_EQ(hmcsim_send(sim_, 0, HMC_RD16, 0, 0x2000, 1, nullptr, 0),
            HMC_OK);
  EXPECT_EQ(hmcsim_next_event_cycle(sim_), hmcsim_cycle(sim_) + 1);
  EXPECT_GT(hmcsim_clock_until_idle(sim_, 1000), 0ULL);
  EXPECT_EQ(hmcsim_recv(sim_, 0, nullptr, nullptr, nullptr, nullptr,
                        nullptr),
            HMC_OK);

  // Null handles are inert.
  EXPECT_EQ(hmcsim_next_event_cycle(nullptr), UINT64_MAX);
  EXPECT_EQ(hmcsim_clock_until(nullptr, 10), 0ULL);
  EXPECT_EQ(hmcsim_clock_until_idle(nullptr, 10), 0ULL);
}

TEST_F(CApiTest, JtagRegisters) {
  uint64_t value = 0;
  ASSERT_EQ(hmcsim_jtag_reg_read(sim_, 0, 1 /*LinkConfig*/, &value), HMC_OK);
  EXPECT_EQ(value, 4ULL);
  ASSERT_EQ(hmcsim_jtag_reg_write(sim_, 0, 10 /*Scratch0*/, 0x77), HMC_OK);
  ASSERT_EQ(hmcsim_jtag_reg_read(sim_, 0, 10, &value), HMC_OK);
  EXPECT_EQ(value, 0x77ULL);
  EXPECT_EQ(hmcsim_jtag_reg_write(sim_, 0, 0 /*DeviceId: RO*/, 1),
            HMC_ERROR);
  EXPECT_EQ(hmcsim_jtag_reg_read(sim_, 9, 0, &value), HMC_ERROR);
}

TEST_F(CApiTest, UtilMemBounds) {
  uint64_t value = 0;
  EXPECT_EQ(hmcsim_util_mem_read(sim_, 3, 0, &value), HMC_ERROR);
  EXPECT_EQ(hmcsim_util_mem_write(sim_, 3, 0, 1), HMC_ERROR);
}

TEST_F(CApiTest, RecvNoDataWhenIdle) {
  EXPECT_EQ(hmcsim_recv(sim_, 0, nullptr, nullptr, nullptr, nullptr,
                        nullptr),
            HMC_NO_DATA);
}

TEST_F(CApiTest, NullHandleIsError) {
  EXPECT_EQ(hmcsim_clock(nullptr), HMC_ERROR);
  EXPECT_EQ(hmcsim_send(nullptr, 0, HMC_RD16, 0, 0, 0, nullptr, 0),
            HMC_ERROR);
  EXPECT_EQ(hmcsim_load_cmc(nullptr, "x.so"), HMC_ERROR);
  EXPECT_EQ(hmcsim_cycle(nullptr), 0ULL);
}

TEST_F(CApiTest, StatsJsonBufferContract) {
  ASSERT_EQ(hmcsim_send(sim_, 0, HMC_RD16, 0, 0, 1, nullptr, 0), HMC_OK);
  ASSERT_EQ(wait_recv(0), HMC_OK);

  // Sizing call: no buffer, returns the full document length.
  const uint64_t needed = hmcsim_stats_json(sim_, nullptr, 0);
  ASSERT_GT(needed, 0ULL);

  // Full-size call round-trips the document.
  std::string buf(needed + 1, '\0');
  EXPECT_EQ(hmcsim_stats_json(sim_, buf.data(), buf.size()), needed);
  const std::string json(buf.c_str());
  EXPECT_EQ(json.size(), needed);
  EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"cube0\""), std::string::npos);

  // Short buffer: truncated but still NUL-terminated; return value is
  // unchanged (snprintf contract).
  char small[16];
  EXPECT_EQ(hmcsim_stats_json(sim_, small, sizeof small), needed);
  EXPECT_EQ(small[sizeof small - 1], '\0');
  EXPECT_EQ(std::string(small), json.substr(0, sizeof small - 1));

  EXPECT_EQ(hmcsim_stats_json(nullptr, nullptr, 0), 0ULL);
}

TEST_F(CApiTest, StatGetByPath) {
  ASSERT_EQ(hmcsim_send(sim_, 0, HMC_RD16, 0, 0, 1, nullptr, 0), HMC_OK);
  ASSERT_EQ(wait_recv(0), HMC_OK);

  uint64_t value = 0;
  ASSERT_EQ(hmcsim_stat_get(sim_, "cube0.quad0.vault0.rqsts_processed",
                            &value),
            HMC_OK);
  EXPECT_EQ(value, 1ULL);
  ASSERT_EQ(hmcsim_stat_get(sim_, "cube0.link0.rqst_packets", &value),
            HMC_OK);
  EXPECT_EQ(value, 1ULL);
  // Histograms read as their sample count.
  ASSERT_EQ(hmcsim_stat_get(sim_, "host.latency", &value), HMC_OK);
  EXPECT_EQ(value, 1ULL);

  EXPECT_EQ(hmcsim_stat_get(sim_, "no.such.stat", &value), HMC_ERROR);
  EXPECT_EQ(hmcsim_stat_get(sim_, nullptr, &value), HMC_ERROR);
  EXPECT_EQ(hmcsim_stat_get(sim_, "host.latency", nullptr), HMC_ERROR);
  EXPECT_EQ(hmcsim_stat_get(nullptr, "host.latency", &value), HMC_ERROR);

  // Without fault injection the ecc namespace does not exist (the gated
  // registration keeps stats output identical to pre-fault builds).
  EXPECT_EQ(hmcsim_stat_get(sim_, "cube0.ecc.injected", &value), HMC_ERROR);
}

TEST_F(CApiTest, InitFaultsExposesEccStats) {
  hmc_sim_t *faulty = hmcsim_init_faults(1, 4, 4, 64, 64, 128,
                                         /*ppm=*/1000000, /*seed=*/0xECC,
                                         /*scrub=*/256, /*stuck=*/0);
  ASSERT_NE(faulty, nullptr);
  // ~100% injection: every word read deposits a flip; the first read of a
  // clean word carries exactly one bad bit and is corrected by SEC-DED.
  ASSERT_EQ(hmcsim_send(faulty, 0, HMC_RD16, 0, 0x1000, 1, nullptr, 0),
            HMC_OK);
  for (int i = 0; i < 100; ++i) {
    hmcsim_clock(faulty);
    uint8_t cmd = 0;
    if (hmcsim_recv(faulty, 0, &cmd, nullptr, nullptr, nullptr, nullptr) ==
        HMC_OK) {
      break;
    }
  }
  uint64_t injected = 0, corrected = 0;
  EXPECT_EQ(hmcsim_stat_get(faulty, "cube0.ecc.injected", &injected),
            HMC_OK);
  EXPECT_EQ(hmcsim_stat_get(faulty, "cube0.ecc.corrected", &corrected),
            HMC_OK);
  EXPECT_EQ(injected, 2ULL);   // RD16 = two 64-bit words
  EXPECT_EQ(corrected, 2ULL);  // one flip per word: both corrected
  // Out-of-range knobs are rejected like any other invalid configuration.
  EXPECT_EQ(hmcsim_init_faults(1, 4, 4, 64, 64, 128, 2000000, 0, 0, 0),
            nullptr);
  hmcsim_free(faulty);
}

TEST_F(CApiTest, StatListEnumeratesRegistry) {
  ASSERT_EQ(hmcsim_send(sim_, 0, HMC_RD16, 0, 0, 1, nullptr, 0), HMC_OK);
  ASSERT_EQ(wait_recv(0), HMC_OK);

  const uint64_t needed = hmcsim_stat_list(sim_, nullptr, 0);
  ASSERT_GT(needed, 0ULL);
  std::string buf(needed + 1, '\0');
  EXPECT_EQ(hmcsim_stat_list(sim_, buf.data(), buf.size()), needed);
  const std::string list(buf.c_str());
  EXPECT_EQ(list.size(), needed);
  EXPECT_NE(list.find("cube0.link0.rqst_packets,counter\n"),
            std::string::npos);
  EXPECT_NE(list.find("host.latency,histogram\n"), std::string::npos);
  // Profiling stats only exist once profiling is switched on.
  EXPECT_EQ(list.find("sim.prof."), std::string::npos);

  // Short buffers truncate but stay NUL-terminated (snprintf contract).
  char small[8];
  EXPECT_EQ(hmcsim_stat_list(sim_, small, sizeof small), needed);
  EXPECT_EQ(small[sizeof small - 1], '\0');
  EXPECT_EQ(std::string(small), list.substr(0, sizeof small - 1));

  EXPECT_EQ(hmcsim_stat_list(nullptr, nullptr, 0), 0ULL);
}

TEST_F(CApiTest, ProfEnableRegistersGatedStats) {
  uint64_t value = 0;
  EXPECT_EQ(hmcsim_stat_get(sim_, "sim.prof.spans", &value), HMC_ERROR);

  ASSERT_EQ(hmcsim_prof_enable(sim_), HMC_OK);
  // Idempotent: enabling twice is not an error.
  ASSERT_EQ(hmcsim_prof_enable(sim_), HMC_OK);

  ASSERT_EQ(hmcsim_send(sim_, 0, HMC_RD16, 0, 0, 1, nullptr, 0), HMC_OK);
  ASSERT_EQ(wait_recv(0), HMC_OK);
  ASSERT_EQ(hmcsim_stat_get(sim_, "sim.prof.spans", &value), HMC_OK);
  EXPECT_GT(value, 0ULL);

  const uint64_t needed = hmcsim_stat_list(sim_, nullptr, 0);
  std::string buf(needed + 1, '\0');
  hmcsim_stat_list(sim_, buf.data(), buf.size());
  EXPECT_NE(std::string(buf.c_str()).find("sim.prof.spans,counter\n"),
            std::string::npos);

  EXPECT_EQ(hmcsim_prof_enable(nullptr), HMC_ERROR);
}

TEST_F(CApiTest, SamplerInitAndCollect) {
  // No sampler yet: collect reports an empty document.
  EXPECT_EQ(hmcsim_sampler_collect(sim_, 0, nullptr, 0), 0ULL);

  ASSERT_EQ(hmcsim_sampler_init(sim_, /*every=*/8, /*capacity=*/16,
                                "cube0.link0"),
            HMC_OK);
  ASSERT_EQ(hmcsim_send(sim_, 0, HMC_RD16, 0, 0, 1, nullptr, 0), HMC_OK);
  ASSERT_EQ(wait_recv(0), HMC_OK);
  for (int i = 0; i < 16; ++i) {
    hmcsim_clock(sim_);
  }

  const uint64_t json_len = hmcsim_sampler_collect(sim_, 0, nullptr, 0);
  ASSERT_GT(json_len, 0ULL);
  std::string json(json_len + 1, '\0');
  EXPECT_EQ(hmcsim_sampler_collect(sim_, 0, json.data(), json.size()),
            json_len);
  EXPECT_NE(std::string(json.c_str()).find("\"windows\": ["),
            std::string::npos);
  EXPECT_NE(std::string(json.c_str()).find("cube0.link0.rqst_packets"),
            std::string::npos);

  const uint64_t csv_len = hmcsim_sampler_collect(sim_, 1, nullptr, 0);
  ASSERT_GT(csv_len, 0ULL);
  std::string csv(csv_len + 1, '\0');
  EXPECT_EQ(hmcsim_sampler_collect(sim_, 1, csv.data(), csv.size()),
            csv_len);
  EXPECT_NE(std::string(csv.c_str()).find("cycle,dcycles,path,kind"),
            std::string::npos);

  // Re-init replaces the sampler: the fresh one starts empty.
  ASSERT_EQ(hmcsim_sampler_init(sim_, 4, 8, nullptr), HMC_OK);
  std::string fresh(hmcsim_sampler_collect(sim_, 0, nullptr, 0) + 1, '\0');
  hmcsim_sampler_collect(sim_, 0, fresh.data(), fresh.size());
  EXPECT_NE(std::string(fresh.c_str()).find("\"windows_taken\": 0"),
            std::string::npos);

  EXPECT_EQ(hmcsim_sampler_init(sim_, 0, 16, nullptr), HMC_ERROR);
  EXPECT_EQ(hmcsim_sampler_init(sim_, 8, 0, nullptr), HMC_ERROR);
  EXPECT_EQ(hmcsim_sampler_init(nullptr, 8, 16, nullptr), HMC_ERROR);
  EXPECT_EQ(hmcsim_sampler_collect(nullptr, 0, nullptr, 0), 0ULL);
}

TEST_F(CApiTest, TelemetrySnapshotReportsCubes) {
  ASSERT_EQ(hmcsim_send(sim_, 0, HMC_RD16, 0, 0, 1, nullptr, 0), HMC_OK);
  ASSERT_EQ(wait_recv(0), HMC_OK);

  const uint64_t needed = hmcsim_telemetry_snapshot(sim_, nullptr, 0);
  ASSERT_GT(needed, 0ULL);
  std::string buf(needed + 1, '\0');
  EXPECT_EQ(hmcsim_telemetry_snapshot(sim_, buf.data(), buf.size()),
            needed);
  const std::string json(buf.c_str());
  EXPECT_NE(json.find("\"cycle\": "), std::string::npos);
  EXPECT_NE(json.find("\"cubes\": ["), std::string::npos);
  EXPECT_NE(json.find("\"dev\": 0"), std::string::npos);

  EXPECT_EQ(hmcsim_telemetry_snapshot(nullptr, nullptr, 0), 0ULL);
}

#ifdef HMCSIM_PLUGIN_DIR
TEST_F(CApiTest, LoadCmcAndExecute) {
  const std::string path = std::string(HMCSIM_PLUGIN_DIR) + "/hmc_lock.so";
  ASSERT_EQ(hmcsim_load_cmc(sim_, path.c_str()), HMC_OK);
  const uint64_t tid[2] = {42, 0};
  ASSERT_EQ(hmcsim_send(sim_, 0, HMC_CMC125, 0, 0x4000, 7, tid, 2), HMC_OK);
  uint64_t word0 = 0;
  ASSERT_EQ(wait_recv(0, nullptr, &word0), HMC_OK);
  EXPECT_EQ(word0, 1ULL);  // Lock acquired.
  uint64_t owner = 0;
  ASSERT_EQ(hmcsim_util_mem_read(sim_, 0, 0x4008, &owner), HMC_OK);
  EXPECT_EQ(owner, 42ULL);
}

TEST_F(CApiTest, RecvTruncatesIntoSmallCapacityAndReportsFullSize) {
  uint64_t data[8];
  for (uint64_t w = 0; w < 8; ++w) {
    data[w] = 0xA0 + w;
  }
  ASSERT_EQ(hmcsim_send(sim_, 0, HMC_WR64, 0, 0x2000, 1, data, 8), HMC_OK);
  ASSERT_EQ(wait_recv(0), HMC_OK);
  ASSERT_EQ(hmcsim_send(sim_, 0, HMC_RD64, 0, 0x2000, 2, nullptr, 0), HMC_OK);

  uint64_t small[2] = {0, 0};
  for (int i = 0; i < 1000; ++i) {
    hmcsim_clock(sim_);
    uint32_t words = 2;  // capacity below the 8-word read data
    const int rc = hmcsim_recv(sim_, 0, nullptr, nullptr, small, &words,
                               nullptr);
    if (rc == HMC_NO_DATA) {
      continue;
    }
    EXPECT_EQ(rc, HMC_ETRUNC);
    EXPECT_EQ(words, 8u);  // full response size reported back
    EXPECT_EQ(small[0], 0xA0u);
    EXPECT_EQ(small[1], 0xA1u);
    return;
  }
  FAIL() << "read response never arrived";
}

TEST_F(CApiTest, RecvLegacyZeroCapacityCopiesEverything) {
  const uint64_t data[2] = {0x51, 0x52};
  ASSERT_EQ(hmcsim_send(sim_, 0, HMC_WR16, 0, 0x3000, 1, data, 2), HMC_OK);
  ASSERT_EQ(wait_recv(0), HMC_OK);
  ASSERT_EQ(hmcsim_send(sim_, 0, HMC_RD16, 0, 0x3000, 2, nullptr, 0), HMC_OK);

  uint64_t payload[32] = {};
  for (int i = 0; i < 1000; ++i) {
    hmcsim_clock(sim_);
    uint32_t words = 0;  // legacy contract: 0 means "32 words of room"
    const int rc = hmcsim_recv(sim_, 0, nullptr, nullptr, payload, &words,
                               nullptr);
    if (rc == HMC_NO_DATA) {
      continue;
    }
    EXPECT_EQ(rc, HMC_OK);
    EXPECT_EQ(words, 2u);
    EXPECT_EQ(payload[0], 0x51u);
    EXPECT_EQ(payload[1], 0x52u);
    return;
  }
  FAIL() << "read response never arrived";
}

TEST_F(CApiTest, BatchRoundTripHarvestsEveryResponse) {
  uint64_t data[4][8];
  hmc_batch_rqst_t writes[4];
  for (uint32_t i = 0; i < 4; ++i) {
    for (uint64_t w = 0; w < 8; ++w) {
      data[i][w] = i * 8 + w;
    }
    writes[i] = {};
    writes[i].rqst = HMC_WR64;
    writes[i].tag = static_cast<uint16_t>(i + 1);
    writes[i].addr = 0x8000 + i * 512;
    writes[i].payload = data[i];
    writes[i].payload_words = 8;
  }
  hmc_ticket_t wt = 0;
  ASSERT_EQ(hmcsim_send_batch(sim_, writes, 4, HMC_LINK_ANY, &wt), HMC_OK);
  ASSERT_NE(wt, 0u);
  EXPECT_GT(hmcsim_batch_advance(sim_, wt, 10000), 0u);
  ASSERT_EQ(hmcsim_batch_done(sim_, wt), 1);

  // Harvest through a 2-slot window: capacity never loses responses.
  hmc_batch_rsp_t rsps[2];
  uint32_t harvested = 0;
  int rc = HMC_STALL;
  while (rc == HMC_STALL) {
    uint32_t count = 2;
    rc = hmcsim_poll_batch(sim_, wt, rsps, &count);
    harvested += count;
  }
  EXPECT_EQ(rc, HMC_OK);
  EXPECT_EQ(harvested, 4u);
  // Retired: the ticket no longer resolves.
  uint32_t count = 2;
  EXPECT_EQ(hmcsim_poll_batch(sim_, wt, rsps, &count), HMC_ERROR);
  EXPECT_EQ(hmcsim_batch_done(sim_, wt), 0);

  hmc_batch_rqst_t reads[4];
  for (uint32_t i = 0; i < 4; ++i) {
    reads[i] = {};
    reads[i].rqst = HMC_RD64;
    reads[i].tag = static_cast<uint16_t>(i + 10);
    reads[i].addr = 0x8000 + i * 512;
  }
  hmc_ticket_t rt = 0;
  ASSERT_EQ(hmcsim_send_batch(sim_, reads, 4, HMC_LINK_ANY, &rt), HMC_OK);
  EXPECT_GT(hmcsim_batch_advance(sim_, rt, 10000), 0u);
  hmc_batch_rsp_t all[4];
  uint32_t n = 4;
  ASSERT_EQ(hmcsim_poll_batch(sim_, rt, all, &n), HMC_OK);
  ASSERT_EQ(n, 4u);
  for (uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(all[i].payload_words, 8u);
    EXPECT_GT(all[i].latency, 0u);
    const uint32_t req = all[i].tag - 10u;
    for (uint64_t w = 0; w < 8; ++w) {
      EXPECT_EQ(all[i].payload[w], req * 8 + w);
    }
  }
}

TEST_F(CApiTest, BatchRejectsInvalidRequestsAtomically) {
  hmc_batch_rqst_t reqs[2] = {};
  reqs[0].rqst = HMC_WR16;
  reqs[0].tag = 1;
  reqs[1].rqst = HMC_CMC04;  // never registered in this fixture
  reqs[1].tag = 2;
  hmc_ticket_t ticket = 0;
  EXPECT_EQ(hmcsim_send_batch(sim_, reqs, 2, HMC_LINK_ANY, &ticket),
            HMC_ERROR);
  EXPECT_EQ(ticket, 0u);
  EXPECT_EQ(hmcsim_send_batch(sim_, reqs, 0, HMC_LINK_ANY, &ticket),
            HMC_ERROR);
  EXPECT_EQ(hmcsim_send_batch(sim_, reqs, 1, /*link=*/99, &ticket),
            HMC_ERROR);
}

TEST_F(CApiTest, BatchUnknownTicketIsError) {
  hmc_batch_rsp_t rsp;
  uint32_t count = 1;
  EXPECT_EQ(hmcsim_poll_batch(sim_, 777, &rsp, &count), HMC_ERROR);
  EXPECT_EQ(count, 0u);
  EXPECT_EQ(hmcsim_batch_done(sim_, 777), 0);
  EXPECT_EQ(hmcsim_batch_advance(sim_, 777, 10), 0u);
}

TEST_F(CApiTest, TraceFileReceivesCmcNames) {
  const std::string path =
      std::string(HMCSIM_PLUGIN_DIR) + "/hmc_trylock.so";
  ASSERT_EQ(hmcsim_load_cmc(sim_, path.c_str()), HMC_OK);
  const std::string trace_path =
      ::testing::TempDir() + "/capi_trace.txt";
  ASSERT_EQ(hmcsim_trace_file(sim_, trace_path.c_str()), HMC_OK);
  ASSERT_EQ(hmcsim_trace_level(sim_, 0xFFFFFFFF), HMC_OK);

  const uint64_t tid[2] = {5, 0};
  ASSERT_EQ(hmcsim_send(sim_, 0, HMC_CMC126, 0, 0x4000, 1, tid, 2), HMC_OK);
  ASSERT_EQ(wait_recv(0), HMC_OK);
  hmcsim_free(sim_);
  sim_ = nullptr;

  std::ifstream in(trace_path);
  ASSERT_TRUE(in.is_open());
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("hmc_trylock"), std::string::npos);
}
#endif

}  // namespace
