# cli_mutex_golden.cmake — mutex through the frontend registry stays
# byte-identical to the pre-refactor driver.
#
# The committed golden was captured from `hmcsim_cli mutex 8 --stats-json`
# before the Frontend/MemoryBackend seam existed. The same invocation must
# still produce it byte for byte, and the summary line must be unchanged:
# virtual dispatch is not allowed to perturb a single statistic.
# Invoked as:
#   cmake -DCLI=<hmcsim_cli> -DGOLDEN=<mutex8_stats.json> -DOUT_DIR=<dir>
#         -P cli_mutex_golden.cmake
if(NOT DEFINED CLI OR NOT DEFINED GOLDEN OR NOT DEFINED OUT_DIR)
  message(FATAL_ERROR "usage: cmake -DCLI=<exe> -DGOLDEN=<json> -DOUT_DIR=<dir> -P ${CMAKE_SCRIPT_MODE_FILE}")
endif()

set(json_path "${OUT_DIR}/cli_mutex_golden_stats.json")
execute_process(
  COMMAND "${CLI}" mutex 8 --stats-json "${json_path}"
  OUTPUT_VARIABLE run_stdout
  ERROR_VARIABLE run_stderr
  RESULT_VARIABLE run_rc)
if(NOT run_rc EQUAL 0)
  message(FATAL_ERROR "hmcsim_cli exited with ${run_rc}\n${run_stdout}\n${run_stderr}")
endif()
if(NOT EXISTS "${json_path}")
  message(FATAL_ERROR "--stats-json wrote no file at ${json_path}")
endif()

file(READ "${json_path}" actual)
file(READ "${GOLDEN}" golden)
if(NOT actual STREQUAL golden)
  message(FATAL_ERROR "mutex stats diverged from the pre-refactor golden: the frontend seam changed simulated behavior")
endif()
if(NOT run_stdout MATCHES "threads=8 MIN_CYCLE=6 MAX_CYCLE=27 AVG_CYCLE=16\\.50")
  message(FATAL_ERROR "mutex summary line changed:\n${run_stdout}")
endif()
