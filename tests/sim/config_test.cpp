// config_test.cpp — configuration validation tests.
#include "src/sim/config.hpp"

#include <gtest/gtest.h>

namespace hmcsim::sim {
namespace {

TEST(Config, DefaultsAreValid) {
  EXPECT_TRUE(Config{}.validate().ok());
}

TEST(Config, CanonicalConfigsMatchPaperEvaluation) {
  const Config c4 = Config::hmc_4link_4gb();
  EXPECT_TRUE(c4.validate().ok());
  EXPECT_EQ(c4.num_links, 4U);
  EXPECT_EQ(c4.capacity_bytes, 4 * kGiB);
  EXPECT_EQ(c4.block_size, 64U);          // "maximum block size of 64 bytes"
  EXPECT_EQ(c4.vault_rqst_depth, 64U);    // "request queue depth of 64 slots"
  EXPECT_EQ(c4.xbar_depth, 128U);         // "crossbar queue depth of 128"
  EXPECT_EQ(c4.total_vaults(), 32U);

  const Config c8 = Config::hmc_8link_8gb();
  EXPECT_TRUE(c8.validate().ok());
  EXPECT_EQ(c8.num_links, 8U);
  EXPECT_EQ(c8.capacity_bytes, 8 * kGiB);
  EXPECT_EQ(c8.banks_per_vault, 32U);
  EXPECT_EQ(c8.vault_rqst_depth, 64U);
  EXPECT_EQ(c8.xbar_depth, 128U);

  EXPECT_TRUE(Config::hmc_4link_2gb().validate().ok());
  EXPECT_TRUE(Config::hmc_8link_4gb().validate().ok());
}

TEST(Config, IdenticalQueueStructuresAcrossLinkCounts) {
  // The paper attributes identical low-thread results to "the identical
  // queueing structure for both configurations".
  const Config c4 = Config::hmc_4link_4gb();
  const Config c8 = Config::hmc_8link_8gb();
  EXPECT_EQ(c4.vault_rqst_depth, c8.vault_rqst_depth);
  EXPECT_EQ(c4.xbar_depth, c8.xbar_depth);
  EXPECT_EQ(c4.xbar_rqst_bw_flits, c8.xbar_rqst_bw_flits);
}

TEST(Config, RejectsBadDeviceCount) {
  Config c;
  c.num_devs = 0;
  EXPECT_FALSE(c.validate().ok());
  c.num_devs = 9;  // CUB field is 3 bits.
  EXPECT_FALSE(c.validate().ok());
  c.num_devs = 8;
  EXPECT_TRUE(c.validate().ok());
}

TEST(Config, RejectsBadLinkCount) {
  Config c;
  for (const std::uint32_t links : {0U, 1U, 2U, 3U, 5U, 6U, 7U, 16U}) {
    c.num_links = links;
    EXPECT_FALSE(c.validate().ok()) << links;
  }
}

TEST(Config, RejectsBadCapacity) {
  Config c;
  c.capacity_bytes = 1 * kGiB;
  EXPECT_FALSE(c.validate().ok());
  c.capacity_bytes = 3 * kGiB;
  EXPECT_FALSE(c.validate().ok());
  c.capacity_bytes = 16 * kGiB;
  EXPECT_FALSE(c.validate().ok());
}

TEST(Config, RejectsNonGen2Geometry) {
  Config c;
  c.num_quads = 2;
  EXPECT_FALSE(c.validate().ok());
  c = Config{};
  c.vaults_per_quad = 4;
  EXPECT_FALSE(c.validate().ok());
  c = Config{};
  c.banks_per_vault = 12;
  EXPECT_FALSE(c.validate().ok());
}

TEST(Config, RejectsBadBlockSize) {
  Config c;
  for (const std::uint32_t block : {0U, 8U, 16U, 48U, 96U, 512U}) {
    c.block_size = block;
    EXPECT_FALSE(c.validate().ok()) << block;
  }
  for (const std::uint32_t block : {32U, 64U, 128U, 256U}) {
    c.block_size = block;
    EXPECT_TRUE(c.validate().ok()) << block;
  }
}

TEST(Config, RejectsBadQueueDepths) {
  Config c;
  c.xbar_depth = 0;
  EXPECT_FALSE(c.validate().ok());
  c = Config{};
  c.vault_rqst_depth = 0;
  EXPECT_FALSE(c.validate().ok());
  c = Config{};
  c.vault_rsp_depth = 2000;
  EXPECT_FALSE(c.validate().ok());
}

TEST(Config, RejectsSubPacketForwardBandwidth) {
  Config c;
  c.xbar_rqst_bw_flits = 16;  // A 17-FLIT packet could never move.
  EXPECT_FALSE(c.validate().ok());
  c.xbar_rqst_bw_flits = 17;
  EXPECT_TRUE(c.validate().ok());
  c.xbar_rqst_bw_flits = 0;  // Unbounded is allowed.
  EXPECT_TRUE(c.validate().ok());
  c = Config{};
  c.xbar_rsp_bw_flits = 5;
  EXPECT_FALSE(c.validate().ok());
}

TEST(Config, BankConflictModelNeedsBusyCycles) {
  Config c;
  c.model_bank_conflicts = true;
  c.bank_busy_cycles = 0;
  EXPECT_FALSE(c.validate().ok());
  c.bank_busy_cycles = 4;
  EXPECT_TRUE(c.validate().ok());
}

TEST(Config, DescribeMentionsKeyParameters) {
  const std::string desc = Config::hmc_8link_8gb().describe();
  EXPECT_NE(desc.find("8Link-8GB"), std::string::npos);
  EXPECT_NE(desc.find("vaults=32"), std::string::npos);
  EXPECT_NE(desc.find("rqstq=64"), std::string::npos);
  EXPECT_NE(desc.find("xbarq=128"), std::string::npos);
}

TEST(Config, DerivedCounts) {
  const Config c = Config::hmc_4link_4gb();
  EXPECT_EQ(c.total_vaults(), 32U);
  EXPECT_EQ(c.total_banks(), 512U);
  EXPECT_EQ(Config::hmc_8link_8gb().total_banks(), 1024U);
}

}  // namespace
}  // namespace hmcsim::sim
