// fast_forward_test.cpp — next_event_cycle / clock_until / clock_until_idle.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/host/thread_sim.hpp"
#include "src/sim/simulator.hpp"

namespace hmcsim::sim {
namespace {

std::unique_ptr<Simulator> make(Config cfg) {
  std::unique_ptr<Simulator> sim;
  EXPECT_TRUE(Simulator::create(cfg, sim).ok());
  return sim;
}

spec::RqstParams read64(std::uint64_t addr, std::uint16_t tag = 0) {
  spec::RqstParams p;
  p.rqst = spec::Rqst::RD64;
  p.addr = addr;
  p.tag = tag;
  return p;
}

TEST(FastForward, IdleChainHasNoEvent) {
  auto sim = make(Config::hmc_4link_4gb());
  EXPECT_EQ(sim->next_event_cycle(), Simulator::kNoEvent);
  // Nothing to wait for: clock_until_idle returns immediately.
  EXPECT_EQ(sim->clock_until_idle(1000), 0U);
  EXPECT_EQ(sim->cycle(), 0U);
}

TEST(FastForward, QueuedWorkMeansNextCycle) {
  auto sim = make(Config::hmc_4link_4gb());
  ASSERT_TRUE(sim->send(read64(0x100), 0).ok());
  EXPECT_EQ(sim->next_event_cycle(), sim->cycle() + 1);
}

TEST(FastForward, ClockUntilJumpsIdleSpanExactly) {
  auto sim = make(Config::hmc_4link_4gb());
  EXPECT_EQ(sim->clock_until(123), 123U);
  EXPECT_EQ(sim->cycle(), 123U);
  EXPECT_EQ(sim->fast_forwarded_cycles(), 123U);
  // A target in the past is a no-op.
  EXPECT_EQ(sim->clock_until(50), 0U);
  EXPECT_EQ(sim->cycle(), 123U);
}

TEST(FastForward, ExhaustiveModeStepsEveryCycle) {
  Config cfg = Config::hmc_4link_4gb();
  cfg.exhaustive_clock = true;
  auto sim = make(cfg);
  EXPECT_EQ(sim->clock_until(100), 100U);
  EXPECT_EQ(sim->cycle(), 100U);
  EXPECT_EQ(sim->fast_forwarded_cycles(), 0U);
}

TEST(FastForward, ClockUntilIdleCompletesInFlightWork) {
  auto sim = make(Config::hmc_4link_4gb());
  ASSERT_TRUE(sim->send(read64(0x200), 0).ok());
  const std::uint64_t advanced = sim->clock_until_idle(10000);
  EXPECT_GT(advanced, 0U);
  EXPECT_LT(advanced, 100U);  // Uncontended round trip is a few cycles.
  // The response parked on the host link does not count as device work.
  EXPECT_TRUE(sim->rsp_ready(0));
  EXPECT_EQ(sim->next_event_cycle(), Simulator::kNoEvent);
  Response rsp;
  EXPECT_TRUE(sim->recv(0, rsp).ok());
  // The round trip itself has no dead cycles to jump.
  EXPECT_EQ(sim->fast_forwarded_cycles(), 0U);
}

TEST(FastForward, ParkedRetryIsTheNextEvent) {
  Config cfg = Config::hmc_4link_4gb();
  cfg.link_flit_error_ppm = 1'000'000;  // Every inbound packet corrupts.
  cfg.link_retry_latency = 16;
  auto sim = make(cfg);
  ASSERT_TRUE(sim->send(read64(0x300), 0).ok());
  const std::uint64_t ne = sim->next_event_cycle();
  EXPECT_NE(ne, Simulator::kNoEvent);
  EXPECT_GT(ne, sim->cycle() + 1);  // Dead time until redelivery.
  EXPECT_LE(ne, sim->cycle() + cfg.link_retry_latency + 1);
  EXPECT_EQ(sim->clock_until(ne), ne);
  EXPECT_EQ(sim->cycle(), ne);
  EXPECT_GT(sim->fast_forwarded_cycles(), 0U);
  // The retry redelivers and the request completes normally.
  (void)sim->clock_until_idle(10000);
  EXPECT_TRUE(sim->rsp_ready(0));
}

TEST(FastForward, StatsCallbackFiresAtExactCyclesDuringJump) {
  auto sim = make(Config::hmc_4link_4gb());
  std::vector<std::uint64_t> fired;
  sim->set_stats_interval(10, [&fired](Simulator& s) {
    fired.push_back(s.cycle());
  });
  EXPECT_EQ(sim->clock_until(95), 95U);
  const std::vector<std::uint64_t> expected{10, 20, 30, 40, 50,
                                            60, 70, 80, 90};
  EXPECT_EQ(fired, expected);
}

TEST(FastForward, ThreadSimJumpsRetryDeadTimeIdentically) {
  // With every packet corrupted, each request spends link_retry_latency
  // cycles parked with nothing else in flight — exactly the dead time
  // ThreadSim::step fast-forwards. Completion cycles and latencies must
  // match the exhaustive walk; only the fast-forward counter differs.
  auto run = [](bool exhaustive, std::uint64_t& fast_forwarded) {
    Config cfg = Config::hmc_4link_4gb();
    cfg.link_flit_error_ppm = 1'000'000;
    cfg.link_retry_latency = 16;
    cfg.exhaustive_clock = exhaustive;
    std::unique_ptr<Simulator> sim;
    EXPECT_TRUE(Simulator::create(cfg, sim).ok());
    host::ThreadSim ts(*sim, 4);
    for (std::uint32_t tid = 0; tid < 4; ++tid) {
      EXPECT_TRUE(ts.issue(tid, read64(0x400 + tid * 64)).ok());
    }
    std::vector<std::string> log;
    int guard = 0;
    while (guard++ < 10000 &&
           !(ts.idle(0) && ts.idle(1) && ts.idle(2) && ts.idle(3))) {
      ts.step([&](const host::Completion& c) {
        log.push_back(std::to_string(c.tid) + "@" +
                      std::to_string(sim->cycle()) + ":" +
                      std::to_string(c.rsp.latency));
      });
    }
    fast_forwarded = sim->fast_forwarded_cycles();
    return log;
  };
  std::uint64_t ff_golden = 0;
  std::uint64_t ff_active = 0;
  const auto golden = run(/*exhaustive=*/true, ff_golden);
  const auto active = run(/*exhaustive=*/false, ff_active);
  EXPECT_EQ(golden, active);
  EXPECT_EQ(golden.size(), 4U);
  EXPECT_EQ(ff_golden, 0U);
  EXPECT_GT(ff_active, 0U);
}

}  // namespace
}  // namespace hmcsim::sim
