// simulator_test.cpp — end-to-end pipeline tests through the public API.
#include "src/sim/sim_stats.hpp"
#include "src/sim/simulator.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <sstream>

#include "plugins/builtin.h"

namespace hmcsim::sim {
namespace {

class SimulatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(Simulator::create(Config::hmc_4link_4gb(), sim_).ok());
  }

  /// Send (retrying stalls) and wait for the response on `link`.
  Response roundtrip(const spec::RqstParams& params, std::uint32_t link = 0) {
    Status s = sim_->send(params, link);
    int guard = 0;
    while (s.stalled() && guard++ < 10000) {
      sim_->clock();
      s = sim_->send(params, link);
    }
    EXPECT_TRUE(s.ok()) << s.to_string();
    Response rsp;
    guard = 0;
    while (!sim_->rsp_ready(link) && guard++ < 10000) {
      sim_->clock();
    }
    EXPECT_TRUE(sim_->recv(link, rsp).ok());
    return rsp;
  }

  std::unique_ptr<Simulator> sim_;
};

TEST(SimulatorCreate, RejectsInvalidConfig) {
  Config bad;
  bad.num_links = 5;
  std::unique_ptr<Simulator> sim;
  EXPECT_FALSE(Simulator::create(bad, sim).ok());
  EXPECT_EQ(sim, nullptr);
}

TEST_F(SimulatorTest, UncontendedRoundTripIsThreeCycles) {
  spec::RqstParams rd;
  rd.rqst = spec::Rqst::RD16;
  rd.addr = 0x100;
  rd.tag = 1;
  const Response rsp = roundtrip(rd);
  EXPECT_EQ(rsp.latency, 3U);
  EXPECT_EQ(rsp.pkt.tag(), 1);
  EXPECT_EQ(rsp.pkt.cmd(), 0x38);  // RD_RS.
}

// Every read/write size moves data correctly through the pipeline.
class RwSizeTest : public SimulatorTest,
                   public ::testing::WithParamInterface<std::uint32_t> {};

TEST_P(RwSizeTest, WriteThenReadRoundTrip) {
  const std::uint32_t bytes = GetParam();
  const std::uint32_t words = bytes / 8;
  std::array<std::uint64_t, 32> data{};
  for (std::uint32_t w = 0; w < words; ++w) {
    data[w] = 0x1111111111111111ULL * (w + 1);
  }
  const auto wr_cmd = spec::parse_rqst("WR" + std::to_string(bytes));
  const auto rd_cmd = spec::parse_rqst("RD" + std::to_string(bytes));
  ASSERT_TRUE(wr_cmd.has_value());
  ASSERT_TRUE(rd_cmd.has_value());

  spec::RqstParams wr;
  wr.rqst = *wr_cmd;
  wr.addr = 0x2000;
  wr.tag = 10;
  wr.payload = {data.data(), words};
  Response rsp = roundtrip(wr);
  EXPECT_EQ(rsp.pkt.cmd(), 0x39);  // WR_RS.
  EXPECT_EQ(rsp.pkt.errstat(), 0);

  spec::RqstParams rd;
  rd.rqst = *rd_cmd;
  rd.addr = 0x2000;
  rd.tag = 11;
  rsp = roundtrip(rd);
  // A read response of N data bytes carries exactly N/8 payload words.
  ASSERT_EQ(rsp.pkt.payload().size(), words);
  for (std::uint32_t w = 0; w < words; ++w) {
    EXPECT_EQ(rsp.pkt.payload()[w], data[w]) << "word " << w;
  }
}

INSTANTIATE_TEST_SUITE_P(AllSizes, RwSizeTest,
                         ::testing::Values(16U, 32U, 48U, 64U, 80U, 96U,
                                           112U, 128U, 256U),
                         [](const auto& info) {
                           return "B" + std::to_string(info.param);
                         });

TEST_F(SimulatorTest, PostedWriteProducesNoResponse) {
  const std::array<std::uint64_t, 2> data{0xAA, 0xBB};
  spec::RqstParams wr;
  wr.rqst = spec::Rqst::P_WR16;
  wr.addr = 0x300;
  wr.payload = data;
  ASSERT_TRUE(sim_->send(wr, 0).ok());
  for (int i = 0; i < 10; ++i) {
    sim_->clock();
    EXPECT_FALSE(sim_->rsp_ready(0));
  }
  // But the write landed.
  std::uint64_t v = 0;
  ASSERT_TRUE(sim_->device(0).store().read_u64(0x300, v).ok());
  EXPECT_EQ(v, 0xAAULL);
}

TEST_F(SimulatorTest, AtomicIncThroughPipeline) {
  ASSERT_TRUE(sim_->device(0).store().write_u64(0x400, 41).ok());
  spec::RqstParams inc;
  inc.rqst = spec::Rqst::INC8;
  inc.addr = 0x400;
  const Response rsp = roundtrip(inc);
  EXPECT_EQ(rsp.pkt.cmd(), 0x39);
  std::uint64_t v = 0;
  ASSERT_TRUE(sim_->device(0).store().read_u64(0x400, v).ok());
  EXPECT_EQ(v, 42ULL);
}

TEST_F(SimulatorTest, AtomicWithReturnCarriesOriginal) {
  ASSERT_TRUE(sim_->device(0).store().write_u64(0x500, 100).ok());
  const std::array<std::uint64_t, 2> imm{5, 0};
  spec::RqstParams add;
  add.rqst = spec::Rqst::TWOADDS8R;
  add.addr = 0x500;
  add.payload = imm;
  const Response rsp = roundtrip(add);
  ASSERT_EQ(rsp.pkt.payload().size(), 2U);
  EXPECT_EQ(rsp.pkt.payload()[0], 100ULL);
  std::uint64_t v = 0;
  ASSERT_TRUE(sim_->device(0).store().read_u64(0x500, v).ok());
  EXPECT_EQ(v, 105ULL);
}

TEST_F(SimulatorTest, Eq8SetsAtomicFlagInResponseHeader) {
  ASSERT_TRUE(sim_->device(0).store().write_u64(0x600, 7).ok());
  const std::array<std::uint64_t, 2> probe{7, 0};
  spec::RqstParams eq;
  eq.rqst = spec::Rqst::EQ8;
  eq.addr = 0x600;
  eq.payload = probe;
  Response rsp = roundtrip(eq);
  EXPECT_TRUE(rsp.pkt.atomic_flag());

  const std::array<std::uint64_t, 2> probe2{8, 0};
  eq.payload = probe2;
  rsp = roundtrip(eq);
  EXPECT_FALSE(rsp.pkt.atomic_flag());
}

TEST_F(SimulatorTest, ModeRegisterAccessViaPackets) {
  spec::RqstParams rd;
  rd.rqst = spec::Rqst::MD_RD;
  rd.addr = static_cast<std::uint64_t>(dev::Reg::VendorId);
  Response rsp = roundtrip(rd);
  EXPECT_EQ(rsp.pkt.cmd(), 0x3A);  // MD_RD_RS.
  ASSERT_GE(rsp.pkt.payload().size(), 1U);
  EXPECT_EQ(rsp.pkt.payload()[0], dev::kVendorId);

  const std::array<std::uint64_t, 2> value{0x5C0FF, 0};
  spec::RqstParams wr;
  wr.rqst = spec::Rqst::MD_WR;
  wr.addr = static_cast<std::uint64_t>(dev::Reg::Scratch0);
  wr.payload = value;
  rsp = roundtrip(wr);
  EXPECT_EQ(rsp.pkt.cmd(), 0x3B);  // MD_WR_RS.

  std::uint64_t scratch = 0;
  ASSERT_TRUE(sim_->jtag_read(
      0, static_cast<std::uint32_t>(dev::Reg::Scratch0), scratch).ok());
  EXPECT_EQ(scratch, 0x5C0FFULL);
}

TEST_F(SimulatorTest, ModeWriteToReadOnlyRegisterReturnsError) {
  const std::array<std::uint64_t, 2> value{1, 0};
  spec::RqstParams wr;
  wr.rqst = spec::Rqst::MD_WR;
  wr.addr = static_cast<std::uint64_t>(dev::Reg::VendorId);
  wr.payload = value;
  const Response rsp = roundtrip(wr);
  EXPECT_EQ(rsp.pkt.cmd(),
            static_cast<std::uint8_t>(spec::ResponseType::RSP_ERROR));
  EXPECT_NE(rsp.pkt.errstat(), 0);
}

TEST_F(SimulatorTest, JtagInterface) {
  std::uint64_t v = 0;
  ASSERT_TRUE(sim_->jtag_read(
      0, static_cast<std::uint32_t>(dev::Reg::LinkConfig), v).ok());
  EXPECT_EQ(v, 4ULL);
  EXPECT_FALSE(sim_->jtag_read(5, 0, v).ok());  // No such device.
  EXPECT_TRUE(sim_->jtag_write(
      0, static_cast<std::uint32_t>(dev::Reg::Scratch1), 77).ok());
  ASSERT_TRUE(sim_->jtag_read(
      0, static_cast<std::uint32_t>(dev::Reg::Scratch1), v).ok());
  EXPECT_EQ(v, 77ULL);
}

TEST_F(SimulatorTest, ClockCountRegisterTracksCycles) {
  for (int i = 0; i < 5; ++i) {
    sim_->clock();
  }
  std::uint64_t v = 0;
  ASSERT_TRUE(sim_->jtag_read(
      0, static_cast<std::uint32_t>(dev::Reg::ClockCount), v).ok());
  EXPECT_EQ(v, 5ULL);
}

TEST_F(SimulatorTest, FlowPacketsConsumedAtLink) {
  spec::RqstParams tret;
  tret.rqst = spec::Rqst::TRET;
  ASSERT_TRUE(sim_->send(tret, 0).ok());
  for (int i = 0; i < 5; ++i) {
    sim_->clock();
  }
  EXPECT_FALSE(sim_->rsp_ready(0));
  EXPECT_EQ(sim_->device(0).links()[0].flow_packets().value(), 1U);
  EXPECT_EQ(collect_stats(*sim_).rqsts_processed, 0U);
}

TEST_F(SimulatorTest, InvalidLinkRejected) {
  spec::RqstParams rd;
  rd.rqst = spec::Rqst::RD16;
  EXPECT_FALSE(sim_->send(rd, 4).ok());  // 4-link device: links 0..3.
  Response rsp;
  EXPECT_FALSE(sim_->recv(4, rsp).ok());
}

TEST_F(SimulatorTest, InvalidCubRejected) {
  spec::RqstParams rd;
  rd.rqst = spec::Rqst::RD16;
  rd.cub = 1;  // Single-device sim.
  EXPECT_EQ(sim_->send(rd, 0).code(), StatusCode::InvalidArg);
}

TEST_F(SimulatorTest, RecvOnIdleLinkReturnsNoData) {
  Response rsp;
  EXPECT_EQ(sim_->recv(0, rsp).code(), StatusCode::NoData);
}

TEST_F(SimulatorTest, SendStallsWhenQueuesSaturate) {
  // Saturate one link: each RD16 occupies one token; the xbar queue drains
  // only 26 FLITs per cycle into a 64-deep vault queue, so flooding
  // without clocking must eventually stall.
  spec::RqstParams rd;
  rd.rqst = spec::Rqst::RD16;
  rd.addr = 0;  // All to one vault.
  int sent = 0;
  Status s = Status::Ok();
  for (int i = 0; i < 1000 && s.ok(); ++i) {
    rd.tag = static_cast<std::uint16_t>(i % 2000);
    s = sim_->send(rd, 0);
    if (s.ok()) {
      ++sent;
    }
  }
  EXPECT_TRUE(s.stalled());
  EXPECT_EQ(sent, 128);  // Exactly the crossbar queue capacity.
  EXPECT_GT(collect_stats(*sim_).send_stalls, 0U);
}

TEST_F(SimulatorTest, ReadBeyondCapacityReturnsErrorResponse) {
  spec::RqstParams rd;
  rd.rqst = spec::Rqst::RD256;
  rd.addr = (1ULL << 34) - 64;  // Past the 4 GiB device, within ADRS.
  const Response rsp = roundtrip(rd);
  EXPECT_EQ(rsp.pkt.cmd(),
            static_cast<std::uint8_t>(spec::ResponseType::RSP_ERROR));
  EXPECT_NE(rsp.pkt.errstat(), 0);
  EXPECT_EQ(collect_stats(*sim_).errors, 1U);
}

TEST_F(SimulatorTest, CmcUnregisteredCommandSendFails) {
  spec::RqstParams cmc;
  cmc.rqst = spec::Rqst::CMC44;
  EXPECT_EQ(sim_->send(cmc, 0).code(), StatusCode::NotFound);
}

TEST_F(SimulatorTest, CmcUnregisteredPacketGetsErrorResponse) {
  // A raw packet can still be injected (e.g. replay); the vault answers
  // with an error response, per the paper's active-check.
  spec::RqstParams cmc;
  cmc.rqst = spec::Rqst::CMC44;
  cmc.flits_override = 2;
  const Response rsp = roundtrip(cmc);
  EXPECT_EQ(rsp.pkt.cmd(),
            static_cast<std::uint8_t>(spec::ResponseType::RSP_ERROR));
  EXPECT_NE(rsp.pkt.errstat(), 0);
}

TEST_F(SimulatorTest, CmcLockRoundTrip) {
  ASSERT_TRUE(sim_->register_cmc(hmcsim_builtin_lock_register,
                                 hmcsim_builtin_lock_execute,
                                 hmcsim_builtin_lock_str).ok());
  const std::array<std::uint64_t, 2> tid{99, 0};
  spec::RqstParams lock;
  lock.rqst = spec::Rqst::CMC125;
  lock.addr = 0x4000;
  lock.payload = tid;
  Response rsp = roundtrip(lock);
  EXPECT_EQ(rsp.pkt.cmd(), 0x39);  // WR_RS per Table V.
  EXPECT_EQ(rsp.pkt.payload()[0], 1ULL);  // Acquired.
  EXPECT_TRUE(rsp.pkt.atomic_flag());

  // Lock word and owner TID as in Figure 4.
  std::array<std::uint64_t, 2> mem{};
  ASSERT_TRUE(sim_->device(0).store().read_u128(0x4000, mem).ok());
  EXPECT_EQ(mem[0], 1ULL);
  EXPECT_EQ(mem[1], 99ULL);

  // Second lock attempt fails without modifying the owner.
  rsp = roundtrip(lock);
  EXPECT_EQ(rsp.pkt.payload()[0], 0ULL);
  ASSERT_TRUE(sim_->device(0).store().read_u128(0x4000, mem).ok());
  EXPECT_EQ(mem[1], 99ULL);
}

TEST_F(SimulatorTest, PostedCmcProducesNoResponse) {
  ASSERT_TRUE(sim_->register_cmc(hmcsim_builtin_zero16_register,
                                 hmcsim_builtin_zero16_execute,
                                 hmcsim_builtin_zero16_str).ok());
  ASSERT_TRUE(sim_->device(0).store().write_u128(0x700, {123, 456}).ok());
  spec::RqstParams zero;
  zero.rqst = spec::Rqst::CMC120;
  zero.addr = 0x700;
  ASSERT_TRUE(sim_->send(zero, 0).ok());
  for (int i = 0; i < 10; ++i) {
    sim_->clock();
    EXPECT_FALSE(sim_->rsp_ready(0));
  }
  std::array<std::uint64_t, 2> mem{0xFF, 0xFF};
  ASSERT_TRUE(sim_->device(0).store().read_u128(0x700, mem).ok());
  EXPECT_EQ(mem[0], 0ULL);
  EXPECT_EQ(mem[1], 0ULL);
  EXPECT_EQ(collect_stats(*sim_).cmc_executed, 1U);
}

TEST_F(SimulatorTest, CmcCustomResponseCodeOnWire) {
  ASSERT_TRUE(sim_->register_cmc(hmcsim_builtin_fadd_f64_register,
                                 hmcsim_builtin_fadd_f64_execute,
                                 hmcsim_builtin_fadd_f64_str).ok());
  double init = 1.5;
  std::uint64_t raw;
  std::memcpy(&raw, &init, 8);
  ASSERT_TRUE(sim_->device(0).store().write_u64(0x800, raw).ok());

  double operand = 2.25;
  std::array<std::uint64_t, 2> payload{};
  std::memcpy(&payload[0], &operand, 8);
  spec::RqstParams fadd;
  fadd.rqst = spec::Rqst::CMC56;
  fadd.addr = 0x800;
  fadd.payload = payload;
  const Response rsp = roundtrip(fadd);
  EXPECT_EQ(rsp.pkt.cmd(), 0x70);  // The plugin's custom RSP_CMC code.

  std::uint64_t result_raw = 0;
  ASSERT_TRUE(sim_->device(0).store().read_u64(0x800, result_raw).ok());
  double result;
  std::memcpy(&result, &result_raw, 8);
  EXPECT_DOUBLE_EQ(result, 3.75);
}

TEST_F(SimulatorTest, UnregisterCmcDisablesOperation) {
  ASSERT_TRUE(sim_->register_cmc(hmcsim_builtin_popcnt_register,
                                 hmcsim_builtin_popcnt_execute,
                                 hmcsim_builtin_popcnt_str).ok());
  ASSERT_TRUE(sim_->unregister_cmc(spec::Rqst::CMC32).ok());
  spec::RqstParams pc;
  pc.rqst = spec::Rqst::CMC32;
  EXPECT_EQ(sim_->send(pc, 0).code(), StatusCode::NotFound);
}

TEST_F(SimulatorTest, CmcResolvedByNameInTrace) {
  // The paper's Discrete Tracing requirement: the trace line shows the
  // plugin-provided operation name.
  ASSERT_TRUE(sim_->register_cmc(hmcsim_builtin_lock_register,
                                 hmcsim_builtin_lock_execute,
                                 hmcsim_builtin_lock_str).ok());
  std::ostringstream trace_out;
  trace::TextSink sink(trace_out);
  sim_->tracer().attach(&sink);
  sim_->tracer().set_level(trace::Level::Cmc);

  const std::array<std::uint64_t, 2> tid{5, 0};
  spec::RqstParams lock;
  lock.rqst = spec::Rqst::CMC125;
  lock.addr = 0x4000;
  lock.payload = tid;
  (void)roundtrip(lock);
  sim_->tracer().detach(&sink);

  EXPECT_NE(trace_out.str().find("hmc_lock"), std::string::npos);
  EXPECT_NE(trace_out.str().find("CMC"), std::string::npos);
}

TEST_F(SimulatorTest, LatencyTraceOnRecv) {
  trace::VectorSink sink;
  sim_->tracer().attach(&sink);
  sim_->tracer().set_level(trace::Level::Latency);
  spec::RqstParams rd;
  rd.rqst = spec::Rqst::RD16;
  (void)roundtrip(rd);
  sim_->tracer().detach(&sink);
  ASSERT_EQ(sink.events().size(), 1U);
  EXPECT_EQ(sink.events()[0].value, 3U);
}

TEST_F(SimulatorTest, StatsAggregate) {
  spec::RqstParams rd;
  rd.rqst = spec::Rqst::RD16;
  (void)roundtrip(rd);
  (void)roundtrip(rd);
  const SimStats stats = collect_stats(*sim_);
  EXPECT_EQ(stats.rqsts_processed, 2U);
  EXPECT_EQ(stats.rsps_generated, 2U);
  EXPECT_EQ(stats.rqst_flits, 2U);  // RD16 = 1 FLIT each.
  EXPECT_EQ(stats.rsp_flits, 4U);   // RD_RS = 2 FLITs each.
  EXPECT_GE(stats.cycles, 6U);
}

TEST_F(SimulatorTest, ResetPipelineKeepsMemoryAndCmc) {
  ASSERT_TRUE(sim_->register_cmc(hmcsim_builtin_popcnt_register,
                                 hmcsim_builtin_popcnt_execute,
                                 hmcsim_builtin_popcnt_str).ok());
  ASSERT_TRUE(sim_->device(0).store().write_u64(0x40, 0xF).ok());
  spec::RqstParams rd;
  rd.rqst = spec::Rqst::RD16;
  ASSERT_TRUE(sim_->send(rd, 0).ok());
  sim_->reset_pipeline();
  EXPECT_FALSE(sim_->rsp_ready(0));
  EXPECT_EQ(collect_stats(*sim_).rqsts_processed, 0U);
  // Memory and registrations survive.
  std::uint64_t v = 0;
  ASSERT_TRUE(sim_->device(0).store().read_u64(0x40, v).ok());
  EXPECT_EQ(v, 0xFULL);
  EXPECT_EQ(sim_->cmc_registry().active_count(), 1U);
}

TEST_F(SimulatorTest, ResponsesOnCorrectLink) {
  // A request sent on link 2 must come back on link 2 (SLID routing).
  spec::RqstParams rd;
  rd.rqst = spec::Rqst::RD16;
  rd.tag = 9;
  ASSERT_TRUE(sim_->send(rd, 2).ok());
  for (int i = 0; i < 5; ++i) {
    sim_->clock();
  }
  EXPECT_FALSE(sim_->rsp_ready(0));
  EXPECT_FALSE(sim_->rsp_ready(1));
  EXPECT_FALSE(sim_->rsp_ready(3));
  ASSERT_TRUE(sim_->rsp_ready(2));
  Response rsp;
  ASSERT_TRUE(sim_->recv(2, rsp).ok());
  EXPECT_EQ(rsp.pkt.slid(), 2);
  EXPECT_EQ(rsp.pkt.tag(), 9);
}

}  // namespace
}  // namespace hmcsim::sim
