# cli_stats_smoke.cmake — end-to-end check of the CLI statistics flags.
#
# Runs `hmcsim_cli mutex ... --stats-json <file> --stats-every <N>` and
# validates that (a) the run succeeds, (b) the periodic delta report
# appeared on stdout, and (c) the JSON document contains the expected
# top-level structure. Invoked as:
#   cmake -DCLI=<hmcsim_cli> -DOUT_DIR=<dir> -P cli_stats_smoke.cmake
if(NOT DEFINED CLI OR NOT DEFINED OUT_DIR)
  message(FATAL_ERROR "usage: cmake -DCLI=<exe> -DOUT_DIR=<dir> -P ${CMAKE_SCRIPT_MODE_FILE}")
endif()

set(json_path "${OUT_DIR}/cli_stats_smoke.json")
execute_process(
  COMMAND "${CLI}" mutex 8 --stats-json "${json_path}" --stats-every 5
  OUTPUT_VARIABLE run_stdout
  ERROR_VARIABLE run_stderr
  RESULT_VARIABLE run_rc)
if(NOT run_rc EQUAL 0)
  message(FATAL_ERROR "hmcsim_cli exited with ${run_rc}\n${run_stdout}\n${run_stderr}")
endif()

if(NOT run_stdout MATCHES "\\[stats\\] cycle=")
  message(FATAL_ERROR "--stats-every produced no periodic report:\n${run_stdout}")
endif()
if(NOT run_stdout MATCHES "rqsts_processed \\+")
  message(FATAL_ERROR "periodic report lists no counter deltas:\n${run_stdout}")
endif()

if(NOT EXISTS "${json_path}")
  message(FATAL_ERROR "--stats-json wrote no file at ${json_path}")
endif()
file(READ "${json_path}" json)
foreach(needle "\"schema_version\": 1" "\"cycle\":" "\"config\":" "\"cube0\"" "\"host\"")
  string(FIND "${json}" "${needle}" at)
  if(at EQUAL -1)
    message(FATAL_ERROR "stats JSON missing ${needle}:\n${json}")
  endif()
endforeach()
