// golden_equivalence_test.cpp — the active-set scheduler must be
// observably identical to the exhaustive walk.
//
// Every scenario is driven twice through byte-identical host code: once
// with Config::exhaustive_clock (HMC-Sim's walk over every device x vault
// x link, the golden reference) and once with the default active-set
// scheduling. The full stats-registry JSON, the complete trace stream
// (all levels), and the exact response sequence must match byte for byte.
#include <gtest/gtest.h>

#include <array>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/metrics/sampler.hpp"
#include "src/sim/session.hpp"
#include "src/sim/simulator.hpp"
#include "src/sim/stats_report.hpp"

namespace hmcsim::sim {
namespace {

/// Everything observable about one scenario run.
struct Observed {
  std::string stats_json;
  std::string trace_text;
  std::vector<std::string> responses;  ///< "link:tag:cmd:latency" in order.
  std::vector<std::uint64_t> callback_cycles;
};

using Driver = std::function<void(Simulator&, Observed&)>;

void drain_responses(Simulator& sim, Observed& obs) {
  for (std::uint32_t link = 0; link < sim.config().num_links; ++link) {
    Response rsp;
    while (sim.recv(link, rsp).ok()) {
      obs.responses.push_back(
          std::to_string(link) + ":" + std::to_string(rsp.pkt.tag()) + ":" +
          std::to_string(rsp.pkt.cmd()) + ":" + std::to_string(rsp.latency));
    }
  }
}

/// Clock `cycles` times, draining every link after each clock (the same
/// deterministic recv order as the host drivers).
void pump(Simulator& sim, Observed& obs, std::uint64_t cycles) {
  for (std::uint64_t i = 0; i < cycles; ++i) {
    sim.clock();
    drain_responses(sim, obs);
  }
}

/// Send with stall-retry: each retry costs a clock, like a blocked host.
void send_retrying(Simulator& sim, Observed& obs,
                   const spec::RqstParams& params, std::uint32_t link) {
  Status s = sim.send(params, link);
  int guard = 0;
  while (s.stalled() && guard++ < 10000) {
    pump(sim, obs, 1);
    s = sim.send(params, link);
  }
  ASSERT_TRUE(s.ok()) << s.to_string();
}

Observed run_scenario(Config cfg, bool exhaustive, const Driver& driver) {
  cfg.exhaustive_clock = exhaustive;
  std::unique_ptr<Simulator> sim;
  EXPECT_TRUE(Simulator::create(cfg, sim).ok());
  Observed obs;
  std::ostringstream trace_os;
  trace::TextSink sink(trace_os);
  sim->tracer().set_level(trace::Level::All);
  sim->tracer().attach(&sink);
  driver(*sim, obs);
  obs.stats_json = format_stats_json(*sim);
  obs.trace_text = trace_os.str();
  return obs;
}

/// The assertion every test reduces to.
void expect_equivalent(const Config& cfg, const Driver& driver) {
  const Observed golden = run_scenario(cfg, /*exhaustive=*/true, driver);
  const Observed active = run_scenario(cfg, /*exhaustive=*/false, driver);
  EXPECT_EQ(golden.stats_json, active.stats_json);
  EXPECT_EQ(golden.trace_text, active.trace_text);
  EXPECT_EQ(golden.responses, active.responses);
  EXPECT_EQ(golden.callback_cycles, active.callback_cycles);
  EXPECT_FALSE(golden.responses.empty());
}

// Payload storage must outlive the RqstParams span.
constexpr std::array<std::uint64_t, 8> kWords{1, 2, 3, 4, 5, 6, 7, 8};

spec::RqstParams read64(std::uint64_t addr, std::uint16_t tag,
                        std::uint8_t cub = 0) {
  spec::RqstParams p;
  p.rqst = spec::Rqst::RD64;
  p.addr = addr;
  p.tag = tag;
  p.cub = cub;
  return p;
}

spec::RqstParams write64(std::uint64_t addr, std::uint16_t tag,
                         std::uint8_t cub = 0) {
  spec::RqstParams p;
  p.rqst = spec::Rqst::WR64;
  p.addr = addr;
  p.tag = tag;
  p.cub = cub;
  p.payload = kWords;
  return p;
}

TEST(GoldenEquivalence, MixedTrafficSingleCube) {
  expect_equivalent(Config::hmc_4link_4gb(), [](Simulator& sim,
                                                Observed& obs) {
    std::uint16_t tag = 0;
    // Burst of writes then reads, spread across links and vaults, with
    // bubbles between bursts so the active scheduler sees empty stages.
    for (int round = 0; round < 4; ++round) {
      for (std::uint32_t i = 0; i < 16; ++i) {
        const std::uint64_t addr = (i * 64 + round * 4096) % (1 << 20);
        send_retrying(sim, obs, write64(addr, tag), tag % 4);
        ++tag;
      }
      pump(sim, obs, 10);
      for (std::uint32_t i = 0; i < 16; ++i) {
        const std::uint64_t addr = (i * 64 + round * 4096) % (1 << 20);
        send_retrying(sim, obs, read64(addr, tag), tag % 4);
        ++tag;
      }
      pump(sim, obs, 40);  // Fully quiet tail: stages go idle.
    }
    pump(sim, obs, 50);
  });
}

TEST(GoldenEquivalence, AmoTraffic) {
  expect_equivalent(Config::hmc_4link_4gb(), [](Simulator& sim,
                                                Observed& obs) {
    std::uint16_t tag = 0;
    for (int round = 0; round < 3; ++round) {
      for (std::uint32_t i = 0; i < 8; ++i) {
        spec::RqstParams p;
        p.rqst = i % 2 == 0 ? spec::Rqst::INC8 : spec::Rqst::ADD16;
        p.addr = 0x8000 + i * 16;
        p.tag = tag;
        if (p.rqst == spec::Rqst::ADD16) {  // INC8 carries no payload.
          p.payload = std::span<const std::uint64_t>(kWords.data(), 2);
        }
        send_retrying(sim, obs, p, tag % 4);
        ++tag;
      }
      pump(sim, obs, 30);
    }
  });
}

TEST(GoldenEquivalence, ChainTopology) {
  Config cfg = Config::hmc_4link_4gb();
  cfg.num_devs = 4;
  cfg.topology = Topology::Chain;
  expect_equivalent(cfg, [](Simulator& sim, Observed& obs) {
    std::uint16_t tag = 0;
    for (std::uint8_t cub = 0; cub < 4; ++cub) {
      for (std::uint32_t i = 0; i < 8; ++i) {
        send_retrying(sim, obs, write64(i * 64, tag, cub), tag % 4);
        ++tag;
        send_retrying(sim, obs, read64(i * 64, tag, cub), tag % 4);
        ++tag;
      }
    }
    pump(sim, obs, 200);
  });
}

TEST(GoldenEquivalence, StarTopology) {
  Config cfg = Config::hmc_4link_4gb();
  cfg.num_devs = 4;
  cfg.topology = Topology::Star;
  expect_equivalent(cfg, [](Simulator& sim, Observed& obs) {
    std::uint16_t tag = 0;
    for (std::uint8_t cub = 0; cub < 4; ++cub) {
      for (std::uint32_t i = 0; i < 8; ++i) {
        send_retrying(sim, obs, read64(i * 64 + cub * 4096, tag, cub),
                      tag % 4);
        ++tag;
      }
      pump(sim, obs, 5);
    }
    pump(sim, obs, 150);
  });
}

TEST(GoldenEquivalence, LinkRetries) {
  Config cfg = Config::hmc_4link_4gb();
  cfg.link_flit_error_ppm = 20000;  // Deterministic injected CRC errors.
  expect_equivalent(cfg, [](Simulator& sim, Observed& obs) {
    std::uint16_t tag = 0;
    for (int round = 0; round < 5; ++round) {
      for (std::uint32_t i = 0; i < 32; ++i) {
        send_retrying(sim, obs, read64(i * 64, tag), tag % 4);
        ++tag;
      }
      // Long quiet tail: parked retries are the only future work, which
      // is exactly the state the active scheduler must not sleep through.
      pump(sim, obs, 60);
    }
  });
}

TEST(GoldenEquivalence, ErrorInjectionMixedTraffic) {
  // Heavy injection on both directions with mixed read/write/flow traffic:
  // exercises request FIFOs, response FIFOs, and flow-packet drops in the
  // same run. The replay schedule (and therefore every Retry trace line
  // and every per-link counter) must be byte-identical between schedulers.
  Config cfg = Config::hmc_4link_4gb();
  cfg.link_flit_error_ppm = 120000;
  cfg.link_error_seed = 0xD1CE;
  cfg.link_retry_latency = 6;
  expect_equivalent(cfg, [](Simulator& sim, Observed& obs) {
    std::uint16_t tag = 0;
    for (int round = 0; round < 3; ++round) {
      for (std::uint32_t i = 0; i < 24; ++i) {
        const std::uint64_t addr = (i * 64 + round * 8192) % (1 << 20);
        if (i % 3 == 0) {
          send_retrying(sim, obs, write64(addr, tag), tag % 4);
        } else {
          send_retrying(sim, obs, read64(addr, tag), tag % 4);
        }
        ++tag;
        if (i % 8 == 7) {
          // Flow packets roll the same RNG as real traffic; a drop in one
          // scheduler but not the other would desynchronise everything.
          spec::RqstParams tret;
          tret.rqst = spec::Rqst::TRET;
          (void)sim.send(tret, i % 4);
        }
      }
      // Quiet tail long enough for both direction FIFOs to fully replay.
      pump(sim, obs, 80);
    }
  });
}

TEST(GoldenEquivalence, DramFaultInjection) {
  // DRAM fault injection plus the patrol scrubber: injection draws are
  // keyed by (cube, vault, word, cycle) and the scrub walk registers with
  // next_event_cycle, so the active scheduler must reproduce the golden
  // walk's ECC record — corrections, poisons, scrub repairs — exactly,
  // including across quiet tails where scrub ticks are the only work.
  Config cfg = Config::hmc_4link_4gb();
  cfg.dram_fault_ppm = 200000;
  cfg.dram_fault_seed = 0xFA117;
  cfg.scrub_interval = 32;
  cfg.stuck_faults = 64;
  expect_equivalent(cfg, [](Simulator& sim, Observed& obs) {
    std::uint16_t tag = 0;
    for (int round = 0; round < 4; ++round) {
      for (std::uint32_t i = 0; i < 12; ++i) {
        // Revisit the same lines so latent flips accumulate into
        // uncorrectable words, with writes repairing a subset.
        const std::uint64_t addr = (i % 6) * 64;
        if (i % 4 == 0) {
          send_retrying(sim, obs, write64(addr, tag), tag % 4);
        } else {
          send_retrying(sim, obs, read64(addr, tag), tag % 4);
        }
        ++tag;
      }
      pump(sim, obs, 70);  // Quiet tail: scrub ticks are the only work.
    }
    pump(sim, obs, 120);
  });
}

TEST(GoldenEquivalence, BankConflicts) {
  Config cfg = Config::hmc_4link_4gb();
  cfg.model_bank_conflicts = true;
  expect_equivalent(cfg, [](Simulator& sim, Observed& obs) {
    std::uint16_t tag = 0;
    // Hammer one address so every access after the first defers on the
    // busy bank (per-cycle conflict counting must match exactly).
    for (std::uint32_t i = 0; i < 16; ++i) {
      send_retrying(sim, obs, read64(0x1000, tag), tag % 4);
      ++tag;
    }
    pump(sim, obs, 200);
  });
}

TEST(GoldenEquivalence, ResetPipelineClearsActiveSets) {
  expect_equivalent(Config::hmc_4link_4gb(), [](Simulator& sim,
                                                Observed& obs) {
    std::uint16_t tag = 0;
    for (std::uint32_t i = 0; i < 16; ++i) {
      send_retrying(sim, obs, write64(i * 64, tag), tag % 4);
      ++tag;
    }
    pump(sim, obs, 2);  // Leave packets in flight...
    sim.reset_pipeline();  // ...then drop them all.
    for (std::uint32_t i = 0; i < 8; ++i) {
      send_retrying(sim, obs, read64(i * 64, tag), tag % 4);
      ++tag;
    }
    pump(sim, obs, 100);
  });
}

TEST(GoldenEquivalence, StatsCallbackCyclesExact) {
  expect_equivalent(Config::hmc_4link_4gb(), [](Simulator& sim,
                                                Observed& obs) {
    sim.set_stats_interval(7, [&obs](Simulator& s) {
      obs.callback_cycles.push_back(s.cycle());
    });
    std::uint16_t tag = 0;
    for (std::uint32_t i = 0; i < 8; ++i) {
      send_retrying(sim, obs, read64(i * 64, tag), tag % 4);
      ++tag;
    }
    pump(sim, obs, 20);
    // Dead stretch crossed with clock_until: callbacks at 7-multiples
    // must still fire at their exact cycles in both modes.
    (void)sim.clock_until(sim.cycle() + 100);
    drain_responses(sim, obs);
    for (std::uint32_t i = 0; i < 4; ++i) {
      send_retrying(sim, obs, read64(i * 64, tag), tag % 4);
      ++tag;
    }
    pump(sim, obs, 30);
  });
}

// ---- parallel sharded clock -----------------------------------------------
//
// The same equivalence bar, one axis over: the sequential walk (threads=1)
// is golden, and every worker count must reproduce its stats JSON, trace
// stream, response sequence and callback cycles byte for byte. Thread
// counts above the cube count are deliberately included — the engine caps
// the pool at one worker per cube and must stay exact while doing so.

void expect_parallel_equivalent(Config cfg, const Driver& driver,
                                bool exhaustive = false) {
  cfg.threads = 1;
  const Observed golden = run_scenario(cfg, exhaustive, driver);
  ASSERT_FALSE(golden.responses.empty());
  for (const std::uint32_t threads : {2U, 4U, 8U}) {
    Config pcfg = cfg;
    pcfg.threads = threads;
    const Observed par = run_scenario(pcfg, exhaustive, driver);
    EXPECT_EQ(golden.stats_json, par.stats_json) << "threads=" << threads;
    EXPECT_EQ(golden.trace_text, par.trace_text) << "threads=" << threads;
    EXPECT_EQ(golden.responses, par.responses) << "threads=" << threads;
    EXPECT_EQ(golden.callback_cycles, par.callback_cycles)
        << "threads=" << threads;
  }
}

TEST(ParallelEquivalence, IdleChainWithSparseTraffic) {
  // Mostly-dead chain: single packets separated by long quiescent
  // stretches crossed with clock_until — the parallel scheduler must
  // fast-forward them exactly like the sequential one.
  Config cfg = Config::hmc_4link_4gb();
  cfg.num_devs = 4;
  cfg.topology = Topology::Chain;
  expect_parallel_equivalent(cfg, [](Simulator& sim, Observed& obs) {
    std::uint16_t tag = 0;
    for (std::uint8_t cub = 0; cub < 4; ++cub) {
      send_retrying(sim, obs, read64(cub * 4096, tag, cub), tag % 4);
      ++tag;
      (void)sim.clock_until(sim.cycle() + 300);
      drain_responses(sim, obs);
    }
  });
}

TEST(ParallelEquivalence, SaturatedChain) {
  // Every cube busy at once: cross-cube chain queues carry traffic in
  // both directions every cycle, which is exactly the state the
  // wavefront ordering protects.
  Config cfg = Config::hmc_4link_4gb();
  cfg.num_devs = 8;
  cfg.topology = Topology::Chain;
  expect_parallel_equivalent(cfg, [](Simulator& sim, Observed& obs) {
    std::uint16_t tag = 0;
    for (int round = 0; round < 2; ++round) {
      for (std::uint8_t cub = 0; cub < 8; ++cub) {
        for (std::uint32_t i = 0; i < 4; ++i) {
          const std::uint64_t addr = i * 64 + round * 8192;
          if (i % 2 == 0) {
            send_retrying(sim, obs, write64(addr, tag, cub), tag % 4);
          } else {
            send_retrying(sim, obs, read64(addr, tag, cub), tag % 4);
          }
          ++tag;
        }
      }
      pump(sim, obs, 150);
    }
    pump(sim, obs, 400);
  });
}

TEST(ParallelEquivalence, StarTopology) {
  // Star routing flips the stage-C push direction (hub fans out to every
  // spoke), exercising the per-topology pusher wiring.
  Config cfg = Config::hmc_4link_4gb();
  cfg.num_devs = 4;
  cfg.topology = Topology::Star;
  expect_parallel_equivalent(cfg, [](Simulator& sim, Observed& obs) {
    std::uint16_t tag = 0;
    for (int round = 0; round < 2; ++round) {
      for (std::uint8_t cub = 0; cub < 4; ++cub) {
        for (std::uint32_t i = 0; i < 4; ++i) {
          send_retrying(sim, obs, read64(i * 64 + cub * 4096, tag, cub),
                        tag % 4);
          ++tag;
        }
      }
      pump(sim, obs, 120);
    }
    pump(sim, obs, 200);
  });
}

TEST(ParallelEquivalence, ErrorInjection) {
  // Link CRC injection draws from per-link RNG streams; the replay
  // schedule (and every Retry trace line) must survive sharding.
  Config cfg = Config::hmc_4link_4gb();
  cfg.num_devs = 4;
  cfg.topology = Topology::Chain;
  cfg.link_flit_error_ppm = 120000;
  cfg.link_error_seed = 0xD1CE;
  cfg.link_retry_latency = 6;
  expect_parallel_equivalent(cfg, [](Simulator& sim, Observed& obs) {
    std::uint16_t tag = 0;
    for (int round = 0; round < 2; ++round) {
      for (std::uint8_t cub = 0; cub < 4; ++cub) {
        for (std::uint32_t i = 0; i < 6; ++i) {
          const std::uint64_t addr = i * 64 + round * 8192;
          if (i % 3 == 0) {
            send_retrying(sim, obs, write64(addr, tag, cub), tag % 4);
          } else {
            send_retrying(sim, obs, read64(addr, tag, cub), tag % 4);
          }
          ++tag;
        }
      }
      pump(sim, obs, 200);
    }
  });
}

TEST(ParallelEquivalence, DramFaultInjection) {
  // The fault arm of the parallel golden matrix: per-cube injectors are
  // owner-partitioned and the scrub interleave point matches the
  // sequential walk, so the ECC record must survive sharding byte for
  // byte — in both clocking modes.
  Config cfg = Config::hmc_4link_4gb();
  cfg.num_devs = 4;
  cfg.topology = Topology::Chain;
  cfg.dram_fault_ppm = 200000;
  cfg.dram_fault_seed = 0xFA117;
  cfg.scrub_interval = 32;
  cfg.stuck_faults = 64;
  const Driver driver = [](Simulator& sim, Observed& obs) {
    std::uint16_t tag = 0;
    for (int round = 0; round < 2; ++round) {
      for (std::uint8_t cub = 0; cub < 4; ++cub) {
        for (std::uint32_t i = 0; i < 4; ++i) {
          const std::uint64_t addr = (i % 2) * 64;  // revisit lines
          if (i % 4 == 0) {
            send_retrying(sim, obs, write64(addr, tag, cub), tag % 4);
          } else {
            send_retrying(sim, obs, read64(addr, tag, cub), tag % 4);
          }
          ++tag;
        }
      }
      pump(sim, obs, 150);
    }
    pump(sim, obs, 200);
  };
  expect_parallel_equivalent(cfg, driver, /*exhaustive=*/false);
  expect_parallel_equivalent(cfg, driver, /*exhaustive=*/true);
}

TEST(ParallelEquivalence, StatsCallbacksFireAtExactCycles) {
  Config cfg = Config::hmc_4link_4gb();
  cfg.num_devs = 4;
  cfg.topology = Topology::Chain;
  expect_parallel_equivalent(cfg, [](Simulator& sim, Observed& obs) {
    sim.set_stats_interval(7, [&obs](Simulator& s) {
      obs.callback_cycles.push_back(s.cycle());
    });
    std::uint16_t tag = 0;
    for (std::uint8_t cub = 0; cub < 4; ++cub) {
      send_retrying(sim, obs, read64(cub * 256, tag, cub), tag % 4);
      ++tag;
    }
    pump(sim, obs, 30);
    // Dead stretch spanning many callback boundaries: the parallel
    // scheduler must still fire each one at its exact cycle.
    (void)sim.clock_until(sim.cycle() + 200);
    drain_responses(sim, obs);
    for (std::uint32_t i = 0; i < 4; ++i) {
      send_retrying(sim, obs, read64(i * 64, tag), tag % 4);
      ++tag;
    }
    pump(sim, obs, 60);
  });
}

TEST(ParallelEquivalence, ExhaustiveClockLockstep) {
  // exhaustive_clock disables the per-stage work gates: every device
  // runs every stage every cycle, maximising cross-shard contention.
  Config cfg = Config::hmc_4link_4gb();
  cfg.num_devs = 4;
  cfg.topology = Topology::Chain;
  expect_parallel_equivalent(
      cfg,
      [](Simulator& sim, Observed& obs) {
        std::uint16_t tag = 0;
        for (std::uint8_t cub = 0; cub < 4; ++cub) {
          for (std::uint32_t i = 0; i < 4; ++i) {
            send_retrying(sim, obs, read64(i * 64, tag, cub), tag % 4);
            ++tag;
          }
        }
        pump(sim, obs, 250);
      },
      /*exhaustive=*/true);
}

TEST(ParallelEquivalence, SetThreadsMidRunStaysExact) {
  // Resizing the pool between clocks must not disturb the simulation:
  // drive the same scenario sequentially and with a 1 -> 4 -> 2 -> 8
  // thread schedule, comparing all observables.
  Config cfg = Config::hmc_4link_4gb();
  cfg.num_devs = 4;
  cfg.topology = Topology::Chain;
  auto driver = [](bool resize) {
    return [resize](Simulator& sim, Observed& obs) {
      const std::array<std::uint32_t, 4> schedule{1, 4, 2, 8};
      std::uint16_t tag = 0;
      for (std::size_t phase = 0; phase < schedule.size(); ++phase) {
        if (resize) {
          ASSERT_TRUE(sim.set_threads(schedule[phase]).ok());
        }
        for (std::uint8_t cub = 0; cub < 4; ++cub) {
          send_retrying(sim, obs, read64(cub * 1024 + phase * 64,
                                         tag, cub),
                        tag % 4);
          ++tag;
        }
        pump(sim, obs, 120);
      }
    };
  };
  const Observed golden = run_scenario(cfg, false, driver(false));
  const Observed resized = run_scenario(cfg, false, driver(true));
  EXPECT_EQ(golden.stats_json, resized.stats_json);
  EXPECT_EQ(golden.trace_text, resized.trace_text);
  EXPECT_EQ(golden.responses, resized.responses);
  EXPECT_FALSE(golden.responses.empty());
}

#ifdef HMCSIM_PLUGIN_DIR

TEST(ParallelEquivalence, RogueCmcQuarantine) {
  // A misbehaving CMC plugin forces the wavefront's serialised vault
  // stage (plugin execution shares registry state across cubes) and
  // drives the quarantine machinery; failure streaks, quarantine entry
  // and the rearm must land on identical cycles for every thread count.
  Config cfg = Config::hmc_4link_4gb();
  cfg.num_devs = 4;
  cfg.topology = Topology::Chain;
  cfg.cmc_fail_threshold = 4;
  expect_parallel_equivalent(cfg, [](Simulator& sim, Observed& obs) {
    ASSERT_TRUE(
        sim.load_cmc(std::string(HMCSIM_PLUGIN_DIR) + "/hmc_rogue.so").ok());
    std::uint16_t tag = 0;
    // Rogue behaviour is selected by address bits [6:4] (hmc_rogue.c):
    // 0 = behave, 1 = fail. Interleave behaving traffic on remote cubes
    // with failures on cube 0 until the slot quarantines.
    auto cmc = [](std::uint64_t mode, std::uint16_t t, std::uint8_t cub) {
      spec::RqstParams p;
      p.rqst = spec::Rqst::CMC70;
      p.addr = 0x10000 | (mode << 4);
      p.tag = t;
      p.cub = cub;
      return p;
    };
    // Failures on every cube (a success would reset the consecutive
    // streak), with plain reads riding along so the vault stages carry
    // mixed CMC / non-CMC work.
    for (int round = 0; round < 3; ++round) {
      for (std::uint8_t cub = 0; cub < 4; ++cub) {
        send_retrying(sim, obs, cmc(1, tag, cub), tag % 4);
        ++tag;
        send_retrying(sim, obs, read64(0x4000 + cub * 256, tag, cub),
                      tag % 4);
        ++tag;
      }
      pump(sim, obs, 80);
    }
    // Past the threshold the slot is quarantined; rearm and confirm the
    // revival is part of the byte-identical record too.
    ASSERT_TRUE(sim.rearm_cmc(spec::Rqst::CMC70).ok());
    send_retrying(sim, obs, cmc(0, tag, 2), tag % 4);
    ++tag;
    pump(sim, obs, 120);
  });
}

#endif  // HMCSIM_PLUGIN_DIR

TEST(GoldenEquivalence, ClockUntilMatchesSteppedClock) {
  // Within the active scheduler: fast-forwarding a span must be
  // observably identical to stepping it cycle by cycle.
  const Config cfg = Config::hmc_4link_4gb();
  auto driver = [](bool use_ff) {
    return [use_ff](Simulator& sim, Observed& obs) {
      std::uint16_t tag = 0;
      for (int round = 0; round < 3; ++round) {
        for (std::uint32_t i = 0; i < 8; ++i) {
          send_retrying(sim, obs, read64(i * 64, tag), tag % 4);
          ++tag;
        }
        // Both arms drain only after the span: recv() measures latency
        // at recv time, so the drain must happen at the same cycle for
        // the comparison to be meaningful.
        if (use_ff) {
          (void)sim.clock_until(sim.cycle() + 80);
        } else {
          for (int c = 0; c < 80; ++c) {
            sim.clock();
          }
        }
        drain_responses(sim, obs);
      }
    };
  };
  const Observed stepped = run_scenario(cfg, false, driver(false));
  const Observed jumped = run_scenario(cfg, false, driver(true));
  EXPECT_EQ(stepped.stats_json, jumped.stats_json);
  EXPECT_EQ(stepped.trace_text, jumped.trace_text);
  EXPECT_EQ(stepped.responses, jumped.responses);
  EXPECT_FALSE(stepped.responses.empty());
}

// ---- telemetry determinism ------------------------------------------------
//
// The sampler and the self-profiler ride the same periodic-hook
// machinery as the stats callback, and the acceptance bar is the same
// one every other observer meets: attaching them must not perturb the
// simulation, and the sampled series itself must be byte-identical for
// any thread count and for active vs. exhaustive clocking.

struct TelemetryObserved {
  Observed base;
  std::string series;  ///< Sampler JSON export.
};

/// run_scenario plus a sampler on a 13-cycle hook (deliberately coprime
/// with the span chunking) and, optionally, self-profiling.
TelemetryObserved run_telemetry_scenario(Config cfg, bool exhaustive,
                                         bool prof, const Driver& driver) {
  cfg.exhaustive_clock = exhaustive;
  std::unique_ptr<Simulator> sim;
  EXPECT_TRUE(Simulator::create(cfg, sim).ok());
  TelemetryObserved out;
  std::ostringstream trace_os;
  trace::TextSink sink(trace_os);
  sim->tracer().set_level(trace::Level::All);
  sim->tracer().attach(&sink);
  if (prof) {
    EXPECT_TRUE(sim->enable_profiling().ok());
  }
  metrics::Sampler sampler(sim->metrics(),
                           {.every = 13, .capacity = 64, .paths = {}});
  register_default_samples(sampler, *sim);
  const std::uint64_t hook = sim->add_periodic_hook(
      13, [&sampler](Simulator& s) { sampler.sample(s.cycle()); });
  driver(*sim, out.base);
  sim->remove_periodic_hook(hook);
  out.base.stats_json = format_stats_json(*sim);
  out.base.trace_text = trace_os.str();
  out.series = sampler.to_json();
  return out;
}

/// Drop PROF lines from a trace: the profiler's wall-clock emissions are
/// legitimately host-dependent; everything else must still match.
std::string strip_prof_lines(const std::string& text) {
  std::string out;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    if (line.find("PROF") == std::string::npos) {
      out += line;
      out += '\n';
    }
  }
  return out;
}

/// Traffic with quiet stretches crossed by clock_until, so sampling hits
/// both stepped spans and hook-bounded fast-forwards.
Driver telemetry_driver() {
  return [](Simulator& sim, Observed& obs) {
    std::uint16_t tag = 0;
    for (int round = 0; round < 3; ++round) {
      for (std::uint32_t i = 0; i < 12; ++i) {
        const std::uint64_t addr = (i * 64 + round * 4096) % (1 << 20);
        if (i % 3 == 0) {
          send_retrying(sim, obs, write64(addr, tag), tag % 4);
        } else {
          send_retrying(sim, obs, read64(addr, tag), tag % 4);
        }
        ++tag;
      }
      pump(sim, obs, 30);
      (void)sim.clock_until(sim.cycle() + 60);
      drain_responses(sim, obs);
    }
  };
}

TEST(TelemetryEquivalence, SamplerDoesNotPerturbSimulation) {
  const Config cfg = Config::hmc_4link_4gb();
  const Driver driver = telemetry_driver();
  const Observed golden = run_scenario(cfg, false, driver);
  const TelemetryObserved sampled =
      run_telemetry_scenario(cfg, false, /*prof=*/false, driver);
  EXPECT_EQ(golden.stats_json, sampled.base.stats_json);
  EXPECT_EQ(golden.trace_text, sampled.base.trace_text);
  EXPECT_EQ(golden.responses, sampled.base.responses);
  EXPECT_FALSE(golden.responses.empty());
  EXPECT_GT(sampled.series.find("\"windows\""), 0U);
}

TEST(TelemetryEquivalence, ProfilerDoesNotPerturbSimulation) {
  // The profiler is pure observation: with it enabled, responses, the
  // sampled series (which excludes sim.prof.*) and the non-PROF trace
  // stream must match the unprofiled run byte for byte. stats_json is
  // deliberately not compared — the gated sim.prof.* values are
  // wall-clock and belong only to the profiled run.
  const Config cfg = Config::hmc_4link_4gb();
  const Driver driver = telemetry_driver();
  const TelemetryObserved plain =
      run_telemetry_scenario(cfg, false, /*prof=*/false, driver);
  const TelemetryObserved profiled =
      run_telemetry_scenario(cfg, false, /*prof=*/true, driver);
  EXPECT_EQ(plain.base.responses, profiled.base.responses);
  EXPECT_EQ(plain.series, profiled.series);
  EXPECT_EQ(plain.base.trace_text,
            strip_prof_lines(profiled.base.trace_text));
}

TEST(TelemetryEquivalence, SeriesIdenticalAcrossThreadCounts) {
  // Profiling on for extra adversity: its wall-clock counters mutate
  // during the run, and the series must still be exact because the
  // default column set excludes them.
  Config cfg = Config::hmc_4link_4gb();
  cfg.num_devs = 4;
  cfg.topology = Topology::Chain;
  cfg.threads = 1;
  const Driver driver = telemetry_driver();
  const TelemetryObserved golden =
      run_telemetry_scenario(cfg, false, /*prof=*/true, driver);
  ASSERT_FALSE(golden.base.responses.empty());
  EXPECT_GT(golden.series.find("\"cycle\""), 0U);
  for (const std::uint32_t threads : {2U, 4U, 8U}) {
    Config pcfg = cfg;
    pcfg.threads = threads;
    const TelemetryObserved par =
        run_telemetry_scenario(pcfg, false, /*prof=*/true, driver);
    EXPECT_EQ(golden.series, par.series) << "threads=" << threads;
    EXPECT_EQ(golden.base.responses, par.base.responses)
        << "threads=" << threads;
  }
}

TEST(TelemetryEquivalence, SeriesIdenticalActiveVsExhaustive) {
  const Config cfg = Config::hmc_4link_4gb();
  const Driver driver = telemetry_driver();
  const TelemetryObserved active =
      run_telemetry_scenario(cfg, false, /*prof=*/false, driver);
  const TelemetryObserved exhaustive =
      run_telemetry_scenario(cfg, true, /*prof=*/false, driver);
  EXPECT_EQ(active.series, exhaustive.series);
  EXPECT_EQ(active.base.stats_json, exhaustive.base.stats_json);
}

// ---- batched session equivalence ----------------------------------------
//
// A Session admits per-link FIFO, links ascending, head-of-line until
// stall, draining before admitting every pump. The tests below hold that
// a batch driven through the Session is byte-identical — stats JSON,
// full trace stream, response retirement order — to the same requests
// pushed by a hand-written packet-at-a-time loop with that schedule.

/// The workload every arm shares: request i goes to link i % num_links
/// (exactly the Session's round-robin sharding).
std::vector<spec::RqstParams> batch_workload() {
  std::vector<spec::RqstParams> reqs;
  std::uint16_t tag = 0;
  for (std::uint32_t i = 0; i < 64; ++i) {
    const std::uint64_t addr = (i * 4096 + (i % 7) * 64) % (1 << 20);
    reqs.push_back(i % 2 == 0 ? write64(addr, tag) : read64(addr, tag));
    ++tag;
  }
  return reqs;
}

void record_response(Observed& obs, const Response& rsp) {
  obs.responses.push_back(std::to_string(rsp.pkt.tag()) + ":" +
                          std::to_string(rsp.pkt.cmd()) + ":" +
                          std::to_string(rsp.latency));
}

/// Packet-at-a-time reference: the canonical drain-then-admit pump the
/// Session documents, written out by hand against the raw Simulator.
Observed run_manual_batch(const Config& cfg,
                          const std::vector<spec::RqstParams>& reqs,
                          std::uint64_t cycles) {
  std::unique_ptr<Simulator> sim;
  EXPECT_TRUE(Simulator::create(cfg, sim).ok());
  Observed obs;
  std::ostringstream trace_os;
  trace::TextSink sink(trace_os);
  sim->tracer().set_level(trace::Level::All);
  sim->tracer().attach(&sink);

  const std::uint32_t links = sim->config().num_links;
  std::vector<std::vector<spec::RqstParams>> q(links);
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    q[i % links].push_back(reqs[i]);
  }
  std::vector<std::size_t> next(links, 0);
  auto pump = [&] {
    Response rsp;
    for (std::uint32_t l = 0; l < links; ++l) {
      while (sim->recv(l, rsp).ok()) {
        record_response(obs, rsp);
      }
    }
    for (std::uint32_t l = 0; l < links; ++l) {
      while (next[l] < q[l].size()) {
        const Status s = sim->send(q[l][next[l]], l);
        if (s.stalled()) {
          break;
        }
        EXPECT_TRUE(s.ok()) << s.to_string();
        ++next[l];
      }
    }
  };
  pump();
  for (std::uint64_t c = 0; c < cycles; ++c) {
    sim->clock();
    pump();
  }
  obs.stats_json = format_stats_json(*sim);
  obs.trace_text = trace_os.str();
  return obs;
}

/// Session arm. `use_wait` switches advance(cycles) (pump every cycle)
/// for wait_batch (quiescence fast-forward) plus a top-up advance to the
/// same total cycle count.
Observed run_session_batch(const Config& cfg,
                           const std::vector<spec::RqstParams>& reqs,
                           std::uint64_t cycles, bool use_wait) {
  std::unique_ptr<Simulator> sim;
  EXPECT_TRUE(Simulator::create(cfg, sim).ok());
  Observed obs;
  std::ostringstream trace_os;
  trace::TextSink sink(trace_os);
  sim->tracer().set_level(trace::Level::All);
  sim->tracer().attach(&sink);

  Session session(*sim);
  session.set_on_complete([&obs](BatchTicket, const Response& rsp) {
    record_response(obs, rsp);
  });
  BatchTicket ticket = kInvalidTicket;
  EXPECT_TRUE(session.send_batch(reqs, ticket).ok());
  if (use_wait) {
    EXPECT_TRUE(session.wait_batch(ticket, cycles).ok());
    session.advance(cycles - sim->cycle());  // identical total span
  } else {
    session.advance(cycles);
  }
  EXPECT_EQ(sim->cycle(), cycles);
  obs.stats_json = format_stats_json(*sim);
  obs.trace_text = trace_os.str();
  return obs;
}

TEST(BatchEquivalence, SessionMatchesPacketAtATimeByteForByte) {
  const Config cfg = Config::hmc_4link_4gb();
  const auto reqs = batch_workload();
  const Observed manual = run_manual_batch(cfg, reqs, 400);
  const Observed batched = run_session_batch(cfg, reqs, 400, false);
  EXPECT_EQ(manual.stats_json, batched.stats_json);
  EXPECT_EQ(manual.trace_text, batched.trace_text);
  EXPECT_EQ(manual.responses, batched.responses);
  EXPECT_EQ(manual.responses.size(), reqs.size());
}

TEST(BatchEquivalence, HoldsUnderErrorInjection) {
  Config cfg = Config::hmc_4link_4gb();
  cfg.link_flit_error_ppm = 20000;  // CRC retries perturb the timing.
  const auto reqs = batch_workload();
  const Observed manual = run_manual_batch(cfg, reqs, 600);
  const Observed batched = run_session_batch(cfg, reqs, 600, false);
  EXPECT_EQ(manual.stats_json, batched.stats_json);
  EXPECT_EQ(manual.trace_text, batched.trace_text);
  EXPECT_EQ(manual.responses, batched.responses);
  EXPECT_EQ(manual.responses.size(), reqs.size());
}

TEST(BatchEquivalence, WaitBatchFastForwardMatchesAdvance) {
  // wait_batch leans on next_event_cycle()/clock_until() to skip dead
  // stretches; it must stay observably identical to pumping every cycle.
  const Config cfg = Config::hmc_4link_4gb();
  const auto reqs = batch_workload();
  const Observed stepped = run_session_batch(cfg, reqs, 400, false);
  const Observed jumped = run_session_batch(cfg, reqs, 400, true);
  EXPECT_EQ(stepped.stats_json, jumped.stats_json);
  EXPECT_EQ(stepped.trace_text, jumped.trace_text);
  EXPECT_EQ(stepped.responses, jumped.responses);
  EXPECT_EQ(stepped.responses.size(), reqs.size());
}

}  // namespace
}  // namespace hmcsim::sim
