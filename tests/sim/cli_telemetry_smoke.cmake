# cli_telemetry_smoke.cmake — sampler files and the live exposition path.
#
# Two halves. First, batch sampling: the synthetic frontend with
# --sample-every must write a well-formed series, and the series must be
# byte-identical across worker-thread counts (the whole point of hooking
# sampling to exact cycle boundaries). Second, live exposition: `cli
# serve --telemetry` answers `cli top` scrapes while waiting for its
# cosim client, in both the rendered-JSON and raw-Prometheus modes.
# Invoked as:
#   cmake -DCLI=<hmcsim_cli> -DCLIENT=<cosim_client> -DOUT_DIR=<dir>
#         -P cli_telemetry_smoke.cmake
if(NOT DEFINED CLI OR NOT DEFINED CLIENT OR NOT DEFINED OUT_DIR)
  message(FATAL_ERROR "usage: cmake -DCLI=<exe> -DCLIENT=<exe> -DOUT_DIR=<dir> -P ${CMAKE_SCRIPT_MODE_FILE}")
endif()

function(run_cli out_var)
  execute_process(COMMAND ${CLI} ${ARGN}
    OUTPUT_VARIABLE run_stdout ERROR_VARIABLE run_stderr
    RESULT_VARIABLE run_rc)
  if(NOT run_rc EQUAL 0)
    message(FATAL_ERROR "hmcsim_cli ${ARGN} exited with ${run_rc}\n${run_stdout}\n${run_stderr}")
  endif()
  set(${out_var} "${run_stdout}" PARENT_SCOPE)
endfunction()

# --- Batch sampling: file shapes and thread invariance. ----------------
set(csv_t1 "${OUT_DIR}/telemetry_t1.csv")
set(csv_t4 "${OUT_DIR}/telemetry_t4.csv")
set(series_json "${OUT_DIR}/telemetry_series.json")

run_cli(ignored synthetic --count 2000 --devs 2 --threads 1
        --sample-every 50 --sample-out "${csv_t1}")
run_cli(ignored synthetic --count 2000 --devs 2 --threads 4
        --sample-every 50 --sample-out "${csv_t4}")
file(READ "${csv_t1}" t1)
file(READ "${csv_t4}" t4)
if(NOT t1 STREQUAL t4)
  message(FATAL_ERROR "sampled series differ across thread counts: sampling is not anchored to cycle boundaries")
endif()
if(NOT t1 MATCHES "cycle,dcycles,path,kind,value,delta")
  message(FATAL_ERROR "sample CSV lacks its header:\n${t1}")
endif()
if(NOT t1 MATCHES "rqst_packets,counter")
  message(FATAL_ERROR "sample CSV never sampled a link counter:\n${t1}")
endif()

# JSON flavour, with the profiler on: prof stats must stay out of the
# default series even though they now exist in the registry.
run_cli(ignored synthetic --count 500 --prof
        --sample-every 50 --sample-out "${series_json}")
file(READ "${series_json}" series)
if(NOT series MATCHES "\"windows\": \\[")
  message(FATAL_ERROR "sample JSON lacks a windows array:\n${series}")
endif()
if(series MATCHES "sim\\.prof")
  message(FATAL_ERROR "wall-clock prof stats leaked into the default series:\n${series}")
endif()

# --- Live exposition: serve --telemetry answers `top` scrapes. ---------
set(sock "${OUT_DIR}/telemetry_serve.sock")
set(tsock "${OUT_DIR}/telemetry_scrape.sock")
set(top_json "${OUT_DIR}/telemetry_top.txt")
set(top_prom "${OUT_DIR}/telemetry_top.prom")
execute_process(
  COMMAND bash -c "\
'${CLI}' serve '${sock}' --clients 1 --quantum 32 \
    --telemetry '${tsock}' & srv=$!; \
for i in $(seq 1 100); do \
  if '${CLI}' top '${tsock}' --count 1 > '${top_json}' 2>/dev/null; \
    then break; fi; \
  sleep 0.1; \
done; \
'${CLI}' top '${tsock}' --count 1 --format prom > '${top_prom}'; rct=$?; \
'${CLIENT}' '${sock}' 0 128 16; rcc=$?; \
wait $srv; rcs=$?; \
exit $((rct | rcc | rcs))"
  OUTPUT_VARIABLE serve_stdout
  ERROR_VARIABLE serve_stderr
  RESULT_VARIABLE serve_rc)
if(NOT serve_rc EQUAL 0)
  message(FATAL_ERROR "serve/top/client run exited with ${serve_rc}\n${serve_stdout}\n${serve_stderr}")
endif()
file(READ "${top_json}" top_out)
if(NOT top_out MATCHES "hmcsim top" OR NOT top_out MATCHES "cycle")
  message(FATAL_ERROR "top rendered no header from the live server:\n${top_out}")
endif()
if(NOT top_out MATCHES "clients")
  message(FATAL_ERROR "top rendered no server block:\n${top_out}")
endif()
file(READ "${top_prom}" prom_out)
if(NOT prom_out MATCHES "# TYPE hmcsim_cycle counter")
  message(FATAL_ERROR "prom scrape is not Prometheus text format:\n${prom_out}")
endif()
if(NOT prom_out MATCHES "hmcsim_clients_live")
  message(FATAL_ERROR "prom scrape lacks the server block:\n${prom_out}")
endif()
