// topology_test.cpp — multi-cube interconnect shapes (chain vs star).
#include <gtest/gtest.h>

#include <array>

#include "src/sim/simulator.hpp"

namespace hmcsim::sim {
namespace {

std::unique_ptr<Simulator> make_topo(Topology topo, std::uint32_t devs) {
  Config cfg = Config::hmc_4link_4gb();
  cfg.num_devs = devs;
  cfg.topology = topo;
  std::unique_ptr<Simulator> sim;
  EXPECT_TRUE(Simulator::create(cfg, sim).ok());
  return sim;
}

Response roundtrip(Simulator& sim, std::uint8_t cub,
                   spec::Rqst rqst = spec::Rqst::RD16,
                   std::span<const std::uint64_t> payload = {}) {
  spec::RqstParams p;
  p.rqst = rqst;
  p.addr = 0x40;
  p.cub = cub;
  p.payload = payload;
  Status s = sim.send(p, 0);
  int guard = 0;
  while (s.stalled() && guard++ < 1000) {
    sim.clock();
    s = sim.send(p, 0);
  }
  EXPECT_TRUE(s.ok());
  guard = 0;
  while (!sim.rsp_ready(0) && guard++ < 1000) {
    sim.clock();
  }
  Response rsp;
  EXPECT_TRUE(sim.recv(0, rsp).ok());
  return rsp;
}

TEST(Topology, Names) {
  EXPECT_EQ(to_string(Topology::Chain), "chain");
  EXPECT_EQ(to_string(Topology::Star), "star");
}

TEST(Topology, StarReachesEveryCubeInOneHop) {
  auto sim = make_topo(Topology::Star, 8);
  // Hub access: the plain 3-cycle round trip. Every spoke: one request
  // hop + one response hop + the spoke's chain-egress staging cycle.
  EXPECT_EQ(roundtrip(*sim, 0).latency, 3U);
  for (std::uint8_t cub = 1; cub < 8; ++cub) {
    EXPECT_EQ(roundtrip(*sim, cub).latency, 6U) << unsigned(cub);
  }
}

TEST(Topology, ChainLatencyGrowsStarStaysFlat) {
  auto chain = make_topo(Topology::Chain, 8);
  auto star = make_topo(Topology::Star, 8);
  const std::uint64_t chain_far = roundtrip(*chain, 7).latency;
  const std::uint64_t star_far = roundtrip(*star, 7).latency;
  EXPECT_EQ(chain_far, 18U);  // 3 + 3 + 2*(hops-1).
  EXPECT_EQ(star_far, 6U);
}

TEST(Topology, StarDataLandsOnCorrectCube) {
  auto sim = make_topo(Topology::Star, 4);
  for (std::uint8_t cub = 0; cub < 4; ++cub) {
    const std::array<std::uint64_t, 2> data{0x100ULL + cub, 0};
    (void)roundtrip(*sim, cub, spec::Rqst::WR16, data);
  }
  for (std::uint32_t cub = 0; cub < 4; ++cub) {
    std::uint64_t v = 0;
    ASSERT_TRUE(sim->device(cub).store().read_u64(0x40, v).ok());
    EXPECT_EQ(v, 0x100ULL + cub);
  }
}

TEST(Topology, StarForwardingOnlyThroughHub) {
  auto sim = make_topo(Topology::Star, 4);
  (void)roundtrip(*sim, 3);
  EXPECT_EQ(sim->device(0).forwarded_rqsts().value(), 1U);
  EXPECT_EQ(sim->device(1).forwarded_rqsts().value(), 0U);
  EXPECT_EQ(sim->device(2).forwarded_rqsts().value(), 0U);
  EXPECT_EQ(sim->device(3).forwarded_rsps().value(), 1U);
  EXPECT_EQ(sim->device(2).forwarded_rsps().value(), 0U);
}

TEST(Topology, StarAtomicsOnSpokes) {
  auto sim = make_topo(Topology::Star, 3);
  ASSERT_TRUE(sim->device(2).store().write_u64(0x40, 10).ok());
  (void)roundtrip(*sim, 2, spec::Rqst::INC8);
  std::uint64_t v = 0;
  ASSERT_TRUE(sim->device(2).store().read_u64(0x40, v).ok());
  EXPECT_EQ(v, 11ULL);
}

TEST(Topology, InterleavedStarTraffic) {
  auto sim = make_topo(Topology::Star, 8);
  for (std::uint8_t cub = 0; cub < 8; ++cub) {
    spec::RqstParams rd;
    rd.rqst = spec::Rqst::RD16;
    rd.addr = 0x40;
    rd.cub = cub;
    rd.tag = cub;
    ASSERT_TRUE(sim->send(rd, 0).ok());
  }
  std::array<bool, 8> seen{};
  int received = 0;
  for (int i = 0; i < 40 && received < 8; ++i) {
    sim->clock();
    Response rsp;
    while (sim->recv(0, rsp).ok()) {
      seen[rsp.pkt.tag()] = true;
      ++received;
    }
  }
  EXPECT_EQ(received, 8);
  for (const bool s : seen) {
    EXPECT_TRUE(s);
  }
}

TEST(Topology, SingleDeviceEitherTopology) {
  for (const Topology topo : {Topology::Chain, Topology::Star}) {
    auto sim = make_topo(topo, 1);
    EXPECT_EQ(roundtrip(*sim, 0).latency, 3U);
  }
}

}  // namespace
}  // namespace hmcsim::sim
