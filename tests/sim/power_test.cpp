// power_test.cpp — activity-based energy model tests (§VII future work).
#include "src/power/power_model.hpp"

#include <gtest/gtest.h>

#include <array>

#include "src/sim/simulator.hpp"

namespace hmcsim::power {
namespace {

Activity make_activity() {
  Activity a;
  a.cycles = 1000;
  a.rqst_flits = 200;
  a.rsp_flits = 300;
  a.rqsts_processed = 100;
  a.amo_executed = 40;
  a.cmc_executed = 10;
  a.xbar_routed = 200;
  a.chain_hops = 5;
  a.num_devices = 1;
  return a;
}

TEST(PowerModel, ZeroActivityCostsOnlyStatic) {
  PowerModel model;
  Activity idle;
  idle.cycles = 1000;
  idle.num_devices = 1;
  const EnergyReport r = model.estimate(idle);
  EXPECT_EQ(r.dynamic_nj(), 0.0);
  EXPECT_GT(r.static_nj, 0.0);
  // 650 mW * 1000 cycles * 0.8 ns = 520000 pJ = 520 nJ.
  EXPECT_NEAR(r.static_nj, 520.0, 1e-9);
}

TEST(PowerModel, ZeroCyclesZeroStatic) {
  PowerModel model;
  Activity a = make_activity();
  a.cycles = 0;
  EXPECT_EQ(model.estimate(a).static_nj, 0.0);
  EXPECT_GT(model.estimate(a).dynamic_nj(), 0.0);
}

TEST(PowerModel, ComponentsPricedByCoefficients) {
  PowerCoefficients c;
  c.link_flit_pj = 1000;     // 1 nJ per flit.
  c.dram_block_pj = 2000;
  c.vault_op_pj = 0;
  c.amo_op_pj = 0;
  c.cmc_op_pj = 0;
  c.xbar_hop_pj = 0;
  c.chain_hop_pj = 0;
  c.static_mw_per_device = 0;
  PowerModel model(c);
  const Activity a = make_activity();
  const EnergyReport r = model.estimate(a);
  EXPECT_NEAR(r.link_nj, 500.0, 1e-9);  // 500 flits * 1 nJ.
  EXPECT_NEAR(r.dram_nj, 200.0, 1e-9);  // 100 blocks * 2 nJ.
  EXPECT_EQ(r.vault_nj, 0.0);
  EXPECT_NEAR(r.total_nj(), 700.0, 1e-9);
}

TEST(PowerModel, LinearInActivity) {
  PowerModel model;
  Activity a = make_activity();
  const double e1 = model.estimate(a).total_nj();
  a.cycles *= 2;
  a.rqst_flits *= 2;
  a.rsp_flits *= 2;
  a.rqsts_processed *= 2;
  a.amo_executed *= 2;
  a.cmc_executed *= 2;
  a.xbar_routed *= 2;
  a.chain_hops *= 2;
  const double e2 = model.estimate(a).total_nj();
  EXPECT_NEAR(e2, 2 * e1, 1e-6);
}

TEST(PowerModel, StaticScalesWithDeviceCount) {
  PowerModel model;
  Activity a;
  a.cycles = 100;
  a.num_devices = 1;
  const double one = model.estimate(a).static_nj;
  a.num_devices = 4;
  EXPECT_NEAR(model.estimate(a).static_nj, 4 * one, 1e-9);
}

TEST(PowerModel, AvgPowerAndPerByte) {
  EnergyReport r;
  r.link_nj = 100.0;
  EXPECT_NEAR(r.avg_power_mw(1000.0), 100.0, 1e-9);  // 100 nJ / 1 us.
  EXPECT_NEAR(r.nj_per_byte(50), 2.0, 1e-9);
  EXPECT_EQ(r.nj_per_byte(0), 0.0);
  EXPECT_EQ(r.avg_power_mw(0), 0.0);
}

TEST(PowerModel, DeltaFromSimStats) {
  sim::SimStats before;
  before.cycles = 10;
  before.rqst_flits = 5;
  sim::SimStats after;
  after.cycles = 110;
  after.rqst_flits = 45;
  after.rsp_flits = 30;
  after.rqsts_processed = 20;
  after.rsps_generated = 18;
  after.amo_executed = 4;
  after.forwarded_rqsts = 2;
  after.forwarded_rsps = 2;
  const Activity a = delta(before, after, 2);
  EXPECT_EQ(a.cycles, 100U);
  EXPECT_EQ(a.rqst_flits, 40U);
  EXPECT_EQ(a.rsp_flits, 30U);
  EXPECT_EQ(a.rqsts_processed, 20U);
  EXPECT_EQ(a.amo_executed, 4U);
  EXPECT_EQ(a.xbar_routed, 38U);
  EXPECT_EQ(a.chain_hops, 4U);
  EXPECT_EQ(a.num_devices, 2U);
}

TEST(PowerModel, EndToEndOnLiveSimulator) {
  std::unique_ptr<sim::Simulator> sim;
  ASSERT_TRUE(
      sim::Simulator::create(sim::Config::hmc_4link_4gb(), sim).ok());
  const auto before = sim::collect_stats(*sim);
  // 10 write/read round trips.
  for (int i = 0; i < 10; ++i) {
    const std::array<std::uint64_t, 2> data{1, 2};
    spec::RqstParams wr;
    wr.rqst = spec::Rqst::WR16;
    wr.addr = 64ULL * static_cast<std::uint64_t>(i);
    wr.payload = data;
    ASSERT_TRUE(sim->send(wr, 0).ok());
    while (!sim->rsp_ready(0)) {
      sim->clock();
    }
    sim::Response rsp;
    ASSERT_TRUE(sim->recv(0, rsp).ok());
  }
  PowerModel model;
  const Activity a = delta(before, sim::collect_stats(*sim));
  const EnergyReport r = model.estimate(a);
  EXPECT_GT(r.link_nj, 0.0);
  EXPECT_GT(r.dram_nj, 0.0);
  EXPECT_GT(r.static_nj, 0.0);
  EXPECT_EQ(r.cmc_nj, 0.0);  // No CMC traffic ran.
  EXPECT_GT(r.total_nj(), r.dynamic_nj());
  const std::string text = PowerModel::format(r, model.segment_ns(a));
  EXPECT_NE(text.find("total"), std::string::npos);
  EXPECT_NE(text.find("mW avg"), std::string::npos);
}

}  // namespace
}  // namespace hmcsim::power
